// memory-expander: using the CXL Type-2 device as a memory expander with
// near-memory processing (the Table I "memory expander" role plus
// Insights 3 and 4). Cold data is demoted to device memory in bulk with
// CXL-DSA; the device-side accelerator then scans it in place (D2D) and
// pushes the hot results back into host LLC with NC-P, keeping host
// accesses fast. The example also demonstrates Insight 3: leaving DMC
// lines in owned state slows subsequent host accesses, so the accelerator
// finishes with shared-state reads.
//
//	go run ./examples/memory-expander
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	cxl2sim "repro"
)

const (
	coldPages = 64 // 256 KB demoted to device memory
)

func main() {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 8 << 20, LLCWays: 16, Cores: 8})
	dsa := sys.Host.NewDSA()

	// A cold array lives in host memory: value i at quadword i.
	hostBase := cxl2sim.Addr(0x100000)
	devBase := cxl2sim.DeviceMemoryBase + 0x200000
	size := coldPages * cxl2sim.PageSize
	buf := make([]byte, size)
	var want uint64
	for off := 0; off < size; off += cxl2sim.LineSize {
		v := uint64(off / cxl2sim.LineSize)
		binary.LittleEndian.PutUint64(buf[off:], v)
		want += v
	}
	sys.WriteHostMemory(hostBase, buf)

	// ① Demote: one DSA descriptor moves the whole block to device memory
	// (CXL memory is host-addressable, so DSA can target it directly).
	submitted, done := dsa.Copy(hostBase, devBase, size, 0, true)
	fmt.Printf("demoted %d KB to device memory: CPU busy %v, transfer done %v\n",
		size/1024, submitted, done)

	// ② Near-memory scan: the device accelerator sums the array in place
	// with D2D reads — no data crosses the CXL link.
	linkBefore := linkBytes(sys)
	var sum uint64
	t := done
	var scanDone cxl2sim.Time
	for off := 0; off < size; off += cxl2sim.LineSize {
		r := sys.D2D(cxl2sim.CSRead, devBase+cxl2sim.Addr(off), nil, t)
		sum += binary.LittleEndian.Uint64(r.Data)
		if r.Done > scanDone {
			scanDone = r.Done
		}
	}
	if sum != want {
		log.Fatalf("near-memory sum = %d, want %d", sum, want)
	}
	fmt.Printf("near-memory scan: sum ok in %v, link bytes moved during scan: %d\n",
		scanDone-done, linkBytes(sys)-linkBefore)

	// ③ Result delivery: NC-P the result line into host LLC; the host read
	// is an LLC hit (Insight 4).
	resultAddr := cxl2sim.Addr(0x40000)
	line := make([]byte, cxl2sim.LineSize)
	binary.LittleEndian.PutUint64(line, sum)
	push := sys.D2H(cxl2sim.NCP, resultAddr, line, scanDone)
	res := sys.H2D(0, cxl2sim.Ld, resultAddr, nil, push.Done)
	got := binary.LittleEndian.Uint64(res.Data)
	fmt.Printf("host read the pushed result in %v (LLC hit = %v, value ok = %v)\n",
		res.Done-push.Done, res.LLCHit, got == sum)

	// ④ Insight 3: if the accelerator leaves DMC lines owned, later host
	// accesses to the expander pay the downgrade penalty; shared (or
	// flushed) lines do not.
	probe := devBase + cxl2sim.Addr(size) + 0x1000
	sys.Dev.SetDMCState(probe, cxl2sim.Owned, nil)
	sys.ResetTiming()
	owned := sys.H2D(0, cxl2sim.Ld, probe, nil, 0)
	sys.Host.LLC().Invalidate(probe)
	sys.ResetTiming()
	shared := sys.H2D(0, cxl2sim.Ld, probe, nil, 0) // DMC now Shared after the first access
	fmt.Printf("Insight 3 — H2D ld with DMC owned: %v, after downgrade to shared: %v (%.0f%% faster)\n",
		owned.Done, shared.Done, 100*float64(owned.Done-shared.Done)/float64(owned.Done))
}

func linkBytes(sys *cxl2sim.System) uint64 {
	return sys.Host.CXLLink.Transferred(0) + sys.Host.CXLLink.Transferred(1)
}
