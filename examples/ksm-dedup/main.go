// ksm-dedup: the §VI-B scenario — many VMs booted from the same image
// hold duplicate pages (OS code, common libraries); ksm scans them,
// deduplicates via CoW merging, and reclaims the copies. The example runs
// the scanner with the cxl-ksm backend, reports the memory it recovers,
// then demonstrates CoW safety by having one VM write to a merged page.
//
//	go run ./examples/ksm-dedup [-seed N]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	cxl2sim "repro"
	"repro/internal/rng"
)

const (
	numVMs     = 8
	pagesPerVM = 64
	// imagePages of each VM are identical "OS image" pages; the rest are
	// private.
	imagePages = 40
)

func main() {
	seed := flag.Int64("seed", 3, "seed for the VMs' private-page contents")
	flag.Parse()

	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 8 << 20, LLCWays: 16, Cores: 8})
	eng := cxl2sim.NewEngine()
	stack, err := sys.NewKsmStack(eng, cxl2sim.CXL, 2048, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Boot the VMs: shared image pages + private heap pages.
	prng := rng.New(*seed)
	image := make([][]byte, imagePages)
	for i := range image {
		image[i] = patternPage(byte(i), 0)
	}
	loader := sys.NewProc(eng, "boot", -1)
	vms := make([]*cxl2sim.AddressSpace, numVMs)
	for v := range vms {
		as := stack.MM.NewAddressSpace(v + 1)
		for p := 0; p < pagesPerVM; p++ {
			var page []byte
			if p < imagePages {
				page = image[p]
			} else {
				page = patternPage(byte(p), byte(prng.Intn(255)+1))
			}
			if err := as.Map(uint64(p), page, loader); err != nil {
				log.Fatal(err)
			}
		}
		stack.Scanner.RegisterRange(as, 0, pagesPerVM)
		vms[v] = as
	}

	before := stack.MM.FreePages()
	fmt.Printf("booted %d VMs × %d pages (%d identical image pages each)\n",
		numVMs, pagesPerVM, imagePages)
	fmt.Printf("free frames before ksm: %d\n", before)

	// Run ksmd until the merge rate dries up.
	stack.Daemon.PagesPerBatch = 64
	stack.Daemon.SleepBetween = cxl2sim.Millisecond
	stack.Daemon.Start()
	eng.RunUntil(200 * cxl2sim.Millisecond)
	stack.Daemon.Stop()
	eng.Run()

	st := stack.Scanner.Stats()
	after := stack.MM.FreePages()
	fmt.Printf("free frames after ksm:  %d (recovered %d pages, %.1f%% of VM memory)\n",
		after, after-before, 100*float64(after-before)/float64(numVMs*pagesPerVM))
	fmt.Printf("stable nodes: %d, pages sharing them: %d, scans: %d, ksmd CPU: %v\n",
		st.PagesShared, st.PagesSharing, st.PagesScanned, st.HostCPU)

	// CoW safety: VM 0 patches an image page; nobody else sees the change.
	writer := sys.NewProc(eng, "vm0", 1)
	patched := patternPage(0, 0xEE)
	if err := vms[0].Write(0, patched, writer); err != nil {
		log.Fatal(err)
	}
	got0, _ := vms[0].Read(0, writer)
	got1, _ := vms[1].Read(0, writer)
	fmt.Printf("after VM0 writes image page 0: vm0 patched=%v, vm1 untouched=%v\n",
		bytes.Equal(got0, patched), bytes.Equal(got1, image[0]))
	if !bytes.Equal(got1, image[0]) {
		log.Fatal("CoW isolation violated")
	}
}

// patternPage builds a recognizable, compressible page.
func patternPage(tag, salt byte) []byte {
	p := make([]byte, cxl2sim.PageSize)
	for i := 0; i < len(p); i += 8 {
		p[i] = tag
		p[i+1] = salt
	}
	return p
}
