// zswap-offload: run the §VI-A scenario end to end — a process
// overcommits memory, kswapd reclaims through zswap, and the compression
// data plane runs on each of the paper's four backends in turn. The
// example reports per-backend offload latency, host-CPU consumption and
// where the compressed pool lives, and verifies every page's content after
// a full swap-out/swap-in cycle.
//
//	go run ./examples/zswap-offload [-seed N]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"

	cxl2sim "repro"
	"repro/internal/rng"
)

const (
	ramPages  = 512 // managed RAM
	workPages = 800 // demand: forces ~300 pages through zswap
)

func main() {
	seed := flag.Int64("seed", 7, "seed for the synthetic pages' contents")
	flag.Parse()

	fmt.Printf("%-12s %-12s %-12s %-12s %-10s %-8s\n",
		"backend", "swap-outs", "hostCPU", "pool-ratio", "pool-mem", "verify")
	for _, v := range []cxl2sim.OffloadVariant{
		cxl2sim.CPU, cxl2sim.PCIeRDMA, cxl2sim.PCIeDMA, cxl2sim.CXL,
	} {
		runVariant(v, *seed)
	}
}

func runVariant(v cxl2sim.OffloadVariant, seed int64) {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 8 << 20, LLCWays: 16, Cores: 8})
	eng := cxl2sim.NewEngine()
	stack, err := sys.NewZswapStack(eng, v, ramPages, 60, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic process maps more pages than RAM holds; allocation
	// pressure drives kswapd and the direct-reclaim path through zswap.
	proc := sys.NewProc(eng, "app", 1)
	as := stack.MM.NewAddressSpace(1)
	prng := rng.New(seed)
	pages := make([][]byte, workPages)
	for i := range pages {
		pages[i] = compressiblePage(prng, byte(i))
		if err := as.Map(uint64(i), pages[i], proc); err != nil {
			log.Fatalf("map %d: %v", i, err)
		}
	}
	eng.Run()

	// Touch every page again: swapped ones fault back through the backend.
	verified := true
	for i := range pages {
		got, err := as.Read(uint64(i), proc)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, pages[i]) {
			verified = false
		}
	}
	eng.Run()

	zs := stack.Zswap.Stats()
	mm := stack.MM.Stats()
	ratio := float64(zs.UncompressedBytes) / float64(max64(zs.CompressedBytes, 1))
	poolMem := "host-DRAM"
	if stack.Zswap.Backend().PoolInDeviceMemory() {
		poolMem = "device-mem"
	}
	fmt.Printf("%-12s %-12d %-12v %-12.2f %-10s %-8v\n",
		stack.Zswap.Backend().Name(), mm.SwapOuts, zs.HostCPU, ratio, poolMem, verified)
}

// compressiblePage builds a page that compresses ~2-3×, like typical
// anonymous memory.
func compressiblePage(rng *rand.Rand, tag byte) []byte {
	p := make([]byte, cxl2sim.PageSize)
	for i := 0; i < len(p); i += 16 {
		p[i] = tag
		p[i+1] = byte(i >> 8)
		// the rest of each 16-byte stanza stays zero — compressible
		if rng.Intn(4) == 0 {
			p[i+2] = byte(rng.Intn(256)) // sprinkle entropy
		}
	}
	return p
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
