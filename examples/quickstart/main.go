// Quickstart: build a simulated host + CXL Type-2 device, move real data
// through the three access classes the paper characterizes (D2H, D2D,
// H2D), and print the latencies the timing model produces.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	cxl2sim "repro"
)

func main() {
	sys, err := cxl2sim.NewSystem(cxl2sim.Config{
		LLCBytes: 8 << 20, // a small LLC keeps the demo light
		LLCWays:  16,
		Cores:    8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- D2H: the device accelerator reads host memory coherently. ---
	hostAddr := cxl2sim.Addr(0x10000)
	payload := bytes.Repeat([]byte{0xCA}, cxl2sim.LineSize)
	sys.WriteHostMemory(hostAddr, payload)

	res := sys.D2H(cxl2sim.CSRead, hostAddr, nil, 0)
	fmt.Printf("D2H CS-rd (host memory → device): %v, data ok = %v\n",
		res.Done, bytes.Equal(res.Data, payload))

	// A second read hits the device's host-memory cache (HMC).
	sys.ResetTiming()
	res = sys.D2H(cxl2sim.CSRead, hostAddr, nil, 0)
	fmt.Printf("D2H CS-rd again (HMC hit):        %v, HMCHit = %v\n", res.Done, res.HMCHit)

	// --- D2D: the accelerator works in its own device memory. ---
	devAddr := cxl2sim.DeviceMemoryBase + 0x4000
	sys.ResetTiming()
	w := sys.D2D(cxl2sim.COWrite, devAddr, payload, 0)
	r := sys.D2D(cxl2sim.CSRead, devAddr, nil, w.Done)
	fmt.Printf("D2D CO-wr + CS-rd (device cache): write %v, read %v, DMCHit = %v\n",
		w.Done, r.Done-w.Done, r.DMCHit)

	// --- H2D: the host CPU loads from device memory over CXL.mem. ---
	sys.ResetTiming()
	h := sys.H2D(0, cxl2sim.Ld, devAddr+0x1000, nil, 0)
	fmt.Printf("H2D ld (device memory, cold):     %v\n", h.Done)

	// --- NC-P, the Type-2 party trick (Insight 4): the device pushes the
	// line the host is about to read straight into host LLC. ---
	pushAddr := cxl2sim.Addr(0x20000)
	sys.ResetTiming()
	sys.D2H(cxl2sim.NCP, pushAddr, payload, 0)
	fast := sys.H2D(0, cxl2sim.Ld, pushAddr, nil, 0)
	fmt.Printf("host ld after device NC-P push:   %v (LLC hit = %v)\n", fast.Done, fast.LLCHit)
}
