// kv-tiering: where should an LLM serving engine put its paged KV cache?
// The walkthrough runs the same request stream through every placement the
// platform offers — host DRAM, Type-2 device memory under device and host
// bias, a Type-3 expander, plain PCIe DMA — plus the two adaptive
// policies (LRU spill via DSA, device-bias-pinned decode), and prints the
// serving metrics side by side. The ordering that falls out is the
// paper's Type-2 argument restated for inference serving: coherent
// device-bias memory is the cheapest place outside DRAM to keep KV state.
//
//	go run ./examples/kv-tiering
package main

import (
	"fmt"

	"repro/internal/infer"
)

// scenario pairs a label with a placement.
type scenario struct {
	name string
	far  infer.Tier
	pol  infer.Policy
	dram int // DRAM pool override (0 = default)
}

func main() {
	const seed = 7
	scenarios := []scenario{
		{name: "all-DRAM baseline", far: infer.TierDRAM, pol: infer.AllDRAM{}},
		{name: "KV on Type-2 (device bias)", far: infer.TierT2Dev, pol: infer.StaticSplit{}},
		{name: "KV on Type-2 (host bias)", far: infer.TierT2Host, pol: infer.StaticSplit{}},
		{name: "KV on Type-3 expander", far: infer.TierT3, pol: infer.StaticSplit{}},
		{name: "KV behind PCIe DMA", far: infer.TierPCIe, pol: infer.StaticSplit{}},
		{name: "LRU spill to Type-2 (16-block DRAM)", far: infer.TierT2Dev,
			pol: infer.LRUSpill{LowWater: 8, HighWater: 12}, dram: 16},
		{name: "decode pinned to device bias", far: infer.TierT2Dev, pol: infer.PinnedDecode{}},
	}

	fmt.Println("LLM serving over the simulated memory system")
	fmt.Println("same 48-request Poisson stream, continuous batching, paged KV cache")
	fmt.Printf("\n%-36s %10s %10s %12s %10s\n",
		"placement", "TTFT(us)", "TPOT(us)", "goodput", "migrated")
	for _, sc := range scenarios {
		m := infer.Run(infer.Config{
			Seed:       seed,
			Far:        sc.far,
			Policy:     sc.pol,
			DRAMBlocks: sc.dram,
		})
		fmt.Printf("%-36s %10.2f %10.3f %9.0f/s %8d B\n",
			sc.name, m.TTFT.Median(), m.TPOT.Mean(), m.Goodput, m.MigratedBytes)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - DRAM wins outright; device-bias Type-2 memory is the cheapest far tier")
	fmt.Println("    (near-memory D2D reads, no host round trip, no bias check)")
	fmt.Println("  - host bias pays the snoop-filter check on every device access")
	fmt.Println("  - Type-3 pays a full CXL.mem round trip per line; PCIe pays DMA setup,")
	fmt.Println("    completion and interrupt per block — setup-dominated at KV-block sizes")
	fmt.Println("  - the adaptive policies keep hot blocks in DRAM and land within a few")
	fmt.Println("    percent of the baseline while fitting a fraction of its DRAM")
}
