// chc-pingpong: the fine-grained cooperative-heterogeneous-computing
// pattern that motivates the paper (§I): the host hands the device small
// work items at high frequency and needs the results back fast. The CXL
// Type-2 path uses nt-st doorbells into a shared device-memory mailbox and
// NC-P result pushes into host LLC; the PCIe baseline pays MMIO doorbells
// and DMA result transfers. The example measures round-trip latency for a
// ladder of item sizes and prints the CXL advantage.
//
//	go run ./examples/chc-pingpong
package main

import (
	"fmt"

	cxl2sim "repro"
	"repro/internal/pcie"
)

func main() {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 8 << 20, LLCWays: 16, Cores: 8})
	ep := pcie.NewEndpoint(sys.P)

	fmt.Printf("%-10s %-14s %-14s %-10s\n", "item", "CXL RTT", "PCIe RTT", "speedup")
	for _, size := range []int{64, 256, 1024, 4096} {
		cxlRTT := cxlPingPong(sys, size)
		pcieRTT := pciePingPong(ep, size)
		fmt.Printf("%-10d %-14v %-14v %.1fx\n", size, cxlRTT, pcieRTT,
			float64(pcieRTT)/float64(cxlRTT))
	}
}

// cxlPingPong: host nt-sts the work item into the device mailbox, the
// device (polling with D2D CS-read) processes it, and NC-Ps the result
// into host LLC where the host load finds it.
func cxlPingPong(sys *cxl2sim.System, size int) cxl2sim.Time {
	sys.ResetTiming()
	mailbox := cxl2sim.DeviceMemoryBase + 0x1000
	resultAddr := cxl2sim.Addr(0x30000)
	line := make([]byte, cxl2sim.LineSize)

	// ① host → device: post the item with nt-st (posted, cache-bypassing).
	var t cxl2sim.Time
	for off := 0; off < size; off += cxl2sim.LineSize {
		r := sys.H2D(0, cxl2sim.NtSt, mailbox+cxl2sim.Addr(off), line, t)
		t = r.Done
	}
	// ② device observes the doorbell on its polling loop (½ the poll gap on
	// average) and reads the item from its own memory.
	t += sys.P.Device.DoorbellPollGap / 2
	var devDone cxl2sim.Time = t
	for off := 0; off < size; off += cxl2sim.LineSize {
		r := sys.D2D(cxl2sim.CSRead, mailbox+cxl2sim.Addr(off), nil, t)
		if r.Done > devDone {
			devDone = r.Done
		}
	}
	// ③ device computes (one fabric pass over the item) and NC-Ps the
	// result line into host LLC.
	devDone += cxl2sim.Time(size/cxl2sim.LineSize) * sys.P.FabricCycle()
	push := sys.D2H(cxl2sim.NCP, resultAddr, line, devDone)
	// ④ host load hits LLC.
	res := sys.H2D(0, cxl2sim.Ld, resultAddr, nil, push.Done)
	return res.Done
}

// pciePingPong: the same exchange over plain PCIe — MMIO doorbell + item
// write, device-side DMA of the result back to host memory, host polls.
func pciePingPong(ep *pcie.Endpoint, size int) cxl2sim.Time {
	ep.ResetTiming()
	// ① host MMIO-writes the item (write-combining, ordering-limited).
	in := ep.MMIOWrite(size, 0)
	// ② device processes and ③ DMAs the result line back (DDIO to LLC).
	out := ep.DMATransfer(cxl2sim.LineSize, in.Done, false)
	// ④ host polls the completion (included in DMACompletion).
	return out.Done
}
