// bias-modes: the §IV-B cache-coherence optimization in action. A
// near-memory kernel (summing a device-memory buffer) runs first in
// host-bias mode (hardware coherence, slower) and then in device-bias mode
// (software-managed coherence, faster), including the required host-cache
// flush before the switch and the automatic flip back to host bias when the
// host touches the region.
//
//	go run ./examples/bias-modes
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	cxl2sim "repro"
)

const bufPages = 16 // 64 KB working buffer in device memory

func main() {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 8 << 20, LLCWays: 16, Cores: 8})
	base := cxl2sim.DeviceMemoryBase + 0x100000
	size := uint64(bufPages * cxl2sim.PageSize)

	// The host produces the input in device memory (H2D nt-st stream), as
	// a coarse-grained CHC hand-off would.
	var expected uint64
	buf := make([]byte, cxl2sim.LineSize)
	var t cxl2sim.Time
	for off := 0; off < int(size); off += cxl2sim.LineSize {
		v := uint64(off/cxl2sim.LineSize + 1)
		binary.LittleEndian.PutUint64(buf, v)
		expected += v
		res := sys.H2D(0, cxl2sim.NtSt, base+cxl2sim.Addr(off), buf, t)
		t = res.Done
	}
	fmt.Printf("host produced %d KB into device memory by %v\n", size/1024, t)

	// Pass 1: host-bias mode — every accelerator access is coherence-safe,
	// but each write pays the host coherence check.
	sys.ResetTiming()
	sum, hostBiasTime := scaleBuffer(sys, base, int(size))
	if sum != expected {
		log.Fatalf("host-bias sum = %d, want %d", sum, expected)
	}
	fmt.Printf("accelerator RMW pass in host-bias mode:   %v (sum ok)\n", hostBiasTime)

	// Switch the region to device bias: the runtime flushes host caches
	// first (§IV-B's software preparation).
	sys.ResetTiming()
	switchDone := sys.EnterDeviceBias(base, size, 0)
	fmt.Printf("switched to device-bias (flush took %v)\n", switchDone)

	// Pass 2: device-bias mode — the same kernel, minus coherence checks.
	sys.ResetTiming()
	sum, devBiasTime := scaleBuffer(sys, base, int(size))
	if sum != 2*expected { // pass 1 already doubled every word
		log.Fatalf("device-bias sum = %d, want %d", sum, 2*expected)
	}
	fmt.Printf("accelerator RMW pass in device-bias mode: %v (%.0f%% faster)\n",
		devBiasTime, 100*float64(hostBiasTime-devBiasTime)/float64(hostBiasTime))

	// The host reads one result line: the access automatically flips the
	// region back to host bias (§IV-B).
	res := sys.H2D(0, cxl2sim.Ld, base, nil, 0)
	fmt.Printf("host ld at %v → region is now %v (automatic flip)\n", res.Done, sys.BiasOf(base))
	if sys.BiasOf(base) != cxl2sim.HostBias {
		log.Fatal("expected automatic flip to host bias")
	}
}

// scaleBuffer is the accelerator kernel: a read-modify-write pass that
// folds every line's first quadword into a sum and doubles it in place.
// The CO-writes are what the bias mode prices: host-bias consults the host
// per write, device-bias does not (§IV-B).
func scaleBuffer(sys *cxl2sim.System, base cxl2sim.Addr, size int) (uint64, cxl2sim.Time) {
	var sum uint64
	var last cxl2sim.Time
	for off := 0; off < size; off += cxl2sim.LineSize {
		addr := base + cxl2sim.Addr(off)
		r := sys.D2D(cxl2sim.CSRead, addr, nil, 0)
		v := binary.LittleEndian.Uint64(r.Data)
		sum += v
		binary.LittleEndian.PutUint64(r.Data, 2*v)
		w := sys.D2D(cxl2sim.COWrite, addr, r.Data, r.Done)
		if w.Done > last {
			last = w.Done
		}
	}
	return sum, last
}
