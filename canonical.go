package cxl2sim

import (
	"encoding/json"
	"fmt"

	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/xxhash"
)

// This file provides canonical serialization for result-cache keys: the
// serving layer (internal/service, cmd/cxlsimd) caches rendered experiment
// output under a key derived from everything the output bytes depend on.
// The runner's determinism guarantee — byte-identical output per
// (config, seed) regardless of worker count or scheduling — is what makes
// these keys sound, so worker counts must never leak into them.

// CanonicalKey renders the Config as a stable, self-delimiting string.
// Two Configs produce equal keys iff NewSystem builds observationally
// identical systems from them: zero-valued fields are normalized to the
// defaults NewSystem would substitute before rendering, and the timing
// model is folded in as a 64-bit hash of its canonical JSON, so a custom
// parameter file keys distinctly from the calibrated defaults while an
// explicit DefaultParams() keys identically to nil.
func (c Config) CanonicalKey() string {
	p := c.Params
	if p == nil {
		p = DefaultParams()
	}
	pj, err := json.Marshal(p)
	if err != nil {
		// Params is a tree of plain numeric structs; Marshal cannot fail.
		panic(fmt.Sprintf("cxl2sim: marshal params: %v", err))
	}
	hc := host.DefaultConfig()
	if c.LLCBytes == 0 {
		c.LLCBytes = hc.LLCBytes
	}
	if c.LLCWays == 0 {
		c.LLCWays = hc.LLCWays
	}
	if c.Cores == 0 {
		c.Cores = hc.Cores
	}
	if c.DeviceType == 0 {
		c.DeviceType = device.DefaultConfig().Type
	}
	return fmt.Sprintf("cfg{params=%016x,type=%d,llc=%d/%d,cores=%d,snc=%t}",
		xxhash.Sum64(pj, 0), c.DeviceType, c.LLCBytes, c.LLCWays, c.Cores, c.SNC)
}
