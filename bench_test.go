// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its experiment per iteration and reports the
// headline metric as custom units, so `go test -bench` output doubles as a
// compact reproduction report.
package cxl2sim_test

import (
	"testing"

	cxl2sim "repro"
	"repro/internal/cxl"
	devicepkg "repro/internal/device"
	"repro/internal/experiments"
	hostpkg "repro/internal/host"
	"repro/internal/infer"
	"repro/internal/infer/cluster"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// benchReps keeps per-iteration work bounded; the model is deterministic.
const benchReps = 200

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		if len(rows) != 18 {
			b.Fatal("Table III incomplete")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig3(experiments.Fig3Config{Reps: benchReps})
	}
	cs := experiments.Fig3Find(rows, "CS-rd", true, true)
	ld := experiments.Fig3Find(rows, "ld", false, true)
	b.ReportMetric(cs.LatencyNs, "CS-rd-LLC1-ns")
	b.ReportMetric(100*(cs.LatencyNs-ld.LatencyNs)/ld.LatencyNs, "vs-ld-%")
}

// BenchmarkInfer runs one serving simulation — Poisson arrivals,
// continuous batching, paged KV cache on Type-2 device-bias memory — and
// reports the serving-quality metrics alongside ns/op, so the perf gate
// covers the inference path end to end.
func BenchmarkInfer(b *testing.B) {
	var m infer.Metrics
	for i := 0; i < b.N; i++ {
		m = infer.Run(infer.Config{
			Seed:   7,
			Far:    infer.TierT2Dev,
			Policy: infer.StaticSplit{},
		})
	}
	b.ReportMetric(m.TPOT.Mean()*1000, "TPOT-ns")
	b.ReportMetric(m.Goodput/1000, "goodput-ktoks")
}

// BenchmarkCluster runs one 4-replica cluster serving simulation — the
// replicas draw KV blocks from a shared Type-3 pool behind one switch,
// with local blocks oversubscribed so the fabric actually contends — and
// reports fleet serving quality plus switch arbitration wait, extending
// the perf gate over the fabric + cluster path.
func BenchmarkCluster(b *testing.B) {
	var m cluster.Metrics
	for i := 0; i < b.N; i++ {
		m = cluster.Run(cluster.Config{
			Seed:         7,
			Replicas:     4,
			Requests:     48,
			RatePerSec:   400_000,
			LocalBlocks:  4,
			SharedBlocks: 24,
			Router:       cluster.NewRoundRobin(), // routers are single-use
		})
	}
	b.ReportMetric(m.TPOT.Mean()*1000, "TPOT-ns")
	b.ReportMetric(m.Goodput/1000, "goodput-ktoks")
	b.ReportMetric(float64(m.SwitchWaited().Microseconds()), "sw-wait-us")
}

// BenchmarkClusterSharded is BenchmarkCluster under sharded execution:
// the same simulation partitioned into one engine per host plus a hub
// shard, run with 4 workers. The metrics are byte-identical to the
// inline run (pinned by the cluster test suite); what this benchmark
// tracks is the wall-clock cost of the conservative-PDES machinery and
// the parallel speedup where cores are available.
func BenchmarkClusterSharded(b *testing.B) {
	var m cluster.Metrics
	for i := 0; i < b.N; i++ {
		m = cluster.Run(cluster.Config{
			Seed:         7,
			Replicas:     4,
			Requests:     48,
			RatePerSec:   400_000,
			LocalBlocks:  4,
			SharedBlocks: 24,
			Shards:       4,
			Router:       cluster.NewRoundRobin(), // routers are single-use
		})
	}
	b.ReportMetric(m.TPOT.Mean()*1000, "TPOT-ns")
	b.ReportMetric(m.Goodput/1000, "goodput-ktoks")
	b.ReportMetric(float64(m.SwitchWaited().Microseconds()), "sw-wait-us")
}

func BenchmarkFig4(b *testing.B) {
	var rows []experiments.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig4(experiments.Fig4Config{Reps: benchReps})
	}
	hb := experiments.Fig4Find(rows, "CO-wr", false, true, false)
	db := experiments.Fig4Find(rows, "CO-wr", false, true, true)
	b.ReportMetric(100*(hb.LatencyNs-db.LatencyNs)/hb.LatencyNs, "devbias-lower-%")
}

func BenchmarkFig5(b *testing.B) {
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5(experiments.Fig5Config{Reps: benchReps})
	}
	t2 := experiments.Fig5Find(rows, cxl.Ld, experiments.CaseT2Miss)
	t3 := experiments.Fig5Find(rows, cxl.Ld, experiments.CaseT3)
	b.ReportMetric(t2.LatencyNs, "T2-ld-ns")
	b.ReportMetric(100*(t2.LatencyNs-t3.LatencyNs)/t3.LatencyNs, "vs-T3-%")
}

func BenchmarkFig6(b *testing.B) {
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig6()
	}
	st := experiments.Fig6Find(rows, experiments.MechCXLSt, false, 256)
	mmio := experiments.Fig6Find(rows, experiments.MechPCIeMMIO, false, 256)
	b.ReportMetric(st.LatencyNs, "CXL-ST-256B-ns")
	b.ReportMetric(100*(mmio.LatencyNs-st.LatencyNs)/mmio.LatencyNs, "vs-MMIO-lower-%")
}

func BenchmarkTable4(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table4()
	}
	b.ReportMetric(experiments.Table4Find(rows, "cxl-zswap").Total, "cxl-total-us")
	b.ReportMetric(experiments.Table4Find(rows, "pcie-rdma-zswap").Total, "rdma-total-us")
	b.ReportMetric(experiments.Table4Find(rows, "pcie-dma-zswap").Total, "dma-total-us")
}

func BenchmarkWriteQueueCrossover(b *testing.B) {
	var rows []experiments.WriteQueueRow
	for i := 0; i < b.N; i++ {
		rows = experiments.WriteQueueSweep([]int{16, 64, 1024})
	}
	b.ReportMetric(experiments.FindWriteQueueRow(rows, "CO-wr", 64).BWGBs, "CO-wr-N64-GBs")
	b.ReportMetric(experiments.FindWriteQueueRow(rows, "st", 64).BWGBs, "st-N64-GBs")
}

// fig8Bench runs a reduced-horizon Fig. 8 scenario and reports the
// normalized p99 for one variant.
func fig8Bench(b *testing.B, feature string, v experiments.Fig8Variant) {
	b.Helper()
	cfg := experiments.Fig8Config{Duration: 120 * sim.Millisecond}
	run := experiments.Fig8Zswap
	if feature == "ksm" {
		run = experiments.Fig8Ksm
		// ksm's tail statistics need the full horizon: the scan quantum is
		// milliseconds-scale, so a short run under-samples the bursts.
		cfg.Duration = 300 * sim.Millisecond
	}
	var norm float64
	for i := 0; i < b.N; i++ {
		base := run(experiments.Baseline, ycsb.A, cfg)
		row := run(v, ycsb.A, cfg)
		if !row.VerifyOK {
			b.Fatal("data integrity lost")
		}
		norm = row.P99us / base.P99us
	}
	b.ReportMetric(norm, "p99-vs-baseline-x")
}

func BenchmarkFig8ZswapCPU(b *testing.B)  { fig8Bench(b, "zswap", experiments.Fig8Variant(0)) }
func BenchmarkFig8ZswapRDMA(b *testing.B) { fig8Bench(b, "zswap", experiments.Fig8Variant(1)) }
func BenchmarkFig8ZswapDMA(b *testing.B)  { fig8Bench(b, "zswap", experiments.Fig8Variant(2)) }
func BenchmarkFig8ZswapCXL(b *testing.B)  { fig8Bench(b, "zswap", experiments.Fig8Variant(3)) }
func BenchmarkFig8KsmCPU(b *testing.B)    { fig8Bench(b, "ksm", experiments.Fig8Variant(0)) }
func BenchmarkFig8KsmCXL(b *testing.B)    { fig8Bench(b, "ksm", experiments.Fig8Variant(3)) }

// BenchmarkSliceScaling measures the §V-A projection: aggregate D2H read
// bandwidth with 1/2/4 DCOH slices, saturating near the link payload rate.
func BenchmarkSliceScaling(b *testing.B) {
	var bw1, bw4 float64
	for i := 0; i < b.N; i++ {
		bw1 = sliceBandwidth(1)
		bw4 = sliceBandwidth(4)
	}
	b.ReportMetric(bw1, "1-slice-GBs")
	b.ReportMetric(bw4, "4-slice-GBs")
}

func sliceBandwidth(n int) float64 {
	p := cxl2sim.DefaultParams()
	h := hostpkg.MustNew(p, hostpkg.Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 2})
	a, err := devicepkg.NewSliceArray(p, devicepkg.DefaultConfig(), h.Home(), h.CXLLink, n)
	if err != nil {
		panic(err)
	}
	return a.ReadHostBandwidth(cxl.NCRead, 0x100000, 4096, 0)
}

// ---------- ablations (DESIGN.md §4) ----------

// BenchmarkAblationNCP: Insight 4 — H2D load latency with and without the
// device pre-pushing the line via NC-P.
func BenchmarkAblationNCP(b *testing.B) {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 4})
	line := make([]byte, cxl2sim.LineSize)
	var with, without cxl2sim.Time
	for i := 0; i < b.N; i++ {
		addr := cxl2sim.DeviceMemoryBase + cxl2sim.Addr((i%1024)*cxl2sim.PageSize)
		// High-b.N iterations revisit addresses: make the cold case cold.
		sys.Host.LLC().Invalidate(addr)
		sys.ResetTiming()
		without = sys.H2D(0, cxl2sim.Ld, addr, nil, 0).Done
		sys.ResetTiming()
		sys.D2H(cxl2sim.NCP, addr+64, line, 0)
		with = sys.H2D(0, cxl2sim.Ld, addr+64, nil, 0).Done
	}
	b.ReportMetric(without.Nanoseconds(), "cold-ld-ns")
	b.ReportMetric(with.Nanoseconds(), "pushed-ld-ns")
}

// BenchmarkAblationBias: a zswap-style D2D write stream in host- vs
// device-bias mode (the zpool placement write path).
func BenchmarkAblationBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sysHB := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 4})
		sysDB := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 4})
		base := cxl2sim.DeviceMemoryBase + 0x100000
		sysDB.EnterDeviceBias(base, 1<<20, 0)
		var hb, db cxl2sim.Time
		for off := 0; off < 4096; off += cxl2sim.LineSize {
			a := base + cxl2sim.Addr(off)
			if r := sysHB.D2D(cxl2sim.NCWrite, a, nil, 0); r.Done > hb {
				hb = r.Done
			}
			if r := sysDB.D2D(cxl2sim.NCWrite, a, nil, 0); r.Done > db {
				db = r.Done
			}
		}
		b.ReportMetric(hb.Microseconds(), "hostbias-4K-us")
		b.ReportMetric(db.Microseconds(), "devbias-4K-us")
	}
}

// BenchmarkAblationPipeline: Table IV's cxl row depends on overlapping the
// D2H pull, the compression IP and the zpool store. Compare the pipelined
// total against the sum of the unpipelined stages.
func BenchmarkAblationPipeline(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table4()
	}
	cxlRow := experiments.Table4Find(rows, "cxl-zswap")
	dma := experiments.Table4Find(rows, "pcie-dma-zswap")
	sequential := dma.TransferIn + dma.Compute + dma.StoreOut // same IP, unpipelined
	b.ReportMetric(cxlRow.Total, "pipelined-us")
	b.ReportMetric(sequential, "sequential-us")
}

// BenchmarkAblationZpoolPlacement: storing the compressed page into a
// device-memory zpool (D2D NC-wr, stays local) versus shipping it back to
// a host-memory zpool (D2H NC-wr, crosses the CXL link and consumes host
// DRAM) — the §VI-A capability only a Type-2 device offers cleanly. The
// key saving is interconnect traffic and host-memory footprint, not raw
// store latency.
func BenchmarkAblationZpoolPlacement(b *testing.B) {
	const compressedBytes = 2048
	var dev, hostT cxl2sim.Time
	var devLink, hostLink uint64
	for i := 0; i < b.N; i++ {
		sysD := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 4})
		dev = sysD.Dev.WriteDevBlock(cxl.NCWrite, cxl2sim.DeviceMemoryBase+0x200000, nil, compressedBytes, 0)
		devLink = sysD.Host.CXLLink.Transferred(0) + sysD.Host.CXLLink.Transferred(1)
		sysH := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 4})
		hostT = sysH.Dev.WriteHostBlock(cxl.NCWrite, 0x40000, nil, compressedBytes, 0)
		hostLink = sysH.Host.CXLLink.Transferred(0) + sysH.Host.CXLLink.Transferred(1)
	}
	b.ReportMetric(dev.Nanoseconds(), "devmem-zpool-ns")
	b.ReportMetric(hostT.Nanoseconds(), "hostmem-zpool-ns")
	b.ReportMetric(float64(devLink), "devmem-link-bytes")
	b.ReportMetric(float64(hostLink), "hostmem-link-bytes")
}

// BenchmarkAblationASICFabric: §V-B projects that replacing the 400 MHz
// FPGA with an ASIC-class fabric would bring D2D DMC-hit latency down to
// the emulated (host L1) level. Raise the fabric clock 5.5× and compare.
func BenchmarkAblationASICFabric(b *testing.B) {
	var fpga, asic cxl2sim.Time
	for i := 0; i < b.N; i++ {
		fpga = d2dHitLatency(cxl2sim.DefaultParams())
		p := cxl2sim.DefaultParams()
		// ASIC-class fabric: host-frequency clock shrinks every
		// fabric-cycle-derived latency proportionally.
		scale := p.Device.FabricGHz / p.Host.CoreGHz
		p.Device.FabricGHz = p.Host.CoreGHz
		p.Device.LSUIssue = cxl2sim.Time(float64(p.Device.LSUIssue) * scale)
		p.Device.LSUIssueGap = cxl2sim.Time(float64(p.Device.LSUIssueGap) * scale)
		p.Device.DCOHLookup = cxl2sim.Time(float64(p.Device.DCOHLookup) * scale)
		p.Device.DMCRead = cxl2sim.Time(float64(p.Device.DMCRead) * scale)
		p.Device.DMCWrite = cxl2sim.Time(float64(p.Device.DMCWrite) * scale)
		asic = d2dHitLatency(p)
	}
	b.ReportMetric(fpga.Nanoseconds(), "fpga-DMChit-ns")
	b.ReportMetric(asic.Nanoseconds(), "asic-DMChit-ns")
}

func d2dHitLatency(p *cxl2sim.Params) cxl2sim.Time {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{Params: p, LLCBytes: 1 << 20, LLCWays: 16, Cores: 2})
	addr := cxl2sim.DeviceMemoryBase + 0x1000
	sys.D2D(cxl2sim.CSRead, addr, nil, 0) // warm DMC
	sys.ResetTiming()
	return sys.D2D(cxl2sim.CSRead, addr, nil, 0).Done
}

// BenchmarkAblationKswapdQuantum sweeps kswapd's scheduling quantum for
// cpu-zswap: larger non-preemptible reclaim slices trade reclaim
// throughput for co-runner tail latency — the mechanism behind the Fig. 8
// cpu-zswap bar.
func BenchmarkAblationKswapdQuantum(b *testing.B) {
	var norms [3]float64
	batches := [3]int{2, 8, 32}
	for i := 0; i < b.N; i++ {
		for j, batch := range batches {
			cfg := experiments.Fig8Config{Duration: 120 * sim.Millisecond, KswapdBatch: batch}
			base := experiments.Fig8Zswap(experiments.Baseline, ycsb.A, cfg)
			row := experiments.Fig8Zswap(experiments.Fig8Variant(0), ycsb.A, cfg)
			norms[j] = row.P99us / base.P99us
		}
	}
	b.ReportMetric(norms[0], "batch2-p99x")
	b.ReportMetric(norms[1], "batch8-p99x")
	b.ReportMetric(norms[2], "batch32-p99x")
}

// BenchmarkAblationDoorbell: §VI-A chooses CS-read over NC-read for the
// device's mailbox polling loop because repeated CS-reads hit the DMC when
// the mailbox is unchanged.
func BenchmarkAblationDoorbell(b *testing.B) {
	var csPoll, ncPoll cxl2sim.Time
	for i := 0; i < b.N; i++ {
		// CS-read allocates into DMC, so a steady polling loop hits the
		// cache while the mailbox is unchanged; NC-read never allocates and
		// pays device memory on every poll.
		sysCS := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 4})
		mailbox := cxl2sim.DeviceMemoryBase + 0x1000
		sysCS.D2D(cxl.CSRead, mailbox, nil, 0) // first poll fills DMC
		sysCS.ResetTiming()
		csPoll = sysCS.D2D(cxl.CSRead, mailbox, nil, 0).Done

		sysNC := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 4})
		sysNC.D2D(cxl.NCRead, mailbox, nil, 0)
		sysNC.ResetTiming()
		ncPoll = sysNC.D2D(cxl.NCRead, mailbox, nil, 0).Done
	}
	b.ReportMetric(csPoll.Nanoseconds(), "CS-rd-poll-ns")
	b.ReportMetric(ncPoll.Nanoseconds(), "NC-rd-poll-ns")
}

// BenchmarkAblationReadahead: swap-cluster readahead (an extension; the
// kernel's page_cluster) converts sequential major faults into swap-cache
// hits. Reported: major faults with and without clustering for the same
// sequential re-touch of a swapped range.
func BenchmarkAblationReadahead(b *testing.B) {
	var without, with uint64
	for i := 0; i < b.N; i++ {
		without = readaheadMajors(0)
		with = readaheadMajors(4)
	}
	b.ReportMetric(float64(without), "majors-no-ra")
	b.ReportMetric(float64(with), "majors-ra4")
}

func readaheadMajors(cluster int) uint64 {
	sys := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 2})
	eng := cxl2sim.NewEngine()
	st, err := sys.NewZswapStack(eng, cxl2sim.CXL, 64, 100, 0)
	if err != nil {
		panic(err)
	}
	st.MM.ReadaheadPages = cluster
	// Generous watermarks give reclaim (and prefetch) headroom.
	st.MM.LowWM, st.MM.HighWM = 4, 24
	proc := sys.NewProc(eng, "app", -1)
	as := st.MM.NewAddressSpace(1)
	page := make([]byte, cxl2sim.PageSize)
	for i := range page {
		page[i] = byte(i % 7)
	}
	for v := uint64(0); v < 48; v++ {
		if err := as.Map(v, page, proc); err != nil {
			panic(err)
		}
	}
	// A second space overcommits memory, forcing the first set out.
	other := st.MM.NewAddressSpace(2)
	for v := uint64(0); v < 40; v++ {
		other.Map(v, page, proc)
		other.Read(v, proc)
		other.Read(v, proc) // keep the churner's pages active
	}
	// Let kswapd restore the watermark headroom readahead needs.
	eng.Run()
	before := st.MM.Stats().MajorFaults
	for v := uint64(0); v < 48; v++ {
		as.Read(v, proc)
		// Keep background reclaim flowing between faults.
		if proc.Now() > eng.Now() {
			eng.Advance(proc.Now())
		}
	}
	return st.MM.Stats().MajorFaults - before
}
