package cxl2sim_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	cxl2sim "repro"
)

// These tests pin the parallel runner's suite-level guarantees through the
// public API: a parallel run renders byte-identical output to a serial
// run, per-job seeds do not move when the worker count changes, and a
// crashed experiment is isolated to a failed result instead of taking the
// suite down.

// reportBytes renders the report at the given worker count.
func reportBytes(t *testing.T, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := cxl2sim.WriteReportOpts(&buf, cxl2sim.ReportOptions{
		Reps: 30, Workers: workers,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestReportParallelMatchesSerial is the tentpole acceptance check: the
// full report rendered from a parallel run must be byte-identical to the
// serial run for the same root seed.
func TestReportParallelMatchesSerial(t *testing.T) {
	serial := reportBytes(t, 1)
	for _, workers := range []int{2, 4, 16} {
		if got := reportBytes(t, workers); got != serial {
			t.Errorf("report bytes diverged at %d workers", workers)
		}
	}
}

// TestSuiteParallelMatchesSerial does the same for the cxlbench section
// suite (tables + figures + sweep rendered from one shared pool).
func TestSuiteParallelMatchesSerial(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		secs := cxl2sim.ExperimentSections(30)
		if _, err := cxl2sim.RunExperimentSections(&buf, secs,
			cxl2sim.JobOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	if serial == "" {
		t.Fatal("empty suite output")
	}
	if got := render(4); got != serial {
		t.Error("suite bytes diverged at 4 workers")
	}
}

// TestMeasureJobSeedStability pins the microbenchmark job constructors:
// results depend only on (root seed, job ID), not on the worker count.
func TestMeasureJobSeedStability(t *testing.T) {
	jobs := []cxl2sim.Job{
		cxl2sim.MeasureD2HJob("d2h/NC-rd", cxl2sim.Config{}, cxl2sim.NCRead, cxl2sim.MeasureSpec{Reps: 40}),
		cxl2sim.MeasureD2DJob("d2d/CO-rd", cxl2sim.Config{}, cxl2sim.CORead, cxl2sim.MeasureSpec{Reps: 40}),
		cxl2sim.MeasureH2DJob("h2d/ld", cxl2sim.Config{}, cxl2sim.Ld, cxl2sim.MeasureSpec{Reps: 40}),
	}
	run := func(workers int) []cxl2sim.Measurement {
		results := cxl2sim.RunJobs(jobs, cxl2sim.JobOptions{Workers: workers})
		if err := cxl2sim.FirstJobError(results); err != nil {
			t.Fatal(err)
		}
		var ms []cxl2sim.Measurement
		for _, r := range results {
			ms = append(ms, r.Value.(cxl2sim.Measurement))
		}
		return ms
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("job %q: serial %+v != parallel %+v", jobs[i].ID, serial[i], parallel[i])
		}
	}
}

// TestSuitePanicIsolation plants a panicking job in a custom section and
// checks that the suite reports the failure without losing the healthy
// sections' output.
func TestSuitePanicIsolation(t *testing.T) {
	secs := cxl2sim.ExperimentSections(30)
	table3, ok := cxl2sim.ExperimentSectionByName(secs, "table3")
	if !ok {
		t.Fatal("no table3 section")
	}
	bad := cxl2sim.ExperimentSection{
		Name: "planted",
		Jobs: []cxl2sim.Job{{ID: "planted/crash", Run: func(ctx *cxl2sim.JobCtx) (any, error) {
			panic("planted suite failure")
		}}},
		Render: func(w io.Writer, results []cxl2sim.JobResult) error {
			return cxl2sim.FirstJobError(results)
		},
	}
	var buf bytes.Buffer
	results, err := cxl2sim.RunExperimentSections(&buf, []cxl2sim.ExperimentSection{table3, bad},
		cxl2sim.JobOptions{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "planted suite failure") {
		t.Fatalf("err = %v, want planted failure", err)
	}
	if !strings.Contains(err.Error(), "planted") {
		t.Errorf("error does not name the failing section: %v", err)
	}
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("healthy section output lost")
	}
	var failed int
	for _, r := range results {
		if r.Err != nil {
			failed++
			if !r.Panicked {
				t.Errorf("job %q failed without Panicked", r.ID)
			}
		}
	}
	if failed != 1 {
		t.Errorf("failed jobs = %d, want exactly the planted one", failed)
	}
	if ferr := cxl2sim.FirstJobError(results); ferr == nil || !strings.Contains(ferr.Error(), "planted/crash") {
		t.Errorf("FirstJobError = %v, want planted/crash", ferr)
	}
}
