package cxl2sim

// Canonical name tables for the §V microbenchmark vocabulary. The HTTP
// service (internal/service) and the distributed worker (internal/dist)
// both parse measurement requests into jobs; sharing one table guarantees
// the two sides can never drift — a request the coordinator accepted is,
// by construction, one every worker can rebuild.

// D2HOpNames maps the paper's D2H/D2D access names to request hints.
var D2HOpNames = map[string]D2HReq{
	"NC-P": NCP, "NC-rd": NCRead, "NC-wr": NCWrite,
	"CO-rd": CORead, "CO-wr": COWrite, "CS-rd": CSRead,
}

// HostOpNames maps the host-side access names to operations.
var HostOpNames = map[string]HostOp{
	"ld": Ld, "nt-ld": NtLd, "st": St, "nt-st": NtSt,
}

// PlacementNames maps the cache-priming names (§V methodology) to
// placements.
var PlacementNames = map[string]Placement{
	"cold": PlaceCold, "LLC-1": PlaceLLC,
	"HMC-1": PlaceHMC, "DMC-1": PlaceDMC,
}
