package cxl2sim

import (
	"bytes"
	"strings"
	"testing"
)

func smallSystem(t testing.TB) *System {
	t.Helper()
	s, err := NewSystem(Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemDefaults(t *testing.T) {
	s := MustNewSystem(Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 2})
	if s.Dev.Type() != Type2 {
		t.Fatalf("default device type = %v", s.Dev.Type())
	}
	if s.P == nil {
		t.Fatal("params not set")
	}
	s3 := MustNewSystem(Config{DeviceType: Type3, LLCBytes: 1 << 20, LLCWays: 16, Cores: 2})
	if s3.Dev.Type() != Type3 {
		t.Fatal("Type3 personality not honored")
	}
}

func TestNewSystemRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.Host.CoreGHz = 0
	if _, err := NewSystem(Config{Params: p}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestFacadeD2HRoundTrip(t *testing.T) {
	s := smallSystem(t)
	line := bytes.Repeat([]byte{0x5A}, LineSize)
	s.WriteHostMemory(0x4000, line)
	res := s.D2H(CSRead, 0x4000, nil, 0)
	if res.Done <= 0 || !bytes.Equal(res.Data, line) {
		t.Fatalf("D2H read: %+v", res)
	}
	// NC-P pushes into LLC; a host load then hits it fast.
	s.D2H(NCP, 0x8000, line, 0)
	h := s.H2D(0, Ld, 0x8000, nil, 0)
	if !h.LLCHit {
		t.Fatal("NC-P push not visible to host load")
	}
}

func TestFacadeD2DAndBias(t *testing.T) {
	s := smallSystem(t)
	addr := DeviceMemoryBase + 0x10000
	line := bytes.Repeat([]byte{0x7B}, LineSize)
	s.D2D(COWrite, addr, line, 0)
	if s.BiasOf(addr) != HostBias {
		t.Fatal("default bias should be host")
	}
	done := s.EnterDeviceBias(DeviceMemoryBase, 1<<20, 0)
	if s.BiasOf(addr) != DeviceBias {
		t.Fatal("EnterDeviceBias failed")
	}
	res := s.D2D(CSRead, addr, nil, done)
	if res.Data[0] != 0x7B {
		t.Fatal("D2D data lost")
	}
}

func TestFacadeH2DDeviceMemory(t *testing.T) {
	s := smallSystem(t)
	addr := DeviceMemoryBase + 0x40000
	line := bytes.Repeat([]byte{0x21}, LineSize)
	s.H2D(0, NtSt, addr, line, 0)
	got := make([]byte, LineSize)
	s.ReadDeviceMemory(addr, got)
	if !bytes.Equal(got, line) {
		t.Fatal("H2D nt-st data missing")
	}
}

func TestZswapStackEndToEnd(t *testing.T) {
	s := smallSystem(t)
	eng := NewEngine()
	st, err := s.NewZswapStack(eng, CXL, 256, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	proc := s.NewProc(eng, "app", -1)
	as := st.MM.NewAddressSpace(1)
	page := bytes.Repeat([]byte("cxl2sim!"), PageSize/8)
	// Overcommit: 300 pages in 256 frames forces reclaim through cxl-zswap.
	for v := uint64(0); v < 300; v++ {
		if err := as.Map(v, page, proc); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if st.MM.Stats().SwapOuts == 0 {
		t.Fatal("no reclaim happened")
	}
	// Fault everything back and verify.
	for v := uint64(0); v < 300; v++ {
		got, err := as.Read(v, proc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, page) {
			t.Fatalf("page %d corrupted", v)
		}
	}
	if st.Zswap.Stats().Stores == 0 {
		t.Fatal("zswap never engaged")
	}
	// The CXL variant pools in device memory.
	if !st.Zswap.Backend().PoolInDeviceMemory() {
		t.Fatal("cxl pool should live in device memory")
	}
}

func TestKsmStackEndToEnd(t *testing.T) {
	s := smallSystem(t)
	eng := NewEngine()
	st, err := s.NewKsmStack(eng, CXL, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	proc := s.NewProc(eng, "loader", -1)
	shared := bytes.Repeat([]byte{0x42}, PageSize)
	for vm := 0; vm < 4; vm++ {
		as := st.MM.NewAddressSpace(vm + 1)
		if err := as.Map(0, shared, proc); err != nil {
			t.Fatal(err)
		}
		st.Scanner.RegisterRange(as, 0, 1)
	}
	st.Daemon.PagesPerBatch = 4
	st.Daemon.SleepBetween = Millisecond
	st.Daemon.Start()
	eng.RunUntil(50 * Millisecond)
	st.Daemon.Stop()
	eng.Run()
	ks := st.Scanner.Stats()
	if ks.PagesShared != 1 || ks.PagesSharing != 4 {
		t.Fatalf("ksm stats: %+v", ks)
	}
}

func TestStackValidation(t *testing.T) {
	s := smallSystem(t)
	eng := NewEngine()
	if _, err := s.NewZswapStack(eng, CPU, 0, 20, 0); err == nil {
		t.Fatal("zero pages accepted")
	}
	if _, err := s.NewKsmStack(eng, CPU, -1, 0); err == nil {
		t.Fatal("negative pages accepted")
	}
}

func TestExperimentRunnersSmoke(t *testing.T) {
	var sb strings.Builder
	PrintFig3(&sb, RunFig3(8))
	PrintTable3(&sb, RunTable3())
	PrintTable4(&sb, RunTable4())
	PrintWriteQueueSweep(&sb, RunWriteQueueSweep([]int{16, 32}))
	if !strings.Contains(sb.String(), "Fig. 3") || !strings.Contains(sb.String(), "Table III") {
		t.Fatal("runner output incomplete")
	}
	if len(Workloads()) != 4 {
		t.Fatal("Workloads() wrong")
	}
}

func TestResetTimingIdempotent(t *testing.T) {
	s := smallSystem(t)
	a := s.D2H(NCRead, 0x1000, nil, 0)
	s.ResetTiming()
	b := s.D2H(NCRead, 0x1000, nil, 0)
	if a.Done != b.Done {
		t.Fatalf("timing not reset: %v vs %v", a.Done, b.Done)
	}
}

func TestMicrobenchAPI(t *testing.T) {
	s := smallSystem(t)
	// D2H: HMC hit must be fastest, LLC hit faster than cold.
	hmc, err := s.MeasureD2H(CSRead, MeasureSpec{Reps: 50, Place: PlaceHMC})
	if err != nil {
		t.Fatal(err)
	}
	llc, _ := s.MeasureD2H(CSRead, MeasureSpec{Reps: 50, Place: PlaceLLC})
	cold, _ := s.MeasureD2H(CSRead, MeasureSpec{Reps: 50, Place: PlaceCold})
	if !(hmc.MedianNs < llc.MedianNs && llc.MedianNs < cold.MedianNs) {
		t.Fatalf("D2H ordering: HMC %.1f, LLC %.1f, cold %.1f", hmc.MedianNs, llc.MedianNs, cold.MedianNs)
	}
	// D2D: DMC hit beats miss.
	dmc, err := s.MeasureD2D(CSRead, MeasureSpec{Reps: 50, Place: PlaceDMC})
	if err != nil {
		t.Fatal(err)
	}
	dcold, _ := s.MeasureD2D(CSRead, MeasureSpec{Reps: 50, Place: PlaceCold})
	if dmc.MedianNs >= dcold.MedianNs {
		t.Fatalf("D2D ordering: DMC %.1f vs cold %.1f", dmc.MedianNs, dcold.MedianNs)
	}
	// H2D: NC-P-pushed (PlaceLLC) beats cold; owned DMC hit is slowest.
	pushed, err := s.MeasureH2D(Ld, MeasureSpec{Reps: 50, Place: PlaceLLC})
	if err != nil {
		t.Fatal(err)
	}
	hcold, _ := s.MeasureH2D(Ld, MeasureSpec{Reps: 50, Place: PlaceCold})
	owned, _ := s.MeasureH2D(Ld, MeasureSpec{Reps: 50, Place: PlaceDMC})
	if !(pushed.MedianNs < hcold.MedianNs && hcold.MedianNs < owned.MedianNs) {
		t.Fatalf("H2D ordering: pushed %.1f, cold %.1f, owned %.1f", pushed.MedianNs, hcold.MedianNs, owned.MedianNs)
	}
	// Invalid placements are rejected.
	if _, err := s.MeasureD2H(CSRead, MeasureSpec{Place: PlaceDMC}); err == nil {
		t.Fatal("PlaceDMC accepted for D2H")
	}
	if _, err := s.MeasureD2D(CSRead, MeasureSpec{Place: PlaceLLC}); err == nil {
		t.Fatal("PlaceLLC accepted for D2D")
	}
	if _, err := s.MeasureH2D(Ld, MeasureSpec{Place: PlaceHMC}); err == nil {
		t.Fatal("PlaceHMC accepted for H2D")
	}
	if hmc.Reps != 50 || hmc.Burst != 16 {
		t.Fatalf("spec defaults wrong: %+v", hmc)
	}
	if PlaceCold.String() != "cold" || PlaceDMC.String() != "DMC-1" {
		t.Fatal("Placement names wrong")
	}
}
