package cxl2sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/stats"
)

// This file provides the paper's §V microbenchmark methodology as a public
// API: issue N requests, record the issue time of the first and the
// completion of the Nth (the memo-style measurement), with explicit control
// over the cache placement being measured (LLC-1/LLC-0, DMC-1/DMC-0,
// HMC warm/cold).

// Placement primes where the target lines sit before each measurement.
type Placement uint8

// Placements.
const (
	// PlaceCold leaves every cache cold (LLC-0 / DMC-0 / HMC miss).
	PlaceCold Placement = iota
	// PlaceLLC demotes the lines into host LLC (the paper's CLDEMOTE
	// priming; LLC-1).
	PlaceLLC
	// PlaceHMC warms the device's host-memory cache with CS-reads.
	PlaceHMC
	// PlaceDMC warms the device-memory cache with CS-reads (DMC-1).
	PlaceDMC
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case PlaceCold:
		return "cold"
	case PlaceLLC:
		return "LLC-1"
	case PlaceHMC:
		return "HMC-1"
	case PlaceDMC:
		return "DMC-1"
	default:
		return fmt.Sprintf("Placement(%d)", uint8(p))
	}
}

// Measurement is a microbenchmark outcome: median single-access latency
// (over Reps repetitions) and the bandwidth of Burst back-to-back accesses,
// following the §V methodology.
type Measurement struct {
	MedianNs     float64
	StdDevNs     float64
	BandwidthGBs float64
	Reps, Burst  int
}

// MeasureSpec configures a measurement; zero values take the paper's
// settings (1000 reps, 16-access bursts).
type MeasureSpec struct {
	Reps  int
	Burst int
	Place Placement
}

func (m *MeasureSpec) setDefaults() {
	if m.Reps == 0 {
		m.Reps = 1000
	}
	if m.Burst == 0 {
		m.Burst = 16
	}
}

// hostProbe returns the i-th distinct host line of the measurement stream.
func hostProbe(i int) Addr {
	return Addr(0x0400_0000) + Addr((i*2654435761)%(1<<20))*LineSize
}

// devProbe returns the i-th distinct device line.
func devProbe(i int) Addr {
	return DeviceMemoryBase + Addr(2<<20) + Addr((i*2654435761)%(1<<18))*LineSize
}

// MeasureD2H measures a D2H request type against host memory with the
// given placement (PlaceCold, PlaceLLC or PlaceHMC).
func (s *System) MeasureD2H(req D2HReq, spec MeasureSpec) (Measurement, error) {
	spec.setDefaults()
	prime := func(addr Addr) {
		switch spec.Place {
		case PlaceCold:
			s.Host.LLC().Invalidate(addr)
			s.Dev.HMC().Invalidate(addr)
		case PlaceLLC:
			s.Host.Core(0).CLDemote(addr, cache.Exclusive, nil, 0)
			s.Dev.HMC().Invalidate(addr)
		case PlaceHMC:
			s.Dev.D2H(CSRead, addr, nil, 0)
			s.Host.LLC().Invalidate(addr)
		default:
			return
		}
	}
	if spec.Place == PlaceDMC {
		return Measurement{}, fmt.Errorf("cxl2sim: PlaceDMC does not apply to D2H")
	}
	lat := stats.NewSample(spec.Reps)
	for rep := 0; rep < spec.Reps; rep++ {
		addr := hostProbe(rep)
		prime(addr)
		s.ResetTiming()
		lat.Add(s.Dev.D2H(req, addr, nil, 0).Done.Nanoseconds())
	}
	base := spec.Reps + 1
	for i := 0; i < spec.Burst; i++ {
		prime(hostProbe(base + i))
	}
	s.ResetTiming()
	var last Time
	for i := 0; i < spec.Burst; i++ {
		if r := s.Dev.D2H(req, hostProbe(base+i), nil, 0); r.Done > last {
			last = r.Done
		}
	}
	return Measurement{
		MedianNs:     lat.Median(),
		StdDevNs:     lat.StdDev(),
		BandwidthGBs: float64(spec.Burst*LineSize) / last.Seconds() / 1e9,
		Reps:         spec.Reps,
		Burst:        spec.Burst,
	}, nil
}

// MeasureD2D measures a D2D request type against device memory with the
// given placement (PlaceCold or PlaceDMC).
func (s *System) MeasureD2D(req D2HReq, spec MeasureSpec) (Measurement, error) {
	spec.setDefaults()
	if spec.Place != PlaceCold && spec.Place != PlaceDMC {
		return Measurement{}, fmt.Errorf("cxl2sim: D2D placement must be PlaceCold or PlaceDMC")
	}
	prime := func(addr Addr) {
		if spec.Place == PlaceDMC {
			s.Dev.D2D(CSRead, addr, nil, 0)
		} else {
			s.Dev.DMC().Invalidate(addr)
		}
	}
	lat := stats.NewSample(spec.Reps)
	for rep := 0; rep < spec.Reps; rep++ {
		addr := devProbe(rep)
		prime(addr)
		s.ResetTiming()
		lat.Add(s.Dev.D2D(req, addr, nil, 0).Done.Nanoseconds())
	}
	base := spec.Reps + 1
	for i := 0; i < spec.Burst; i++ {
		prime(devProbe(base + i))
	}
	s.ResetTiming()
	var last Time
	for i := 0; i < spec.Burst; i++ {
		if r := s.Dev.D2D(req, devProbe(base+i), nil, 0); r.Done > last {
			last = r.Done
		}
	}
	return Measurement{
		MedianNs:     lat.Median(),
		StdDevNs:     lat.StdDev(),
		BandwidthGBs: float64(spec.Burst*LineSize) / last.Seconds() / 1e9,
		Reps:         spec.Reps,
		Burst:        spec.Burst,
	}, nil
}

// MeasureH2D measures a host op against device memory with the given
// placement (PlaceCold or PlaceDMC; PlaceLLC measures the NC-P-pushed fast
// path).
func (s *System) MeasureH2D(op HostOp, spec MeasureSpec) (Measurement, error) {
	spec.setDefaults()
	if spec.Place == PlaceHMC {
		return Measurement{}, fmt.Errorf("cxl2sim: PlaceHMC does not apply to H2D")
	}
	prime := func(addr Addr) {
		s.Host.LLC().Invalidate(addr)
		switch spec.Place {
		case PlaceDMC:
			s.Dev.SetDMCState(addr, cache.Owned, nil)
		case PlaceLLC:
			s.Dev.D2H(NCP, addr, nil, 0)
		}
	}
	core := s.Host.Core(0)
	lat := stats.NewSample(spec.Reps)
	for rep := 0; rep < spec.Reps; rep++ {
		addr := devProbe(rep)
		prime(addr)
		s.ResetTiming()
		lat.Add(core.Access(op, addr, nil, 0).Done.Nanoseconds())
	}
	base := spec.Reps + 1
	for i := 0; i < spec.Burst; i++ {
		prime(devProbe(base + i))
	}
	s.ResetTiming()
	var last Time
	for i := 0; i < spec.Burst; i++ {
		if r := core.Access(op, devProbe(base+i), nil, 0); r.Done > last {
			last = r.Done
		}
	}
	return Measurement{
		MedianNs:     lat.Median(),
		StdDevNs:     lat.StdDev(),
		BandwidthGBs: float64(spec.Burst*LineSize) / last.Seconds() / 1e9,
		Reps:         spec.Reps,
		Burst:        spec.Burst,
	}, nil
}
