package cxl2sim

import (
	"io"

	"repro/internal/experiments"
	"repro/internal/workload"
	"repro/internal/ycsb"
)

// The experiment drivers regenerate the paper's evaluation. Each Run
// function returns structured rows; each Print function renders them like
// the paper's figure or table.

// Fig3Row is one bar of Fig. 3 (D2H latency/bandwidth, true vs emulated).
type Fig3Row = experiments.Fig3Row

// RunFig3 measures true and UPI-emulated D2H accesses. reps <= 0 uses the
// paper's 1000 repetitions.
func RunFig3(reps int) []Fig3Row {
	cfg := experiments.Fig3Config{}
	if reps > 0 {
		cfg.Reps = reps
	}
	return experiments.Fig3(cfg)
}

// PrintFig3 renders Fig. 3 rows.
func PrintFig3(w io.Writer, rows []Fig3Row) { experiments.PrintFig3(w, rows) }

// Fig4Row is one bar of Fig. 4 (D2D bias modes).
type Fig4Row = experiments.Fig4Row

// RunFig4 measures D2D accesses in host- and device-bias modes.
func RunFig4(reps int) []Fig4Row {
	cfg := experiments.Fig4Config{}
	if reps > 0 {
		cfg.Reps = reps
	}
	return experiments.Fig4(cfg)
}

// PrintFig4 renders Fig. 4 rows.
func PrintFig4(w io.Writer, rows []Fig4Row) { experiments.PrintFig4(w, rows) }

// Fig5Row is one bar of Fig. 5 (H2D, Type-2 vs Type-3, DMC states, NC-P).
type Fig5Row = experiments.Fig5Row

// RunFig5 measures H2D accesses across device personalities and DMC states.
func RunFig5(reps int) []Fig5Row {
	cfg := experiments.Fig5Config{}
	if reps > 0 {
		cfg.Reps = reps
	}
	return experiments.Fig5(cfg)
}

// PrintFig5 renders Fig. 5 rows.
func PrintFig5(w io.Writer, rows []Fig5Row) { experiments.PrintFig5(w, rows) }

// Fig6Row is one point of Fig. 6 (transfer-size sweep, CXL vs PCIe).
type Fig6Row = experiments.Fig6Row

// RunFig6 sweeps transfer sizes across every mechanism in both directions.
func RunFig6() []Fig6Row { return experiments.Fig6() }

// PrintFig6 renders Fig. 6 rows.
func PrintFig6(w io.Writer, rows []Fig6Row) { experiments.PrintFig6(w, rows) }

// WriteFig6CSV renders Fig. 6 rows as CSV for external plotting.
func WriteFig6CSV(w io.Writer, rows []Fig6Row) error { return experiments.WriteFig6CSV(w, rows) }

// Table3Row is one row of Table III (coherence states after D2H).
type Table3Row = experiments.Table3Row

// RunTable3 drives every D2H type against every initial placement and
// reads the resulting HMC/LLC states.
func RunTable3() []Table3Row { return experiments.Table3() }

// PrintTable3 renders Table III.
func PrintTable3(w io.Writer, rows []Table3Row) { experiments.PrintTable3(w, rows) }

// Table4Row is one row of Table IV (offload latency breakdown).
type Table4Row = experiments.Table4Row

// RunTable4 measures the zswap compression-offload breakdown per backend.
func RunTable4() []Table4Row { return experiments.Table4() }

// PrintTable4 renders Table IV.
func PrintTable4(w io.Writer, rows []Table4Row) { experiments.PrintTable4(w, rows) }

// Fig8Row is one bar of Fig. 8 (Redis p99 under kernel-feature variants).
type Fig8Row = experiments.Fig8Row

// Fig8Config tunes the co-simulation (zero values take calibrated
// defaults: 300 ms horizon, 60k ops/s).
type Fig8Config = experiments.Fig8Config

// RunFig8 runs one feature ("zswap" or "ksm") across the baseline and all
// four backends for the given workloads (nil = all of A–D).
func RunFig8(feature string, workloads []Workload, cfg Fig8Config) []Fig8Row {
	return experiments.Fig8(feature, workloads, cfg)
}

// PrintFig8 renders Fig. 8 rows.
func PrintFig8(w io.Writer, rows []Fig8Row) { experiments.PrintFig8(w, rows) }

// InferRow is one scenario of the LLM-serving KV-placement experiment:
// TTFT/TPOT/goodput plus per-tier KV traffic for one placement policy.
type InferRow = experiments.InferRow

// InferConfig tunes the serving experiment (zero values take the default
// 48-request runs with the job's derived seed).
type InferConfig = experiments.InferConfig

// RunInfer runs every KV-placement scenario (all-DRAM baseline, one
// static placement per far tier, LRU spill, device-bias-pinned decode).
func RunInfer(cfg InferConfig) []InferRow { return experiments.Infer(cfg) }

// PrintInfer renders the serving rows.
func PrintInfer(w io.Writer, rows []InferRow) { experiments.PrintInfer(w, rows) }

// FindInferRow locates a scenario's row by name (e.g. "all-dram").
func FindInferRow(rows []InferRow, scenario string) InferRow {
	return experiments.InferFind(rows, scenario)
}

// WriteQueueRow is one point of the §V-A write-queue sweep.
type WriteQueueRow = experiments.WriteQueueRow

// RunWriteQueueSweep measures write bandwidth against burst length,
// exposing the write-queue knee and the CO-wr/st crossover. nil uses the
// default burst ladder.
func RunWriteQueueSweep(ns []int) []WriteQueueRow { return experiments.WriteQueueSweep(ns) }

// PrintWriteQueueSweep renders the sweep.
func PrintWriteQueueSweep(w io.Writer, rows []WriteQueueRow) {
	experiments.PrintWriteQueueSweep(w, rows)
}

// Workloads lists the YCSB core workloads A–D.
func Workloads() []Workload { return ycsb.Workloads() }

// WorkloadTrace is a recorded request stream in the versioned binary trace
// format: freeze any synthetic or captured stream once, replay it
// bit-for-bit across policies, worker counts and binary versions.
type WorkloadTrace = workload.Trace

// DecodeWorkloadTrace parses an encoded trace, validating version and
// length fields.
func DecodeWorkloadTrace(data []byte) (*WorkloadTrace, error) {
	return workload.DecodeTrace(data)
}

// RecordInferTrace records the request stream the infer section serves
// under rootSeed and cfg — feed the result back through InferConfig.Trace
// (or InferSectionTrace) to reproduce the runs exactly.
func RecordInferTrace(rootSeed int64, cfg InferConfig) *WorkloadTrace {
	return experiments.InferTrace(rootSeed, cfg)
}

// InferSectionTrace builds the infer experiment section replaying t
// through every placement scenario.
func InferSectionTrace(reps int, t *WorkloadTrace) ExperimentSection {
	return experiments.InferSection(experiments.InferConfig{Reps: reps, Trace: t})
}

// SectionTraceKey is the canonical result-cache key for a section run that
// replays a trace: the trace's content hash joins the key so distinct
// streams never share a cache entry.
func SectionTraceKey(name string, reps int, seed int64, format string, t *WorkloadTrace) string {
	return experiments.SectionKeyTrace(name, reps, seed, format, t.Hash())
}

// WorkloadRow is one row of the workload traffic-library section: a
// temporal arrival model's realized stream (recorded vs replayed) or a
// client cohort's realized share and shape.
type WorkloadRow = experiments.WorkloadRow

// WorkloadConfig tunes the workload section.
type WorkloadConfig = experiments.WorkloadConfig

// RunWorkload runs the traffic-library characterization section.
func RunWorkload(cfg WorkloadConfig) []WorkloadRow { return experiments.Workload(cfg) }

// PrintWorkload renders the workload rows.
func PrintWorkload(w io.Writer, rows []WorkloadRow) { experiments.PrintWorkload(w, rows) }
