package cxl2sim

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/ksm"
	"repro/internal/kvs"
	"repro/internal/mem"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/zswap"
)

// Engine is the discrete-event engine driving co-simulations.
type Engine = sim.Engine

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// Proc is a cooperative simulated process (see internal/sim).
type Proc = sim.Proc

// Re-exported kernel-feature building blocks for applications that compose
// their own scenarios (the examples and cmd/kvsbench use these).
type (
	// MM is the kernel memory manager (frames, LRU, watermarks, reclaim).
	MM = kernel.MM
	// AddressSpace is one process/VM page table with CoW.
	AddressSpace = kernel.AddressSpace
	// BackingSwap is the backing swap device.
	BackingSwap = kernel.BackingSwap
	// Kswapd is the background reclaim daemon.
	Kswapd = kernel.Kswapd
	// Zswap is the compressed swap cache.
	Zswap = zswap.Zswap
	// KsmScanner is the samepage-merging scanner.
	KsmScanner = ksm.Scanner
	// KsmDaemon is ksmd.
	KsmDaemon = ksm.Daemon
	// KVSServer is the Redis-like co-running application.
	KVSServer = kvs.Server
	// OffloadPlatform bundles the hardware the backends run on.
	OffloadPlatform = offload.Platform
)

// ZswapStack is a ready-to-run zswap configuration over a System: memory
// manager, backing swap, zswap with the chosen offload backend, and kswapd.
type ZswapStack struct {
	Eng     *Engine
	MM      *MM
	Backing *BackingSwap
	Zswap   *Zswap
	Kswapd  *Kswapd
	Variant OffloadVariant
}

// NewZswapStack builds the §VI-A stack: totalPages of managed RAM, a
// zswap pool capped at maxPoolPercent, the chosen offload backend (the CXL
// variant places the pool in device memory), and kswapd pinned to
// kswapdCore.
func (s *System) NewZswapStack(eng *Engine, v OffloadVariant, totalPages, maxPoolPercent, kswapdCore int) (*ZswapStack, error) {
	if totalPages <= 0 {
		return nil, fmt.Errorf("cxl2sim: totalPages must be positive")
	}
	pl := offload.NewPlatform(s.Host)
	backend := offload.NewZswapBackend(v, pl)
	poolBase := Addr(0x8000_0000)
	if backend.PoolInDeviceMemory() {
		poolBase = mem.RegionDevice.Base + (64 << 20)
	}
	mm := kernel.NewMM(s.P, s.Host.Store(), Addr(0x2000_0000), totalPages)
	backing := kernel.NewBackingSwap(18*Microsecond, 22*Microsecond)
	z, err := zswap.New(zswap.Config{
		MaxPoolPercent: maxPoolPercent,
		TotalRAMPages:  totalPages,
		PoolBase:       poolBase,
		PoolPages:      totalPages / 2,
	}, backend, backing)
	if err != nil {
		return nil, err
	}
	mm.SetSwap(z)
	kd := kernel.NewKswapd(eng, mm, s.Host.Core(kswapdCore).Sched)
	return &ZswapStack{Eng: eng, MM: mm, Backing: backing, Zswap: z, Kswapd: kd, Variant: v}, nil
}

// KsmStack is a ready-to-run ksm configuration over a System.
type KsmStack struct {
	Eng     *Engine
	MM      *MM
	Scanner *KsmScanner
	Daemon  *KsmDaemon
	Variant OffloadVariant
}

// NewKsmStack builds the §VI-B stack: totalPages of managed RAM, a scanner
// with the chosen offload backend, and ksmd pinned to ksmdCore.
func (s *System) NewKsmStack(eng *Engine, v OffloadVariant, totalPages, ksmdCore int) (*KsmStack, error) {
	if totalPages <= 0 {
		return nil, fmt.Errorf("cxl2sim: totalPages must be positive")
	}
	pl := offload.NewPlatform(s.Host)
	mm := kernel.NewMM(s.P, s.Host.Store(), Addr(0x2000_0000), totalPages)
	mm.SetSwap(kernel.NewBackingSwap(18*Microsecond, 22*Microsecond))
	sc := ksm.NewScanner(mm, offload.NewKsmBackend(v, pl))
	d := ksm.NewDaemon(eng, sc, s.Host.Core(ksmdCore).Sched)
	return &KsmStack{Eng: eng, MM: mm, Scanner: sc, Daemon: d, Variant: v}, nil
}

// NewProc creates a cooperative process pinned to a host core (core < 0
// for a free-floating process that consumes no CPU).
func (s *System) NewProc(eng *Engine, name string, core int) *Proc {
	if core < 0 {
		return sim.NewProc(eng, name, nil)
	}
	return sim.NewProc(eng, name, s.Host.Core(core).Sched)
}
