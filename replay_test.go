package cxl2sim_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	cxl2sim "repro"
)

// Record-and-replay tests pin the workload trace contract at the module
// boundary: the checked-in trace is the frozen request stream of the infer
// golden config, a replay of it reproduces the live run exactly, and the
// replay renders byte-identically at any worker count. Regenerate the
// trace (after an intentional workload recalibration) with:
//
//	go test . -run TraceGolden -update

const inferTracePath = "testdata/infer.trace"

// recordGoldenTrace records the stream behind TestInferGolden's config.
func recordGoldenTrace() *cxl2sim.WorkloadTrace {
	return cxl2sim.RecordInferTrace(0, cxl2sim.InferConfig{Seed: 42})
}

// TestInferTraceGolden pins the checked-in trace bytes: recording the
// golden infer config today must reproduce the file exactly. Unlike the
// rendered goldens there is no numeric tolerance — the encoding is
// canonical, so a single differing byte means the generator changed.
func TestInferTraceGolden(t *testing.T) {
	got := recordGoldenTrace().Encode()
	if *updateGolden {
		if err := os.WriteFile(filepath.Join("testdata", "infer.trace"), got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", inferTracePath)
		return
	}
	want, err := os.ReadFile(inferTracePath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recorded trace diverged from %s: %d bytes vs %d golden"+
			" (run with -update if the workload change is intended)", inferTracePath, len(got), len(want))
	}
}

// TestInferTraceReplayMatchesLive replays the checked-in trace through
// every placement scenario and requires the rows to equal live generation
// field for field — the bit-for-bit guarantee the trace format exists for.
func TestInferTraceReplayMatchesLive(t *testing.T) {
	data, err := os.ReadFile(inferTracePath)
	if err != nil {
		t.Fatalf("%v (run TestInferTraceGolden with -update to create it)", err)
	}
	tr, err := cxl2sim.DecodeWorkloadTrace(data)
	if err != nil {
		t.Fatalf("checked-in trace does not decode: %v", err)
	}
	live := cxl2sim.RunInfer(cxl2sim.InferConfig{Seed: 42})
	replay := cxl2sim.RunInfer(cxl2sim.InferConfig{Seed: 42, Trace: tr})
	if !reflect.DeepEqual(live, replay) {
		t.Fatalf("replayed rows diverged from live generation:\n live   %+v\n replay %+v", live, replay)
	}
}

// TestInferTraceReplaySerialParallel renders the trace-replay infer
// section at several worker counts and against the live section: all four
// renders must be byte-identical. CI runs this under -race with
// -parallel 4, which is the issue's acceptance check.
func TestInferTraceReplaySerialParallel(t *testing.T) {
	const reps = 25
	render := func(sec cxl2sim.ExperimentSection, workers int) string {
		t.Helper()
		var buf bytes.Buffer
		if _, err := cxl2sim.RunExperimentSections(&buf, []cxl2sim.ExperimentSection{sec},
			cxl2sim.JobOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	liveSec, ok := cxl2sim.ExperimentSectionByName(cxl2sim.ExperimentSections(reps), "infer")
	if !ok {
		t.Fatal("no infer section")
	}
	live := render(liveSec, 1)

	tr := cxl2sim.RecordInferTrace(0, cxl2sim.InferConfig{Reps: reps})
	replaySec := cxl2sim.InferSectionTrace(reps, tr)
	if got := render(replaySec, 1); got != live {
		t.Errorf("serial trace replay diverged from live section:\n live:\n%s\n replay:\n%s", live, got)
	}
	for _, workers := range []int{2, 4} {
		if got := render(replaySec, workers); got != live {
			t.Errorf("trace replay diverged at %d workers", workers)
		}
	}
}
