// Package cxl2sim is a simulation-based reproduction of "Demystifying a CXL
// Type-2 Device: A Heterogeneous Cooperative Computing Perspective"
// (MICRO 2024).
//
// It provides, in one coherent model:
//
//   - a transaction-level CXL Type-2 device (DCOH with host-memory and
//     device-memory caches, the NC-P/NC/CO/CS cache hints of Table III,
//     host-/device-bias modes) attachable to a dual-socket host model;
//   - the comparison substrates the paper measures against: a UPI-emulated
//     Type-2 device (remote NUMA node), a CXL Type-3 personality, and PCIe
//     MMIO/DMA/RDMA/DOCA transfer engines;
//   - functional Linux-kernel-feature models — zswap with a zbud pool and
//     ksm with real unstable/stable trees — whose data-plane functions run
//     on pluggable offload backends (cpu-*, pcie-rdma-*, pcie-dma-*,
//     cxl-*), moving and verifying real bytes end to end;
//   - drivers that regenerate every table and figure of the paper's
//     evaluation (Fig. 3–6, Fig. 8, Tables III–IV).
//
// The top-level API wraps the internal packages: build a System, issue
// D2H/D2D/H2D accesses, run kernel-feature co-simulations, or regenerate
// the paper's experiments wholesale. See DESIGN.md for the model inventory
// and EXPERIMENTS.md for paper-vs-measured results.
package cxl2sim

import (
	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/offload"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/ycsb"
)

// Re-exported core vocabulary.
type (
	// Time is a simulated timestamp/duration in picoseconds.
	Time = sim.Time
	// Addr is a physical address in the unified host+device space.
	Addr = phys.Addr
	// Params is the complete timing model; see DefaultParams.
	Params = timing.Params
	// D2HReq is a device-accelerator cache hint (NC-P / NC / CO / CS).
	D2HReq = cxl.D2HReq
	// HostOp is a host-CPU memory operation (ld / nt-ld / st / nt-st).
	HostOp = cxl.HostOp
	// DeviceType selects the device personality (Type2 or Type3).
	DeviceType = cxl.DeviceType
	// LineState is a cache-line coherence state (I/S/E/M/O).
	LineState = cache.State
	// BiasMode is a device-memory region's coherence mode.
	BiasMode = device.BiasMode
	// OffloadVariant selects where kernel-feature data planes execute.
	OffloadVariant = offload.Variant
	// Workload is a YCSB core workload (A–D).
	Workload = ycsb.Workload
)

// Re-exported constants.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond

	// D2H request hints (§IV-A, Table III).
	NCP     = cxl.NCP
	NCRead  = cxl.NCRead
	NCWrite = cxl.NCWrite
	CORead  = cxl.CORead
	COWrite = cxl.COWrite
	CSRead  = cxl.CSRead

	// Host memory operations.
	Ld   = cxl.Ld
	NtLd = cxl.NtLd
	St   = cxl.St
	NtSt = cxl.NtSt

	// Device personalities.
	Type2 = cxl.Type2
	Type3 = cxl.Type3

	// Cache-line coherence states.
	Invalid   = cache.Invalid
	Shared    = cache.Shared
	Exclusive = cache.Exclusive
	Modified  = cache.Modified
	Owned     = cache.Owned

	// Bias modes (§IV-B).
	HostBias   = device.HostBias
	DeviceBias = device.DeviceBias

	// Offload backends (§VI–VII).
	CPU      = offload.CPU
	PCIeRDMA = offload.PCIeRDMA
	PCIeDMA  = offload.PCIeDMA
	CXL      = offload.CXL

	// Line/page geometry.
	LineSize = phys.LineSize
	PageSize = phys.PageSize
)

// DeviceMemoryBase is the first address of the CXL device-memory window in
// the unified physical address space.
var DeviceMemoryBase = mem.RegionDevice.Base

// DefaultParams returns the calibrated timing model (see internal/timing).
func DefaultParams() *Params { return timing.Default() }

// LoadParams reads a (possibly partial) JSON parameter file over the
// calibrated defaults and validates the result — the recompile-free
// calibration workflow.
func LoadParams(path string) (*Params, error) { return timing.LoadFile(path) }

// SaveParams writes parameters as indented JSON.
func SaveParams(p *Params, path string) error { return p.SaveFile(path) }

// Config shapes a System.
type Config struct {
	// Params is the timing model; nil takes DefaultParams.
	Params *Params
	// DeviceType selects Type2 (default) or Type3.
	DeviceType DeviceType
	// LLCBytes/LLCWays shape the host LLC; zero takes the Table II values
	// (60 MB, 15-way). Use a smaller LLC for fast experimentation.
	LLCBytes, LLCWays int
	// Cores is the host core count (default 32).
	Cores int
	// SNC enables sub-NUMA clustering (half the memory channels), the §VII
	// methodology.
	SNC bool
}

// System is a host with an attached CXL device — the platform every
// experiment and example runs on.
type System struct {
	// Host is the dual-socket server model.
	Host *host.Host
	// Dev is the attached CXL device.
	Dev *device.Device
	// P is the timing model in effect.
	P *Params
}

// NewSystem builds a host + device pair.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Params == nil {
		cfg.Params = DefaultParams()
	}
	hc := host.DefaultConfig()
	if cfg.LLCBytes != 0 {
		hc.LLCBytes = cfg.LLCBytes
	}
	if cfg.LLCWays != 0 {
		hc.LLCWays = cfg.LLCWays
	}
	if cfg.Cores != 0 {
		hc.Cores = cfg.Cores
	}
	hc.SNC = cfg.SNC
	h, err := host.New(cfg.Params, hc)
	if err != nil {
		return nil, err
	}
	dc := device.DefaultConfig()
	if cfg.DeviceType != 0 {
		dc.Type = cfg.DeviceType
	}
	if _, err := h.Attach(dc); err != nil {
		return nil, err
	}
	return &System{Host: h, Dev: h.Dev, P: cfg.Params}, nil
}

// MustNewSystem is NewSystem for static configurations.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// AccessResult describes one memory operation's outcome.
type AccessResult struct {
	// Done is the requester-visible completion time.
	Done Time
	// Data is the 64-byte line for reads (nil in timing-only mode).
	Data []byte
	// HMCHit / DMCHit / LLCHit report where the line was found.
	HMCHit, DMCHit, LLCHit bool
}

// D2H issues one cache-line device-to-host-memory access with the given
// hint, starting at now (§IV-A). data carries the payload for writes.
func (s *System) D2H(req D2HReq, addr Addr, data []byte, now Time) AccessResult {
	r := s.Dev.D2H(req, addr, data, now)
	return AccessResult{Done: r.Done, Data: r.Data, HMCHit: r.HMCHit, LLCHit: r.LLCHit}
}

// D2D issues one cache-line device-to-device-memory access (§IV-B).
func (s *System) D2D(req D2HReq, addr Addr, data []byte, now Time) AccessResult {
	r := s.Dev.D2D(req, addr, data, now)
	return AccessResult{Done: r.Done, Data: r.Data, DMCHit: r.DMCHit}
}

// H2D issues one host-CPU access on core to addr (device memory takes the
// CXL.mem path, host memory the local hierarchy).
func (s *System) H2D(core int, op HostOp, addr Addr, data []byte, now Time) AccessResult {
	r := s.Host.Core(core).Access(op, addr, data, now)
	return AccessResult{Done: r.Done, Data: r.Data, LLCHit: r.LLCHit, DMCHit: r.DMCHit}
}

// EnterDeviceBias flips a device-memory region to device-bias mode after
// flushing host copies (§IV-B); it returns the completion time.
func (s *System) EnterDeviceBias(base Addr, size uint64, now Time) Time {
	return s.Dev.EnterDeviceBias(phys.Range{Base: base, Size: size}, now)
}

// BiasOf reports the bias mode governing a device-memory address.
func (s *System) BiasOf(addr Addr) BiasMode { return s.Dev.BiasOf(addr) }

// WriteHostMemory / ReadHostMemory move bytes functionally (no timing) —
// experiment setup.
func (s *System) WriteHostMemory(addr Addr, data []byte) { s.Host.Store().Write(addr, data) }

// ReadHostMemory reads len(dst) bytes at addr.
func (s *System) ReadHostMemory(addr Addr, dst []byte) { s.Host.Store().Read(addr, dst) }

// WriteDeviceMemory / ReadDeviceMemory are the device-side equivalents.
func (s *System) WriteDeviceMemory(addr Addr, data []byte) { s.Dev.WriteDevMemDirect(addr, data) }

// ReadDeviceMemory reads len(dst) bytes at addr.
func (s *System) ReadDeviceMemory(addr Addr, dst []byte) { s.Dev.ReadDevMemDirect(addr, dst) }

// ResetTiming returns every timing resource to idle without touching cache
// or memory contents — use between measurement repetitions.
func (s *System) ResetTiming() { s.Host.ResetTiming() }

// TraceBuffer is a bounded in-memory transaction trace.
type TraceBuffer = trace.Buffer

// TraceEvent is one traced access.
type TraceEvent = trace.Event

// EnableTracing attaches a ring buffer capturing the most recent capacity
// device transactions (D2H, D2D and H2D); it returns the buffer for
// inspection, CSV export or summarization.
func (s *System) EnableTracing(capacity int) *TraceBuffer {
	b := trace.NewBuffer(capacity)
	s.Dev.SetTracer(b)
	return b
}

// DisableTracing detaches any tracer.
func (s *System) DisableTracing() { s.Dev.SetTracer(nil) }

// FormatTraceSummary renders a trace buffer's per-operation aggregation as
// an aligned table.
func FormatTraceSummary(b *TraceBuffer) string { return trace.FormatSummary(b.Summarize()) }
