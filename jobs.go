package cxl2sim

import (
	"io"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// This file is the public face of the shared-nothing parallel runner: the
// job vocabulary, the experiment-section registry the commands fan out
// over a worker pool, and job constructors for the §V microbenchmark
// methodology. Every job builds its own System or rig, so jobs never share
// mutable state; per-job seeds derive from (root seed, job ID), never from
// scheduling, and results aggregate in submission order — a parallel run
// renders byte-identical output to a serial one.

// Job is one self-contained unit of experiment work.
type Job = runner.Job

// JobCtx is the per-job context (derived seed, event accounting).
type JobCtx = runner.Ctx

// JobResult is one job's outcome, including wall clock and simulated-event
// count for rate reporting.
type JobResult = runner.Result

// JobOptions configures a run: Workers sizes the pool (1 = serial on the
// calling goroutine, 0 = GOMAXPROCS); RootSeed roots the per-job seed
// derivation (0 = DefaultRootSeed); Context (nil = run everything)
// cancels dispatch — jobs not yet started are marked failed with
// Cancelled set while in-flight jobs finish and aggregation order is
// preserved.
type JobOptions = runner.Options

// DefaultRootSeed is the root seed used when JobOptions.RootSeed is zero.
const DefaultRootSeed = runner.DefaultRootSeed

// RunJobs executes jobs over a bounded worker pool and returns their
// results in submission order regardless of completion order. A panicking
// job becomes a failed JobResult; its workers' siblings are unaffected.
func RunJobs(jobs []Job, opts JobOptions) []JobResult { return runner.Run(jobs, opts) }

// FirstJobError returns the first failed job's error, or nil if every job
// succeeded.
func FirstJobError(results []JobResult) error {
	_, err := runner.Values(results)
	return err
}

// CancelledJobCount reports how many jobs were cancelled before dispatch
// (JobOptions.Context fired mid-run).
func CancelledJobCount(results []JobResult) int { return runner.CancelledCount(results) }

// PrintJobStats renders the per-job wall-clock and sim-event-rate table
// plus totals.
func PrintJobStats(w io.Writer, results []JobResult) { runner.PrintStats(w, results) }

// WriteJobStatsJSON writes the per-job and per-group timing stats as JSON
// (the BENCH_experiments.json artifact format).
func WriteJobStatsJSON(w io.Writer, results []JobResult, workers int, rootSeed int64) error {
	return runner.WriteStatsJSON(w, results, workers, rootSeed)
}

// ExperimentSection is one rendered block of cxlbench output: its jobs and
// the renderer that assembles their rows.
type ExperimentSection = experiments.Section

// ExperimentSections returns the cxlbench sections (see
// ExperimentSectionNames for the registry) in presentation order. reps
// tunes the repetition count (0 keeps the paper's defaults).
func ExperimentSections(reps int) []ExperimentSection { return experiments.Sections(reps) }

// ExperimentSectionsSharded is ExperimentSections with sharded PDES
// execution of the cluster section capped at shards workers per
// simulation (0 or 1 runs inline; output is byte-identical either way).
func ExperimentSectionsSharded(reps, shards int) []ExperimentSection {
	return experiments.SectionsCfg(reps, experiments.SuiteConfig{ClusterShards: shards})
}

// ExperimentSectionNames lists the registered section names in
// presentation order — the single source for usage text and validation,
// so command help can never drift from the registry.
func ExperimentSectionNames() []string { return experiments.SectionNames() }

// ExperimentSectionByName locates a section.
func ExperimentSectionByName(secs []ExperimentSection, name string) (ExperimentSection, bool) {
	return experiments.SectionByName(secs, name)
}

// RunExperimentSections executes the sections' jobs on one shared pool and
// renders each section, in order, to w. It returns the per-job results for
// stats reporting and the first section error (a failed job) if any.
func RunExperimentSections(w io.Writer, secs []ExperimentSection, opts JobOptions) ([]JobResult, error) {
	return experiments.RunSections(w, secs, opts)
}

// CollectFig6Rows concatenates fig6 job results into rows (for the CSV
// exporter).
func CollectFig6Rows(results []JobResult) []Fig6Row { return experiments.Fig6Collect(results) }

// MeasureD2HJob wraps System.MeasureD2H as a self-contained job: each run
// builds a fresh System from cfg, so the job is safe to execute on any
// worker alongside any other job.
func MeasureD2HJob(id string, cfg Config, req D2HReq, spec MeasureSpec) Job {
	return measureJob(id, cfg, spec, func(s *System, sp MeasureSpec) (Measurement, error) {
		return s.MeasureD2H(req, sp)
	})
}

// MeasureD2DJob wraps System.MeasureD2D as a self-contained job.
func MeasureD2DJob(id string, cfg Config, req D2HReq, spec MeasureSpec) Job {
	return measureJob(id, cfg, spec, func(s *System, sp MeasureSpec) (Measurement, error) {
		return s.MeasureD2D(req, sp)
	})
}

// MeasureH2DJob wraps System.MeasureH2D as a self-contained job.
func MeasureH2DJob(id string, cfg Config, op HostOp, spec MeasureSpec) Job {
	return measureJob(id, cfg, spec, func(s *System, sp MeasureSpec) (Measurement, error) {
		return s.MeasureH2D(op, sp)
	})
}

func measureJob(id string, cfg Config, spec MeasureSpec,
	measure func(*System, MeasureSpec) (Measurement, error)) Job {
	return Job{ID: id, Run: func(ctx *JobCtx) (any, error) {
		s, err := NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		sp := spec
		sp.setDefaults()
		ctx.AddEvents(uint64(sp.Reps + sp.Burst))
		return measure(s, sp)
	}}
}
