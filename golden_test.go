package cxl2sim_test

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	cxl2sim "repro"
)

// Golden-file tests pin the rendered output of the report generator and
// the experiment printers. The comparison is structural: the non-numeric
// text must match exactly, while numeric tokens only have to agree within
// a tolerance, so a timing-parameter recalibration that nudges a latency
// by a few percent does not invalidate every golden file. Regenerate with:
//
//	go test . -run Golden -update

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

const (
	// goldenRelTol is the per-number relative tolerance; goldenAbsTol
	// covers values near zero, where a relative bound is meaningless.
	goldenRelTol = 0.25
	goldenAbsTol = 2.0
)

// goldenNum matches numeric tokens, including the negative sign (both
// ASCII '-' and the typographic '−' the report uses in paper columns).
var goldenNum = regexp.MustCompile(`[-−]?[0-9]+(?:\.[0-9]+)?`)

// checkGolden compares got against testdata/<name>, or rewrites the file
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if err := compareTolerant(string(wantBytes), got); err != nil {
		t.Fatalf("output diverged from %s: %v\n(run with -update if the change is intended)", path, err)
	}
}

// compareTolerant checks that got matches want line by line: identical
// text shape, numbers within tolerance.
func compareTolerant(want, got string) error {
	wl := splitLines(want)
	gl := splitLines(got)
	if len(wl) != len(gl) {
		return fmt.Errorf("line count changed: golden %d, got %d", len(wl), len(gl))
	}
	for i := range wl {
		wShape := goldenNum.ReplaceAllString(wl[i], "#")
		gShape := goldenNum.ReplaceAllString(gl[i], "#")
		if wShape != gShape {
			return fmt.Errorf("line %d text changed:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
		wNums := goldenNum.FindAllString(wl[i], -1)
		gNums := goldenNum.FindAllString(gl[i], -1)
		for j := range wNums {
			a, b := parseGoldenNum(wNums[j]), parseGoldenNum(gNums[j])
			if !withinTolerance(a, b) {
				return fmt.Errorf("line %d number %d out of tolerance: golden %v, got %v\n  golden: %s\n  got:    %s",
					i+1, j+1, wNums[j], gNums[j], wl[i], gl[i])
			}
		}
	}
	return nil
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

func parseGoldenNum(s string) float64 {
	neg := false
	for len(s) > 0 && (s[0] == '-' || s[0] == 0xE2) { // 0xE2 starts UTF-8 '−'
		if s[0] == '-' {
			s = s[1:]
		} else {
			s = s[3:]
		}
		neg = true
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic(fmt.Sprintf("golden: unparseable number %q", s))
	}
	if neg {
		v = -v
	}
	return v
}

func withinTolerance(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff <= goldenAbsTol {
		return true
	}
	return diff/math.Max(math.Abs(a), math.Abs(b)) <= goldenRelTol
}

// TestReportGolden pins `report` (the microbenchmark half; Fig. 8 is
// exercised by its own calibration tests and too slow for a golden run).
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := cxl2sim.WriteReport(&buf, 50, false); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden", buf.String())
}

// TestTable3Golden pins the coherence-state table: it is fully categorical
// (cache states, no timing), so any drift is a semantics change.
func TestTable3Golden(t *testing.T) {
	var buf bytes.Buffer
	cxl2sim.PrintTable3(&buf, cxl2sim.RunTable3())
	checkGolden(t, "table3.golden", buf.String())
}

// TestWriteQueueSweepGolden pins the §V-A write-queue sweep rendering.
func TestWriteQueueSweepGolden(t *testing.T) {
	var buf bytes.Buffer
	cxl2sim.PrintWriteQueueSweep(&buf, cxl2sim.RunWriteQueueSweep([]int{1, 8, 64}))
	checkGolden(t, "writequeue.golden", buf.String())
}

// TestInferGolden pins the LLM-serving KV-placement section: the table
// shape is exact, the numbers tolerant — but the tolerance still rejects
// a tier-ordering flip (PCIe TPOT is an order of magnitude above DRAM).
func TestInferGolden(t *testing.T) {
	var buf bytes.Buffer
	cxl2sim.PrintInfer(&buf, cxl2sim.RunInfer(cxl2sim.InferConfig{Seed: 42}))
	checkGolden(t, "infer.golden", buf.String())
}

// TestGoldenComparatorRejectsDrift guards the comparator itself: exact
// text changes and out-of-tolerance numbers must both fail.
func TestGoldenComparatorRejectsDrift(t *testing.T) {
	if err := compareTolerant("lat 100.0 ns", "lat 110.0 ns"); err != nil {
		t.Errorf("10%% drift should pass: %v", err)
	}
	if err := compareTolerant("lat 100.0 ns", "lat 200.0 ns"); err == nil {
		t.Error("2x drift passed")
	}
	if err := compareTolerant("lat 100.0 ns", "bw 100.0 ns"); err == nil {
		t.Error("text change passed")
	}
	if err := compareTolerant("a\nb", "a"); err == nil {
		t.Error("missing line passed")
	}
	if err := compareTolerant("x −64 %", "x −64 %"); err != nil {
		t.Errorf("typographic minus: %v", err)
	}
}
