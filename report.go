package cxl2sim

import (
	"context"
	"fmt"
	"io"

	cxlpkg "repro/internal/cxl"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/ycsb"
)

// ReportOptions tunes WriteReportOpts. Zero values take the defaults noted
// on each field.
type ReportOptions struct {
	// Reps is the repetition count per microbenchmark measurement
	// (0 keeps the paper's 1000).
	Reps int
	// Full also runs the Fig. 8 co-simulations (minutes).
	Full bool
	// Workers sizes the worker pool: 1 runs serially on the calling
	// goroutine, 0 (or negative) uses GOMAXPROCS. The rendered report is
	// byte-identical for any worker count.
	Workers int
	// RootSeed is the root of the per-job seed derivation (0 takes the
	// default root seed). Per-job seeds depend only on (RootSeed, job ID),
	// never on scheduling.
	RootSeed int64
	// Context, when non-nil, cancels the run: undispatched jobs are
	// marked failed (Cancelled) and the report render is skipped.
	Context context.Context
}

// WriteReport writes the paper-vs-measured comparison as a markdown table:
// it runs every microbenchmark experiment (and, when full is set, the
// Fig. 8 co-simulations), computes the paper's headline ratios from the
// fresh measurements, and prints them next to the published numbers. reps
// is the repetition count per microbenchmark measurement; `report -full`
// produces the data behind EXPERIMENTS.md. It is the serial form of
// WriteReportOpts.
func WriteReport(w io.Writer, reps int, full bool) error {
	_, err := WriteReportOpts(w, ReportOptions{Reps: reps, Full: full, Workers: 1})
	return err
}

// reportGroup is one named slice of the report's job list. The
// enumeration is a pure function of the options, so any process holding
// the same binary derives the identical list — the property the
// distributed coordinator relies on to ship the report's execution to
// worker processes by description rather than by value.
type reportGroup struct {
	name string
	jobs []runner.Job
}

func reportGroups(o ReportOptions) []reportGroup {
	groups := []reportGroup{
		{"fig3", experiments.Fig3Jobs(experiments.Fig3Config{Reps: o.Reps})},
		{"fig4", experiments.Fig4Jobs(experiments.Fig4Config{Reps: o.Reps})},
		{"fig5", experiments.Fig5Jobs(experiments.Fig5Config{Reps: o.Reps})},
		{"fig6", experiments.Fig6Jobs()},
		{"table4", experiments.Table4Jobs()},
	}
	if o.Full {
		cfg := experiments.Fig8Config{}
		groups = append(groups,
			reportGroup{"fig8zswap", experiments.Fig8Jobs("zswap", []ycsb.Workload{ycsb.A}, cfg)},
			reportGroup{"fig8ksm", experiments.Fig8Jobs("ksm", []ycsb.Workload{ycsb.A}, cfg)},
		)
	}
	return groups
}

// ReportJobs enumerates the report's experiment jobs in render order.
// Only Reps and Full shape the list; execution knobs (workers, seed,
// context) do not.
func ReportJobs(o ReportOptions) []runner.Job {
	var jobs []runner.Job
	for _, g := range reportGroups(o) {
		jobs = append(jobs, g.jobs...)
	}
	return jobs
}

// RenderReport renders the comparison table from a finished run of
// ReportJobs(o): results[i] must describe job i of that enumeration. It
// fails without writing when any job failed, so a partial run never
// masquerades as a report.
func RenderReport(w io.Writer, o ReportOptions, results []runner.Result) error {
	groups := reportGroups(o)
	by := make(map[string][]runner.Result, len(groups))
	off := 0
	for _, g := range groups {
		by[g.name] = results[off : off+len(g.jobs)]
		off += len(g.jobs)
	}
	if _, err := runner.Values(results); err != nil {
		return err
	}

	r := &reporter{w: w}
	r.printf("# cxl2sim reproduction report\n\n")
	r.printf("| experiment | relation | paper | measured |\n")
	r.printf("|---|---|---|---|\n")

	r.fig3(collect[experiments.Fig3Row](by["fig3"]))
	r.fig4(collect[experiments.Fig4Row](by["fig4"]))
	r.fig5(collect[experiments.Fig5Row](by["fig5"]))
	r.fig6(collect[experiments.Fig6Row](by["fig6"]))
	r.table4(collect[experiments.Table4Row](by["table4"]))
	if o.Full {
		r.fig8(experiments.Fig8Collect(by["fig8zswap"]), experiments.Fig8Collect(by["fig8ksm"]))
	}
	return r.err
}

// WriteReportOpts runs the report's experiments as self-contained jobs on
// one shared worker pool and renders the comparison table. It returns the
// per-job results for stats reporting (wall clock, event rate). Rendering
// happens after all jobs complete, in job order, so output bytes do not
// depend on the worker count.
func WriteReportOpts(w io.Writer, o ReportOptions) ([]runner.Result, error) {
	results := runner.Run(ReportJobs(o),
		runner.Options{Workers: o.Workers, RootSeed: o.RootSeed, Context: o.Context})
	return results, RenderReport(w, o, results)
}

// collect concatenates the per-job []T fragments in job order.
func collect[T any](results []runner.Result) []T {
	var rows []T
	for _, res := range results {
		if frag, ok := res.Value.([]T); ok {
			rows = append(rows, frag...)
		}
	}
	return rows
}

// reporter accumulates the first write error so the report functions can
// stay free of error plumbing.
type reporter struct {
	w   io.Writer
	err error
}

func (r *reporter) printf(format string, args ...any) {
	if r.err == nil {
		_, r.err = fmt.Fprintf(r.w, format, args...)
	}
}

func (r *reporter) row(exp, rel, paper, measured string) {
	r.printf("| %s | %s | %s | %s |\n", exp, rel, paper, measured)
}

func pct(a, b float64) string { return fmt.Sprintf("%+.0f %%", 100*(a-b)/b) }

func (r *reporter) fig3(rows []experiments.Fig3Row) {
	f := func(lbl string, tr, llc bool) experiments.Fig3Row {
		return experiments.Fig3Find(rows, lbl, tr, llc)
	}
	pairs := []struct {
		a, b  string
		llc   bool
		paper string
	}{
		{"NC-rd", "nt-ld", true, "+38 %"},
		{"CS-rd", "ld", true, "+96 %"},
		{"NC-wr", "nt-st", true, "+71 %"},
		{"CO-wr", "st", true, "+56 %"},
		{"NC-rd", "nt-ld", false, "+2 %"},
		{"CS-rd", "ld", false, "+18 %"},
		{"NC-wr", "nt-st", false, "+67 %"},
		{"CO-wr", "st", false, "+57 %"},
	}
	for _, p := range pairs {
		llc := "LLC-0"
		if p.llc {
			llc = "LLC-1"
		}
		a, b := f(p.a, true, p.llc), f(p.b, false, p.llc)
		r.row("Fig. 3", fmt.Sprintf("%s vs %s latency (%s)", p.a, p.b, llc), p.paper,
			pct(a.LatencyNs, b.LatencyNs))
	}
	cs, ld := f("CS-rd", true, false), f("ld", false, false)
	r.row("Fig. 3", "CS-rd/ld bandwidth (LLC-0)", "+76–120 %", pct(cs.BandwidthGBs, ld.BandwidthGBs))
}

func (r *reporter) fig4(rows []experiments.Fig4Row) {
	for _, wr := range []string{"NC-wr", "CO-wr"} {
		hb := experiments.Fig4Find(rows, wr, false, true, false)
		db := experiments.Fig4Find(rows, wr, false, true, true)
		r.row("Fig. 4", wr+" DMC-1 latency, device-bias lower", "~60 %",
			fmt.Sprintf("%.0f %%", 100*(hb.LatencyNs-db.LatencyNs)/hb.LatencyNs))
		r.row("Fig. 4", wr+" DMC-1 bandwidth, device-bias higher", "8–13 %",
			pct(db.BandwidthGBs, hb.BandwidthGBs))
	}
}

func (r *reporter) fig5(rows []experiments.Fig5Row) {
	ld2 := experiments.Fig5Find(rows, cxlpkg.Ld, experiments.CaseT2Miss)
	ld3 := experiments.Fig5Find(rows, cxlpkg.Ld, experiments.CaseT3)
	r.row("Fig. 5", "ld latency, T2 vs T3", "+5 %", pct(ld2.LatencyNs, ld3.LatencyNs))
	owned := experiments.Fig5Find(rows, cxlpkg.Ld, experiments.CaseT2Owned)
	r.row("Fig. 5", "ld latency, DMC-1(owned) vs DMC-0", "+11 %", pct(owned.LatencyNs, ld2.LatencyNs))
	mod := experiments.Fig5Find(rows, cxlpkg.Ld, experiments.CaseT2Modified)
	r.row("Fig. 5", "ld latency, DMC-1(modified) vs DMC-0", "+36–40 %", pct(mod.LatencyNs, ld2.LatencyNs))
	push := experiments.Fig5Find(rows, cxlpkg.Ld, experiments.CaseT2Pushed)
	r.row("Fig. 5", "ld latency after NC-P push", "−82–87 %", pct(push.LatencyNs, ld2.LatencyNs))
}

func (r *reporter) fig6(rows []experiments.Fig6Row) {
	st := experiments.Fig6Find(rows, experiments.MechCXLSt, false, 256)
	for _, m := range []struct {
		mech  experiments.Fig6Mechanism
		paper string
	}{
		{experiments.MechPCIeMMIO, "−83 %"},
		{experiments.MechPCIeDMA, "−72 %"},
		{experiments.MechPCIeRDMA, "−81 %"},
		{experiments.MechPCIeDOCA, "−92 %"},
	} {
		o := experiments.Fig6Find(rows, m.mech, false, 256)
		r.row("Fig. 6", "CXL-ST vs "+m.mech.String()+" (256 B H2D)", m.paper, pct(st.LatencyNs, o.LatencyNs))
	}
	c := experiments.Fig6Find(rows, experiments.MechCXLLd, true, 4096)
	rd := experiments.Fig6Find(rows, experiments.MechPCIeRDMA, true, 4096)
	r.row("Fig. 6", "D2H CXL-LD vs RDMA latency (4 KB)", "~3× lower",
		fmt.Sprintf("%.1f× lower", rd.LatencyNs/c.LatencyNs))
}

func (r *reporter) table4(rows []experiments.Table4Row) {
	cxlT := experiments.Table4Find(rows, "cxl-zswap").Total
	rdma := experiments.Table4Find(rows, "pcie-rdma-zswap").Total
	dma := experiments.Table4Find(rows, "pcie-dma-zswap").Total
	r.row("Table IV", "totals (rdma / dma / cxl, µs)", "10.9 / 6.2 / 3.9",
		fmt.Sprintf("%.1f / %.1f / %.1f", rdma, dma, cxlT))
	r.row("Table IV", "cxl vs rdma", "−64 %", pct(cxlT, rdma))
	r.row("Table IV", "cxl vs dma", "−37 %", pct(cxlT, dma))
}

func (r *reporter) fig8(zw, km []experiments.Fig8Row) {
	norm := func(rows []experiments.Fig8Row, v experiments.Fig8Variant) float64 {
		return experiments.Fig8Find(rows, v, ycsb.A).NormP99
	}
	r.row("Fig. 8", "cpu-zswap p99", "5.1–10.3×", fmt.Sprintf("%.1f×", norm(zw, 0)))
	r.row("Fig. 8", "pcie-rdma-zswap p99", "1.29–1.49×", fmt.Sprintf("%.2f×", norm(zw, 1)))
	r.row("Fig. 8", "pcie-dma-zswap p99", "1.18–1.93×", fmt.Sprintf("%.2f×", norm(zw, 2)))
	r.row("Fig. 8", "cxl-zswap p99", "1.14–1.26×", fmt.Sprintf("%.2f×", norm(zw, 3)))
	r.row("Fig. 8", "cpu-ksm p99", "4.5–7.6×", fmt.Sprintf("%.1f×", norm(km, 0)))
	r.row("Fig. 8", "pcie-rdma-ksm p99", "1.17–1.32×", fmt.Sprintf("%.2f×", norm(km, 1)))
	r.row("Fig. 8", "pcie-dma-ksm p99", "1.16–1.35×", fmt.Sprintf("%.2f×", norm(km, 2)))
	r.row("Fig. 8", "cxl-ksm p99", "1.16–1.30×", fmt.Sprintf("%.2f×", norm(km, 3)))
}
