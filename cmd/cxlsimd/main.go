// Command cxlsimd serves the simulator over HTTP: the paper's experiment
// sections, ad-hoc §V microbenchmark measurements and the full
// paper-vs-measured report, on top of the shared-nothing job runner.
//
// Because the runner renders byte-identical output per (config, seed)
// regardless of worker count, responses are cached in a size-bounded LRU
// and concurrent identical requests share one simulation run. A bounded
// admission queue sheds excess load with 429 + Retry-After; every run
// carries a deadline enforced as real cancellation inside the runner; and
// SIGINT/SIGTERM drain in-flight work within -drain-timeout before exit.
//
// -store-dir layers a content-addressed durable result store under the
// in-memory cache: rendered responses survive restarts (X-Cache:
// hit-disk) and replicas sharing the directory share entries.
//
// The daemon also runs distributed. `cxlsimd -worker -join URL` starts a
// thin execution worker that registers with a coordinator; `cxlsimd
// -coordinator` starts the front end in coordinator mode, sharding each
// run's jobs across registered workers (falling back to local execution
// when none are live). Output bytes are identical in every topology.
//
// Endpoints:
//
//	GET  /healthz                 liveness + queue/cache gauges
//	GET  /metrics                 Prometheus text exposition
//	GET  /v1/version              build + protocol compatibility info
//	GET  /v1/sections             section catalog
//	POST /v1/sections/{name}      run one section (body: reps/seed/format)
//	POST /v1/measure              one Measure{D2H,D2D,H2D} job
//	GET  /v1/report               full report (?reps=&full=&seed=)
//	POST /dist/v1/register        worker registration (coordinator mode)
//	GET  /dist/v1/workers         fleet listing (coordinator mode)
//
// Usage:
//
//	cxlsimd [-addr :8437] [-workers N] [-max-concurrent N] [-queue-depth N]
//	        [-cache-mb N] [-store-dir DIR] [-store-mb N]
//	        [-request-timeout D] [-drain-timeout D] [-reps N]
//	        [-coordinator]
//	cxlsimd -worker -join http://coordinator:8437 [-addr :8438]
//	        [-advertise host:port] [-workers N] [-max-concurrent N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	workers := flag.Int("workers", 0, "runner pool size per admitted run (0 = GOMAXPROCS)")
	maxConcurrent := flag.Int("max-concurrent", 2, "simultaneously executing runs")
	queueDepth := flag.Int("queue-depth", 8, "requests allowed to wait for a run slot before 429")
	cacheMB := flag.Int64("cache-mb", 64, "result-cache bound in MiB")
	storeDir := flag.String("store-dir", "", "durable result-store directory (empty = memory-only cache)")
	storeMB := flag.Int64("store-mb", 256, "durable result-store bound in MiB")
	requestTimeout := flag.Duration("request-timeout", 120*time.Second, "per-run deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	reps := flag.Int("reps", 0, "default section repetition count (0 keeps the paper's defaults)")
	coordinator := flag.Bool("coordinator", false, "shard runs across registered dist workers")
	workerMode := flag.Bool("worker", false, "run as a dist execution worker instead of the daemon")
	join := flag.String("join", "", "coordinator base URL a -worker registers with")
	advertise := flag.String("advertise", "", "address the coordinator dials back (-worker; default: the listen address)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "worker re-registration interval")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerMode {
		w := dist.NewWorker(dist.WorkerConfig{
			Addr:           *addr,
			Advertise:      *advertise,
			Coordinator:    *join,
			Workers:        *workers,
			MaxConcurrent:  *maxConcurrent,
			HeartbeatEvery: *heartbeat,
			Log:            log.New(os.Stderr, "cxlsimd-worker: ", log.LstdFlags),
		})
		if err := w.Run(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "cxlsimd:", err)
			os.Exit(1)
		}
		return
	}

	cfg := service.Config{
		Addr:           *addr,
		Workers:        *workers,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		CacheBytes:     *cacheMB << 20,
		StoreDir:       *storeDir,
		StoreBytes:     *storeMB << 20,
		RequestTimeout: *requestTimeout,
		DrainTimeout:   *drainTimeout,
		DefaultReps:    *reps,
	}
	if *coordinator {
		cfg.Coordinator = dist.NewCoordinator(dist.CoordinatorConfig{
			Workers:    *workers,
			StaleAfter: 3 * *heartbeat,
			Log:        log.New(os.Stderr, "cxlsimd-coord: ", log.LstdFlags),
		})
	}
	srv, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cxlsimd:", err)
		os.Exit(1)
	}
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "cxlsimd:", err)
		os.Exit(1)
	}
}
