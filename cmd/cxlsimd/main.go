// Command cxlsimd serves the simulator over HTTP: the paper's experiment
// sections, ad-hoc §V microbenchmark measurements and the full
// paper-vs-measured report, on top of the shared-nothing job runner.
//
// Because the runner renders byte-identical output per (config, seed)
// regardless of worker count, responses are cached in a size-bounded LRU
// and concurrent identical requests share one simulation run. A bounded
// admission queue sheds excess load with 429 + Retry-After; every run
// carries a deadline enforced as real cancellation inside the runner; and
// SIGINT/SIGTERM drain in-flight work within -drain-timeout before exit.
//
// Endpoints:
//
//	GET  /healthz                 liveness + queue/cache gauges
//	GET  /metrics                 Prometheus text exposition
//	GET  /v1/sections             section catalog
//	POST /v1/sections/{name}      run one section (body: reps/seed/format)
//	POST /v1/measure              one Measure{D2H,D2D,H2D} job
//	GET  /v1/report               full report (?reps=&full=&seed=)
//
// Usage:
//
//	cxlsimd [-addr :8437] [-workers N] [-max-concurrent N] [-queue-depth N]
//	        [-cache-mb N] [-request-timeout D] [-drain-timeout D] [-reps N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8437", "listen address")
	workers := flag.Int("workers", 0, "runner pool size per admitted run (0 = GOMAXPROCS)")
	maxConcurrent := flag.Int("max-concurrent", 2, "simultaneously executing runs")
	queueDepth := flag.Int("queue-depth", 8, "requests allowed to wait for a run slot before 429")
	cacheMB := flag.Int64("cache-mb", 64, "result-cache bound in MiB")
	requestTimeout := flag.Duration("request-timeout", 120*time.Second, "per-run deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	reps := flag.Int("reps", 0, "default section repetition count (0 keeps the paper's defaults)")
	flag.Parse()

	srv := service.New(service.Config{
		Addr:           *addr,
		Workers:        *workers,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		CacheBytes:     *cacheMB << 20,
		RequestTimeout: *requestTimeout,
		DrainTimeout:   *drainTimeout,
		DefaultReps:    *reps,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "cxlsimd:", err)
		os.Exit(1)
	}
}
