// Command cxlbench regenerates the paper's device-characterization
// experiments (§V): Fig. 3 (D2H true vs emulated), Fig. 4 (D2D bias
// modes), Fig. 5 (H2D Type-2 vs Type-3), Fig. 6 (CXL vs PCIe transfer
// sweep), Table III (coherence states) and the §V-A write-queue sweep.
//
// Usage:
//
//	cxlbench [-reps N] [fig3|fig4|fig5|fig6|table3|wqsweep|all]
package main

import (
	"flag"
	"fmt"
	"os"

	cxl2sim "repro"
)

func main() {
	reps := flag.Int("reps", 1000, "repetitions per measurement (the paper uses >= 1000)")
	dump := flag.String("dump-params", "", "write the calibrated timing parameters as JSON to this path and exit")
	csv := flag.Bool("csv", false, "emit fig6 as CSV (plot-friendly) instead of a table")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cxlbench [-reps N] [fig3|fig4|fig5|fig6|table3|wqsweep|all]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *dump != "" {
		if err := cxl2sim.SaveParams(cxl2sim.DefaultParams(), *dump); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *dump)
		return
	}

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	out := os.Stdout

	run := map[string]func(){
		"fig3": func() { cxl2sim.PrintFig3(out, cxl2sim.RunFig3(*reps)) },
		"fig4": func() { cxl2sim.PrintFig4(out, cxl2sim.RunFig4(*reps)) },
		"fig5": func() { cxl2sim.PrintFig5(out, cxl2sim.RunFig5(*reps)) },
		"fig6": func() {
			rows := cxl2sim.RunFig6()
			if *csv {
				if err := cxl2sim.WriteFig6CSV(out, rows); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				return
			}
			cxl2sim.PrintFig6(out, rows)
		},
		"table3":  func() { cxl2sim.PrintTable3(out, cxl2sim.RunTable3()) },
		"wqsweep": func() { cxl2sim.PrintWriteQueueSweep(out, cxl2sim.RunWriteQueueSweep(nil)) },
	}
	order := []string{"table3", "fig3", "fig4", "fig5", "fig6", "wqsweep"}

	if which == "all" {
		for _, name := range order {
			run[name]()
		}
		return
	}
	fn, ok := run[which]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	fn()
}
