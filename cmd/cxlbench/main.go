// Command cxlbench regenerates the paper's device-characterization
// experiments (§V): Fig. 3 (D2H true vs emulated), Fig. 4 (D2D bias
// modes), Fig. 5 (H2D Type-2 vs Type-3), Fig. 6 (CXL vs PCIe transfer
// sweep), Table III (coherence states), the §V-A write-queue sweep, the
// LLM-serving KV-cache placement study (infer), the traffic-model
// section (workload), and the multi-host pooled-memory study (cluster).
//
// Experiments run as self-contained jobs over a shared-nothing worker
// pool (-parallel, default GOMAXPROCS workers); per-job seeds derive from
// -seed and the job ID, so output is byte-identical for any worker count.
// Per-job wall-clock and sim-event-rate stats print to stderr at the end.
//
// Usage:
//
//	cxlbench [-reps N] [-parallel N | -serial] [-seed S]
//	         [-bench-json PATH] [<section>|all]
//
// where <section> is any name from the section registry (run with -h for
// the current list).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	cxl2sim "repro"
)

func main() { os.Exit(run()) }

// run holds the real body so profile-flushing defers execute before the
// process exits with the right status code.
func run() int {
	reps := flag.Int("reps", 1000, "repetitions per measurement (the paper uses >= 1000)")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "workers per cluster simulation for sharded PDES execution (0/1 = inline; output is byte-identical at any value)")
	serial := flag.Bool("serial", false, "run on a single worker (same as -parallel 1)")
	seed := flag.Int64("seed", cxl2sim.DefaultRootSeed, "root seed for per-job seed derivation")
	noStats := flag.Bool("no-stats", false, "suppress the per-job stats table on stderr")
	benchJSON := flag.String("bench-json", "", "write per-job timing stats as JSON to this path")
	dump := flag.String("dump-params", "", "write the calibrated timing parameters as JSON to this path and exit")
	csv := flag.Bool("csv", false, "emit fig6 as CSV (plot-friendly) instead of a table")
	recordTrace := flag.String("record-trace", "", "write the infer section's request stream as a binary trace to this path and exit")
	replayTrace := flag.String("replay-trace", "", "replay a recorded trace through the infer section instead of generating the stream")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this path (go tool pprof)")
	flag.Usage = func() {
		// The section list comes from the registry, so adding a section
		// updates the help text automatically (the hand-written list
		// drifted every time one landed).
		names := strings.Join(cxl2sim.ExperimentSectionNames(), "|")
		fmt.Fprintf(os.Stderr, "usage: cxlbench [-reps N] [-parallel N | -serial] [-seed S] [%s|all]\n", names)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *dump != "" {
		if err := cxl2sim.SaveParams(cxl2sim.DefaultParams(), *dump); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %s\n", *dump)
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cxlbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cxlbench:", err)
			return 1
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cxlbench:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows retained objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cxlbench:", err)
			}
			f.Close()
		}()
	}

	workers := *parallel
	if *serial {
		workers = 1
	}
	// SIGINT/SIGTERM cancel job dispatch: in-flight jobs finish, queued
	// ones are skipped, and the run exits non-zero with a cancellation
	// note instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := cxl2sim.JobOptions{Workers: workers, RootSeed: *seed, Context: ctx}

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}

	if *recordTrace != "" {
		// Record the exact stream the infer section would serve under this
		// seed; replaying it (-replay-trace) reproduces the section byte
		// for byte.
		t := cxl2sim.RecordInferTrace(*seed, cxl2sim.InferConfig{Reps: *reps})
		if err := os.WriteFile(*recordTrace, t.Encode(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cxlbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "cxlbench: recorded %d requests to %s (hash %016x)\n",
			len(t.Requests), *recordTrace, t.Hash())
		return 0
	}

	secs := cxl2sim.ExperimentSectionsSharded(*reps, *shards)
	if which != "all" {
		sec, ok := cxl2sim.ExperimentSectionByName(secs, which)
		if !ok {
			flag.Usage()
			return 2
		}
		secs = []cxl2sim.ExperimentSection{sec}
	}

	if *replayTrace != "" {
		if which != "infer" {
			fmt.Fprintln(os.Stderr, "cxlbench: -replay-trace applies to the infer section (pass `infer`)")
			return 2
		}
		raw, rerr := os.ReadFile(*replayTrace)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "cxlbench:", rerr)
			return 1
		}
		t, derr := cxl2sim.DecodeWorkloadTrace(raw)
		if derr != nil {
			fmt.Fprintln(os.Stderr, "cxlbench:", derr)
			return 1
		}
		secs = []cxl2sim.ExperimentSection{cxl2sim.InferSectionTrace(*reps, t)}
	}

	var results []cxl2sim.JobResult
	var err error
	if *csv {
		// CSV wants the fig6 rows, not the rendered table.
		sec, ok := cxl2sim.ExperimentSectionByName(secs, "fig6")
		if !ok {
			fmt.Fprintln(os.Stderr, "cxlbench: -csv applies to fig6 (or all)")
			return 2
		}
		results = cxl2sim.RunJobs(sec.Jobs, opts)
		if err = cxl2sim.FirstJobError(results); err == nil {
			err = cxl2sim.WriteFig6CSV(os.Stdout, cxl2sim.CollectFig6Rows(results))
		}
	} else {
		results, err = cxl2sim.RunExperimentSections(os.Stdout, secs, opts)
	}

	if !*noStats {
		cxl2sim.PrintJobStats(os.Stderr, results)
	}
	if *benchJSON != "" {
		if jerr := writeBenchJSON(*benchJSON, results, opts); jerr != nil {
			fmt.Fprintln(os.Stderr, "cxlbench:", jerr)
			return 1
		}
	}
	if n := cxl2sim.CancelledJobCount(results); n > 0 {
		fmt.Fprintf(os.Stderr, "cxlbench: cancelled after %d/%d jobs\n", len(results)-n, len(results))
		return 1
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cxlbench:", err)
		return 1
	}
	return 0
}

func writeBenchJSON(path string, results []cxl2sim.JobResult, opts cxl2sim.JobOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	eff := opts.Effective()
	if err := cxl2sim.WriteJobStatsJSON(f, results, eff.Workers, eff.RootSeed); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
