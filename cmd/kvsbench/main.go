// Command kvsbench regenerates the paper's end-to-end kernel-feature
// experiments (§VI–VII): Fig. 8 (Redis p99 under zswap/ksm variants),
// Table IV (offload latency breakdown) and the host-CPU-cycle analysis.
//
// Usage:
//
//	kvsbench [-feature zswap|ksm|both] [-workloads A,B,C,D] [-ms 300] [fig8|table4|cycles|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	cxl2sim "repro"
)

func main() {
	feature := flag.String("feature", "both", "zswap, ksm or both")
	workloads := flag.String("workloads", "A,B,C,D", "comma-separated YCSB workloads")
	ms := flag.Int("ms", 300, "simulated milliseconds per run")
	zipf := flag.Bool("zipfian", false, "use YCSB's zipfian key distribution instead of the paper's uniform")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kvsbench [flags] [fig8|table4|cycles|all]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	cfg := cxl2sim.Fig8Config{Duration: cxl2sim.Time(*ms) * cxl2sim.Millisecond, Zipfian: *zipf}

	var wl []cxl2sim.Workload
	for _, s := range strings.Split(*workloads, ",") {
		switch strings.TrimSpace(strings.ToUpper(s)) {
		case "A":
			wl = append(wl, cxl2sim.Workloads()[0])
		case "B":
			wl = append(wl, cxl2sim.Workloads()[1])
		case "C":
			wl = append(wl, cxl2sim.Workloads()[2])
		case "D":
			wl = append(wl, cxl2sim.Workloads()[3])
		}
	}

	features := []string{"zswap", "ksm"}
	if *feature != "both" {
		features = []string{*feature}
	}

	switch which {
	case "table4":
		cxl2sim.PrintTable4(os.Stdout, cxl2sim.RunTable4())
	case "fig8":
		for _, f := range features {
			cxl2sim.PrintFig8(os.Stdout, cxl2sim.RunFig8(f, wl, cfg))
		}
	case "cycles":
		printCycles(features, wl, cfg)
	case "all":
		cxl2sim.PrintTable4(os.Stdout, cxl2sim.RunTable4())
		for _, f := range features {
			rows := cxl2sim.RunFig8(f, wl, cfg)
			cxl2sim.PrintFig8(os.Stdout, rows)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// printCycles reports the §VII host-CPU-cycle and LLC-pollution analysis.
func printCycles(features []string, wl []cxl2sim.Workload, cfg cxl2sim.Fig8Config) {
	if len(wl) == 0 {
		wl = cxl2sim.Workloads()
	}
	for _, f := range features {
		rows := cxl2sim.RunFig8(f, wl[:1], cfg)
		fmt.Printf("\n§VII — %s host-CPU cycles and LLC pollution (workload %v)\n", f, wl[0])
		fmt.Printf("%-18s%-12s%-16s\n", "config", "featCPU%", "polluted-lines")
		for _, r := range rows {
			fmt.Printf("%-18s%-12.1f%-16d\n", r.Variant.String()+"-"+f, r.FeatureCPUPct, r.PollutedLines)
		}
	}
}
