// Command report regenerates the paper-vs-measured comparison as markdown:
// it runs every microbenchmark experiment (and, with -full, the Fig. 8
// co-simulations), computes the paper's headline ratios from the fresh
// measurements, and prints them next to the published numbers. The output
// of `report -full` is the data behind EXPERIMENTS.md.
//
// Usage:
//
//	report [-reps N] [-full]
package main

import (
	"flag"
	"fmt"
	"os"

	cxl2sim "repro"
)

func main() {
	reps := flag.Int("reps", 400, "repetitions per microbenchmark measurement")
	full := flag.Bool("full", false, "also run the Fig. 8 co-simulations (minutes)")
	flag.Parse()

	if !*full {
		fmt.Fprintln(os.Stderr, "(skipping Fig. 8 co-simulations; pass -full to include them)")
	}
	if err := cxl2sim.WriteReport(os.Stdout, *reps, *full); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}
