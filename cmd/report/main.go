// Command report regenerates the paper-vs-measured comparison as markdown:
// it runs every microbenchmark experiment (and, with -full, the Fig. 8
// co-simulations), computes the paper's headline ratios from the fresh
// measurements, and prints them next to the published numbers. The output
// of `report -full` is the data behind EXPERIMENTS.md.
//
// Experiments run as self-contained jobs over a shared-nothing worker
// pool (-parallel, default GOMAXPROCS workers); per-job seeds derive from
// -seed and the job ID, so the report is byte-identical for any worker
// count. Per-job wall-clock and sim-event-rate stats print to stderr at
// the end.
//
// Usage:
//
//	report [-reps N] [-full] [-parallel N | -serial] [-seed S] [-bench-json PATH]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	cxl2sim "repro"
)

func main() {
	reps := flag.Int("reps", 400, "repetitions per microbenchmark measurement")
	full := flag.Bool("full", false, "also run the Fig. 8 co-simulations (minutes)")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	serial := flag.Bool("serial", false, "run on a single worker (same as -parallel 1)")
	seed := flag.Int64("seed", cxl2sim.DefaultRootSeed, "root seed for per-job seed derivation")
	noStats := flag.Bool("no-stats", false, "suppress the per-job stats table on stderr")
	benchJSON := flag.String("bench-json", "", "write per-job timing stats as JSON to this path")
	flag.Parse()

	if !*full {
		fmt.Fprintln(os.Stderr, "(skipping Fig. 8 co-simulations; pass -full to include them)")
	}
	workers := *parallel
	if *serial {
		workers = 1
	}
	// SIGINT/SIGTERM cancel job dispatch: in-flight jobs finish, queued
	// ones are skipped, and the run exits non-zero with a cancellation
	// note instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	results, err := cxl2sim.WriteReportOpts(os.Stdout, cxl2sim.ReportOptions{
		Reps:     *reps,
		Full:     *full,
		Workers:  workers,
		RootSeed: *seed,
		Context:  ctx,
	})
	if !*noStats {
		cxl2sim.PrintJobStats(os.Stderr, results)
	}
	if *benchJSON != "" {
		eff := cxl2sim.JobOptions{Workers: workers, RootSeed: *seed}.Effective()
		f, cerr := os.Create(*benchJSON)
		if cerr == nil {
			cerr = cxl2sim.WriteJobStatsJSON(f, results, eff.Workers, eff.RootSeed)
			if closeErr := f.Close(); cerr == nil {
				cerr = closeErr
			}
		}
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "report:", cerr)
			os.Exit(1)
		}
	}
	if n := cxl2sim.CancelledJobCount(results); n > 0 {
		fmt.Fprintf(os.Stderr, "report: cancelled after %d/%d jobs\n", len(results)-n, len(results))
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}
