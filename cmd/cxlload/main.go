// Command cxlload is the closed-loop load harness for cxlsimd: it paces
// requests against a running daemon with the workload package's temporal
// arrival models (flat, diurnal, bursty) and reports what the service
// actually delivered — achieved RPS, latency percentiles, the cache-tier
// split (hit-mem / hit-disk / miss / coalesced) and the 429 shed rate —
// as a BENCH-style JSON document.
//
// The arrival process is open-loop (the schedule comes from a seeded
// Temporal source, deterministic per -seed), but execution is closed-loop:
// at most -concurrency requests are in flight, and an arrival that finds
// every slot busy waits for one rather than piling up unbounded goroutines
// — the same admission discipline a well-behaved client fleet shows.
//
// Request mix: section runs rotate through -seeds distinct root seeds, so
// the first request per seed exercises the full simulation path (miss)
// and the rest exercise the cache tiers.
//
// Usage:
//
//	cxlload [-url http://localhost:8437] [-duration 10s] [-pattern flat|diurnal|burst]
//	        [-rps 20] [-period 30s] [-concurrency 8]
//	        [-section fig3] [-reps 50] [-seeds 4] [-seed 1] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

type sample struct {
	latency time.Duration
	status  int
	cache   string
}

type report struct {
	Target      string  `json:"target"`
	Pattern     string  `json:"pattern"`
	Section     string  `json:"section"`
	Seed        int64   `json:"seed"`
	Seeds       int     `json:"seeds"`
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Offered     int     `json:"offered_requests"`
	Completed   int     `json:"completed_requests"`
	AchievedRPS float64 `json:"achieved_rps"`

	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`

	Cache map[string]int `json:"cache"` // by X-Cache value

	Shed struct {
		Count int     `json:"count"`
		Rate  float64 `json:"rate"`
	} `json:"shed_429"`

	Errors int `json:"errors"`
}

func main() {
	url := flag.String("url", "http://localhost:8437", "cxlsimd base URL")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	pattern := flag.String("pattern", "flat", "arrival pattern: flat, diurnal or burst")
	rps := flag.Float64("rps", 20, "peak arrival rate (requests/second)")
	period := flag.Duration("period", 30*time.Second, "diurnal period (pattern=diurnal/burst)")
	concurrency := flag.Int("concurrency", 8, "max in-flight requests (closed-loop bound)")
	section := flag.String("section", "fig3", "section to request")
	reps := flag.Int("reps", 50, "repetition count per section request")
	seeds := flag.Int("seeds", 4, "distinct root seeds to rotate through")
	seed := flag.Int64("seed", 1, "arrival-schedule rng seed")
	out := flag.String("o", "-", "JSON report destination (- = stdout)")
	flag.Parse()

	src, err := arrivals(*pattern, *rps, *period)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cxlload:", err)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	client := &http.Client{Timeout: 2 * time.Minute}
	slots := make(chan struct{}, max(1, *concurrency))

	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup

	start := time.Now()
	now := sim.Time(0) // simulated schedule clock, mapped 1:1 onto wall time
	offered := 0
	for {
		gap := src.GapAt(rng, now)
		if gap == sim.Forever {
			break
		}
		now += gap
		at := time.Duration(float64(now.Seconds()) * float64(time.Second))
		if at > *duration {
			break
		}
		time.Sleep(time.Until(start.Add(at)))

		offered++
		reqSeed := 1 + (offered-1)%max(1, *seeds)
		slots <- struct{}{} // closed-loop: wait for a free slot
		wg.Add(1)
		go func(reqSeed int) {
			defer wg.Done()
			defer func() { <-slots }()
			s := fire(client, *url, *section, *reps, reqSeed)
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}(reqSeed)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(samples, *url, *pattern, *section, *seed, *seeds,
		cap(slots), elapsed, offered)
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cxlload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "cxlload:", err)
		os.Exit(1)
	}
}

// arrivals builds the requested arrival source at peak rate rps.
func arrivals(pattern string, rps float64, period time.Duration) (workload.ArrivalSource, error) {
	if rps <= 0 {
		return nil, fmt.Errorf("rps must be positive")
	}
	p := sim.Time(period.Seconds() * float64(sim.Second))
	switch pattern {
	case "flat":
		return workload.NewTemporal(workload.FlatRate(rps)), nil
	case "diurnal", "burst":
		// A two-anchor day: a valley at 20% of peak opening the period and
		// the peak at midday, linearly interpolated (and wrapped) between.
		curve, err := workload.NewRateCurve(p,
			workload.RatePoint{At: 0, RatePerSec: 0.2 * rps},
			workload.RatePoint{At: p / 2, RatePerSec: rps},
		)
		if err != nil {
			return nil, err
		}
		t := workload.NewTemporal(curve)
		if pattern == "burst" {
			// Thundering herds: 4x bursts arriving every ~quarter period,
			// lasting ~1/20 of it, with a half-rate cooldown lull.
			t = t.WithBursts(workload.BurstSpec{
				MeanGap: p / 4, MeanLen: p / 20, Factor: 4,
				Cooldown: p / 20, CoolFactor: 0.5,
			})
		}
		return t, nil
	default:
		return nil, fmt.Errorf("unknown pattern %q (flat, diurnal, burst)", pattern)
	}
}

// fire issues one section request and classifies the outcome.
func fire(client *http.Client, base, section string, reps, seed int) sample {
	body := fmt.Sprintf(`{"reps":%d,"seed":%d}`, reps, seed)
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/sections/"+section, "application/json",
		strings.NewReader(body))
	lat := time.Since(t0)
	if err != nil {
		return sample{latency: lat, status: 0}
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return sample{latency: lat, status: resp.StatusCode, cache: resp.Header.Get("X-Cache")}
}

func summarize(samples []sample, url, pattern, section string, seed int64,
	seeds, concurrency int, elapsed time.Duration, offered int) report {
	rep := report{
		Target: url, Pattern: pattern, Section: section,
		Seed: seed, Seeds: seeds, Concurrency: concurrency,
		DurationS: elapsed.Seconds(),
		Offered:   offered, Completed: len(samples),
		Cache: map[string]int{},
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(len(samples)) / elapsed.Seconds()
	}
	lats := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		switch {
		case s.status == http.StatusOK:
			rep.Cache[s.cache]++
			lats = append(lats, s.latency)
		case s.status == http.StatusTooManyRequests:
			rep.Shed.Count++
		default:
			rep.Errors++
		}
	}
	if len(samples) > 0 {
		rep.Shed.Rate = float64(rep.Shed.Count) / float64(len(samples))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	if n := len(lats); n > 0 {
		rep.LatencyMS.P50 = ms(lats[n*50/100])
		rep.LatencyMS.P90 = ms(lats[min(n-1, n*90/100)])
		rep.LatencyMS.P99 = ms(lats[min(n-1, n*99/100)])
		rep.LatencyMS.Max = ms(lats[n-1])
	}
	return rep
}
