// Command cxlinspect dumps the simulated platform's configuration and
// demonstrates the CXL Type-2 coherence machinery interactively: it issues
// a few D2H/D2D/H2D accesses against a live system and prints the cache
// states and latencies observed, cross-validated the way §V's methodology
// does. With -kv it instead runs a small LLM-serving simulation and
// summarizes the per-tier KV-block traffic, both from the serving model's
// own counters and from the device's transaction trace.
package main

import (
	"flag"
	"fmt"
	"os"

	cxl2sim "repro"
	"repro/internal/infer"
	"repro/internal/mem"
	"repro/internal/trace"
)

func main() {
	csv := flag.Bool("csv", false, "dump the transaction trace as CSV instead of a summary")
	kv := flag.Bool("kv", false, "run a small LLM-serving sim and summarize per-tier KV-block traffic")
	kvSeed := flag.Int64("seed", 7, "workload seed for -kv")
	flag.Parse()

	if *kv {
		inspectKV(*kvSeed)
		return
	}

	p := cxl2sim.DefaultParams()
	s := cxl2sim.MustNewSystem(cxl2sim.Config{LLCBytes: 8 << 20, LLCWays: 16, Cores: 8})
	buf := s.EnableTracing(256)

	fmt.Println("cxl2sim platform (Table II equivalents)")
	fmt.Printf("  host:   %.1f GHz cores, %d B LLC (%d-way), %d DDR5 channels\n",
		p.Host.CoreGHz, s.Host.LLC().SizeBytes(), s.Host.LLC().Ways(), s.Host.Channels().N())
	fmt.Printf("  device: %v at %.1f GHz fabric, HMC %d B (%d-way), DMC %d B (direct-mapped)\n",
		s.Dev.Type(), p.Device.FabricGHz,
		s.Dev.HMC().SizeBytes(), s.Dev.HMC().Ways(), s.Dev.DMC().SizeBytes())
	fmt.Printf("  links:  CXL %.0f GB/s (one-way %v), UPI %.0f GB/s (one-way %v)\n",
		p.CXL.BytesPerSec/1e9, p.CXL.OneWay, p.UPI.BytesPerSec/1e9, p.UPI.OneWay)

	fmt.Println("\ncoherence walk-through (one line through the D2H hints)")
	addr := cxl2sim.Addr(0x10000)
	line := make([]byte, cxl2sim.LineSize)
	for i := range line {
		line[i] = 0xA5
	}
	s.WriteHostMemory(addr, line)

	show := func(step string, done cxl2sim.Time) {
		hmc, llc := "I", "I"
		if l := s.Dev.HMC().Peek(addr); l.Valid() {
			hmc = l.State.String()
		}
		if l := s.Host.LLC().Peek(addr); l.Valid() {
			llc = l.State.String()
		}
		fmt.Printf("  %-34s HMC=%-2s LLC=%-2s (%v)\n", step, hmc, llc, done)
	}

	r := s.D2H(cxl2sim.CSRead, addr, nil, 0)
	show("CS-rd (RdShared): shared copy", r.Done)
	r = s.D2H(cxl2sim.CORead, addr, nil, r.Done)
	show("CO-rd (RdOwn): exclusive upgrade", r.Done)
	r = s.D2H(cxl2sim.COWrite, addr, line, r.Done)
	show("CO-wr: modified in device cache", r.Done)
	r = s.D2H(cxl2sim.NCP, addr, line, r.Done)
	show("NC-P: pushed into host LLC", r.Done)
	h := s.H2D(0, cxl2sim.Ld, addr, nil, r.Done)
	fmt.Printf("  %-34s LLCHit=%v (%v)\n", "host ld after NC-P (Insight 4)", h.LLCHit, h.Done)

	fmt.Println("\nbias-mode demonstration (§IV-B)")
	dev := cxl2sim.DeviceMemoryBase + 0x2000
	s.ResetTiming()
	s.D2D(cxl2sim.CSRead, dev, nil, 0) // warm DMC
	s.ResetTiming()
	hb := s.D2D(cxl2sim.COWrite, dev, line, 0)
	done := s.EnterDeviceBias(cxl2sim.DeviceMemoryBase, 1<<20, hb.Done)
	s.ResetTiming()
	db := s.D2D(cxl2sim.COWrite, dev, line, 0)
	fmt.Printf("  CO-wr DMC hit: host-bias %v, device-bias %v (%.0f%% lower; paper ~60%%)\n",
		hb.Done, db.Done, 100*float64(hb.Done-db.Done)/float64(hb.Done))
	h2 := s.H2D(0, cxl2sim.Ld, dev, nil, done)
	fmt.Printf("  H2D ld flips the region back to %v (done %v)\n", s.BiasOf(dev), h2.Done)

	if s.BiasOf(dev) != cxl2sim.HostBias {
		fmt.Fprintln(os.Stderr, "unexpected bias state")
		os.Exit(1)
	}

	fmt.Println("\ntransaction trace")
	if *csv {
		if err := buf.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(traceSummary(buf))
}

// traceSummary renders the trace buffer's per-op aggregation.
func traceSummary(buf *cxl2sim.TraceBuffer) string {
	return cxl2sim.FormatTraceSummary(buf)
}

// inspectKV runs one small serving simulation with the KV cache split
// across host DRAM and Type-2 device-bias memory under the LRU spill
// policy — the scenario that exercises every datapath: host loads, D2D
// reads, and DSA migrations — then prints the per-tier traffic.
func inspectKV(seed int64) {
	m := infer.Run(infer.Config{
		Seed:       seed,
		Requests:   24,
		Far:        infer.TierT2Dev,
		Policy:     infer.LRUSpill{LowWater: 8, HighWater: 12},
		DRAMBlocks: 16,
		TraceCap:   1 << 14,
	})

	fmt.Printf("LLM serving sim: %d requests, policy %s, far tier %v\n",
		m.Requests, m.Policy, m.Far)
	fmt.Printf("  TTFT p50 %.2f us   TPOT %.3f us/token   goodput %.0f tok/s\n",
		m.TTFT.Median(), m.TPOT.Mean(), m.Goodput)

	fmt.Println("\nKV-block traffic by tier (serving-model counters)")
	fmt.Printf("  %-10s %12s %12s\n", "tier", "read(B)", "write(B)")
	for _, tier := range infer.Tiers() {
		r, w := m.ReadBytes[tier], m.WriteBytes[tier]
		if r == 0 && w == 0 {
			continue
		}
		fmt.Printf("  %-10s %12d %12d\n", tier, r, w)
	}
	fmt.Printf("  migrations: %d blocks, %d bytes via DSA\n", m.Migrations, m.MigratedBytes)

	fmt.Println("\nCXL-visible traffic by datapath (device transaction trace)")
	rows := trace.SummarizeTiers(m.Trace.Events(), mem.RegionDevice.Contains)
	trace.WriteTierSummary(os.Stdout, rows)
}
