// Command cxlfuzz fuzzes the simulated platform's coherence protocol: it
// generates weighted random operation programs against a chosen topology,
// asserts the full invariant suite after every operation (state
// cross-validation, data-value oracle, monotonic time, resource sanity),
// and on failure shrinks the program to a minimal reproducer, emitting a
// replay file, a standalone Go regression test, and a transaction trace.
//
// Usage:
//
//	cxlfuzz -config t2-hostbias -seed 1 -ops 2000
//	cxlfuzz -config all -duration 30s
//	cxlfuzz -replay repro.cxlfuzz
//	cxlfuzz -config t2-hostbias -fault drop-directory   # prove the harness
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/stress"
)

func main() {
	var (
		configName = flag.String("config", "all", "topology to fuzz (see -list), or 'all'")
		seed       = flag.Int64("seed", 1, "first generator seed")
		ops        = flag.Int("ops", 2000, "operations per program")
		duration   = flag.Duration("duration", 0, "keep fuzzing fresh seeds until this wall-clock budget expires (0 = one seed per config)")
		replayPath = flag.String("replay", "", "replay a program from this file instead of generating")
		faultName  = flag.String("fault", "none", "plant a deliberate bug: none, drop-directory, stale-nc-write")
		outDir     = flag.String("out", ".", "directory for failure artifacts")
		list       = flag.Bool("list", false, "list topologies and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range stress.Configs() {
			fmt.Printf("%-12s %v, %d slice(s), %d host + %d device lines\n",
				c.Name, c.Type, c.Slices, c.HostLines, c.DevLines)
		}
		return
	}

	fault, err := device.ParseFault(*faultName)
	if err != nil {
		fatal(err)
	}

	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fatal(err)
		}
		p, err := stress.ReadReplay(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replaying %s: config %s seed %d fault %v, %d ops\n",
			*replayPath, p.Config, p.Seed, p.Fault, len(p.Ops))
		if fail := stress.Execute(p); fail != nil {
			report(p, fail, *outDir)
			os.Exit(1)
		}
		fmt.Println("replay passed: no invariant violations")
		return
	}

	cfgs := stress.Configs()
	if *configName != "all" {
		c, err := stress.ConfigByName(*configName)
		if err != nil {
			fatal(err)
		}
		cfgs = []stress.Config{c}
	}

	deadline := time.Now().Add(*duration)
	round := int64(0)
	totalRuns, totalOps := 0, 0
	for {
		for _, cfg := range cfgs {
			s := *seed + round
			p := stress.Generate(cfg, s, *ops)
			p.Fault = fault
			totalRuns++
			totalOps += len(p.Ops)
			if fail := stress.Execute(p); fail != nil {
				fmt.Printf("FAIL %s seed %d: %v\n", cfg.Name, s, fail)
				min := stress.Shrink(p)
				fmt.Printf("shrunk %d ops -> %d ops\n", len(p.Ops), len(min.Ops))
				report(min, stress.Execute(min), *outDir)
				os.Exit(1)
			}
		}
		round++
		if *duration == 0 || time.Now().After(deadline) {
			break
		}
	}
	fmt.Printf("ok: %d run(s), %d ops, zero violations\n", totalRuns, totalOps)
}

// report writes the failure artifacts: replay file, standalone Go test, and
// transaction trace CSV.
func report(p *stress.Program, fail *stress.Failure, dir string) {
	if fail != nil {
		fmt.Printf("minimal reproducer fails with: %v\n", fail)
	}
	base := fmt.Sprintf("cxlfuzz-%s-seed%d", p.Config, p.Seed)

	replay := filepath.Join(dir, base+".cxlfuzz")
	if err := writeFile(replay, func(w io.Writer) error { return stress.WriteReplay(w, p) }); err != nil {
		fatal(err)
	}
	testFile := filepath.Join(dir, base+"_test.go.txt")
	testName := "TestRepro" + sanitize(p.Config)
	if err := writeFile(testFile, func(w io.Writer) error { return stress.WriteReproTest(w, p, testName) }); err != nil {
		fatal(err)
	}
	traceFile := filepath.Join(dir, base+".trace.csv")
	buf, _ := stress.CaptureTrace(p, 1<<16)
	if err := writeFile(traceFile, buf.WriteCSV); err != nil {
		fatal(err)
	}
	fmt.Printf("artifacts: %s, %s, %s\n", replay, testFile, traceFile)
}

func writeFile(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sanitize(s string) string {
	var sb strings.Builder
	up := true
	for _, r := range s {
		if r == '-' || r == '_' {
			up = true
			continue
		}
		if up {
			sb.WriteString(strings.ToUpper(string(r)))
			up = false
		} else {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cxlfuzz:", err)
	os.Exit(1)
}
