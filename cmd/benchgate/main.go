// Command benchgate is the perf-CI gate: it parses `go test -bench`
// text output, reduces each benchmark to its median over repeated runs
// (-count=N), and compares ns/op and allocs/op against a committed JSON
// baseline. The build fails when the geometric-mean ns/op ratio across
// shared benchmarks regresses by more than -threshold percent, or the
// geomean allocs/op ratio (over benchmarks that report allocations on
// both sides) regresses by more than -alloc-threshold percent —
// separate gates, so an allocation regression cannot hide behind a
// wall-clock win on a noisy runner and vice versa.
//
// The committed baseline has two forms, written together by -update:
// the JSON this tool gates against, and the raw `go test -bench` text
// (testdata/bench/BENCH_core.txt) that benchstat consumes for the
// human-readable comparison in CI logs.
//
// Usage:
//
//	go test -bench=. -benchmem -count=6 ./internal/sim > cur.txt
//	benchgate cur.txt                      # gate against BENCH_core.json
//	benchgate -update cur.txt              # re-baseline (json + raw text)
//	benchgate -json out.json cur.txt       # also dump current medians
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed BENCH_core.json schema.
type Baseline struct {
	Note       string   `json:"note"`
	Benchmarks []Record `json:"benchmarks"`
}

// Record is one benchmark's median stats.
type Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

func main() { os.Exit(run()) }

func run() int {
	baseline := flag.String("baseline", "BENCH_core.json", "committed baseline JSON to gate against")
	raw := flag.String("raw", filepath.Join("testdata", "bench", "BENCH_core.txt"), "committed raw bench text (benchstat old side), written by -update")
	threshold := flag.Float64("threshold", 10, "max allowed geomean ns/op regression, percent")
	allocThreshold := flag.Float64("alloc-threshold", 10, "max allowed geomean allocs/op regression, percent")
	update := flag.Bool("update", false, "rewrite -baseline and -raw from the input instead of gating")
	jsonOut := flag.String("json", "", "also write the current run's medians as JSON to this path")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchgate [-baseline JSON] [-threshold PCT] [-update] [bench-output.txt ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cur, rawText, err := readInputs(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 1
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no Benchmark lines in input")
		return 1
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, cur, "medians of this run, written by benchgate -json"); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			return 1
		}
	}

	if *update {
		note := "perf-CI baseline: medians over repeated runs; regenerate with benchgate -update (see DESIGN.md)"
		if err := writeJSON(*baseline, cur, note); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			return 1
		}
		if err := os.MkdirAll(filepath.Dir(*raw), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			return 1
		}
		if err := os.WriteFile(*raw, rawText, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			return 1
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks) and %s\n", *baseline, len(cur), *raw)
		return 0
	}

	base, err := loadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return 1
	}
	return gate(os.Stdout, base, cur, *threshold, *allocThreshold)
}

// gate prints a per-benchmark delta table and returns the exit code:
// non-zero when the geomean ns/op ratio exceeds thresholdPct, or the
// geomean allocs/op ratio exceeds allocThresholdPct. The allocs gate
// only considers benchmarks where both sides report a positive
// allocs/op (zero-alloc and pre-benchmem baseline records carry no
// signal about allocation behavior).
func gate(w io.Writer, base *Baseline, cur []Record, thresholdPct, allocThresholdPct float64) int {
	baseBy := make(map[string]Record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}
	var logSum, logSumAlloc float64
	var shared, sharedAlloc int
	fmt.Fprintf(w, "%-40s %14s %14s %8s %10s\n", "benchmark", "base ns/op", "cur ns/op", "delta", "allocs Δ")
	for _, c := range cur {
		b, ok := baseBy[c.Name]
		if !ok || b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-40s %14s %14.1f %8s\n", c.Name, "-", c.NsPerOp, "new")
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		logSum += math.Log(ratio)
		shared++
		allocCol := "-"
		if b.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			ar := c.AllocsPerOp / b.AllocsPerOp
			logSumAlloc += math.Log(ar)
			sharedAlloc++
			allocCol = fmt.Sprintf("%+.1f%%", 100*(ar-1))
		}
		fmt.Fprintf(w, "%-40s %14.1f %14.1f %+7.1f%% %10s\n", c.Name, b.NsPerOp, c.NsPerOp, 100*(ratio-1), allocCol)
		delete(baseBy, c.Name)
	}
	for name := range baseBy {
		fmt.Fprintf(w, "%-40s %14.1f %14s %8s\n", name, baseBy[name].NsPerOp, "-", "gone")
	}
	if shared == 0 {
		fmt.Fprintln(w, "benchgate: FAIL: no benchmarks shared with the baseline")
		return 1
	}
	code := 0
	geomeanPct := 100 * (math.Exp(logSum/float64(shared)) - 1)
	fmt.Fprintf(w, "geomean over %d shared benchmarks: %+.1f%% (threshold +%.0f%%)\n", shared, geomeanPct, thresholdPct)
	if geomeanPct > thresholdPct {
		fmt.Fprintln(w, "benchgate: FAIL: geomean ns/op regression exceeds threshold")
		code = 1
	}
	if sharedAlloc > 0 {
		allocPct := 100 * (math.Exp(logSumAlloc/float64(sharedAlloc)) - 1)
		fmt.Fprintf(w, "allocs/op geomean over %d benchmarks: %+.1f%% (threshold +%.0f%%)\n", sharedAlloc, allocPct, allocThresholdPct)
		if allocPct > allocThresholdPct {
			fmt.Fprintln(w, "benchgate: FAIL: geomean allocs/op regression exceeds threshold")
			code = 1
		}
	}
	if code == 0 {
		fmt.Fprintln(w, "benchgate: ok")
	}
	return code
}

// readInputs parses every named file (stdin when none) and returns the
// per-benchmark medians plus the concatenated raw text for -update.
func readInputs(paths []string) ([]Record, []byte, error) {
	var rawText []byte
	read := func(r io.Reader, name string) error {
		data, err := io.ReadAll(r)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rawText = append(rawText, data...)
		return nil
	}
	if len(paths) == 0 {
		if err := read(os.Stdin, "stdin"); err != nil {
			return nil, nil, err
		}
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, nil, err
		}
		err = read(f, p)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	}
	return reduce(parseBench(string(rawText))), rawText, nil
}

// reduce groups samples by benchmark name (first-seen order) and takes
// the median of each stat — robust to the odd noisy run in a -count=N
// series where a mean would not be.
func reduce(all []sample) []Record {
	samples := map[string][]sample{}
	var order []string
	for _, s := range all {
		if _, seen := samples[s.name]; !seen {
			order = append(order, s.name)
		}
		samples[s.name] = append(samples[s.name], s)
	}
	recs := make([]Record, 0, len(order))
	for _, name := range order {
		ss := samples[name]
		recs = append(recs, Record{
			Name:        name,
			NsPerOp:     median(ss, func(s sample) float64 { return s.nsPerOp }),
			BPerOp:      median(ss, func(s sample) float64 { return s.bPerOp }),
			AllocsPerOp: median(ss, func(s sample) float64 { return s.allocsPerOp }),
			Runs:        len(ss),
		})
	}
	return recs
}

// sample is one parsed `BenchmarkX-N ...` line.
type sample struct {
	name                         string
	nsPerOp, bPerOp, allocsPerOp float64
}

// procSuffix strips the -GOMAXPROCS suffix so baselines recorded on one
// core count compare against runs on another.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark result lines from `go test -bench`
// text output. Lines it does not recognize are ignored, so the full
// test output (PASS, ok, custom-metric units) can be piped in whole.
func parseBench(text string) []sample {
	var out []sample
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		s := sample{name: procSuffix.ReplaceAllString(f[0], "")}
		ok := false
		// f[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				s.nsPerOp, ok = v, true
			case "B/op":
				s.bPerOp = v
			case "allocs/op":
				s.allocsPerOp = v
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}

func median(ss []sample, field func(sample) float64) float64 {
	vals := make([]float64, len(ss))
	for i, s := range ss {
		vals[i] = field(s)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func writeJSON(path string, recs []Record, note string) error {
	data, err := json.MarshalIndent(Baseline{Note: note, Benchmarks: recs}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
