package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: whatever
BenchmarkSchedule-8     	15881846	        75.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedule-8     	15000000	        77.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedule-8     	16000000	        73.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkRunDense-8     	22728608	        52.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig3-8         	     750	   1560000 ns/op	        212.5 CS-rd-LLC1-ns	        96.76 vs-ld-%	 5600000 B/op	    9000 allocs/op
PASS
ok  	repro/internal/sim	10.2s
`

func TestParseBenchMedians(t *testing.T) {
	recs, raw, err := readInputsFromText(benchOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Error("raw text not captured")
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	sched := recs[0]
	if sched.Name != "BenchmarkSchedule" {
		t.Errorf("proc suffix not stripped: %q", sched.Name)
	}
	if sched.Runs != 3 || sched.NsPerOp != 75.0 {
		t.Errorf("median over 3 runs = %v ns/op (%d runs), want 75.0 (3)", sched.NsPerOp, sched.Runs)
	}
	// Custom units (CS-rd-LLC1-ns etc.) must not confuse the pair walk.
	fig3 := recs[2]
	if fig3.NsPerOp != 1560000 || fig3.AllocsPerOp != 9000 {
		t.Errorf("fig3 parsed as %+v", fig3)
	}
}

func TestGateThreshold(t *testing.T) {
	base := &Baseline{Benchmarks: []Record{
		{Name: "BenchmarkSchedule", NsPerOp: 100},
		{Name: "BenchmarkRunDense", NsPerOp: 100},
	}}
	cases := []struct {
		name     string
		cur      []Record
		wantCode int
	}{
		{"improvement passes", []Record{
			{Name: "BenchmarkSchedule", NsPerOp: 80},
			{Name: "BenchmarkRunDense", NsPerOp: 90},
		}, 0},
		{"small regression passes", []Record{
			{Name: "BenchmarkSchedule", NsPerOp: 105},
			{Name: "BenchmarkRunDense", NsPerOp: 105},
		}, 0},
		{"geomean over threshold fails", []Record{
			{Name: "BenchmarkSchedule", NsPerOp: 125},
			{Name: "BenchmarkRunDense", NsPerOp: 125},
		}, 1},
		{"one bad one good averages out", []Record{
			{Name: "BenchmarkSchedule", NsPerOp: 130},
			{Name: "BenchmarkRunDense", NsPerOp: 85},
		}, 0},
		{"nothing shared fails", []Record{
			{Name: "BenchmarkOther", NsPerOp: 10},
		}, 1},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if code := gate(&sb, base, tc.cur, 10, 10); code != tc.wantCode {
			t.Errorf("%s: exit %d, want %d\n%s", tc.name, code, tc.wantCode, sb.String())
		}
	}
}

func TestGateAllocThreshold(t *testing.T) {
	base := &Baseline{Benchmarks: []Record{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 100}, // no alloc stats in baseline
	}}
	cases := []struct {
		name     string
		cur      []Record
		wantCode int
	}{
		{"alloc regression fails even with ns/op win", []Record{
			{Name: "BenchmarkA", NsPerOp: 80, AllocsPerOp: 1200},
			{Name: "BenchmarkB", NsPerOp: 80},
		}, 1},
		{"alloc improvement passes", []Record{
			{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 500},
			{Name: "BenchmarkB", NsPerOp: 100},
		}, 0},
		{"small alloc regression passes", []Record{
			{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 1050},
			{Name: "BenchmarkB", NsPerOp: 100},
		}, 0},
		// Records without allocs on either side must not join the alloc
		// geomean: a baseline recorded before -benchmem carries no signal.
		{"absent alloc stats are skipped", []Record{
			{Name: "BenchmarkA", NsPerOp: 100},
			{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 9999},
		}, 0},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if code := gate(&sb, base, tc.cur, 10, 10); code != tc.wantCode {
			t.Errorf("%s: exit %d, want %d\n%s", tc.name, code, tc.wantCode, sb.String())
		}
	}
}

// readInputsFromText feeds text through the same parse+reduce path the
// CLI uses for a file, without touching the filesystem.
func readInputsFromText(text string) ([]Record, []byte, error) {
	return reduce(parseBench(text)), []byte(text), nil
}
