package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: whatever
BenchmarkSchedule-8     	15881846	        75.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedule-8     	15000000	        77.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedule-8     	16000000	        73.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkRunDense-8     	22728608	        52.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig3-8         	     750	   1560000 ns/op	        212.5 CS-rd-LLC1-ns	        96.76 vs-ld-%	 5600000 B/op	    9000 allocs/op
PASS
ok  	repro/internal/sim	10.2s
`

func TestParseBenchMedians(t *testing.T) {
	recs, raw, err := readInputsFromText(benchOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Error("raw text not captured")
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	sched := recs[0]
	if sched.Name != "BenchmarkSchedule" {
		t.Errorf("proc suffix not stripped: %q", sched.Name)
	}
	if sched.Runs != 3 || sched.NsPerOp != 75.0 {
		t.Errorf("median over 3 runs = %v ns/op (%d runs), want 75.0 (3)", sched.NsPerOp, sched.Runs)
	}
	// Custom units (CS-rd-LLC1-ns etc.) must not confuse the pair walk.
	fig3 := recs[2]
	if fig3.NsPerOp != 1560000 || fig3.AllocsPerOp != 9000 {
		t.Errorf("fig3 parsed as %+v", fig3)
	}
}

func TestGateThreshold(t *testing.T) {
	base := &Baseline{Benchmarks: []Record{
		{Name: "BenchmarkSchedule", NsPerOp: 100},
		{Name: "BenchmarkRunDense", NsPerOp: 100},
	}}
	cases := []struct {
		name     string
		cur      []Record
		wantCode int
	}{
		{"improvement passes", []Record{
			{Name: "BenchmarkSchedule", NsPerOp: 80},
			{Name: "BenchmarkRunDense", NsPerOp: 90},
		}, 0},
		{"small regression passes", []Record{
			{Name: "BenchmarkSchedule", NsPerOp: 105},
			{Name: "BenchmarkRunDense", NsPerOp: 105},
		}, 0},
		{"geomean over threshold fails", []Record{
			{Name: "BenchmarkSchedule", NsPerOp: 125},
			{Name: "BenchmarkRunDense", NsPerOp: 125},
		}, 1},
		{"one bad one good averages out", []Record{
			{Name: "BenchmarkSchedule", NsPerOp: 130},
			{Name: "BenchmarkRunDense", NsPerOp: 85},
		}, 0},
		{"nothing shared fails", []Record{
			{Name: "BenchmarkOther", NsPerOp: 10},
		}, 1},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if code := gate(&sb, base, tc.cur, 10); code != tc.wantCode {
			t.Errorf("%s: exit %d, want %d\n%s", tc.name, code, tc.wantCode, sb.String())
		}
	}
}

// readInputsFromText feeds text through the same parse+reduce path the
// CLI uses for a file, without touching the filesystem.
func readInputsFromText(text string) ([]Record, []byte, error) {
	return reduce(parseBench(text)), []byte(text), nil
}
