package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// PrintStats renders the per-job wall-clock and simulated-event-rate table
// in job-submission order, with a totals line. It is the human-facing end
// of the perf trajectory; WriteStatsJSON is the machine-facing one.
func PrintStats(w io.Writer, results []Result) {
	fmt.Fprintf(w, "\nper-job stats\n")
	fmt.Fprintf(w, "%-28s%12s%12s%14s  %s\n", "job", "wall(ms)", "events", "events/s", "status")
	var wall time.Duration
	var events uint64
	failed := 0
	for _, r := range results {
		status := "ok"
		if r.Err != nil {
			status = "FAILED"
			if r.Panicked {
				status = "PANICKED"
			}
			if r.Cancelled {
				status = "CANCELLED"
			}
			failed++
		}
		fmt.Fprintf(w, "%-28s%12.2f%12d%14.3g  %s\n",
			r.ID, float64(r.Wall.Microseconds())/1000, r.Events, r.EventsPerSec(), status)
		wall += r.Wall
		events += r.Events
	}
	fmt.Fprintf(w, "%-28s%12.2f%12d%14s  %d job(s), %d failed\n",
		"total (cpu)", float64(wall.Microseconds())/1000, events, "", len(results), failed)
}

// JobStat is the JSON shape of one job's timing, the unit of the
// BENCH_experiments.json artifact.
type JobStat struct {
	ID           string  `json:"id"`
	Group        string  `json:"group"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Error        string  `json:"error,omitempty"`
	Panicked     bool    `json:"panicked,omitempty"`
	Cancelled    bool    `json:"cancelled,omitempty"`
}

// GroupStat aggregates one job group (the prefix before the first '/').
type GroupStat struct {
	Group  string  `json:"group"`
	Jobs   int     `json:"jobs"`
	WallMS float64 `json:"wall_ms"`
	Events uint64  `json:"events"`
}

// BenchReport is the artifact document: per-job rows in submission order
// plus per-group aggregates in sorted-key order. The group aggregation is
// built from a map, so its keys MUST be sorted before rendering —
// otherwise two runs of the same suite would emit differently-ordered
// JSON and the byte-identical-output guarantee would be unverifiable.
type BenchReport struct {
	Workers     int         `json:"workers"`
	RootSeed    int64       `json:"root_seed"`
	TotalWallMS float64     `json:"total_wall_ms"`
	Jobs        []JobStat   `json:"jobs"`
	Groups      []GroupStat `json:"groups"`
}

// groupOf extracts a job's group: the ID prefix before the first '/'.
func groupOf(id string) string {
	if i := strings.IndexByte(id, '/'); i >= 0 {
		return id[:i]
	}
	return id
}

// NewBenchReport assembles the artifact document from a finished run.
func NewBenchReport(results []Result, workers int, rootSeed int64) BenchReport {
	rep := BenchReport{Workers: workers, RootSeed: rootSeed}
	byGroup := make(map[string]*GroupStat)
	for _, r := range results {
		ms := float64(r.Wall.Microseconds()) / 1000
		js := JobStat{
			ID:           r.ID,
			Group:        groupOf(r.ID),
			WallMS:       ms,
			Events:       r.Events,
			EventsPerSec: r.EventsPerSec(),
			Panicked:     r.Panicked,
			Cancelled:    r.Cancelled,
		}
		if r.Err != nil {
			js.Error = r.Err.Error()
		}
		rep.Jobs = append(rep.Jobs, js)
		rep.TotalWallMS += ms
		g, ok := byGroup[js.Group]
		if !ok {
			g = &GroupStat{Group: js.Group}
			byGroup[js.Group] = g
		}
		g.Jobs++
		g.WallMS += ms
		g.Events += r.Events
	}
	keys := make([]string, 0, len(byGroup))
	for k := range byGroup {
		keys = append(keys, k)
	}
	sort.Strings(keys) // map iteration order must not leak into the artifact
	for _, k := range keys {
		rep.Groups = append(rep.Groups, *byGroup[k])
	}
	return rep
}

// WriteStatsJSON writes the artifact document as indented JSON.
func WriteStatsJSON(w io.Writer, results []Result, workers int, rootSeed int64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewBenchReport(results, workers, rootSeed))
}
