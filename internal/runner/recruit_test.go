package runner

import "testing"

// TestTryRecruitBounded pins the slot accounting: recruitment is
// non-blocking, grants at most the free slots, and release returns
// exactly what was granted.
func TestTryRecruitBounded(t *testing.T) {
	c := &Ctx{sem: make(chan struct{}, 3)}
	// Occupy one slot, as a running worker would.
	c.sem <- struct{}{}

	got, release := c.TryRecruit(8)
	if got != 2 {
		t.Fatalf("TryRecruit(8) with 2 free slots granted %d, want 2", got)
	}
	if g2, r2 := c.TryRecruit(1); g2 != 0 {
		t.Fatalf("TryRecruit on a saturated pool granted %d, want 0", g2)
	} else {
		r2()
	}
	release()
	if got, release = c.TryRecruit(1); got != 1 {
		t.Fatalf("TryRecruit after release granted %d, want 1", got)
	}
	release()
	if len(c.sem) != 1 {
		t.Fatalf("pool has %d held slots after releases, want the 1 original", len(c.sem))
	}
}

// TestTryRecruitSerial pins the serial-mode no-op: no pool, no grants,
// and the release closure is safe to call.
func TestTryRecruitSerial(t *testing.T) {
	c := &Ctx{}
	got, release := c.TryRecruit(4)
	if got != 0 {
		t.Fatalf("serial TryRecruit granted %d, want 0", got)
	}
	release()
	got, release = c.TryRecruit(0)
	if got != 0 {
		t.Fatalf("TryRecruit(0) granted %d, want 0", got)
	}
	release()
}
