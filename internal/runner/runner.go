// Package runner executes experiment jobs on a bounded worker pool with
// shared-nothing semantics: every job constructs its own simulation engine
// and topology, so jobs never share mutable state and per-engine
// determinism is preserved while the suite scales with host cores.
//
// Three invariants make a parallel run indistinguishable from a serial
// one:
//
//   - per-job seeds derive from (root seed, job ID) through the
//     internal/rng registry — never from goroutine order — so a job sees
//     the same randomness whether it runs first on one worker or last on
//     sixteen;
//   - results are aggregated in job-submission order regardless of
//     completion order, so report output rendered from them is
//     byte-identical to the serial run;
//   - a panicking job is captured (value + stack) and converted into a
//     failed Result instead of killing its worker or the suite.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Job is one self-contained experiment: Run builds its own engine and
// topology, measures, and returns a typed result. ID doubles as the seed
// derivation path and the stats label, so it must be unique within a
// suite and stable across code motion (renaming an ID is a reseeding
// event for that job).
type Job struct {
	ID  string
	Run func(ctx *Ctx) (any, error)
}

// Ctx is the per-job context handed to Run.
type Ctx struct {
	// Seed is the job's derived seed: rng.DeriveSeed(rootSeed, jobID) for a
	// top-level job, rng.DeriveSeed(parentSeed, subID) for a sub-job.
	Seed int64
	// events accumulates the job's simulated work for the event-rate stat.
	events uint64
	// sem is the pool-wide CPU-slot semaphore Fork recruits helpers from;
	// nil in serial mode, where Fork runs sub-jobs inline.
	sem chan struct{}
}

// AddEvents records n simulated events (engine dispatches, or simulated
// accesses for engine-less microbenchmark rigs) attributable to this job.
func (c *Ctx) AddEvents(n uint64) { c.events += n }

// SubJob is one independent co-simulation inside a job: a slice scenario,
// an offload variant, a workload model. Like Job.ID, ID roots the sub-job's
// seed derivation (rng.DeriveSeed(parentSeed, subID)) and must be unique
// within one Fork call and stable across code motion.
type SubJob struct {
	ID  string
	Run func(ctx *Ctx) (any, error)
}

// Fork runs subs — independent co-simulations within the calling job — and
// returns their results in submission order. The determinism contract
// matches the top-level pool exactly:
//
//   - each sub-job's Ctx.Seed derives from (parent seed, sub ID), never
//     from scheduling order;
//   - results are merged in submission order, so output rendered from them
//     is byte-identical whether the subs ran inline or spread across the
//     pool;
//   - a panicking sub-job becomes a failed Result (Panicked=true) without
//     taking down its siblings or the parent.
//
// In serial mode (Workers == 1) the subs run inline on the calling
// goroutine. In parallel mode the parent works through the subs itself and
// opportunistically recruits helper goroutines, each holding one of the
// pool's CPU slots — the same slots top-level workers occupy — so total
// concurrency never exceeds Options.Workers: a saturated pool simply means
// the subs all run on the parent. Recruitment never blocks, so Fork cannot
// deadlock however jobs and sub-jobs are nested.
//
// After the subs complete, their simulated-event counts are folded into the
// parent's (see Result.Events), keeping suite event totals and rates
// truthful under intra-job parallelism.
func (c *Ctx) Fork(subs []SubJob) []Result {
	seen := make(map[string]struct{}, len(subs))
	for _, s := range subs {
		if _, dup := seen[s.ID]; dup {
			panic(fmt.Sprintf("runner: duplicate sub-job ID %q", s.ID))
		}
		seen[s.ID] = struct{}{}
	}

	results := make([]Result, len(subs))
	if c.sem == nil {
		for i := range subs {
			results[i] = runSub(c, subs[i], i)
		}
	} else {
		var next atomic.Int64
		work := func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(subs) {
					return
				}
				results[i] = runSub(c, subs[i], i)
			}
		}
		var wg sync.WaitGroup
		for n := 1; n < len(subs); n++ {
			select {
			case c.sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer func() { <-c.sem; wg.Done() }()
					work()
				}()
				continue
			default:
			}
			break // pool saturated: the parent covers the rest
		}
		work()
		wg.Wait()
	}

	for i := range results {
		c.events += results[i].Events
	}
	return results
}

// TryRecruit claims up to n extra CPU slots from the pool semaphore
// without blocking and returns how many it got plus a release function
// (call it exactly once, when the extra parallelism is done). It is the
// same non-blocking recruitment Fork uses for helper goroutines, exposed
// for jobs whose parallelism lives below the job level — e.g. sharded
// PDES execution inside one simulation — so jobs, sub-jobs and shard
// goroutines together never exceed Options.Workers. In serial mode (no
// pool) it grants nothing, and a nil-receiver or zero n is a no-op; the
// release function is never nil.
func (c *Ctx) TryRecruit(n int) (got int, release func()) {
	if c == nil || c.sem == nil || n <= 0 {
		return 0, func() {}
	}
	for got < n {
		select {
		case c.sem <- struct{}{}:
			got++
			continue
		default:
		}
		break
	}
	k := got
	return got, func() {
		for ; k > 0; k-- {
			<-c.sem
		}
	}
}

// runSub executes a single sub-job on a child Ctx, converting a panic into
// a failed Result exactly as runOne does for top-level jobs.
func runSub(parent *Ctx, s SubJob, index int) (res Result) {
	ctx := &Ctx{Seed: rng.DeriveSeed(parent.Seed, s.ID), sem: parent.sem}
	res = Result{ID: s.ID, Index: index}
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		res.Events = ctx.events
		if r := recover(); r != nil {
			res.Value = nil
			res.Panicked = true
			res.Err = fmt.Errorf("runner: sub-job %q panicked: %v\n%s", s.ID, r, debug.Stack())
		}
	}()
	res.Value, res.Err = s.Run(ctx)
	return res
}

// Result is one job's outcome in submission order.
type Result struct {
	ID    string
	Index int
	// Value is Run's typed result; nil when the job failed.
	Value any
	// Err is Run's error, or the captured panic (with stack) for a
	// crashed job.
	Err error
	// Panicked distinguishes a captured panic from an ordinary error.
	Panicked bool
	// Cancelled marks a job that was never dispatched because
	// Options.Context was done; Err then wraps the context's error.
	Cancelled bool
	// Wall is the job's host wall-clock duration.
	Wall time.Duration
	// Events is the job's simulated-event count (see Ctx.AddEvents).
	Events uint64
}

// EventsPerSec reports the job's simulated-event rate against host
// wall-clock time, or 0 when nothing was recorded.
func (r Result) EventsPerSec() float64 {
	if r.Events == 0 || r.Wall <= 0 {
		return 0
	}
	return float64(r.Events) / r.Wall.Seconds()
}

// Options shapes a Run.
type Options struct {
	// Workers bounds the pool; <= 0 takes GOMAXPROCS. 1 is the serial
	// mode: jobs run on the calling goroutine in submission order.
	Workers int
	// RootSeed roots every job's derived seed.
	RootSeed int64
	// Context, when non-nil, bounds the run: once it is done, jobs not
	// yet dispatched are skipped and marked failed (Cancelled=true,
	// Err wrapping ctx.Err()) while in-flight jobs run to completion.
	// Aggregation order is unaffected — result i always describes job i.
	// nil means run everything (context.Background()).
	Context context.Context
}

// DefaultRootSeed is the root seed used when a caller leaves
// Options.RootSeed zero, chosen to match the repository's other
// single-integer reproducibility knobs (fuzzer, Fig. 8) which default
// to 1.
const DefaultRootSeed int64 = 1

// Effective returns the options with defaults resolved — the worker count
// and root seed Run will actually use. Callers recording run metadata
// (e.g. the stats JSON) use this rather than re-deriving the defaults.
func (o Options) Effective() Options {
	o.setDefaults()
	return o
}

func (o *Options) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RootSeed == 0 {
		o.RootSeed = DefaultRootSeed
	}
}

// Run executes jobs and returns their results indexed and ordered by
// submission position. Duplicate job IDs are a programmer error (they
// would alias seeds) and panic before any job starts.
func Run(jobs []Job, opts Options) []Result {
	opts.setDefaults()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]struct{}, len(jobs))
	for _, j := range jobs {
		if _, dup := seen[j.ID]; dup {
			panic(fmt.Sprintf("runner: duplicate job ID %q", j.ID))
		}
		seen[j.ID] = struct{}{}
	}

	results := make([]Result, len(jobs))
	if opts.Workers == 1 {
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				cancelFrom(results, jobs, i, err)
				return results
			}
			results[i] = runOne(jobs[i], i, opts.RootSeed, nil)
		}
		return results
	}

	// sem holds one token per CPU slot. A top-level worker occupies a slot
	// for each job it runs; Ctx.Fork recruits helper goroutines from the
	// remaining slots (idle workers hold no token), so top-level jobs and
	// intra-job sub-jobs together never exceed Workers concurrent
	// simulations.
	sem := make(chan struct{}, opts.Workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sem <- struct{}{}
				results[i] = runOne(jobs[i], i, opts.RootSeed, sem)
				<-sem
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := range jobs {
		// Poll first so cancellation wins over a ready worker: once the
		// context is done, at most the send already in flight dispatches.
		if err := ctx.Err(); err != nil {
			cancelFrom(results, jobs, i, err)
			break dispatch
		}
		select {
		case <-done:
			cancelFrom(results, jobs, i, ctx.Err())
			break dispatch
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	return results
}

// cancelFrom marks jobs[from:] as cancelled with cause. The entries are
// written before the worker pool is drained, which is safe: an index is
// either dispatched (a worker owns its result slot) or cancelled here,
// never both.
func cancelFrom(results []Result, jobs []Job, from int, cause error) {
	for i := from; i < len(jobs); i++ {
		results[i] = Result{
			ID:        jobs[i].ID,
			Index:     i,
			Cancelled: true,
			Err:       fmt.Errorf("runner: job %q cancelled: %w", jobs[i].ID, cause),
		}
	}
}

// CancelledCount reports how many results were cancelled before dispatch.
func CancelledCount(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Cancelled {
			n++
		}
	}
	return n
}

// runOne executes a single job, converting a panic into a failed Result.
func runOne(j Job, index int, rootSeed int64, sem chan struct{}) (res Result) {
	ctx := &Ctx{Seed: rng.DeriveSeed(rootSeed, j.ID), sem: sem}
	res = Result{ID: j.ID, Index: index}
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		res.Events = ctx.events
		if r := recover(); r != nil {
			res.Value = nil
			res.Panicked = true
			res.Err = fmt.Errorf("runner: job %q panicked: %v\n%s", j.ID, r, debug.Stack())
		}
	}()
	res.Value, res.Err = j.Run(ctx)
	return res
}

// Values extracts the job results in order, returning the first failure
// encountered (if any) so callers can render partial output or abort.
func Values(results []Result) ([]any, error) {
	vals := make([]any, len(results))
	var firstErr error
	for i, r := range results {
		vals[i] = r.Value
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("job %q: %w", r.ID, r.Err)
		}
	}
	return vals, firstErr
}
