package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
)

func echoJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("group%d/job%d", i%3, i)
		jobs[i] = Job{ID: id, Run: func(ctx *Ctx) (any, error) {
			ctx.AddEvents(uint64(10 + len(id)))
			return fmt.Sprintf("%s:%d", id, ctx.Seed), nil
		}}
	}
	return jobs
}

// TestOrderedAggregation: results come back in submission order with the
// right values, for every worker count — including workers > jobs.
func TestOrderedAggregation(t *testing.T) {
	jobs := echoJobs(17)
	for _, workers := range []int{1, 2, 4, 32} {
		results := Run(jobs, Options{Workers: workers, RootSeed: 7})
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(jobs))
		}
		for i, r := range results {
			if r.Index != i || r.ID != jobs[i].ID {
				t.Fatalf("workers=%d: result %d is %q@%d, want %q@%d",
					workers, i, r.ID, r.Index, jobs[i].ID, i)
			}
			want := fmt.Sprintf("%s:%d", jobs[i].ID, rng.DeriveSeed(7, jobs[i].ID))
			if r.Value != want {
				t.Fatalf("workers=%d: value[%d] = %v, want %v", workers, i, r.Value, want)
			}
		}
	}
}

// TestSeedsStableAcrossWorkerCounts: the seed a job observes is a pure
// function of (rootSeed, jobID) — never of worker count, scheduling or
// completion order. Staggered sleeps force different completion orders.
func TestSeedsStableAcrossWorkerCounts(t *testing.T) {
	const n = 12
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		// Later-submitted jobs finish first, so completion order is the
		// reverse of submission order on a parallel pool.
		delay := time.Duration(n-i) * time.Millisecond
		jobs[i] = Job{ID: fmt.Sprintf("seed/job%d", i), Run: func(ctx *Ctx) (any, error) {
			time.Sleep(delay)
			return ctx.Seed, nil
		}}
	}
	var serial []any
	for _, workers := range []int{1, 2, 4, 16} {
		results := Run(jobs, Options{Workers: workers, RootSeed: 99})
		vals, err := Values(results)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			serial = vals
			for i, v := range vals {
				if want := rng.DeriveSeed(99, jobs[i].ID); v != want {
					t.Fatalf("job %d seed = %v, want %v", i, v, want)
				}
			}
			continue
		}
		for i := range vals {
			if vals[i] != serial[i] {
				t.Fatalf("workers=%d: seed[%d] = %v, serial saw %v", workers, i, vals[i], serial[i])
			}
		}
	}
}

// TestPanicIsolation: a planted panicking job becomes a failed Result with
// the panic value and a stack trace; its siblings complete normally.
func TestPanicIsolation(t *testing.T) {
	jobs := echoJobs(9)
	jobs[4] = Job{ID: "boom/job", Run: func(ctx *Ctx) (any, error) {
		panic("planted failure")
	}}
	for _, workers := range []int{1, 4} {
		results := Run(jobs, Options{Workers: workers})
		for i, r := range results {
			if i == 4 {
				if !r.Panicked || r.Err == nil {
					t.Fatalf("workers=%d: planted panic not captured: %+v", workers, r)
				}
				if !strings.Contains(r.Err.Error(), "planted failure") ||
					!strings.Contains(r.Err.Error(), "runner_test.go") {
					t.Fatalf("workers=%d: panic error lacks value or stack: %v", workers, r.Err)
				}
				continue
			}
			if r.Err != nil || r.Value == nil {
				t.Fatalf("workers=%d: sibling %d affected by panic: %+v", workers, i, r)
			}
		}
		if _, err := Values(results); err == nil {
			t.Fatalf("workers=%d: Values did not surface the failure", workers)
		}
	}
}

// TestErrorResult: an ordinary error is reported without the panic flag.
func TestErrorResult(t *testing.T) {
	sentinel := errors.New("no data")
	results := Run([]Job{{ID: "e", Run: func(*Ctx) (any, error) { return nil, sentinel }}}, Options{Workers: 1})
	if r := results[0]; !errors.Is(r.Err, sentinel) || r.Panicked {
		t.Fatalf("result = %+v, want wrapped sentinel, no panic flag", r)
	}
}

// TestDuplicateIDPanics: duplicate IDs would alias seeds, so Run refuses.
func TestDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate job IDs")
		}
	}()
	noop := func(*Ctx) (any, error) { return nil, nil }
	Run([]Job{{ID: "a", Run: noop}, {ID: "a", Run: noop}}, Options{Workers: 1})
}

// TestBenchReportGroupsSorted: the per-group aggregation is built by
// ranging over a map; the emitted JSON must order groups by sorted key
// regardless of job submission order, or the artifact would differ
// between byte-identical runs. Feed the groups in shuffled orders and
// require identical documents.
func TestBenchReportGroupsSorted(t *testing.T) {
	mk := func(ids []string) BenchReport {
		results := make([]Result, len(ids))
		for i, id := range ids {
			results[i] = Result{ID: id, Index: i, Wall: time.Millisecond, Events: 5}
		}
		return NewBenchReport(results, 4, 1)
	}
	orders := [][]string{
		{"zz/a", "mid/b", "aa/c"},
		{"aa/c", "zz/a", "mid/b"},
		{"mid/b", "aa/c", "zz/a"},
	}
	var wantGroups []string
	for _, ids := range orders {
		rep := mk(ids)
		var got []string
		for _, g := range rep.Groups {
			got = append(got, g.Group)
		}
		if wantGroups == nil {
			wantGroups = []string{"aa", "mid", "zz"}
		}
		if fmt.Sprint(got) != fmt.Sprint(wantGroups) {
			t.Fatalf("input %v: groups %v, want %v", ids, got, wantGroups)
		}
	}
}

// TestWriteStatsJSONRoundTrip: the artifact parses back and carries the
// failure annotations.
func TestWriteStatsJSONRoundTrip(t *testing.T) {
	jobs := echoJobs(5)
	jobs[2] = Job{ID: "bad/job", Run: func(*Ctx) (any, error) { panic("x") }}
	results := Run(jobs, Options{Workers: 2, RootSeed: 3})
	var buf strings.Builder
	if err := WriteStatsJSON(&buf, results, 2, 3); err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if rep.Workers != 2 || rep.RootSeed != 3 || len(rep.Jobs) != 5 {
		t.Fatalf("header/jobs wrong: %+v", rep)
	}
	if !rep.Jobs[2].Panicked || rep.Jobs[2].Error == "" {
		t.Fatalf("failed job not annotated: %+v", rep.Jobs[2])
	}
}
