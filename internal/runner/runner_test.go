package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/rng"
)

func echoJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("group%d/job%d", i%3, i)
		jobs[i] = Job{ID: id, Run: func(ctx *Ctx) (any, error) {
			ctx.AddEvents(uint64(10 + len(id)))
			return fmt.Sprintf("%s:%d", id, ctx.Seed), nil
		}}
	}
	return jobs
}

// TestOrderedAggregation: results come back in submission order with the
// right values, for every worker count — including workers > jobs.
func TestOrderedAggregation(t *testing.T) {
	jobs := echoJobs(17)
	for _, workers := range []int{1, 2, 4, 32} {
		results := Run(jobs, Options{Workers: workers, RootSeed: 7})
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(jobs))
		}
		for i, r := range results {
			if r.Index != i || r.ID != jobs[i].ID {
				t.Fatalf("workers=%d: result %d is %q@%d, want %q@%d",
					workers, i, r.ID, r.Index, jobs[i].ID, i)
			}
			want := fmt.Sprintf("%s:%d", jobs[i].ID, rng.DeriveSeed(7, jobs[i].ID))
			if r.Value != want {
				t.Fatalf("workers=%d: value[%d] = %v, want %v", workers, i, r.Value, want)
			}
		}
	}
}

// TestSeedsStableAcrossWorkerCounts: the seed a job observes is a pure
// function of (rootSeed, jobID) — never of worker count, scheduling or
// completion order. Staggered sleeps force different completion orders.
func TestSeedsStableAcrossWorkerCounts(t *testing.T) {
	const n = 12
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		// Later-submitted jobs finish first, so completion order is the
		// reverse of submission order on a parallel pool.
		delay := time.Duration(n-i) * time.Millisecond
		jobs[i] = Job{ID: fmt.Sprintf("seed/job%d", i), Run: func(ctx *Ctx) (any, error) {
			time.Sleep(delay)
			return ctx.Seed, nil
		}}
	}
	var serial []any
	for _, workers := range []int{1, 2, 4, 16} {
		results := Run(jobs, Options{Workers: workers, RootSeed: 99})
		vals, err := Values(results)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			serial = vals
			for i, v := range vals {
				if want := rng.DeriveSeed(99, jobs[i].ID); v != want {
					t.Fatalf("job %d seed = %v, want %v", i, v, want)
				}
			}
			continue
		}
		for i := range vals {
			if vals[i] != serial[i] {
				t.Fatalf("workers=%d: seed[%d] = %v, serial saw %v", workers, i, vals[i], serial[i])
			}
		}
	}
}

// TestPanicIsolation: a planted panicking job becomes a failed Result with
// the panic value and a stack trace; its siblings complete normally.
func TestPanicIsolation(t *testing.T) {
	jobs := echoJobs(9)
	jobs[4] = Job{ID: "boom/job", Run: func(ctx *Ctx) (any, error) {
		panic("planted failure")
	}}
	for _, workers := range []int{1, 4} {
		results := Run(jobs, Options{Workers: workers})
		for i, r := range results {
			if i == 4 {
				if !r.Panicked || r.Err == nil {
					t.Fatalf("workers=%d: planted panic not captured: %+v", workers, r)
				}
				if !strings.Contains(r.Err.Error(), "planted failure") ||
					!strings.Contains(r.Err.Error(), "runner_test.go") {
					t.Fatalf("workers=%d: panic error lacks value or stack: %v", workers, r.Err)
				}
				continue
			}
			if r.Err != nil || r.Value == nil {
				t.Fatalf("workers=%d: sibling %d affected by panic: %+v", workers, i, r)
			}
		}
		if _, err := Values(results); err == nil {
			t.Fatalf("workers=%d: Values did not surface the failure", workers)
		}
	}
}

// TestErrorResult: an ordinary error is reported without the panic flag.
func TestErrorResult(t *testing.T) {
	sentinel := errors.New("no data")
	results := Run([]Job{{ID: "e", Run: func(*Ctx) (any, error) { return nil, sentinel }}}, Options{Workers: 1})
	if r := results[0]; !errors.Is(r.Err, sentinel) || r.Panicked {
		t.Fatalf("result = %+v, want wrapped sentinel, no panic flag", r)
	}
}

// TestDuplicateIDPanics: duplicate IDs would alias seeds, so Run refuses.
func TestDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate job IDs")
		}
	}()
	noop := func(*Ctx) (any, error) { return nil, nil }
	Run([]Job{{ID: "a", Run: noop}, {ID: "a", Run: noop}}, Options{Workers: 1})
}

// TestBenchReportGroupsSorted: the per-group aggregation is built by
// ranging over a map; the emitted JSON must order groups by sorted key
// regardless of job submission order, or the artifact would differ
// between byte-identical runs. Feed the groups in shuffled orders and
// require identical documents.
func TestBenchReportGroupsSorted(t *testing.T) {
	mk := func(ids []string) BenchReport {
		results := make([]Result, len(ids))
		for i, id := range ids {
			results[i] = Result{ID: id, Index: i, Wall: time.Millisecond, Events: 5}
		}
		return NewBenchReport(results, 4, 1)
	}
	orders := [][]string{
		{"zz/a", "mid/b", "aa/c"},
		{"aa/c", "zz/a", "mid/b"},
		{"mid/b", "aa/c", "zz/a"},
	}
	var wantGroups []string
	for _, ids := range orders {
		rep := mk(ids)
		var got []string
		for _, g := range rep.Groups {
			got = append(got, g.Group)
		}
		if wantGroups == nil {
			wantGroups = []string{"aa", "mid", "zz"}
		}
		if fmt.Sprint(got) != fmt.Sprint(wantGroups) {
			t.Fatalf("input %v: groups %v, want %v", ids, got, wantGroups)
		}
	}
}

// TestWriteStatsJSONRoundTrip: the artifact parses back and carries the
// failure annotations.
func TestWriteStatsJSONRoundTrip(t *testing.T) {
	jobs := echoJobs(5)
	jobs[2] = Job{ID: "bad/job", Run: func(*Ctx) (any, error) { panic("x") }}
	results := Run(jobs, Options{Workers: 2, RootSeed: 3})
	var buf strings.Builder
	if err := WriteStatsJSON(&buf, results, 2, 3); err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if rep.Workers != 2 || rep.RootSeed != 3 || len(rep.Jobs) != 5 {
		t.Fatalf("header/jobs wrong: %+v", rep)
	}
	if !rep.Jobs[2].Panicked || rep.Jobs[2].Error == "" {
		t.Fatalf("failed job not annotated: %+v", rep.Jobs[2])
	}
}

// forkJob builds a job that forks n sub-jobs; each sub records subEvents
// simulated events and returns its derived seed, and the parent itself
// records parentEvents before forking.
func forkJob(id string, n int, parentEvents, subEvents uint64) Job {
	return Job{ID: id, Run: func(ctx *Ctx) (any, error) {
		ctx.AddEvents(parentEvents)
		subs := make([]SubJob, n)
		for i := 0; i < n; i++ {
			subs[i] = SubJob{ID: fmt.Sprintf("sub%d", i), Run: func(sctx *Ctx) (any, error) {
				sctx.AddEvents(subEvents)
				return sctx.Seed, nil
			}}
		}
		seeds := make([]int64, n)
		for i, r := range ctx.Fork(subs) {
			if r.Err != nil {
				return nil, r.Err
			}
			seeds[i] = r.Value.(int64)
		}
		return seeds, nil
	}}
}

// TestForkEventAggregation: a parent job's Result.Events must include the
// events its sub-jobs recorded, in serial and parallel mode alike —
// intra-job parallelism must not leak simulated work out of the suite's
// event accounting.
func TestForkEventAggregation(t *testing.T) {
	const parentEvents, subEvents, subs = 7, 100, 5
	for _, workers := range []int{1, 3} {
		results := Run([]Job{forkJob("fork/events", subs, parentEvents, subEvents)},
			Options{Workers: workers, RootSeed: 3})
		if err := results[0].Err; err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := uint64(parentEvents + subs*subEvents)
		if got := results[0].Events; got != want {
			t.Errorf("workers=%d: parent Events = %d, want %d (parent %d + %d subs × %d)",
				workers, got, want, parentEvents, subs, subEvents)
		}
	}
}

// TestForkSeedsAndMergeOrder: sub-job seeds derive from (parent seed,
// sub ID) and results come back in submission order, for every worker
// count — the determinism contract of Ctx.Fork.
func TestForkSeedsAndMergeOrder(t *testing.T) {
	const n = 9
	for _, workers := range []int{1, 2, 8} {
		results := Run([]Job{forkJob("fork/seeds", n, 0, 1)},
			Options{Workers: workers, RootSeed: 11})
		if err := results[0].Err; err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		parentSeed := rng.DeriveSeed(11, "fork/seeds")
		seeds := results[0].Value.([]int64)
		for i, got := range seeds {
			if want := rng.DeriveSeed(parentSeed, fmt.Sprintf("sub%d", i)); got != want {
				t.Errorf("workers=%d: sub %d seed = %d, want %d", workers, i, got, want)
			}
		}
	}
}

// TestForkSubPanicIsolation: a planted panic in one sub-job becomes a
// failed Result with the panic value and stack; sibling subs and the
// parent job complete normally.
func TestForkSubPanicIsolation(t *testing.T) {
	job := Job{ID: "fork/panic", Run: func(ctx *Ctx) (any, error) {
		subs := []SubJob{
			{ID: "ok0", Run: func(*Ctx) (any, error) { return "fine", nil }},
			{ID: "boom", Run: func(*Ctx) (any, error) { panic("planted sub failure") }},
			{ID: "ok1", Run: func(*Ctx) (any, error) { return "fine", nil }},
		}
		return ctx.Fork(subs), nil
	}}
	for _, workers := range []int{1, 4} {
		results := Run([]Job{job}, Options{Workers: workers})
		if results[0].Err != nil {
			t.Fatalf("workers=%d: parent failed: %v", workers, results[0].Err)
		}
		subResults := results[0].Value.([]Result)
		for i, r := range subResults {
			if i == 1 {
				if !r.Panicked || r.Err == nil ||
					!strings.Contains(r.Err.Error(), "planted sub failure") ||
					!strings.Contains(r.Err.Error(), "runner_test.go") {
					t.Errorf("workers=%d: planted sub panic not captured: %+v", workers, r)
				}
				continue
			}
			if r.Err != nil || r.Value != "fine" {
				t.Errorf("workers=%d: sibling sub %q affected: %+v", workers, r.ID, r)
			}
		}
	}
}

// TestForkDuplicateSubIDPanics: duplicate sub IDs would alias derived
// seeds, so Fork refuses up front exactly as Run does for jobs.
func TestForkDuplicateSubIDPanics(t *testing.T) {
	job := Job{ID: "fork/dup", Run: func(ctx *Ctx) (any, error) {
		noop := func(*Ctx) (any, error) { return nil, nil }
		ctx.Fork([]SubJob{{ID: "a", Run: noop}, {ID: "a", Run: noop}})
		return nil, nil
	}}
	r := Run([]Job{job}, Options{Workers: 1})[0]
	if !r.Panicked || !strings.Contains(r.Err.Error(), "duplicate sub-job ID") {
		t.Fatalf("result = %+v, want captured duplicate-sub-ID panic", r)
	}
}

// TestForkNested: Fork inside a sub-job must complete (recruitment never
// blocks) and keep the same seed-derivation chain.
func TestForkNested(t *testing.T) {
	job := Job{ID: "fork/nested", Run: func(ctx *Ctx) (any, error) {
		outer := []SubJob{{ID: "mid", Run: func(mctx *Ctx) (any, error) {
			inner := []SubJob{{ID: "leaf", Run: func(lctx *Ctx) (any, error) {
				return lctx.Seed, nil
			}}}
			return mctx.Fork(inner)[0].Value, nil
		}}}
		return ctx.Fork(outer)[0].Value, nil
	}}
	for _, workers := range []int{1, 2} {
		r := Run([]Job{job}, Options{Workers: workers, RootSeed: 5})[0]
		if r.Err != nil {
			t.Fatalf("workers=%d: %v", workers, r.Err)
		}
		want := rng.DeriveSeed(rng.DeriveSeed(rng.DeriveSeed(5, "fork/nested"), "mid"), "leaf")
		if r.Value != want {
			t.Errorf("workers=%d: leaf seed = %v, want %v", workers, r.Value, want)
		}
	}
}
