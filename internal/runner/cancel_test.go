package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestSerialCancellation: with a pre-cancelled context, a serial run marks
// every job cancelled without running any of them, in submission order.
func TestSerialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("c/job%d", i), Run: func(*Ctx) (any, error) {
			ran.Add(1)
			return nil, nil
		}}
	}
	results := Run(jobs, Options{Workers: 1, Context: ctx})
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran under a cancelled context", ran.Load())
	}
	if got := CancelledCount(results); got != len(jobs) {
		t.Fatalf("CancelledCount = %d, want %d", got, len(jobs))
	}
	for i, r := range results {
		if !r.Cancelled || r.Panicked {
			t.Fatalf("result %d: Cancelled=%v Panicked=%v", i, r.Cancelled, r.Panicked)
		}
		if r.ID != jobs[i].ID || r.Index != i {
			t.Fatalf("result %d is %q@%d, want %q@%d", i, r.ID, r.Index, jobs[i].ID, i)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d: Err = %v, want wrapped context.Canceled", i, r.Err)
		}
	}
	if _, err := Values(results); !errors.Is(err, context.Canceled) {
		t.Fatalf("Values error = %v, want wrapped context.Canceled", err)
	}
}

// TestParallelCancellation: cancelling mid-run lets in-flight jobs finish,
// skips undispatched ones, and keeps result slots aligned to submission
// order. The first job cancels the run itself, so by the time its worker
// asks for more work the dispatcher has observed the cancellation.
func TestParallelCancellation(t *testing.T) {
	const n = 24
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{ID: fmt.Sprintf("pc/job%d", i), Run: func(*Ctx) (any, error) {
			if i == 0 {
				cancel()
			}
			return i, nil
		}}
	}
	results := Run(jobs, Options{Workers: 2, Context: ctx})
	cancelled := CancelledCount(results)
	if cancelled == 0 {
		t.Fatalf("expected some cancelled jobs out of %d", n)
	}
	for i, r := range results {
		if r.ID != jobs[i].ID || r.Index != i {
			t.Fatalf("result %d is %q@%d, want %q@%d", i, r.ID, r.Index, jobs[i].ID, i)
		}
		switch {
		case r.Cancelled:
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("cancelled result %d: Err = %v", i, r.Err)
			}
		case r.Err != nil:
			t.Fatalf("dispatched result %d failed: %v", i, r.Err)
		default:
			if r.Value != i {
				t.Fatalf("dispatched result %d: Value = %v, want %d", i, r.Value, i)
			}
		}
	}
}

// TestNilContextRunsEverything: a nil Options.Context means no
// cancellation — every job runs.
func TestNilContextRunsEverything(t *testing.T) {
	jobs := echoJobs(6)
	results := Run(jobs, Options{Workers: 3})
	if got := CancelledCount(results); got != 0 {
		t.Fatalf("CancelledCount = %d, want 0", got)
	}
	if _, err := Values(results); err != nil {
		t.Fatalf("Values error: %v", err)
	}
}
