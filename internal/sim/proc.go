package sim

// Proc is a cooperative simulated process: a chain of timed steps scheduled
// on the engine, optionally consuming time on a Core. It is the abstraction
// behind kswapd, the ksm scanner, device polling loops and the KVS serving
// loop. A Proc is single-threaded in simulated time; steps run strictly in
// sequence.
type Proc struct {
	eng  *Engine
	name string
	// core, when non-nil, is the CPU core the process runs on; Compute claims
	// it so that co-scheduled processes contend for cycles.
	core *Resource
	// at is the process-local clock: the simulated time at which the previous
	// step finished.
	at Time
	// step holds the pending callback of the typed scheduling fast path: a
	// Proc chain has at most one outstanding step almost always, so Schedule
	// parks fn here and the event carries only the Proc — one type assertion
	// at dispatch instead of the pooled pair record's three. A second
	// Schedule issued while step is occupied falls back to the pooled path.
	step func(p *Proc)
}

// NewProc creates a process bound to eng, optionally pinned to core (nil for
// a process that consumes no CPU, such as a hardware engine's control loop).
func NewProc(eng *Engine, name string, core *Resource) *Proc {
	return &Proc{eng: eng, name: name, core: core, at: eng.Now()}
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Core returns the core the process is pinned to, or nil.
func (p *Proc) Core() *Resource { return p.core }

// SetCore migrates the process to another core (a floating kernel thread
// rescheduled by the CPU scheduler). Pending work is unaffected; future
// Compute calls claim the new core.
func (p *Proc) SetCore(core *Resource) { p.core = core }

// Now returns the process-local clock.
func (p *Proc) Now() Time { return p.at }

// AdvanceTo moves the process-local clock forward to t (no-op if already
// past). Use it to account for waiting on an externally computed completion
// time, e.g. a memory transaction finishing at t.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.at {
		p.at = t
	}
}

// Sleep advances the process-local clock by d without consuming the core —
// the semantics of yielding the CPU, as kswapd does while the device ACC
// works (§VI-A step 3).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.at += d
}

// Compute advances the process by d of CPU work. If the process is pinned to
// a core the work claims the core, so the step may additionally wait for
// other processes' work to drain; the returned Time is when the work
// completes.
func (p *Proc) Compute(d Time) Time {
	if d < 0 {
		panic("sim: negative compute")
	}
	if p.core != nil {
		start := p.core.Claim(p.at, d)
		p.at = start + d
	} else {
		p.at += d
	}
	return p.at
}

// Restart rebinds the process-local clock to the engine's current time,
// discarding local history. It exists so a server can reuse one Proc across
// many short-lived request chains instead of allocating a Proc per request;
// the caller must ensure the previous chain has fully run (no pending
// Schedule) before restarting.
func (p *Proc) Restart() { p.at = p.eng.Now() }

// Schedule runs fn as an engine event at the process-local clock. The
// callback receives the process so it can continue the chain.
//
// A chain with one outstanding step — the shape of every daemon loop in
// the model (kswapd, ksmd, the KVS serving loop) — takes the typed fast
// path: fn parks in the Proc and the event carries the Proc alone, so a
// step costs a single pointer type assertion and no pool traffic. Chains
// that somehow overlap two pending steps fall back to the pooled
// two-argument event; either way a preallocated step function (rather
// than a fresh closure) costs zero allocations per step.
func (p *Proc) Schedule(fn func(p *Proc)) {
	if p.step == nil {
		p.step = fn
		p.eng.AtCall(p.at, callProcTyped, p)
		return
	}
	p.eng.AtCall2(p.at, callProcStep, p, fn)
}

// callProcTyped dispatches the parked step of the typed fast path. The
// slot is cleared before fn runs so the step can immediately Schedule its
// successor back onto the fast path.
func callProcTyped(arg any) {
	p := arg.(*Proc)
	fn := p.step
	p.step = nil
	fn(p)
}

// callProcStep reunites a scheduled step with its process (the fallback
// path for a Proc with two pending steps).
func callProcStep(a, b any) { b.(func(*Proc))(a.(*Proc)) }
