package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("Nanosecond = %d", Nanosecond)
	}
	if Second != 1_000_000_000_000 {
		t.Fatalf("Second = %d", Second)
	}
	if got := (1500 * Picosecond).Nanoseconds(); got != 1.5 {
		t.Fatalf("Nanoseconds = %v", got)
	}
	if got := (2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Fatalf("Microseconds = %v", got)
	}
	if got := FromNanos(1.5); got != 1500 {
		t.Fatalf("FromNanos(1.5) = %v", got)
	}
	if got := FromNanos(0.0004); got != 0 {
		t.Fatalf("FromNanos rounding = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Nanosecond, "1500.00ns"},
		{25 * Microsecond, "25.00us"},
		{12 * Millisecond, "12.000ms"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v", e.Now())
	}
	if e.Executed() != 3 {
		t.Fatalf("Executed = %d", e.Executed())
	}
}

func TestEngineFIFOWithinTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.At(5, func() {
		hits = append(hits, e.Now())
		e.After(7, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 5 || hits[1] != 12 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var n int
	for _, at := range []Time{10, 20, 30, 40} {
		e.At(at, func() { n++ })
	}
	e.RunUntil(25)
	if n != 2 {
		t.Fatalf("events run = %d", n)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run()
	if n != 4 || e.Now() != 40 {
		t.Fatalf("after Run: n=%d now=%v", n, e.Now())
	}
}

func TestEngineAdvance(t *testing.T) {
	e := NewEngine()
	var n int
	e.At(10, func() { n++ })
	e.Advance(50)
	if n != 1 || e.Now() != 50 {
		t.Fatalf("n=%d now=%v", n, e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	var n int
	e.At(10, func() { n++; e.Stop() })
	e.At(20, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("n = %d after Stop", n)
	}
	e.Run() // resumes
	if n != 2 {
		t.Fatalf("n = %d after resume", n)
	}
}

// TestEngineFIFOAcrossSchedulingForms pins that At, AtCall and AtCall2
// share one sequence counter: events at the same timestamp dispatch in
// scheduling order regardless of which API scheduled them.
func TestEngineFIFOAcrossSchedulingForms(t *testing.T) {
	e := NewEngine()
	var order []int
	add := func(arg any) { order = append(order, *arg.(*int)) }
	add2 := func(a, _ any) { order = append(order, *a.(*int)) }
	vals := make([]int, 9)
	for i := range vals {
		vals[i] = i
		switch i % 3 {
		case 0:
			i := i
			e.At(100, func() { order = append(order, i) })
		case 1:
			e.AtCall(100, add, &vals[i])
		case 2:
			e.AtCall2(100, add2, &vals[i], nil)
		}
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed-form same-timestamp order = %v", order)
		}
	}
}

// TestEngineStopBeforeRunIsDiscarded pins the documented Stop semantics:
// Stop outside a dispatch loop does not cancel the next Run — RunUntil
// clears the flag on entry, so all pending events still dispatch.
func TestEngineStopBeforeRunIsDiscarded(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(10, func() { n++ })
	e.At(20, func() { n++ })
	e.Stop() // no loop running: deliberately a no-op
	if end := e.Run(); end != 20 {
		t.Fatalf("Run ended at %v, want 20", end)
	}
	if n != 2 {
		t.Fatalf("Stop before Run suppressed events: n = %d, want 2", n)
	}
}

// TestEngineStopInsideEvent pins the complementary half: Stop from inside a
// callback halts after that event, leaves the rest pending, and a later
// Run resumes them.
func TestEngineStopInsideEvent(t *testing.T) {
	e := NewEngine()
	var order []Time
	e.At(10, func() { order = append(order, e.Now()); e.Stop() })
	e.At(10, func() { order = append(order, e.Now()) }) // same timestamp, after the Stop
	e.At(20, func() { order = append(order, e.Now()) })
	if end := e.Run(); end != 10 {
		t.Fatalf("Run after Stop ended at %v, want 10", end)
	}
	if len(order) != 1 || e.Pending() != 2 {
		t.Fatalf("after Stop: dispatched %v, pending %d", order, e.Pending())
	}
	e.Run()
	if len(order) != 3 || order[1] != 10 || order[2] != 20 {
		t.Fatalf("resume order = %v", order)
	}
}

func TestEnginePastSchedulePanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(50, func() {})
}

// TestEngineAfterNearForeverSaturates is the regression test for the
// After overflow: scheduling a delay near Forever from a non-zero clock
// used to wrap e.now+d negative and panic with a misleading
// "scheduling event in the past". The sum must saturate at Forever, and
// the saturated event must behave like any other never-reached timeout:
// invisible to RunUntil with an earlier deadline.
func TestEngineAfterNearForeverSaturates(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run() // now = 100, so now + Forever would wrap

	fired := false
	e.After(Forever, func() { fired = true })
	e.After(Forever-1, func() {}) // any near-Forever delay, not just the exact constant
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	if end := e.RunUntil(Forever - 1); end != 100 {
		t.Fatalf("RunUntil dispatched a saturated event early (now = %v)", end)
	}
	if fired {
		t.Fatal("saturated event fired before Forever")
	}
	// At the very end of time the saturated events do run, in FIFO order.
	e.RunUntil(Forever)
	if !fired {
		t.Fatal("saturated event never fired at Forever")
	}
}

func TestEngineRandomOrderProperty(t *testing.T) {
	// Property: regardless of insertion order, dispatch order is sorted by
	// (time, insertion sequence).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 200
		times := make([]Time, n)
		for i := range times {
			times[i] = Time(rng.Intn(50)) // many ties
		}
		var got []Time
		for _, tm := range times {
			tm := tm
			e.At(tm, func() { got = append(got, tm) })
		}
		e.Run()
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerialization(t *testing.T) {
	r := NewResource("link")
	// Three back-to-back claims at the same instant serialize.
	s1 := r.Claim(0, 10)
	s2 := r.Claim(0, 10)
	s3 := r.Claim(0, 10)
	if s1 != 0 || s2 != 10 || s3 != 20 {
		t.Fatalf("starts = %v %v %v", s1, s2, s3)
	}
	if r.FreeAt() != 30 {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}
	if r.Busy() != 30 {
		t.Fatalf("Busy = %v", r.Busy())
	}
	if r.Claims() != 3 {
		t.Fatalf("Claims = %d", r.Claims())
	}
}

func TestResourceIdleGap(t *testing.T) {
	r := NewResource("x")
	r.Claim(0, 5)
	s := r.Claim(100, 5) // arrives after idle period: starts immediately
	if s != 100 {
		t.Fatalf("start = %v", s)
	}
	if r.Busy() != 10 {
		t.Fatalf("Busy = %v", r.Busy())
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Claim(0, 5)
	r.Reset()
	if r.FreeAt() != 0 || r.Busy() != 0 || r.Claims() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestResourceThroughputProperty(t *testing.T) {
	// Property: N claims of occupancy c, issued arbitrarily but no earlier
	// than their predecessors, finish no earlier than N*c.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("p")
		const n = 100
		c := Time(rng.Intn(20) + 1)
		now := Time(0)
		var last Time
		for i := 0; i < n; i++ {
			now += Time(rng.Intn(3)) // sometimes bunched, sometimes spread
			start := r.Claim(now, c)
			if start < now {
				return false
			}
			last = start + c
		}
		return last >= Time(n)*c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCreditsUnlimitedUnderCapacity(t *testing.T) {
	c := NewCredits("mshr", 4)
	for i := 0; i < 4; i++ {
		if start := c.Acquire(0); start != 0 {
			t.Fatalf("acquire %d delayed to %v", i, start)
		}
		c.Complete(100)
	}
	if c.InFlight() != 4 {
		t.Fatalf("InFlight = %d", c.InFlight())
	}
}

func TestCreditsBlockAtCapacity(t *testing.T) {
	c := NewCredits("mshr", 2)
	c.Acquire(0)
	c.Complete(50)
	c.Acquire(0)
	c.Complete(80)
	// Third acquire must wait for the earliest completion (50).
	if start := c.Acquire(0); start != 50 {
		t.Fatalf("start = %v, want 50", start)
	}
	c.Complete(120)
	// Fourth waits for the next earliest (80).
	if start := c.Acquire(0); start != 80 {
		t.Fatalf("start = %v, want 80", start)
	}
}

func TestCreditsRetireByNow(t *testing.T) {
	c := NewCredits("mshr", 1)
	c.Acquire(0)
	c.Complete(10)
	// At time 20 the outstanding op has retired; no delay.
	if start := c.Acquire(20); start != 20 {
		t.Fatalf("start = %v", start)
	}
}

func TestCreditsPipelineBandwidth(t *testing.T) {
	// With capacity k and per-op latency L issued back-to-back, op i starts at
	// max(0, (i-k+1) * L/k)... simplest invariant: completion of op N with
	// capacity k and fixed latency L is ceil(N/k)*L when issue is free.
	const k, n = 4, 16
	const L = Time(100)
	c := NewCredits("pipe", k)
	var last Time
	for i := 0; i < n; i++ {
		start := c.Acquire(0)
		done := start + L
		c.Complete(done)
		last = done
	}
	if want := Time(n/k) * L; last != want {
		t.Fatalf("last completion = %v, want %v", last, want)
	}
}

// TestCreditsExhaustionInFlightCount is the regression test for the
// Acquire exhaustion branch: after the retire-by-now loop every
// outstanding completion is strictly in the future, so the pop that frees
// a credit must consume exactly one still-in-flight completion — never a
// credit that retirement already freed — and the in-flight count must
// reflect it.
func TestCreditsExhaustionInFlightCount(t *testing.T) {
	c := NewCredits("mshr", 2)
	// Fill the pool with completions at 50 and 80.
	c.Complete(50)
	c.Complete(80)
	if c.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", c.InFlight())
	}
	// Acquire at 10: nothing has retired, pool exhausted. Service starts at
	// the earliest completion (50), and that completion's credit is the one
	// handed over — exactly one entry leaves the multiset.
	if start := c.Acquire(10); start != 50 {
		t.Fatalf("start = %v, want 50", start)
	}
	if c.InFlight() != 1 {
		t.Fatalf("InFlight after exhausted Acquire = %d, want 1 (only the freed credit may be popped)", c.InFlight())
	}
	c.Complete(120)
	// Acquire at 90: the completion at 80 retires in the loop, freeing a
	// slot — the exhaustion branch must NOT run, and no in-flight credit
	// (120) may be consumed.
	if start := c.Acquire(90); start != 90 {
		t.Fatalf("start = %v, want 90", start)
	}
	if c.InFlight() != 1 {
		t.Fatalf("InFlight after retire-path Acquire = %d, want 1 (the 120 completion must survive)", c.InFlight())
	}
}

func TestCreditsInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCredits("bad", 0)
}

// creditsRef is an obviously-correct reference model of Credits: a plain
// multiset of completion times, re-sorted on every mutation.
type creditsRef struct {
	capacity int
	pending  []Time
}

func (r *creditsRef) acquire(now Time) Time {
	start := now
	kept := r.pending[:0]
	for _, t := range r.pending {
		if t > start {
			kept = append(kept, t)
		}
	}
	r.pending = kept
	if len(r.pending) >= r.capacity {
		sort.Slice(r.pending, func(i, j int) bool { return r.pending[i] < r.pending[j] })
		start = r.pending[0]
		r.pending = r.pending[1:]
	}
	return start
}

func (r *creditsRef) complete(t Time) { r.pending = append(r.pending, t) }

// TestCreditsMatchesReference drives the sorted-ring Credits through random
// interleavings of Acquire and Complete — including out-of-order completions
// and non-monotone acquire times, which no current caller produces but the
// API permits — and checks every returned start and in-flight count against
// the reference multiset model.
func TestCreditsMatchesReference(t *testing.T) {
	f := func(ops []int16, capSeed uint8) bool {
		capacity := 1 + int(capSeed%8)
		c := NewCredits("prop", capacity)
		ref := &creditsRef{capacity: capacity}
		for _, op := range ops {
			if op < 0 {
				tm := Time(-op)
				c.Complete(tm)
				ref.complete(tm)
			} else {
				got := c.Acquire(Time(op))
				want := ref.acquire(Time(op))
				if got != want {
					return false
				}
			}
			if c.InFlight() != len(ref.pending) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcComputeOnSharedCore(t *testing.T) {
	e := NewEngine()
	core := NewResource("core0")
	a := NewProc(e, "a", core)
	b := NewProc(e, "b", core)
	a.Compute(100)
	// b starts at 0 but the core is busy until 100.
	done := b.Compute(50)
	if done != 150 {
		t.Fatalf("b done at %v, want 150", done)
	}
}

func TestProcSleepDoesNotHoldCore(t *testing.T) {
	e := NewEngine()
	core := NewResource("core0")
	a := NewProc(e, "a", core)
	b := NewProc(e, "b", core)
	a.Sleep(100) // yields the CPU
	if done := b.Compute(50); done != 50 {
		t.Fatalf("b done at %v, want 50 (core should be free during a's sleep)", done)
	}
	if a.Now() != 100 {
		t.Fatalf("a.Now = %v", a.Now())
	}
}

func TestProcAdvanceTo(t *testing.T) {
	e := NewEngine()
	p := NewProc(e, "p", nil)
	p.AdvanceTo(500)
	if p.Now() != 500 {
		t.Fatalf("Now = %v", p.Now())
	}
	p.AdvanceTo(100) // backwards is a no-op
	if p.Now() != 500 {
		t.Fatalf("Now after backwards AdvanceTo = %v", p.Now())
	}
}

func TestProcSchedule(t *testing.T) {
	e := NewEngine()
	p := NewProc(e, "p", nil)
	p.Sleep(42)
	var ran Time
	p.Schedule(func(p *Proc) { ran = e.Now() })
	e.Run()
	if ran != 42 {
		t.Fatalf("scheduled at %v, want 42", ran)
	}
}

func TestProcRestart(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	p := NewProc(e, "req", nil)
	p.Sleep(40) // local clock runs ahead: 40
	e.Run()     // engine reaches 100
	p.Restart()
	if p.Now() != 100 {
		t.Fatalf("Now after Restart = %v, want 100 (engine time)", p.Now())
	}
	p.AdvanceTo(150)
	if p.Now() != 150 {
		t.Fatalf("Now = %v", p.Now())
	}
}

func BenchmarkEngineDispatch(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkResourceClaim(b *testing.B) {
	r := NewResource("bench")
	for i := 0; i < b.N; i++ {
		r.Claim(Time(i), 1)
	}
}

func BenchmarkCreditsAcquire(b *testing.B) {
	c := NewCredits("bench", 16)
	for i := 0; i < b.N; i++ {
		s := c.Acquire(Time(i))
		c.Complete(s + 100)
	}
}
