package sim

import (
	"testing"
)

// TestRunWindowStrictBound pins the conservative-window contract: events
// strictly before the bound run, an event exactly at the bound does not,
// and the clock stays at the last dispatched event.
func TestRunWindowStrictBound(t *testing.T) {
	e := NewEngine()
	var got []Time
	rec := func(arg any) { got = append(got, arg.(Time)) }
	for _, at := range []Time{10, 20, 30, 40} {
		e.AtCall(at, rec, at)
	}
	if now := e.RunWindow(30); now != 20 {
		t.Fatalf("RunWindow(30) left clock at %v, want 20", now)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("dispatched %v, want [10 20]", got)
	}
	if next := e.NextEventAt(); next != 30 {
		t.Fatalf("NextEventAt = %v, want 30", next)
	}
	// Resuming with a wider window picks up where the first left off.
	e.RunWindow(Forever)
	if len(got) != 4 || got[3] != 40 {
		t.Fatalf("after full run dispatched %v, want all four", got)
	}
	if e.NextEventAt() != Forever {
		t.Fatalf("NextEventAt on empty queue = %v, want Forever", e.NextEventAt())
	}
}

// TestRunWindowSameInstantScheduling checks that an event scheduling more
// work at the current instant keeps it inside the same window (when < until
// still holds for it).
func TestRunWindowSameInstantScheduling(t *testing.T) {
	e := NewEngine()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < 3 {
			e.At(e.Now(), chain)
		}
	}
	e.At(5, chain)
	e.RunWindow(6)
	if n != 3 {
		t.Fatalf("chained same-instant events ran %d times, want 3", n)
	}
}

// TestSourceTaggedMergeOrder pins the cross-engine merge contract: at an
// equal timestamp, events dispatch by (sourceID, perSourceSeq) regardless
// of the order they were inserted into the receiving engine. This is the
// property that makes sharded execution independent of message arrival
// timing.
func TestSourceTaggedMergeOrder(t *testing.T) {
	e := NewEngine()
	e.SetSourceID(2)
	var got []string
	rec := func(arg any) { got = append(got, arg.(string)) }

	// Local events first (source 2, seqs 1 and 2)...
	e.AtCall(100, rec, "local-1")
	e.AtCall(100, rec, "local-2")
	// ...then inject messages from sources 1 and 3 at the same instant,
	// deliberately inserting the higher source first.
	e.AtCallTagged(100, 3<<SourceShift|1, rec, "src3-1")
	e.AtCallTagged(100, 1<<SourceShift|2, rec, "src1-2")
	e.AtCallTagged(100, 1<<SourceShift|1, rec, "src1-1")

	e.Run()
	want := []string{"src1-1", "src1-2", "local-1", "local-2", "src3-1"}
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestSetSourceIDGuards pins the misuse panics: out-of-range IDs and
// retagging an engine that already scheduled events.
func TestSetSourceIDGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative id", func() { NewEngine().SetSourceID(-1) })
	mustPanic("huge id", func() { NewEngine().SetSourceID(1 << 16) })
	mustPanic("late tag", func() {
		e := NewEngine()
		e.At(1, func() {})
		e.SetSourceID(1)
	})
	mustPanic("tagged in past", func() {
		e := NewEngine()
		e.At(10, func() {})
		e.Run()
		e.AtCallTagged(5, 1<<SourceShift|1, func(any) {}, nil)
	})
}

// TestCreditsInFlightAt pins the eager point-in-time queue-depth fix: the
// lazy ring overcounts completed operations until a later Acquire scans
// them out; InFlightAt must not.
func TestCreditsInFlightAt(t *testing.T) {
	c := NewCredits("test", 4)
	c.Acquire(0)
	c.Complete(10)
	c.Acquire(0)
	c.Complete(20)

	// Nothing has retired the ring, so the legacy count still says 2...
	if got := c.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2 (lazy ring)", got)
	}
	// ...but at now=50 both operations have long completed.
	if got := c.InFlightAt(50); got != 0 {
		t.Fatalf("InFlightAt(50) = %d, want 0", got)
	}
	if got := c.InFlightAt(15); got != 1 {
		t.Fatalf("InFlightAt(15) = %d, want 1", got)
	}
	if got := c.InFlightAt(5); got != 2 {
		t.Fatalf("InFlightAt(5) = %d, want 2", got)
	}
	// InFlightAt must not disturb grant order: an Acquire at 15 still sees
	// the op completing at 20 in flight.
	if start := c.Acquire(15); start != 15 {
		t.Fatalf("Acquire(15) start = %v, want 15", start)
	}
	c.Complete(30)
}

// TestCreditsInFlightAtExhausted covers the early-retire path: an
// exhausted Acquire consumes the earliest completion from the ring, but
// that operation is still in flight at instants before its completion
// and must stay observable.
func TestCreditsInFlightAtExhausted(t *testing.T) {
	c := NewCredits("test", 1)
	if start := c.Acquire(0); start != 0 {
		t.Fatalf("first Acquire start = %v, want 0", start)
	}
	c.Complete(100)
	// Pool exhausted: the grant waits for (and consumes) the completion
	// at 100.
	if start := c.Acquire(0); start != 100 {
		t.Fatalf("exhausted Acquire start = %v, want 100", start)
	}
	c.Complete(200)

	// At now=50 both operations are genuinely in flight: the first
	// completes at 100 (consumed from the ring, held in earlyRetired),
	// the second at 200.
	if got := c.InFlightAt(50); got != 2 {
		t.Fatalf("InFlightAt(50) = %d, want 2", got)
	}
	if got := c.InFlightAt(150); got != 1 {
		t.Fatalf("InFlightAt(150) = %d, want 1", got)
	}
	if got := c.InFlightAt(250); got != 0 {
		t.Fatalf("InFlightAt(250) = %d, want 0", got)
	}
}

// TestCreditsPipelineEarlyRetire checks the same observability through
// the batched Pipeline path.
func TestCreditsPipelineEarlyRetire(t *testing.T) {
	c := NewCredits("test", 2)
	// 4 ops requested at t=0, each holding a credit for 100: ops 1 and 2
	// run [0,100], ops 3 and 4 wait for them and run [100,200].
	last := c.Pipeline(0, 0, 100, 4)
	if last != 200 {
		t.Fatalf("Pipeline lastDone = %v, want 200", last)
	}
	if got := c.InFlightAt(50); got != 4 {
		t.Fatalf("InFlightAt(50) = %d, want 4", got)
	}
	if got := c.InFlightAt(150); got != 2 {
		t.Fatalf("InFlightAt(150) = %d, want 2", got)
	}
	if got := c.InFlightAt(350); got != 0 {
		t.Fatalf("InFlightAt(350) = %d, want 0", got)
	}
}
