package sim

import "fmt"

// Resource models a serialized, work-conserving server: a link, a DRAM
// channel, an accelerator engine, a CPU store port. A caller claims the
// resource for an occupancy (service time); claims are granted in arrival
// order and the resource serves exactly one claim at a time.
//
// Resource is the building block that makes bandwidth emerge from the model:
// when requests arrive faster than the resource can serve them, grant times
// queue up and measured throughput converges to 1/occupancy.
type Resource struct {
	name     string
	nextFree Time
	// busy accumulates total occupied time, for utilization reporting.
	busy Time
	// claims counts grants, for diagnostics.
	claims uint64
}

// NewResource returns a named serialized resource that is free at time zero.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Claim reserves the resource for occupancy starting no earlier than now.
// It returns the time at which service begins (>= now) — the completion time
// is start+occupancy. Claim never blocks; the caller incorporates the wait
// into its own event schedule.
func (r *Resource) Claim(now, occupancy Time) (start Time) {
	if occupancy < 0 {
		panic(fmt.Sprintf("sim: negative occupancy %v on %s", occupancy, r.name))
	}
	start = now
	if r.nextFree > start {
		start = r.nextFree
	}
	r.nextFree = start + occupancy
	r.busy += occupancy
	r.claims++
	return start
}

// FreeAt reports when the resource becomes idle given no further claims.
func (r *Resource) FreeAt() Time { return r.nextFree }

// Busy reports the total time the resource has been occupied.
func (r *Resource) Busy() Time { return r.busy }

// Claims reports how many grants the resource has issued.
func (r *Resource) Claims() uint64 { return r.claims }

// Reset returns the resource to the free state with zeroed accounting.
func (r *Resource) Reset() { r.nextFree, r.busy, r.claims = 0, 0, 0 }

// Credits models a bounded pool of outstanding-request credits (MSHRs, link
// credits, DMA ring slots, LSQ entries). A caller acquires a credit at a
// time and releases it when the tracked operation completes; when the pool is
// empty the acquire time is pushed to the earliest release.
//
// Internally it keeps the multiset of outstanding completion times; acquiring
// beyond capacity waits for the earliest completion. This is exact for the
// in-order issue patterns used throughout the model.
type Credits struct {
	name     string
	capacity int
	// outstanding holds completion times of in-flight operations, maintained
	// as a min-heap-by-insertion; because issue is monotone in time we keep a
	// simple ring sorted by completion.
	outstanding timeHeap
}

// NewCredits returns a pool with the given capacity (> 0).
func NewCredits(name string, capacity int) *Credits {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: credits %q capacity %d", name, capacity))
	}
	return &Credits{name: name, capacity: capacity}
}

// Name returns the diagnostic name given at construction.
func (c *Credits) Name() string { return c.name }

// Capacity returns the pool size.
func (c *Credits) Capacity() int { return c.capacity }

// InFlight reports the number of credits currently held (not yet completed
// relative to the most recent Acquire's start time).
func (c *Credits) InFlight() int { return len(c.outstanding) }

// Acquire obtains a credit for an operation that starts at now and completes
// at completesAt. If the pool is exhausted, the start is delayed to the
// earliest outstanding completion, and the returned start reflects that. The
// caller must compute its own completion relative to the returned start and
// then call Complete with the final completion time.
func (c *Credits) Acquire(now Time) (start Time) {
	start = now
	// Drop completions that have already retired by `now`.
	for len(c.outstanding) > 0 && c.outstanding.peek() <= start {
		c.outstanding.popTime()
	}
	if len(c.outstanding) >= c.capacity {
		// Pool exhausted. Every remaining completion is strictly after
		// `start` (the loop above retired the rest), so the earliest one is
		// the exact moment a credit frees: service is delayed to it, and
		// popping it hands that credit to this operation. No earlier-than-
		// start completion can be popped here — retirement already consumed
		// those — so the pop frees exactly one still-in-flight credit.
		start = c.outstanding.popTime()
	}
	return start
}

// Complete records that the operation admitted by a prior Acquire finishes at
// t, holding its credit until then.
func (c *Credits) Complete(t Time) { c.outstanding.pushTime(t) }

// Reset empties the pool accounting.
func (c *Credits) Reset() { c.outstanding = c.outstanding[:0] }

// timeHeap is a min-heap of Times without interface boxing.
type timeHeap []Time

func (h timeHeap) peek() Time { return h[0] }

func (h *timeHeap) pushTime(t Time) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *timeHeap) popTime() Time {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l] < (*h)[smallest] {
			smallest = l
		}
		if r < n && (*h)[r] < (*h)[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
