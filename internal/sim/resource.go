package sim

import "fmt"

// Resource models a serialized, work-conserving server: a link, a DRAM
// channel, an accelerator engine, a CPU store port. A caller claims the
// resource for an occupancy (service time); claims are granted in arrival
// order and the resource serves exactly one claim at a time.
//
// Resource is the building block that makes bandwidth emerge from the model:
// when requests arrive faster than the resource can serve them, grant times
// queue up and measured throughput converges to 1/occupancy.
type Resource struct {
	name     string
	nextFree Time
	// busy accumulates total occupied time, for utilization reporting.
	busy Time
	// claims counts grants, for diagnostics.
	claims uint64
}

// NewResource returns a named serialized resource that is free at time zero.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Claim reserves the resource for occupancy starting no earlier than now.
// It returns the time at which service begins (>= now) — the completion time
// is start+occupancy. Claim never blocks; the caller incorporates the wait
// into its own event schedule.
func (r *Resource) Claim(now, occupancy Time) (start Time) {
	if occupancy < 0 {
		panic(fmt.Sprintf("sim: negative occupancy %v on %s", occupancy, r.name))
	}
	start = now
	if r.nextFree > start {
		start = r.nextFree
	}
	r.nextFree = start + occupancy
	r.busy += occupancy
	r.claims++
	return start
}

// ClaimN reserves n back-to-back occupancy slots starting no earlier than
// now and returns the start of the first slot. It is exactly equivalent to n
// consecutive Claim(now, occupancy) calls — after the first grant the
// resource's free time is at or past now, so the remaining grants pack
// back-to-back — but costs one call; block transfers that issue a run of
// identical line requests use it to batch the issue-serialization claim.
func (r *Resource) ClaimN(now, occupancy Time, n int) (start Time) {
	if occupancy < 0 {
		panic(fmt.Sprintf("sim: negative occupancy %v on %s", occupancy, r.name))
	}
	if n <= 0 {
		panic(fmt.Sprintf("sim: ClaimN of %d slots on %s", n, r.name))
	}
	start = now
	if r.nextFree > start {
		start = r.nextFree
	}
	total := occupancy * Time(n)
	r.nextFree = start + total
	r.busy += total
	r.claims += uint64(n)
	return start
}

// FreeAt reports when the resource becomes idle given no further claims.
func (r *Resource) FreeAt() Time { return r.nextFree }

// Busy reports the total time the resource has been occupied.
func (r *Resource) Busy() Time { return r.busy }

// Claims reports how many grants the resource has issued.
func (r *Resource) Claims() uint64 { return r.claims }

// Reset returns the resource to the free state with zeroed accounting.
func (r *Resource) Reset() { r.nextFree, r.busy, r.claims = 0, 0, 0 }

// Credits models a bounded pool of outstanding-request credits (MSHRs, link
// credits, DMA ring slots, LSQ entries). A caller acquires a credit at a
// time and releases it when the tracked operation completes; when the pool is
// empty the acquire time is pushed to the earliest release.
//
// Internally it keeps the multiset of outstanding completion times; acquiring
// beyond capacity waits for the earliest completion. This is exact for the
// in-order issue patterns used throughout the model.
type Credits struct {
	name     string
	capacity int
	// outstanding[head:] holds the completion times of in-flight operations
	// as a sorted ring: issue is monotone in time for every user in the
	// model, so Complete almost always appends and the retire scan in
	// Acquire just advances head — O(1) amortized where the previous
	// min-heap paid a sift per retire. The rare out-of-order completion
	// binary-inserts to keep the ring sorted, preserving exact
	// extract-earliest semantics for any call pattern.
	outstanding []Time
	head        int
	// earlyRetired holds completion times that an exhausted Acquire (or
	// Pipeline step) consumed from the ring before they had actually
	// expired: the grant `start = q[head]; head++` hands the credit to
	// the new operation at the instant the old one completes, but the
	// old operation is still in flight at any earlier instant.
	// InFlightAt needs those times to answer "how deep is the queue at
	// now" exactly; the plain InFlight (ring length) cannot see them.
	// Kept sorted; pruned against Acquire's start like the ring itself.
	earlyRetired []Time
}

// NewCredits returns a pool with the given capacity (> 0).
func NewCredits(name string, capacity int) *Credits {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: credits %q capacity %d", name, capacity))
	}
	// The ring oscillates between capacity and ~2x capacity entries between
	// reclaims; preallocating that span means steady-state Complete never
	// grows the backing array.
	return &Credits{name: name, capacity: capacity, outstanding: make([]Time, 0, 2*capacity+1)}
}

// Name returns the diagnostic name given at construction.
func (c *Credits) Name() string { return c.name }

// Capacity returns the pool size.
func (c *Credits) Capacity() int { return c.capacity }

// InFlight reports the number of credits currently held (not yet completed
// relative to the most recent Acquire's start time). Because retirement is
// lazy — completions leave the ring only when a later Acquire scans past
// them — this can overcount the operations genuinely outstanding at a
// given instant; use InFlightAt for an exact point-in-time depth.
func (c *Credits) InFlight() int { return len(c.outstanding) - c.head }

// InFlightAt reports exactly how many operations are still in flight at
// `now`: completions strictly after now, including those an exhausted
// Acquire already consumed from the ring (see earlyRetired). It never
// mutates pool state, so observers may probe at any time — including
// times earlier than the latest Acquire — without disturbing grant
// order.
func (c *Credits) InFlightAt(now Time) int {
	// Both lists are sorted: count the suffix strictly after now in each.
	q := c.outstanding[c.head:]
	lo, hi := 0, len(q)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q[mid] <= now {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	n := len(q) - lo
	for i := len(c.earlyRetired) - 1; i >= 0 && c.earlyRetired[i] > now; i-- {
		n++
	}
	return n
}

// Acquire obtains a credit for an operation that starts at now and completes
// at completesAt. If the pool is exhausted, the start is delayed to the
// earliest outstanding completion, and the returned start reflects that. The
// caller must compute its own completion relative to the returned start and
// then call Complete with the final completion time.
func (c *Credits) Acquire(now Time) (start Time) {
	start = now
	q := c.outstanding
	h := c.head
	// Retire completions that have already finished by `now`: the ring is
	// sorted, so retiring is advancing head past the prefix <= start.
	for h < len(q) && q[h] <= start {
		h++
	}
	if len(q)-h >= c.capacity {
		// Pool exhausted. Every remaining completion is strictly after
		// `start` (the scan above retired the rest), so the earliest one is
		// the exact moment a credit frees: service is delayed to it, and
		// consuming it hands that credit to this operation. The consumed
		// operation remains observable in flight until then.
		c.recordEarlyRetire(q[h])
		start = q[h]
		h++
	}
	c.head = h
	// Drop early-retired entries at or before the requested time — the
	// same criterion the ring retire scan uses — keeping the list bounded
	// by the live window.
	c.pruneEarlyRetired(now)
	// Reclaim the retired prefix once it dominates the ring: the live window
	// is at most `capacity` entries, so this keeps the backing array bounded
	// by ~2x capacity and the copy cost O(1) amortized per operation.
	if h >= c.capacity && 2*h >= len(q) {
		n := copy(q, q[h:])
		c.outstanding = q[:n]
		c.head = 0
	}
	return start
}

// recordEarlyRetire notes that an exhausted grant consumed completion
// time t from the ring before it expired (see earlyRetired). Consumed
// minima are non-decreasing under monotone issue, so this is almost
// always an append; the rare out-of-order case binary-inserts.
func (c *Credits) recordEarlyRetire(t Time) {
	q := c.earlyRetired
	n := len(q)
	if n == 0 || t >= q[n-1] {
		c.earlyRetired = append(q, t)
		return
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q = append(q, 0)
	copy(q[lo+1:], q[lo:])
	q[lo] = t
	c.earlyRetired = q
}

// pruneEarlyRetired drops early-retired completions at or before now.
func (c *Credits) pruneEarlyRetired(now Time) {
	q := c.earlyRetired
	i := 0
	for i < len(q) && q[i] <= now {
		i++
	}
	if i > 0 {
		n := copy(q, q[i:])
		c.earlyRetired = q[:n]
	}
}

// Complete records that the operation admitted by a prior Acquire finishes at
// t, holding its credit until then.
func (c *Credits) Complete(t Time) {
	if c.head == len(c.outstanding) {
		// Ring empty: restart it at the front, recycling the backing array.
		c.outstanding = c.outstanding[:0]
		c.head = 0
	}
	q := c.outstanding
	n := len(q)
	if n == 0 || t >= q[n-1] {
		c.outstanding = append(q, t)
		return
	}
	// Out-of-order completion (no current caller issues one, but the API
	// allows it): binary-insert within the live window to keep the ring
	// sorted.
	lo, hi := c.head, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q = append(q, 0)
	copy(q[lo+1:], q[lo:])
	q[lo] = t
	c.outstanding = q
}

// Pipeline admits n operations whose request times step from t0 by dt
// (dt >= 0), each holding a credit for service time svc: operation i starts
// at Acquire(t0+i*dt) and completes svc later. It is exactly equivalent to n
// sequential Acquire/Complete pairs and returns the final completion time,
// but runs the ring recurrence in one call with the state in locals — the
// primitive block transfers use to batch a run of identical line requests.
func (c *Credits) Pipeline(t0, dt, svc Time, n int) (lastDone Time) {
	if dt < 0 || n <= 0 {
		panic(fmt.Sprintf("sim: credits %q pipeline dt %v, n %d", c.name, dt, n))
	}
	q, h := c.outstanding, c.head
	t := t0
	for i := 0; i < n; i++ {
		for h < len(q) && q[h] <= t {
			h++
		}
		start := t
		if len(q)-h >= c.capacity {
			c.pruneEarlyRetired(t)
			c.recordEarlyRetire(q[h])
			start = q[h]
			h++
		}
		done := start + svc
		if h == len(q) {
			q, h = q[:0], 0
		} else if last := len(q) - 1; done < q[last] {
			// Completions already outstanding finish later than this one
			// (possible only when mixed with callers using a larger svc):
			// fall back to the general insert to keep the ring sorted.
			c.outstanding, c.head = q, h
			c.Complete(done)
			q, h = c.outstanding, c.head
			t += dt
			lastDone = done
			continue
		}
		q = append(q, done)
		// Same bounded-ring reclaim as Acquire.
		if h >= c.capacity && 2*h >= len(q) {
			m := copy(q, q[h:])
			q, h = q[:m], 0
		}
		t += dt
		lastDone = done
	}
	c.outstanding, c.head = q, h
	return lastDone
}

// Reset empties the pool accounting.
func (c *Credits) Reset() {
	c.outstanding = c.outstanding[:0]
	c.head = 0
	c.earlyRetired = c.earlyRetired[:0]
}
