package sim

import "testing"

// These tests pin the engine's zero-allocation contract: once the event
// heap and the pair-event pool have grown to their working size, a
// steady-state schedule+dispatch cycle must not allocate, for every
// scheduling form the hot paths use. A regression here silently taxes every
// experiment, the fuzzing harness and cxlsimd, so it fails the build rather
// than a benchmark eyeball.

// measureAllocs warms the engine with one round first so one-time capacity
// growth (heap slice, pool records) is excluded from the steady state.
func measureAllocs(t *testing.T, name string, round func()) {
	t.Helper()
	round() // warm-up: grow heap capacity and pools
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Errorf("%s: %.1f allocs per steady-state round, want 0", name, avg)
	}
}

func TestAtCallZeroAllocs(t *testing.T) {
	e := NewEngine()
	type state struct{ n int }
	s := &state{}
	fn := func(arg any) { arg.(*state).n++ }
	measureAllocs(t, "AtCall", func() {
		e.AtCall(e.Now(), fn, s)
		e.AtCall(e.Now()+Nanosecond, fn, s)
		e.Run()
	})
}

func TestAtPreallocatedClosureZeroAllocs(t *testing.T) {
	e := NewEngine()
	n := 0
	fn := func() { n++ }
	measureAllocs(t, "At", func() {
		e.At(e.Now(), fn)
		e.After(Nanosecond, fn)
		e.Run()
	})
}

func TestAtCall2ZeroAllocs(t *testing.T) {
	e := NewEngine()
	type a struct{ n int }
	type b struct{ n int }
	x, y := &a{}, &b{}
	fn := func(p, q any) { p.(*a).n++; q.(*b).n++ }
	measureAllocs(t, "AtCall2", func() {
		e.AtCall2(e.Now(), fn, x, y)
		e.AtCall2(e.Now()+Nanosecond, fn, x, y)
		e.Run()
	})
}

func TestProcScheduleZeroAllocs(t *testing.T) {
	e := NewEngine()
	p := NewProc(e, "p", nil)
	n := 0
	step := func(p *Proc) { n++ }
	measureAllocs(t, "Proc.Schedule", func() {
		p.Schedule(step)
		p.Sleep(Nanosecond)
		p.Schedule(step)
		e.Run()
	})
}

// TestCreditsChurnZeroAllocs pins the Acquire/Complete cycle of a saturated
// pool: the timeHeap must recycle its backing array.
func TestCreditsChurnZeroAllocs(t *testing.T) {
	c := NewCredits("alloc", 4)
	now := Time(0)
	measureAllocs(t, "Credits churn", func() {
		for i := 0; i < 16; i++ {
			now += 10
			s := c.Acquire(now)
			c.Complete(s + 100)
		}
	})
}
