// Package sim provides the discrete-event simulation engine that underpins
// every timed component in cxl2sim: a picosecond-resolution clock, an event
// heap, cooperative processes, serialized resources (links, ports, engines)
// and credit pools for modeling bounded queues.
//
// The engine is deliberately single-threaded: determinism matters more than
// host parallelism for a reproduction study, and transaction-level models are
// cheap enough that a single goroutine simulates billions of picoseconds per
// wall-clock second.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated timestamp or duration in picoseconds. Picoseconds give
// integer exactness for sub-nanosecond link serialization (a 64B flit on a
// 64 GB/s link occupies exactly 1000 ps) while still covering ~106 days of
// simulated time in an int64.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a time later than any event the engine will ever reach.
const Forever Time = math.MaxInt64

// Nanoseconds reports t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a float64 count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, for diagnostics.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 10*Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < 10*Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < 10*Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	default:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	}
}

// FromNanos converts a float64 nanosecond quantity to Time, rounding to the
// nearest picosecond.
func FromNanos(ns float64) Time { return Time(math.Round(ns * 1000)) }

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same timestamp run first (FIFO within a timestamp), which
// keeps the simulation deterministic. Every event is stored in the
// argument-carrying form: the nullary At/After path wraps its func() as the
// argument of a shared trampoline, so one representation serves both APIs
// with no boxing (func values and pointers are interface-payload-sized).
type event struct {
	when Time
	seq  uint64
	call func(arg any)
	arg  any
}

// eventHeap is a concrete 4-ary min-heap of events ordered by (when, seq),
// stored flat in one slice — the non-boxing pattern timeHeap uses, widened
// to 4 children per node. Compared with container/heap this removes the
// per-push interface allocation and the Less/Swap indirect calls; compared
// with a binary heap it halves tree depth, trading slightly more sibling
// comparisons (cheap, same cache line) for fewer swap levels.
//
// Because (when, seq) is unique per event — seq strictly increases — the
// dispatch sequence is the total order by (when, seq) no matter how the
// heap arranges ties internally, so replacing the binary boxed heap cannot
// reorder dispatch: FIFO within a timestamp is preserved exactly.
type eventHeap []event

// before reports whether element i dispatches before element j.
func (h eventHeap) before(i, j int) bool {
	return h[i].when < h[j].when || (h[i].when == h[j].when && h[i].seq < h[j].seq)
}

func (h eventHeap) peek() event { return h[0] }

func (h *eventHeap) pushEvent(e event) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !a.before(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *eventHeap) popEvent() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{} // release callback/arg references; the slot stays for reuse
	a = a[:n]
	*h = a
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for c++; c < end; c++ {
			if a.before(c, min) {
				min = c
			}
		}
		if !a.before(min, i) {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}

// SourceShift is the bit position of the source-ID field in an event's
// 64-bit sequence key. The low 48 bits hold the per-source monotone
// counter (2^48 events ≈ 2.8e14, far beyond any run), the high 16 bits
// the source ID, so comparing packed keys numerically is exactly
// comparing (sourceID, perSourceSeq) lexicographically.
const SourceShift = 48

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// srcTag is OR-ed into every locally scheduled event's sequence key
	// (see SetSourceID). Zero for ordinary single-engine use, in which
	// case keys are the plain monotone counter and nothing changes.
	srcTag uint64
	// Executed counts events dispatched since creation, for diagnostics.
	executed uint64
	// pairFree recycles two-argument event records (see AtCall2). The free
	// list is per-engine, not package-global, because the parallel runner
	// drives many engines from different goroutines at once.
	pairFree []*pairEvent
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// SetSourceID brands the engine as event source id for deterministic
// cross-engine merges: every locally scheduled event's tie-break key
// becomes id<<SourceShift | localSeq, and events injected from another
// engine via AtCallTagged carry that engine's id in their key. Two
// events at the same timestamp therefore dispatch in (sourceID,
// perSourceSeq) order no matter when the injected one arrived — the
// property that makes sharded execution byte-identical to inline
// execution. Call it once, before any event is scheduled.
func (e *Engine) SetSourceID(id int) {
	if id < 0 || id >= 1<<16 {
		panic(fmt.Sprintf("sim: source id %d out of range", id))
	}
	if len(e.events) > 0 || e.seq != 0 {
		panic("sim: SetSourceID after events were scheduled")
	}
	e.srcTag = uint64(id) << SourceShift
}

// Executed reports how many events have been dispatched.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled but not yet dispatched.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programmer error and panics, because silently reordering time would corrupt
// every latency measurement built on the engine.
//
// At itself never allocates, but a fn that captures variables is a fresh
// closure allocated at the call site. Hot loops that schedule per simulated
// operation should pass a preallocated func value, or use AtCall/AtCall2 to
// carry their state as an explicit argument.
func (e *Engine) At(t Time, fn func()) {
	e.AtCall(t, callNullary, fn)
}

// callNullary is the trampoline that lets At share the argument-carrying
// event representation: the scheduled func() rides in the arg slot.
func callNullary(arg any) { arg.(func())() }

// AtCall schedules fn(arg) at absolute time t. It is the zero-allocation
// scheduling primitive: fn should be a package-level function (or any
// preallocated func value) and arg the state it needs — typically the
// pointer a closure would have captured. Neither boxing fn nor a
// pointer-shaped arg allocates.
//
// The engine drops its reference to arg when the event dispatches; it never
// retains arg afterwards. Callers recycling args through a free list (see
// AtCall2's pool) must therefore return them only from inside the callback,
// never while the event is still pending.
func (e *Engine) AtCall(t Time, fn func(arg any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.pushEvent(event{when: t, seq: e.srcTag | e.seq, call: fn, arg: arg})
}

// AtCallTagged schedules fn(arg) at absolute time t under an explicit
// sequence key instead of the engine's own counter. It is the delivery
// half of a cross-engine message: the sender packs key as
// senderID<<SourceShift | senderSeq when it emits the message, and the
// receiving engine inserts it here, so the dispatch position among
// same-timestamp events is fixed by the sender — not by when the
// message happened to arrive. Keys from distinct source IDs never
// collide with local keys (the high bits differ), preserving the
// heap's total order.
func (e *Engine) AtCallTagged(t Time, key uint64, fn func(arg any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling tagged event at %v before now %v", t, e.now))
	}
	e.events.pushEvent(event{when: t, seq: key, call: fn, arg: arg})
}

// AfterCall is AtCall relative to the current time, with After's saturation
// semantics for delays that would overflow the clock.
func (e *Engine) AfterCall(d Time, fn func(arg any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	t := e.now + d
	if t < e.now { // overflow: saturate rather than wrap
		t = Forever
	}
	e.AtCall(t, fn, arg)
}

// pairEvent carries a callback plus two payload words through AtCall's
// single argument slot. Records recycle through the engine's free list, so
// steady-state two-argument scheduling allocates nothing.
type pairEvent struct {
	eng  *Engine
	fn   func(a, b any)
	a, b any
}

// AtCall2 schedules fn(a, b) at absolute time t, drawing the carrier record
// from the engine's event pool. Ownership rule: the record is reclaimed (and
// its references cleared) when the event dispatches, before fn runs — the
// callback receives a and b as plain values and must not assume any backing
// record survives it.
func (e *Engine) AtCall2(t Time, fn func(a, b any), a, b any) {
	var pe *pairEvent
	if n := len(e.pairFree); n > 0 {
		pe = e.pairFree[n-1]
		e.pairFree = e.pairFree[:n-1]
	} else {
		pe = &pairEvent{eng: e}
	}
	pe.fn, pe.a, pe.b = fn, a, b
	e.AtCall(t, callPair, pe)
}

// callPair unpacks a pooled two-argument event, returns the record to the
// free list, then invokes the callback. Reclaiming first is safe — the
// payload lives in locals — and lets fn schedule again immediately, reusing
// the very record it arrived in.
func callPair(arg any) {
	pe := arg.(*pairEvent)
	eng, fn, a, b := pe.eng, pe.fn, pe.a, pe.b
	pe.fn, pe.a, pe.b = nil, nil, nil
	eng.pairFree = append(eng.pairFree, pe)
	fn(a, b)
}

// After schedules fn to run d after the current time. A delay so large
// that now+d would overflow the int64 clock saturates at Forever instead of
// wrapping negative (which would panic blaming a scheduling-in-the-past
// bug that does not exist); an event at Forever never fires under RunUntil
// with an earlier deadline, which is what "effectively never" means here.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	t := e.now + d
	if t < e.now { // overflow: saturate rather than wrap
		t = Forever
	}
	e.At(t, fn)
}

// Stop makes the currently executing Run/RunUntil/Advance return after the
// event that called it completes. Stop is only meaningful from inside an
// event callback: each RunUntil begins by clearing the flag, so a Stop
// issued while no dispatch loop is running is deliberately discarded rather
// than silently cancelling a future Run — pending events are not dropped,
// and the next Run dispatches them all. (This is also what lets Run be
// called again to resume after a Stop.)
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until none remain or Stop is called. It returns the
// final simulated time.
func (e *Engine) Run() Time {
	return e.RunUntil(Forever)
}

// RunUntil dispatches events with timestamps <= deadline, advancing the clock
// to each event's time. If the event queue drains first, the clock is left at
// the last dispatched event (not advanced to the deadline). It returns the
// final simulated time. Any Stop from a previous (or not-yet-started)
// dispatch loop is cleared on entry; see Stop.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		when := e.events.peek().when
		if when > deadline {
			break
		}
		// Batch dispatch: advance the clock once, then drain the entire run
		// of events sharing this timestamp without re-checking the deadline
		// (when <= deadline covers every one of them, including events a
		// callback schedules at the current instant). Pops follow (when, seq)
		// order exactly as before, so dispatch order — and therefore every
		// simulation outcome — is unchanged; Stop is still honored between
		// events.
		e.now = when
		for {
			ev := e.events.popEvent()
			e.executed++
			ev.call(ev.arg)
			if e.stopped || len(e.events) == 0 || e.events.peek().when != when {
				break
			}
		}
	}
	return e.now
}

// NextEventAt reports the timestamp of the earliest pending event, or
// Forever when the queue is empty. Conservative parallel execution
// uses it as the engine's published activation time: the engine cannot
// originate any new work before this instant.
func (e *Engine) NextEventAt() Time {
	if len(e.events) == 0 {
		return Forever
	}
	return e.events.peek().when
}

// RunWindow dispatches events with timestamps strictly before `until`,
// advancing the clock to each event's time, and returns the final
// simulated time. The strict bound is what makes it a safe conservative
// PDES window: a peer engine whose earliest future send arrives exactly
// at `until` cannot be overtaken, because the event at `until` has not
// run yet. Like RunUntil, the clock is left at the last dispatched
// event, never advanced to the window edge.
func (e *Engine) RunWindow(until Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		when := e.events.peek().when
		if when >= until {
			break
		}
		// Same batch dispatch as RunUntil: events a callback schedules at
		// the current instant still satisfy when < until.
		e.now = when
		for {
			ev := e.events.popEvent()
			e.executed++
			ev.call(ev.arg)
			if e.stopped || len(e.events) == 0 || e.events.peek().when != when {
				break
			}
		}
	}
	return e.now
}

// Advance moves the clock forward to t, dispatching any events on the way,
// and leaves the clock exactly at t even if the queue drains early. It panics
// if t is in the past.
func (e *Engine) Advance(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: Advance to %v before now %v", t, e.now))
	}
	e.RunUntil(t)
	if e.now < t {
		e.now = t
	}
}
