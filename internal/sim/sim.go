// Package sim provides the discrete-event simulation engine that underpins
// every timed component in cxl2sim: a picosecond-resolution clock, an event
// heap, cooperative processes, serialized resources (links, ports, engines)
// and credit pools for modeling bounded queues.
//
// The engine is deliberately single-threaded: determinism matters more than
// host parallelism for a reproduction study, and transaction-level models are
// cheap enough that a single goroutine simulates billions of picoseconds per
// wall-clock second.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulated timestamp or duration in picoseconds. Picoseconds give
// integer exactness for sub-nanosecond link serialization (a 64B flit on a
// 64 GB/s link occupies exactly 1000 ps) while still covering ~106 days of
// simulated time in an int64.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a time later than any event the engine will ever reach.
const Forever Time = math.MaxInt64

// Nanoseconds reports t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a float64 count of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a float64 count of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, for diagnostics.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 10*Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < 10*Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < 10*Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	default:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	}
}

// FromNanos converts a float64 nanosecond quantity to Time, rounding to the
// nearest picosecond.
func FromNanos(ns float64) Time { return Time(math.Round(ns * 1000)) }

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same timestamp run first (FIFO within a timestamp), which
// keeps the simulation deterministic.
type event struct {
	when Time
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// Executed counts events dispatched since creation, for diagnostics.
	executed uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have been dispatched.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled but not yet dispatched.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programmer error and panics, because silently reordering time would corrupt
// every latency measurement built on the engine.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events.pushEvent(event{when: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. A delay so large
// that now+d would overflow the int64 clock saturates at Forever instead of
// wrapping negative (which would panic blaming a scheduling-in-the-past
// bug that does not exist); an event at Forever never fires under RunUntil
// with an earlier deadline, which is what "effectively never" means here.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	t := e.now + d
	if t < e.now { // overflow: saturate rather than wrap
		t = Forever
	}
	e.At(t, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until none remain or Stop is called. It returns the
// final simulated time.
func (e *Engine) Run() Time {
	return e.RunUntil(Forever)
}

// RunUntil dispatches events with timestamps <= deadline, advancing the clock
// to each event's time. If the event queue drains first, the clock is left at
// the last dispatched event (not advanced to the deadline). It returns the
// final simulated time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events.peek().when > deadline {
			break
		}
		ev := e.events.popEvent()
		e.now = ev.when
		e.executed++
		ev.fn()
	}
	return e.now
}

// Advance moves the clock forward to t, dispatching any events on the way,
// and leaves the clock exactly at t even if the queue drains early. It panics
// if t is in the past.
func (e *Engine) Advance(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: Advance to %v before now %v", t, e.now))
	}
	e.RunUntil(t)
	if e.now < t {
		e.now = t
	}
}
