package sim

import "testing"

// The scheduling benchmarks model the two regimes every experiment lives
// in: BenchmarkSchedule is the pure push/pop cost of a heap that stays
// small, and BenchmarkRunDense is a dense timeline of self-rescheduling
// actors — the shape of the §VII simulations (kswapd + ksmd + load
// generator + antagonist all rescheduling themselves every few
// microseconds). BenchmarkCreditsChurn is the Acquire/Complete cycle that
// every modeled memory operation performs.

// BenchmarkSchedule measures one schedule+dispatch round trip through the
// event heap with a trivial, preallocated callback.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		if e.Pending() >= 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkRunDense measures steady-state dispatch throughput (ns per
// dispatched event) with 64 actors rescheduling themselves at staggered
// 1ns periods, so the heap stays at a realistic working size and every
// push races every pop.
func BenchmarkRunDense(b *testing.B) {
	e := NewEngine()
	const actors = 64
	remaining := b.N
	b.ReportAllocs()
	b.ResetTimer()
	for a := 0; a < actors; a++ {
		var step func()
		step = func() {
			if remaining <= 0 {
				return
			}
			remaining--
			e.After(Nanosecond, step)
		}
		e.After(Time(a), step)
	}
	e.Run()
}

// BenchmarkScheduleAtCall is BenchmarkSchedule through the
// argument-carrying API — the form hot callers use.
func BenchmarkScheduleAtCall(b *testing.B) {
	e := NewEngine()
	type state struct{ n int }
	s := &state{}
	fn := func(arg any) { arg.(*state).n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AfterCall(1, fn, s)
		if e.Pending() >= 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkProcChain measures a self-rescheduling process step — the
// kswapd/ksmd/antagonist loop shape — through the pooled two-argument
// path that Proc.Schedule uses.
func BenchmarkProcChain(b *testing.B) {
	e := NewEngine()
	p := NewProc(e, "chain", nil)
	remaining := b.N
	var step func(*Proc)
	step = func(p *Proc) {
		if remaining <= 0 {
			return
		}
		remaining--
		p.Sleep(Nanosecond)
		p.Schedule(step)
	}
	b.ReportAllocs()
	b.ResetTimer()
	p.Schedule(step)
	e.Run()
}

// BenchmarkCreditsChurn measures the credit-pool cycle of a saturated
// 16-entry pool: retire-by-now, acquire (often waiting on the earliest
// completion), and complete.
func BenchmarkCreditsChurn(b *testing.B) {
	c := NewCredits("bench", 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := c.Acquire(Time(i))
		c.Complete(s + 100)
	}
}
