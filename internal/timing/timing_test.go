package timing

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if msg := Default().Validate(); msg != "" {
		t.Fatalf("Default() invalid: %s", msg)
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	break_ := func(mut func(*Params)) string {
		p := Default()
		mut(p)
		return p.Validate()
	}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero core clock", func(p *Params) { p.Host.CoreGHz = 0 }},
		{"zero fabric clock", func(p *Params) { p.Device.FabricGHz = 0 }},
		{"zero load credits", func(p *Params) { p.Host.LoadCredits = 0 }},
		{"negative read credits", func(p *Params) { p.UPI.ReadCredits = -1 }},
		{"zero link bw", func(p *Params) { p.CXL.BytesPerSec = 0 }},
		{"zero write queue", func(p *Params) { p.DRAM.WriteQueueEntries = 0 }},
		{"zero compress rate", func(p *Params) { p.Device.CompressBytesPerSec = 0 }},
		{"zero channels", func(p *Params) { p.Host.MemChannels = 0 }},
	}
	for _, c := range cases {
		if msg := break_(c.mut); msg == "" {
			t.Errorf("%s: Validate did not catch it", c.name)
		}
	}
}

func TestClockPeriods(t *testing.T) {
	p := Default()
	if got := p.FabricCycle(); got != sim.FromNanos(2.5) {
		t.Fatalf("FabricCycle = %v, want 2.5ns", got)
	}
	cc := p.CoreCycle()
	if cc < sim.FromNanos(0.45) || cc > sim.FromNanos(0.46) {
		t.Fatalf("CoreCycle = %v, want ~0.4545ns", cc)
	}
}

func TestSerialize(t *testing.T) {
	// 64 B on a 64 GB/s link = exactly 1 ns.
	if got := Serialize(64, 64e9); got != sim.Nanosecond {
		t.Fatalf("Serialize(64B, 64GB/s) = %v", got)
	}
	if got := Serialize(0, 64e9); got != 0 {
		t.Fatalf("Serialize(0) = %v", got)
	}
	if got := Serialize(-5, 64e9); got != 0 {
		t.Fatalf("Serialize(negative) = %v", got)
	}
}

func TestPaperStructuralRelations(t *testing.T) {
	// Structural facts from the paper that must hold in any calibration.
	p := Default()
	// §V-A: CXL ×16 PCIe5 has ~40 % more bandwidth than UPI 18×20GT/s.
	ratio := p.CXL.BytesPerSec / p.UPI.BytesPerSec
	if ratio < 1.3 || ratio > 1.5 {
		t.Errorf("CXL/UPI bandwidth ratio = %.2f, want ~1.4", ratio)
	}
	// §V-B: host CPU is 5.5× faster than the FPGA fabric.
	fr := p.Host.CoreGHz / p.Device.FabricGHz
	if fr < 5 || fr > 6 {
		t.Errorf("core/fabric frequency ratio = %.2f, want 5.5", fr)
	}
	// §V-A: LSU max issue bandwidth is 25.6 GB/s (64 B per 2.5 ns).
	lsuBW := 64.0 / p.Device.LSUIssueGap.Seconds()
	if lsuBW < 25e9 || lsuBW > 26e9 {
		t.Errorf("LSU max bandwidth = %.1f GB/s, want 25.6", lsuBW/1e9)
	}
	// §VI-A: the device compression IP is 1.8–2.8× faster than the host CPU.
	devPage := Streaming(4096, p.Device.CompressBytesPerSec)
	speedup := float64(p.SW.HostCompress4K) / float64(devPage)
	if speedup < 1.8 || speedup > 2.8 {
		t.Errorf("compression IP speedup = %.2f, want 1.8–2.8", speedup)
	}
	// §II-A: a 64 B MMIO read RT is ~1 µs.
	if p.PCIe.MMIOReadRT < sim.FromNanos(800) || p.PCIe.MMIOReadRT > sim.FromNanos(1300) {
		t.Errorf("MMIO read RT = %v, want ~1us", p.PCIe.MMIOReadRT)
	}
	// Table II: device DDR4-2400 channel is 19.2 GB/s.
	if p.DRAM.DDR4ChannelBytesPerSec != 19.2e9 {
		t.Errorf("DDR4 channel = %v", p.DRAM.DDR4ChannelBytesPerSec)
	}
}

func TestDefaultReturnsFreshCopies(t *testing.T) {
	a := Default()
	b := Default()
	a.CXL.OneWay = 0
	if b.CXL.OneWay == 0 {
		t.Fatal("Default must return independent copies")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Default()
	p.CXL.OneWay = sim.FromNanos(99)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CXL.OneWay != sim.FromNanos(99) {
		t.Fatalf("OneWay = %v", got.CXL.OneWay)
	}
	if got.Host.CoreGHz != p.Host.CoreGHz {
		t.Fatal("round trip lost fields")
	}
}

func TestLoadPartialOverridesDefaults(t *testing.T) {
	in := strings.NewReader(`{"CXL": {"OneWay": 123000}}`)
	p, err := Load(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.CXL.OneWay != 123000 {
		t.Fatalf("override lost: %v", p.CXL.OneWay)
	}
	if p.Host.LoadCredits != Default().Host.LoadCredits {
		t.Fatal("defaults not preserved")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"Host": {"CoreGHz": 0}}`)); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := Load(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := t.TempDir() + "/params.json"
	if err := Default().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	p, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if msg := p.Validate(); msg != "" {
		t.Fatal(msg)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
