package timing

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Params is JSON-serializable (sim.Time fields marshal as picosecond
// integers), so calibration studies can sweep parameter sets without
// recompiling: dump the defaults, edit, reload.

// Save writes the parameters as indented JSON.
func (p *Params) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// SaveFile writes the parameters to a file.
func (p *Params) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Save(f)
}

// Load reads parameters from JSON, starting from the calibrated defaults
// so partial files override only the fields they mention. The result is
// validated.
func Load(r io.Reader) (*Params, error) {
	p := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("timing: %w", err)
	}
	if msg := p.Validate(); msg != "" {
		return nil, fmt.Errorf("%s", msg)
	}
	return p, nil
}

// LoadFile reads parameters from a JSON file.
func LoadFile(path string) (*Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
