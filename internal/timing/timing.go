// Package timing holds every latency and bandwidth constant of the cxl2sim
// model in a single documented Params struct.
//
// The paper reports relative results (CXL vs UPI-emulated vs PCIe, host- vs
// device-bias, Type-2 vs Type-3) measured on real hardware; this model's
// constants are calibrated so those relations — who wins, by what factor,
// where the crossovers fall — are reproduced. Absolute picosecond values are
// plausible for the hardware described in Table II of the paper but are not
// claims about the authors' testbed. internal/experiments contains the
// calibration tests that pin the ratios to the paper's numbers.
//
// Components never embed raw numbers; they take a *Params and compose path
// latencies from these fields, so every modeling assumption is visible and
// ablatable here.
package timing

import "repro/internal/sim"

// Params is the complete timing model. Construct with Default and adjust
// fields for ablation studies; call Validate before use.
type Params struct {
	Host   HostParams
	UPI    UPIParams
	CXL    CXLParams
	Device DeviceParams
	DRAM   DRAMParams
	PCIe   PCIeParams
	SW     SoftwareParams
}

// HostParams models the dual-socket Xeon host (Table II: 2× Xeon 6538Y+,
// 32 cores, 60 MB LLC, 8× DDR5-4800 per socket).
type HostParams struct {
	// CoreGHz is the fixed core frequency (the paper pins 2.2 GHz).
	CoreGHz float64
	// IssueGap is the minimum spacing between consecutive memory ops issued
	// by one core (address generation + LSQ slot recycle).
	IssueGap sim.Time
	// StoreIssueGap is the spacing between retired stores draining from the
	// store buffer to the uncore — it bounds posted-write bandwidth.
	StoreIssueGap sim.Time
	// LocalLookup is the L1+L2 miss detection latency before a request
	// leaves the core.
	LocalLookup sim.Time
	// L1Hit and L2Hit are on-hit service latencies.
	L1Hit, L2Hit sim.Time
	// LLCHit is the on-hit LLC service latency seen by a local core.
	LLCHit sim.Time
	// LLCHitRemoteDevice is the LLC service latency for an H2D access that
	// was satisfied from LLC because the device pushed the line with NC-P
	// (includes the coherence-state check for a device-sourced line).
	LLCHitRemoteDevice sim.Time
	// LoadCredits bounds outstanding demand loads per core (line-fill
	// buffers); it caps load bandwidth.
	LoadCredits int
	// NTLoadCredits bounds outstanding non-temporal loads (fewer fill
	// buffers are available to the NT path).
	NTLoadCredits int
	// WCBuffers bounds outstanding write-combining (non-temporal) stores.
	WCBuffers int
	// NTStoreEgressGap is the uncore egress spacing of a non-temporal store
	// stream headed off-socket (it bounds H2D nt-st bandwidth, §V-C).
	NTStoreEgressGap sim.Time
	// CLFlush and CLDemote are the core-visible costs of CLFLUSH/CLDEMOTE.
	CLFlush, CLDemote sim.Time
	// DSASetup is the descriptor preparation + doorbell cost to launch a
	// Data Streaming Accelerator transfer; DSAStartup is the engine's fixed
	// pipeline fill; DSABytesPerSec is its streaming bandwidth.
	DSASetup, DSAStartup sim.Time
	DSABytesPerSec       float64
	// MemChannels is the number of DDR5 channels per socket; SNC halves it.
	MemChannels int
}

// UPIParams models the inter-socket link used to *emulate* a CXL Type-2
// device with a remote NUMA node (paper footnote 1): 18 lanes × 20 GT/s.
type UPIParams struct {
	// OneWay is the one-hop propagation+protocol latency.
	OneWay sim.Time
	// BytesPerSec is the usable payload bandwidth (~45 GB/s).
	BytesPerSec float64
	// RemoteLLCRead is the remote home's LLC read service latency.
	RemoteLLCRead sim.Time
	// RemoteDRAMRead is the remote home's memory read service latency
	// (directory lookup + DRAM).
	RemoteDRAMRead sim.Time
	// NTLoadExtraHit/Miss are the added costs of the non-temporal load path
	// versus a demand load (fill-buffer bypass), measured at LLC hit/miss.
	NTLoadExtraHit, NTLoadExtraMiss sim.Time
	// StoreGrantHit/Miss are the RFO-grant costs for a remote store.
	StoreGrantHit, StoreGrantMiss sim.Time
	// NTStoreFlushHit/Miss are the WC-buffer flush + remote post costs for a
	// non-temporal store.
	NTStoreFlushHit, NTStoreFlushMiss sim.Time
	// ReadCredits bounds outstanding remote reads over UPI.
	ReadCredits int
	// StoreCredits bounds outstanding remote RFO stores (the store buffer
	// keeps more stores in flight than the demand-load path keeps loads).
	StoreCredits int
}

// CXLParams models the CXL 1.1 ×16 link over PCIe 5.0 and the host-side
// CXL home-agent processing.
type CXLParams struct {
	// OneWay is the one-direction link latency (PHY + flit pack/unpack +
	// controller).
	OneWay sim.Time
	// BytesPerSec is the usable payload bandwidth (~64 GB/s raw; CXL flit
	// efficiency included).
	BytesPerSec float64
	// HomeBase is the host home-agent pipeline cost per D2H request.
	HomeBase sim.Time
	// HostLLCRead / HostDRAMRead are host-side service latencies for D2H
	// reads that hit / miss LLC.
	HostLLCRead, HostDRAMRead sim.Time
	// CSReadExtraHit/Miss are the shared-state transition costs of CS-read
	// over NC-read (HMC allocation bookkeeping at the home agent).
	CSReadExtraHit, CSReadExtraMiss sim.Time
	// NCReadExtraHit/Miss are residual NC-read (RdCurr) protocol costs.
	NCReadExtraHit, NCReadExtraMiss sim.Time
	// NCWriteHostHit/Miss are the host-side completion costs of NC-write
	// (WrInv): invalidate-and-post on hit, directory+post on miss.
	NCWriteHostHit, NCWriteHostMiss sim.Time
	// COWriteHostHit/Miss are the ownership-grant costs of CO-write (and
	// CO-read misses): invalidate host copies on hit, directory fetch on
	// miss.
	COWriteHostHit, COWriteHostMiss sim.Time
	// NCPHostCost is the host-side cost of an NC-P push into LLC.
	NCPHostCost sim.Time
	// D2HReadCredits bounds outstanding D2H reads held by the DCOH.
	D2HReadCredits int
	// H2DLoadCredits / H2DStoreCredits bound a host core's outstanding
	// demand loads / RFO stores to CXL memory (smaller than the local-memory
	// pools; they cap H2D read/store bandwidth in Fig. 5).
	H2DLoadCredits, H2DStoreCredits int
	// BiasCheck is the host snoop-filter consultation cost paid by D2D
	// accesses in host-bias mode when the host may hold the line.
	BiasCheck sim.Time
	// BiasFlipH2D is the cost of the automatic device→host bias flip
	// triggered by an H2D access to a device-bias region (§IV-B).
	BiasFlipH2D sim.Time
	// MemProc is the host-side CXL.mem protocol cost per H2D request.
	MemProc sim.Time
}

// DeviceParams models the Agilex-7 card: a 400 MHz FPGA fabric hosting the
// DCOH slice (4-way 128 KB HMC, direct-mapped 32 KB DMC), the CAFU/LSU,
// and accelerator IPs; 2× DDR4-2400 device memory.
type DeviceParams struct {
	// FabricGHz is the FPGA fabric clock (0.4 GHz).
	FabricGHz float64
	// LSUIssue is the per-request issue cost of the load/store unit.
	LSUIssue sim.Time
	// LSUIssueGap bounds the LSU's request rate (one 64 B request per fabric
	// cycle ⇒ 25.6 GB/s max, §V-A).
	LSUIssueGap sim.Time
	// DCOHLookup is the DCOH pipeline cost per request (tag lookup, hint
	// decode).
	DCOHLookup sim.Time
	// D2DReadCredits bounds the DCOH's outstanding D2D reads (DMC MSHRs).
	D2DReadCredits int
	// HostBiasWriteGap is the DCOH pipeline spacing for D2D writes in
	// host-bias mode (the snoop-tracking stage lowers write bandwidth 8–13 %
	// versus device-bias, Fig. 4).
	HostBiasWriteGap sim.Time
	// LSUTransferSetup is the CAFU command-processing overhead to start a
	// multi-line D2H/D2D transfer (the Fig. 6-style block transfers).
	LSUTransferSetup sim.Time
	// HMCRead / HMCWrite are HMC on-hit service latencies.
	HMCRead, HMCWrite sim.Time
	// DMCRead / DMCWrite are DMC on-hit service latencies.
	DMCRead, DMCWrite sim.Time
	// DevMemCtrl is the soft memory-controller traversal cost; device memory
	// access adds DRAM.DDR4Read/Write on top.
	DevMemCtrl sim.Time
	// DMCCheckH2D is the DMC coherence-state check every H2D request pays on
	// a Type-2 device (absent on Type-3) — the §V-C penalty.
	DMCCheckH2D sim.Time
	// OwnedTransition is the extra H2D cost when the target line sits in DMC
	// in owned state (downgrade to shared).
	OwnedTransition sim.Time
	// ModifiedWriteback is the extra H2D cost when the DMC line is modified
	// (write back to device memory first): the 36–40 % case of §V-C.
	ModifiedWriteback sim.Time
	// CompressBytesPerSec / DecompressBytesPerSec are the streaming rates of
	// the compression IP (§VI-A: 1.8–2.8× faster than the host CPU).
	CompressBytesPerSec, DecompressBytesPerSec float64
	// CompressStartup is the IP pipeline-fill cost per page.
	CompressStartup sim.Time
	// HashBytesPerSec and CompareBytesPerSec are the ksm IP rates.
	HashBytesPerSec, CompareBytesPerSec float64
	// DoorbellPollGap is the device polling interval on the shared mailbox
	// region (one D2D CS-read per interval).
	DoorbellPollGap sim.Time
}

// DRAMParams models the memory technologies of Table II.
type DRAMParams struct {
	// DDR5Read/Write are host-channel access latencies (row activate etc.)
	// beyond the controller queue.
	DDR5Read, DDR5Write sim.Time
	// DDR4Read/Write are device-memory access latencies.
	DDR4Read, DDR4Write sim.Time
	// WriteQueueEntries is the per-controller posted-write queue depth
	// (32 × 64 B per MC, §V-A).
	WriteQueueEntries int
	// WriteDrainPerLine is the per-line drain service time of one controller
	// under the random single-line pattern of the microbenchmarks; it sets
	// the post-queue-overflow write bandwidth.
	WriteDrainPerLine sim.Time
	// DDR4WriteDrainPerLine is the device controller's per-line drain time;
	// the soft controller schedules the accelerator's streaming writes more
	// favourably than the host's random single lines.
	DDR4WriteDrainPerLine sim.Time
	// ChannelBytesPerSec is a DDR5-4800 channel's streaming bandwidth.
	ChannelBytesPerSec float64
	// DDR4ChannelBytesPerSec is a device DDR4-2400 channel's bandwidth
	// (19.2 GB/s, Table II).
	DDR4ChannelBytesPerSec float64
}

// PCIeParams models the plain-PCIe personalities (Agilex-7 as PCIe ×16, and
// the BlueField-3 SNIC at ×32) used in §V-D and the pcie-* kernel backends.
type PCIeParams struct {
	// MMIOReadRT is the uncacheable-read round trip for one 64 B word
	// (~1 µs, §II-A); MMIO reads serialize one at a time.
	MMIOReadRT sim.Time
	// MMIOWriteOneWay is the posted-write one-way latency; the strict
	// ordering requirement allows a single in-flight write.
	MMIOWriteOneWay sim.Time
	// DMASetup is the host-side descriptor + doorbell cost per DMA transfer;
	// DMAEngine is the device engine's fixed latency; DMABytesPerSec its
	// streaming rate (saturates ~30 GB/s, Fig. 6).
	DMASetup, DMAEngine sim.Time
	DMABytesPerSec      float64
	// DMACompletion is the host-visible completion signalling cost
	// (interrupt + handler, or poll).
	DMACompletion sim.Time
	// RDMAPost is the host verb-post cost; RDMANIC the BF-3 processing
	// latency; RDMABytesPerSec the ×32 streaming rate (up to 40 GB/s).
	RDMAPost, RDMANIC sim.Time
	RDMABytesPerSec   float64
	// RDMAArmOverhead is the BF-3 Arm-core software cost wrapped around each
	// device-initiated RDMA transfer (WQE handling + completion polling).
	RDMAArmOverhead sim.Time
	// DOCASetup / DOCAEngine / DOCABytesPerSec model DOCA-DMA, which the
	// paper measures as slower than RDMA on the same card.
	DOCASetup, DOCAEngine sim.Time
	DOCABytesPerSec       float64
	// InterruptCost is the host CPU cost of taking a device interrupt
	// (pcie-* backends need one per offload completion, §VII).
	InterruptCost sim.Time
	// DMAStackCost is the extra host software cost of the PCIe-DMA kernel
	// stack per offload (§VII: "the software stack of PCIe-DMA we use is
	// less efficient than that of PCIe-RDMA").
	DMAStackCost sim.Time
	// DDIO: DMA writes land in host LLC (Intel DDIO), not DRAM.
	DDIO bool
}

// SoftwareParams models the host/device software data-plane costs of the
// kernel features (§VI–VII). These represent instruction execution, not
// interconnect transfers (which the backends compute from the models above).
type SoftwareParams struct {
	// HostCompress4K / HostDecompress4K are the host-CPU costs of the zswap
	// codec per 4 KB page (the device IP is 1.8–2.8× faster).
	HostCompress4K, HostDecompress4K sim.Time
	// ArmCompress4K / ArmDecompress4K are BF-3 Arm-core costs (slower than
	// host, Table IV).
	ArmCompress4K, ArmDecompress4K sim.Time
	// HostHash4K / HostCompare4K are ksm's xxhash and byte-compare host
	// costs per page; Arm* are the BF-3 equivalents.
	HostHash4K, HostCompare4K sim.Time
	ArmHash4K, ArmCompare4K   sim.Time
	// KswapdControlPlane is the host-side bookkeeping per swapped page that
	// is never offloaded (LRU manipulation, radix tree, PTE updates).
	KswapdControlPlane sim.Time
	// KsmControlPlane is the per-candidate host bookkeeping of ksm (tree
	// walk, rmap, PTE CoW update).
	KsmControlPlane sim.Time
	// PageFaultBase is the host cost of a minor page fault without swap-in.
	PageFaultBase sim.Time
	// OffloadSleep is kswapd's conservatively determined yield duration
	// while the device works (§VI-A step 3, ~10 µs).
	OffloadSleep sim.Time
}

// Default returns the calibrated parameter set. See the package comment for
// what "calibrated" means; internal/experiments pins the resulting ratios to
// the paper's numbers.
func Default() *Params {
	ns := func(x float64) sim.Time { return sim.FromNanos(x) }
	us := func(x float64) sim.Time { return sim.FromNanos(1000 * x) }
	return &Params{
		Host: HostParams{
			CoreGHz:            2.2,
			IssueGap:           ns(1.4),
			StoreIssueGap:      ns(1.5),
			LocalLookup:        ns(8),
			L1Hit:              ns(1.1),
			L2Hit:              ns(3.6),
			LLCHit:             ns(21),
			LLCHitRemoteDevice: ns(50),
			LoadCredits:        10,
			NTLoadCredits:      8,
			WCBuffers:          10,
			NTStoreEgressGap:   ns(5),
			CLFlush:            ns(60),
			CLDemote:           ns(25),
			DSASetup:           ns(350),
			DSAStartup:         ns(900),
			DSABytesPerSec:     36e9,
			MemChannels:        8,
		},
		UPI: UPIParams{
			OneWay:           ns(40),
			BytesPerSec:      45e9,
			RemoteLLCRead:    ns(20),
			RemoteDRAMRead:   ns(120),
			NTLoadExtraHit:   ns(37),
			NTLoadExtraMiss:  ns(30),
			StoreGrantHit:    ns(15),
			StoreGrantMiss:   ns(70),
			NTStoreFlushHit:  ns(20),
			NTStoreFlushMiss: ns(45),
			ReadCredits:      6,
			StoreCredits:     16,
		},
		CXL: CXLParams{
			OneWay:          ns(75),
			BytesPerSec:     64e9,
			HomeBase:        ns(8),
			HostLLCRead:     ns(20),
			HostDRAMRead:    ns(65),
			CSReadExtraHit:  ns(13),
			CSReadExtraMiss: ns(5),
			NCReadExtraHit:  ns(2),
			NCReadExtraMiss: ns(2),
			NCWriteHostHit:  ns(12),
			NCWriteHostMiss: ns(51),
			COWriteHostHit:  ns(58),
			COWriteHostMiss: ns(145),
			NCPHostCost:     ns(30),
			D2HReadCredits:  64,
			H2DLoadCredits:  6,
			H2DStoreCredits: 8,
			BiasCheck:       ns(100),
			BiasFlipH2D:     ns(250),
			MemProc:         ns(50),
		},
		Device: DeviceParams{
			FabricGHz:             0.4,
			LSUIssue:              ns(5),
			LSUIssueGap:           ns(2.5),
			DCOHLookup:            ns(15),
			D2DReadCredits:        8,
			HostBiasWriteGap:      ns(2.8),
			LSUTransferSetup:      ns(150),
			HMCRead:               ns(35),
			HMCWrite:              ns(30),
			DMCRead:               ns(35),
			DMCWrite:              ns(46),
			DevMemCtrl:            ns(60),
			DMCCheckH2D:           ns(18),
			OwnedTransition:       ns(42),
			ModifiedWriteback:     ns(145),
			CompressBytesPerSec:   4096 / 2.9e-6, // 2.9 µs per 4 KB page (Table IV)
			DecompressBytesPerSec: 4096 / 1.5e-6,
			CompressStartup:       ns(180),
			HashBytesPerSec:       4096 / 0.5e-6,
			CompareBytesPerSec:    4096 / 0.45e-6,
			DoorbellPollGap:       ns(100),
		},
		DRAM: DRAMParams{
			DDR5Read:               ns(65),
			DDR5Write:              ns(55),
			DDR4Read:               ns(120),
			DDR4Write:              ns(100),
			WriteQueueEntries:      32,
			WriteDrainPerLine:      ns(64),
			DDR4WriteDrainPerLine:  ns(5),
			ChannelBytesPerSec:     38.4e9,
			DDR4ChannelBytesPerSec: 19.2e9,
		},
		PCIe: PCIeParams{
			MMIOReadRT:      ns(1050),
			MMIOWriteOneWay: ns(620),
			DMASetup:        ns(400),
			DMAEngine:       ns(900),
			DMABytesPerSec:  36e9,
			DMACompletion:   ns(250),
			RDMAPost:        ns(300),
			RDMANIC:         ns(2000),
			RDMABytesPerSec: 60e9,
			RDMAArmOverhead: us(1.45),
			DOCASetup:       ns(900),
			DOCAEngine:      ns(4500),
			DOCABytesPerSec: 26e9,
			InterruptCost:   us(1.8),
			DMAStackCost:    us(1.9),
			DDIO:            true,
		},
		SW: SoftwareParams{
			HostCompress4K:     us(6.5),
			HostDecompress4K:   us(3.0),
			ArmCompress4K:      us(5.5),
			ArmDecompress4K:    us(2.5),
			HostHash4K:         us(1.2),
			HostCompare4K:      us(1.0),
			ArmHash4K:          us(2.2),
			ArmCompare4K:       us(1.9),
			KswapdControlPlane: us(2.6),
			KsmControlPlane:    us(0.35),
			PageFaultBase:      us(1.1),
			OffloadSleep:       us(10),
		},
	}
}

// Validate reports a descriptive error string for the first inconsistency it
// finds, or "" if the parameters are usable.
func (p *Params) Validate() string {
	switch {
	case p.Host.CoreGHz <= 0 || p.Device.FabricGHz <= 0:
		return "timing: clock frequencies must be positive"
	case p.Host.LoadCredits <= 0 || p.Host.NTLoadCredits <= 0 || p.Host.WCBuffers <= 0:
		return "timing: host credit pools must be positive"
	case p.UPI.ReadCredits <= 0 || p.CXL.D2HReadCredits <= 0:
		return "timing: interconnect credit pools must be positive"
	case p.UPI.BytesPerSec <= 0 || p.CXL.BytesPerSec <= 0:
		return "timing: link bandwidths must be positive"
	case p.DRAM.WriteQueueEntries <= 0 || p.DRAM.WriteDrainPerLine <= 0:
		return "timing: write-queue parameters must be positive"
	case p.Device.CompressBytesPerSec <= 0 || p.Device.DecompressBytesPerSec <= 0:
		return "timing: device IP rates must be positive"
	case p.Host.MemChannels <= 0:
		return "timing: MemChannels must be positive"
	}
	return ""
}

// FabricCycle returns the device fabric clock period.
func (p *Params) FabricCycle() sim.Time {
	return sim.FromNanos(1 / p.Device.FabricGHz)
}

// CoreCycle returns the host core clock period.
func (p *Params) CoreCycle() sim.Time {
	return sim.FromNanos(1 / p.Host.CoreGHz)
}

// Serialize returns the wire occupancy of n payload bytes on a link of rate
// bytesPerSec.
func Serialize(n int, bytesPerSec float64) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.FromNanos(float64(n) / bytesPerSec * 1e9)
}

// Streaming returns the processing time of n bytes through an engine of the
// given rate (compression IP, DSA, DMA engine).
func Streaming(n int, bytesPerSec float64) sim.Time {
	return Serialize(n, bytesPerSec)
}
