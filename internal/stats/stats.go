// Package stats provides the measurement plumbing used by every experiment:
// exact sample sets with percentile/median/stddev queries, fixed-bucket
// latency histograms, and small formatting helpers for reporting
// paper-style numbers (medians over >=1K repetitions, p99 tail latency,
// normalized ratios).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers order statistics
// exactly. It is the right tool for the microbenchmark experiments, which
// follow the paper's methodology of repeating each measurement >= 1K times
// and reporting the median with a standard-deviation error bar.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
	sumSq  float64
}

// NewSample returns an empty sample, optionally pre-sized.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]float64, 0, capacity)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.sum += x
	s.sumSq += x * x
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean reports the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// StdDev reports the population standard deviation, or 0 for fewer than two
// observations.
func (s *Sample) StdDev() float64 {
	n := float64(len(s.xs))
	if n < 2 {
		return 0
	}
	mean := s.sum / n
	v := s.sumSq/n - mean*mean
	if v < 0 { // numerical noise
		v = 0
	}
	return math.Sqrt(v)
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile reports the q-quantile (0 <= q <= 1) using linear interpolation
// between closest ranks. It panics on an empty sample or q outside [0,1].
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	s.ensureSorted()
	if len(s.xs) == 1 {
		return s.xs[0]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median reports the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// P99 reports the 0.99-quantile — the paper's tail-latency metric (§VII).
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// Min reports the smallest observation; like Quantile, it panics with a
// clear message on an empty sample (not a raw index error).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		panic("stats: min of empty sample")
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max reports the largest observation; like Quantile, it panics with a
// clear message on an empty sample (not a raw index error).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		panic("stats: max of empty sample")
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Values returns a copy of the raw observations (unsorted order not
// guaranteed).
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Reset discards all observations, keeping capacity.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
	s.sum, s.sumSq = 0, 0
}

// Summary is a compact set of order statistics, convenient for table rows.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary; an empty sample yields a zero Summary.
func (s *Sample) Summarize() Summary {
	if len(s.xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		Median: s.Median(),
		P99:    s.P99(),
		Max:    s.Max(),
	}
}

// Histogram is a fixed-width-bucket latency histogram with an overflow
// bucket, for cheap online tail tracking in long KVS runs.
type Histogram struct {
	bucketWidth float64
	counts      []uint64
	overflow    uint64
	n           uint64
}

// NewHistogram creates a histogram covering [0, bucketWidth*buckets) with an
// overflow bucket beyond.
func NewHistogram(bucketWidth float64, buckets int) *Histogram {
	if bucketWidth <= 0 || buckets <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{bucketWidth: bucketWidth, counts: make([]uint64, buckets)}
}

// Add records one observation (negative values clamp to bucket 0).
func (h *Histogram) Add(x float64) {
	h.n++
	if x < 0 {
		h.counts[0]++
		return
	}
	i := int(x / h.bucketWidth)
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// N reports the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Quantile reports an upper bound for the q-quantile (the right edge of the
// bucket containing it). Overflowed quantiles return +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		panic("stats: quantile of empty histogram")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return float64(i+1) * h.bucketWidth
		}
	}
	return math.Inf(1)
}

// Ratio returns a/b, guarding against a zero denominator.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// PctHigher reports how much higher a is than b, in percent: 100*(a-b)/b.
func PctHigher(a, b float64) float64 { return 100 * (a - b) / b }

// PctLower reports how much lower a is than b, in percent: 100*(b-a)/b.
func PctLower(a, b float64) float64 { return 100 * (b - a) / b }

// Within reports whether got is within tol (a fraction, e.g. 0.25 for ±25%)
// of want. Used by the paper-shape calibration tests.
func Within(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) <= tol
	}
	return math.Abs(got-want) <= math.Abs(want)*tol
}
