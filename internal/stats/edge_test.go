package stats

import (
	"math"
	"testing"
)

// TestQuantileTable pins the closest-ranks interpolation on known inputs,
// including the p0/p100 endpoints and duplicate-heavy samples.
func TestQuantileTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"p0 is min", []float64{30, 10, 20}, 0, 10},
		{"p100 is max", []float64{30, 10, 20}, 1, 30},
		{"p50 odd n, no interpolation", []float64{1, 2, 3}, 0.5, 2},
		{"p50 even n interpolates", []float64{10, 20, 30, 40}, 0.5, 25},
		{"p25 lands between ranks", []float64{10, 20, 30, 40}, 0.25, 17.5},
		{"p75 lands between ranks", []float64{10, 20, 30, 40}, 0.75, 32.5},
		{"p99 near the top", []float64{0, 100}, 0.99, 99},
		{"p1 near the bottom", []float64{0, 100}, 0.01, 1},
		{"all duplicates", []float64{5, 5, 5, 5}, 0.5, 5},
		{"duplicates at p0", []float64{2, 2, 9}, 0, 2},
		{"duplicates at p100", []float64{2, 9, 9}, 1, 9},
		{"single obs p0", []float64{7}, 0, 7},
		{"single obs p100", []float64{7}, 1, 7},
		{"negative values", []float64{-10, -20}, 0.5, -15},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewSample(len(c.xs))
			for _, x := range c.xs {
				s.Add(x)
			}
			if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("Quantile(%v) of %v = %v, want %v", c.q, c.xs, got, c.want)
			}
		})
	}
}

// TestEmptySampleBehavior pins every query against an empty sample: the
// mean/stddev family degrades to zero, the order statistics panic.
func TestEmptySampleBehavior(t *testing.T) {
	s := NewSample(0)
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample N/Mean/StdDev should be 0")
	}
	if got := s.Summarize(); got != (Summary{}) {
		t.Fatalf("empty Summarize = %+v, want zero", got)
	}
	if vs := s.Values(); len(vs) != 0 {
		t.Fatalf("empty Values = %v", vs)
	}
	mustPanic(t, func() { s.Min() })
	mustPanic(t, func() { s.Max() })
	mustPanic(t, func() { s.Median() })
	mustPanic(t, func() { s.P99() })
}

// TestEmptyOrderStatPanicMessages pins the panic values themselves: every
// order statistic on an empty sample must raise the documented
// "stats: ..." message, not a raw index-out-of-range from the backing
// slice (which Min/Max once did).
func TestEmptyOrderStatPanicMessages(t *testing.T) {
	s := NewSample(0)
	cases := []struct {
		name string
		fn   func()
		want string
	}{
		{"Min", func() { s.Min() }, "stats: min of empty sample"},
		{"Max", func() { s.Max() }, "stats: max of empty sample"},
		{"Quantile", func() { s.Quantile(0.5) }, "stats: quantile of empty sample"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected panic")
				}
				msg, ok := r.(string)
				if !ok || msg != c.want {
					t.Fatalf("panic = %v, want %q", r, c.want)
				}
			}()
			c.fn()
		})
	}
}

// TestSingleObservationSummary: with one observation every order statistic
// collapses to it and the spread is zero.
func TestSingleObservationSummary(t *testing.T) {
	s := NewSample(1)
	s.Add(42)
	got := s.Summarize()
	want := Summary{N: 1, Mean: 42, StdDev: 0, Min: 42, Median: 42, P99: 42, Max: 42}
	if got != want {
		t.Fatalf("Summarize = %+v, want %+v", got, want)
	}
}

// TestHistogramBucketBoundaries pins the half-open [i*w, (i+1)*w) bucket
// convention: a value exactly on an edge belongs to the bucket above it,
// and a value exactly at the histogram's upper limit overflows.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		name string
		x    float64
		want float64 // Quantile(1.0) after adding only x; +Inf = overflow
	}{
		{"zero is bucket 0", 0, 10},
		{"just below first edge", 9.999, 10},
		{"exactly on first edge", 10, 20},
		{"mid bucket", 25, 30},
		{"just below the limit", 99.999, 100},
		{"exactly at the limit overflows", 100, math.Inf(1)},
		{"beyond the limit overflows", 1e9, math.Inf(1)},
		{"negative clamps to bucket 0", -3, 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram(10, 10) // [0,100) + overflow
			h.Add(c.x)
			got := h.Quantile(1.0)
			if math.IsInf(c.want, 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("Add(%v): Quantile = %v, want +Inf", c.x, got)
				}
				return
			}
			if got != c.want {
				t.Fatalf("Add(%v): Quantile = %v, want %v (bucket right edge)", c.x, got, c.want)
			}
		})
	}
}

// TestHistogramLowQuantileClamp: Quantile(0) must still land on the first
// occupied bucket rather than reading rank zero.
func TestHistogramLowQuantileClamp(t *testing.T) {
	h := NewHistogram(10, 10)
	h.Add(55)
	if got := h.Quantile(0); got != 60 {
		t.Fatalf("Quantile(0) = %v, want 60 (right edge of the only occupied bucket)", got)
	}
}

// TestStdDevOfConstant guards the sumSq formulation against catastrophic
// cancellation flipping the variance negative.
func TestStdDevOfConstant(t *testing.T) {
	s := NewSample(0)
	for i := 0; i < 1000; i++ {
		s.Add(1e9 + 0.5)
	}
	if got := s.StdDev(); got != 0 {
		t.Fatalf("StdDev of a constant = %v, want 0", got)
	}
}
