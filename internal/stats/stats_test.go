package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	s := NewSample(8)
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.Median(); got != 3 {
		t.Fatalf("Median = %v", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("Min = %v", got)
	}
	if got := s.Max(); got != 5 {
		t.Fatalf("Max = %v", got)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if got := s.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	s := NewSample(0)
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample mean/stddev should be 0")
	}
	if sum := s.Summarize(); sum.N != 0 {
		t.Fatal("empty summary should be zero")
	}
	s.Add(7)
	if s.Median() != 7 || s.Quantile(0) != 7 || s.Quantile(1) != 7 {
		t.Fatal("single-element quantiles should all be the element")
	}
	if s.StdDev() != 0 {
		t.Fatal("single-element stddev should be 0")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := NewSample(4)
	for _, x := range []float64{10, 20, 30, 40} {
		s.Add(x)
	}
	if got := s.Quantile(0.5); got != 25 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if got := s.Quantile(0.25); got != 17.5 {
		t.Fatalf("Quantile(0.25) = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	s := NewSample(0)
	mustPanic(t, func() { s.Quantile(0.5) })
	s.Add(1)
	mustPanic(t, func() { s.Quantile(-0.1) })
	mustPanic(t, func() { s.Quantile(1.1) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestSampleAddAfterQuery(t *testing.T) {
	s := NewSample(0)
	s.Add(1)
	s.Add(3)
	_ = s.Median() // forces sort
	s.Add(2)
	if got := s.Median(); got != 2 {
		t.Fatalf("Median after re-add = %v", got)
	}
}

func TestSampleReset(t *testing.T) {
	s := NewSample(0)
	s.Add(5)
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestP99(t *testing.T) {
	s := NewSample(100)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	got := s.P99()
	if got < 99 || got > 100 {
		t.Fatalf("P99 = %v", got)
	}
}

func TestQuantileMatchesSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		s := NewSample(n)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
		}
		sort.Float64s(xs)
		// Quantile(0) == min, Quantile(1) == max, and monotonicity.
		if s.Quantile(0) != xs[0] || s.Quantile(1) != xs[n-1] {
			return false
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 10 || sum.Min != 1 || sum.Max != 10 || sum.Mean != 5.5 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Median != 5.5 {
		t.Fatalf("median = %v", sum.Median)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 10) // [0,100) + overflow
	for i := 0; i < 99; i++ {
		h.Add(float64(i))
	}
	h.Add(500) // overflow
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	q50 := h.Quantile(0.5)
	if q50 < 40 || q50 > 60 {
		t.Fatalf("Q50 = %v", q50)
	}
	if !math.IsInf(h.Quantile(1.0), 1) {
		t.Fatalf("Q100 should overflow to +Inf, got %v", h.Quantile(1.0))
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(1, 4)
	h.Add(-5)
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("Quantile = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic(t, func() { NewHistogram(0, 5) })
	mustPanic(t, func() { NewHistogram(1, 0) })
	h := NewHistogram(1, 1)
	mustPanic(t, func() { h.Quantile(0.5) })
	h.Add(0)
	mustPanic(t, func() { h.Quantile(2) })
}

func TestHistogramQuantileBoundProperty(t *testing.T) {
	// Property: the histogram quantile is an upper bound of the order
	// statistic at rank ceil(q*n) (its own rank convention) and within one
	// bucket width of it (when not overflowed).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(5, 100) // covers [0,500)
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = rng.Float64() * 400
			h.Add(xs[i])
		}
		sort.Float64s(xs)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			rank := int(math.Ceil(q * float64(len(xs))))
			if rank == 0 {
				rank = 1
			}
			exact := xs[rank-1]
			approx := h.Quantile(q)
			if approx < exact-1e-9 || approx > exact+5+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioHelpers(t *testing.T) {
	if got := Ratio(10, 4); got != 2.5 {
		t.Fatalf("Ratio = %v", got)
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("Ratio by zero should be +Inf")
	}
	if got := PctHigher(138, 100); math.Abs(got-38) > 1e-9 {
		t.Fatalf("PctHigher = %v", got)
	}
	if got := PctLower(17, 100); math.Abs(got-83) > 1e-9 {
		t.Fatalf("PctLower = %v", got)
	}
}

func TestWithin(t *testing.T) {
	if !Within(110, 100, 0.10) {
		t.Fatal("110 should be within 10% of 100")
	}
	if Within(111, 100, 0.10) {
		t.Fatal("111 should not be within 10% of 100")
	}
	if !Within(0.05, 0, 0.1) {
		t.Fatal("near-zero should be within absolute tol of 0")
	}
	if !Within(-95, -100, 0.10) {
		t.Fatal("negative values should compare by magnitude")
	}
}
