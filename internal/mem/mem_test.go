package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/phys"
	"repro/internal/sim"
)

func TestStoreLineRoundTrip(t *testing.T) {
	s := NewStore("host")
	line := make([]byte, phys.LineSize)
	for i := range line {
		line[i] = byte(i)
	}
	s.WriteLine(0x1000, line)
	got := make([]byte, phys.LineSize)
	s.ReadLine(0x1000, got)
	if !bytes.Equal(got, line) {
		t.Fatal("line round trip failed")
	}
	if s.LinesWritten() != 1 {
		t.Fatalf("LinesWritten = %d", s.LinesWritten())
	}
}

func TestStoreUnwrittenReadsZero(t *testing.T) {
	s := NewStore("host")
	got := make([]byte, phys.LineSize)
	got[0] = 0xFF
	s.ReadLine(0x2000, got)
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
	if s.PeekLine(0x2000) != nil {
		t.Fatal("PeekLine of unwritten line should be nil")
	}
}

func TestStoreMisalignedAccessUsesLineBase(t *testing.T) {
	s := NewStore("host")
	line := make([]byte, phys.LineSize)
	line[63] = 0xAB
	s.WriteLine(0x1010, line) // misaligned: stores at 0x1000
	got := make([]byte, phys.LineSize)
	s.ReadLine(0x1000, got)
	if got[63] != 0xAB {
		t.Fatal("misaligned write did not round to line base")
	}
}

func TestStoreWrongSizePanics(t *testing.T) {
	s := NewStore("host")
	for _, fn := range []func(){
		func() { s.ReadLine(0, make([]byte, 10)) },
		func() { s.WriteLine(0, make([]byte, 128)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStoreSpanningReadWrite(t *testing.T) {
	s := NewStore("host")
	data := make([]byte, 300) // spans 5+ lines, misaligned start
	for i := range data {
		data[i] = byte(i * 3)
	}
	s.Write(0x1030, data)
	got := make([]byte, 300)
	s.Read(0x1030, got)
	if !bytes.Equal(got, data) {
		t.Fatal("spanning round trip failed")
	}
	// Neighboring bytes preserved.
	pre := make([]byte, phys.LineSize)
	s.ReadLine(0x1000, pre)
	for i := 0; i < 0x30; i++ {
		if pre[i] != 0 {
			t.Fatalf("byte before region clobbered at %d", i)
		}
	}
}

func TestStorePageRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore("p")
		page := make([]byte, phys.PageSize)
		rng.Read(page)
		base := phys.Addr(rng.Intn(1<<20)) &^ (phys.PageSize - 1)
		s.Write(base, page)
		got := make([]byte, phys.PageSize)
		s.Read(base, got)
		return bytes.Equal(got, page)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerPostedWritesCompleteAtQueueSpeed(t *testing.T) {
	// 16 writes into a 32-entry queue: all admitted immediately (§V-A).
	c := NewController("mc", 32, 64*sim.Nanosecond)
	for i := 0; i < 16; i++ {
		if admitted := c.PostWrite(sim.Time(i)); admitted != sim.Time(i) {
			t.Fatalf("write %d admitted at %v", i, admitted)
		}
	}
	if c.Writes() != 16 {
		t.Fatalf("Writes = %d", c.Writes())
	}
}

func TestControllerQueueOverflowStalls(t *testing.T) {
	drain := 64 * sim.Nanosecond
	c := NewController("mc", 4, drain)
	// Fill the queue instantaneously.
	for i := 0; i < 4; i++ {
		if got := c.PostWrite(0); got != 0 {
			t.Fatalf("write %d delayed to %v", i, got)
		}
	}
	// The 5th write must wait for the first drain (64 ns).
	if got := c.PostWrite(0); got != drain {
		t.Fatalf("overflow write admitted at %v, want %v", got, drain)
	}
	// The 6th waits for the second drain.
	if got := c.PostWrite(0); got != 2*drain {
		t.Fatalf("6th write admitted at %v, want %v", got, 2*drain)
	}
}

func TestControllerSteadyStateBandwidthIsDrainLimited(t *testing.T) {
	drain := 64 * sim.Nanosecond
	c := NewController("mc", 32, drain)
	const n = 1000
	var last sim.Time
	for i := 0; i < n; i++ {
		last = c.PostWrite(0)
	}
	// Admission rate converges to the drain rate: last admission ≈
	// (n - queueDepth) * drain.
	want := sim.Time(n-32) * drain
	if last != want {
		t.Fatalf("last admission %v, want %v", last, want)
	}
}

func TestChannelsInterleaving(t *testing.T) {
	ch := NewChannels("skt0", 8, 32, 64*sim.Nanosecond)
	if ch.N() != 8 {
		t.Fatalf("N = %d", ch.N())
	}
	// Consecutive lines hit consecutive controllers.
	c0 := ch.For(0x0000)
	c1 := ch.For(0x0040)
	if c0 == c1 {
		t.Fatal("adjacent lines mapped to the same channel")
	}
	if ch.For(0x0000+8*64) != c0 {
		t.Fatal("interleave stride wrong")
	}
}

func TestChannelsSpreadWrites(t *testing.T) {
	ch := NewChannels("skt0", 8, 32, 64*sim.Nanosecond)
	// 16 line writes round-robin across 8 channels: 2 per channel, all
	// admitted at time ~0 (the §V-A fits-in-queues case).
	var worst sim.Time
	for i := 0; i < 16; i++ {
		adm := ch.PostWrite(phys.Addr(i*64), 0)
		if adm > worst {
			worst = adm
		}
	}
	if worst != 0 {
		t.Fatalf("16 spread writes should all admit at 0; worst %v", worst)
	}
	if ch.TotalWrites() != 16 {
		t.Fatalf("TotalWrites = %d", ch.TotalWrites())
	}
	ch.Reset()
	if ch.TotalWrites() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestAddrMapResolve(t *testing.T) {
	m := NewMap()
	cases := []struct {
		addr phys.Addr
		want Kind
	}{
		{0x0, KindHost0},
		{RegionHost0.End() - 1, KindHost0},
		{RegionHost1.Base, KindHost1},
		{RegionDevice.Base + 0x1000, KindDevice},
		{RegionMMIO.Base, KindMMIO},
	}
	for _, c := range cases {
		k, ok := m.Resolve(c.addr)
		if !ok || k != c.want {
			t.Errorf("Resolve(%v) = %v,%v; want %v", c.addr, k, ok, c.want)
		}
	}
	if _, ok := m.Resolve(RegionMMIO.End() + 0x1000); ok {
		t.Error("hole resolved")
	}
}

func TestAddrMapPredicates(t *testing.T) {
	m := NewMap()
	if !m.IsHost(0x1000) || !m.IsHost(RegionHost1.Base) {
		t.Fatal("IsHost wrong")
	}
	if m.IsHost(RegionDevice.Base) {
		t.Fatal("device memory is not host")
	}
	if !m.IsDevice(RegionDevice.Base) || m.IsDevice(0) {
		t.Fatal("IsDevice wrong")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindHost0: "host-socket0", KindHost1: "host-socket1",
		KindDevice: "device-mem", KindMMIO: "mmio",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", uint8(k), k.String())
		}
	}
}
