package mem

import (
	"fmt"

	"repro/internal/phys"
)

// Kind identifies what backs a physical address region.
type Kind uint8

// Region kinds.
const (
	// KindHost0 and KindHost1 are socket-local DDR5 (Table II).
	KindHost0 Kind = iota
	KindHost1
	// KindDevice is device memory exposed through the CXL HPA window
	// (CXL.mem makes it host-visible like a remote NUMA node, §II-B).
	KindDevice
	// KindMMIO is the device's PCIe MMIO BAR window.
	KindMMIO
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindHost0:
		return "host-socket0"
	case KindHost1:
		return "host-socket1"
	case KindDevice:
		return "device-mem"
	case KindMMIO:
		return "mmio"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Default region layout. Generous fixed windows keep the map trivial; the
// simulated workloads touch a tiny fraction of each.
var (
	// RegionHost0 is socket 0's DRAM: 256 GiB at 0.
	RegionHost0 = phys.Range{Base: 0x0000_0000_0000, Size: 256 << 30}
	// RegionHost1 is socket 1's DRAM: 256 GiB.
	RegionHost1 = phys.Range{Base: 0x0040_0000_0000, Size: 256 << 30}
	// RegionDevice is the CXL device-memory window: 16 GiB (2× DDR4 DIMMs).
	RegionDevice = phys.Range{Base: 0x0080_0000_0000, Size: 16 << 30}
	// RegionMMIO is the PCIe BAR window: 1 GiB.
	RegionMMIO = phys.Range{Base: 0x00F0_0000_0000, Size: 1 << 30}
)

// Map resolves physical addresses to their backing region.
type Map struct {
	regions []struct {
		r phys.Range
		k Kind
	}
}

// NewMap returns the default system address map.
func NewMap() *Map {
	m := &Map{}
	m.add(RegionHost0, KindHost0)
	m.add(RegionHost1, KindHost1)
	m.add(RegionDevice, KindDevice)
	m.add(RegionMMIO, KindMMIO)
	return m
}

func (m *Map) add(r phys.Range, k Kind) {
	for _, e := range m.regions {
		if e.r.Overlaps(r) {
			panic(fmt.Sprintf("mem: region %v overlaps %v", r, e.r))
		}
	}
	m.regions = append(m.regions, struct {
		r phys.Range
		k Kind
	}{r, k})
}

// Resolve returns the kind backing addr; ok is false for unmapped holes.
func (m *Map) Resolve(addr phys.Addr) (Kind, bool) {
	for _, e := range m.regions {
		if e.r.Contains(addr) {
			return e.k, true
		}
	}
	return 0, false
}

// IsDevice reports whether addr lives in device memory.
func (m *Map) IsDevice(addr phys.Addr) bool {
	k, ok := m.Resolve(addr)
	return ok && k == KindDevice
}

// IsHost reports whether addr lives in host DRAM (either socket).
func (m *Map) IsHost(addr phys.Addr) bool {
	k, ok := m.Resolve(addr)
	return ok && (k == KindHost0 || k == KindHost1)
}
