// Package mem models the memory substrate: sparse byte-accurate backing
// stores, DRAM controllers with bounded posted-write queues, and the
// system's physical address map.
//
// The write-queue model reproduces the §V-A observation that 16 D2H writes
// (1 KB) fit into the 8 controllers' 32-entry × 64 B write queues and
// complete at queue speed, while longer write bursts collapse to DRAM drain
// bandwidth.
package mem

import (
	"fmt"

	"repro/internal/phys"
	"repro/internal/sim"
)

// Store is a sparse, line-granular backing store holding real bytes.
// Unwritten lines read as zero. Store is purely functional (no timing).
type Store struct {
	name  string
	lines map[phys.Addr][]byte
}

// NewStore returns an empty store.
func NewStore(name string) *Store {
	return &Store{name: name, lines: make(map[phys.Addr][]byte)}
}

// Name returns the store's diagnostic name.
func (s *Store) Name() string { return s.name }

// ReadLine copies the 64-byte line containing addr into dst (which must be
// LineSize bytes). Absent lines read as zero.
func (s *Store) ReadLine(addr phys.Addr, dst []byte) {
	if len(dst) != phys.LineSize {
		panic(fmt.Sprintf("mem: ReadLine dst %d bytes", len(dst)))
	}
	if l, ok := s.lines[phys.LineAddr(addr)]; ok {
		copy(dst, l)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
}

// PeekLine returns the stored line or nil if never written (zero line).
func (s *Store) PeekLine(addr phys.Addr) []byte {
	return s.lines[phys.LineAddr(addr)]
}

// WriteLine stores the 64-byte line containing addr.
func (s *Store) WriteLine(addr phys.Addr, src []byte) {
	if len(src) != phys.LineSize {
		panic(fmt.Sprintf("mem: WriteLine src %d bytes", len(src)))
	}
	base := phys.LineAddr(addr)
	l, ok := s.lines[base]
	if !ok {
		l = make([]byte, phys.LineSize)
		s.lines[base] = l
	}
	copy(l, src)
}

// Read copies n bytes starting at addr into dst; the range may span lines.
func (s *Store) Read(addr phys.Addr, dst []byte) {
	var line [phys.LineSize]byte
	for i := 0; i < len(dst); {
		base := phys.LineAddr(addr + phys.Addr(i))
		s.ReadLine(base, line[:])
		off := int(addr+phys.Addr(i)) - int(base)
		n := copy(dst[i:], line[off:])
		i += n
	}
}

// Write copies src into the store starting at addr; the range may span
// lines.
func (s *Store) Write(addr phys.Addr, src []byte) {
	var line [phys.LineSize]byte
	for i := 0; i < len(src); {
		base := phys.LineAddr(addr + phys.Addr(i))
		s.ReadLine(base, line[:]) // preserve surrounding bytes
		off := int(addr+phys.Addr(i)) - int(base)
		n := copy(line[off:], src[i:])
		s.WriteLine(base, line[:])
		i += n
	}
}

// LinesWritten reports how many distinct lines have ever been written.
func (s *Store) LinesWritten() int { return len(s.lines) }

// Controller models one DRAM channel's posted-write machinery: a bounded
// write queue (32 × 64 B entries in the paper's Xeon) absorbing writes at
// queue speed, drained to DRAM at the channel's random-single-line rate.
type Controller struct {
	name  string
	queue *sim.Credits
	drain *sim.Resource
	// drainPerLine is the per-line drain service time.
	drainPerLine sim.Time
	writes       uint64
}

// NewController builds a channel controller with the given write-queue depth
// and per-line drain time.
func NewController(name string, queueEntries int, drainPerLine sim.Time) *Controller {
	return &Controller{
		name:         name,
		queue:        sim.NewCredits(name+".wq", queueEntries),
		drain:        sim.NewResource(name + ".drain"),
		drainPerLine: drainPerLine,
	}
}

// PostWrite admits one 64-byte posted write arriving at now. The returned
// time is when the write occupies a queue slot — the moment a store is
// architecturally complete for the issuing agent (§V-A: "write accesses are
// completed as soon as they enter the write queues"). If the queue is full,
// admission stalls until a slot drains.
func (c *Controller) PostWrite(now sim.Time) sim.Time {
	admitted := c.queue.Acquire(now)
	start := c.drain.Claim(admitted, c.drainPerLine)
	c.queue.Complete(start + c.drainPerLine)
	c.writes++
	return admitted
}

// Writes reports how many writes the controller has admitted.
func (c *Controller) Writes() uint64 { return c.writes }

// Reset restores the controller to idle.
func (c *Controller) Reset() {
	c.queue.Reset()
	c.drain.Reset()
	c.writes = 0
}

// Channels is a line-interleaved group of controllers, as a socket's 8
// DDR5 channels (4 under sub-NUMA clustering) or the device's 2 DDR4
// channels.
type Channels struct {
	ctrls []*Controller
}

// NewChannels builds n interleaved controllers.
func NewChannels(name string, n, queueEntries int, drainPerLine sim.Time) *Channels {
	if n <= 0 {
		panic("mem: channel count must be positive")
	}
	cs := make([]*Controller, n)
	for i := range cs {
		cs[i] = NewController(fmt.Sprintf("%s[%d]", name, i), queueEntries, drainPerLine)
	}
	return &Channels{ctrls: cs}
}

// N reports the channel count.
func (c *Channels) N() int { return len(c.ctrls) }

// For returns the controller owning addr (line interleaving).
func (c *Channels) For(addr phys.Addr) *Controller {
	return c.ctrls[int(phys.LineAddr(addr)/phys.LineSize)%len(c.ctrls)]
}

// PostWrite routes a posted write to the owning channel.
func (c *Channels) PostWrite(addr phys.Addr, now sim.Time) sim.Time {
	return c.For(addr).PostWrite(now)
}

// TotalWrites sums admitted writes across channels.
func (c *Channels) TotalWrites() uint64 {
	var n uint64
	for _, ct := range c.ctrls {
		n += ct.Writes()
	}
	return n
}

// Reset restores all channels to idle.
func (c *Channels) Reset() {
	for _, ct := range c.ctrls {
		ct.Reset()
	}
}
