// Package ycsb implements the YCSB core workloads the paper drives Redis
// with (§VII): A (update heavy, 50/50), B (read heavy, 95/5), C (read
// only) and D (read latest, 95/5 insert), with uniform (the paper's
// choice), zipfian and latest request distributions.
package ycsb

import (
	"fmt"
	"math/rand"

	"repro/internal/rng"
	"repro/internal/workload"
)

// Workload identifies a YCSB core workload.
type Workload uint8

// The four workloads of Fig. 8.
const (
	A Workload = iota // 50% read, 50% update
	B                 // 95% read, 5% update
	C                 // 100% read
	D                 // 95% read, 5% insert (read latest)
)

// String names the workload.
func (w Workload) String() string {
	if w > D {
		return fmt.Sprintf("Workload(%d)", uint8(w))
	}
	return string('A' + rune(w))
}

// Workloads lists all four in presentation order.
func Workloads() []Workload { return []Workload{A, B, C, D} }

// OpKind is a generated operation type.
type OpKind uint8

// Operation kinds.
const (
	Read OpKind = iota
	Update
	Insert
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one generated request.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Distribution selects how keys are chosen.
type Distribution uint8

// Key distributions.
const (
	// Uniform is what the paper uses ("we use a uniform distribution for
	// key values").
	Uniform Distribution = iota
	// Zipfian is YCSB's default skewed chooser.
	Zipfian
	// Latest skews toward recently inserted records (used by workload D).
	Latest
)

// Generator produces a YCSB request stream.
type Generator struct {
	w       Workload
	dist    Distribution
	rng     *rand.Rand
	records uint64
	zipf    *workload.Zipf
}

// NewGenerator builds a generator over an initial record count.
func NewGenerator(w Workload, dist Distribution, records uint64, seed int64) (*Generator, error) {
	if records == 0 {
		return nil, fmt.Errorf("ycsb: records must be positive")
	}
	if w > D {
		return nil, fmt.Errorf("ycsb: unknown workload %d", w)
	}
	g := &Generator{w: w, dist: dist, rng: rng.New(seed), records: records}
	if dist == Zipfian {
		g.zipf = workload.NewZipf(records, 0.99)
	}
	return g, nil
}

// MustNewGenerator is NewGenerator for static configurations.
func MustNewGenerator(w Workload, dist Distribution, records uint64, seed int64) *Generator {
	g, err := NewGenerator(w, dist, records, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Records reports the current record count (grows with inserts).
func (g *Generator) Records() uint64 { return g.records }

// Next produces the next operation.
func (g *Generator) Next() Op {
	switch g.w {
	case A:
		if g.rng.Float64() < 0.5 {
			return Op{Kind: Update, Key: g.key()}
		}
	case B:
		if g.rng.Float64() < 0.05 {
			return Op{Kind: Update, Key: g.key()}
		}
	case C:
		// read only
	case D:
		if g.rng.Float64() < 0.05 {
			g.records++
			return Op{Kind: Insert, Key: g.records - 1}
		}
		return Op{Kind: Read, Key: g.latestKey()}
	}
	return Op{Kind: Read, Key: g.key()}
}

func (g *Generator) key() uint64 {
	switch g.dist {
	case Uniform:
		return uint64(g.rng.Int63n(int64(g.records)))
	case Zipfian:
		return g.zipf.Next(g.rng) % g.records
	case Latest:
		return g.latestKey()
	default:
		panic("ycsb: unknown distribution")
	}
}

// latestKey skews toward the most recently inserted records.
func (g *Generator) latestKey() uint64 {
	return workload.Latest(g.rng, g.records)
}

// Mix reports the nominal read/update/insert fractions of a workload, for
// documentation and tests.
func Mix(w Workload) (read, update, insert float64) {
	switch w {
	case A:
		return 0.5, 0.5, 0
	case B:
		return 0.95, 0.05, 0
	case C:
		return 1, 0, 0
	case D:
		return 0.95, 0, 0.05
	default:
		return 0, 0, 0
	}
}
