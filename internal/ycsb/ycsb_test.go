package ycsb

import (
	"math"
	"testing"
)

func TestWorkloadNames(t *testing.T) {
	if A.String() != "A" || B.String() != "B" || C.String() != "C" || D.String() != "D" {
		t.Fatal("workload names wrong")
	}
	if len(Workloads()) != 4 {
		t.Fatal("Workloads() wrong")
	}
}

func TestOpKindString(t *testing.T) {
	if Read.String() != "read" || Update.String() != "update" || Insert.String() != "insert" {
		t.Fatal("op kind names wrong")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(A, Uniform, 0, 1); err == nil {
		t.Fatal("zero records accepted")
	}
	if _, err := NewGenerator(Workload(9), Uniform, 10, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadMixes(t *testing.T) {
	const n = 100000
	for _, w := range Workloads() {
		g := MustNewGenerator(w, Uniform, 1000, 42)
		var reads, updates, inserts int
		for i := 0; i < n; i++ {
			switch g.Next().Kind {
			case Read:
				reads++
			case Update:
				updates++
			case Insert:
				inserts++
			}
		}
		wantR, wantU, wantI := Mix(w)
		checkFrac(t, w.String()+" reads", reads, n, wantR)
		checkFrac(t, w.String()+" updates", updates, n, wantU)
		checkFrac(t, w.String()+" inserts", inserts, n, wantI)
	}
}

func checkFrac(t *testing.T, name string, got, n int, want float64) {
	t.Helper()
	frac := float64(got) / float64(n)
	if math.Abs(frac-want) > 0.01 {
		t.Errorf("%s fraction = %.3f, want %.2f", name, frac, want)
	}
}

func TestUniformKeysCoverSpace(t *testing.T) {
	g := MustNewGenerator(C, Uniform, 100, 7)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Key >= 100 {
			t.Fatalf("key %d out of range", op.Key)
		}
		seen[op.Key] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform chooser covered only %d/100 keys", len(seen))
	}
}

func TestZipfianSkew(t *testing.T) {
	g := MustNewGenerator(C, Zipfian, 1000, 3)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// The hottest key should take far more than the uniform share, and the
	// top 10% of keys should dominate.
	if counts[0] < n/100 {
		t.Fatalf("key 0 count = %d; zipfian should be hot", counts[0])
	}
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/float64(n) < 0.5 {
		t.Fatalf("top-10%% keys got only %.1f%% of traffic", 100*float64(top)/float64(n))
	}
}

func TestInsertGrowsRecordSpace(t *testing.T) {
	g := MustNewGenerator(D, Uniform, 100, 5)
	before := g.Records()
	for i := 0; i < 10000; i++ {
		g.Next()
	}
	if g.Records() <= before {
		t.Fatal("workload D inserts must grow the record count")
	}
}

func TestLatestSkewsToNewRecords(t *testing.T) {
	g := MustNewGenerator(D, Latest, 10000, 9)
	var recent, total int
	for i := 0; i < 50000; i++ {
		op := g.Next()
		if op.Kind != Read {
			continue
		}
		total++
		if op.Key >= g.Records()-g.Records()/5 {
			recent++
		}
	}
	if frac := float64(recent) / float64(total); frac < 0.8 {
		t.Fatalf("latest distribution: only %.2f of reads in newest 20%%", frac)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	g1 := MustNewGenerator(A, Zipfian, 500, 11)
	g2 := MustNewGenerator(A, Zipfian, 500, 11)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}
