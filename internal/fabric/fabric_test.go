package fabric

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cxl"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/timing"
)

func star(hosts, expanders int) Topology {
	return Star(hosts, expanders, NodeSpec{}, NodeSpec{}, LinkSpec{})
}

func TestValidateErrors(t *testing.T) {
	h := NodeSpec{ID: "h0", Kind: Host}
	h1 := NodeSpec{ID: "h1", Kind: Host}
	sw := NodeSpec{ID: "sw0", Kind: Switch}
	d := NodeSpec{ID: "d0", Kind: Type2}
	x := NodeSpec{ID: "x0", Kind: Type3}
	cases := []struct {
		name string
		topo Topology
		want string
	}{
		{"empty", Topology{}, "no nodes"},
		{"dup id", Topology{Nodes: []NodeSpec{h, h}}, "duplicate node ID"},
		{"empty id", Topology{Nodes: []NodeSpec{{Kind: Host}}}, "empty ID"},
		{"dangling link", Topology{Nodes: []NodeSpec{h},
			Links: []LinkSpec{{A: "h0", B: "ghost"}}}, "undeclared node"},
		{"self link", Topology{Nodes: []NodeSpec{h},
			Links: []LinkSpec{{A: "h0", B: "h0"}}}, "self-link"},
		{"dup link", Topology{Nodes: []NodeSpec{h, d},
			Links: []LinkSpec{{A: "h0", B: "d0"}, {A: "d0", B: "h0"}}}, "duplicate link"},
		{"host-host", Topology{Nodes: []NodeSpec{h, h1},
			Links: []LinkSpec{{A: "h0", B: "h1"}}}, "host-host"},
		{"device-device", Topology{Nodes: []NodeSpec{x, {ID: "x1", Kind: Type3}},
			Links: []LinkSpec{{A: "x0", B: "x1"}}}, "device-device"},
		{"type2 on switch", Topology{Nodes: []NodeSpec{h, sw, d},
			Links: []LinkSpec{{A: "h0", B: "sw0"}, {A: "sw0", B: "d0"}}},
			"must attach directly to a host"},
		{"type3 two links", Topology{Nodes: []NodeSpec{h, sw, x},
			Links: []LinkSpec{{A: "h0", B: "sw0"}, {A: "sw0", B: "x0"}, {A: "h0", B: "x0"}}},
			"want exactly 1"},
		{"device no link", Topology{Nodes: []NodeSpec{h, d, x},
			Links: []LinkSpec{{A: "h0", B: "d0"}}}, "want exactly 1"},
		{"disconnected", Topology{Nodes: []NodeSpec{h, sw, h1, {ID: "sw1", Kind: Switch}},
			Links: []LinkSpec{{A: "h0", B: "sw0"}, {A: "h1", B: "sw1"}}}, "disconnected"},
		{"negative param", Topology{Nodes: []NodeSpec{h, d},
			Links: []LinkSpec{{A: "h0", B: "d0", OneWay: -1}}}, "negative parameter"},
	}
	for _, tc := range cases {
		err := tc.topo.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %q, want containing %q", tc.name, err, tc.want)
		}
	}
	if err := star(4, 2).Validate(); err != nil {
		t.Fatalf("Star(4,2).Validate() = %v", err)
	}
	if err := OneToOne(Type2, NodeSpec{}).Validate(); err != nil {
		t.Fatalf("OneToOne(Type2).Validate() = %v", err)
	}
}

func TestCanonicalKeyStable(t *testing.T) {
	p := timing.Default()

	// Zero-valued knobs key identically to their explicit defaults.
	implicit := star(2, 1)
	explicit := Star(2, 1,
		NodeSpec{LLCBytes: defaultLLCBytes, LLCWays: defaultLLCWays, Cores: defaultCores},
		NodeSpec{PortCredits: defaultPortCredits, Forward: defaultForward},
		LinkSpec{OneWay: p.CXL.OneWay, BytesPerSec: p.CXL.BytesPerSec, Credits: defaultLinkCredits})
	if a, b := implicit.CanonicalKey(p), explicit.CanonicalKey(p); a != b {
		t.Errorf("zero-knob key differs from explicit defaults:\n%s\n%s", a, b)
	}

	// Node order and link orientation are canonicalized away.
	shuffled := star(2, 1)
	shuffled.Nodes[0], shuffled.Nodes[len(shuffled.Nodes)-1] =
		shuffled.Nodes[len(shuffled.Nodes)-1], shuffled.Nodes[0]
	for i := range shuffled.Links {
		shuffled.Links[i].A, shuffled.Links[i].B = shuffled.Links[i].B, shuffled.Links[i].A
	}
	if a, b := star(2, 1).CanonicalKey(p), shuffled.CanonicalKey(p); a != b {
		t.Errorf("key depends on declaration order:\n%s\n%s", a, b)
	}

	// Changing a parameter changes the key.
	fat := star(2, 1)
	fat.Links[0].BytesPerSec = 2 * p.CXL.BytesPerSec
	if star(2, 1).CanonicalKey(p) == fat.CanonicalKey(p) {
		t.Error("key ignores link bandwidth")
	}
	narrow := star(2, 1)
	narrow.Nodes[0].PortCredits = 1
	if star(2, 1).CanonicalKey(p) == narrow.CanonicalKey(p) {
		t.Error("key ignores switch port credits")
	}
}

func TestOneToOneBuild(t *testing.T) {
	for _, kind := range []NodeKind{Type2, Type3} {
		f := MustBuild(OneToOne(kind, NodeSpec{LLCBytes: 8 << 20, LLCWays: 16, Cores: 8}), nil)
		h := f.Host("h0")
		d := f.Device("d0")
		if h == nil || d == nil || h.Dev != d {
			t.Fatalf("%v: OneToOne did not attach the device to the host", kind)
		}
		want := cxl.Type2
		if kind == Type3 {
			want = cxl.Type3
		}
		if d.Type() != want {
			t.Errorf("device type = %v, want %v", d.Type(), want)
		}
		if got := f.Hosts(); len(got) != 1 || got[0] != "h0" {
			t.Errorf("Hosts() = %v", got)
		}
		if len(f.Expanders()) != 0 {
			t.Errorf("OneToOne grew expanders: %v", f.Expanders())
		}
		if len(f.LinkStats()) != 0 {
			t.Errorf("direct attach should not create fabric links: %v", f.LinkStats())
		}
	}
}

func TestStarTransferAccounting(t *testing.T) {
	p := timing.Default()
	f := MustBuild(star(2, 1), p)
	if got := f.Expanders(); len(got) != 1 || got[0] != "x0" {
		t.Fatalf("Expanders() = %v", got)
	}

	// One read: header h0→sw0→x0, payload x0→sw0→h0.
	const n = 4096
	done := f.ReadShared("h0", "x0", n, 0)
	// Floor: two hops of propagation each way, switch forwarding on the
	// middle hops, memory service — strictly positive and well beyond the
	// four propagation delays alone.
	if floor := 4 * p.CXL.OneWay; done <= floor {
		t.Errorf("ReadShared completed at %v, faster than bare propagation %v", done, floor)
	}
	stats := f.LinkStats()
	byName := map[string]LinkStat{}
	for _, s := range stats {
		byName[s.Link] = s
	}
	h0 := byName["h0-sw0"] // A = h0: ABytes flows toward the switch
	x0 := byName["sw0-x0"] // A = sw0: ABytes flows toward the expander
	if h0.ABytes != hdrBytes || h0.BABytes != n {
		t.Errorf("h0-sw0 bytes = %d/%d, want %d/%d", h0.ABytes, h0.BABytes, hdrBytes, n)
	}
	if x0.ABytes != hdrBytes || x0.BABytes != n {
		t.Errorf("sw0-x0 bytes = %d/%d, want %d/%d", x0.ABytes, x0.BABytes, hdrBytes, n)
	}
	if other := byName["h1-sw0"]; other.ABytes != 0 || other.BABytes != 0 {
		t.Errorf("idle link h1-sw0 accounted traffic: %+v", other)
	}
	x := f.Expander("x0")
	if x.ReadBytes() != n || x.WriteBytes() != 0 {
		t.Errorf("expander bytes = %d read / %d written, want %d/0",
			x.ReadBytes(), x.WriteBytes(), n)
	}

	// A write adds payload toward the expander and a header ack back.
	f.WriteShared("h1", "x0", n, 0)
	for _, s := range f.LinkStats() {
		if s.Link == "sw0-x0" {
			x0 = s
		}
	}
	if x0.ABytes != hdrBytes+n || x0.BABytes != n+hdrBytes {
		t.Errorf("after write, sw0-x0 bytes = %d/%d, want %d/%d",
			x0.ABytes, x0.BABytes, hdrBytes+n, n+hdrBytes)
	}
	if x.WriteBytes() != n {
		t.Errorf("expander write bytes = %d, want %d", x.WriteBytes(), n)
	}
}

// randomSchedule drives a seeded random mix of shared reads and writes
// from every host against every expander and returns a stable rendering
// of all completion times plus the fabric's stats — the full observable
// surface the determinism and conservation properties quantify over.
func randomSchedule(seed int64, ops int) (render string, f *Fabric) {
	f = MustBuild(star(3, 2), nil)
	r := rng.New(seed)
	hosts, exps := f.Hosts(), f.Expanders()
	var b strings.Builder
	now := sim.Time(0)
	for i := 0; i < ops; i++ {
		now += sim.Time(r.Intn(200)) * sim.Nanosecond
		h := hosts[r.Intn(len(hosts))]
		x := exps[r.Intn(len(exps))]
		n := (1 + r.Intn(64)) * 64
		var done sim.Time
		if r.Intn(3) == 0 {
			done = f.WriteShared(h, x, n, now)
			fmt.Fprintf(&b, "w %s %s %d @%d -> %d\n", h, x, n, now, done)
		} else {
			done = f.ReadShared(h, x, n, now)
			fmt.Fprintf(&b, "r %s %s %d @%d -> %d\n", h, x, n, now, done)
		}
	}
	for _, s := range f.LinkStats() {
		fmt.Fprintf(&b, "link %s %d %d\n", s.Link, s.ABytes, s.BABytes)
	}
	for _, s := range f.PortStats() {
		fmt.Fprintf(&b, "port %s %s claims=%d peak=%d waited=%d\n",
			s.Switch, s.Link, s.Claims, s.PeakQueue, int64(s.Waited))
	}
	return b.String(), f
}

// TestBytesConserved is the conservation property: everything the hosts
// push into the switch comes back out of it — summed over links, bytes
// sent toward sw0 equal bytes sw0 sent onward — and per-endpoint totals
// match the request/response protocol exactly.
func TestBytesConserved(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		_, f := randomSchedule(seed, 400)
		var intoSw, outOfSw uint64
		for _, s := range f.LinkStats() {
			// Star orientation: host links are declared h*-sw0 (A = host),
			// expander links sw0-x* (A = sw0).
			if strings.HasSuffix(s.Link, "-sw0") {
				intoSw += s.ABytes
				outOfSw += s.BABytes
			} else {
				outOfSw += s.ABytes
				intoSw += s.BABytes
			}
		}
		if intoSw != outOfSw {
			t.Errorf("seed %d: %d bytes into the switch, %d out", seed, intoSw, outOfSw)
		}
		if intoSw == 0 {
			t.Errorf("seed %d: no traffic recorded", seed)
		}
		// Expander-side totals: payload bytes serviced at the expanders
		// equal the payload carried on the expander links.
		var svc, wire uint64
		for _, id := range f.Expanders() {
			svc += f.Expander(id).ReadBytes() + f.Expander(id).WriteBytes()
		}
		for _, s := range f.LinkStats() {
			if !strings.HasSuffix(s.Link, "-sw0") {
				wire += s.ABytes + s.BABytes
			}
		}
		claims := uint64(0)
		for _, ps := range f.PortStats() {
			claims += ps.Claims
		}
		// Each op crosses exactly two switch egress ports (one per
		// direction of the round trip) and carries exactly one header on
		// the expander link: a read's request, or a write's ack.
		if wire != svc+claims/2*hdrBytes {
			t.Errorf("seed %d: expander wire bytes %d != serviced %d + headers", seed, wire, svc)
		}
	}
}

// TestPortFIFOOrdering pins the switch arbitration discipline: with a
// single-credit egress port, transfers issued in time order complete in
// that order, and a re-run of the identical schedule reproduces identical
// timing and stats.
func TestPortFIFOOrdering(t *testing.T) {
	topo := Star(3, 1, NodeSpec{}, NodeSpec{PortCredits: 1}, LinkSpec{})
	f := MustBuild(topo, nil)
	var dones []sim.Time
	for i, h := range f.Hosts() {
		// Stagger by 1ns: h0 first, then h1, h2 — all while the port is busy.
		dones = append(dones, f.ReadShared(h, "x0", 1<<14, sim.Time(i)*sim.Nanosecond))
	}
	for i := 1; i < len(dones); i++ {
		if dones[i] <= dones[i-1] {
			t.Errorf("FIFO violated: transfer %d completed at %v, before %d at %v",
				i, dones[i], i-1, dones[i-1])
		}
	}
	for _, ps := range f.PortStats() {
		if ps.Link == "sw0-x0" && ps.Waited == 0 {
			t.Errorf("single-credit port toward x0 recorded no arbitration wait: %+v", ps)
		}
	}
}

// TestScheduleDeterministicAcrossWorkers is the satellite property test:
// the full observable surface of a fabric schedule — per-transfer
// completion times, per-link byte totals, per-port FIFO stats — renders
// byte-identically whether the schedules run serially or spread across a
// parallel worker pool, at workers 1, 2 and GOMAXPROCS, clean under
// -race.
func TestScheduleDeterministicAcrossWorkers(t *testing.T) {
	jobs := make([]runner.Job, 6)
	for i := range jobs {
		seed := int64(100 + i)
		jobs[i] = runner.Job{
			ID: fmt.Sprintf("sched-%d", i),
			Run: func(ctx *runner.Ctx) (any, error) {
				// Each job builds its own fabric: shared-nothing, so the
				// only way outputs can differ across worker counts is a
				// determinism bug in the fabric itself.
				render, _ := randomSchedule(seed^ctx.Seed, 150)
				return render, nil
			},
		}
	}
	var serial string
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		res := runner.Run(jobs, runner.Options{Workers: w})
		vals, err := runner.Values(res)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		var b strings.Builder
		for _, v := range vals {
			b.WriteString(v.(string))
		}
		if w == 1 {
			serial = b.String()
			continue
		}
		if b.String() != serial {
			t.Errorf("workers=%d renders different bytes than serial", w)
		}
	}
}

// TestPortContentionObservable: oversubscribing one egress port shows up
// in the stats — nonzero waiting and queue depth beyond the credit pool —
// while an amply-provisioned port stays quiet.
func TestPortContentionObservable(t *testing.T) {
	run := func(credits int) PortStat {
		topo := Star(3, 1, NodeSpec{}, NodeSpec{PortCredits: credits}, LinkSpec{})
		f := MustBuild(topo, nil)
		for i := 0; i < 8; i++ {
			for _, h := range f.Hosts() {
				f.ReadShared(h, "x0", 1<<13, 0)
			}
		}
		for _, ps := range f.PortStats() {
			if ps.Link == "sw0-x0" && ps.Switch == "sw0" {
				return ps
			}
		}
		t.Fatal("no port stat for sw0-x0")
		return PortStat{}
	}
	tight := run(2)
	ample := run(64)
	if tight.Waited == 0 || tight.PeakQueue <= 2 {
		t.Errorf("tight port shows no contention: %+v", tight)
	}
	if ample.Waited >= tight.Waited {
		t.Errorf("ample port waited %v, not less than tight %v", ample.Waited, tight.Waited)
	}
}

func TestPathRouting(t *testing.T) {
	f := MustBuild(star(2, 2), nil)
	// Two hops host→expander; payload accounted once per hop.
	f.Transfer("h0", "x1", 128, 0)
	var hops int
	for _, s := range f.LinkStats() {
		hops += int((s.ABytes + s.BABytes) / 128)
	}
	if hops != 2 {
		t.Errorf("h0→x1 crossed %d links, want 2", hops)
	}
	defer func() {
		if recover() == nil {
			t.Error("Transfer to unknown node did not panic")
		}
	}()
	f.Transfer("h0", "nope", 64, 0)
}
