package fabric

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Conservative parallel discrete-event simulation (PDES) over the
// fabric graph. The topology is partitioned structurally: every host
// node is its own shard (together with any directly attached device,
// which rides the host's home agent and shares its engine), and the
// switch fabric plus all switch-attached expanders form the hub shard.
// Each shard owns a private sim.Engine; shards interact only through
// typed messages that cross a fabric link, and every fabric link has a
// nonzero one-way propagation latency (LinkSpec normalization
// substitutes the calibrated CXL latency for zero), so the lookahead
// that makes conservative execution safe is structural, not heuristic.
// A zero-latency link would force its endpoints into one shard; since
// normalization makes that unexpressible, Build rejects the case
// outright rather than silently merging.
//
// # Safety
//
// Shard r may execute events strictly before
//
//	W_r = min( min_{j≠r}( eff_j + dist(j,r) ),  mp_r,  N_r + rt_r )
//
// where eff_j = min(N_j, mp_j): N_j is shard j's published activation
// (next pending event time) and mp_j the minimum delivery time over
// unprocessed messages sitting in j's mailboxes — a peer's pending
// input bounds what it can still emit exactly like its pending events
// do. dist is the all-pairs shortest-path metric over link one-way
// latencies; mp_r (distance zero) keeps r from outrunning its own
// inbound mail; and rt_r = min_k(dist(r,k)+dist(k,r)) bounds echoes of
// the sends r itself is about to make this window, which no mailbox or
// activation can reflect yet.
//
// Every future message into r is the tail of a causal chain, and at any
// wall-clock instant the chain's earliest unprocessed stage is visible
// somewhere: still unemitted inside a sender mid-window (whose
// published N is its pre-window value — Send's emission times can't
// precede it), queued in a mailbox (mp), or drained into an engine
// (drain lowers the published N before clearing mp, so the protection
// never gaps). windowFor reads in an order that rides that baton: every
// activation once, then the mailboxes, then the activations again —
// with sequentially consistent atomics, whichever stage the chain
// occupies when the reads happen, one read catches it, and each hop to
// r adds at least dist of slack. Stale values only err low, which only
// shrinks windows. The strict `<` bound (sim.RunWindow) covers exact
// equality.
//
// # Determinism
//
// Window placement depends on scheduling, so the same events can be
// delivered into a shard's engine at different wall-clock moments on
// different runs. Dispatch order still cannot vary: every event carries
// a (when, srcShard<<SourceShift|srcSeq) key — locals tagged by their
// own engine (sim.SetSourceID), messages tagged by the sender at send
// time (Shard.Send) — and the engine heap dispatches in key order. Any
// safe window schedule therefore dispatches each engine's events in one
// fixed sequence, making a sharded run byte-identical to the inline
// single-goroutine run, whatever the worker count.

// shardMsg is one cross-shard event in flight.
type shardMsg struct {
	when sim.Time
	key  uint64
	fn   func(any)
	arg  any
}

// mailbox is a single-producer single-consumer queue from one source
// shard into one destination shard. hasMail lets the receiver skip the
// lock on the (overwhelmingly common) empty poll; spare recycles the
// drained backing array so steady-state messaging does not allocate.
type mailbox struct {
	hasMail atomic.Bool
	// minPending is the earliest delivery time among queued messages
	// (Forever when empty): the channel clock peers fold into their
	// window bound so in-flight mail is never outrun. Updated under mu,
	// read lock-free by windowFor.
	minPending atomic.Int64
	mu         sync.Mutex
	q          []shardMsg
	spare      []shardMsg
}

// Shard is one partition of the fabric simulation: a private engine, the
// nodes that live on it, and inboxes from every peer shard.
type Shard struct {
	set   *ShardSet
	id    int
	eng   *sim.Engine
	nodes []string
	inbox []mailbox // indexed by source shard; inbox[id] unused
	// out is the per-sender message sequence, the srcSeq half of the
	// deterministic merge key. It advances only inside this shard's own
	// event processing, so it is as deterministic as the event order.
	out uint64
	// nextAt is the shard's published activation time N (int64 of
	// sim.Time): the earliest instant it could dispatch an event absent
	// new messages. Peers fold it into their window bound.
	nextAt atomic.Int64
	// idle mirrors "engine drained" for termination detection. drain
	// clears it before acknowledging a delivery (inflight decrement), so
	// a scanner that reads inflight==0 cannot also read a stale idle=true
	// for a shard that just received work.
	idle atomic.Bool
	// preAct is windowFor's per-shard scratch for the first activation
	// read pass (only this shard's worker touches it).
	preAct []sim.Time
}

// ID returns the shard's index within its ShardSet.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's private event engine.
func (s *Shard) Engine() *sim.Engine { return s.eng }

// Nodes lists the topology nodes resident on this shard, hub nodes in
// declaration order.
func (s *Shard) Nodes() []string { return s.nodes }

// Send delivers fn(arg) into shard dst at when plus the inter-shard
// link distance, carrying this shard's (id, seq) merge key so the
// receiver dispatches it in a schedule-independent position. It must be
// called from within this shard's own event processing (or before the
// run starts), and `when` — the modeled emission time — must not
// precede the shard's clock. Sending to the own shard is a plain local
// schedule: co-resident interaction has no link to cross.
func (s *Shard) Send(dst int, when sim.Time, fn func(any), arg any) {
	if now := s.eng.Now(); when < now {
		panic(fmt.Sprintf("fabric: shard %d sends at %v before now %v", s.id, when, now))
	}
	if dst == s.id {
		s.eng.AtCall(when, fn, arg)
		return
	}
	set := s.set
	deliver := satAdd(when, set.dist[s.id][dst])
	s.out++
	m := shardMsg{when: deliver, key: uint64(s.id)<<sim.SourceShift | s.out, fn: fn, arg: arg}
	set.inflight.Add(1)
	b := &set.shards[dst].inbox[s.id]
	b.mu.Lock()
	b.q = append(b.q, m)
	if int64(deliver) < b.minPending.Load() {
		b.minPending.Store(int64(deliver))
	}
	b.mu.Unlock()
	b.hasMail.Store(true)
}

// Dist returns the minimum cross-shard latency from src to dst — the
// message delivery distance Send applies.
func (ss *ShardSet) Dist(src, dst int) sim.Time { return ss.dist[src][dst] }

// drain moves every queued inbound message into the engine, keyed so the
// heap merges it deterministically. Reports whether anything arrived.
func (s *Shard) drain() bool {
	any := false
	for i := range s.inbox {
		b := &s.inbox[i]
		// Load before Store: the empty poll is the common case by far and
		// a read keeps the cache line shared instead of bouncing it.
		if !b.hasMail.Load() {
			continue
		}
		b.hasMail.Store(false)
		b.mu.Lock()
		msgs := b.q
		b.q = b.spare[:0]
		if len(msgs) == 0 {
			b.mu.Unlock()
			b.spare = msgs
			continue
		}
		lo := sim.Forever
		for _, m := range msgs {
			s.eng.AtCallTagged(m.when, m.key, m.fn, m.arg)
			if m.when < lo {
				lo = m.when
			}
		}
		// Hand the messages' window protection from the mailbox to the
		// published activation before clearing the channel clock: a peer
		// that misses minPending then reads nextAt after it, and one of
		// the two always carries the bound.
		if cur := s.nextAt.Load(); int64(lo) < cur {
			s.nextAt.Store(int64(lo))
		}
		b.minPending.Store(int64(sim.Forever))
		b.mu.Unlock()
		any = true
		// Order matters for termination detection: mark the shard busy
		// before the messages stop counting as in flight.
		s.idle.Store(false)
		s.set.inflight.Add(-int64(len(msgs)))
		for j := range msgs {
			msgs[j] = shardMsg{} // drop fn/arg references
		}
		b.spare = msgs[:0]
	}
	return any
}

// step runs one scheduling round: drain inbound messages, execute the
// window the peers' published activations allow, publish our own.
// Reports whether any work was done.
func (s *Shard) step() bool {
	progressed := s.drain()
	next := s.eng.NextEventAt()
	if next < sim.Forever {
		if w := s.set.windowFor(s.id, next); next < w {
			s.eng.RunWindow(w)
			progressed = true
			next = s.eng.NextEventAt()
		}
	}
	if next == sim.Forever {
		s.idle.Store(true)
	}
	// Publish after any sends from the window above are enqueued: a peer
	// that reads the new activation must be able to see the messages it
	// promises (both stores are sequentially consistent atomics).
	s.nextAt.Store(int64(next))
	return progressed
}

// ShardSet is the sharded execution of one fabric simulation.
type ShardSet struct {
	f       *Fabric
	workers int
	shards  []*Shard
	byNode  map[string]int
	dist    [][]sim.Time
	rt      []sim.Time // cheapest self round trip per shard

	inflight atomic.Int64
	done     atomic.Bool
	failMu   sync.Mutex
	failVal  any
	failed   bool
}

// NumShards reports the shard count of the partition.
func (ss *ShardSet) NumShards() int { return len(ss.shards) }

// Workers reports the worker-goroutine budget given to Shards().
func (ss *ShardSet) Workers() int { return ss.workers }

// Shard returns shard i.
func (ss *ShardSet) Shard(i int) *Shard { return ss.shards[i] }

// NodeShard reports which shard a topology node resides on.
func (ss *ShardSet) NodeShard(id string) int {
	s, ok := ss.byNode[id]
	if !ok {
		panic(fmt.Sprintf("fabric: no node %q in shard partition", id))
	}
	return s
}

// newShardSet partitions the compiled fabric.
func newShardSet(f *Fabric, workers int) (*ShardSet, error) {
	ss := &ShardSet{f: f, workers: workers, byNode: map[string]int{}}

	// Hub shard first (switches and their expanders), if the topology has
	// one; then one shard per host in declaration order. Directly
	// attached devices co-reside with their host: they ride the host's
	// home agent, a zero-latency interaction by construction.
	hubNodes := []string{}
	for _, n := range f.topo.Nodes {
		if k := f.kinds[n.ID]; k == Switch {
			hubNodes = append(hubNodes, n.ID)
		}
	}
	for _, l := range f.topo.Links {
		ka, kb := f.kinds[l.A], f.kinds[l.B]
		if ka == Switch && kb == Type3 {
			hubNodes = append(hubNodes, l.B)
		}
		if kb == Switch && ka == Type3 {
			hubNodes = append(hubNodes, l.A)
		}
	}
	addShard := func(eng *sim.Engine, nodes []string) *Shard {
		s := &Shard{set: ss, id: len(ss.shards), eng: eng, nodes: nodes}
		for _, id := range nodes {
			ss.byNode[id] = s.id
		}
		ss.shards = append(ss.shards, s)
		return s
	}
	if len(hubNodes) > 0 {
		// The hub owns the fabric's original engine: links, ports and
		// expanders were compiled against it.
		addShard(f.eng, hubNodes)
	}
	for _, h := range f.hostIDs {
		nodes := []string{h}
		for _, l := range f.topo.Links {
			ka, kb := f.kinds[l.A], f.kinds[l.B]
			if l.A == h && (kb == Type2 || kb == Type3) {
				nodes = append(nodes, l.B)
			}
			if l.B == h && (ka == Type2 || ka == Type3) {
				nodes = append(nodes, l.A)
			}
		}
		if len(ss.shards) == 0 {
			addShard(f.eng, nodes) // no hub: the lone host shard drives f.eng
		} else {
			addShard(sim.NewEngine(), nodes)
		}
	}
	for i, s := range ss.shards {
		s.eng.SetSourceID(i)
		s.inbox = make([]mailbox, len(ss.shards))
		for j := range s.inbox {
			s.inbox[j].minPending.Store(int64(sim.Forever))
		}
		s.preAct = make([]sim.Time, len(ss.shards))
	}

	n := len(ss.shards)
	// Inter-shard distances: shortest path over fabric-link one-way
	// latencies (Floyd–Warshall; n is hosts+1). The metric closure is
	// what lets the window bound cover multi-hop causal chains with a
	// single term per origin shard.
	ss.dist = make([][]sim.Time, n)
	for i := range ss.dist {
		ss.dist[i] = make([]sim.Time, n)
		for j := range ss.dist[i] {
			if i != j {
				ss.dist[i][j] = sim.Forever
			}
		}
	}
	for _, fl := range f.links {
		a, b := ss.byNode[fl.a], ss.byNode[fl.b]
		if a == b {
			continue
		}
		if fl.spec.OneWay <= 0 {
			// Unreachable today — normalization defaults zero to the
			// calibrated CXL latency — but the invariant the whole scheme
			// rests on deserves an explicit guard: a zero-latency
			// cross-shard link would mean zero lookahead.
			return nil, fmt.Errorf("fabric: link %s crosses shards with zero latency; endpoints must co-reside", fl.name())
		}
		if ow := fl.spec.OneWay; ow < ss.dist[a][b] {
			ss.dist[a][b] = ow
			ss.dist[b][a] = ow
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v := satAdd(ss.dist[i][k], ss.dist[k][j]); v < ss.dist[i][j] {
					ss.dist[i][j] = v
				}
			}
		}
	}
	ss.rt = make([]sim.Time, n)
	for i := 0; i < n; i++ {
		ss.rt[i] = sim.Forever
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			if v := satAdd(ss.dist[i][k], ss.dist[k][i]); v < ss.rt[i] {
				ss.rt[i] = v
			}
		}
	}
	return ss, nil
}

// windowFor computes the conservative execution bound for shard dst
// whose own next pending event is at selfNext. The read order is load
// bearing (see the Safety note): all published activations first, then
// each peer's mailboxes, then its activation again — a message's
// protection moves activation→mailbox→activation as it is emitted,
// queued and drained, and this order catches it at every stage.
func (ss *ShardSet) windowFor(dst int, selfNext sim.Time) sim.Time {
	shards := ss.shards
	self := shards[dst]
	pre := self.preAct
	for j, s := range shards {
		pre[j] = sim.Time(s.nextAt.Load())
	}
	w := satAdd(selfNext, ss.rt[dst])
	// Mail already bound for dst needs no distance: it delivers here.
	for i := range self.inbox {
		if mp := sim.Time(self.inbox[i].minPending.Load()); mp < w {
			w = mp
		}
	}
	for j, s := range shards {
		if j == dst {
			continue
		}
		eff := pre[j]
		for i := range s.inbox {
			if mp := sim.Time(s.inbox[i].minPending.Load()); mp < eff {
				eff = mp
			}
		}
		if a := sim.Time(s.nextAt.Load()); a < eff {
			eff = a
		}
		if v := satAdd(eff, ss.dist[j][dst]); v < w {
			w = v
		}
	}
	return w
}

// Run executes every shard to quiescence with up to `workers` OS
// goroutines (clamped to the shard count; <=1 runs inline on the
// calling goroutine). Rendered output is byte-identical whatever the
// worker count — see the determinism note at the top of the file. A
// panic inside any shard's event processing is re-raised on the caller.
func (ss *ShardSet) Run(workers int) {
	if ss.done.Load() {
		panic("fabric: ShardSet.Run called twice")
	}
	if workers > len(ss.shards) {
		workers = len(ss.shards)
	}
	if workers <= 1 {
		ss.runInline()
		ss.done.Store(true)
		return
	}
	ss.runParallel(workers)
	ss.done.Store(true)
	if ss.failed {
		panic(ss.failVal)
	}
}

// runInline is the exact sequential schedule: always run the globally
// earliest pending timestamp. It needs no window arithmetic — it IS the
// single-engine order, just spread over per-shard heaps.
func (ss *ShardSet) runInline() {
	// Inline execution keeps every shard's published activation exact:
	// publish after each window, and drain (which lowers the receiver's
	// activation on delivery) after every batch of sends. windowFor then
	// sees the same picture a fully synchronized parallel run would.
	for _, s := range ss.shards {
		s.drain()
		s.nextAt.Store(int64(s.eng.NextEventAt()))
	}
	for {
		best := -1
		bt := sim.Forever
		for _, s := range ss.shards {
			if t := sim.Time(s.nextAt.Load()); t < bt {
				bt = t
				best = s.id
			}
		}
		if best < 0 {
			return
		}
		// Run the picked shard as far as its conservative window allows
		// (at minimum the one timestamp batch at bt): peers are idle, so
		// the window is exact, and batching amortizes the drain/scan loop
		// over every event the shard can safely absorb.
		w := ss.windowFor(best, bt)
		if w <= bt {
			w = bt + 1
		}
		s := ss.shards[best]
		s.eng.RunWindow(w)
		s.nextAt.Store(int64(s.eng.NextEventAt()))
		for _, p := range ss.shards {
			p.drain()
		}
	}
}

func (ss *ShardSet) runParallel(workers int) {
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		var mine []*Shard
		for i := k; i < len(ss.shards); i += workers {
			mine = append(mine, ss.shards[i])
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					ss.fail(r)
				}
			}()
			for !ss.done.Load() {
				progressed := false
				for _, s := range mine {
					if s.step() {
						progressed = true
					}
				}
				if !progressed {
					if ss.checkDone() {
						return
					}
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
}

// fail records the first shard panic and stops every worker.
func (ss *ShardSet) fail(r any) {
	ss.failMu.Lock()
	if !ss.failed {
		ss.failed = true
		ss.failVal = r
	}
	ss.failMu.Unlock()
	ss.done.Store(true)
}

// checkDone detects quiescence: every shard idle and no message in
// flight. The double scan plus the ordering discipline in drain (busy
// mark before inflight decrement) makes a false positive impossible:
// any message unaccounted for at the first scan is either still in
// flight (inflight > 0) or already inside an engine whose shard was
// marked busy before the decrement became visible.
func (ss *ShardSet) checkDone() bool {
	scan := func() bool {
		if ss.inflight.Load() != 0 {
			return false
		}
		for _, s := range ss.shards {
			if !s.idle.Load() {
				return false
			}
		}
		return true
	}
	if scan() && scan() {
		ss.done.Store(true)
		return true
	}
	return false
}

// satAdd adds two times, saturating at Forever.
func satAdd(a, b sim.Time) sim.Time {
	if a == sim.Forever || b == sim.Forever {
		return sim.Forever
	}
	if s := a + b; s >= a {
		return s
	}
	return sim.Forever
}
