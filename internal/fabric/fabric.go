package fabric

import (
	"fmt"

	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/sim"
	"repro/internal/timing"
)

// hdrBytes is the protocol-header payload of a request/completion flit
// that carries no data (read requests, write acknowledgements).
const hdrBytes = 64

// edge direction indices: 0 sends A→B, 1 sends B→A (mirroring
// interconnect.Dir's down/up).
const (
	dirAB = 0
	dirBA = 1
)

// flink is a compiled fabric link: per-direction serialization
// (bandwidth), bounded outstanding credits, byte accounting, and — when
// the sending endpoint of a direction is a switch — the egress port that
// arbitrates access to the wire.
type flink struct {
	spec    LinkSpec // normalized
	a, b    string
	dirs    [2]*sim.Resource
	credits [2]*sim.Credits
	bytes   [2]uint64
	ports   [2]*port

	// occN/occT memoize the last wire-occupancy computation: transfers
	// overwhelmingly repeat the same payload size (KV block or line), and
	// the float round trip in timing.Serialize shows up on the serving
	// hot path. Links are driven from a single shard's engine, so a
	// one-entry cache needs no synchronization.
	occN int
	occT sim.Time
}

// occ returns the wire occupancy of n payload bytes on this link.
func (l *flink) occ(n int) sim.Time {
	if n != l.occN {
		l.occN = n
		l.occT = timing.Serialize(n, l.spec.BytesPerSec)
	}
	return l.occT
}

func (l *flink) name() string { return l.a + "-" + l.b }

// port is one switch egress port: a bounded FIFO over the Credits
// primitive. Transfers acquire a slot before touching the wire; when all
// slots are held the acquire is delayed to the earliest completion, in
// arrival (call) order — deterministic FIFO arbitration. The stats make
// congestion observable: Waited accumulates arbitration delay, PeakQueue
// is the largest in-flight depth seen at a claim.
type port struct {
	sw, link string
	credits  *sim.Credits
	forward  sim.Time
	claims   uint64
	waited   sim.Time
	peakQ    int
}

// claim admits a transfer arriving at the port at now; the returned time
// is when the transfer may start on the wire (after arbitration and the
// switch's store-and-forward latency). release must be called with the
// transfer's wire completion time.
func (p *port) claim(now sim.Time) sim.Time {
	// Transfers still in flight at now, plus this one, is the queue depth
	// an observer would see at the port. Credits.InFlightAt answers that
	// exactly — including slots an exhausted Acquire consumed early — so
	// the port no longer shadows the pool with its own completion ring.
	if d := p.credits.InFlightAt(now) + 1; d > p.peakQ {
		p.peakQ = d
	}
	start := p.credits.Acquire(now)
	p.waited += start - now
	p.claims++
	return start + p.forward
}

func (p *port) release(done sim.Time) {
	p.credits.Complete(done)
}

// Expander is a compiled switch-attached Type-3 node: pooled memory every
// host on the fabric reaches through Transfer. Its controller is one
// serialized DDR5 channel, so expander bandwidth saturates independently
// of the links feeding it.
type Expander struct {
	id                   string
	mem                  *sim.Resource
	readLat, writeLat    sim.Time
	bytesPerSec          float64
	readBytes, writeByte uint64
}

// ID returns the expander's node ID.
func (x *Expander) ID() string { return x.id }

// ReadBytes and WriteBytes report serviced payload volume.
func (x *Expander) ReadBytes() uint64  { return x.readBytes }
func (x *Expander) WriteBytes() uint64 { return x.writeByte }

// service runs one access of n payload bytes through the expander's
// memory controller and returns the completion time.
func (x *Expander) service(n int, now sim.Time, write bool) sim.Time {
	lat := x.readLat
	if write {
		lat = x.writeLat
		x.writeByte += uint64(n)
	} else {
		x.readBytes += uint64(n)
	}
	occ := lat + timing.Serialize(n, x.bytesPerSec)
	return x.mem.Claim(now, occ) + occ
}

// pathHop is one compiled routing step: send over l in direction d.
type pathHop struct {
	l *flink
	d int
}

// adjEdge is one adjacency entry, in Links declaration order (which makes
// BFS route resolution deterministic).
type adjEdge struct {
	peer string
	l    *flink
	d    int
}

// Fabric is a compiled topology: every node wired into live simulation
// components sharing one sim.Engine.
type Fabric struct {
	p    *timing.Params
	topo Topology
	eng  *sim.Engine

	kinds     map[string]NodeKind
	hosts     map[string]*host.Host
	devices   map[string]*device.Device
	expanders map[string]*Expander
	links     []*flink
	adj       map[string][]adjEdge
	paths     map[[2]string][]pathHop

	hostIDs, expanderIDs []string

	shards *ShardSet
}

// Option tunes Build beyond topology and timing.
type Option func(*buildOptions)

type buildOptions struct {
	shardWorkers int
}

// Shards enables sharded conservative-PDES execution with up to n worker
// goroutines (n <= 0 is treated as 1; execution is inline on the calling
// goroutine at 1). The topology is partitioned structurally — every host
// becomes its own shard, the switch fabric and expanders form the hub
// shard, and zero-latency links force co-residency — and ShardSet
// exposes the per-shard engines and deterministic cross-shard messaging.
// Whatever n, a run renders byte-identical output (see ShardSet).
func Shards(n int) Option {
	return func(o *buildOptions) { o.shardWorkers = n }
}

// Build validates topo and compiles it into a Fabric under the timing
// model p (nil takes the calibrated defaults). Direct host–device links
// use the host's built-in calibrated CXL attach path (exactly what the
// single-rig experiments always measured); host–switch, switch–switch
// and switch–expander links compile to fabric links with the LinkSpec's
// (defaulted) parameters.
func Build(topo Topology, p *timing.Params, opts ...Option) (*Fabric, error) {
	var bo buildOptions
	for _, o := range opts {
		o(&bo)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		p = timing.Default()
	}
	f := &Fabric{
		p:         p,
		topo:      topo,
		eng:       sim.NewEngine(),
		kinds:     make(map[string]NodeKind, len(topo.Nodes)),
		hosts:     map[string]*host.Host{},
		devices:   map[string]*device.Device{},
		expanders: map[string]*Expander{},
		adj:       map[string][]adjEdge{},
		paths:     map[[2]string][]pathHop{},
	}
	swSpec := map[string]NodeSpec{}
	for _, n := range topo.Nodes {
		n = n.normalized()
		f.kinds[n.ID] = n.Kind
		switch n.Kind {
		case Host:
			h, err := host.New(p, host.Config{LLCBytes: n.LLCBytes, LLCWays: n.LLCWays, Cores: n.Cores})
			if err != nil {
				return nil, fmt.Errorf("fabric: node %q: %w", n.ID, err)
			}
			f.hosts[n.ID] = h
			f.hostIDs = append(f.hostIDs, n.ID)
		case Switch:
			swSpec[n.ID] = n
		}
	}
	for _, l := range topo.Links {
		ka, kb := f.kinds[l.A], f.kinds[l.B]
		// Direct host–device attach: the device rides the host's home
		// agent and calibrated CXL link; no fabric link is created.
		if ka == Host && (kb == Type2 || kb == Type3) {
			if err := f.attach(l.A, l.B, kb); err != nil {
				return nil, err
			}
			continue
		}
		if kb == Host && (ka == Type2 || ka == Type3) {
			if err := f.attach(l.B, l.A, ka); err != nil {
				return nil, err
			}
			continue
		}
		spec := l.normalized(p)
		fl := &flink{spec: spec, a: l.A, b: l.B}
		for d := 0; d < 2; d++ {
			dirName := fl.name() + [2]string{".ab", ".ba"}[d]
			fl.dirs[d] = sim.NewResource(dirName)
			fl.credits[d] = sim.NewCredits(dirName+".cr", spec.Credits)
		}
		// Egress ports: one per direction whose sender is a switch.
		if ka == Switch {
			s := swSpec[l.A]
			fl.ports[dirAB] = &port{sw: l.A, link: fl.name(), forward: s.Forward,
				credits: sim.NewCredits(fl.name()+".port", s.PortCredits)}
		}
		if kb == Switch {
			s := swSpec[l.B]
			fl.ports[dirBA] = &port{sw: l.B, link: fl.name(), forward: s.Forward,
				credits: sim.NewCredits(fl.name()+".port", s.PortCredits)}
		}
		f.links = append(f.links, fl)
		f.adj[l.A] = append(f.adj[l.A], adjEdge{peer: l.B, l: fl, d: dirAB})
		f.adj[l.B] = append(f.adj[l.B], adjEdge{peer: l.A, l: fl, d: dirBA})
		// A switch-attached Type-3 node compiles to a shared expander.
		for _, end := range []struct {
			id   string
			kind NodeKind
		}{{l.A, ka}, {l.B, kb}} {
			if end.kind == Type3 {
				f.expanders[end.id] = &Expander{
					id:          end.id,
					mem:         sim.NewResource(end.id + ".mem"),
					readLat:     p.DRAM.DDR5Read,
					writeLat:    p.DRAM.DDR5Write,
					bytesPerSec: p.DRAM.ChannelBytesPerSec,
				}
				f.expanderIDs = append(f.expanderIDs, end.id)
			}
		}
	}
	if bo.shardWorkers > 0 {
		ss, err := newShardSet(f, bo.shardWorkers)
		if err != nil {
			return nil, err
		}
		f.shards = ss
	}
	return f, nil
}

// MustBuild is Build for static topologies.
func MustBuild(topo Topology, p *timing.Params, opts ...Option) *Fabric {
	f, err := Build(topo, p, opts...)
	if err != nil {
		panic(err)
	}
	return f
}

// ShardSet returns the sharded-execution state, or nil when the fabric
// was built without the Shards option.
func (f *Fabric) ShardSet() *ShardSet { return f.shards }

// attach wires a directly-linked CXL device onto its host.
func (f *Fabric) attach(hostID, devID string, kind NodeKind) error {
	h := f.hosts[hostID]
	if h.Dev != nil {
		return fmt.Errorf("fabric: host %q already has a directly attached device", hostID)
	}
	cfg := device.DefaultConfig()
	if kind == Type3 {
		cfg.Type = cxl.Type3
	} else {
		cfg.Type = cxl.Type2
	}
	d, err := h.Attach(cfg)
	if err != nil {
		return fmt.Errorf("fabric: attach %q to %q: %w", devID, hostID, err)
	}
	f.devices[devID] = d
	return nil
}

// Engine returns the fabric's shared event engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Params returns the timing model the fabric was compiled under.
func (f *Fabric) Params() *timing.Params { return f.p }

// Topology returns the compiled topology.
func (f *Fabric) Topology() Topology { return f.topo }

// Host returns the compiled host for a Host node.
func (f *Fabric) Host(id string) *host.Host {
	h, ok := f.hosts[id]
	if !ok {
		panic(fmt.Sprintf("fabric: no host node %q", id))
	}
	return h
}

// Device returns the attached device of a directly-linked Type2/Type3
// node.
func (f *Fabric) Device(id string) *device.Device {
	d, ok := f.devices[id]
	if !ok {
		panic(fmt.Sprintf("fabric: no directly attached device node %q", id))
	}
	return d
}

// Expander returns the compiled shared expander of a switch-attached
// Type3 node.
func (f *Fabric) Expander(id string) *Expander {
	x, ok := f.expanders[id]
	if !ok {
		panic(fmt.Sprintf("fabric: no expander node %q", id))
	}
	return x
}

// Hosts lists host node IDs in declaration order; Expanders lists
// switch-attached Type3 node IDs in link-declaration order.
func (f *Fabric) Hosts() []string     { return f.hostIDs }
func (f *Fabric) Expanders() []string { return f.expanderIDs }

// path resolves (and caches) the route from one node to another: BFS over
// the fabric links in declaration order, so route choice is deterministic
// and minimal-hop.
func (f *Fabric) path(from, to string) []pathHop {
	if from == to {
		panic(fmt.Sprintf("fabric: path %q to itself", from))
	}
	key := [2]string{from, to}
	if p, ok := f.paths[key]; ok {
		return p
	}
	if _, ok := f.kinds[from]; !ok {
		panic(fmt.Sprintf("fabric: unknown node %q", from))
	}
	if _, ok := f.kinds[to]; !ok {
		panic(fmt.Sprintf("fabric: unknown node %q", to))
	}
	type visit struct {
		prev string
		hop  pathHop
	}
	visited := map[string]visit{from: {}}
	queue := []string{from}
	for len(queue) > 0 && visited[to].prev == "" && to != from {
		id := queue[0]
		queue = queue[1:]
		for _, e := range f.adj[id] {
			if _, ok := visited[e.peer]; ok {
				continue
			}
			visited[e.peer] = visit{prev: id, hop: pathHop{l: e.l, d: e.d}}
			queue = append(queue, e.peer)
		}
	}
	if _, ok := visited[to]; !ok {
		panic(fmt.Sprintf("fabric: no fabric route %s -> %s", from, to))
	}
	var rev []pathHop
	for id := to; id != from; id = visited[id].prev {
		rev = append(rev, visited[id].hop)
	}
	hops := make([]pathHop, len(rev))
	for i := range rev {
		hops[i] = rev[len(rev)-1-i]
	}
	f.paths[key] = hops
	return hops
}

// sendHop moves n payload bytes over one link hop starting no earlier
// than now: switch egress arbitration (when the sender is a switch),
// link credits, wire serialization, propagation.
func (f *Fabric) sendHop(h pathHop, n int, now sim.Time) sim.Time {
	t := now
	p := h.l.ports[h.d]
	if p != nil {
		t = p.claim(t)
	}
	cstart := h.l.credits[h.d].Acquire(t)
	occ := h.l.occ(n)
	start := h.l.dirs[h.d].Claim(cstart, occ)
	done := start + occ + h.l.spec.OneWay
	h.l.credits[h.d].Complete(done)
	h.l.bytes[h.d] += uint64(n)
	if p != nil {
		p.release(done)
	}
	return done
}

// Transfer moves n payload bytes from node `from` to node `to` along the
// compiled route, claiming every link and switch port on the way, and
// returns the delivery time. Congestion emerges: concurrent transfers
// through a shared switch port or link direction queue behind each other
// exactly as the Credits/Resource primitives dictate.
func (f *Fabric) Transfer(from, to string, n int, now sim.Time) sim.Time {
	t := now
	for _, h := range f.path(from, to) {
		t = f.sendHop(h, n, t)
	}
	return t
}

// ReadShared reads n bytes of a switch-attached expander's memory from a
// host: a header-only request rides the fabric to the expander, the
// expander's controller services the read, and the data returns over the
// reverse path. The returned time is data arrival at the host.
func (f *Fabric) ReadShared(hostID, expID string, n int, now sim.Time) sim.Time {
	x := f.Expander(expID)
	arrive := f.Transfer(hostID, expID, hdrBytes, now)
	ready := x.service(n, arrive, false)
	return f.Transfer(expID, hostID, n, ready)
}

// WriteShared writes n bytes from a host into a switch-attached
// expander's memory; the returned time is acknowledgement arrival back at
// the host.
func (f *Fabric) WriteShared(hostID, expID string, n int, now sim.Time) sim.Time {
	x := f.Expander(expID)
	arrive := f.Transfer(hostID, expID, n, now)
	done := x.service(n, arrive, true)
	return f.Transfer(expID, hostID, hdrBytes, done)
}

// LinkStat is one fabric link's accounted traffic. AB counts bytes sent
// from the link's declared A endpoint toward B; BA the reverse.
type LinkStat struct {
	Link            string
	ABytes, BABytes uint64
}

// LinkStats reports per-link payload traffic in link declaration order.
func (f *Fabric) LinkStats() []LinkStat {
	stats := make([]LinkStat, len(f.links))
	for i, l := range f.links {
		stats[i] = LinkStat{Link: l.name(), ABytes: l.bytes[dirAB], BABytes: l.bytes[dirBA]}
	}
	return stats
}

// PortStat is one switch egress port's arbitration record.
type PortStat struct {
	Switch, Link string
	Claims       uint64
	PeakQueue    int
	Waited       sim.Time
}

// PortStats reports switch egress-port arbitration stats in link
// declaration order (at most one port per link direction).
func (f *Fabric) PortStats() []PortStat {
	var stats []PortStat
	for _, l := range f.links {
		for d := 0; d < 2; d++ {
			if p := l.ports[d]; p != nil {
				stats = append(stats, PortStat{Switch: p.sw, Link: p.link,
					Claims: p.claims, PeakQueue: p.peakQ, Waited: p.waited})
			}
		}
	}
	return stats
}
