// Package fabric models a multi-host CXL fabric as a declarative typed
// topology graph — host, Type-2 accelerator, Type-3 expander and switch
// nodes joined by links with per-link latency/bandwidth/credit
// parameters — that compiles (Build) into wired simulation components:
// one host.Host per host node, attached device.Devices for
// directly-linked CXL devices, shared-memory Expanders for
// switch-attached Type-3 nodes, and switch egress ports arbitrated FIFO
// over the engine's Credits primitive so fabric congestion is
// first-class, observable and deterministic.
//
// The single-host rigs of internal/experiments are the 1×1 preset
// (OneToOne); cluster-scale serving (internal/infer/cluster) builds a
// Star of N hosts sharing pooled expanders behind one switch. Everything
// the compiled components do is resolved from explicit claim order, so a
// fixed sequence of Transfer calls replays with identical timing on
// every run — the same determinism contract the rest of the simulator
// keeps.
package fabric

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/timing"
)

// NodeKind types a topology node.
type NodeKind uint8

// Node kinds.
const (
	// Host is a CPU socket with its own LLC, memory and cores.
	Host NodeKind = iota
	// Type2 is a CXL Type-2 accelerator (cache + memory, D2D/D2H ops).
	// A Type2 node must link directly to a Host: the accelerator model
	// rides the host's home agent.
	Type2
	// Type3 is a CXL Type-3 memory expander. Linked to a Host it is the
	// classic direct-attach expander; linked to a Switch it compiles to a
	// shared pooled-memory Expander every host can reach.
	Type3
	// Switch is a CXL switch: it forwards traffic between its links, and
	// each egress port is a contended, FIFO-arbitrated resource.
	Switch
)

// String names the kind as topology dumps print it.
func (k NodeKind) String() string {
	switch k {
	case Host:
		return "host"
	case Type2:
		return "type2"
	case Type3:
		return "type3"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// NodeSpec declares one node. Zero-valued knobs take kind-appropriate
// defaults at Build (and are normalized identically by CanonicalKey).
type NodeSpec struct {
	ID   string
	Kind NodeKind

	// Host shape (Kind == Host): LLC geometry and core count.
	// Zero values take the small-host defaults NewRig-scale sims use.
	LLCBytes, LLCWays, Cores int

	// Switch shape (Kind == Switch): PortCredits bounds the transfers a
	// single egress port accepts concurrently (FIFO beyond that), and
	// Forward is the per-hop store-and-forward latency.
	PortCredits int
	Forward     sim.Time
}

// LinkSpec declares a full-duplex link between two nodes. Zero-valued
// parameters default to the calibrated CXL link (timing.Params.CXL).
type LinkSpec struct {
	A, B string
	// OneWay is the one-direction propagation latency.
	OneWay sim.Time
	// BytesPerSec is the per-direction payload bandwidth.
	BytesPerSec float64
	// Credits bounds outstanding transfers per direction.
	Credits int
}

// Topology is the declarative fabric description Build compiles.
type Topology struct {
	Nodes []NodeSpec
	Links []LinkSpec
}

// Node-knob defaults, applied at Build and in CanonicalKey.
const (
	defaultLLCBytes    = 1 << 20
	defaultLLCWays     = 16
	defaultCores       = 4
	defaultPortCredits = 8
	defaultLinkCredits = 16
)

// defaultForward is the switch per-hop forwarding latency when
// NodeSpec.Forward is zero (store-and-forward flit processing; CXL
// switches add a few tens of nanoseconds per hop).
const defaultForward = 30 * sim.Nanosecond

// normalized returns the spec with zero knobs replaced by defaults.
func (n NodeSpec) normalized() NodeSpec {
	if n.Kind == Host {
		if n.LLCBytes == 0 {
			n.LLCBytes = defaultLLCBytes
		}
		if n.LLCWays == 0 {
			n.LLCWays = defaultLLCWays
		}
		if n.Cores == 0 {
			n.Cores = defaultCores
		}
	}
	if n.Kind == Switch {
		if n.PortCredits == 0 {
			n.PortCredits = defaultPortCredits
		}
		if n.Forward == 0 {
			n.Forward = defaultForward
		}
	}
	return n
}

// normalized returns the spec with zero parameters replaced by the
// calibrated CXL link defaults from p.
func (l LinkSpec) normalized(p *timing.Params) LinkSpec {
	if l.OneWay == 0 {
		l.OneWay = p.CXL.OneWay
	}
	if l.BytesPerSec == 0 {
		l.BytesPerSec = p.CXL.BytesPerSec
	}
	if l.Credits == 0 {
		l.Credits = defaultLinkCredits
	}
	return l
}

// Validate checks the topology's structural rules:
//
//   - node IDs are unique and non-empty;
//   - links join two distinct, declared nodes, at most one link per pair;
//   - no host–host or device–device direct links (traffic between hosts
//     or devices crosses a switch, as in a real fabric);
//   - Type2 nodes link exactly once, directly to a Host (the accelerator
//     model rides its host's home agent);
//   - Type3 nodes link exactly once, to a Host or a Switch;
//   - the graph is connected.
func (t Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("fabric: topology has no nodes")
	}
	byID := make(map[string]NodeSpec, len(t.Nodes))
	for _, n := range t.Nodes {
		if n.ID == "" {
			return fmt.Errorf("fabric: node with empty ID")
		}
		if _, dup := byID[n.ID]; dup {
			return fmt.Errorf("fabric: duplicate node ID %q", n.ID)
		}
		if n.Kind > Switch {
			return fmt.Errorf("fabric: node %q has unknown kind %d", n.ID, n.Kind)
		}
		byID[n.ID] = n
	}
	degree := make(map[string]int, len(t.Nodes))
	adj := make(map[string][]string, len(t.Nodes))
	seen := make(map[[2]string]bool, len(t.Links))
	for _, l := range t.Links {
		a, okA := byID[l.A]
		b, okB := byID[l.B]
		if !okA || !okB {
			return fmt.Errorf("fabric: link %s-%s references undeclared node", l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("fabric: self-link on %q", l.A)
		}
		key := [2]string{min(l.A, l.B), max(l.A, l.B)}
		if seen[key] {
			return fmt.Errorf("fabric: duplicate link %s-%s", key[0], key[1])
		}
		seen[key] = true
		if a.Kind == Host && b.Kind == Host {
			return fmt.Errorf("fabric: host-host link %s-%s (route through a switch)", l.A, l.B)
		}
		if a.Kind != Host && a.Kind != Switch && b.Kind != Host && b.Kind != Switch {
			return fmt.Errorf("fabric: device-device link %s-%s (route through a switch)", l.A, l.B)
		}
		if a.Kind == Type2 && b.Kind != Host || b.Kind == Type2 && a.Kind != Host {
			return fmt.Errorf("fabric: Type2 node in link %s-%s must attach directly to a host", l.A, l.B)
		}
		if l.OneWay < 0 || l.BytesPerSec < 0 || l.Credits < 0 {
			return fmt.Errorf("fabric: negative parameter on link %s-%s", l.A, l.B)
		}
		degree[l.A]++
		degree[l.B]++
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for _, n := range t.Nodes {
		switch n.Kind {
		case Type2, Type3:
			if degree[n.ID] != 1 {
				return fmt.Errorf("fabric: %s node %q has %d links, want exactly 1",
					n.Kind, n.ID, degree[n.ID])
			}
		}
	}
	if len(t.Nodes) > 1 {
		// Connectivity: BFS from the first node.
		visited := map[string]bool{t.Nodes[0].ID: true}
		queue := []string{t.Nodes[0].ID}
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			for _, nb := range adj[id] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		if len(visited) != len(t.Nodes) {
			return fmt.Errorf("fabric: topology is disconnected (%d of %d nodes reachable)",
				len(visited), len(t.Nodes))
		}
	}
	return nil
}

// CanonicalKey renders the topology as a stable, self-delimiting string
// for result-cache keys: node order and link orientation do not matter
// (both are sorted), and zero-valued knobs are normalized to the same
// defaults Build substitutes, so two topologies key identically iff
// Build wires observationally identical fabrics from them under p.
func (t Topology) CanonicalKey(p *timing.Params) string {
	if p == nil {
		p = timing.Default()
	}
	nodes := make([]string, 0, len(t.Nodes))
	for _, n := range t.Nodes {
		n = n.normalized()
		switch n.Kind {
		case Host:
			nodes = append(nodes, fmt.Sprintf("%s:host/llc=%d/%d,cores=%d",
				n.ID, n.LLCBytes, n.LLCWays, n.Cores))
		case Switch:
			nodes = append(nodes, fmt.Sprintf("%s:switch/cr=%d,fwd=%d",
				n.ID, n.PortCredits, int64(n.Forward)))
		default:
			nodes = append(nodes, fmt.Sprintf("%s:%s", n.ID, n.Kind))
		}
	}
	sort.Strings(nodes)
	links := make([]string, 0, len(t.Links))
	for _, l := range t.Links {
		l = l.normalized(p)
		a, b := min(l.A, l.B), max(l.A, l.B)
		links = append(links, fmt.Sprintf("%s-%s:ow=%d,bw=%g,cr=%d",
			a, b, int64(l.OneWay), l.BytesPerSec, l.Credits))
	}
	sort.Strings(links)
	return fmt.Sprintf("topo{nodes=[%s],links=[%s]}",
		strings.Join(nodes, ";"), strings.Join(links, ";"))
}

// OneToOne is the classic single-host rig as a topology: one host
// directly attached to one CXL device of the given kind (Type2 or
// Type3). The host shape is taken from the spec fields of hostShape
// (zero values default like any NodeSpec). Node IDs are "h0" and "d0".
func OneToOne(devKind NodeKind, hostShape NodeSpec) Topology {
	if devKind != Type2 && devKind != Type3 {
		panic(fmt.Sprintf("fabric: OneToOne device kind %v", devKind))
	}
	hostShape.ID = "h0"
	hostShape.Kind = Host
	return Topology{
		Nodes: []NodeSpec{hostShape, {ID: "d0", Kind: devKind}},
		Links: []LinkSpec{{A: "h0", B: "d0"}},
	}
}

// Star is the pooled-memory cluster topology: hosts h0..h(n-1) and
// Type-3 expanders x0..x(e-1) all attached to one switch sw0. hostShape
// and swShape carry the per-kind knobs (IDs and kinds are overwritten);
// link carries the per-link parameters applied to every edge (A/B are
// overwritten).
func Star(hosts, expanders int, hostShape, swShape NodeSpec, link LinkSpec) Topology {
	if hosts <= 0 || expanders <= 0 {
		panic(fmt.Sprintf("fabric: Star(%d hosts, %d expanders)", hosts, expanders))
	}
	swShape.ID = "sw0"
	swShape.Kind = Switch
	t := Topology{Nodes: []NodeSpec{swShape}}
	for i := 0; i < hosts; i++ {
		h := hostShape
		h.ID = fmt.Sprintf("h%d", i)
		h.Kind = Host
		t.Nodes = append(t.Nodes, h)
		l := link
		l.A, l.B = h.ID, "sw0"
		t.Links = append(t.Links, l)
	}
	for i := 0; i < expanders; i++ {
		x := NodeSpec{ID: fmt.Sprintf("x%d", i), Kind: Type3}
		t.Nodes = append(t.Nodes, x)
		l := link
		l.A, l.B = "sw0", x.ID
		t.Links = append(t.Links, l)
	}
	return t
}
