package fabric

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// workerMatrix is the worker-count sweep the byte-identity properties
// run: inline (the reference sequential schedule), two workers, and
// GOMAXPROCS when it is larger.
func workerMatrix() []int {
	ws := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		ws = append(ws, p)
	}
	return ws
}

// TestShardPartitionGenericTopology pins the structural partitioner on
// a topology that exercises every placement rule at once: switches and
// switch-attached expanders form the hub; each host is its own shard;
// directly attached devices (Type2 or Type3) co-reside with their host.
func TestShardPartitionGenericTopology(t *testing.T) {
	topo := Topology{
		Nodes: []NodeSpec{
			{ID: "h0", Kind: Host},
			{ID: "h1", Kind: Host},
			{ID: "sw0", Kind: Switch},
			{ID: "x0", Kind: Type3},
			{ID: "d0", Kind: Type2},
			{ID: "x1", Kind: Type3},
		},
		Links: []LinkSpec{
			{A: "h0", B: "sw0"},
			{A: "h1", B: "sw0"},
			{A: "sw0", B: "x0"},
			{A: "h0", B: "d0"},
			{A: "h1", B: "x1"},
		},
	}
	f := MustBuild(topo, nil, Shards(1))
	ss := f.ShardSet()
	if got := ss.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d, want 3 (hub + 2 hosts)", got)
	}
	wantShard := map[string]int{
		"sw0": 0, "x0": 0, // hub
		"h0": 1, "d0": 1, // direct Type2 rides its host
		"h1": 2, "x1": 2, // direct Type3 rides its host
	}
	for id, want := range wantShard {
		if got := ss.NodeShard(id); got != want {
			t.Errorf("NodeShard(%s) = %d, want %d", id, got, want)
		}
	}
	for i := 0; i < 3; i++ {
		if d := ss.Dist(i, i); d != 0 {
			t.Errorf("Dist(%d,%d) = %v, want 0 (co-resident)", i, i, d)
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			if d := ss.Dist(i, j); d <= 0 {
				t.Errorf("Dist(%d,%d) = %v, want positive lookahead", i, j, d)
			}
			if ss.Dist(i, j) != ss.Dist(j, i) {
				t.Errorf("Dist(%d,%d) != Dist(%d,%d)", i, j, j, i)
			}
		}
	}
	// Host-to-host traffic routes through the hub: the triangle
	// inequality is tight on a star.
	if got, want := ss.Dist(1, 2), ss.Dist(1, 0)+ss.Dist(0, 2); got != want {
		t.Errorf("Dist(1,2) = %v, want %v (via hub)", got, want)
	}
}

// runPingSchedule drives a randomized cross-shard message storm over a
// star fabric and renders every delivery in merge order. Each shard's
// handler logs (shard, time, payload state) and forwards the ping to a
// payload-chosen peer at the minimum admissible distance plus a small
// payload-derived jitter — echo chains at the lookahead bound, the
// worst case for the conservative window protocol.
func runPingSchedule(workers int, seed int64, pings, hops int) string {
	f := MustBuild(star(3, 2), nil, Shards(workers))
	ss := f.ShardSet()
	n := ss.NumShards()

	type ping struct {
		state uint64
		hops  int
	}
	logs := make([]*strings.Builder, n)
	handlers := make([]func(any), n)
	for i := 0; i < n; i++ {
		i := i
		logs[i] = &strings.Builder{}
		s := ss.Shard(i)
		handlers[i] = func(a any) {
			p := a.(*ping)
			now := s.Engine().Now()
			fmt.Fprintf(logs[i], "%d %v %x %d\n", i, now, p.state, p.hops)
			if p.hops <= 0 {
				return
			}
			p.hops--
			p.state = p.state*6364136223846793005 + 1442695040888963407
			dst := int(p.state>>33) % n
			jitter := sim.Time(p.state>>17) % 50 * sim.Nanosecond
			s.Send(dst, now+jitter, handlers[dst], p)
		}
	}
	r := rng.New(seed)
	for k := 0; k < pings; k++ {
		src := r.Intn(n)
		at := sim.Time(r.Intn(500)) * sim.Nanosecond
		ss.Shard(src).Engine().AtCall(at, handlers[src], &ping{
			state: r.Uint64(),
			hops:  hops,
		})
	}
	ss.Run(workers)
	var b strings.Builder
	for _, l := range logs {
		b.WriteString(l.String())
	}
	return b.String()
}

// TestShardedMessageByteIdentity is the fabric-level tentpole property:
// a cross-shard message schedule renders byte-identically at every
// worker count, for several seeds. Same-instant deliveries from
// different source shards land in (when, srcShard, srcSeq) order
// regardless of which goroutine drains them first.
func TestShardedMessageByteIdentity(t *testing.T) {
	for _, seed := range []int64{3, 17, 88} {
		var want string
		for _, w := range workerMatrix() {
			got := runPingSchedule(w, seed, 24, 12)
			if w == 1 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d workers=%d diverged from inline:\n--- inline ---\n%s--- workers=%d ---\n%s",
					seed, w, want, w, got)
			}
		}
		if want == "" {
			t.Fatalf("seed %d produced no deliveries", seed)
		}
	}
}

// TestShardedTransferByteIdentity re-runs the existing random
// ReadShared/WriteShared schedule property on a sharded build: the
// transfers all execute on the hub shard, so the render must be
// byte-identical to the unsharded fabric's whatever the worker count.
func TestShardedTransferByteIdentity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		want, _ := randomSchedule(seed, 200)
		for _, w := range workerMatrix() {
			f := MustBuild(star(3, 2), nil, Shards(w))
			r := rng.New(seed)
			hosts, exps := f.Hosts(), f.Expanders()
			var b strings.Builder
			now := sim.Time(0)
			for i := 0; i < 200; i++ {
				now += sim.Time(r.Intn(200)) * sim.Nanosecond
				h := hosts[r.Intn(len(hosts))]
				x := exps[r.Intn(len(exps))]
				n := (1 + r.Intn(64)) * 64
				if r.Intn(3) == 0 {
					done := f.WriteShared(h, x, n, now)
					fmt.Fprintf(&b, "w %s %s %d @%d -> %d\n", h, x, n, now, done)
				} else {
					done := f.ReadShared(h, x, n, now)
					fmt.Fprintf(&b, "r %s %s %d @%d -> %d\n", h, x, n, now, done)
				}
			}
			for _, s := range f.LinkStats() {
				fmt.Fprintf(&b, "link %s %d %d\n", s.Link, s.ABytes, s.BABytes)
			}
			for _, s := range f.PortStats() {
				fmt.Fprintf(&b, "port %s %s claims=%d peak=%d waited=%d\n",
					s.Switch, s.Link, s.Claims, s.PeakQueue, int64(s.Waited))
			}
			if b.String() != want {
				t.Fatalf("seed %d Shards(%d): transfer render differs from unsharded build", seed, w)
			}
		}
	}
}
