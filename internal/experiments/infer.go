package experiments

import (
	"fmt"
	"io"

	"repro/internal/infer"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/workload"
)

// The infer section answers the paper's Type-2 question for the workload
// that now dominates accelerator memory planning: where should an LLM
// serving engine put its paged KV cache? Each scenario runs the full
// transaction-level serving model of internal/infer — Poisson arrivals,
// continuous batching, prefill + decode — with the KV blocks placed by
// one policy over one far tier, and reports the serving metrics (TTFT,
// TPOT, goodput) next to the per-tier traffic that explains them.

// InferConfig tunes the infer section.
type InferConfig struct {
	// Reps scales the request count (Requests = Reps/2, clamped to
	// [12, 96]); 0 keeps the default of 48 requests per scenario.
	Reps int
	// Seed overrides the workload seed; 0 uses the job's derived seed.
	Seed int64
	// Trace, when set, replays the recorded request stream through every
	// scenario instead of generating one from the seed — the record/replay
	// path. Reps and Seed stop affecting the stream (they are recorded in
	// the trace), so two runs over the same trace serve identical requests
	// even across binary versions.
	Trace *workload.Trace
}

func (c InferConfig) requests() int {
	if c.Reps == 0 {
		return 48
	}
	n := c.Reps / 2
	if n < 12 {
		n = 12
	}
	if n > 96 {
		n = 96
	}
	return n
}

// InferScenario is one placement scenario of the section.
type InferScenario struct {
	// Name labels the row.
	Name string
	// Far is the far tier; Policy places blocks over DRAM + Far.
	Far    infer.Tier
	Policy infer.Policy
	// DRAMBlocks shrinks the DRAM pool when positive (the spill
	// scenario's pressure source).
	DRAMBlocks int
}

// InferScenarios lists the compared placements in presentation order:
// the all-DRAM baseline, one static split per far tier (the pure tier
// comparison), then the adaptive policies on the Type-2 device.
func InferScenarios() []InferScenario {
	return []InferScenario{
		{Name: "all-dram", Far: infer.TierDRAM, Policy: infer.AllDRAM{}},
		{Name: "kv@t2-dev", Far: infer.TierT2Dev, Policy: infer.StaticSplit{NearBlocks: 0}},
		{Name: "kv@t2-host", Far: infer.TierT2Host, Policy: infer.StaticSplit{NearBlocks: 0}},
		{Name: "kv@t3", Far: infer.TierT3, Policy: infer.StaticSplit{NearBlocks: 0}},
		{Name: "kv@pcie-dma", Far: infer.TierPCIe, Policy: infer.StaticSplit{NearBlocks: 0}},
		{Name: "lru-spill", Far: infer.TierT2Dev,
			Policy: infer.LRUSpill{LowWater: 8, HighWater: 12}, DRAMBlocks: 16},
		{Name: "pinned-decode", Far: infer.TierT2Dev, Policy: infer.PinnedDecode{}},
	}
}

// InferRow is one scenario's serving outcome.
type InferRow struct {
	Scenario  string
	Far       string
	TTFTp50   float64 // µs
	TTFTp99   float64 // µs
	TPOT      float64 // mean µs/token
	Goodput   float64 // tokens/s
	NearMB    float64 // KV bytes moved through host DRAM
	FarMB     float64 // KV bytes moved through the far tier
	MigrateMB float64 // DSA cold-block migration volume
}

// inferRow runs one scenario to completion.
func inferRow(sc InferScenario, requests int, seed int64, trace *workload.Trace) InferRow {
	m := infer.Run(infer.Config{
		Seed:       seed,
		Requests:   requests,
		Trace:      trace,
		Far:        sc.Far,
		Policy:     sc.Policy,
		DRAMBlocks: sc.DRAMBlocks,
	})
	const mb = 1.0 / (1 << 20)
	near := float64(m.ReadBytes[infer.TierDRAM] + m.WriteBytes[infer.TierDRAM])
	var far float64
	if sc.Far != infer.TierDRAM {
		far = float64(m.ReadBytes[sc.Far] + m.WriteBytes[sc.Far])
	}
	return InferRow{
		Scenario:  sc.Name,
		Far:       sc.Far.String(),
		TTFTp50:   m.TTFT.Median(),
		TTFTp99:   m.TTFT.P99(),
		TPOT:      m.TPOT.Mean(),
		Goodput:   m.Goodput,
		NearMB:    near * mb,
		FarMB:     far * mb,
		MigrateMB: float64(m.MigratedBytes) * mb,
	}
}

// InferJobs returns the section as one self-contained job: every scenario
// must serve the *same* request stream for the tier comparison to mean
// anything, and the only root-seed-deterministic value the scenarios can
// share is a single job's derived seed. Within the job the scenarios are
// independent serving simulations, so they fan out as sub-jobs over the
// pool; each closure-captures the job-resolved stream seed (the sub's own
// derived seed is deliberately unused) so the rows — and therefore the
// rendered section — are byte-identical to the inline loop.
func InferJobs(cfg InferConfig) []runner.Job {
	requests := cfg.requests()
	// Rough event credit per scenario: tokens × resident blocks × lines.
	perScenario := requests * 30 * 5 * 16
	return []runner.Job{{ID: "infer", Run: func(ctx *runner.Ctx) (any, error) {
		seed := ctx.Seed
		if cfg.Seed != 0 {
			seed = cfg.Seed
		}
		var subs []runner.SubJob
		for _, sc := range InferScenarios() {
			subs = append(subs, runner.SubJob{ID: sc.Name, Run: func(sctx *runner.Ctx) (any, error) {
				sctx.AddEvents(uint64(perScenario))
				return []InferRow{inferRow(sc, requests, seed, cfg.Trace)}, nil
			}})
		}
		return forkRows[InferRow](ctx, subs)
	}}}
}

// InferTrace records the request stream the infer section would serve
// under rootSeed and cfg — the record half of the section's record/replay:
// running the section with the returned trace in InferConfig.Trace (same
// rootSeed irrelevant) reproduces the exact same serving runs.
func InferTrace(rootSeed int64, cfg InferConfig) *workload.Trace {
	seed := cfg.Seed
	if seed == 0 {
		// The section is one job with ID "infer"; mirror the runner's
		// seed derivation (including its zero-means-default root seed) so
		// the recorded stream matches a live run.
		if rootSeed == 0 {
			rootSeed = runner.DefaultRootSeed
		}
		seed = rng.DeriveSeed(rootSeed, "infer")
	}
	return infer.GenTrace(infer.Config{Seed: seed, Requests: cfg.requests()})
}

// InferSection builds the infer section for cfg. Sections() registers the
// default configuration; this entry point exists for trace replay, where
// the caller substitutes a recorded stream for the generated one.
func InferSection(cfg InferConfig) Section {
	return section("infer", InferJobs(cfg), PrintInfer)
}

// Infer runs the section serially.
func Infer(cfg InferConfig) []InferRow {
	return collectRows[InferRow](runSerial(InferJobs(cfg)))
}

// InferCollect concatenates job results into rows in job order.
func InferCollect(results []runner.Result) []InferRow {
	return collectRows[InferRow](results)
}

// PrintInfer renders the rows.
func PrintInfer(w io.Writer, rows []InferRow) {
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Scenario, r.Far,
			fmtCell(r.TTFTp50), fmtCell(r.TTFTp99), fmtCell(r.TPOT),
			fmtCell(r.Goodput / 1000), fmtCell(r.NearMB), fmtCell(r.FarMB),
			fmtCell(r.MigrateMB),
		})
	}
	printTable(w, "LLM serving — paged KV-cache placement across memory tiers",
		[]string{"scenario", "far-tier", "TTFT-p50(us)", "TTFT-p99(us)", "TPOT(us)",
			"goodput(ktok/s)", "dram(MB)", "far(MB)", "migrated(MB)"}, table)
}

// InferFind locates a scenario's row.
func InferFind(rows []InferRow, scenario string) InferRow {
	for _, r := range rows {
		if r.Scenario == scenario {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no infer row %q", scenario))
}
