package experiments

import (
	"io"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/phys"
	"repro/internal/runner"
)

// Table3Row is one cell row of Table III: the HMC and LLC cache-line states
// observed after issuing one D2H request against one initial placement.
type Table3Row struct {
	Req      cxl.D2HReq
	Initial  string // "HMC hit", "LLC hit", "LLC miss"
	HMCState cache.State
	LLCState cache.State
}

// Table3 reproduces Table III by driving every D2H request type against
// every initial placement on a live system and reading the resulting
// coherence states back (the paper's cross-validation methodology). It is
// the serial form of Table3Jobs.
func Table3() []Table3Row {
	return collectRows[Table3Row](runSerial(Table3Jobs()))
}

// Table3Jobs returns one self-contained job per D2H request type, each
// covering all three initial placements, in presentation order.
func Table3Jobs() []runner.Job {
	reqs := []cxl.D2HReq{cxl.NCP, cxl.NCRead, cxl.NCWrite, cxl.CORead, cxl.COWrite, cxl.CSRead}
	var jobs []runner.Job
	for _, req := range reqs {
		req := req
		jobs = append(jobs, sliceJob("table3/"+req.String(), 3,
			func(seed int64) []Table3Row { return table3Req(req, seed) }))
	}
	return jobs
}

// table3Req drives one request type against every initial placement.
func table3Req(req cxl.D2HReq, seed int64) []Table3Row {
	var rows []Table3Row
	for _, initial := range []string{"HMC hit", "LLC hit", "LLC miss"} {
		r := NewRigSeeded(cxl.Type2, seed)
		addr := r.hostLine(1)
		r.Host.Store().WriteLine(addr, make([]byte, phys.LineSize))
		switch initial {
		case "HMC hit":
			// CS-read warms HMC; the methodology then flushes the LLC
			// copy the warm-up may have created (§V).
			r.Dev.D2H(cxl.CSRead, addr, nil, 0)
			r.Host.LLC().Invalidate(addr)
		case "LLC hit":
			r.Host.Core(0).CLDemote(addr, cache.Exclusive, nil, 0)
		case "LLC miss":
		}
		r.Dev.D2H(req, addr, make([]byte, phys.LineSize), 0)
		row := Table3Row{Req: req, Initial: initial}
		if l := r.Dev.HMC().Peek(addr); l.Valid() {
			row.HMCState = l.State
		}
		if l := r.Host.LLC().Peek(addr); l.Valid() {
			row.LLCState = l.State
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintTable3 renders the matrix like the paper's Table III.
func PrintTable3(w io.Writer, rows []Table3Row) {
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Req.String(), r.Initial, r.HMCState.String(), r.LLCState.String(),
		})
	}
	printTable(w, "Table III — cache coherence states after a D2H memory access",
		[]string{"request", "initial", "HMC line", "LLC line"}, table)
}
