package experiments

import (
	"math"
	"strings"
	"testing"
)

// The workload section's own contract: deterministic rows, a replay row
// that reproduces its recorded source exactly, and cohort shares that
// account for every request.

func workloadArrivalRows(rows []WorkloadRow) map[string]WorkloadRow {
	m := map[string]WorkloadRow{}
	for _, r := range rows {
		if r.Kind == "arrival" {
			m[r.Name] = r
		}
	}
	return m
}

func TestWorkloadSectionRows(t *testing.T) {
	rows := Workload(WorkloadConfig{Reps: 25})
	arr := workloadArrivalRows(rows)
	for _, name := range []string{"poisson", "diurnal", "diurnal+burst", "replay(burst)"} {
		r, ok := arr[name]
		if !ok {
			t.Fatalf("missing arrival row %q", name)
		}
		if r.Requests == 0 || r.SpanSec <= 0 || r.MeanRate <= 0 || r.PeakRate <= 0 {
			t.Errorf("%s: degenerate row %+v", name, r)
		}
		if len(r.TraceHash) != 16 {
			t.Errorf("%s: trace hash %q not 16 hex digits", name, r.TraceHash)
		}
	}
	// The replay row is the record/replay contract rendered: it must equal
	// the row of the stream it replays, content hash included.
	if arr["replay(burst)"] != workloadRowRenamed(arr["diurnal+burst"], "replay(burst)") {
		t.Errorf("replay row diverged from its source:\n source %+v\n replay %+v",
			arr["diurnal+burst"], arr["replay(burst)"])
	}
	var share float64
	cohorts := 0
	for _, r := range rows {
		if r.Kind == "cohort" {
			cohorts++
			share += r.SharePct
			if r.MeanPrompt <= 0 || r.MeanDecode <= 0 {
				t.Errorf("cohort %s: degenerate shapes %+v", r.Name, r)
			}
		}
	}
	if cohorts != 3 {
		t.Fatalf("%d cohort rows, want 3", cohorts)
	}
	if math.Abs(share-100) > 1e-9 {
		t.Errorf("cohort shares sum to %v, want 100", share)
	}
}

func workloadRowRenamed(r WorkloadRow, name string) WorkloadRow {
	r.Name = name
	return r
}

func TestWorkloadSectionDeterministic(t *testing.T) {
	a := Workload(WorkloadConfig{Reps: 25})
	b := Workload(WorkloadConfig{Reps: 25})
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWorkloadPrinterRendersBothTables(t *testing.T) {
	var sb strings.Builder
	PrintWorkload(&sb, Workload(WorkloadConfig{Reps: 20}))
	out := sb.String()
	for _, want := range []string{"temporal arrival models", "cohort mixture", "replay(burst)", "chat"} {
		if !strings.Contains(out, want) {
			t.Errorf("workload render missing %q", want)
		}
	}
}

// TestFig8TemporalDeterminism pins the temporal co-simulation wiring:
// drawn arrival gaps, episodic antagonist bursts and drawn ksmd sleeps
// must still reproduce run for run under a fixed seed.
func TestFig8TemporalDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("co-simulation")
	}
	cfg := Fig8Config{Duration: 60 * 1e9, Temporal: true} // 60 ms
	a := Fig8Zswap(Fig8Variant(3), ycsbA(), cfg)
	b := Fig8Zswap(Fig8Variant(3), ycsbA(), cfg)
	if a.P99us != b.P99us || a.Served != b.Served || a.Faults != b.Faults {
		t.Fatalf("nondeterministic temporal zswap run: %+v vs %+v", a, b)
	}
	if !a.VerifyOK {
		t.Fatal("data integrity lost under temporal zswap run")
	}
	ka := Fig8Ksm(Fig8Variant(3), ycsbA(), cfg)
	kb := Fig8Ksm(Fig8Variant(3), ycsbA(), cfg)
	if ka.P99us != kb.P99us || ka.Served != kb.Served || ka.Faults != kb.Faults {
		t.Fatalf("nondeterministic temporal ksm run: %+v vs %+v", ka, kb)
	}
	if !ka.VerifyOK {
		t.Fatal("data integrity lost under temporal ksm run")
	}
}

// TestFig8TemporalChangesStream sanity-checks that the Temporal flag is
// actually wired: the drawn-arrival run must differ from the stationary
// one (same seed, same duration).
func TestFig8TemporalChangesStream(t *testing.T) {
	if testing.Short() {
		t.Skip("co-simulation")
	}
	stationary := Fig8Zswap(Fig8Variant(3), ycsbA(), Fig8Config{Duration: 60 * 1e9})
	temporal := Fig8Zswap(Fig8Variant(3), ycsbA(), Fig8Config{Duration: 60 * 1e9, Temporal: true})
	if stationary.Served == temporal.Served && stationary.P99us == temporal.P99us {
		t.Fatal("Temporal flag produced an identical run — wiring is dead")
	}
}
