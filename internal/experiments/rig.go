// Package experiments implements one driver per table and figure of the
// paper's evaluation (§V and §VII): each driver builds a fresh simulated
// system, follows the paper's methodology (state priming with CLDEMOTE/
// CLFLUSH and warm-up reads, >=1K repetitions, median + standard
// deviation), and returns structured rows that print like the paper's
// plots. The calibration tests in this package pin the headline ratios to
// the paper's numbers.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/fabric"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/rng"
	"repro/internal/timing"
)

// Rig is a freshly built system for one measurement.
type Rig struct {
	P    *timing.Params
	Host *host.Host
	Dev  *device.Device
	Emu  *host.EmuCore
	rng  *rand.Rand
}

// NewRig builds a rig with the given device personality (cxl.Type2 or
// cxl.Type3). A smaller-than-real LLC keeps rig construction cheap;
// capacity effects are not what the microbenchmarks measure.
func NewRig(devType cxl.DeviceType) *Rig {
	return NewRigSeeded(devType, SeedRig)
}

// NewRigSeeded is NewRig with an explicit seed for the rig's random
// stream — the shared-nothing parallel runner derives one per job. The §V
// microbenchmark measurements are seed-invariant (the access streams are
// fixed permutations), so a derived seed never shifts the calibrated
// numbers; the seed exists so that any future stochastic rig component
// inherits per-job reproducibility for free.
//
// Since the fabric layer landed, a rig is just the compiled 1×1 topology
// preset: one host directly attached to one CXL device
// (fabric.OneToOne), the degenerate case of the same Build path that
// wires multi-host clusters. The compiled components — host, home agent,
// calibrated CXL link, attached device — are identical to what the
// pre-fabric constructor built, so every golden file still renders byte
// for byte.
func NewRigSeeded(devType cxl.DeviceType, seed int64) *Rig {
	kind := fabric.Type2
	if devType == cxl.Type3 {
		kind = fabric.Type3
	}
	topo := fabric.OneToOne(kind, fabric.NodeSpec{LLCBytes: 8 << 20, LLCWays: 16, Cores: 8})
	f := fabric.MustBuild(topo, nil)
	h := f.Host("h0")
	return &Rig{P: f.Params(), Host: h, Dev: h.Dev, Emu: h.NewEmuCore(), rng: rng.New(seed)}
}

// hostLine returns the i-th distinct host-memory line of a random-ish
// stream, line-aligned (the paper measures random accesses).
func (r *Rig) hostLine(i int) phys.Addr {
	// A large-stride permutation avoids set conflicts while staying
	// deterministic.
	return phys.Addr(0x100000) + phys.Addr((i*2654435761)%(1<<20))*phys.LineSize
}

// devLine returns the i-th device-memory line.
func (r *Rig) devLine(i int) phys.Addr {
	return mem.RegionDevice.Base + phys.Addr(1<<20) + phys.Addr((i*2654435761)%(1<<18))*phys.LineSize
}

// column formats a latency/bandwidth table cell.
func fmtCell(v float64) string { return fmt.Sprintf("%9.2f", v) }

// printTable writes a simple aligned table.
func printTable(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for _, h := range header {
		fmt.Fprintf(w, "%-17s", h)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		for _, c := range row {
			fmt.Fprintf(w, "%-17s", c)
		}
		fmt.Fprintln(w)
	}
}
