package experiments

import (
	"fmt"
	"io"

	"repro/internal/cxl"
	"repro/internal/pcie"
	"repro/internal/phys"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Fig6Mechanism is one curve of Fig. 6.
type Fig6Mechanism uint8

// The compared transfer mechanisms. CXL ld/st is split into its load and
// store curves, as the two sit on different host resources (LSQ credits vs
// posted write combining).
const (
	MechCXLLd Fig6Mechanism = iota
	MechCXLSt
	MechCXLDSA
	MechPCIeMMIO
	MechPCIeDMA
	MechPCIeRDMA
	MechPCIeDOCA
)

// String names the mechanism as the paper's legend does.
func (m Fig6Mechanism) String() string {
	switch m {
	case MechCXLLd:
		return "CXL-LD"
	case MechCXLSt:
		return "CXL-ST"
	case MechCXLDSA:
		return "CXL-DSA"
	case MechPCIeMMIO:
		return "PCIe-MMIO"
	case MechPCIeDMA:
		return "PCIe-DMA"
	case MechPCIeRDMA:
		return "PCIe-RDMA"
	case MechPCIeDOCA:
		return "PCIe-DOCA-DMA"
	default:
		return fmt.Sprintf("Fig6Mechanism(%d)", uint8(m))
	}
}

// Fig6Mechanisms lists the curves.
func Fig6Mechanisms() []Fig6Mechanism {
	return []Fig6Mechanism{MechCXLLd, MechCXLSt, MechCXLDSA, MechPCIeMMIO, MechPCIeDMA, MechPCIeRDMA, MechPCIeDOCA}
}

// Fig6Sizes are the swept transfer sizes.
func Fig6Sizes() []int {
	return []int{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}
}

// Fig6Row is one point of Fig. 6: latency and bandwidth of one mechanism at
// one transfer size, in one direction.
type Fig6Row struct {
	Mech         Fig6Mechanism
	D2H          bool // false = H2D
	Size         int
	LatencyNs    float64
	BandwidthGBs float64
}

// Fig6 sweeps transfer sizes over every mechanism in both directions
// (PCIe-DMA is omitted for D2H, as on the real card, §V-D). It is the
// serial form of Fig6Jobs.
func Fig6() []Fig6Row {
	return collectRows[Fig6Row](runSerial(Fig6Jobs()))
}

// Fig6Jobs returns one self-contained job per (mechanism, direction)
// curve, each sweeping all transfer sizes, in presentation order.
func Fig6Jobs() []runner.Job {
	var jobs []runner.Job
	for _, d2h := range []bool{false, true} {
		dir := "H2D"
		if d2h {
			dir = "D2H"
		}
		for _, mech := range Fig6Mechanisms() {
			if d2h && mech == MechPCIeDMA {
				continue // Agilex-7 lacks a D2H DMA IP (§V-D)
			}
			if d2h && mech == MechCXLDSA {
				continue // DSA is a host-side engine
			}
			mech, d2h := mech, d2h
			jobs = append(jobs, sliceJob(fmt.Sprintf("fig6/%s/%s", dir, mech), len(Fig6Sizes()),
				func(seed int64) []Fig6Row {
					var rows []Fig6Row
					for _, size := range Fig6Sizes() {
						rows = append(rows, measureFig6(mech, d2h, size, seed))
					}
					return rows
				}))
		}
	}
	return jobs
}

func measureFig6(mech Fig6Mechanism, d2h bool, size int, seed int64) Fig6Row {
	r := NewRigSeeded(cxl.Type2, seed)
	ep := pcie.NewEndpoint(r.P)
	var done sim.Time
	switch mech {
	case MechCXLLd:
		if d2h {
			done = measureCXLD2HRead(r, size)
		} else {
			done = measureCXLH2DLoad(r, size)
		}
	case MechCXLSt:
		if d2h {
			done = measureCXLD2HPush(r, size)
		} else {
			done = measureCXLH2DStore(r, size)
		}
	case MechCXLDSA:
		dsa := r.Host.NewDSA()
		_, done = dsa.Copy(r.hostLine(0), r.devLine(0), size, 0, false)
	case MechPCIeMMIO:
		if d2h {
			// The device reads host memory through its PCIe requester: same
			// serialized word-at-a-time behavior.
			done = ep.MMIORead(size, 0).Done
		} else {
			done = ep.MMIOWrite(size, 0).Done
		}
	case MechPCIeDMA:
		done = ep.DMATransfer(size, 0, false).Done
	case MechPCIeRDMA:
		if d2h {
			// The raw D2H RDMA curve: a NIC-driven read without per-op Arm
			// software orchestration (that overhead belongs to the offload
			// workflows of Table IV).
			done = ep.RDMAFollowOn(size, 0).Done
		} else {
			done = ep.RDMATransfer(size, 0, pcie.H2D).Done
		}
	case MechPCIeDOCA:
		dir := pcie.H2D
		if d2h {
			dir = pcie.D2H
		}
		done = ep.DOCATransfer(size, 0, dir).Done
	}
	return Fig6Row{
		Mech:         mech,
		D2H:          d2h,
		Size:         size,
		LatencyNs:    done.Nanoseconds(),
		BandwidthGBs: float64(size) / done.Seconds() / 1e9,
	}
}

// measureCXLH2DStore times a host-initiated block write with nt-st (write
// combining) followed by a fence — the H2D CXL-ST curve.
func measureCXLH2DStore(r *Rig, size int) sim.Time {
	core := r.Host.Core(0)
	var last sim.Time
	for off := 0; off < size; off += phys.LineSize {
		res := core.Access(cxl.NtSt, r.devLine(off/phys.LineSize), nil, 0)
		if res.Done > last {
			last = res.Done
		}
	}
	return core.FenceCXL(last)
}

// measureCXLH2DLoad times a host-initiated block read with demand loads —
// the H2D CXL-LD curve, which the limited LD queue makes the slowest CXL
// option beyond ~1 KB (the bottleneck CXL-DSA addresses, §V-D).
func measureCXLH2DLoad(r *Rig, size int) sim.Time {
	core := r.Host.Core(0)
	var last sim.Time
	for off := 0; off < size; off += phys.LineSize {
		res := core.Access(cxl.Ld, r.devLine(off/phys.LineSize), nil, 0)
		if res.Done > last {
			last = res.Done
		}
	}
	return last
}

// measureCXLD2HRead times a device-initiated block read of host memory with
// NC-read — the D2H CXL-LD curve (what cxl-zswap uses for its page pull).
func measureCXLD2HRead(r *Rig, size int) sim.Time {
	return r.Dev.ReadHostBlock(cxl.NCRead, r.hostLine(0), size, nil, 0)
}

// measureCXLD2HPush times a device-initiated block write into host LLC with
// NC-P — the D2H CXL-ST curve (the paper uses NC-P because DMA/RDMA write
// to host LLC via DDIO, §V-D).
func measureCXLD2HPush(r *Rig, size int) sim.Time {
	return r.Dev.WriteHostBlock(cxl.NCP, r.hostLine(0), nil, size, 0)
}

// Fig6Collect concatenates Fig6Jobs results into rows in job order — for
// callers (like the CSV exporter) that need the rows rather than the
// rendered table.
func Fig6Collect(results []runner.Result) []Fig6Row {
	return collectRows[Fig6Row](results)
}

// PrintFig6 renders the rows.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	var table [][]string
	for _, r := range rows {
		dir := "H2D"
		if r.D2H {
			dir = "D2H"
		}
		table = append(table, []string{
			r.Mech.String(), dir, fmt.Sprintf("%d", r.Size),
			fmtCell(r.LatencyNs), fmtCell(r.BandwidthGBs),
		})
	}
	printTable(w, "Fig. 6 — transfer efficiency: CXL vs PCIe mechanisms",
		[]string{"mechanism", "dir", "bytes", "lat(ns)", "BW(GB/s)"}, table)
}

// WriteFig6CSV renders the rows as CSV for external plotting.
func WriteFig6CSV(w io.Writer, rows []Fig6Row) error {
	if _, err := fmt.Fprintln(w, "mechanism,dir,bytes,latency_ns,bandwidth_gbs"); err != nil {
		return err
	}
	for _, r := range rows {
		dir := "H2D"
		if r.D2H {
			dir = "D2H"
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.2f,%.3f\n",
			r.Mech, dir, r.Size, r.LatencyNs, r.BandwidthGBs); err != nil {
			return err
		}
	}
	return nil
}

// Fig6Find locates a row.
func Fig6Find(rows []Fig6Row, mech Fig6Mechanism, d2h bool, size int) Fig6Row {
	for _, r := range rows {
		if r.Mech == mech && r.D2H == d2h && r.Size == size {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no Fig6 row %v d2h=%v size=%d", mech, d2h, size))
}
