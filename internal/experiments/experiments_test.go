package experiments

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/stats"
)

// quick lowers repetition counts: the model is deterministic, so medians
// converge immediately; the paper's 1K repetitions matter on real hardware.
var quick3 = Fig3Config{Reps: 120}
var quick4 = Fig4Config{Reps: 120}
var quick5 = Fig5Config{Reps: 120}

// ---------- Fig. 3 ----------

func TestFig3LatencyRatios(t *testing.T) {
	rows := Fig3(quick3)
	cases := []struct {
		trueLbl, emuLbl string
		llcHit          bool
		wantPct         float64 // paper §V-A
		tol             float64
	}{
		{"NC-rd", "nt-ld", true, 38, 0.20},
		{"CS-rd", "ld", true, 96, 0.20},
		{"NC-wr", "nt-st", true, 71, 0.20},
		{"CO-wr", "st", true, 56, 0.20},
		{"NC-rd", "nt-ld", false, 2, 4}, // ±4pp absolute-ish via wide tol
		{"CS-rd", "ld", false, 18, 0.35},
		{"NC-wr", "nt-st", false, 67, 0.20},
		{"CO-wr", "st", false, 57, 0.20},
	}
	for _, c := range cases {
		a := Fig3Find(rows, c.trueLbl, true, c.llcHit)
		b := Fig3Find(rows, c.emuLbl, false, c.llcHit)
		got := stats.PctHigher(a.LatencyNs, b.LatencyNs)
		if !stats.Within(got, c.wantPct, c.tol) {
			t.Errorf("%s vs %s llc=%v: +%.0f%%, paper +%.0f%%", c.trueLbl, c.emuLbl, c.llcHit, got, c.wantPct)
		}
	}
}

func TestFig3BandwidthRelations(t *testing.T) {
	rows := Fig3(quick3)
	// §V-A: CXL reads beat emulated reads by ~1.8–2.2× when latency is
	// comparable (LLC-0). Our model lands at 1.67–2.2 (see EXPERIMENTS.md).
	cs := Fig3Find(rows, "CS-rd", true, false)
	ld := Fig3Find(rows, "ld", false, false)
	ncr := Fig3Find(rows, "NC-rd", true, false)
	ntld := Fig3Find(rows, "nt-ld", false, false)
	if r := cs.BandwidthGBs / ld.BandwidthGBs; r < 1.55 || r > 2.35 {
		t.Errorf("CS-rd/ld bandwidth ratio = %.2f, want ~1.8-2.2", r)
	}
	if r := ncr.BandwidthGBs / ntld.BandwidthGBs; r < 1.55 || r > 2.35 {
		t.Errorf("NC-rd/nt-ld bandwidth ratio = %.2f, want ~1.8-2.2", r)
	}
	// Writes: NC-wr below nt-st; CO-wr(LLC-0) below st at 16 accesses.
	for _, llc := range []bool{true, false} {
		if Fig3Find(rows, "NC-wr", true, llc).BandwidthGBs >= Fig3Find(rows, "nt-st", false, llc).BandwidthGBs {
			t.Errorf("NC-wr should trail nt-st at llc=%v", llc)
		}
	}
	if Fig3Find(rows, "CO-wr", true, false).BandwidthGBs >= Fig3Find(rows, "st", false, false).BandwidthGBs {
		t.Error("CO-wr should trail st at 16 accesses (the crossover comes later)")
	}
	// Reads deliver less bandwidth than writes (write-queue effect, §V-A).
	if cs.BandwidthGBs >= Fig3Find(rows, "nt-st", false, false).BandwidthGBs {
		t.Error("reads should trail posted writes")
	}
}

// ---------- Fig. 4 ----------

func TestFig4BiasModes(t *testing.T) {
	rows := Fig4(quick4)
	// Writes hitting DMC: device-bias ~60 % lower latency (§V-B).
	for _, wr := range []string{"NC-wr", "CO-wr"} {
		hb := Fig4Find(rows, wr, false, true, false)
		db := Fig4Find(rows, wr, false, true, true)
		lower := stats.PctLower(db.LatencyNs, hb.LatencyNs)
		if !stats.Within(lower, 60, 0.15) {
			t.Errorf("%s DMC-1 device-bias %.0f%% lower, paper ~60%%", wr, lower)
		}
		// Bandwidth: device-bias 8–13 % higher.
		gain := stats.PctHigher(db.BandwidthGBs, hb.BandwidthGBs)
		if gain < 6 || gain > 16 {
			t.Errorf("%s DMC-1 device-bias bandwidth +%.1f%%, paper 8-13%%", wr, gain)
		}
	}
	// Shared-state reads: no notable bias-mode difference.
	for _, rd := range []string{"NC-rd", "CS-rd"} {
		hb := Fig4Find(rows, rd, false, true, false)
		db := Fig4Find(rows, rd, false, true, true)
		if diff := stats.PctHigher(hb.LatencyNs, db.LatencyNs); diff > 5 {
			t.Errorf("%s DMC-1 bias penalty = %.1f%%, paper ~0", rd, diff)
		}
		// Misses: host-bias pays the LLC coherence check.
		hb0 := Fig4Find(rows, rd, false, false, false)
		db0 := Fig4Find(rows, rd, false, false, true)
		if hb0.LatencyNs <= db0.LatencyNs {
			t.Errorf("%s DMC-0 host-bias should be slower", rd)
		}
	}
	// Emulated DMC-1 (host L1) is far faster than the 400 MHz FPGA's DMC
	// (the 5.5× frequency argument of §V-B).
	emu := Fig4Find(rows, "ld", true, true, false)
	real := Fig4Find(rows, "CS-rd", false, true, false)
	if emu.LatencyNs*5 > real.LatencyNs {
		t.Errorf("emulated DMC hit %.1fns vs FPGA %.1fns: expected ≫5× gap", emu.LatencyNs, real.LatencyNs)
	}
}

// ---------- Fig. 5 ----------

func TestFig5TypePenalties(t *testing.T) {
	rows := Fig5(quick5)
	for _, op := range []cxl.HostOp{cxl.Ld, cxl.NtLd, cxl.St, cxl.NtSt} {
		t2 := Fig5Find(rows, op, CaseT2Miss)
		t3 := Fig5Find(rows, op, CaseT3)
		pct := stats.PctHigher(t2.LatencyNs, t3.LatencyNs)
		if pct < 1 || pct > 8 {
			t.Errorf("%v: T2 vs T3 latency +%.1f%%, paper 2-5%%", op, pct)
		}
		owned := Fig5Find(rows, op, CaseT2Owned)
		pct = stats.PctHigher(owned.LatencyNs, t2.LatencyNs)
		if pct < 5 || pct > 22 {
			t.Errorf("%v: owned-hit +%.1f%%, paper 6-17%%", op, pct)
		}
		shared := Fig5Find(rows, op, CaseT2Shared)
		if d := stats.PctHigher(shared.LatencyNs, t2.LatencyNs); d > 2 {
			t.Errorf("%v: shared-hit +%.1f%%, paper negligible", op, d)
		}
	}
	// Modified hits: +36–40 % for ld and st (§V-C).
	for _, op := range []cxl.HostOp{cxl.Ld, cxl.St} {
		mod := Fig5Find(rows, op, CaseT2Modified)
		t2 := Fig5Find(rows, op, CaseT2Miss)
		pct := stats.PctHigher(mod.LatencyNs, t2.LatencyNs)
		if pct < 30 || pct > 46 {
			t.Errorf("%v: modified-hit +%.0f%%, paper 36-40%%", op, pct)
		}
	}
}

func TestFig5NCPInsight4(t *testing.T) {
	rows := Fig5(quick5)
	for _, op := range []cxl.HostOp{cxl.Ld, cxl.St} {
		push := Fig5Find(rows, op, CaseT2Pushed)
		miss := Fig5Find(rows, op, CaseT2Miss)
		lower := stats.PctLower(push.LatencyNs, miss.LatencyNs)
		if lower < 80 || lower > 90 {
			t.Errorf("%v pushed: %.0f%% lower latency, paper 82-87%%", op, lower)
		}
		boost := push.BandwidthGBs / miss.BandwidthGBs
		if boost < 4.0 || boost > 8.0 {
			t.Errorf("%v pushed: %.1fx bandwidth, paper 4.1-6.7x", op, boost)
		}
	}
}

func TestFig5NtStBandwidthDominance(t *testing.T) {
	rows := Fig5(quick5)
	ntst := Fig5Find(rows, cxl.NtSt, CaseT2Miss).BandwidthGBs
	ratios := map[string]float64{
		"nt-ld": ntst / Fig5Find(rows, cxl.NtLd, CaseT2Miss).BandwidthGBs, // paper 12.2
		"ld":    ntst / Fig5Find(rows, cxl.Ld, CaseT2Miss).BandwidthGBs,   // paper 13.2
		"st":    ntst / Fig5Find(rows, cxl.St, CaseT2Miss).BandwidthGBs,   // paper 10.7
	}
	for name, r := range ratios {
		if r < 7 || r > 18 {
			t.Errorf("nt-st/%s bandwidth = %.1fx, paper ~11-13x", name, r)
		}
	}
}

// ---------- Fig. 6 ----------

func TestFig6SmallTransferLatency(t *testing.T) {
	rows := Fig6()
	cxlst := Fig6Find(rows, MechCXLSt, false, 256)
	cases := []struct {
		mech Fig6Mechanism
		want float64 // §V-D: CXL-ST is this % lower at 256 B
	}{
		{MechPCIeMMIO, 83},
		{MechPCIeDMA, 72},
		{MechPCIeRDMA, 81},
		{MechPCIeDOCA, 92},
	}
	for _, c := range cases {
		o := Fig6Find(rows, c.mech, false, 256)
		got := stats.PctLower(cxlst.LatencyNs, o.LatencyNs)
		if !stats.Within(got, c.want, 0.06) {
			t.Errorf("CXL-ST vs %v at 256B: %.0f%% lower, paper %.0f%%", c.mech, got, c.want)
		}
	}
}

func TestFig6D2HvsRDMA(t *testing.T) {
	rows := Fig6()
	// §V-D: D2H CXL-LD ~3× lower latency than PCIe-RDMA across sizes (our
	// spread: ~5× at 64 B down to ~1.8× at 16 KB; see EXPERIMENTS.md).
	for _, size := range []int{256, 1024, 4096} {
		c := Fig6Find(rows, MechCXLLd, true, size)
		r := Fig6Find(rows, MechPCIeRDMA, true, size)
		ratio := r.LatencyNs / c.LatencyNs
		if ratio < 2.0 || ratio > 5.5 {
			t.Errorf("D2H %dB: RDMA/CXL-LD = %.1fx, paper ~3x", size, ratio)
		}
	}
}

func TestFig6Saturation(t *testing.T) {
	rows := Fig6()
	dma := Fig6Find(rows, MechPCIeDMA, false, 256<<10).BandwidthGBs
	dsa := Fig6Find(rows, MechCXLDSA, false, 256<<10).BandwidthGBs
	rdma := Fig6Find(rows, MechPCIeRDMA, false, 256<<10).BandwidthGBs
	if dma < 26 || dma > 32 {
		t.Errorf("PCIe-DMA saturation = %.1f GB/s, paper ~30", dma)
	}
	if dsa < 26 || dsa > 34 {
		t.Errorf("CXL-DSA saturation = %.1f GB/s, paper ~30", dsa)
	}
	if rdma < 35 || rdma > 44 {
		t.Errorf("PCIe-RDMA saturation = %.1f GB/s, paper ~40", rdma)
	}
}

func TestFig6LargeTransferBottleneck(t *testing.T) {
	rows := Fig6()
	// §V-D: beyond 1 KB the CPU LD queue bottlenecks CXL-LD; CXL-DSA
	// addresses it with latency comparable to PCIe-DMA.
	ld4k := Fig6Find(rows, MechCXLLd, false, 4096)
	dsa4k := Fig6Find(rows, MechCXLDSA, false, 4096)
	dma4k := Fig6Find(rows, MechPCIeDMA, false, 4096)
	if dsa4k.LatencyNs >= ld4k.LatencyNs {
		t.Error("CXL-DSA should beat CXL-LD beyond 1KB")
	}
	if r := dsa4k.LatencyNs / dma4k.LatencyNs; r < 0.5 || r > 1.5 {
		t.Errorf("CXL-DSA vs PCIe-DMA at 4KB = %.2fx, paper: comparable", r)
	}
	// Insight 5: D2H (CXL-LD) beats H2D (CXL-ST) for small transfers.
	d2h := Fig6Find(rows, MechCXLLd, true, 256)
	h2d := Fig6Find(rows, MechCXLSt, false, 256)
	if d2h.LatencyNs >= h2d.LatencyNs {
		t.Error("insight 5: D2H should be the lower-latency direction")
	}
}

// ---------- Table III ----------

func TestTable3MatchesPaper(t *testing.T) {
	rows := Table3()
	want := map[string][2]cache.State{ // request/initial → {HMC, LLC}
		"NC-P/HMC hit":   {cache.Invalid, cache.Modified},
		"NC-P/LLC hit":   {cache.Invalid, cache.Modified},
		"NC-P/LLC miss":  {cache.Invalid, cache.Modified},
		"NC-rd/HMC hit":  {cache.Shared, cache.Invalid},
		"NC-rd/LLC hit":  {cache.Invalid, cache.Exclusive},
		"NC-rd/LLC miss": {cache.Invalid, cache.Invalid},
		"NC-wr/HMC hit":  {cache.Invalid, cache.Invalid},
		"NC-wr/LLC hit":  {cache.Invalid, cache.Invalid},
		"NC-wr/LLC miss": {cache.Invalid, cache.Invalid},
		"CO-rd/HMC hit":  {cache.Exclusive, cache.Invalid},
		"CO-rd/LLC hit":  {cache.Exclusive, cache.Invalid},
		"CO-rd/LLC miss": {cache.Exclusive, cache.Invalid},
		"CO-wr/HMC hit":  {cache.Modified, cache.Invalid},
		"CO-wr/LLC hit":  {cache.Modified, cache.Invalid},
		"CO-wr/LLC miss": {cache.Modified, cache.Invalid},
		"CS-rd/HMC hit":  {cache.Shared, cache.Invalid},
		"CS-rd/LLC hit":  {cache.Shared, cache.Shared},
		"CS-rd/LLC miss": {cache.Shared, cache.Invalid},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		key := r.Req.String() + "/" + r.Initial
		w, ok := want[key]
		if !ok {
			t.Errorf("unexpected row %q", key)
			continue
		}
		if r.HMCState != w[0] || r.LLCState != w[1] {
			t.Errorf("%s: HMC=%v LLC=%v, want HMC=%v LLC=%v", key, r.HMCState, r.LLCState, w[0], w[1])
		}
	}
}

// ---------- Table IV ----------

func TestTable4Shape(t *testing.T) {
	rows := Table4()
	rdma := Table4Find(rows, "pcie-rdma-zswap")
	dma := Table4Find(rows, "pcie-dma-zswap")
	cxlRow := Table4Find(rows, "cxl-zswap")
	if !(cxlRow.Total < dma.Total && dma.Total < rdma.Total) {
		t.Fatalf("totals: cxl=%.1f dma=%.1f rdma=%.1f; paper 3.9 < 6.2 < 10.9",
			cxlRow.Total, dma.Total, rdma.Total)
	}
	if !cxlRow.Pipelined {
		t.Error("cxl row must be pipelined")
	}
	// Paper's ratios: cxl 64 % lower than rdma, 37 % lower than dma.
	if got := stats.PctLower(cxlRow.Total, rdma.Total); !stats.Within(got, 64, 0.25) {
		t.Errorf("cxl vs rdma: %.0f%% lower, paper 64%%", got)
	}
	if got := stats.PctLower(cxlRow.Total, dma.Total); !stats.Within(got, 37, 0.45) {
		t.Errorf("cxl vs dma: %.0f%% lower, paper 37%%", got)
	}
	// Absolute magnitudes in the table's ballpark (µs).
	if rdma.Total < 7 || rdma.Total > 14 {
		t.Errorf("rdma total = %.1f µs, paper 10.9", rdma.Total)
	}
	if dma.Total < 4.5 || dma.Total > 8 {
		t.Errorf("dma total = %.1f µs, paper 6.2", dma.Total)
	}
	if cxlRow.Total < 2.5 || cxlRow.Total > 5.5 {
		t.Errorf("cxl total = %.1f µs, paper 3.9", cxlRow.Total)
	}
}

// ---------- §V-A write-queue sweep ----------

func TestWriteQueueCrossover(t *testing.T) {
	rows := WriteQueueSweep([]int{16, 64, 1024})
	// At 16 accesses CO-wr trails st; beyond 16 it overtakes (§V-A).
	if FindWriteQueueRow(rows, "CO-wr", 16).BWGBs >= FindWriteQueueRow(rows, "st", 16).BWGBs {
		t.Error("CO-wr should trail st at N=16")
	}
	if FindWriteQueueRow(rows, "CO-wr", 64).BWGBs <= FindWriteQueueRow(rows, "st", 64).BWGBs {
		t.Error("CO-wr should overtake st beyond N=16")
	}
	// nt-st declines once bursts exceed the 8×32-entry write queues
	// (256 lines): by N=1024 the drain rate binds.
	if FindWriteQueueRow(rows, "nt-st", 1024).BWGBs >= FindWriteQueueRow(rows, "nt-st", 64).BWGBs {
		t.Error("nt-st bandwidth should decline beyond the write-queue capacity")
	}
}

// ---------- Fig. 8 (smoke; the full sweep runs via cmd/kvsbench) ----------

func TestFig8ZswapShape(t *testing.T) {
	if testing.Short() {
		t.Skip("co-simulation experiment")
	}
	cfg := Fig8Config{Duration: shortDuration()}
	base := Fig8Zswap(Baseline, ycsbA(), cfg)
	cpu := Fig8Zswap(Fig8Variant(0), ycsbA(), cfg)
	cxlR := Fig8Zswap(Fig8Variant(3), ycsbA(), cfg)
	if !base.VerifyOK || !cpu.VerifyOK || !cxlR.VerifyOK {
		t.Fatal("data integrity lost under co-simulation")
	}
	cpuNorm := cpu.P99us / base.P99us
	cxlNorm := cxlR.P99us / base.P99us
	if cpuNorm < 3 {
		t.Errorf("cpu-zswap p99 = %.2fx baseline, paper 5.1-10.3x", cpuNorm)
	}
	if cxlNorm > 1.6 {
		t.Errorf("cxl-zswap p99 = %.2fx baseline, paper 1.14-1.26x", cxlNorm)
	}
	if cxlR.P99us >= cpu.P99us {
		t.Error("cxl-zswap must beat cpu-zswap")
	}
	if cxlR.FeatureCPUPct >= cpu.FeatureCPUPct {
		t.Error("cxl-zswap must consume less host CPU than cpu-zswap")
	}
}

func TestFig8KsmShape(t *testing.T) {
	if testing.Short() {
		t.Skip("co-simulation experiment")
	}
	cfg := Fig8Config{Duration: shortDuration()}
	base := Fig8Ksm(Baseline, ycsbA(), cfg)
	cpu := Fig8Ksm(Fig8Variant(0), ycsbA(), cfg)
	cxlR := Fig8Ksm(Fig8Variant(3), ycsbA(), cfg)
	if !base.VerifyOK || !cpu.VerifyOK || !cxlR.VerifyOK {
		t.Fatal("data integrity lost under ksm co-simulation")
	}
	if cpu.P99us/base.P99us < 2 {
		t.Errorf("cpu-ksm p99 = %.2fx baseline, paper 4.5-7.6x", cpu.P99us/base.P99us)
	}
	if cxlR.P99us/base.P99us > 1.6 {
		t.Errorf("cxl-ksm p99 = %.2fx baseline, paper 1.16-1.30x", cxlR.P99us/base.P99us)
	}
	if cxlR.P99us >= cpu.P99us {
		t.Error("cxl-ksm must beat cpu-ksm")
	}
}

func TestPrintersDoNotPanic(t *testing.T) {
	var sb strings.Builder
	PrintFig3(&sb, Fig3(Fig3Config{Reps: 4, Burst: 4}))
	PrintFig4(&sb, Fig4(Fig4Config{Reps: 4, Burst: 64}))
	PrintFig5(&sb, Fig5(Fig5Config{Reps: 4, Burst: 4}))
	PrintFig6(&sb, Fig6())
	PrintTable3(&sb, Table3())
	PrintTable4(&sb, Table4())
	PrintWriteQueueSweep(&sb, WriteQueueSweep([]int{16, 32}))
	if sb.Len() == 0 {
		t.Fatal("no output")
	}
	if !strings.Contains(sb.String(), "Table IV") {
		t.Fatal("missing table title")
	}
}

// TestDeterminism: identical configurations reproduce identical rows — the
// property that makes the recorded EXPERIMENTS.md numbers exact.
func TestDeterminism(t *testing.T) {
	a := Fig3(Fig3Config{Reps: 40})
	b := Fig3(Fig3Config{Reps: 40})
	if len(a) != len(b) {
		t.Fatal("row counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	t3a, t3b := Table4(), Table4()
	for i := range t3a {
		if t3a[i] != t3b[i] {
			t.Fatalf("Table4 row %d differs", i)
		}
	}
}

func TestFig8Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("co-simulation")
	}
	cfg := Fig8Config{Duration: 60 * 1e9} // 60 ms
	a := Fig8Zswap(Fig8Variant(3), ycsbA(), cfg)
	b := Fig8Zswap(Fig8Variant(3), ycsbA(), cfg)
	if a.P99us != b.P99us || a.Served != b.Served || a.Faults != b.Faults {
		t.Fatalf("nondeterministic co-simulation: %+v vs %+v", a, b)
	}
}
