package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/ycsb"
)

// Intra-job parallelism contract: the sections that fan sub-jobs out
// through Ctx.Fork (infer, workload, fig8) must render byte-identical
// output whether the subs run inline on one worker or spread across the
// pool. Run these under -race (CI does) to also exercise the Fork
// recruitment path for data races.

// renderSection runs one section's jobs at the given worker count and
// returns the rendered bytes.
func renderSection(t *testing.T, sec Section, workers int) string {
	t.Helper()
	results := runner.Run(sec.Jobs, runner.Options{Workers: workers, RootSeed: 7})
	var buf bytes.Buffer
	if err := sec.Render(&buf, results); err != nil {
		t.Fatalf("workers=%d: render %s: %v", workers, sec.Name, err)
	}
	return buf.String()
}

// forkWorkerCounts covers serial, the smallest genuinely parallel pool,
// and whatever the host offers.
func forkWorkerCounts() []int {
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		counts = append(counts, p)
	}
	return counts
}

func TestInferIntraJobParallelMatchesSerial(t *testing.T) {
	sec := section("infer", InferJobs(InferConfig{Reps: 30}), PrintInfer)
	serial := renderSection(t, sec, 1)
	if serial == "" {
		t.Fatal("empty infer section output")
	}
	for _, workers := range forkWorkerCounts()[1:] {
		if got := renderSection(t, sec, workers); got != serial {
			t.Errorf("infer section bytes diverged at %d workers", workers)
		}
	}
}

func TestWorkloadIntraJobParallelMatchesSerial(t *testing.T) {
	sec := section("workload", WorkloadJobs(WorkloadConfig{Reps: 30}), PrintWorkload)
	serial := renderSection(t, sec, 1)
	if serial == "" {
		t.Fatal("empty workload section output")
	}
	for _, workers := range forkWorkerCounts()[1:] {
		if got := renderSection(t, sec, workers); got != serial {
			t.Errorf("workload section bytes diverged at %d workers", workers)
		}
	}
}

func TestFig8IntraJobParallelMatchesSerial(t *testing.T) {
	// A short horizon keeps the five co-simulations per job affordable;
	// cfg.Seed stays 0 so each variant runs under its derived sub seed —
	// the path a parallel report run takes.
	cfg := Fig8Config{Duration: 30 * sim.Millisecond}
	sec := section("fig8", Fig8Jobs("zswap", []ycsb.Workload{ycsb.A}, cfg), PrintFig8)
	serial := renderSection(t, sec, 1)
	if serial == "" {
		t.Fatal("empty fig8 section output")
	}
	for _, workers := range forkWorkerCounts()[1:] {
		if got := renderSection(t, sec, workers); got != serial {
			t.Errorf("fig8 section bytes diverged at %d workers", workers)
		}
	}
}

// TestClusterIntraJobParallelMatchesSerial pins the acceptance-criteria
// identity: the cluster section — 4-replica scenarios drawing from a
// shared Type-3 pool behind one switch, fanned out as Fork sub-jobs —
// renders byte-identically serial and parallel (run under -race in CI).
func TestClusterIntraJobParallelMatchesSerial(t *testing.T) {
	sec := section("cluster", ClusterJobs(ClusterConfig{Reps: 30}), PrintCluster)
	serial := renderSection(t, sec, 1)
	if serial == "" {
		t.Fatal("empty cluster section output")
	}
	for _, workers := range forkWorkerCounts()[1:] {
		if got := renderSection(t, sec, workers); got != serial {
			t.Errorf("cluster section bytes diverged at %d workers", workers)
		}
	}
}

// TestForkSubJobPanicSurfacesAsJobError: a sub-job crash inside a section
// job must surface through the section's renderer as a job error naming
// the sub, without disturbing sibling sections or jobs.
func TestForkSubJobPanicSurfacesAsJobError(t *testing.T) {
	job := runner.Job{ID: "planted/fork", Run: func(ctx *runner.Ctx) (any, error) {
		subs := []runner.SubJob{
			{ID: "healthy", Run: func(*runner.Ctx) (any, error) { return []int{1}, nil }},
			{ID: "crash", Run: func(*runner.Ctx) (any, error) { panic("planted fork failure") }},
		}
		return forkRows[int](ctx, subs)
	}}
	for _, workers := range []int{1, 2} {
		results := runner.Run([]runner.Job{job}, runner.Options{Workers: workers})
		err := results[0].Err
		if err == nil {
			t.Fatalf("workers=%d: planted sub panic not surfaced", workers)
		}
		for _, want := range []string{"crash", "planted fork failure"} {
			if !bytes.Contains([]byte(err.Error()), []byte(want)) {
				t.Errorf("workers=%d: error %q does not mention %q", workers, err, want)
			}
		}
		if results[0].Panicked {
			t.Errorf("workers=%d: parent marked Panicked for a captured sub panic", workers)
		}
	}
}
