package experiments

import (
	"fmt"
	"io"

	"repro/internal/cxl"
	"repro/internal/phys"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig4Row is one bar of Fig. 4: D2D latency and bandwidth for one access
// type, DMC placement and bias mode — plus the emulated rows (a local core
// whose L1 stands in for DMC, §V-B).
type Fig4Row struct {
	Label        string
	Emulated     bool
	DMCHit       bool
	DeviceBias   bool
	LatencyNs    float64
	LatencyStd   float64
	BandwidthGBs float64
}

// Fig4Config tunes the experiment.
type Fig4Config struct {
	Reps  int
	Burst int
}

func (c *Fig4Config) setDefaults() {
	if c.Reps == 0 {
		c.Reps = 1000
	}
	if c.Burst == 0 {
		// D2D bandwidth is measured in steady state over a stream that
		// still fits the 512-line DMC, so DMC-1 cases stay hits.
		c.Burst = 480
	}
}

// Fig4 measures D2D accesses in host- and device-bias modes against DMC
// hits and misses, alongside the NUMA-emulated equivalents. It is the
// serial form of Fig4Jobs.
func Fig4(cfg Fig4Config) []Fig4Row {
	return collectRows[Fig4Row](runSerial(Fig4Jobs(cfg)))
}

// Fig4Jobs returns one self-contained job per Fig. 4 cell, in presentation
// order.
func Fig4Jobs(cfg Fig4Config) []runner.Job {
	cfg.setDefaults()
	ops := cfg.Reps + cfg.Burst
	var jobs []runner.Job
	for _, dmcHit := range []bool{true, false} {
		dmc := "DMC-0"
		if dmcHit {
			dmc = "DMC-1"
		}
		for _, pair := range trueD2HOps {
			req, op, hit := pair.req, pair.op, dmcHit
			for _, devBias := range []bool{false, true} {
				bias, db := "host-bias", devBias
				if devBias {
					bias = "device-bias"
				}
				jobs = append(jobs, cellJob(fmt.Sprintf("fig4/%s/%s/%s", dmc, req, bias), ops,
					func(seed int64) Fig4Row { return measureD2D(req, hit, db, cfg, seed) }))
			}
			jobs = append(jobs, cellJob(fmt.Sprintf("fig4/%s/%s", dmc, op), ops,
				func(seed int64) Fig4Row { return measureEmuD2D(op, hit, cfg, seed) }))
		}
	}
	return jobs
}

// primeDMC brings the target line into DMC in shared state (via a real
// CS-read, the paper's warm-up), or ensures its absence.
func primeDMC(r *Rig, addr phys.Addr, hit bool) {
	if hit {
		r.Dev.D2D(cxl.CSRead, addr, nil, 0)
	} else {
		r.Dev.DMC().Invalidate(addr)
	}
}

func measureD2D(req cxl.D2HReq, dmcHit, devBias bool, cfg Fig4Config, seed int64) Fig4Row {
	r := NewRigSeeded(cxl.Type2, seed)
	if devBias {
		r.Dev.EnterDeviceBias(phys.Range{Base: r.devLine(0) &^ 0xFFFFFFF, Size: 1 << 28}, 0)
	}
	lat := stats.NewSample(cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		addr := r.devLine(rep)
		primeDMC(r, addr, dmcHit)
		r.Host.ResetTiming()
		res := r.Dev.D2D(req, addr, nil, 0)
		lat.Add(res.Done.Nanoseconds())
	}
	base := cfg.Reps + 1
	for i := 0; i < cfg.Burst; i++ {
		primeDMC(r, r.devLine(base+i), dmcHit)
	}
	r.Host.ResetTiming()
	// Steady-state bandwidth: skip the pipeline-fill warm-up, then measure
	// the completion rate of the remaining stream.
	warm := cfg.Burst / 8
	var warmDone, last sim.Time
	for i := 0; i < cfg.Burst; i++ {
		res := r.Dev.D2D(req, r.devLine(base+i), nil, 0)
		if i == warm-1 {
			warmDone = res.Done
		}
		if res.Done > last {
			last = res.Done
		}
	}
	bw := float64((cfg.Burst-warm)*phys.LineSize) / (last - warmDone).Seconds() / 1e9
	return Fig4Row{
		Label:        req.String(),
		DMCHit:       dmcHit,
		DeviceBias:   devBias,
		LatencyNs:    lat.Median(),
		LatencyStd:   lat.StdDev(),
		BandwidthGBs: bw,
	}
}

func measureEmuD2D(op cxl.HostOp, dmcHit bool, cfg Fig4Config, seed int64) Fig4Row {
	r := NewRigSeeded(cxl.Type2, seed)
	lat := stats.NewSample(cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		r.Emu.ResetTiming()
		lat.Add(r.Emu.D2D(op, dmcHit, 0).Nanoseconds())
	}
	r.Emu.ResetTiming()
	warm := cfg.Burst / 8
	var warmDone, last sim.Time
	for i := 0; i < cfg.Burst; i++ {
		done := r.Emu.D2D(op, dmcHit, 0)
		if i == warm-1 {
			warmDone = done
		}
		if done > last {
			last = done
		}
	}
	bw := float64((cfg.Burst-warm)*phys.LineSize) / (last - warmDone).Seconds() / 1e9
	return Fig4Row{
		Label:        op.String(),
		Emulated:     true,
		DMCHit:       dmcHit,
		LatencyNs:    lat.Median(),
		LatencyStd:   lat.StdDev(),
		BandwidthGBs: bw,
	}
}

// PrintFig4 renders the rows.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	var table [][]string
	for _, r := range rows {
		kind := "true-CXL"
		bias := "host-bias"
		if r.Emulated {
			kind, bias = "emulated", "-"
		} else if r.DeviceBias {
			bias = "device-bias"
		}
		dmc := "DMC-0"
		if r.DMCHit {
			dmc = "DMC-1"
		}
		table = append(table, []string{
			r.Label, kind, bias, dmc,
			fmtCell(r.LatencyNs), fmtCell(r.BandwidthGBs),
		})
	}
	printTable(w, "Fig. 4 — D2D accesses: host-bias vs device-bias (and emulated)",
		[]string{"access", "kind", "bias", "DMC", "lat(ns)", "BW(GB/s)"}, table)
}

// Fig4Find locates a row.
func Fig4Find(rows []Fig4Row, label string, emulated, dmcHit, devBias bool) Fig4Row {
	for _, r := range rows {
		if r.Label == label && r.Emulated == emulated && r.DMCHit == dmcHit && (emulated || r.DeviceBias == devBias) {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no Fig4 row %q emu=%v dmc=%v bias=%v", label, emulated, dmcHit, devBias))
}
