package experiments

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/phys"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig5Case selects the device-side placement for an H2D access.
type Fig5Case uint8

// Fig. 5 cases: Type-3 baseline, Type-2 with DMC miss, Type-2 with DMC hits
// in shared/owned/modified state, and the NC-P-pushed fast path.
const (
	CaseT3 Fig5Case = iota
	CaseT2Miss
	CaseT2Shared
	CaseT2Owned
	CaseT2Modified
	CaseT2Pushed // line pre-pushed into host LLC with NC-P (Insight 4)
)

// String names the case.
func (c Fig5Case) String() string {
	switch c {
	case CaseT3:
		return "T3/DMC-0"
	case CaseT2Miss:
		return "T2/DMC-0"
	case CaseT2Shared:
		return "T2/DMC-1(S)"
	case CaseT2Owned:
		return "T2/DMC-1(O)"
	case CaseT2Modified:
		return "T2/DMC-1(M)"
	case CaseT2Pushed:
		return "T2/NC-P→LLC"
	default:
		return fmt.Sprintf("Fig5Case(%d)", uint8(c))
	}
}

// Fig5Cases lists all cases in presentation order.
func Fig5Cases() []Fig5Case {
	return []Fig5Case{CaseT3, CaseT2Miss, CaseT2Shared, CaseT2Owned, CaseT2Modified, CaseT2Pushed}
}

// Fig5Row is one bar of Fig. 5.
type Fig5Row struct {
	Op           cxl.HostOp
	Case         Fig5Case
	LatencyNs    float64
	LatencyStd   float64
	BandwidthGBs float64
}

// Fig5Config tunes the experiment.
type Fig5Config struct {
	Reps  int
	Burst int
}

func (c *Fig5Config) setDefaults() {
	if c.Reps == 0 {
		c.Reps = 1000
	}
	if c.Burst == 0 {
		c.Burst = 16
	}
}

// Fig5 measures H2D accesses (host core ld/nt-ld/st/nt-st to device
// memory) across device personalities and DMC states. It is the serial
// form of Fig5Jobs.
func Fig5(cfg Fig5Config) []Fig5Row {
	return collectRows[Fig5Row](runSerial(Fig5Jobs(cfg)))
}

// Fig5Jobs returns one self-contained job per Fig. 5 cell, in presentation
// order.
func Fig5Jobs(cfg Fig5Config) []runner.Job {
	cfg.setDefaults()
	ops := cfg.Reps + cfg.Burst
	var jobs []runner.Job
	for _, op := range []cxl.HostOp{cxl.Ld, cxl.NtLd, cxl.St, cxl.NtSt} {
		for _, cs := range Fig5Cases() {
			op, cs := op, cs
			jobs = append(jobs, cellJob(fmt.Sprintf("fig5/%s/%s", op, cs), ops,
				func(seed int64) Fig5Row { return measureH2D(op, cs, cfg, seed) }))
		}
	}
	return jobs
}

func fig5Rig(cs Fig5Case, seed int64) *Rig {
	if cs == CaseT3 {
		return NewRigSeeded(cxl.Type3, seed)
	}
	return NewRigSeeded(cxl.Type2, seed)
}

// primeFig5 sets up the device-side state for one access.
func primeFig5(r *Rig, cs Fig5Case, addr phys.Addr) {
	// The host must not have the line cached (except the pushed case).
	r.Host.LLC().Invalidate(addr)
	switch cs {
	case CaseT3, CaseT2Miss:
	case CaseT2Shared:
		r.Dev.SetDMCState(addr, cache.Shared, nil)
	case CaseT2Owned:
		r.Dev.SetDMCState(addr, cache.Owned, nil)
	case CaseT2Modified:
		r.Dev.SetDMCState(addr, cache.Modified, nil)
	case CaseT2Pushed:
		// The device pushes the line the host is about to access into host
		// LLC with NC-P.
		r.Dev.D2H(cxl.NCP, addr, nil, 0)
	}
}

func measureH2D(op cxl.HostOp, cs Fig5Case, cfg Fig5Config, seed int64) Fig5Row {
	r := fig5Rig(cs, seed)
	core := r.Host.Core(0)
	lat := stats.NewSample(cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		addr := r.devLine(rep)
		primeFig5(r, cs, addr)
		r.Host.ResetTiming()
		res := core.Access(op, addr, nil, 0)
		done := res.Done
		if op == cxl.NtSt {
			// A posted store's core-visible time is near zero; the paper's
			// latency for nt-st reflects the write landing at the device.
			done = res.DeviceDone
		}
		lat.Add(done.Nanoseconds())
	}
	base := cfg.Reps + 1
	for i := 0; i < cfg.Burst; i++ {
		primeFig5(r, cs, r.devLine(base+i))
	}
	r.Host.ResetTiming()
	var last sim.Time
	for i := 0; i < cfg.Burst; i++ {
		res := core.Access(op, r.devLine(base+i), nil, 0)
		if res.Done > last {
			last = res.Done
		}
	}
	// Bandwidth keeps posted semantics for nt-st: the core perceives the
	// stores complete at the CXL controller (§V-C).
	bw := float64(cfg.Burst*phys.LineSize) / last.Seconds() / 1e9
	return Fig5Row{
		Op:           op,
		Case:         cs,
		LatencyNs:    lat.Median(),
		LatencyStd:   lat.StdDev(),
		BandwidthGBs: bw,
	}
}

// PrintFig5 renders the rows.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Op.String(), r.Case.String(),
			fmtCell(r.LatencyNs), fmtCell(r.BandwidthGBs),
		})
	}
	printTable(w, "Fig. 5 — H2D accesses: CXL Type-2 vs Type-3, DMC states, NC-P push",
		[]string{"op", "case", "lat(ns)", "BW(GB/s)"}, table)
}

// Fig5Find locates a row.
func Fig5Find(rows []Fig5Row, op cxl.HostOp, cs Fig5Case) Fig5Row {
	for _, r := range rows {
		if r.Op == op && r.Case == cs {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no Fig5 row %v/%v", op, cs))
}
