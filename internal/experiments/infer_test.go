package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestInferTierOrdering pins the section's headline: with the whole KV
// cache in one tier, serving latency orders DRAM < Type-2 device-bias <
// Type-3 < PCIe-DMA, and host bias costs more than device bias on the
// same memory.
func TestInferTierOrdering(t *testing.T) {
	rows := Infer(InferConfig{Seed: SeedRig})
	order := []string{"all-dram", "kv@t2-dev", "kv@t3", "kv@pcie-dma"}
	for i := 1; i < len(order); i++ {
		lo := InferFind(rows, order[i-1])
		hi := InferFind(rows, order[i])
		if !(lo.TPOT < hi.TPOT) {
			t.Errorf("TPOT ordering violated: %s (%.3f) !< %s (%.3f)",
				lo.Scenario, lo.TPOT, hi.Scenario, hi.TPOT)
		}
		if !(lo.TTFTp50 < hi.TTFTp50) {
			t.Errorf("TTFT ordering violated: %s (%.3f) !< %s (%.3f)",
				lo.Scenario, lo.TTFTp50, hi.Scenario, hi.TTFTp50)
		}
		if !(lo.Goodput > hi.Goodput) {
			t.Errorf("goodput ordering violated: %s (%.0f) !> %s (%.0f)",
				lo.Scenario, lo.Goodput, hi.Scenario, hi.Goodput)
		}
	}
	devBias := InferFind(rows, "kv@t2-dev")
	hostBias := InferFind(rows, "kv@t2-host")
	if !(devBias.TPOT < hostBias.TPOT) {
		t.Errorf("device bias (%.3f) should beat host bias (%.3f) on the same memory",
			devBias.TPOT, hostBias.TPOT)
	}
}

func TestInferTraffic(t *testing.T) {
	rows := Infer(InferConfig{Seed: SeedRig})
	if r := InferFind(rows, "all-dram"); r.FarMB != 0 || r.NearMB == 0 {
		t.Errorf("all-dram traffic wrong: %+v", r)
	}
	if r := InferFind(rows, "kv@t3"); r.NearMB != 0 || r.FarMB == 0 {
		t.Errorf("kv@t3 traffic wrong: %+v", r)
	}
	if r := InferFind(rows, "lru-spill"); r.MigrateMB == 0 || r.FarMB == 0 {
		t.Errorf("lru-spill produced no migrations: %+v", r)
	}
	if r := InferFind(rows, "pinned-decode"); r.NearMB == 0 || r.FarMB == 0 {
		t.Errorf("pinned-decode should split traffic: %+v", r)
	}
}

func TestInferJobsDeterministicAcrossRuns(t *testing.T) {
	a := Infer(InferConfig{Reps: 30})
	b := Infer(InferConfig{Reps: 30})
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d diverged across runs:\n a=%+v\n b=%+v", i, a[i], b[i])
		}
	}
}

func TestPrintInferRenders(t *testing.T) {
	var buf bytes.Buffer
	PrintInfer(&buf, Infer(InferConfig{Reps: 24}))
	out := buf.String()
	for _, want := range []string{"KV-cache placement", "all-dram", "pinned-decode", "TPOT(us)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
