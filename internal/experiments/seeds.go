package experiments

// Seed registry: every random stream the experiment drivers draw is rooted
// here and built through the rng package, so one file answers "where does
// this experiment's randomness come from". The numeric values are part of
// the calibration — the calibration tests pin medians produced under these
// exact streams — so changing one is a recalibration event, not a refactor.
const (
	// SeedRig feeds the per-rig stream of the §V microbenchmark drivers.
	SeedRig int64 = 42
	// SeedTable4Page generates the representative 70%-compressible page of
	// the Table 4 latency breakdown.
	SeedTable4Page int64 = 4
)

// Fig. 8's end-to-end runs take a user seed (Fig8Config.Seed) and derive
// the independent streams at fixed offsets: keeping the offsets distinct
// keeps the YCSB key stream, the Poisson arrival stream, the antagonist's
// churn and the page-content stream decorrelated.
const (
	seedOffFig8LoadGen    int64 = 1 // request arrivals (kvs load generator)
	seedOffFig8Pages      int64 = 3 // synthetic page contents
	seedOffFig8Antagonist int64 = 7 // memory-churn co-runner
	seedOffFig8KsmSleep   int64 = 9 // ksmd drawn sleeps (Temporal runs only)
)

// seedFig8Calibrated is the Fig8Config.Seed the calibration (and the
// legacy Fig8/kvsbench paths) run under. The parallel suite instead
// derives each fig8 job's seed from (rootSeed, jobID) through internal/rng
// — see Fig8Jobs — so a suite run is reproducible from one root integer
// while the calibrated numbers stay pinned to this constant.
const seedFig8Calibrated int64 = 1
