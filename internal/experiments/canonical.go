package experiments

import "fmt"

// Canonical result-cache keys for the serving layer. A key must encode
// everything the rendered bytes depend on — section identity, repetition
// count, root seed, output format — and nothing else: worker counts and
// scheduling are deliberately absent because the runner renders
// byte-identical output for any pool size, which is precisely what makes
// cached section output safe to share between requests.

// CacheKeyVersion names the canonical key schema. It is the "v1" prefix
// every key below carries, surfaced as a constant so the serving layer can
// advertise it (GET /v1/version), the distributed protocol can refuse
// mixed-version peers, and the durable result store can fold it into its
// on-disk paths — a key-schema change then lands in a fresh directory
// instead of aliasing stale entries. Bump it whenever the meaning of an
// existing key changes (renamed sections, reinterpreted fields); purely
// additive key components do not require a bump because they cannot alias.
const CacheKeyVersion = "v1"

// SectionKey is the canonical cache key for rendering the named section
// at the given repetition count, root seed and output format ("text" or
// "json").
func SectionKey(name string, reps int, seed int64, format string) string {
	return fmt.Sprintf("v1/section|%s|reps=%d|seed=%d|format=%s", name, reps, seed, format)
}

// SectionKeyTrace is SectionKey for a run that replays a recorded trace:
// the trace's content hash joins the key because the rendered bytes now
// depend on the replayed stream, and two different traces must never share
// a cache entry. The hash is of the canonical encoding, so it identifies
// the stream itself, not the upload that carried it.
func SectionKeyTrace(name string, reps int, seed int64, format string, traceHash uint64) string {
	return fmt.Sprintf("%s|trace=%016x", SectionKey(name, reps, seed, format), traceHash)
}

// SectionKeyTopology is SectionKey for a run over a non-default fabric
// topology: the topology's canonical key (fabric.Topology.CanonicalKey —
// sorted, orientation-free, defaults normalized) joins the cache key
// because the rendered bytes depend on the compiled fabric, and two
// topologies that Build observationally identical fabrics must share an
// entry while any parameter change must miss. The default topology is
// deliberately NOT folded in, so pre-fabric cache entries stay valid.
func SectionKeyTopology(name string, reps int, seed int64, format, topoKey string) string {
	return fmt.Sprintf("%s|topo=%s", SectionKey(name, reps, seed, format), topoKey)
}

// ReportKey is the canonical cache key for the full paper-vs-measured
// comparison report.
func ReportKey(reps int, full bool, seed int64) string {
	return fmt.Sprintf("v1/report|reps=%d|full=%t|seed=%d", reps, full, seed)
}
