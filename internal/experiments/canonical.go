package experiments

import "fmt"

// Canonical result-cache keys for the serving layer. A key must encode
// everything the rendered bytes depend on — section identity, repetition
// count, root seed, output format — and nothing else: worker counts and
// scheduling are deliberately absent because the runner renders
// byte-identical output for any pool size, which is precisely what makes
// cached section output safe to share between requests.

// SectionKey is the canonical cache key for rendering the named section
// at the given repetition count, root seed and output format ("text" or
// "json").
func SectionKey(name string, reps int, seed int64, format string) string {
	return fmt.Sprintf("v1/section|%s|reps=%d|seed=%d|format=%s", name, reps, seed, format)
}

// ReportKey is the canonical cache key for the full paper-vs-measured
// comparison report.
func ReportKey(reps int, full bool, seed int64) string {
	return fmt.Sprintf("v1/report|reps=%d|full=%t|seed=%d", reps, full, seed)
}
