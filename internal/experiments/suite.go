package experiments

import (
	"fmt"
	"io"

	"repro/internal/runner"
)

// This file is the experiment registry: every figure and table of the
// paper's evaluation decomposed into self-contained runner jobs (one rig
// or co-simulation per job, nothing shared), plus the section list the
// commands fan out over a worker pool. The serial drivers (Fig3, Fig4, …)
// run the very same jobs on one worker, so parallel and serial runs share
// a single enumeration and produce byte-identical output for the same
// root seed.

// cellJob wraps one measurement cell as a runner job: the cell receives
// the job's derived seed and returns one typed row; ops is the simulated
// access count credited to the event-rate stat (the microbenchmark rigs
// have no central event queue, so accesses are the honest unit).
func cellJob[T any](id string, ops int, cell func(seed int64) T) runner.Job {
	return runner.Job{ID: id, Run: func(ctx *runner.Ctx) (any, error) {
		ctx.AddEvents(uint64(ops))
		return []T{cell(ctx.Seed)}, nil
	}}
}

// sliceJob wraps a cell producing several rows at once (e.g. one Fig. 6
// mechanism across all sizes).
func sliceJob[T any](id string, ops int, cell func(seed int64) []T) runner.Job {
	return runner.Job{ID: id, Run: func(ctx *runner.Ctx) (any, error) {
		ctx.AddEvents(uint64(ops))
		return cell(ctx.Seed), nil
	}}
}

// forkRows fans subs out through ctx.Fork — intra-job parallelism for the
// big slice sections — and concatenates their []T fragments in submission
// order, surfacing the first sub-job failure (captured panics included) as
// the job's error. Because Fork merges in submission order and every sub's
// randomness is resolved from seeds rather than scheduling, the
// concatenation is byte-identical to running the cells inline.
func forkRows[T any](ctx *runner.Ctx, subs []runner.SubJob) ([]T, error) {
	var rows []T
	for _, r := range ctx.Fork(subs) {
		if r.Err != nil {
			return nil, r.Err
		}
		if frag, ok := r.Value.([]T); ok {
			rows = append(rows, frag...)
		}
	}
	return rows, nil
}

// runSerial executes jobs on one worker under the default root seed — the
// legacy serial drivers are this plus a collect.
func runSerial(jobs []runner.Job) []runner.Result {
	return runner.Run(jobs, runner.Options{Workers: 1})
}

// collectRows concatenates the per-job []T fragments in job order. A
// failed job's fragment is skipped; the suite-level callers surface the
// error through runner.Values before rendering.
func collectRows[T any](results []runner.Result) []T {
	var rows []T
	for _, r := range results {
		if frag, ok := r.Value.([]T); ok {
			rows = append(rows, frag...)
		}
	}
	return rows
}

// Section is one rendered block of experiment output: the jobs that
// produce its rows and the renderer that assembles them, in job order,
// into the block. Render must not depend on anything but the passed
// results — sections from one suite run can be rendered in any order.
type Section struct {
	Name   string
	Jobs   []runner.Job
	Render func(w io.Writer, results []runner.Result) error
}

// section builds a Section whose renderer collects []T fragments and
// prints them with the figure's printer.
func section[T any](name string, jobs []runner.Job, print func(io.Writer, []T)) Section {
	return Section{
		Name: name,
		Jobs: jobs,
		Render: func(w io.Writer, results []runner.Result) error {
			if _, err := runner.Values(results); err != nil {
				return err
			}
			print(w, collectRows[T](results))
			return nil
		},
	}
}

// SuiteConfig tunes cross-section execution knobs of the assembled
// suite. Everything here is output-neutral: rows are byte-identical at
// every setting, so none of it joins section cache keys.
type SuiteConfig struct {
	// ClusterShards caps the worker count for sharded PDES execution of
	// each cluster simulation (0 or 1 runs inline); workers are
	// recruited from the runner pool (see ClusterConfig.Shards).
	ClusterShards int
}

// Sections returns the cxlbench experiment sections in presentation
// order. reps tunes the repetition count of the experiments that take one
// (0 keeps the paper's defaults).
func Sections(reps int) []Section {
	return SectionsCfg(reps, SuiteConfig{})
}

// SectionsCfg is Sections with suite-level execution knobs.
func SectionsCfg(reps int, suite SuiteConfig) []Section {
	f3 := Fig3Config{Reps: reps}
	f4 := Fig4Config{Reps: reps}
	f5 := Fig5Config{Reps: reps}
	return []Section{
		section("table3", Table3Jobs(), PrintTable3),
		section("fig3", Fig3Jobs(f3), PrintFig3),
		section("fig4", Fig4Jobs(f4), PrintFig4),
		section("fig5", Fig5Jobs(f5), PrintFig5),
		section("fig6", Fig6Jobs(), PrintFig6),
		section("wqsweep", WriteQueueSweepJobs(nil), PrintWriteQueueSweep),
		section("infer", InferJobs(InferConfig{Reps: reps}), PrintInfer),
		section("workload", WorkloadJobs(WorkloadConfig{Reps: reps}), PrintWorkload),
		section("cluster", ClusterJobs(ClusterConfig{Reps: reps, Shards: suite.ClusterShards}), PrintCluster),
	}
}

// SectionNames lists the registered section names in presentation order —
// the single source the commands derive their usage text and section
// validation from, so the list can never drift from the registry again.
func SectionNames() []string {
	secs := Sections(0)
	names := make([]string, len(secs))
	for i, s := range secs {
		names[i] = s.Name
	}
	return names
}

// SectionByName locates a section.
func SectionByName(secs []Section, name string) (Section, bool) {
	for _, s := range secs {
		if s.Name == name {
			return s, true
		}
	}
	return Section{}, false
}

// RunSections executes the given sections' jobs on one shared pool (the
// fine-grained cells load-balance across workers better than one pool per
// section would) and renders each section in order. It returns the
// per-job results for stats reporting.
func RunSections(w io.Writer, secs []Section, opts runner.Options) ([]runner.Result, error) {
	var jobs []runner.Job
	for _, s := range secs {
		jobs = append(jobs, s.Jobs...)
	}
	results := runner.Run(jobs, opts)
	off := 0
	var firstErr error
	for _, s := range secs {
		if err := s.Render(w, results[off:off+len(s.Jobs)]); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("section %s: %w", s.Name, err)
		}
		off += len(s.Jobs)
	}
	return results, firstErr
}
