package experiments

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/phys"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig3Row is one bar of Fig. 3: the latency and bandwidth of one D2H access
// type (true CXL or UPI-emulated) against one LLC placement.
type Fig3Row struct {
	// Label is the access name: NC-rd / CS-rd / NC-wr / CO-wr for true
	// D2H, nt-ld / ld / nt-st / st for emulated.
	Label string
	// True marks CXL Type-2 rows; false marks UPI-emulated rows.
	True bool
	// LLCHit is the LLC-1 (true) / LLC-0 (false) case.
	LLCHit bool
	// LatencyNs is the median single-access latency; LatencyStd its
	// standard deviation across repetitions.
	LatencyNs, LatencyStd float64
	// BandwidthGBs is the measured bandwidth of AccessesPerBurst
	// back-to-back accesses.
	BandwidthGBs float64
}

// Fig3Config tunes the experiment; zero values take the paper's settings.
type Fig3Config struct {
	// Reps is the repetition count (paper: >= 1000).
	Reps int
	// Burst is the number of back-to-back accesses in the bandwidth
	// measurement (paper: 16 × 64 B).
	Burst int
}

func (c *Fig3Config) setDefaults() {
	if c.Reps == 0 {
		c.Reps = 1000
	}
	if c.Burst == 0 {
		c.Burst = 16
	}
}

// trueD2HOps pairs the paper's D2H hints with their emulated host ops.
var trueD2HOps = []struct {
	req cxl.D2HReq
	op  cxl.HostOp
}{
	{cxl.NCRead, cxl.NtLd},
	{cxl.CSRead, cxl.Ld},
	{cxl.NCWrite, cxl.NtSt},
	{cxl.COWrite, cxl.St},
}

// Fig3 measures the latency and bandwidth of true and emulated D2H
// accesses (Fig. 3 of the paper): NC-rd/CS-rd/NC-wr/CO-wr issued by the
// device LSU versus nt-ld/ld/nt-st/st issued by a remote-socket core, each
// against LLC-resident (LLC-1) and LLC-absent (LLC-0) lines. It is the
// serial form of Fig3Jobs: one enumeration backs both, so parallel and
// serial runs produce identical row order.
func Fig3(cfg Fig3Config) []Fig3Row {
	return collectRows[Fig3Row](runSerial(Fig3Jobs(cfg)))
}

// Fig3Jobs returns one self-contained job per Fig. 3 cell, in presentation
// order. Each job builds its own rig, so jobs are shared-nothing.
func Fig3Jobs(cfg Fig3Config) []runner.Job {
	cfg.setDefaults()
	var jobs []runner.Job
	for _, llcHit := range []bool{true, false} {
		llc := "LLC-0"
		if llcHit {
			llc = "LLC-1"
		}
		for _, pair := range trueD2HOps {
			req, op, hit := pair.req, pair.op, llcHit
			jobs = append(jobs,
				cellJob(fmt.Sprintf("fig3/%s/%s", llc, req), cfg.Reps+cfg.Burst,
					func(seed int64) Fig3Row { return measureTrueD2H(req, hit, cfg, seed) }),
				cellJob(fmt.Sprintf("fig3/%s/%s", llc, op), cfg.Reps+cfg.Burst,
					func(seed int64) Fig3Row { return measureEmuD2H(op, hit, cfg, seed) }))
		}
	}
	return jobs
}

// primeLLC installs (or ensures the absence of) the target line in LLC,
// following the paper's CLDEMOTE methodology.
func primeLLC(r *Rig, addr phys.Addr, hit bool) {
	core := r.Host.Core(0)
	if hit {
		core.CLDemote(addr, cache.Exclusive, nil, 0)
	} else {
		core.CLFlush(addr, 0)
	}
}

func measureTrueD2H(req cxl.D2HReq, llcHit bool, cfg Fig3Config, seed int64) Fig3Row {
	r := NewRigSeeded(cxl.Type2, seed)
	lat := stats.NewSample(cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		addr := r.hostLine(rep)
		primeLLC(r, addr, llcHit)
		r.Host.ResetTiming()
		res := r.Dev.D2H(req, addr, nil, 0)
		lat.Add(res.Done.Nanoseconds())
	}
	// Bandwidth: Burst back-to-back accesses to fresh primed lines.
	base := cfg.Reps + 1
	for i := 0; i < cfg.Burst; i++ {
		primeLLC(r, r.hostLine(base+i), llcHit)
	}
	r.Host.ResetTiming()
	var last sim.Time
	for i := 0; i < cfg.Burst; i++ {
		res := r.Dev.D2H(req, r.hostLine(base+i), nil, 0)
		if res.Done > last {
			last = res.Done
		}
	}
	bw := float64(cfg.Burst*phys.LineSize) / last.Seconds() / 1e9
	return Fig3Row{
		Label:        req.String(),
		True:         true,
		LLCHit:       llcHit,
		LatencyNs:    lat.Median(),
		LatencyStd:   lat.StdDev(),
		BandwidthGBs: bw,
	}
}

func measureEmuD2H(op cxl.HostOp, llcHit bool, cfg Fig3Config, seed int64) Fig3Row {
	r := NewRigSeeded(cxl.Type2, seed)
	lat := stats.NewSample(cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		addr := r.hostLine(rep)
		primeLLC(r, addr, llcHit)
		r.Host.ResetTiming()
		r.Emu.ResetTiming()
		done := r.Emu.D2H(op, addr, 0)
		lat.Add(done.Nanoseconds())
	}
	base := cfg.Reps + 1
	for i := 0; i < cfg.Burst; i++ {
		primeLLC(r, r.hostLine(base+i), llcHit)
	}
	r.Host.ResetTiming()
	r.Emu.ResetTiming()
	var last sim.Time
	for i := 0; i < cfg.Burst; i++ {
		done := r.Emu.D2H(op, r.hostLine(base+i), 0)
		if done > last {
			last = done
		}
	}
	bw := float64(cfg.Burst*phys.LineSize) / last.Seconds() / 1e9
	return Fig3Row{
		Label:        op.String(),
		True:         false,
		LLCHit:       llcHit,
		LatencyNs:    lat.Median(),
		LatencyStd:   lat.StdDev(),
		BandwidthGBs: bw,
	}
}

// PrintFig3 renders the rows like the paper's figure.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	var table [][]string
	for _, r := range rows {
		kind := "emulated"
		if r.True {
			kind = "true-CXL"
		}
		llc := "LLC-0"
		if r.LLCHit {
			llc = "LLC-1"
		}
		table = append(table, []string{
			r.Label, kind, llc,
			fmtCell(r.LatencyNs), fmtCell(r.LatencyStd), fmtCell(r.BandwidthGBs),
		})
	}
	printTable(w, "Fig. 3 — D2H accesses: true CXL Type-2 vs UPI-emulated",
		[]string{"access", "kind", "LLC", "lat(ns)", "stdev", "BW(GB/s)"}, table)
}

// Fig3Find returns the row matching the given coordinates (helper for tests
// and reports).
func Fig3Find(rows []Fig3Row, label string, isTrue, llcHit bool) Fig3Row {
	for _, r := range rows {
		if r.Label == label && r.True == isTrue && r.LLCHit == llcHit {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no Fig3 row %q true=%v llc=%v", label, isTrue, llcHit))
}
