package experiments

import (
	"repro/internal/sim"
	"repro/internal/ycsb"
)

func shortDuration() sim.Time { return 150 * sim.Millisecond }
func ycsbA() ycsb.Workload    { return ycsb.A }
