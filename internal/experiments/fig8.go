package experiments

import (
	"fmt"
	"io"

	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/kernel"
	"repro/internal/ksm"
	"repro/internal/kvs"
	"repro/internal/lzc"
	"repro/internal/mem"
	"repro/internal/offload"
	"repro/internal/phys"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
	"repro/internal/ycsb"
	"repro/internal/zswap"
)

// Fig8Variant selects the kernel-feature configuration of one run.
// -1 is the no-feature baseline; otherwise it is an offload.Variant.
type Fig8Variant int

// Baseline marks the "Redis running alone" configuration.
const Baseline Fig8Variant = -1

// String names the configuration with the paper's prefixes.
func (v Fig8Variant) String() string {
	if v == Baseline {
		return "no"
	}
	return offload.Variant(v).String()
}

// Fig8Variants lists baseline + the four backends in the paper's order.
func Fig8Variants() []Fig8Variant {
	return []Fig8Variant{Baseline, Fig8Variant(offload.CPU), Fig8Variant(offload.PCIeRDMA),
		Fig8Variant(offload.PCIeDMA), Fig8Variant(offload.CXL)}
}

// Fig8Row is one bar of Fig. 8.
type Fig8Row struct {
	Feature  string // "zswap" or "ksm"
	Variant  Fig8Variant
	Workload ycsb.Workload
	// P99us is the measured 99th-percentile latency in microseconds;
	// NormP99 is P99 normalized to the same-workload baseline. P50us and
	// P999us bracket the tail.
	P50us   float64
	P99us   float64
	P999us  float64
	NormP99 float64
	Served  uint64
	Faults  uint64
	// FeatureCPUPct is the share of the observed cores' cycles consumed by
	// the kernel feature (the §VII host-CPU-cycle metric).
	FeatureCPUPct float64
	// PollutedLines is the feature's cumulative LLC displacement.
	PollutedLines uint64
	// VerifyOK is the end-to-end data-integrity check.
	VerifyOK bool
}

// Fig8Config shapes the co-simulation; zero values take calibrated
// defaults.
type Fig8Config struct {
	Duration sim.Time
	Seed     int64
	// RatePerSec is the aggregate request rate over all servers.
	RatePerSec float64
	// Zipfian switches the key distribution from the paper's uniform to
	// YCSB's zipfian chooser — an extension beyond the paper: skew keeps
	// the hot set resident, so reclaim falls on cold pages and tails
	// tighten.
	Zipfian bool
	// KswapdBatch overrides kswapd's scheduling quantum in pages (0 takes
	// the calibrated default of 8) — the cond_resched-granularity ablation.
	KswapdBatch int
	// Temporal replaces the stationary drivers with the traffic library's
	// temporal models: request arrivals follow a rate curve oscillating
	// around RatePerSec with burst overlays, the zswap antagonist's churn
	// bursts arrive episodically, and ksmd's inter-batch sleeps are drawn
	// rather than fixed. Off by default — the calibrated stationary runs
	// stay bit-identical.
	Temporal bool
}

// fig8ArrivalSource builds the temporal request stream for one run: a
// four-phase curve oscillating around rate (period 100 ms, several cycles
// inside the 300 ms horizon) with thundering-herd bursts layered on top.
func fig8ArrivalSource(rate float64) workload.ArrivalSource {
	curve := workload.MustNewRateCurve(100*sim.Millisecond,
		workload.RatePoint{At: 0, RatePerSec: 0.5 * rate},
		workload.RatePoint{At: 25 * sim.Millisecond, RatePerSec: 1.5 * rate},
		workload.RatePoint{At: 50 * sim.Millisecond, RatePerSec: 0.75 * rate},
		workload.RatePoint{At: 75 * sim.Millisecond, RatePerSec: 1.25 * rate},
	)
	return workload.NewTemporal(curve).WithBursts(workload.BurstSpec{
		MeanGap:    40 * sim.Millisecond,
		MeanLen:    3 * sim.Millisecond,
		Factor:     3,
		Cooldown:   5 * sim.Millisecond,
		CoolFactor: 0.5,
	})
}

// fig8LoadGen builds the run's load generator: stationary Poisson, or the
// temporal source when cfg.Temporal is set.
func fig8LoadGen(eng *sim.Engine, servers []*kvs.Server, gen *ycsb.Generator, cfg Fig8Config) *kvs.LoadGen {
	if cfg.Temporal {
		return kvs.NewLoadGenArrivals(eng, servers, gen,
			fig8ArrivalSource(cfg.RatePerSec), cfg.Seed+seedOffFig8LoadGen)
	}
	return kvs.NewLoadGen(eng, servers, gen, cfg.RatePerSec, cfg.Seed+seedOffFig8LoadGen)
}

func (c Fig8Config) dist() ycsb.Distribution {
	if c.Zipfian {
		return ycsb.Zipfian
	}
	return ycsb.Uniform
}

func (c *Fig8Config) setDefaults() {
	if c.Duration == 0 {
		c.Duration = 300 * sim.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 60_000
	}
}

// fig8Host builds the half-system host of the §VII methodology (SNC mode:
// 16 cores, 4 memory channels). A reduced LLC keeps the model light; cache
// pressure is represented through the pollution channel.
func fig8Host() (*host.Host, *offload.Platform) {
	p := timing.Default()
	h := host.MustNew(p, host.Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 16, SNC: true})
	if _, err := h.Attach(device.DefaultConfig()); err != nil {
		panic(err)
	}
	return h, offload.NewPlatform(h)
}

const fig8FrameBase = phys.Addr(0x2000_0000)

// Fig8Diag carries extra observability for scenario tuning and the §VII
// cycle/LLC analyses.
type Fig8Diag struct {
	P99Core0, P99Core1    float64
	FaultP99, NoFaultP99  float64
	KswapdBusyPct         float64
	SwapOuts, MajorFaults uint64
	Writebacks            uint64
	BackingLoads          uint64
	// EngineEvents is the discrete-event engine's dispatch count for the
	// run — the parallel runner's sim-event-rate stat.
	EngineEvents uint64
}

// Fig8Zswap runs the zswap scenario: 2 Redis servers + kswapd sharing a
// core + a memory antagonist, under one backend variant (§VII methodology).
func Fig8Zswap(v Fig8Variant, w ycsb.Workload, cfg Fig8Config) Fig8Row {
	row, _ := Fig8ZswapDiag(v, w, cfg)
	return row
}

// Fig8ZswapDiag is Fig8Zswap with diagnostics.
func Fig8ZswapDiag(v Fig8Variant, w ycsb.Workload, cfg Fig8Config) (Fig8Row, Fig8Diag) {
	cfg.setDefaults()
	eng := sim.NewEngine()
	h, pl := fig8Host()
	p := h.Params()

	// Memory sizing: with the feature active the working sets exceed RAM so
	// reclaim runs continuously; the baseline ("Redis running alone") has
	// headroom.
	totalPages := 2350
	if v == Baseline {
		totalPages = 8000
	}
	mm := kernel.NewMM(p, h.Store(), fig8FrameBase, totalPages)
	backing := kernel.NewBackingSwap(18*sim.Microsecond, 22*sim.Microsecond)

	var z *zswap.Zswap
	if v == Baseline {
		mm.SetSwap(backing)
	} else {
		poolBase := phys.Addr(0x8000_0000)
		backend := offload.NewZswapBackend(offload.Variant(v), pl)
		if backend.PoolInDeviceMemory() {
			poolBase = mem.RegionDevice.Base + (64 << 20)
		}
		z = zswap.MustNew(zswap.Config{
			MaxPoolPercent: 20,
			TotalRAMPages:  totalPages,
			PoolBase:       poolBase,
			PoolPages:      1024,
		}, backend, backing)
		mm.SetSwap(z)
	}

	// kswapd shares core 0 with the first Redis server — kernel threads
	// float onto application cores.
	kswapd := kernel.NewKswapd(eng, mm, h.Core(0).Sched)
	kswapd.BatchSize = 8
	if cfg.KswapdBatch > 0 {
		kswapd.BatchSize = cfg.KswapdBatch
	}

	// The antagonist churns memory on core 2, keeping kswapd busy; its page
	// streams also displace LLC lines, which every non-baseline
	// configuration suffers ("Redis running alone" is the clean baseline).
	var ant *kvs.Antagonist
	if v != Baseline {
		antAS := mm.NewAddressSpace(99)
		ant = kvs.NewAntagonist(eng, antAS, h.Core(2).Sched, cfg.Seed+seedOffFig8Antagonist)
		ant.PagesPerBurst = 8
		ant.Interval = 500 * sim.Microsecond
		ant.Keep = 1800 // a large cold tail: reclaim victims are mostly the antagonist's
		if cfg.Temporal {
			// Episodic churn: bursts of allocation pressure instead of the
			// steady 2 kHz drumbeat, so reclaim comes in wavefronts.
			ant.Gaps = workload.NewTemporal(workload.FlatRate(2000)).
				WithBursts(workload.BurstSpec{
					MeanGap:    20 * sim.Millisecond,
					MeanLen:    4 * sim.Millisecond,
					Factor:     4,
					Cooldown:   8 * sim.Millisecond,
					CoolFactor: 0.25,
				})
		}
	}

	pollution := func() uint64 { return 0 }
	if z != nil {
		pollution = func() uint64 { return z.Stats().PollutedLines + ant.PollutedLines() }
	}

	// Two Redis servers on cores 0 and 1 (the paper runs 2 servers + 6
	// clients on 8 cores; clients are the load generator here).
	scfg := kvs.DefaultConfig()
	scfg.Records = 8000 // 500 pages per server: the hot set stays mostly resident
	servers := make([]*kvs.Server, 2)
	loader := sim.NewProc(eng, "loader", nil)
	for i := range servers {
		as := mm.NewAddressSpace(i + 1)
		srv, err := kvs.NewServer(eng, scfg, h.Core(i).Sched, as, pollution)
		if err != nil {
			panic(err)
		}
		if err := srv.LoadDataset(loader); err != nil {
			panic(err)
		}
		servers[i] = srv
	}

	if ant != nil {
		ant.Start()
	}

	gen := ycsb.MustNewGenerator(w, cfg.dist(), uint64(scfg.Records), cfg.Seed)
	lg := fig8LoadGen(eng, servers, gen, cfg)
	lg.Start()
	// Requests complete synchronously within their arrival event, so the
	// horizon is exact; the daemons (kswapd, antagonist) would reschedule
	// forever and are simply cut off at the horizon.
	eng.RunUntil(cfg.Duration)
	lg.Stop()

	all := stats.NewSample(int(servers[0].Served() + servers[1].Served()))
	var served, faults uint64
	verify := true
	for _, s := range servers {
		for _, x := range s.Latencies().Values() {
			all.Add(x)
		}
		served += s.Served()
		faults += s.Faults()
		verify = verify && s.VerifyOK()
	}

	row := Fig8Row{
		Feature:  "zswap",
		Variant:  v,
		Workload: w,
		P50us:    all.Median(),
		P99us:    all.P99(),
		P999us:   all.Quantile(0.999),
		Served:   served,
		Faults:   faults,
		VerifyOK: verify,
	}
	if z != nil {
		st := z.Stats()
		row.PollutedLines = st.PollutedLines
		// Feature CPU: zswap data plane + reclaim/fault control plane,
		// over the three cores the feature touches.
		ctl := sim.Time(mm.Stats().SwapOuts)*p.SW.KswapdControlPlane +
			sim.Time(mm.Stats().MajorFaults)*p.SW.PageFaultBase
		row.FeatureCPUPct = 100 * float64(st.HostCPU+ctl) / float64(3*cfg.Duration)
	}
	diag := Fig8Diag{
		P99Core0:      servers[0].P99(),
		P99Core1:      servers[1].P99(),
		KswapdBusyPct: 100 * float64(h.Core(0).Sched.Busy()) / float64(cfg.Duration),
		SwapOuts:      mm.Stats().SwapOuts,
		MajorFaults:   mm.Stats().MajorFaults,
		EngineEvents:  eng.Executed(),
	}
	faultAll := stats.NewSample(256)
	cleanAll := stats.NewSample(4096)
	for _, s := range servers {
		for _, x := range s.FaultLatencies().Values() {
			faultAll.Add(x)
		}
		for _, x := range s.CleanLatencies().Values() {
			cleanAll.Add(x)
		}
	}
	if faultAll.N() > 0 {
		diag.FaultP99 = faultAll.P99()
	}
	if cleanAll.N() > 0 {
		diag.NoFaultP99 = cleanAll.P99()
	}
	if z != nil {
		diag.Writebacks = z.Stats().Writebacks
		diag.BackingLoads = z.Stats().BackingLoads
	}
	return row, diag
}

// Fig8Ksm runs the ksm scenario: 16 VMs (4 serving Redis), ksmd sharing a
// serving core, scanning mergeable VM pages (§VII methodology).
func Fig8Ksm(v Fig8Variant, w ycsb.Workload, cfg Fig8Config) Fig8Row {
	row, _ := Fig8KsmDiag(v, w, cfg)
	return row
}

// Fig8KsmDiag is Fig8Ksm with diagnostics.
func Fig8KsmDiag(v Fig8Variant, w ycsb.Workload, cfg Fig8Config) (Fig8Row, Fig8Diag) {
	cfg.setDefaults()
	eng := sim.NewEngine()
	h, pl := fig8Host()
	p := h.Params()

	mm := kernel.NewMM(p, h.Store(), fig8FrameBase, 16000)
	mm.SetSwap(kernel.NewBackingSwap(18*sim.Microsecond, 22*sim.Microsecond))

	// 12 client VMs hold mergeable pages: a shared set of template pages
	// (OS image / common libraries) plus private pages.
	rng := rng.New(cfg.Seed + seedOffFig8Pages)
	templates := make([][]byte, 64)
	for i := range templates {
		templates[i] = lzc.SyntheticPage(rng, phys.PageSize, 0.5)
	}
	loader := sim.NewProc(eng, "loader", nil)

	var scanner *ksm.Scanner
	var daemon *ksm.Daemon
	if v != Baseline {
		scanner = ksm.NewScanner(mm, offload.NewKsmBackend(offload.Variant(v), pl))
	}
	clientVMs := make([]*kernel.AddressSpace, 12)
	for i := range clientVMs {
		as := mm.NewAddressSpace(100 + i)
		for vpn := uint64(0); vpn < 160; vpn++ {
			var page []byte
			if vpn%2 == 0 {
				page = templates[int(vpn/2)%len(templates)] // duplicate across VMs
			} else {
				page = lzc.SyntheticPage(rng, phys.PageSize, 0.5) // private
			}
			if err := as.Map(vpn, page, loader); err != nil {
				panic(err)
			}
		}
		if scanner != nil {
			scanner.RegisterRange(as, 0, 160)
		}
		clientVMs[i] = as
	}

	pollution := func() uint64 { return 0 }
	if scanner != nil {
		pollution = func() uint64 { return scanner.Stats().Polluted }
	}

	// 4 Redis server VMs pinned to cores 0–3; ksmd shares core 0.
	scfg := kvs.DefaultConfig()
	scfg.Records = 8000
	// ksm displaces far fewer lines per op than zswap's page streams; the
	// refill penalty is correspondingly lighter.
	scfg.PollutionPenaltyPerLine = 15 * sim.Nanosecond
	scfg.PollutionCap = 2500 * sim.Nanosecond
	servers := make([]*kvs.Server, 4)
	for i := range servers {
		as := mm.NewAddressSpace(i + 1)
		srv, err := kvs.NewServer(eng, scfg, h.Core(i).Sched, as, pollution)
		if err != nil {
			panic(err)
		}
		if err := srv.LoadDataset(loader); err != nil {
			panic(err)
		}
		servers[i] = srv
	}

	if scanner != nil {
		daemon = ksm.NewDaemon(eng, scanner, h.Core(0).Sched)
		daemon.PagesPerBatch = 110
		daemon.SleepBetween = 2200 * sim.Microsecond
		// ksmd floats: over the run it lands on every serving core.
		daemon.FloatCores = []*sim.Resource{
			h.Core(0).Sched, h.Core(1).Sched, h.Core(2).Sched, h.Core(3).Sched,
		}
		if cfg.Temporal {
			// Drawn inter-batch sleeps around the tuned 2.2 ms cadence: a
			// ksmd whose pacing jitters instead of metronoming.
			daemon.SetSleepSource(
				workload.NewTemporal(workload.FlatRate(1/0.0022)),
				cfg.Seed+seedOffFig8KsmSleep)
		}
		daemon.Start()
	}

	// Client VMs churn a little so ksmd always has work (checksum changes,
	// CoW breaks).
	churn := sim.NewProc(eng, "churn", h.Core(4).Sched)
	var churnStep func(pr *sim.Proc)
	churnStep = func(pr *sim.Proc) {
		vm := clientVMs[rng.Intn(len(clientVMs))]
		vpn := uint64(rng.Intn(160))
		vm.Write(vpn, lzc.SyntheticPage(rng, phys.PageSize, 0.5), pr)
		pr.Sleep(2 * sim.Millisecond)
		pr.Schedule(churnStep)
	}
	churn.Schedule(churnStep)

	gen := ycsb.MustNewGenerator(w, cfg.dist(), uint64(scfg.Records), cfg.Seed)
	lg := fig8LoadGen(eng, servers, gen, cfg)
	lg.Start()
	eng.RunUntil(cfg.Duration)
	lg.Stop()
	if daemon != nil {
		daemon.Stop()
	}

	all := stats.NewSample(4096)
	var served, faults uint64
	verify := true
	for _, s := range servers {
		for _, x := range s.Latencies().Values() {
			all.Add(x)
		}
		served += s.Served()
		faults += s.Faults()
		verify = verify && s.VerifyOK()
	}
	row := Fig8Row{
		Feature:  "ksm",
		Variant:  v,
		Workload: w,
		P50us:    all.Median(),
		P99us:    all.P99(),
		P999us:   all.Quantile(0.999),
		Served:   served,
		Faults:   faults,
		VerifyOK: verify,
	}
	diag := Fig8Diag{
		P99Core0:      servers[0].P99(),
		P99Core1:      servers[1].P99(),
		KswapdBusyPct: 100 * float64(h.Core(0).Sched.Busy()) / float64(cfg.Duration),
		EngineEvents:  eng.Executed(),
	}
	if scanner != nil {
		st := scanner.Stats()
		row.PollutedLines = st.Polluted
		ctl := sim.Time(st.PagesScanned) * p.SW.KsmControlPlane
		row.FeatureCPUPct = 100 * float64(st.HostCPU+ctl) / float64(5*cfg.Duration)
		diag.SwapOuts = st.PagesScanned
		diag.Writebacks = st.PagesMerged + st.NewStable
		diag.BackingLoads = uint64(daemon.Batches())
	}
	return row, diag
}

// Fig8 runs one feature across all variants and workloads, filling in the
// baseline-normalized p99 like the paper's figure. It is the serial form
// of Fig8Jobs, pinned to the calibrated seed so the legacy paths
// (kvsbench, the calibration workflow) keep their published numbers.
func Fig8(feature string, workloads []ycsb.Workload, cfg Fig8Config) []Fig8Row {
	if cfg.Seed == 0 {
		cfg.Seed = seedFig8Calibrated
	}
	return Fig8Collect(runSerial(Fig8Jobs(feature, workloads, cfg)))
}

// Fig8Jobs returns one job per workload, each forking the baseline + the
// four backend co-simulations as sub-jobs — baseline first, in the paper's
// order — so a single workload's five variants spread across the pool even
// when fig8 is the only section running. When cfg.Seed is zero each
// variant runs under its derived seed (rootSeed × "fig8/feature/workload"
// × variant through internal/rng); a non-zero cfg.Seed pins every run,
// which is what the calibration uses.
func Fig8Jobs(feature string, workloads []ycsb.Workload, cfg Fig8Config) []runner.Job {
	if len(workloads) == 0 {
		workloads = ycsb.Workloads()
	}
	run := Fig8ZswapDiag
	if feature == "ksm" {
		run = Fig8KsmDiag
	}
	var jobs []runner.Job
	for _, w := range workloads {
		id := fmt.Sprintf("fig8/%s/%s", feature, w)
		jobs = append(jobs, runner.Job{ID: id, Run: func(ctx *runner.Ctx) (any, error) {
			var subs []runner.SubJob
			for _, v := range Fig8Variants() {
				subs = append(subs, runner.SubJob{ID: v.String(), Run: func(sctx *runner.Ctx) (any, error) {
					c := cfg
					if c.Seed == 0 {
						c.Seed = sctx.Seed
					}
					row, _, events := fig8RunCounted(run, v, w, c)
					sctx.AddEvents(events)
					return []Fig8Row{row}, nil
				}})
			}
			return forkRows[Fig8Row](ctx, subs)
		}})
	}
	return jobs
}

// fig8Run is the signature shared by Fig8ZswapDiag and Fig8KsmDiag.
type fig8Run = func(Fig8Variant, ycsb.Workload, Fig8Config) (Fig8Row, Fig8Diag)

// fig8RunCounted runs one co-simulation and reports its engine's
// dispatched-event count for the runner's event-rate stat.
func fig8RunCounted(run fig8Run, v Fig8Variant, w ycsb.Workload, cfg Fig8Config) (Fig8Row, Fig8Diag, uint64) {
	row, diag := run(v, w, cfg)
	return row, diag, diag.EngineEvents
}

// Fig8Collect assembles job results (in Fig8Jobs order) into rows,
// filling in the baseline-normalized p99: within each workload the
// baseline job precedes its variants, so normalization is a single pass.
func Fig8Collect(results []runner.Result) []Fig8Row {
	rows := collectRows[Fig8Row](results)
	var baseP99 float64
	for i := range rows {
		if rows[i].Variant == Baseline {
			baseP99 = rows[i].P99us
			rows[i].NormP99 = 1
			continue
		}
		rows[i].NormP99 = rows[i].P99us / baseP99
	}
	return rows
}

// PrintFig8 renders the rows like the paper's figure.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Feature, r.Variant.String() + "-" + r.Feature, r.Workload.String(),
			fmtCell(r.P50us), fmtCell(r.P99us), fmtCell(r.P999us),
			fmt.Sprintf("%.2fx", r.NormP99),
			fmt.Sprintf("%d", r.Served), fmt.Sprintf("%d", r.Faults),
			fmt.Sprintf("%.1f%%", r.FeatureCPUPct),
		})
	}
	printTable(w, "Fig. 8 — Redis p99 latency under kernel-feature variants (normalized to no-*)",
		[]string{"feature", "config", "wkld", "p50(us)", "p99(us)", "p99.9(us)", "norm", "served", "faults", "featCPU"}, table)
}

// Fig8Find locates a row.
func Fig8Find(rows []Fig8Row, v Fig8Variant, w ycsb.Workload) Fig8Row {
	for _, r := range rows {
		if r.Variant == v && r.Workload == w {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no Fig8 row %v/%v", v, w))
}
