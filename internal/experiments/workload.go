package experiments

import (
	"fmt"
	"io"

	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The workload section characterizes the traffic library itself: the
// temporal arrival models (stationary Poisson, a diurnal rate curve, the
// same curve with burst/cooldown modulation) and the client-cohort mixture
// the serving workloads draw shapes from. Each arrival model's stream is
// also frozen into the versioned trace format and replayed; the replay row
// must reproduce the recorded row exactly (same stats, same content hash),
// which pins the record/replay contract in the rendered report — and the
// report renders byte-identically in serial and parallel suite runs like
// every other section.

// WorkloadConfig tunes the workload section.
type WorkloadConfig struct {
	// Reps scales the per-model request count (Requests = 32*Reps clamped
	// to [512, 8192]); 0 keeps the default of 2048.
	Reps int
	// Seed overrides the stream seed; 0 uses the job's derived seed.
	Seed int64
}

func (c WorkloadConfig) requests() int {
	if c.Reps == 0 {
		return 2048
	}
	n := 32 * c.Reps
	if n < 512 {
		n = 512
	}
	if n > 8192 {
		n = 8192
	}
	return n
}

// WorkloadRow is one row of the section: an arrival model's realized
// stream (Kind "arrival") or a cohort's realized mixture share and shape
// (Kind "cohort").
type WorkloadRow struct {
	Kind     string
	Name     string
	Requests int
	// Arrival-model columns.
	SpanSec   float64 // first arrival to last
	MeanRate  float64 // requests/s over the span
	PeakRate  float64 // peak over 1-second buckets
	TraceHash string  // content hash of the canonical trace encoding
	// Cohort columns.
	SharePct   float64
	MeanPrompt float64
	MeanDecode float64
}

// workloadCurve is the section's diurnal profile: a 4-second "day" with a
// quiet valley, a morning ramp and an evening peak — fast enough to cycle
// several times inside the measured stream.
func workloadCurve() workload.RateCurve {
	return workload.MustNewRateCurve(4*sim.Second,
		workload.RatePoint{At: 0, RatePerSec: 200},
		workload.RatePoint{At: 1 * sim.Second, RatePerSec: 1200},
		workload.RatePoint{At: 2 * sim.Second, RatePerSec: 600},
		workload.RatePoint{At: 3 * sim.Second, RatePerSec: 1600},
	)
}

// workloadBursts is the section's burst overlay: short thundering herds a
// few times per simulated second, each followed by a cooled-off lull.
func workloadBursts() workload.BurstSpec {
	return workload.BurstSpec{
		MeanGap:    800 * sim.Millisecond,
		MeanLen:    60 * sim.Millisecond,
		Factor:     4,
		Cooldown:   100 * sim.Millisecond,
		CoolFactor: 0.25,
	}
}

// WorkloadCohorts is the section's client mixture: interactive chat,
// long-prompt RAG and batch scoring, the three populations serving
// deployments plan for.
func WorkloadCohorts() *workload.Mix {
	return workload.MustNewMix(
		workload.Cohort{Name: "chat", Weight: 6, PromptMin: 16, PromptMax: 96, DecodeMin: 32, DecodeMax: 256},
		workload.Cohort{Name: "rag", Weight: 3, PromptMin: 512, PromptMax: 2048, DecodeMin: 16, DecodeMax: 64},
		workload.Cohort{Name: "batch", Weight: 1, PromptMin: 128, PromptMax: 512, DecodeMin: 8, DecodeMax: 16},
	)
}

// recordArrivals freezes n arrivals from src into a trace.
func recordArrivals(src workload.ArrivalSource, seed int64, n int, label string) *workload.Trace {
	r := rng.New(seed)
	t := &workload.Trace{Workload: label, Seed: seed, Requests: make([]workload.Request, n)}
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		gap := src.GapAt(r, now)
		if now > sim.Forever-gap {
			now = sim.Forever
		} else {
			now += gap
		}
		t.Requests[i].At = now
	}
	return t
}

// arrivalRow reduces a trace's arrival times to a section row.
func arrivalRow(name string, t *workload.Trace) WorkloadRow {
	row := WorkloadRow{Kind: "arrival", Name: name, Requests: len(t.Requests),
		TraceHash: fmt.Sprintf("%016x", t.Hash())}
	if len(t.Requests) == 0 {
		return row
	}
	first := t.Requests[0].At
	last := t.Requests[len(t.Requests)-1].At
	span := last - first
	if span > 0 {
		row.SpanSec = float64(span) / float64(sim.Second)
		row.MeanRate = float64(len(t.Requests)-1) / row.SpanSec
	}
	// Peak rate over fixed 1-second buckets from the first arrival.
	counts := map[int64]int{}
	for _, r := range t.Requests {
		counts[int64((r.At-first)/sim.Second)]++
	}
	for _, c := range counts {
		if float64(c) > row.PeakRate {
			row.PeakRate = float64(c)
		}
	}
	return row
}

// cohortRows draws n shape samples from the mixture and reduces them to
// per-cohort realized shares and mean shapes.
func cohortRows(mix *workload.Mix, seed int64, n int) []WorkloadRow {
	r := rng.Derive(seed, "workload/cohorts")
	type acc struct {
		count          int
		prompt, decode int
	}
	accs := make([]acc, mix.Len())
	for i := 0; i < n; i++ {
		c := mix.Pick(r)
		co := mix.Cohort(c)
		pz := workload.NewZipf(uint64(co.PromptMax-co.PromptMin+1), 0.99)
		dz := workload.NewZipf(uint64(co.DecodeMax-co.DecodeMin+1), 0.99)
		accs[c].count++
		accs[c].prompt += co.PromptMin + int(pz.Next(r)%pz.N())
		accs[c].decode += co.DecodeMin + int(dz.Next(r)%dz.N())
	}
	rows := make([]WorkloadRow, mix.Len())
	for i := range rows {
		a := accs[i]
		rows[i] = WorkloadRow{Kind: "cohort", Name: mix.Cohort(i).Name, Requests: a.count,
			SharePct: 100 * float64(a.count) / float64(n)}
		if a.count > 0 {
			rows[i].MeanPrompt = float64(a.prompt) / float64(a.count)
			rows[i].MeanDecode = float64(a.decode) / float64(a.count)
		}
	}
	return rows
}

// WorkloadJobs returns the section as one self-contained job (all rows
// share one derived seed, like the infer section). The three arrival
// models and the cohort reduction are independent streams — each already
// derives its own sub-seed from the shared one — so they fan out as
// sub-jobs over the pool; every sub closure-captures the job-resolved seed
// and the merged rows are byte-identical to the inline loop. The replay
// round-trip rides in the diurnal+burst sub-job because it must re-decode
// that sub's recorded trace.
func WorkloadJobs(cfg WorkloadConfig) []runner.Job {
	n := cfg.requests()
	return []runner.Job{{ID: "workload", Run: func(ctx *runner.Ctx) (any, error) {
		seed := ctx.Seed
		if cfg.Seed != 0 {
			seed = cfg.Seed
		}
		curve := workloadCurve()
		peak := curve.MaxRate()
		arrivalSub := func(name string, src workload.ArrivalSource, withReplay bool) runner.SubJob {
			ops := n
			if withReplay {
				ops = 2 * n
			}
			return runner.SubJob{ID: name, Run: func(sctx *runner.Ctx) (any, error) {
				sctx.AddEvents(uint64(ops))
				t := recordArrivals(src, rng.DeriveSeed(seed, "workload/"+name), n, name)
				rows := []WorkloadRow{arrivalRow(name, t)}
				if withReplay {
					// Round-trip the burstiest stream through the binary
					// format and reduce the decoded records: the replay row
					// must match its source row column for column, hash
					// included.
					replayed, err := workload.DecodeTrace(t.Encode())
					if err != nil {
						return nil, err
					}
					rows = append(rows, arrivalRow("replay(burst)", replayed))
				}
				return rows, nil
			}}
		}
		subs := []runner.SubJob{
			arrivalSub("poisson", workload.Poisson{RatePerSec: peak / 2}, false),
			arrivalSub("diurnal", workload.NewTemporal(curve), false),
			arrivalSub("diurnal+burst", workload.NewTemporal(curve).WithBursts(workloadBursts()), true),
			{ID: "cohorts", Run: func(sctx *runner.Ctx) (any, error) {
				sctx.AddEvents(uint64(n))
				return cohortRows(WorkloadCohorts(), seed, n), nil
			}},
		}
		return forkRows[WorkloadRow](ctx, subs)
	}}}
}

// Workload runs the section serially.
func Workload(cfg WorkloadConfig) []WorkloadRow {
	return collectRows[WorkloadRow](runSerial(WorkloadJobs(cfg)))
}

// PrintWorkload renders the arrival-model and cohort tables.
func PrintWorkload(w io.Writer, rows []WorkloadRow) {
	var arr, coh [][]string
	for _, r := range rows {
		switch r.Kind {
		case "arrival":
			arr = append(arr, []string{r.Name, fmt.Sprintf("%d", r.Requests),
				fmtCell(r.SpanSec), fmtCell(r.MeanRate), fmtCell(r.PeakRate), r.TraceHash})
		case "cohort":
			coh = append(coh, []string{r.Name, fmtCell(r.SharePct),
				fmtCell(r.MeanPrompt), fmtCell(r.MeanDecode)})
		}
	}
	printTable(w, "Workload traffic library — temporal arrival models (recorded vs replayed)",
		[]string{"model", "requests", "span(s)", "mean(req/s)", "peak(req/s)", "trace-hash"}, arr)
	printTable(w, "Workload traffic library — client cohort mixture",
		[]string{"cohort", "share(%)", "prompt(tok)", "decode(tok)"}, coh)
}
