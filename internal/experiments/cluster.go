package experiments

import (
	"fmt"
	"io"

	"repro/internal/infer/cluster"
	"repro/internal/runner"
	"repro/internal/sim"
)

// The cluster section scales the infer question out: when N serving
// replicas share pooled Type-3 memory behind a CXL switch
// (internal/fabric Star topology), how do replica count, shared-pool
// pressure and request routing shape the serving metrics? Each scenario
// runs the full cluster model — routed open arrivals, per-replica
// continuous batching with reservation-based admission, every shared KV
// block riding the contended fabric — and the section reports the
// serving summary next to the per-replica breakdown and the per-link
// traffic that explains it: with ample local pools the fabric is silent;
// oversubscribed, the switch egress toward the expander queues visibly.

// ClusterConfig tunes the cluster section.
type ClusterConfig struct {
	// Reps scales the request count (Requests = Reps/2, clamped to
	// [12, 96]); 0 keeps the default of 48 requests per scenario.
	Reps int
	// Seed overrides the workload seed; 0 uses the job's derived seed.
	Seed int64
	// Shards is the worker cap for sharded PDES execution of each
	// cluster simulation (0 or 1 runs inline). A pure speed knob: rows
	// are byte-identical at every value, so it stays out of section
	// cache keys. Workers beyond 1 are recruited from the runner pool so
	// shard goroutines and job workers share one parallelism budget.
	Shards int
}

func (c ClusterConfig) requests() int {
	return InferConfig{Reps: c.Reps}.requests()
}

// clusterRate is the arrival rate every scenario serves: high enough
// that replicas queue and batches fill — contention is the object of
// study, and an idle cluster shows none.
const clusterRate = 400_000

// ClusterScenario is one cluster configuration of the section.
type ClusterScenario struct {
	// Name labels the rows.
	Name string
	// Replicas is the serving-host count.
	Replicas int
	// Router constructs the request router (routers are stateful and
	// single-use, so scenarios carry a constructor).
	Router func() cluster.Router
	// LocalBlocks/SharedBlocks size each replica's local pool and each
	// expander's shared pool.
	LocalBlocks, SharedBlocks int
}

// ClusterScenarios lists the compared configurations in presentation
// order: the replica-count sweep with ample local pools (the fabric
// stays quiet; scaling is pure), then the oversubscribed shared pool
// under each router (KV spills through the switch; routing policy now
// matters).
func ClusterScenarios() []ClusterScenario {
	ample := func(name string, n int) ClusterScenario {
		return ClusterScenario{Name: name, Replicas: n, Router: cluster.NewRoundRobin,
			LocalBlocks: 64, SharedBlocks: 256}
	}
	oversub := func(name string, r func() cluster.Router) ClusterScenario {
		return ClusterScenario{Name: name, Replicas: 4, Router: r,
			LocalBlocks: 4, SharedBlocks: 24}
	}
	return []ClusterScenario{
		ample("1r/ample", 1),
		ample("2r/ample", 2),
		ample("4r/ample", 4),
		oversub("4r/oversub/rr", cluster.NewRoundRobin),
		oversub("4r/oversub/least", cluster.NewLeastLoaded),
		oversub("4r/oversub/affinity", cluster.NewSessionAffinity),
	}
}

// ClusterReplicaRow is one replica's outcome within a scenario.
type ClusterReplicaRow struct {
	Replica  int
	Requests int
	TTFT     float64 // mean µs
	TPOT     float64 // mean µs/token
	LocalMB  float64
	SharedMB float64
}

// ClusterLinkRow is one fabric link's traffic within a scenario. AToB
// counts payload sent from the link's declared A endpoint toward B (in
// the Star topology host links are declared host-switch, expander links
// switch-expander).
type ClusterLinkRow struct {
	Link   string
	AToBMB float64
	BToAMB float64
}

// ClusterRow is one scenario's outcome.
type ClusterRow struct {
	Scenario string
	Router   string
	TTFTp50  float64 // µs
	TTFTp99  float64 // µs
	TPOT     float64 // mean µs/token
	Goodput  float64 // tokens/s
	LocalMB  float64 // KV payload served from replica-local DRAM
	SharedMB float64 // KV payload served over the fabric
	SwWaitUS float64 // total switch egress arbitration wait (µs)
	PeakQ    int     // deepest egress-port queue seen
	Replicas []ClusterReplicaRow
	Links    []ClusterLinkRow
}

// clusterRow runs one scenario to completion. shards and recruit
// configure sharded execution (see ClusterConfig.Shards); recruit may
// be nil.
func clusterRow(sc ClusterScenario, requests int, seed int64, shards int, recruit func(int) (int, func())) (ClusterRow, uint64) {
	m := cluster.Run(cluster.Config{
		Seed:         seed,
		Replicas:     sc.Replicas,
		Requests:     requests,
		RatePerSec:   clusterRate,
		LocalBlocks:  sc.LocalBlocks,
		SharedBlocks: sc.SharedBlocks,
		Router:       sc.Router(),
		Shards:       shards,
		Recruit:      recruit,
	})
	const mb = 1.0 / (1 << 20)
	row := ClusterRow{
		Scenario: sc.Name,
		Router:   m.Router,
		TTFTp50:  m.TTFT.Median(),
		TTFTp99:  m.TTFT.P99(),
		TPOT:     m.TPOT.Mean(),
		Goodput:  m.Goodput,
		SwWaitUS: float64(m.SwitchWaited()) / float64(sim.Microsecond),
		PeakQ:    m.PeakQueue(),
	}
	for i, r := range m.Replicas {
		row.LocalMB += float64(r.LocalBytes) * mb
		row.SharedMB += float64(r.SharedBytes) * mb
		row.Replicas = append(row.Replicas, ClusterReplicaRow{
			Replica:  i,
			Requests: r.Requests,
			TTFT:     r.TTFT.Mean(),
			TPOT:     r.TPOT.Mean(),
			LocalMB:  float64(r.LocalBytes) * mb,
			SharedMB: float64(r.SharedBytes) * mb,
		})
	}
	for _, l := range m.Links {
		row.Links = append(row.Links, ClusterLinkRow{
			Link:   l.Link,
			AToBMB: float64(l.ABytes) * mb,
			BToAMB: float64(l.BABytes) * mb,
		})
	}
	return row, m.Accesses
}

// ClusterJobs returns the section as one self-contained job: every
// scenario must serve the same request stream for the sweep to compare
// like with like, so they all share the job's derived seed, and the
// independent cluster simulations fan out as Fork sub-jobs over the pool
// — byte-identical to the inline loop, whatever the worker count.
func ClusterJobs(cfg ClusterConfig) []runner.Job {
	requests := cfg.requests()
	return []runner.Job{{ID: "cluster", Run: func(ctx *runner.Ctx) (any, error) {
		seed := ctx.Seed
		if cfg.Seed != 0 {
			seed = cfg.Seed
		}
		var subs []runner.SubJob
		for _, sc := range ClusterScenarios() {
			subs = append(subs, runner.SubJob{ID: sc.Name, Run: func(sctx *runner.Ctx) (any, error) {
				row, accesses := clusterRow(sc, requests, seed, cfg.Shards, sctx.TryRecruit)
				sctx.AddEvents(accesses)
				return []ClusterRow{row}, nil
			}})
		}
		return forkRows[ClusterRow](ctx, subs)
	}}}
}

// ClusterSection builds the cluster section for cfg.
func ClusterSection(cfg ClusterConfig) Section {
	return section("cluster", ClusterJobs(cfg), PrintCluster)
}

// Cluster runs the section serially.
func Cluster(cfg ClusterConfig) []ClusterRow {
	return collectRows[ClusterRow](runSerial(ClusterJobs(cfg)))
}

// ClusterCollect concatenates job results into rows in job order.
func ClusterCollect(results []runner.Result) []ClusterRow {
	return collectRows[ClusterRow](results)
}

// ClusterTopologyKey returns the canonical topology key of a scenario's
// compiled fabric — the component SectionKeyTopology folds into cache
// keys when a caller pins a non-default topology.
func ClusterTopologyKey(sc ClusterScenario) string {
	return cluster.Config{Replicas: sc.Replicas}.Topology().CanonicalKey(nil)
}

// printClusterTable is printTable with a wider first column: cluster row
// labels compose scenario, router and link names ("4r/oversub/affinity/r0")
// and would overflow the shared 17-character grid.
func printClusterTable(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "\n%s\n", title)
	width := func(col int) int {
		if col == 0 {
			return 24
		}
		return 17
	}
	for i, h := range header {
		fmt.Fprintf(w, "%-*s", width(i), h)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		for i, c := range row {
			fmt.Fprintf(w, "%-*s", width(i), c)
		}
		fmt.Fprintln(w)
	}
}

// PrintCluster renders the scenario summary, the per-replica breakdown,
// and the per-link fabric traffic.
func PrintCluster(w io.Writer, rows []ClusterRow) {
	var summary [][]string
	for _, r := range rows {
		summary = append(summary, []string{
			r.Scenario, r.Router,
			fmtCell(r.TTFTp50), fmtCell(r.TTFTp99), fmtCell(r.TPOT),
			fmtCell(r.Goodput / 1000), fmtCell(r.LocalMB), fmtCell(r.SharedMB),
			fmtCell(r.SwWaitUS), fmt.Sprintf("%9d", r.PeakQ),
		})
	}
	printClusterTable(w, "Cluster serving — replicas sharing pooled CXL memory behind a switch",
		[]string{"scenario", "router", "TTFT-p50(us)", "TTFT-p99(us)", "TPOT(us)",
			"goodput(ktok/s)", "local(MB)", "shared(MB)", "sw-wait(us)", "peak-queue"},
		summary)

	var perRep [][]string
	for _, r := range rows {
		for _, rr := range r.Replicas {
			perRep = append(perRep, []string{
				fmt.Sprintf("%s/r%d", r.Scenario, rr.Replica),
				fmt.Sprintf("%9d", rr.Requests),
				fmtCell(rr.TTFT), fmtCell(rr.TPOT),
				fmtCell(rr.LocalMB), fmtCell(rr.SharedMB),
			})
		}
	}
	printClusterTable(w, "Per-replica serving breakdown",
		[]string{"scenario/replica", "requests", "TTFT(us)", "TPOT(us)",
			"local(MB)", "shared(MB)"}, perRep)

	var perLink [][]string
	for _, r := range rows {
		for _, l := range r.Links {
			perLink = append(perLink, []string{
				fmt.Sprintf("%s/%s", r.Scenario, l.Link),
				fmtCell(l.AToBMB), fmtCell(l.BToAMB),
			})
		}
	}
	printClusterTable(w, "Per-link fabric traffic",
		[]string{"scenario/link", "a->b(MB)", "b->a(MB)"}, perLink)
}

// ClusterFind locates a scenario's row.
func ClusterFind(rows []ClusterRow, scenario string) ClusterRow {
	for _, r := range rows {
		if r.Scenario == scenario {
			return r
		}
	}
	panic(fmt.Sprintf("experiments: no cluster row %q", scenario))
}
