package experiments

import (
	"fmt"
	"io"

	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/lzc"
	"repro/internal/offload"
	"repro/internal/phys"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/zswap"
)

// Table4Row is one row of Table IV: the offloading-latency breakdown of
// zswap's compression function on one backend, in microseconds.
type Table4Row struct {
	Backend    string
	TransferIn float64 // step 2: page to the compute engine
	Compute    float64 // step 4: compression
	StoreOut   float64 // step 5: compressed page into the zpool
	Total      float64
	Pipelined  bool // cxl reports only Total (steps overlap), like the paper
}

// Table4 measures the compression-offload latency breakdown for the
// pcie-rdma, pcie-dma and cxl backends over a representative 4 KB page.
// It is the serial form of Table4Jobs.
func Table4() []Table4Row {
	return collectRows[Table4Row](runSerial(Table4Jobs()))
}

// Table4Jobs returns one self-contained job per backend. Each builds its
// own host + platform; the representative page always comes from the
// calibration constant SeedTable4Page (its content is part of the
// calibration), not the job's derived seed.
func Table4Jobs() []runner.Job {
	var jobs []runner.Job
	for _, v := range []offload.Variant{offload.PCIeRDMA, offload.PCIeDMA, offload.CXL} {
		v := v
		jobs = append(jobs, cellJob("table4/"+v.String(), 1,
			func(seed int64) Table4Row { return table4Backend(v) }))
	}
	return jobs
}

func table4Backend(v offload.Variant) Table4Row {
	h := host.MustNew(timing.Default(), host.Config{LLCBytes: 8 << 20, LLCWays: 16, Cores: 8})
	if _, err := h.Attach(device.DefaultConfig()); err != nil {
		panic(err)
	}
	pl := offload.NewPlatform(h)
	page := lzc.SyntheticPage(rng.New(SeedTable4Page), phys.PageSize, 0.7)
	src := phys.Addr(0x40000)
	h.Store().Write(src, page)
	b := offload.NewZswapBackend(v, pl)
	res := b.Store(page, src, 0, 0)
	return breakdownRow(b.Name(), res.Breakdown)
}

func breakdownRow(name string, b zswap.Breakdown) Table4Row {
	us := func(t float64) float64 { return t / 1000 }
	return Table4Row{
		Backend:    name,
		TransferIn: us(b.TransferIn.Nanoseconds()),
		Compute:    us(b.Compute.Nanoseconds()),
		StoreOut:   us(b.StoreOut.Nanoseconds()),
		Total:      us(b.Total.Nanoseconds()),
		Pipelined:  b.Pipelined,
	}
}

// PrintTable4 renders the rows like the paper's Table IV.
func PrintTable4(w io.Writer, rows []Table4Row) {
	var table [][]string
	for _, r := range rows {
		in, cp, out := fmtCell(r.TransferIn), fmtCell(r.Compute), fmtCell(r.StoreOut)
		if r.Pipelined {
			in, cp, out = "     (pipe)", "     (pipe)", "     (pipe)"
		}
		table = append(table, []string{r.Backend, in, cp, out, fmtCell(r.Total)})
	}
	printTable(w, "Table IV — zswap compression offload latency breakdown (µs)",
		[]string{"backend", "transfer-in", "compute", "store-out", "total"}, table)
}

// Table4Find locates a row by backend name.
func Table4Find(rows []Table4Row, name string) Table4Row {
	for _, r := range rows {
		if r.Backend == name {
			return r
		}
	}
	panic("experiments: no Table4 row " + name)
}

// WriteQueueRow is one point of the §V-A write-queue sweep: bandwidth of a
// D2H write burst versus burst length, showing the queue-capacity knee and
// the CO-wr/st crossover beyond 16 accesses.
type WriteQueueRow struct {
	Label  string
	N      int
	BWGBs  float64
	IsTrue bool
}

// WriteQueueSweep measures st / nt-st (emulated) and CO-wr / NC-wr (true
// CXL) write bandwidth over growing burst lengths, all against LLC-miss
// lines. It is the serial form of WriteQueueSweepJobs.
func WriteQueueSweep(ns []int) []WriteQueueRow {
	return collectRows[WriteQueueRow](runSerial(WriteQueueSweepJobs(ns)))
}

// WriteQueueSweepJobs returns one self-contained job per burst length,
// each measuring all four access kinds, in sweep order. nil uses the
// default burst ladder.
func WriteQueueSweepJobs(ns []int) []runner.Job {
	if len(ns) == 0 {
		ns = []int{16, 32, 64, 128, 256, 512, 1024}
	}
	var jobs []runner.Job
	for _, n := range ns {
		n := n
		jobs = append(jobs, sliceJob(fmt.Sprintf("wqsweep/N%d", n), 4*n,
			func(seed int64) []WriteQueueRow { return writeQueuePoint(n, seed) }))
	}
	return jobs
}

// writeQueuePoint measures all four access kinds at one burst length.
func writeQueuePoint(n int, seed int64) []WriteQueueRow {
	var rows []WriteQueueRow
	for _, pair := range []struct {
		req    cxl.D2HReq
		isTrue bool
	}{{cxl.COWrite, true}, {cxl.NCWrite, true}} {
		r := NewRigSeeded(cxl.Type2, seed)
		r.Host.ResetTiming()
		var last sim.Time
		for i := 0; i < n; i++ {
			res := r.Dev.D2H(pair.req, r.hostLine(i), nil, 0)
			if res.Done > last {
				last = res.Done
			}
		}
		rows = append(rows, WriteQueueRow{
			Label: pair.req.String(), N: n, IsTrue: true,
			BWGBs: float64(n*phys.LineSize) / last.Seconds() / 1e9,
		})
	}
	for _, op := range []cxl.HostOp{cxl.St, cxl.NtSt} {
		r := NewRigSeeded(cxl.Type2, seed)
		var last sim.Time
		for i := 0; i < n; i++ {
			done := r.Emu.D2H(op, r.hostLine(i), 0)
			if done > last {
				last = done
			}
		}
		rows = append(rows, WriteQueueRow{
			Label: op.String(), N: n,
			BWGBs: float64(n*phys.LineSize) / last.Seconds() / 1e9,
		})
	}
	return rows
}

// PrintWriteQueueSweep renders the sweep.
func PrintWriteQueueSweep(w io.Writer, rows []WriteQueueRow) {
	var table [][]string
	for _, r := range rows {
		kind := "emulated"
		if r.IsTrue {
			kind = "true-CXL"
		}
		table = append(table, []string{r.Label, kind, fmt.Sprintf("%d", r.N), fmtCell(r.BWGBs)})
	}
	printTable(w, "§V-A — write bandwidth vs burst length (write-queue effect)",
		[]string{"access", "kind", "N", "BW(GB/s)"}, table)
}

// FindWriteQueueRow locates a sweep point.
func FindWriteQueueRow(rows []WriteQueueRow, label string, n int) WriteQueueRow {
	for _, r := range rows {
		if r.Label == label && r.N == n {
			return r
		}
	}
	panic("experiments: no sweep row " + label)
}
