// Package zswap implements the compressed RAM cache for swap of §VI-A: it
// intercepts pages on both reclaim paths, compresses them through a
// pluggable offload backend (host CPU, PCIe device, or the CXL Type-2
// device), stores them in a zbud-style pool — which, uniquely for the
// CXL-based variant, can live in device memory — and falls back to the
// backing swap device for incompressible pages and pool overflow
// (max_pool_percent writeback).
package zswap

import (
	"container/list"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Breakdown is the Table IV step decomposition of one offloaded
// compression: ❷ transfer the page to the compute engine, ❹ compress,
// ❺ store the result into the zpool. Pipelined backends report the
// end-to-end Total only (as the paper does for cxl-zswap).
type Breakdown struct {
	TransferIn sim.Time
	Compute    sim.Time
	StoreOut   sim.Time
	Total      sim.Time
	Pipelined  bool
}

// StoreResult is a backend's outcome for one page compression.
type StoreResult struct {
	// Comp is the compressed image (real bytes).
	Comp []byte
	// Done is when the compressed page is fully in the zpool.
	Done sim.Time
	// HostCPU is the host-CPU time consumed (charged to the reclaiming
	// process).
	HostCPU sim.Time
	// Breakdown decomposes the latency for Table IV.
	Breakdown Breakdown
	// PollutedLines approximates how many host-LLC lines the operation
	// displaced (the cache-pollution interference of §VII).
	PollutedLines int
}

// LoadResult is a backend's outcome for one page decompression.
type LoadResult struct {
	Page          []byte
	Done          sim.Time
	HostCPU       sim.Time
	PollutedLines int
}

// Backend performs the two offloaded data-plane functions of zswap
// (§VI-A): page compression into the pool and decompression out of it.
// internal/offload provides the cpu-, pcie-rdma-, pcie-dma- and cxl-
// implementations.
type Backend interface {
	Name() string
	// Store compresses page (resident at src in host memory) and deposits
	// the compressed image at dst inside the pool storage.
	Store(page []byte, src, dst phys.Addr, now sim.Time) StoreResult
	// Load reads the compLen-byte compressed image at src from pool storage
	// and delivers the decompressed page toward dst in host memory.
	Load(src phys.Addr, compLen int, dst phys.Addr, now sim.Time) LoadResult
	// PoolInDeviceMemory reports where the pool storage lives — only the
	// CXL Type-2 backend can place it in device memory (§VI-A).
	PoolInDeviceMemory() bool
	// PoolWrite and PoolRead are the functional (untimed) data movers for
	// pool storage; Store/Load model the timing of the same movement.
	PoolWrite(addr phys.Addr, data []byte)
	PoolRead(addr phys.Addr, dst []byte)
}

// Config shapes the zswap instance.
type Config struct {
	// MaxPoolPercent caps the pool at this percentage of total RAM pages
	// (the kernel's max_pool_percent, default 20).
	MaxPoolPercent int
	// TotalRAMPages is the machine RAM size the percentage applies to.
	TotalRAMPages int
	// PoolBase/PoolPages locate the pool storage region (host or device
	// memory depending on the backend).
	PoolBase  phys.Addr
	PoolPages int
}

// Validate reports the first problem, or "".
func (c Config) Validate() string {
	switch {
	case c.MaxPoolPercent <= 0 || c.MaxPoolPercent > 100:
		return "zswap: MaxPoolPercent out of range"
	case c.TotalRAMPages <= 0:
		return "zswap: TotalRAMPages must be positive"
	case c.PoolPages <= 0:
		return "zswap: PoolPages must be positive"
	}
	return ""
}

type entry struct {
	slot    kernel.SwapSlot
	addr    phys.Addr
	compLen int
	zbudIdx int
	first   bool
	lruElem *list.Element
	// sameFilled marks a page whose every byte equals fillValue: the kernel
	// stores such pages as a value with no pool allocation at all.
	sameFilled bool
	fillValue  byte
}

// zbudPage pairs up to two compressed pages in one PageSize slot, first
// from the front and last from the back, like the kernel's zbud allocator.
type zbudPage struct {
	firstLen, lastLen int
}

func (z *zbudPage) free() bool   { return z.firstLen == 0 && z.lastLen == 0 }
func (z *zbudPage) spare() int   { return phys.PageSize - z.firstLen - z.lastLen }
func (z *zbudPage) single() bool { return (z.firstLen == 0) != (z.lastLen == 0) }

// Stats counts zswap events.
type Stats struct {
	Stores, Loads uint64
	// SameFilled counts pages stored as a fill value (the kernel's
	// same-filled-page optimization: zero pages and memset patterns consume
	// no pool space and skip compression entirely).
	SameFilled         uint64
	Rejected           uint64 // incompressible, sent straight to backing
	Writebacks         uint64 // pool overflow evictions to backing
	BackingLoads       uint64 // faults served by the backing device
	PoolPagesUsed      int
	CompressedBytes    uint64
	UncompressedBytes  uint64
	HostCPU            sim.Time
	LastStoreBreakdown Breakdown
	// PollutedLines accumulates the host-LLC lines the backend displaced —
	// the cache-pollution interference currency of §VII.
	PollutedLines uint64
}

// Zswap is the compressed swap cache. It implements kernel.SwapOps.
type Zswap struct {
	cfg     Config
	backend Backend
	backing *kernel.BackingSwap

	entries map[kernel.SwapSlot]*entry
	lru     *list.List // of *entry, front = oldest
	zbud    []zbudPage
	// unbuddied holds indexes of zbud pages with exactly one resident
	// buddy, candidates for pairing.
	unbuddied []int
	freeIdx   []int
	used      int // zbud pages in use

	stats Stats
}

// New builds a zswap instance over the given backend and backing device.
func New(cfg Config, backend Backend, backing *kernel.BackingSwap) (*Zswap, error) {
	if msg := cfg.Validate(); msg != "" {
		return nil, fmt.Errorf("%s", msg)
	}
	if backend == nil || backing == nil {
		return nil, fmt.Errorf("zswap: backend and backing device are required")
	}
	z := &Zswap{
		cfg:     cfg,
		backend: backend,
		backing: backing,
		entries: make(map[kernel.SwapSlot]*entry),
		lru:     list.New(),
		zbud:    make([]zbudPage, cfg.PoolPages),
	}
	for i := cfg.PoolPages - 1; i >= 0; i-- {
		z.freeIdx = append(z.freeIdx, i)
	}
	return z, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config, backend Backend, backing *kernel.BackingSwap) *Zswap {
	z, err := New(cfg, backend, backing)
	if err != nil {
		panic(err)
	}
	return z
}

// Backend returns the active offload backend.
func (z *Zswap) Backend() Backend { return z.backend }

// Stats returns a copy of the counters.
func (z *Zswap) Stats() Stats {
	s := z.stats
	s.PoolPagesUsed = z.used
	return s
}

// PoolEntries reports how many compressed pages the pool holds.
func (z *Zswap) PoolEntries() int { return len(z.entries) }

// poolLimitPages is the max_pool_percent cap in zbud pages.
func (z *Zswap) poolLimitPages() int {
	limit := z.cfg.TotalRAMPages * z.cfg.MaxPoolPercent / 100
	if limit > z.cfg.PoolPages {
		limit = z.cfg.PoolPages
	}
	return limit
}

// allocZbud finds room for compLen bytes, preferring to buddy-up with an
// existing single occupant. It returns the zbud index, the pool address and
// whether the allocation took the first or last half.
func (z *Zswap) allocZbud(compLen int) (idx int, addr phys.Addr, first bool, ok bool) {
	// Try to pair with an unbuddied page.
	for i := len(z.unbuddied) - 1; i >= 0; i-- {
		zi := z.unbuddied[i]
		zp := &z.zbud[zi]
		if zp.spare() >= compLen {
			z.unbuddied = append(z.unbuddied[:i], z.unbuddied[i+1:]...)
			base := z.cfg.PoolBase + phys.Addr(zi)*phys.PageSize
			if zp.firstLen == 0 {
				zp.firstLen = compLen
				return zi, base, true, true
			}
			zp.lastLen = compLen
			return zi, base + phys.Addr(phys.PageSize-compLen), false, true
		}
	}
	if len(z.freeIdx) == 0 {
		return 0, 0, false, false
	}
	zi := z.freeIdx[len(z.freeIdx)-1]
	z.freeIdx = z.freeIdx[:len(z.freeIdx)-1]
	z.used++
	zp := &z.zbud[zi]
	zp.firstLen = compLen
	if compLen < phys.PageSize {
		z.unbuddied = append(z.unbuddied, zi)
	}
	return zi, z.cfg.PoolBase + phys.Addr(zi)*phys.PageSize, true, true
}

func (z *Zswap) freeZbud(e *entry) {
	zp := &z.zbud[e.zbudIdx]
	if e.first {
		zp.firstLen = 0
	} else {
		zp.lastLen = 0
	}
	if zp.free() {
		// Remove from unbuddied if present.
		for i, zi := range z.unbuddied {
			if zi == e.zbudIdx {
				z.unbuddied = append(z.unbuddied[:i], z.unbuddied[i+1:]...)
				break
			}
		}
		z.freeIdx = append(z.freeIdx, e.zbudIdx)
		z.used--
	} else if zp.single() {
		found := false
		for _, zi := range z.unbuddied {
			if zi == e.zbudIdx {
				found = true
				break
			}
		}
		if !found {
			z.unbuddied = append(z.unbuddied, e.zbudIdx)
		}
	}
}

// StorePage implements kernel.SwapOps: compress and pool the page, spilling
// to the backing device when the page is incompressible or the pool is
// full. Pool-overflow writeback (§VI-A) is performed inline.
func (z *Zswap) StorePage(slot kernel.SwapSlot, page []byte, now sim.Time) (done, hostCPU sim.Time) {
	if len(page) != phys.PageSize {
		panic("zswap: page size")
	}
	// Same-filled-page optimization: a page of one repeated byte is stored
	// as that value — no compression, no pool space (kernel zswap's
	// zswap_is_page_same_filled path). The check is a single cheap pass.
	if fill, same := sameFilled(page); same {
		e := &entry{slot: slot, sameFilled: true, fillValue: fill}
		e.lruElem = z.lru.PushBack(e)
		z.entries[slot] = e
		z.stats.Stores++
		z.stats.SameFilled++
		z.stats.UncompressedBytes += phys.PageSize
		// The scan costs roughly one pass over the page on the host CPU.
		scan := z.sameFilledScanCost()
		return now + scan, scan
	}
	res := z.backend.Store(page, 0, 0, now) // probe compresses; dst fixed below
	z.stats.LastStoreBreakdown = res.Breakdown
	hostCPU += res.HostCPU
	z.stats.HostCPU += res.HostCPU
	z.stats.PollutedLines += uint64(res.PollutedLines)

	// The kernel rejects pages whose compressed form is not smaller than a
	// page.
	if len(res.Comp) >= phys.PageSize {
		z.stats.Rejected++
		return z.backing.Write(slot, page, res.Done), hostCPU
	}

	idx, addr, first, ok := z.allocZbud(len(res.Comp))
	if !ok {
		// Pool storage exhausted: bypass to backing.
		z.stats.Rejected++
		return z.backing.Write(slot, page, res.Done), hostCPU
	}
	// Deposit the compressed image at its final pool address. The probe
	// Store above already modeled the data-plane timing; the deposit is the
	// functional side.
	z.depositComp(addr, res.Comp)

	e := &entry{slot: slot, addr: addr, compLen: len(res.Comp), zbudIdx: idx, first: first}
	e.lruElem = z.lru.PushBack(e)
	z.entries[slot] = e
	z.stats.Stores++
	z.stats.CompressedBytes += uint64(len(res.Comp))
	z.stats.UncompressedBytes += phys.PageSize

	done = res.Done
	// max_pool_percent overflow: write back LRU entries to backing.
	for z.used > z.poolLimitPages() {
		wbDone, wbCPU := z.writebackOldest(done)
		done = wbDone
		hostCPU += wbCPU
	}
	return done, hostCPU
}

// writebackOldest evicts the LRU compressed page to the backing device:
// decompress (through the backend) and write out, as the kernel does.
func (z *Zswap) writebackOldest(now sim.Time) (done, hostCPU sim.Time) {
	front := z.lru.Front()
	if front == nil {
		return now, 0
	}
	e := front.Value.(*entry)
	comp := z.readComp(e.addr, e.compLen)
	lres := z.backend.Load(e.addr, e.compLen, 0, now)
	_ = comp
	done = z.backing.Write(e.slot, lres.Page, lres.Done)
	z.removeEntry(e)
	z.stats.Writebacks++
	z.stats.HostCPU += lres.HostCPU
	return done, lres.HostCPU
}

// LoadPage implements kernel.SwapOps: serve the fault from the pool when
// present, otherwise from the backing device.
func (z *Zswap) LoadPage(slot kernel.SwapSlot, now sim.Time) (page []byte, done, hostCPU sim.Time) {
	e, ok := z.entries[slot]
	if ok && e.sameFilled {
		// Reconstruct the page with a memset-speed fill.
		page = make([]byte, phys.PageSize)
		if e.fillValue != 0 {
			for i := range page {
				page[i] = e.fillValue
			}
		}
		z.removeEntrySameFilled(e)
		z.stats.Loads++
		cost := z.sameFilledScanCost() / 2
		return page, now + cost, cost
	}
	if !ok {
		p, d, err := z.backing.Read(slot, now)
		if err != nil {
			panic(fmt.Sprintf("zswap: slot %d in neither pool nor backing", slot))
		}
		z.stats.BackingLoads++
		return p, d, 0
	}
	res := z.backend.Load(e.addr, e.compLen, 0, now)
	z.removeEntry(e)
	z.stats.Loads++
	z.stats.HostCPU += res.HostCPU
	z.stats.PollutedLines += uint64(res.PollutedLines)
	return res.Page, res.Done, res.HostCPU
}

// DropPage implements kernel.SwapOps.
func (z *Zswap) DropPage(slot kernel.SwapSlot) {
	if e, ok := z.entries[slot]; ok {
		z.removeEntry(e)
		return
	}
	z.backing.Drop(slot)
}

func (z *Zswap) removeEntry(e *entry) {
	if e.sameFilled {
		z.removeEntrySameFilled(e)
		return
	}
	z.lru.Remove(e.lruElem)
	delete(z.entries, e.slot)
	z.freeZbud(e)
}

func (z *Zswap) removeEntrySameFilled(e *entry) {
	z.lru.Remove(e.lruElem)
	delete(z.entries, e.slot)
}

// sameFilled reports whether every byte of the page equals its first byte.
func sameFilled(page []byte) (byte, bool) {
	v := page[0]
	for _, b := range page[1:] {
		if b != v {
			return 0, false
		}
	}
	return v, true
}

// sameFilledScanCost approximates one cached pass over a page (a memchr-
// style scan at cache speed).
func (z *Zswap) sameFilledScanCost() sim.Time {
	return 400 * sim.Nanosecond
}

// depositComp and readComp move compressed bytes in and out of pool
// storage. The backend has already modeled the transfer timing; these are
// the functional halves, routed through the backend's storage so device-
// memory pools hold real data.
func (z *Zswap) depositComp(addr phys.Addr, comp []byte) {
	z.backend.PoolWrite(addr, comp)
}

func (z *Zswap) readComp(addr phys.Addr, n int) []byte {
	buf := make([]byte, n)
	z.backend.PoolRead(addr, buf)
	return buf
}
