package zswap

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/lzc"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

// fakeBackend compresses with lzc instantly and stores pool bytes in a
// private store.
type fakeBackend struct {
	pool     *mem.Store
	storeLat sim.Time
	loadLat  sim.Time
	stores   int
	loads    int
}

func newFake() *fakeBackend {
	return &fakeBackend{pool: mem.NewStore("pool"), storeLat: 3 * sim.Microsecond, loadLat: 2 * sim.Microsecond}
}

func (f *fakeBackend) Name() string             { return "fake" }
func (f *fakeBackend) PoolInDeviceMemory() bool { return false }

func (f *fakeBackend) Store(page []byte, src, dst phys.Addr, now sim.Time) StoreResult {
	f.stores++
	comp := lzc.Compress(nil, page)
	return StoreResult{
		Comp:      comp,
		Done:      now + f.storeLat,
		HostCPU:   f.storeLat / 2,
		Breakdown: Breakdown{Compute: f.storeLat, Total: f.storeLat},
	}
}

func (f *fakeBackend) Load(src phys.Addr, compLen int, dst phys.Addr, now sim.Time) LoadResult {
	f.loads++
	comp := make([]byte, compLen)
	f.pool.Read(src, comp)
	page := make([]byte, phys.PageSize)
	if _, err := lzc.Decompress(page, comp); err != nil {
		panic(err)
	}
	return LoadResult{Page: page, Done: now + f.loadLat, HostCPU: f.loadLat / 4}
}

func (f *fakeBackend) PoolWrite(addr phys.Addr, data []byte) { f.pool.Write(addr, data) }
func (f *fakeBackend) PoolRead(addr phys.Addr, dst []byte)   { f.pool.Read(addr, dst) }

func fixture(t *testing.T, poolPages, maxPct int) (*Zswap, *fakeBackend, *kernel.BackingSwap) {
	t.Helper()
	fb := newFake()
	backing := kernel.NewBackingSwap(20*sim.Microsecond, 25*sim.Microsecond)
	z := MustNew(Config{
		MaxPoolPercent: maxPct,
		TotalRAMPages:  1000,
		PoolBase:       0x100000,
		PoolPages:      poolPages,
	}, fb, backing)
	return z, fb, backing
}

func compressible(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	return lzc.SyntheticPage(rng, phys.PageSize, 0.8)
}

func incompressible(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, phys.PageSize)
	rng.Read(p)
	return p
}

func TestStoreLoadRoundTrip(t *testing.T) {
	z, fb, _ := fixture(t, 64, 100)
	page := compressible(1)
	done, cpu := z.StorePage(7, page, 0)
	if done <= 0 || cpu <= 0 {
		t.Fatalf("done=%v cpu=%v", done, cpu)
	}
	if z.PoolEntries() != 1 {
		t.Fatalf("entries = %d", z.PoolEntries())
	}
	got, ldone, _ := z.LoadPage(7, done)
	if !bytes.Equal(got, page) {
		t.Fatal("round trip mismatch")
	}
	if ldone <= done {
		t.Fatal("load must take time")
	}
	if fb.stores != 1 || fb.loads != 1 {
		t.Fatalf("backend calls: %d stores, %d loads", fb.stores, fb.loads)
	}
	// Load is exclusive: the entry is gone.
	if z.PoolEntries() != 0 {
		t.Fatal("entry should be removed after load")
	}
}

func TestIncompressibleGoesToBacking(t *testing.T) {
	z, _, backing := fixture(t, 64, 100)
	page := incompressible(2)
	z.StorePage(9, page, 0)
	if z.PoolEntries() != 0 {
		t.Fatal("incompressible page should not be pooled")
	}
	if backing.Stored() != 1 {
		t.Fatal("incompressible page should hit backing swap")
	}
	if z.Stats().Rejected != 1 {
		t.Fatal("rejection not counted")
	}
	got, _, _ := z.LoadPage(9, 0)
	if !bytes.Equal(got, page) {
		t.Fatal("backing round trip mismatch")
	}
	if z.Stats().BackingLoads != 1 {
		t.Fatal("backing load not counted")
	}
}

func TestZbudPairsTwoCompressedPages(t *testing.T) {
	z, _, _ := fixture(t, 64, 100)
	// Two pages that compress below half a page each should share one zbud
	// page.
	z.StorePage(1, compressible(10), 0)
	z.StorePage(2, compressible(11), 0)
	st := z.Stats()
	if st.PoolPagesUsed != 1 {
		t.Fatalf("pool pages used = %d, want 1 (buddied)", st.PoolPagesUsed)
	}
	// Both load back correctly (no overlap corruption).
	a, _, _ := z.LoadPage(1, 0)
	b, _, _ := z.LoadPage(2, 0)
	if !bytes.Equal(a, compressible(10)) || !bytes.Equal(b, compressible(11)) {
		t.Fatal("buddied pages corrupted")
	}
}

func TestZbudFreeingReleasesPages(t *testing.T) {
	z, _, _ := fixture(t, 8, 100)
	for slot := kernel.SwapSlot(1); slot <= 8; slot++ {
		z.StorePage(slot, compressible(int64(slot)), 0)
	}
	used := z.Stats().PoolPagesUsed
	for slot := kernel.SwapSlot(1); slot <= 8; slot++ {
		z.DropPage(slot)
	}
	if z.Stats().PoolPagesUsed != 0 {
		t.Fatalf("pool pages used = %d after dropping all (was %d)", z.Stats().PoolPagesUsed, used)
	}
	if z.PoolEntries() != 0 {
		t.Fatal("entries remain")
	}
}

func TestMaxPoolPercentTriggersWriteback(t *testing.T) {
	// Pool limit: 1000 RAM pages × 1% = 10 zbud pages.
	z, _, backing := fixture(t, 64, 1)
	var slot kernel.SwapSlot
	for slot = 1; slot <= 40; slot++ {
		z.StorePage(slot, incompressibleButPoolable(int64(slot)), 0)
	}
	st := z.Stats()
	if st.Writebacks == 0 {
		t.Fatal("pool overflow must write back to the backing device")
	}
	if st.PoolPagesUsed > 10 {
		t.Fatalf("pool used %d pages, limit 10", st.PoolPagesUsed)
	}
	if backing.Stored() == 0 {
		t.Fatal("written-back pages missing from backing")
	}
	// Every page is still recoverable from either location.
	for s := kernel.SwapSlot(1); s <= 40; s++ {
		got, _, _ := z.LoadPage(s, 0)
		if !bytes.Equal(got, incompressibleButPoolable(int64(s))) {
			t.Fatalf("slot %d corrupted after writeback shuffle", s)
		}
	}
}

// incompressibleButPoolable compresses to just under a page so each entry
// occupies most of a zbud page (forces pool growth).
func incompressibleButPoolable(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, phys.PageSize)
	rng.Read(p)
	// A run of zeros buys enough compression to stay below PageSize.
	for i := 0; i < 512; i++ {
		p[i] = 0
	}
	return p
}

func TestWritebackEvictsLRUFirst(t *testing.T) {
	z, _, _ := fixture(t, 64, 1) // limit 10 zbud pages
	for slot := kernel.SwapSlot(1); slot <= 11; slot++ {
		z.StorePage(slot, incompressibleButPoolable(int64(slot)), 0)
	}
	// Slot 1 was the oldest; it should now live in backing, not the pool.
	if _, inPool := z.entries[1]; inPool {
		t.Fatal("LRU entry survived writeback")
	}
	if _, inPool := z.entries[11]; !inPool {
		t.Fatal("newest entry should remain pooled")
	}
}

func TestDropPageFromBacking(t *testing.T) {
	z, _, backing := fixture(t, 8, 100)
	z.StorePage(3, incompressible(3), 0) // rejected → backing
	z.DropPage(3)
	if backing.Stored() != 0 {
		t.Fatal("DropPage did not clear backing slot")
	}
}

func TestStatsRatio(t *testing.T) {
	z, _, _ := fixture(t, 64, 100)
	z.StorePage(1, compressible(20), 0)
	st := z.Stats()
	if st.CompressedBytes == 0 || st.UncompressedBytes != phys.PageSize {
		t.Fatalf("stats = %+v", st)
	}
	if st.CompressedBytes >= st.UncompressedBytes {
		t.Fatal("compressible page did not shrink")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MaxPoolPercent: 0, TotalRAMPages: 10, PoolPages: 10},
		{MaxPoolPercent: 101, TotalRAMPages: 10, PoolPages: 10},
		{MaxPoolPercent: 20, TotalRAMPages: 0, PoolPages: 10},
		{MaxPoolPercent: 20, TotalRAMPages: 10, PoolPages: 0},
	}
	for i, c := range bad {
		if _, err := New(c, newFake(), kernel.NewBackingSwap(1, 1)); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(Config{MaxPoolPercent: 20, TotalRAMPages: 10, PoolPages: 10}, nil, nil); err == nil {
		t.Error("nil backend accepted")
	}
}

func TestKernelIntegrationThroughSwapOps(t *testing.T) {
	// End to end: MM reclaim drives zswap; faults restore data.
	fb := newFake()
	backing := kernel.NewBackingSwap(20*sim.Microsecond, 25*sim.Microsecond)
	z := MustNew(Config{MaxPoolPercent: 50, TotalRAMPages: 8, PoolBase: 0x200000, PoolPages: 16}, fb, backing)
	eng := sim.NewEngine()
	mm := kernel.NewMM(timing.Default(), mem.NewStore("host"), 0, 8)
	mm.SetSwap(z)
	proc := sim.NewProc(eng, "app", nil)
	as := mm.NewAddressSpace(1)
	pages := make([][]byte, 12)
	for v := range pages {
		pages[v] = compressible(int64(100 + v))
		if err := as.Map(uint64(v), pages[v], proc); err != nil {
			t.Fatal(err)
		}
	}
	// The first few pages were reclaimed through zswap; fault them back.
	for v := 0; v < 12; v++ {
		got, err := as.Read(uint64(v), proc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pages[v]) {
			t.Fatalf("page %d corrupted through the zswap cycle", v)
		}
	}
	if z.Stats().Stores == 0 {
		t.Fatal("zswap never engaged")
	}
}

// TestZbudInvariantsProperty fuzzes the pool with random store/load/drop
// operations and validates the zbud allocator's accounting after each:
// used pages equal pages holding at least one buddy, no zbud page
// over-commits its capacity, and every pooled entry round-trips its bytes.
func TestZbudInvariantsProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		z, _, _ := fixture(t, 32, 100)
		live := map[kernel.SwapSlot][]byte{}
		nextSlot := kernel.SwapSlot(1)
		for op := 0; op < 400; op++ {
			switch rng.Intn(3) {
			case 0: // store
				page := lzc.SyntheticPage(rng, phys.PageSize, 0.3+rng.Float64()*0.6)
				slot := nextSlot
				nextSlot++
				z.StorePage(slot, page, 0)
				if _, pooled := z.entries[slot]; pooled {
					live[slot] = page
				}
			case 1: // load (removes)
				for slot, want := range live {
					got, _, _ := z.LoadPage(slot, 0)
					if !bytes.Equal(got, want) {
						t.Fatalf("seed %d op %d: slot %d corrupted", seed, op, slot)
					}
					delete(live, slot)
					break
				}
			case 2: // drop
				for slot := range live {
					z.DropPage(slot)
					delete(live, slot)
					break
				}
			}
			// Accounting invariants.
			occupied := 0
			for i := range z.zbud {
				zp := &z.zbud[i]
				if zp.firstLen < 0 || zp.lastLen < 0 || zp.firstLen+zp.lastLen > phys.PageSize {
					t.Fatalf("seed %d op %d: zbud page %d overcommitted (%d+%d)",
						seed, op, i, zp.firstLen, zp.lastLen)
				}
				if !zp.free() {
					occupied++
				}
			}
			if occupied != z.used {
				t.Fatalf("seed %d op %d: used=%d but %d pages occupied", seed, op, z.used, occupied)
			}
			if len(z.entries) < occupied {
				t.Fatalf("seed %d op %d: %d entries in %d pages", seed, op, len(z.entries), occupied)
			}
		}
		// Drain and verify everything left.
		for slot, want := range live {
			got, _, _ := z.LoadPage(slot, 0)
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: final slot %d corrupted", seed, slot)
			}
		}
		if z.used != 0 || z.PoolEntries() != 0 {
			t.Fatalf("seed %d: pool not empty after drain (used=%d entries=%d)", seed, z.used, z.PoolEntries())
		}
	}
}

func TestSameFilledPages(t *testing.T) {
	z, fb, _ := fixture(t, 64, 100)
	// Zero page and a memset pattern: stored as values, no pool space, no
	// backend compression.
	zero := make([]byte, phys.PageSize)
	patt := bytes.Repeat([]byte{0xA5}, phys.PageSize)
	d1, c1 := z.StorePage(1, zero, 0)
	d2, c2 := z.StorePage(2, patt, d1)
	if fb.stores != 0 {
		t.Fatal("same-filled pages must skip the compression backend")
	}
	if z.Stats().SameFilled != 2 || z.Stats().PoolPagesUsed != 0 {
		t.Fatalf("stats = %+v", z.Stats())
	}
	if c1 <= 0 || c2 <= 0 {
		t.Fatal("the scan still costs CPU")
	}
	// A normal page still goes through the backend.
	z.StorePage(3, compressible(5), d2)
	if fb.stores != 1 {
		t.Fatal("regular page bypassed the backend")
	}
	// Loads reconstruct exactly.
	got, _, _ := z.LoadPage(1, 0)
	if !bytes.Equal(got, zero) {
		t.Fatal("zero page corrupted")
	}
	got, _, _ = z.LoadPage(2, 0)
	if !bytes.Equal(got, patt) {
		t.Fatal("patterned page corrupted")
	}
	if fb.loads != 0 {
		t.Fatal("same-filled loads must skip the backend")
	}
	// Drop works too.
	z.StorePage(4, zero, 0)
	z.DropPage(4)
	if z.PoolEntries() != 1 { // only slot 3 remains
		t.Fatalf("entries = %d", z.PoolEntries())
	}
}

func TestSameFilledFasterThanCompression(t *testing.T) {
	z, _, _ := fixture(t, 64, 100)
	zero := make([]byte, phys.PageSize)
	dz, _ := z.StorePage(10, zero, 0)
	dc, _ := z.StorePage(11, compressible(9), 0)
	if dz >= dc {
		t.Fatalf("same-filled store (%v) should be much faster than compression (%v)", dz, dc)
	}
}
