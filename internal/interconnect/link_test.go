package interconnect

import (
	"testing"

	"repro/internal/sim"
)

func TestTransferLatency(t *testing.T) {
	// 64 GB/s, 75 ns one-way: a 64 B transfer arrives at 1 ns + 75 ns.
	l := NewLink("cxl", 75*sim.Nanosecond, 64e9)
	got := l.Transfer(Down, 0, 64)
	if want := 76 * sim.Nanosecond; got != want {
		t.Fatalf("arrival = %v, want %v", got, want)
	}
}

func TestZeroPayloadStillPropagates(t *testing.T) {
	l := NewLink("cxl", 10*sim.Nanosecond, 64e9)
	if got := l.Transfer(Up, 5, 0); got != 5+10*sim.Nanosecond {
		t.Fatalf("arrival = %v", got)
	}
}

func TestSerializationContention(t *testing.T) {
	l := NewLink("cxl", 75*sim.Nanosecond, 64e9)
	// Two back-to-back 64 B transfers: the second serializes behind the
	// first (1 ns each) before propagating.
	a := l.Transfer(Down, 0, 64)
	b := l.Transfer(Down, 0, 64)
	if b != a+sim.Nanosecond {
		t.Fatalf("second arrival %v, want %v", b, a+sim.Nanosecond)
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	l := NewLink("cxl", 75*sim.Nanosecond, 64e9)
	l.Transfer(Down, 0, 64_000) // 1 µs of down occupancy
	// Up direction is unaffected.
	if got := l.Transfer(Up, 0, 64); got != 76*sim.Nanosecond {
		t.Fatalf("up arrival = %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	l := NewLink("upi", 40*sim.Nanosecond, 64e9)
	// 16 B req + 64+16 B resp + 20 ns remote processing.
	got := l.RoundTrip(Down, 0, 16, 80, 20*sim.Nanosecond)
	// req: serialize 0.25 ns + 40 ns; proc 20 ns; resp: 1.25 ns + 40 ns.
	want := sim.FromNanos(0.25) + 40*sim.Nanosecond + 20*sim.Nanosecond +
		sim.FromNanos(1.25) + 40*sim.Nanosecond
	if got != want {
		t.Fatalf("RT = %v, want %v", got, want)
	}
}

func TestBandwidthEmergesFromOccupancy(t *testing.T) {
	// Saturate the down direction with 1000 × 64 B transfers issued at t=0:
	// total occupancy should make the last arrival reflect ~64 GB/s.
	l := NewLink("cxl", 0, 64e9)
	var last sim.Time
	for i := 0; i < 1000; i++ {
		last = l.Transfer(Down, 0, 64)
	}
	bw := float64(1000*64) / last.Seconds()
	if bw < 63e9 || bw > 65e9 {
		t.Fatalf("emergent bandwidth = %.2f GB/s", bw/1e9)
	}
	if l.Transferred(Down) != 64000 {
		t.Fatalf("Transferred = %d", l.Transferred(Down))
	}
}

func TestUtilization(t *testing.T) {
	l := NewLink("x", 0, 64e9)
	l.Transfer(Down, 0, 64_000) // 1 µs busy
	u := l.Utilization(Down, 2*sim.Microsecond)
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v", u)
	}
	if l.Utilization(Down, 0) != 0 {
		t.Fatal("utilization at t=0 should be 0")
	}
}

func TestReset(t *testing.T) {
	l := NewLink("x", 10, 64e9)
	l.Transfer(Down, 0, 64)
	l.Reset()
	if l.Transferred(Down) != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if got := l.Transfer(Down, 0, 64); got != sim.Nanosecond+10 {
		t.Fatalf("post-reset transfer = %v", got)
	}
}

func TestBadLinkPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLink("bad", -1, 64e9) },
		func() { NewLink("bad", 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDirString(t *testing.T) {
	if Down.String() != "down" || Up.String() != "up" {
		t.Fatal("Dir.String wrong")
	}
}
