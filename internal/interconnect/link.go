// Package interconnect models point-to-point links: PCIe 5.0 (the physical
// layer under both the CXL device and the plain-PCIe personalities), the
// inter-socket UPI used for NUMA emulation, and helper math for payload
// serialization.
//
// A link is full duplex: each direction is an independent serialized
// resource. A transfer occupies its direction for payload/bandwidth and then
// propagates for the link's one-way latency; bandwidth contention emerges
// when concurrent transfers overlap on one direction.
package interconnect

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/timing"
)

// Dir selects a link direction.
type Dir uint8

// Link directions: Down is host→device (or socket0→socket1), Up the
// reverse.
const (
	Down Dir = iota
	Up
)

// String names the direction.
func (d Dir) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// Link is a full-duplex point-to-point link.
type Link struct {
	name        string
	oneWay      sim.Time
	bytesPerSec float64
	dirs        [2]*sim.Resource
	transferred [2]uint64
}

// NewLink creates a link with the given one-way propagation latency and
// per-direction payload bandwidth.
func NewLink(name string, oneWay sim.Time, bytesPerSec float64) *Link {
	if oneWay < 0 || bytesPerSec <= 0 {
		panic(fmt.Sprintf("interconnect: bad link %q (%v, %v)", name, oneWay, bytesPerSec))
	}
	return &Link{
		name:        name,
		oneWay:      oneWay,
		bytesPerSec: bytesPerSec,
		dirs:        [2]*sim.Resource{sim.NewResource(name + ".down"), sim.NewResource(name + ".up")},
	}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// OneWay returns the propagation latency.
func (l *Link) OneWay() sim.Time { return l.oneWay }

// BytesPerSec returns the per-direction bandwidth.
func (l *Link) BytesPerSec() float64 { return l.bytesPerSec }

// Transfer sends payloadBytes in direction d starting no earlier than now.
// It returns the arrival time at the far end: serialization (queued behind
// earlier transfers on this direction) plus propagation. A zero-payload
// message (pure protocol flit) still propagates.
func (l *Link) Transfer(d Dir, now sim.Time, payloadBytes int) sim.Time {
	occ := timing.Serialize(payloadBytes, l.bytesPerSec)
	start := l.dirs[d].Claim(now, occ)
	l.transferred[d] += uint64(payloadBytes)
	return start + occ + l.oneWay
}

// RoundTrip sends a request of reqBytes in direction d and a response of
// respBytes back, returning the response arrival time. remoteProc is the
// far-end service time between request arrival and response injection.
func (l *Link) RoundTrip(d Dir, now sim.Time, reqBytes, respBytes int, remoteProc sim.Time) sim.Time {
	arrive := l.Transfer(d, now, reqBytes)
	return l.Transfer(1-d, arrive+remoteProc, respBytes)
}

// Transferred reports total payload bytes moved in direction d.
func (l *Link) Transferred(d Dir) uint64 { return l.transferred[d] }

// Utilization reports the busy fraction of direction d up to now.
func (l *Link) Utilization(d Dir, now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(l.dirs[d].Busy()) / float64(now)
}

// Reset restores the link to idle.
func (l *Link) Reset() {
	for _, r := range l.dirs {
		r.Reset()
	}
	l.transferred = [2]uint64{}
}
