// Package phys defines the physical address vocabulary shared by every
// memory-system component: addresses, cache-line and page geometry, and
// address-range helpers.
package phys

import "fmt"

// Addr is a physical address in the simulated system's unified address
// space. Host DRAM, device memory (the CXL HPA window) and MMIO regions all
// live in this one space, exactly as CXL.mem exposes device memory to the
// host (§II-B).
type Addr uint64

// LineSize is the cache-line and CXL-transfer granule (64 B).
const LineSize = 64

// PageSize is the OS page granule used by the kernel-feature models (4 KiB).
const PageSize = 4096

// LinesPerPage is PageSize / LineSize.
const LinesPerPage = PageSize / LineSize

// LineAddr returns a rounded down to its cache-line base.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// PageAddr returns a rounded down to its page base.
func PageAddr(a Addr) Addr { return a &^ (PageSize - 1) }

// LineOffset returns the offset of a within its cache line.
func LineOffset(a Addr) int { return int(a & (LineSize - 1)) }

// String formats the address in hex.
func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// Range is a half-open physical address interval [Base, Base+Size).
type Range struct {
	Base Addr
	Size uint64
}

// Contains reports whether a falls inside the range.
func (r Range) Contains(a Addr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Base + Addr(r.Size) }

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool {
	return r.Base < o.End() && o.Base < r.End()
}

// String formats the range.
func (r Range) String() string {
	return fmt.Sprintf("[%v, %v)", r.Base, r.End())
}
