package phys

// LineArena bump-allocates cache-line payload buffers for the
// transaction hot paths (host loads, device D2H/H2D/D2D line moves).
// Line-sized `make` calls dominate allocation in the serving and figure
// simulations — one 64-byte object per modeled memory transaction — so
// the arena carves them out of slab-sized allocations instead: an
// allocation every slabLines transactions rather than every one, and no
// per-line GC bookkeeping.
//
// It is a bump allocator, not a free list: a handed-out line is never
// reused until Reset, so callers may retain AccessResult data with the
// same safety as individually allocated buffers. Reset rewinds (and
// re-zeroes) the slabs for the next run; owners call it at their timing
// reset points, where the contract is that no line buffer from the
// previous run is still referenced.
type LineArena struct {
	slabs [][]byte
	si    int // active slab index
	off   int // offset into the active slab
}

// slabLines is the arena granularity: 1024 lines = 64 KiB per slab.
const slabLines = 1024

// Line returns a zeroed LineSize buffer with full-capacity slice bounds.
func (a *LineArena) Line() []byte {
	b := a.raw()
	clear(b)
	return b
}

// raw bump-allocates the next line without zeroing it (reused slab
// space holds stale bytes from before the last Reset).
func (a *LineArena) raw() []byte {
	if a.si == len(a.slabs) {
		a.slabs = append(a.slabs, make([]byte, slabLines*LineSize))
	}
	s := a.slabs[a.si]
	if a.off+LineSize > len(s) {
		a.si++
		a.off = 0
		return a.raw()
	}
	b := s[a.off : a.off+LineSize : a.off+LineSize]
	a.off += LineSize
	return b
}

// Clone returns an arena copy of d (nil in, nil out). d need not be
// line-sized; anything up to LineSize shares the line granularity.
func (a *LineArena) Clone(d []byte) []byte {
	if d == nil {
		return nil
	}
	if len(d) > LineSize {
		// Outside the arena's granularity — fall back to the heap.
		out := make([]byte, len(d))
		copy(out, d)
		return out
	}
	b := a.raw()
	n := copy(b, d)
	clear(b[n:]) // keep the tail zero for in-cap reslices
	return b[:n]
}

// Reset rewinds the arena for the next run in O(1); Line/Clone zero
// each buffer as it is handed back out. Buffers handed out before the
// Reset must no longer be referenced.
func (a *LineArena) Reset() {
	a.si, a.off = 0, 0
}
