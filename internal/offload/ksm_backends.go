package offload

import (
	"fmt"

	"repro/internal/cxl"
	"repro/internal/ksm"
	"repro/internal/pcie"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/xxhash"
)

// NewKsmBackend returns the ksm data-plane backend for the variant.
func NewKsmBackend(v Variant, pl *Platform) ksm.Backend {
	switch v {
	case CPU:
		return &cpuKsm{pl: pl}
	case PCIeRDMA:
		return &rdmaKsm{pl: pl}
	case PCIeDMA:
		return &dmaKsm{pl: pl}
	case CXL:
		return &cxlKsm{pl: pl}
	default:
		panic(fmt.Sprintf("offload: unknown variant %v", v))
	}
}

// ksmBatch is the offload batching factor for the PCIe backends: the
// SNIC/FPGA ksm offload queues a batch of candidate pages per doorbell and
// raises one completion interrupt per batch (as the STYX-style offload
// does), so the host-side post/interrupt cost is amortized across the
// batch.
const ksmBatch = 32

// firstDiff is the shared functional comparison.
func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// comparedBytes is how much of the pages a first-difference comparison
// actually examines.
func comparedBytes(a []byte, diff int) int {
	if diff >= len(a) {
		return len(a)
	}
	return diff + 1
}

// ---------- cpu-ksm ----------

type cpuKsm struct{ pl *Platform }

func (b *cpuKsm) Name() string    { return "cpu-ksm" }
func (b *cpuKsm) Offloaded() bool { return false }

func (b *cpuKsm) Checksum(page []byte, src phys.Addr, now sim.Time) ksm.ChecksumResult {
	cost := b.pl.P.SW.HostHash4K
	return ksm.ChecksumResult{
		Sum:           xxhash.PageChecksum(page),
		Done:          now + cost,
		HostCPU:       cost,
		PollutedLines: phys.LinesPerPage,
	}
}

func (b *cpuKsm) Compare(a, bb []byte, aAddr, bAddr phys.Addr, now sim.Time) ksm.CompareResult {
	diff := firstDiff(a, bb)
	frac := float64(comparedBytes(a, diff)) / float64(phys.PageSize)
	cost := sim.Time(float64(b.pl.P.SW.HostCompare4K) * frac)
	return ksm.CompareResult{
		FirstDiff:     diff,
		Done:          now + cost,
		HostCPU:       cost,
		PollutedLines: 2 * comparedBytes(a, diff) / phys.LineSize,
	}
}

// ---------- pcie-rdma-ksm ----------

type rdmaKsm struct{ pl *Platform }

func (b *rdmaKsm) Name() string    { return "pcie-rdma-ksm" }
func (b *rdmaKsm) Offloaded() bool { return true }

func (b *rdmaKsm) Checksum(page []byte, src phys.Addr, now sim.Time) ksm.ChecksumResult {
	p := b.pl.P
	t := now + p.PCIe.RDMAPost
	in := b.pl.EP.RDMATransfer(phys.PageSize, t, pcie.D2H)
	done := in.Done + p.SW.ArmHash4K + p.PCIe.InterruptCost/ksmBatch
	return ksm.ChecksumResult{
		Sum:           xxhash.PageChecksum(page),
		Done:          done,
		HostCPU:       (p.PCIe.RDMAPost + p.PCIe.InterruptCost) / ksmBatch,
		PollutedLines: 2,
	}
}

func (b *rdmaKsm) Compare(a, bb []byte, aAddr, bAddr phys.Addr, now sim.Time) ksm.CompareResult {
	p := b.pl.P
	diff := firstDiff(a, bb)
	t := now + p.PCIe.RDMAPost
	in := b.pl.EP.RDMATransfer(2*phys.PageSize, t, pcie.D2H)
	frac := float64(comparedBytes(a, diff)) / float64(phys.PageSize)
	compute := sim.Time(float64(p.SW.ArmCompare4K) * frac)
	done := in.Done + compute + p.PCIe.InterruptCost/ksmBatch
	return ksm.CompareResult{
		FirstDiff:     diff,
		Done:          done,
		HostCPU:       (p.PCIe.RDMAPost + p.PCIe.InterruptCost) / ksmBatch,
		PollutedLines: 2,
	}
}

// ---------- pcie-dma-ksm ----------

type dmaKsm struct{ pl *Platform }

func (b *dmaKsm) Name() string    { return "pcie-dma-ksm" }
func (b *dmaKsm) Offloaded() bool { return true }

func (b *dmaKsm) Checksum(page []byte, src phys.Addr, now sim.Time) ksm.ChecksumResult {
	p := b.pl.P
	in := b.pl.EP.DMATransfer(phys.PageSize, now, false)
	compute := timing.Streaming(phys.PageSize, p.Device.HashBytesPerSec)
	done := in.Done + compute + p.PCIe.InterruptCost/ksmBatch
	return ksm.ChecksumResult{
		Sum:           xxhash.PageChecksum(page),
		Done:          done,
		HostCPU:       (in.HostCPU + p.PCIe.InterruptCost) / ksmBatch,
		PollutedLines: 2,
	}
}

func (b *dmaKsm) Compare(a, bb []byte, aAddr, bAddr phys.Addr, now sim.Time) ksm.CompareResult {
	p := b.pl.P
	diff := firstDiff(a, bb)
	in := b.pl.EP.DMATransfer(2*phys.PageSize, now, false)
	compute := timing.Streaming(2*comparedBytes(a, diff), p.Device.CompareBytesPerSec)
	done := in.Done + compute + p.PCIe.InterruptCost/ksmBatch
	return ksm.CompareResult{
		FirstDiff:     diff,
		Done:          done,
		HostCPU:       (in.HostCPU + p.PCIe.InterruptCost) / ksmBatch,
		PollutedLines: 2,
	}
}

// ---------- cxl-ksm ----------

// cxlKsm uses the Fig. 7 doorbell protocol. Per §VI-B the D2H transfer is
// pipelined with the byte comparison, while the checksum must wait for the
// full page; results return via NC-P.
type cxlKsm struct{ pl *Platform }

func (b *cxlKsm) Name() string    { return "cxl-ksm" }
func (b *cxlKsm) Offloaded() bool { return true }

func (b *cxlKsm) Checksum(page []byte, src phys.Addr, now sim.Time) ksm.ChecksumResult {
	p := b.pl.P
	cmdAt, hostCPU := b.pl.doorbell(now)
	// Full page must arrive before hashing starts (§VI-B).
	readDone := b.pl.Dev.ReadHostBlock(cxl.NCRead, src, phys.PageSize, nil, cmdAt)
	hashDone := readDone + timing.Streaming(phys.PageSize, p.Device.HashBytesPerSec)
	res := b.pl.Dev.D2H(cxl.NCP, src, nil, hashDone)
	pollLat, pollCPU := b.pl.resultPoll()
	return ksm.ChecksumResult{
		Sum:           xxhash.PageChecksum(page),
		Done:          res.Done + pollLat,
		HostCPU:       hostCPU + pollCPU,
		PollutedLines: 1,
	}
}

func (b *cxlKsm) Compare(a, bb []byte, aAddr, bAddr phys.Addr, now sim.Time) ksm.CompareResult {
	p := b.pl.P
	diff := firstDiff(a, bb)
	n := comparedBytes(a, diff)
	cmdAt, hostCPU := b.pl.doorbell(now)
	// The comparison streams as lines arrive: transfer only what is
	// compared (early-out), from both pages, pipelined with the compare IP.
	span := (n + phys.LineSize - 1) &^ (phys.LineSize - 1)
	readDone := b.pl.Dev.ReadHostBlock(cxl.NCRead, src2(aAddr, bAddr), 2*span, nil, cmdAt)
	compDone := cmdAt + timing.Streaming(2*n, p.Device.CompareBytesPerSec)
	stage := max(readDone, compDone)
	res := b.pl.Dev.D2H(cxl.NCP, aAddr, nil, stage)
	pollLat, pollCPU := b.pl.resultPoll()
	return ksm.CompareResult{
		FirstDiff:     diff,
		Done:          res.Done + pollLat,
		HostCPU:       hostCPU + pollCPU,
		PollutedLines: 1,
	}
}

// src2 picks a representative source for the interleaved two-page read
// stream (timing only; the functional comparison uses the real bytes).
func src2(a, b phys.Addr) phys.Addr {
	if a != 0 {
		return a
	}
	return b
}
