package offload

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/kernel"
	"repro/internal/lzc"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/zswap"
)

func platform(t testing.TB) *Platform {
	t.Helper()
	h := host.MustNew(timing.Default(), host.Config{LLCBytes: 4 << 20, LLCWays: 16, Cores: 4})
	if _, err := h.Attach(device.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	return NewPlatform(h)
}

func testPage(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	return lzc.SyntheticPage(rng, phys.PageSize, 0.7)
}

const srcAddr = phys.Addr(0x40000)

func TestVariantNames(t *testing.T) {
	want := map[Variant]string{CPU: "cpu", PCIeRDMA: "pcie-rdma", PCIeDMA: "pcie-dma", CXL: "cxl"}
	for v, n := range want {
		if v.String() != n {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
	if len(Variants()) != 4 {
		t.Fatal("Variants() should list all four")
	}
}

func TestZswapBackendNames(t *testing.T) {
	pl := platform(t)
	want := map[Variant]string{
		CPU: "cpu-zswap", PCIeRDMA: "pcie-rdma-zswap", PCIeDMA: "pcie-dma-zswap", CXL: "cxl-zswap",
	}
	for v, n := range want {
		if got := NewZswapBackend(v, pl).Name(); got != n {
			t.Errorf("%v backend name = %q, want %q", v, got, n)
		}
	}
}

func TestOnlyCXLPoolsInDeviceMemory(t *testing.T) {
	// §VI-A: storing the zpool in device memory "cannot be easily or
	// efficiently accomplished with PCIe-based zswap".
	pl := platform(t)
	for _, v := range Variants() {
		b := NewZswapBackend(v, pl)
		if got := b.PoolInDeviceMemory(); got != (v == CXL) {
			t.Errorf("%v: PoolInDeviceMemory = %v", v, got)
		}
	}
}

func TestAllBackendsRoundTripData(t *testing.T) {
	pl := platform(t)
	page := testPage(1)
	pl.Host.Store().Write(srcAddr, page)
	for _, v := range Variants() {
		b := NewZswapBackend(v, pl)
		res := b.Store(page, srcAddr, 0, 0)
		if len(res.Comp) >= phys.PageSize {
			t.Fatalf("%v: page did not compress", v)
		}
		poolAddr := phys.Addr(0x900000)
		if v == CXL {
			poolAddr = mem.RegionDevice.Base + 0x900000
		}
		b.PoolWrite(poolAddr, res.Comp)
		lres := b.Load(poolAddr, len(res.Comp), srcAddr+phys.PageSize, res.Done)
		if !bytes.Equal(lres.Page, page) {
			t.Fatalf("%v: round trip mismatch", v)
		}
		if lres.Done <= res.Done {
			t.Fatalf("%v: load must take time", v)
		}
	}
}

// TestTableIVShape pins the offload-latency relations of Table IV:
// cxl-zswap's pipelined compression offload is ~64% faster than
// pcie-rdma-zswap and ~37% faster than pcie-dma-zswap.
func TestTableIVShape(t *testing.T) {
	pl := platform(t)
	page := testPage(2)
	pl.Host.Store().Write(srcAddr, page)

	total := func(v Variant) sim.Time {
		pl.Host.ResetTiming()
		pl.EP.ResetTiming()
		b := NewZswapBackend(v, pl)
		res := b.Store(page, srcAddr, 0, 0)
		return res.Breakdown.Total
	}
	rdma := total(PCIeRDMA)
	dma := total(PCIeDMA)
	cxlT := total(CXL)

	lowerVsRDMA := stats.PctLower(float64(cxlT), float64(rdma))
	lowerVsDMA := stats.PctLower(float64(cxlT), float64(dma))
	if !stats.Within(lowerVsRDMA, 64, 0.25) {
		t.Errorf("cxl vs rdma: %.0f%% lower (cxl=%v rdma=%v), paper: 64%%", lowerVsRDMA, cxlT, rdma)
	}
	if !stats.Within(lowerVsDMA, 37, 0.40) {
		t.Errorf("cxl vs dma: %.0f%% lower (cxl=%v dma=%v), paper: 37%%", lowerVsDMA, cxlT, dma)
	}
	// Absolute ordering: cxl < dma < rdma (Table IV: 3.9 < 6.2 < 10.9).
	if !(cxlT < dma && dma < rdma) {
		t.Errorf("ordering broken: cxl=%v dma=%v rdma=%v", cxlT, dma, rdma)
	}
}

func TestTableIVBreakdownSteps(t *testing.T) {
	pl := platform(t)
	page := testPage(3)
	pl.Host.Store().Write(srcAddr, page)

	rdma := NewZswapBackend(PCIeRDMA, pl).Store(page, srcAddr, 0, 0).Breakdown
	if rdma.Pipelined {
		t.Fatal("rdma backend is not pipelined")
	}
	// Paper's per-step ordering for pcie-rdma: compute (5.5) > transfer-in
	// (3.1) > store-out (2.3).
	if !(rdma.Compute > rdma.TransferIn && rdma.TransferIn > rdma.StoreOut) {
		t.Errorf("rdma step ordering: in=%v compute=%v out=%v", rdma.TransferIn, rdma.Compute, rdma.StoreOut)
	}
	pl.EP.ResetTiming()
	dma := NewZswapBackend(PCIeDMA, pl).Store(page, srcAddr, 0, 0).Breakdown
	// pcie-dma: compute (2.9) > transfer-in (1.7) > store-out (1.6).
	if !(dma.Compute > dma.TransferIn && dma.TransferIn >= dma.StoreOut) {
		t.Errorf("dma step ordering: in=%v compute=%v out=%v", dma.TransferIn, dma.Compute, dma.StoreOut)
	}
	cxlB := NewZswapBackend(CXL, pl).Store(page, srcAddr, 0, 0).Breakdown
	if !cxlB.Pipelined {
		t.Fatal("cxl backend must report pipelined")
	}
}

func TestHostCPUOrdering(t *testing.T) {
	// §VII: cpu consumes the most host CPU; pcie-* pay doorbell+interrupt;
	// cxl pays almost nothing.
	pl := platform(t)
	page := testPage(4)
	pl.Host.Store().Write(srcAddr, page)
	cpus := map[Variant]sim.Time{}
	for _, v := range Variants() {
		pl.EP.ResetTiming()
		res := NewZswapBackend(v, pl).Store(page, srcAddr, 0, 0)
		cpus[v] = res.HostCPU
	}
	if !(cpus[CXL] < cpus[PCIeRDMA] && cpus[CXL] < cpus[PCIeDMA] && cpus[PCIeRDMA] < cpus[CPU] && cpus[PCIeDMA] < cpus[CPU]) {
		t.Fatalf("host CPU ordering wrong: %v", cpus)
	}
	// cxl should be well under a microsecond of host involvement.
	if cpus[CXL] > sim.Microsecond {
		t.Fatalf("cxl host CPU = %v", cpus[CXL])
	}
}

func TestPollutionOrdering(t *testing.T) {
	pl := platform(t)
	page := testPage(5)
	pl.Host.Store().Write(srcAddr, page)
	pols := map[Variant]int{}
	for _, v := range Variants() {
		pl.EP.ResetTiming()
		pols[v] = NewZswapBackend(v, pl).Store(page, srcAddr, 0, 0).PollutedLines
	}
	if !(pols[CXL] < pols[PCIeRDMA] && pols[PCIeRDMA] < pols[CPU] && pols[PCIeDMA] < pols[CPU]) {
		t.Fatalf("pollution ordering wrong: %v", pols)
	}
}

func TestDecompressDeliveryRatios(t *testing.T) {
	// §VII: the CXL device delivers a decompressed 4 KB page ~2.1× faster
	// than the BF-class device and ~1.6× faster than the host CPU.
	pl := platform(t)
	page := testPage(6)
	pl.Host.Store().Write(srcAddr, page)
	lat := func(v Variant) sim.Time {
		pl.EP.ResetTiming()
		pl.Host.ResetTiming()
		b := NewZswapBackend(v, pl)
		res := b.Store(page, srcAddr, 0, 0)
		poolAddr := phys.Addr(0xA00000)
		if v == CXL {
			poolAddr = mem.RegionDevice.Base + 0xA00000
		}
		b.PoolWrite(poolAddr, res.Comp)
		// Measure the load on idle hardware, as the paper measures each
		// offload in isolation.
		pl.EP.ResetTiming()
		pl.Host.ResetTiming()
		l := b.Load(poolAddr, len(res.Comp), srcAddr+2*phys.PageSize, 0)
		return l.Done
	}
	cpuT := lat(CPU)
	rdmaT := lat(PCIeRDMA)
	cxlT := lat(CXL)
	vsArm := stats.Ratio(float64(rdmaT), float64(cxlT))
	vsHost := stats.Ratio(float64(cpuT), float64(cxlT))
	// Our SNIC model is a BF-3 whose per-page delivery pays two full NIC
	// round trips; the paper's 2.1x is against the older BF-2, so we accept
	// a wider band while requiring the ordering and rough magnitude.
	if vsArm < 1.8 || vsArm > 4.2 {
		t.Errorf("cxl vs Arm decompress delivery = %.2fx (cxl=%v rdma=%v), paper: ~2.1x", vsArm, cxlT, rdmaT)
	}
	if vsHost < 1.1 || vsHost > 2.3 {
		t.Errorf("cxl vs host decompress delivery = %.2fx (cxl=%v cpu=%v), paper: ~1.6x", vsHost, cxlT, cpuT)
	}
}

func TestKsmBackends(t *testing.T) {
	pl := platform(t)
	pageA := testPage(7)
	pageB := bytes.Clone(pageA)
	pageC := testPage(8)
	pl.Host.Store().Write(srcAddr, pageA)
	names := map[Variant]string{
		CPU: "cpu-ksm", PCIeRDMA: "pcie-rdma-ksm", PCIeDMA: "pcie-dma-ksm", CXL: "cxl-ksm",
	}
	for _, v := range Variants() {
		pl.EP.ResetTiming()
		b := NewKsmBackend(v, pl)
		if b.Name() != names[v] {
			t.Errorf("%v name = %q", v, b.Name())
		}
		cs1 := b.Checksum(pageA, srcAddr, 0)
		cs2 := b.Checksum(pageB, srcAddr, cs1.Done)
		if cs1.Sum != cs2.Sum {
			t.Errorf("%v: checksum not content-deterministic", v)
		}
		eq := b.Compare(pageA, pageB, srcAddr, srcAddr+phys.PageSize, 0)
		if eq.FirstDiff != phys.PageSize {
			t.Errorf("%v: equal pages FirstDiff = %d", v, eq.FirstDiff)
		}
		neq := b.Compare(pageA, pageC, srcAddr, srcAddr+phys.PageSize, 0)
		if neq.FirstDiff >= phys.PageSize {
			t.Errorf("%v: different pages compared equal", v)
		}
		if cs1.Done <= 0 || eq.Done <= 0 {
			t.Errorf("%v: zero-latency data plane", v)
		}
	}
}

func TestKsmHostCPUOrdering(t *testing.T) {
	pl := platform(t)
	page := testPage(9)
	pl.Host.Store().Write(srcAddr, page)
	cpus := map[Variant]sim.Time{}
	for _, v := range Variants() {
		pl.EP.ResetTiming()
		b := NewKsmBackend(v, pl)
		r := b.Checksum(page, srcAddr, 0)
		c := b.Compare(page, page, srcAddr, srcAddr, r.Done)
		cpus[v] = r.HostCPU + c.HostCPU
	}
	if !(cpus[CXL] < cpus[PCIeRDMA] && cpus[CXL] < cpus[PCIeDMA] && cpus[PCIeRDMA] < cpus[CPU]) {
		t.Fatalf("ksm host CPU ordering wrong: %v", cpus)
	}
}

func TestCXLKsmEarlyOutCheaperTransfers(t *testing.T) {
	pl := platform(t)
	a := testPage(10)
	b := bytes.Clone(a)
	b[3] = a[3] + 1 // differ at byte 3
	bk := NewKsmBackend(CXL, pl)
	early := bk.Compare(a, b, srcAddr, srcAddr+phys.PageSize, 0)
	pl.Host.ResetTiming()
	full := bk.Compare(a, a, srcAddr, srcAddr+phys.PageSize, 0)
	if early.Done >= full.Done {
		t.Fatalf("early-out compare (%v) should beat full compare (%v)", early.Done, full.Done)
	}
}

func TestZswapIntegrationWithCXLBackend(t *testing.T) {
	// Full stack: zswap + cxl backend + device-memory pool.
	pl := platform(t)
	backing := kernel.NewBackingSwap(20*sim.Microsecond, 25*sim.Microsecond)
	z := zswap.MustNew(zswap.Config{
		MaxPoolPercent: 50,
		TotalRAMPages:  1000,
		PoolBase:       mem.RegionDevice.Base + 1<<24,
		PoolPages:      64,
	}, NewZswapBackend(CXL, pl), backing)
	page := testPage(11)
	pl.Host.Store().Write(srcAddr, page)
	done, _ := z.StorePage(5, page, 0)
	got, _, _ := z.LoadPage(5, done)
	if !bytes.Equal(got, page) {
		t.Fatal("cxl zswap round trip failed")
	}
	// The compressed bytes really lived in device memory.
	if z.Stats().Stores != 1 {
		t.Fatal("store not pooled")
	}
}

func TestDoorbellCosts(t *testing.T) {
	pl := platform(t)
	at, hostCPU := pl.doorbell(0)
	if hostCPU <= 0 || hostCPU > 200*sim.Nanosecond {
		t.Fatalf("doorbell host cost = %v; should be a handful of nt-st", hostCPU)
	}
	if at <= hostCPU {
		t.Fatal("device pickup must include link + polling delay")
	}
	// Far cheaper than an RDMA post + interrupt.
	p := pl.P
	if hostCPU >= p.PCIe.RDMAPost {
		t.Fatal("doorbell should cost less host CPU than a verb post")
	}
}
