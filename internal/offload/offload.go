// Package offload implements the kernel-feature acceleration backends the
// paper compares (§VI–VII): for both zswap and ksm, the data-plane
// functions can run on the host CPU (cpu-*), on a BlueField-3-class SNIC
// over RDMA (pcie-rdma-*), on the FPGA over PCIe DMA (pcie-dma-*), or on
// the CXL Type-2 device (cxl-*) using the Fig. 7 workflow: nt-st doorbells
// into a shared device-memory mailbox, D2H NC-read page pulls pipelined
// with the accelerator IPs, D2D NC-writes into a device-memory zpool, and
// NC-P pushes of results straight into host LLC.
package offload

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/pcie"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Variant selects where the data-plane functions execute.
type Variant uint8

// Backend variants, in the paper's naming.
const (
	CPU Variant = iota
	PCIeRDMA
	PCIeDMA
	CXL
)

// String names the variant with the paper's prefixes.
func (v Variant) String() string {
	switch v {
	case CPU:
		return "cpu"
	case PCIeRDMA:
		return "pcie-rdma"
	case PCIeDMA:
		return "pcie-dma"
	case CXL:
		return "cxl"
	default:
		return fmt.Sprintf("Variant(%d)", uint8(v))
	}
}

// Variants lists all four in presentation order.
func Variants() []Variant { return []Variant{CPU, PCIeRDMA, PCIeDMA, CXL} }

// Platform bundles the hardware a backend runs on.
type Platform struct {
	P     *timing.Params
	Host  *host.Host
	Dev   *device.Device
	Accel *device.Accel
	EP    *pcie.Endpoint
	// MailboxAddr is the shared doorbell region in device memory (Fig. 7
	// step 1).
	MailboxAddr phys.Addr
}

// NewPlatform wires a platform over an existing host+device pair.
func NewPlatform(h *host.Host) *Platform {
	if h.Dev == nil {
		panic("offload: host has no attached device")
	}
	return &Platform{
		P:           h.Params(),
		Host:        h,
		Dev:         h.Dev,
		Accel:       device.NewAccel(h.Params()),
		EP:          pcie.NewEndpoint(h.Params()),
		MailboxAddr: mem.RegionDevice.Base, // first lines of device memory
	}
}

// doorbell models Fig. 7 step ①+②: the host nt-sts the source/destination
// addresses into the shared device-memory mailbox (cheap, cache-bypassing),
// and the device observes them through its D2D CS-read polling loop.
// It returns when the device has the command, and the host-CPU time spent.
func (pl *Platform) doorbell(now sim.Time) (deviceHas sim.Time, hostCPU sim.Time) {
	p := pl.P
	// Two 64-byte mailbox lines (addresses + opcode) posted with nt-st.
	hostCPU = 2*p.Host.NTStoreEgressGap + p.Host.IssueGap
	arrive := now + hostCPU + p.CXL.OneWay + p.CXL.MemProc
	// Expected polling delay: half the poll gap, then a D2D CS-read of the
	// mailbox line (DMC is kept warm by the polling loop; the fresh write
	// invalidated it, so the device re-reads device memory).
	poll := p.Device.DoorbellPollGap/2 + p.Device.LSUIssue + p.Device.DCOHLookup +
		p.Device.DevMemCtrl + p.DRAM.DDR4Read
	return arrive + poll, hostCPU
}

// resultPoll models Fig. 7 step ⑥: the device NC-Ps the result into host
// LLC and the woken host reads it at LLC-hit latency.
func (pl *Platform) resultPoll() (latency, hostCPU sim.Time) {
	p := pl.P
	c := p.Host.LocalLookup + p.Host.LLCHit
	return c, c
}
