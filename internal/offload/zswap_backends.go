package offload

import (
	"fmt"

	"repro/internal/cxl"
	"repro/internal/lzc"
	"repro/internal/pcie"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/zswap"
)

// NewZswapBackend returns the zswap data-plane backend for the variant.
func NewZswapBackend(v Variant, pl *Platform) zswap.Backend {
	switch v {
	case CPU:
		return &cpuZswap{pl: pl}
	case PCIeRDMA:
		return &rdmaZswap{pl: pl}
	case PCIeDMA:
		return &dmaZswap{pl: pl}
	case CXL:
		return &cxlZswap{pl: pl}
	default:
		panic(fmt.Sprintf("offload: unknown variant %v", v))
	}
}

// ---------- cpu-zswap ----------

// cpuZswap runs compression on the reclaiming CPU itself — the kernel's
// stock zswap. Every cycle and every cache line it touches is stolen from
// co-running applications.
type cpuZswap struct{ pl *Platform }

func (b *cpuZswap) Name() string             { return "cpu-zswap" }
func (b *cpuZswap) PoolInDeviceMemory() bool { return false }

func (b *cpuZswap) Store(page []byte, src, dst phys.Addr, now sim.Time) zswap.StoreResult {
	p := b.pl.P
	comp := lzc.Compress(nil, page)
	cost := p.SW.HostCompress4K
	return zswap.StoreResult{
		Comp:    comp,
		Done:    now + cost,
		HostCPU: cost,
		Breakdown: zswap.Breakdown{
			Compute: cost,
			Total:   cost,
		},
		// Source page + compressed destination stream through the cache.
		PollutedLines: phys.LinesPerPage + len(comp)/phys.LineSize,
	}
}

func (b *cpuZswap) Load(src phys.Addr, compLen int, dst phys.Addr, now sim.Time) zswap.LoadResult {
	p := b.pl.P
	page := b.decompress(src, compLen)
	cost := p.SW.HostDecompress4K
	return zswap.LoadResult{
		Page:          page,
		Done:          now + cost,
		HostCPU:       cost,
		PollutedLines: phys.LinesPerPage + compLen/phys.LineSize,
	}
}

func (b *cpuZswap) PoolWrite(addr phys.Addr, data []byte) { b.pl.Host.Store().Write(addr, data) }
func (b *cpuZswap) PoolRead(addr phys.Addr, dst []byte)   { b.pl.Host.Store().Read(addr, dst) }

func (b *cpuZswap) decompress(src phys.Addr, compLen int) []byte {
	comp := make([]byte, compLen)
	b.PoolRead(src, comp)
	page := make([]byte, phys.PageSize)
	if _, err := lzc.Decompress(page, comp); err != nil {
		panic(fmt.Sprintf("offload: zpool corruption at %v: %v", src, err))
	}
	return page
}

// ---------- pcie-rdma-zswap (STYX-style, BF-3) ----------

// rdmaZswap offloads to the SNIC's Arm cores: the device RDMA-reads the
// page, compresses in Arm software, RDMA-writes the result back to a host-
// memory zpool, and interrupts the host (§VI, [32] reimplemented on BF-3).
type rdmaZswap struct{ pl *Platform }

func (b *rdmaZswap) Name() string             { return "pcie-rdma-zswap" }
func (b *rdmaZswap) PoolInDeviceMemory() bool { return false }

func (b *rdmaZswap) Store(page []byte, src, dst phys.Addr, now sim.Time) zswap.StoreResult {
	p := b.pl.P
	comp := lzc.Compress(nil, page)
	// Host posts the work-queue entry.
	post := p.PCIe.RDMAPost
	t := now + post
	// ② device-initiated RDMA read of the page.
	in := b.pl.EP.RDMATransfer(phys.PageSize, t, pcie.D2H)
	// ④ Arm compression.
	compute := p.SW.ArmCompress4K
	// ⑤ RDMA write of the compressed image into the host zpool — chained by
	// the Arm software already holding the context (no second WQE wrapper).
	out := b.pl.EP.RDMAFollowOn(len(comp), in.Done+compute)
	// Completion interrupt on the host.
	done := out.Done + p.PCIe.InterruptCost
	return zswap.StoreResult{
		Comp:    comp,
		Done:    done,
		HostCPU: post + p.PCIe.InterruptCost,
		Breakdown: zswap.Breakdown{
			TransferIn: in.Done - t,
			Compute:    compute,
			StoreOut:   out.Done - (in.Done + compute),
			Total:      out.Done - t,
		},
		// DDIO deposits the compressed image into host LLC.
		PollutedLines: len(comp) / phys.LineSize,
	}
}

func (b *rdmaZswap) Load(src phys.Addr, compLen int, dst phys.Addr, now sim.Time) zswap.LoadResult {
	p := b.pl.P
	page := b.decompress(src, compLen)
	// The faulting process posts the WQE and then polls for completion —
	// the synchronous fault path cannot afford an interrupt round trip.
	t := now + p.PCIe.RDMAPost
	in := b.pl.EP.RDMATransfer(compLen, t, pcie.D2H)
	out := b.pl.EP.RDMAFollowOn(phys.PageSize, in.Done+p.SW.ArmDecompress4K)
	poll := p.PCIe.RDMAPost // completion-queue polling cost
	done := out.Done + poll
	return zswap.LoadResult{
		Page:          page,
		Done:          done,
		HostCPU:       p.PCIe.RDMAPost + poll,
		PollutedLines: phys.LinesPerPage, // DDIO writes the whole page into LLC
	}
}

func (b *rdmaZswap) PoolWrite(addr phys.Addr, data []byte) { b.pl.Host.Store().Write(addr, data) }
func (b *rdmaZswap) PoolRead(addr phys.Addr, dst []byte)   { b.pl.Host.Store().Read(addr, dst) }

func (b *rdmaZswap) decompress(src phys.Addr, compLen int) []byte {
	comp := make([]byte, compLen)
	b.PoolRead(src, comp)
	page := make([]byte, phys.PageSize)
	if _, err := lzc.Decompress(page, comp); err != nil {
		panic(fmt.Sprintf("offload: zpool corruption at %v: %v", src, err))
	}
	return page
}

// ---------- pcie-dma-zswap (Agilex as a PCIe device) ----------

// dmaZswap offloads to the FPGA compression IP over plain PCIe DMA — the
// paper emulates this configuration by rate-matching CXL transfers to the
// measured PCIe-DMA latencies (§VII methodology); we model the DMA engine
// directly.
type dmaZswap struct{ pl *Platform }

func (b *dmaZswap) Name() string             { return "pcie-dma-zswap" }
func (b *dmaZswap) PoolInDeviceMemory() bool { return false }

func (b *dmaZswap) Store(page []byte, src, dst phys.Addr, now sim.Time) zswap.StoreResult {
	p := b.pl.P
	comp := lzc.Compress(nil, page)
	// ② DMA the page into the device.
	in := b.pl.EP.DMATransfer(phys.PageSize, now, false)
	// ④ FPGA compression IP.
	compute := p.Device.CompressStartup + timing.Streaming(phys.PageSize, p.Device.CompressBytesPerSec)
	// ⑤ DMA the compressed image back to the host zpool.
	out := b.pl.EP.DMATransfer(len(comp), in.Done+compute, false)
	done := out.Done + p.PCIe.InterruptCost
	return zswap.StoreResult{
		Comp:    comp,
		Done:    done,
		HostCPU: in.HostCPU + out.HostCPU + p.PCIe.InterruptCost + p.PCIe.DMAStackCost,
		Breakdown: zswap.Breakdown{
			TransferIn: in.Done - now,
			Compute:    compute,
			StoreOut:   out.Done - (in.Done + compute),
			Total:      out.Done - now,
		},
		PollutedLines: len(comp) / phys.LineSize,
	}
}

func (b *dmaZswap) Load(src phys.Addr, compLen int, dst phys.Addr, now sim.Time) zswap.LoadResult {
	p := b.pl.P
	page := b.decompress(src, compLen)
	in := b.pl.EP.DMATransfer(compLen, now, false)
	compute := p.Device.CompressStartup + timing.Streaming(phys.PageSize, p.Device.DecompressBytesPerSec)
	out := b.pl.EP.DMATransfer(phys.PageSize, in.Done+compute, false)
	done := out.Done + p.PCIe.InterruptCost
	return zswap.LoadResult{
		Page:          page,
		Done:          done,
		HostCPU:       in.HostCPU + out.HostCPU + p.PCIe.InterruptCost + p.PCIe.DMAStackCost,
		PollutedLines: phys.LinesPerPage,
	}
}

func (b *dmaZswap) PoolWrite(addr phys.Addr, data []byte) { b.pl.Host.Store().Write(addr, data) }
func (b *dmaZswap) PoolRead(addr phys.Addr, dst []byte)   { b.pl.Host.Store().Read(addr, dst) }

func (b *dmaZswap) decompress(src phys.Addr, compLen int) []byte {
	comp := make([]byte, compLen)
	b.PoolRead(src, comp)
	page := make([]byte, phys.PageSize)
	if _, err := lzc.Decompress(page, comp); err != nil {
		panic(fmt.Sprintf("offload: zpool corruption at %v: %v", src, err))
	}
	return page
}

// ---------- cxl-zswap (Fig. 7) ----------

// cxlZswap is the paper's contribution: doorbell by nt-st, D2H NC-read page
// pull pipelined with the compression IP, D2D NC-write into a zpool living
// in device memory, and an NC-P result push — no DMA setup, no interrupts,
// near-zero host-CPU involvement.
type cxlZswap struct{ pl *Platform }

func (b *cxlZswap) Name() string             { return "cxl-zswap" }
func (b *cxlZswap) PoolInDeviceMemory() bool { return true }

// zpoolScratch is a representative device-memory region used to model the
// timing of pool writes (the functional deposit goes to the allocator's
// chosen address via PoolWrite).
func (b *cxlZswap) zpoolScratch() phys.Addr { return b.pl.MailboxAddr + 1<<20 }

func (b *cxlZswap) Store(page []byte, src, dst phys.Addr, now sim.Time) zswap.StoreResult {
	p := b.pl.P
	comp := lzc.Compress(nil, page)

	// ① host doorbell, ② device picks the command up.
	cmdAt, hostCPU := b.pl.doorbell(now)

	// ②..④ pipelined: the D2H NC-read stream feeds the streaming
	// compression IP (§VI-A); completion is bounded by the slower of the
	// two, since CXL accesses are cache-line granular and the IP streams.
	readDone := b.pl.Dev.ReadHostBlock(cxl.NCRead, src, phys.PageSize, nil, cmdAt)
	compStream := cmdAt + p.Device.CompressStartup +
		timing.Streaming(phys.PageSize, p.Device.CompressBytesPerSec)
	stageDone := max(readDone, compStream)

	// ⑤ the tail of the compressed image is NC-written into the
	// device-memory zpool; all but the last chunk overlapped with ④.
	tail := min(len(comp), 512)
	storeDone := b.pl.Dev.WriteDevBlock(cxl.NCWrite, b.zpoolScratch(), nil, tail, stageDone)

	// ⑥ result (compressed size) NC-P'd to host LLC; the woken kswapd
	// reads it at LLC-hit latency.
	res := b.pl.Dev.D2H(cxl.NCP, src, nil, storeDone)
	pollLat, pollCPU := b.pl.resultPoll()
	done := res.Done + pollLat
	hostCPU += pollCPU

	return zswap.StoreResult{
		Comp:    comp,
		Done:    done,
		HostCPU: hostCPU,
		Breakdown: zswap.Breakdown{
			Total:     done - now,
			Pipelined: true,
		},
		// NC-read does not allocate in host caches; only the one result
		// line lands in LLC.
		PollutedLines: 1,
	}
}

func (b *cxlZswap) Load(src phys.Addr, compLen int, dst phys.Addr, now sim.Time) zswap.LoadResult {
	p := b.pl.P
	page := b.decompress(src, compLen)

	cmdAt, hostCPU := b.pl.doorbell(now)
	// ② D2D CS-read of the compressed image from the zpool, pipelined with
	// ④ the decompression IP.
	readDone := b.pl.Dev.ReadDevBlock(cxl.CSRead, src, compLen, nil, cmdAt)
	decompStream := cmdAt + p.Device.CompressStartup +
		timing.Streaming(phys.PageSize, p.Device.DecompressBytesPerSec)
	stageDone := max(readDone, decompStream)
	// ⑤ NC-P the decompressed page into host LLC (Insight 4); the body of
	// the push overlapped with decompression, so only the last line's trip
	// remains on the critical path.
	pushDone := b.pl.Dev.D2H(cxl.NCP, dst, nil, stageDone).Done
	pollLat, pollCPU := b.pl.resultPoll()
	done := pushDone + pollLat
	hostCPU += pollCPU

	return zswap.LoadResult{
		Page:    page,
		Done:    done,
		HostCPU: hostCPU,
		// The pushed page occupies LLC, but those are exactly the lines the
		// faulting application is about to read.
		PollutedLines: phys.LinesPerPage / 4,
	}
}

func (b *cxlZswap) PoolWrite(addr phys.Addr, data []byte) { b.pl.Dev.WriteDevMemDirect(addr, data) }
func (b *cxlZswap) PoolRead(addr phys.Addr, dst []byte)   { b.pl.Dev.ReadDevMemDirect(addr, dst) }

func (b *cxlZswap) decompress(src phys.Addr, compLen int) []byte {
	comp := make([]byte, compLen)
	b.PoolRead(src, comp)
	page := make([]byte, phys.PageSize)
	if _, err := lzc.Decompress(page, comp); err != nil {
		panic(fmt.Sprintf("offload: device zpool corruption at %v: %v", src, err))
	}
	return page
}
