package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func open(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, MaxBytes: maxBytes, KeyVersion: "v1"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// TestPutGetRoundTrip: an entry survives a store round trip, including
// status and content type, and a fresh Store over the same directory (a
// restart, or a second replica) sees it.
func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 1<<20)
	e := Entry{Key: "v1/section|fig3|reps=25|seed=7|format=text",
		Body: []byte("rendered section bytes\n"), ContentType: "text/plain; charset=utf-8", Status: 200}
	if err := s.Put(e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(e.Key)
	if !ok {
		t.Fatal("Get missed a just-written entry")
	}
	if got.Key != e.Key || got.ContentType != e.ContentType || got.Status != e.Status ||
		!bytes.Equal(got.Body, e.Body) {
		t.Fatalf("round trip mangled the entry: %+v", got)
	}

	// Durability across process boundaries: reopen and read again.
	s2 := open(t, dir, 1<<20)
	if st := s2.Snapshot(); st.Entries != 1 || st.Bytes == 0 {
		t.Fatalf("reopened store did not take stock: %+v", st)
	}
	got2, ok := s2.Get(e.Key)
	if !ok || !bytes.Equal(got2.Body, e.Body) {
		t.Fatal("entry did not survive reopen")
	}

	if _, ok := s.Get("v1/section|fig3|reps=26|seed=7|format=text"); ok {
		t.Fatal("Get hit for a never-written key")
	}
	st := s.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestSameKeyOverwriteIsIdempotent: the determinism contract makes a
// same-key Put byte-identical; the store must not double-count it.
func TestSameKeyOverwriteIsIdempotent(t *testing.T) {
	s := open(t, t.TempDir(), 1<<20)
	e := Entry{Key: "k", Body: []byte("same bytes"), ContentType: "text/plain", Status: 200}
	for i := 0; i < 3; i++ {
		if err := s.Put(e); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	st := s.Snapshot()
	if st.Entries != 1 {
		t.Fatalf("entries = %d after re-puts, want 1", st.Entries)
	}
	single := int64(len(encodeEntry(e)))
	if st.Bytes != single {
		t.Fatalf("bytes = %d after re-puts, want %d", st.Bytes, single)
	}
}

// TestCorruptEntryIsDroppedNotServed: a flipped bit fails the checksum;
// the read reports a miss, counts the corruption, and removes the file so
// the next Put can heal the slot.
func TestCorruptEntryIsDroppedNotServed(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 1<<20)
	e := Entry{Key: "victim", Body: []byte("precious bytes"), ContentType: "text/plain", Status: 200}
	if err := s.Put(e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	p := s.path(e.Key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("read entry file: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatalf("corrupt entry file: %v", err)
	}
	if _, ok := s.Get(e.Key); ok {
		t.Fatal("corrupt entry was served")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("corrupt entry file was not removed")
	}
	if st := s.Snapshot(); st.Corrupt != 1 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	// Truncation (a torn write from a crashed replica) is handled the same.
	if err := s.Put(e); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if err := os.WriteFile(p, data[:10], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, ok := s.Get(e.Key); ok {
		t.Fatal("truncated entry was served")
	}
}

// TestGCEvictsLeastRecentlyAccessed: pushing the store over budget evicts
// the coldest entries (oldest mtime) first; a recently read entry
// survives entries written before it.
func TestGCEvictsLeastRecentlyAccessed(t *testing.T) {
	s := open(t, t.TempDir(), 3000)
	body := func(i int) Entry {
		return Entry{Key: strings.Repeat("k", 8) + string(rune('a'+i)),
			Body: bytes.Repeat([]byte{byte(i)}, 900), ContentType: "b", Status: 200}
	}
	// Three entries fit (about 2.8 KB); backdate them so recency is
	// unambiguous even on filesystems with coarse timestamps.
	for i := 0; i < 3; i++ {
		if err := s.Put(body(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(s.path(body(i).Key), old, old); err != nil {
			t.Fatalf("backdate %d: %v", i, err)
		}
	}
	// Read entry 0 — the oldest-written — to refresh its recency.
	if _, ok := s.Get(body(0).Key); !ok {
		t.Fatal("warm read missed")
	}
	// A fourth entry overflows the budget; GC must evict 1 (now coldest).
	if err := s.Put(body(3)); err != nil {
		t.Fatalf("Put 3: %v", err)
	}
	st := s.Snapshot()
	if st.Evictions == 0 {
		t.Fatalf("no evictions despite overflow: %+v", st)
	}
	if st.Bytes > 3000 {
		t.Fatalf("store over budget after GC: %+v", st)
	}
	if _, ok := s.Get(body(0).Key); !ok {
		t.Fatal("recently read entry was evicted before colder ones")
	}
	if _, ok := s.Get(body(1).Key); ok {
		t.Fatal("coldest entry survived GC")
	}
}

// TestVersionedLayoutNeverAliases: stores opened under different key
// versions see disjoint entry sets even for identical keys.
func TestVersionedLayoutNeverAliases(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Config{Dir: dir, MaxBytes: 1 << 20, KeyVersion: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(Entry{Key: "k", Body: []byte("v1 bytes"), ContentType: "t", Status: 200}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir, MaxBytes: 1 << 20, KeyVersion: "v2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("k"); ok {
		t.Fatal("v2 store served a v1 entry")
	}
	// The layout is physically separate: distinct subdirectories.
	names, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(names) != 2 {
		t.Fatalf("expected 2 versioned subdirectories, got %v", names)
	}
}

// TestOversizedEntryIgnored: an entry larger than the whole store must not
// wipe every other entry just to fail anyway.
func TestOversizedEntryIgnored(t *testing.T) {
	s := open(t, t.TempDir(), 1024)
	small := Entry{Key: "small", Body: []byte("x"), ContentType: "t", Status: 200}
	if err := s.Put(small); err != nil {
		t.Fatal(err)
	}
	big := Entry{Key: "big", Body: bytes.Repeat([]byte{1}, 4096), ContentType: "t", Status: 200}
	if err := s.Put(big); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("big"); ok {
		t.Fatal("oversized entry was stored")
	}
	if _, ok := s.Get("small"); !ok {
		t.Fatal("small entry lost to an oversized put")
	}
}
