// Package store is the durable half of the serving layer's result cache:
// a content-addressed on-disk store keyed by the same canonical request
// keys (experiments.SectionKey / ReportKey / the measure key) that key the
// in-memory LRU. The runner's determinism guarantee — byte-identical
// rendered output per (config, seed) — is what makes a durable cache
// sound: a stored body never goes stale, so the only reasons to drop an
// entry are capacity and corruption.
//
// Properties:
//
//   - atomic writes: entries are written to a temp file in the target
//     directory and renamed into place, so readers (including other
//     replicas sharing the directory) never observe a torn entry;
//   - verified reads: every entry carries an xxhash of its payload and its
//     full key; a checksum or key mismatch (bit rot, hash collision,
//     truncated write from a crashed replica) is treated as a miss and the
//     file is removed;
//   - versioned layout: entries live under <dir>/<keyVersion>-f<format>/,
//     so a canonical-key schema bump or an entry-format change lands in a
//     fresh directory and can never alias stale bytes;
//   - bounded size: when resident bytes exceed the configured bound, a GC
//     pass evicts entries in least-recently-accessed order (reads bump the
//     file mtime, which stands in for atime — portable across noatime
//     mounts) until the store is back under budget.
//
// Multiple processes may point at one directory: writes are atomic and
// reads verify, so the worst cross-replica interference is a GC in one
// process turning another's read into a miss.
package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/xxhash"
)

// formatVersion is the on-disk entry layout version; it joins the
// directory name so a layout change never parses old files.
const formatVersion = 1

// magic prefixes every entry file.
var magic = [4]byte{'C', 'X', 'R', 'S'}

// headerSize is the fixed-length prelude before the variable sections:
// magic(4) keyLen(4) ctypeLen(4) status(4) bodyLen(8) payloadHash(8).
const headerSize = 4 + 4 + 4 + 4 + 8 + 8

// Config shapes a Store.
type Config struct {
	// Dir is the store root. Created if absent.
	Dir string
	// MaxBytes bounds resident entry bytes (default 256 MiB). GC runs on
	// the writing path once the bound is exceeded.
	MaxBytes int64
	// KeyVersion is the canonical cache-key schema version
	// (experiments.CacheKeyVersion); it becomes a path component.
	KeyVersion string
}

// Entry is one stored response.
type Entry struct {
	Key         string
	Body        []byte
	ContentType string
	Status      int
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Corrupt   uint64 `json:"corrupt"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// Store is the handle. Safe for concurrent use.
type Store struct {
	dir      string // <root>/<keyVersion>-f<formatVersion>
	maxBytes int64

	mu      sync.Mutex
	bytes   int64
	entries int
	stats   Stats
}

// Open prepares the versioned store directory and takes stock of any
// entries a previous process (or a sibling replica) left behind.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: Dir is required")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 20
	}
	if cfg.KeyVersion == "" {
		return nil, fmt.Errorf("store: KeyVersion is required")
	}
	s := &Store{
		dir:      filepath.Join(cfg.Dir, fmt.Sprintf("%s-f%d", cfg.KeyVersion, formatVersion)),
		maxBytes: cfg.MaxBytes,
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	bytes, entries, _ := s.scan()
	s.bytes, s.entries = bytes, entries
	return s, nil
}

// path maps a canonical key to its entry file: two hex fan-out
// directories over the 64-bit key hash keep any one directory small.
func (s *Store) path(key string) string {
	h := fmt.Sprintf("%016x", xxhash.Sum64([]byte(key), 0))
	return filepath.Join(s.dir, h[:2], h+".res")
}

// Get returns the stored entry for key. A missing file is a plain miss; a
// corrupt or key-colliding file is removed and counted, then reported as a
// miss. A hit bumps the file's mtime, which is the recency clock GC evicts
// by.
func (s *Store) Get(key string) (Entry, bool) {
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return Entry{}, false
	}
	e, err := decodeEntry(data)
	if err != nil || e.Key != key {
		// err != nil: torn write or bit rot. e.Key != key: a 64-bit hash
		// collision — the slot belongs to another key. Either way the bytes
		// must not be served for this key; dropping the file on collision
		// lets the two keys alternate rather than one shadowing the other
		// forever.
		s.removeEntry(p, int64(len(data)))
		s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		return Entry{}, false
	}
	now := time.Now()
	_ = os.Chtimes(p, now, now)
	s.count(func(st *Stats) { st.Hits++ })
	return e, true
}

// Put stores an entry, overwriting any previous bytes at its key (the
// determinism contract makes a same-key overwrite byte-identical, so this
// is idempotent). An entry larger than the whole store is ignored. GC runs
// afterwards if the write pushed the store over budget.
func (s *Store) Put(e Entry) error {
	data := encodeEntry(e)
	if int64(len(data)) > s.maxBytes {
		return nil
	}
	p := s.path(e.Key)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var prev int64
	if fi, err := os.Stat(p); err == nil {
		prev = fi.Size()
	}
	f, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	} else {
		err = fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, p)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}

	s.mu.Lock()
	s.bytes += int64(len(data)) - prev
	if prev == 0 {
		s.entries++
	}
	s.stats.Puts++
	over := s.bytes > s.maxBytes
	s.mu.Unlock()
	if over {
		s.gc()
	}
	return nil
}

// gc walks the store, trusts the walk over the in-memory tally (a sibling
// replica may have added or removed entries), and evicts in oldest-mtime
// order until resident bytes fit the budget again.
func (s *Store) gc() {
	type fileInfo struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	var total int64
	_ = filepath.WalkDir(s.dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(p) != ".res" {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		files = append(files, fileInfo{p, fi.Size(), fi.ModTime()})
		total += fi.Size()
		return nil
	})
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path // stable order for equal stamps
	})
	evicted := 0
	for _, f := range files {
		if total <= s.maxBytes {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			evicted++
		}
	}
	s.mu.Lock()
	s.bytes = total
	s.entries = len(files) - evicted
	s.stats.Evictions += uint64(evicted)
	s.mu.Unlock()
}

// removeEntry drops a corrupt/colliding file and adjusts the tallies.
func (s *Store) removeEntry(p string, size int64) {
	if os.Remove(p) == nil {
		s.mu.Lock()
		s.bytes -= size
		if s.entries > 0 {
			s.entries--
		}
		s.mu.Unlock()
	}
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Snapshot returns the counters with current occupancy filled in.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.entries
	st.Bytes = s.bytes
	return st
}

// scan sizes the directory at Open.
func (s *Store) scan() (bytes int64, entries int, err error) {
	err = filepath.WalkDir(s.dir, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(p) != ".res" {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			bytes += fi.Size()
			entries++
		}
		return nil
	})
	return bytes, entries, err
}

// encodeEntry renders the on-disk layout. The payload hash covers key,
// content type and body so any flipped bit fails verification.
func encodeEntry(e Entry) []byte {
	buf := make([]byte, headerSize+len(e.Key)+len(e.ContentType)+len(e.Body))
	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(e.Key)))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(e.ContentType)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(e.Status))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(len(e.Body)))
	off := headerSize
	off += copy(buf[off:], e.Key)
	off += copy(buf[off:], e.ContentType)
	copy(buf[off:], e.Body)
	binary.LittleEndian.PutUint64(buf[24:32], xxhash.Sum64(buf[headerSize:], 0))
	return buf
}

// decodeEntry parses and verifies one entry file.
func decodeEntry(data []byte) (Entry, error) {
	if len(data) < headerSize || [4]byte(data[0:4]) != magic {
		return Entry{}, fmt.Errorf("store: bad entry header")
	}
	keyLen := int(binary.LittleEndian.Uint32(data[4:8]))
	ctypeLen := int(binary.LittleEndian.Uint32(data[8:12]))
	status := int(binary.LittleEndian.Uint32(data[12:16]))
	bodyLen := binary.LittleEndian.Uint64(data[16:24])
	sum := binary.LittleEndian.Uint64(data[24:32])
	want := headerSize + keyLen + ctypeLen + int(bodyLen)
	if keyLen < 0 || ctypeLen < 0 || bodyLen > uint64(len(data)) || len(data) != want {
		return Entry{}, fmt.Errorf("store: truncated entry")
	}
	if xxhash.Sum64(data[headerSize:], 0) != sum {
		return Entry{}, fmt.Errorf("store: checksum mismatch")
	}
	off := headerSize
	key := string(data[off : off+keyLen])
	off += keyLen
	ctype := string(data[off : off+ctypeLen])
	off += ctypeLen
	body := make([]byte, bodyLen)
	copy(body, data[off:])
	return Entry{Key: key, Body: body, ContentType: ctype, Status: status}, nil
}
