package check

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
)

// The failure-path tests corrupt platform state on purpose and require
// each invariant to fire with a message a debugging engineer can act on:
// naming the line, the caches involved, and the states seen. A checker
// that detects a violation but reports it uselessly fails these tests.

// wantViolation asserts err is non-nil and mentions every fragment.
func wantViolation(t *testing.T, err error, fragments ...string) {
	t.Helper()
	if err == nil {
		t.Fatal("corrupted state passed the checker")
	}
	for _, f := range fragments {
		if !strings.Contains(err.Error(), f) {
			t.Fatalf("violation message %q does not mention %q", err, f)
		}
	}
}

// TestHMCInclusionMessage: invariant 2 — an HMC line the home directory
// does not track. The message must name the line and both parties.
func TestHMCInclusionMessage(t *testing.T) {
	h := newPlatform(t)
	h.Dev.D2H(cxl.CSRead, 0x2040, nil, 0)
	h.Home().SnoopDevice(0x2040) // sever the directory entry
	wantViolation(t, Coherence(h, h.Dev), "HMC", "directory", "0x2040")
}

// TestHostLineDoubleOwnershipMessage: invariant 1 — LLC and HMC both hold
// write permission for one host line. The message must name the line and
// both states.
func TestHostLineDoubleOwnershipMessage(t *testing.T) {
	h := newPlatform(t)
	h.Dev.D2H(cxl.CORead, 0x3000, nil, 0) // HMC Exclusive, tracked
	h.LLC().Fill(0x3000, cache.Modified, nil)
	wantViolation(t, Coherence(h, h.Dev), "double-held", "0x3000", "HMC=E", "LLC=M")
}

// TestSharedNextToExclusiveHMC: invariant 1's subtler shape — even a
// merely-Shared LLC copy is illegal next to an Exclusive HMC copy.
func TestSharedNextToExclusiveHMC(t *testing.T) {
	h := newPlatform(t)
	h.Dev.D2H(cxl.CORead, 0x3040, nil, 0)
	h.LLC().Fill(0x3040, cache.Shared, nil)
	wantViolation(t, Coherence(h, h.Dev), "double-held", "0x3040")
}

// TestDMCDoubleOwnershipMessage: invariant 3 — a Modified DMC line next to
// a valid LLC copy in host-bias mode.
func TestDMCDoubleOwnershipMessage(t *testing.T) {
	h := newPlatform(t)
	devAddr := mem.RegionDevice.Base + 0x2000
	h.Dev.D2D(cxl.COWrite, devAddr, line(0xAB), 0)
	h.LLC().Fill(devAddr, cache.Shared, nil)
	wantViolation(t, Coherence(h, h.Dev), "device line", "DMC=M", "LLC=S")
}

// TestDataConsistencyMessage: a stale memory image must be reported with
// the address, the byte, and both values.
func TestDataConsistencyMessage(t *testing.T) {
	h := newPlatform(t)
	h.Store().WriteLine(0x5000, line(0x11))
	err := DataConsistency(h.Dev, map[phys.Addr][]byte{0x5000: line(0x22)})
	wantViolation(t, err, "0x5000", "0x11", "0x22")
}

// TestOracleVerifyMismatch: the data-value oracle must name the first
// mismatching byte and both values.
func TestOracleVerifyMismatch(t *testing.T) {
	o := NewOracle()
	addr := phys.Addr(0x6000)
	o.Write(addr, line(0x5A))

	good := line(0x5A)
	if err := o.Verify(addr, good); err != nil {
		t.Fatalf("matching line rejected: %v", err)
	}

	bad := line(0x5A)
	bad[17] = 0x99
	wantViolation(t, o.Verify(addr, bad), "byte 17", "0x99", "0x5a", "stale")

	wantViolation(t, o.Verify(addr, nil), "no data")
	wantViolation(t, o.Verify(addr, []byte{1, 2, 3}), "3 bytes")

	// Never-written lines are architecturally zero.
	if err := o.Verify(0x7000, make([]byte, phys.LineSize)); err != nil {
		t.Fatalf("zero default rejected: %v", err)
	}
	wantViolation(t, o.Verify(0x7000, line(1)), "0x00")
}

// TestMonitorTimeRegression: issue times must be non-decreasing and every
// completion at or after its issue.
func TestMonitorTimeRegression(t *testing.T) {
	h := newPlatform(t)
	m := NewMonitor(h, h.Dev)
	if err := m.Step(100*sim.Nanosecond, 150*sim.Nanosecond); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	wantViolation(t, m.Step(50*sim.Nanosecond, 60*sim.Nanosecond), "backwards")
	// Completion before issue on an otherwise advancing clock.
	m2 := NewMonitor(h, h.Dev)
	wantViolation(t, m2.Step(200*sim.Nanosecond, 199*sim.Nanosecond), "completed", "before")
}

// TestMonitorCounterRegression: a counter running backwards (simulated
// here with ResetStats behind the monitor's back) must be flagged.
func TestMonitorCounterRegression(t *testing.T) {
	h := newPlatform(t)
	core := h.Core(0)
	core.Access(cxl.Ld, 0x9000, nil, 0) // generate some LLC traffic
	core.Access(cxl.Ld, 0x9040, nil, 0)
	m := NewMonitor(h, h.Dev)
	core.Access(cxl.Ld, 0x9080, nil, sim.Microsecond)
	if err := m.Step(sim.Microsecond, 2*sim.Microsecond); err != nil {
		t.Fatalf("clean step rejected: %v", err)
	}
	h.LLC().ResetStats()
	wantViolation(t, m.Step(3*sim.Microsecond, 4*sim.Microsecond), "counters ran backwards", h.LLC().Name())
}

// TestMonitorAcceptsQuiescentSteps: steps with no traffic in between must
// not trip the monotonicity checks.
func TestMonitorAcceptsQuiescentSteps(t *testing.T) {
	h := newPlatform(t)
	m := NewMonitor(h, h.Dev)
	for i := 1; i <= 5; i++ {
		tm := sim.Time(i) * sim.Microsecond
		if err := m.Step(tm, tm); err != nil {
			t.Fatalf("quiescent step %d rejected: %v", i, err)
		}
	}
}
