package check

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Oracle is a shadow memory of architectural line contents: the bytes the
// platform is obliged to return for each line, regardless of where the
// caches currently keep them. Stimulus harnesses record every store into
// the oracle and validate every load against it — the data-value face of
// the paper's cross-validation methodology, strictly stronger than state
// checking alone (a stale copy with a legal MESI state still fails).
type Oracle struct {
	lines map[phys.Addr][]byte
}

// NewOracle returns an empty oracle; unknown lines are architecturally
// zero, matching mem.Store semantics.
func NewOracle() *Oracle {
	return &Oracle{lines: make(map[phys.Addr][]byte)}
}

// Write records the architectural content of the line containing addr.
func (o *Oracle) Write(addr phys.Addr, data []byte) {
	if len(data) != phys.LineSize {
		panic(fmt.Sprintf("check: oracle write of %d bytes", len(data)))
	}
	base := phys.LineAddr(addr)
	l, ok := o.lines[base]
	if !ok {
		l = make([]byte, phys.LineSize)
		o.lines[base] = l
	}
	copy(l, data)
}

// Copy records that dst now holds src's architectural content (a DSA copy
// or an offload data move).
func (o *Oracle) Copy(src, dst phys.Addr) {
	o.Write(dst, o.Expect(src))
}

// Expect returns the architectural content of the line containing addr
// (zero bytes for never-written lines).
func (o *Oracle) Expect(addr phys.Addr) []byte {
	if l, ok := o.lines[phys.LineAddr(addr)]; ok {
		return l
	}
	return make([]byte, phys.LineSize)
}

// Known reports whether the line was ever written through the oracle.
func (o *Oracle) Known(addr phys.Addr) bool {
	_, ok := o.lines[phys.LineAddr(addr)]
	return ok
}

// Lines returns the set of written line addresses.
func (o *Oracle) Lines() []phys.Addr {
	out := make([]phys.Addr, 0, len(o.lines))
	for a := range o.lines {
		out = append(out, a)
	}
	return out
}

// Verify checks a load result against the oracle. got must be the full
// 64-byte line; the error names the first mismatching byte.
func (o *Oracle) Verify(addr phys.Addr, got []byte) error {
	if got == nil {
		return fmt.Errorf("check: oracle: load of %v returned no data", phys.LineAddr(addr))
	}
	if len(got) != phys.LineSize {
		return fmt.Errorf("check: oracle: load of %v returned %d bytes", phys.LineAddr(addr), len(got))
	}
	want := o.Expect(addr)
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("check: oracle: %v byte %d = %#02x, want %#02x (stale or corrupted copy)",
				phys.LineAddr(addr), i, got[i], want[i])
		}
	}
	return nil
}

// Monitor tracks the cross-step sanity invariants of a stimulus run:
// simulated time must be monotonic (issue times non-decreasing, every
// completion at or after its issue), event counters must never run
// backwards, and cache occupancy must never exceed capacity. One Monitor
// watches one platform for the duration of a run.
type Monitor struct {
	h         *host.Host
	devs      []*device.Device
	last      sim.Time
	caches    []*cache.Cache
	prevCache []cache.Stats
	prevDev   []device.Stats
	prevHome  [3]uint64
}

// NewMonitor builds a monitor over a host and the DCOH slices attached to
// it (one slice for a plain device).
func NewMonitor(h *host.Host, devs ...*device.Device) *Monitor {
	m := &Monitor{h: h, devs: devs}
	m.caches = append(m.caches, h.LLC())
	for _, d := range devs {
		if d.HMC() != nil {
			m.caches = append(m.caches, d.HMC())
		}
		if d.DMC() != nil {
			m.caches = append(m.caches, d.DMC())
		}
	}
	m.prevCache = make([]cache.Stats, len(m.caches))
	for i, c := range m.caches {
		m.prevCache[i] = c.Stats()
	}
	m.prevDev = make([]device.Stats, len(devs))
	for i, d := range devs {
		m.prevDev[i] = d.Stats()
	}
	m.prevHome[0], m.prevHome[1], m.prevHome[2] = h.Home().Stats()
	return m
}

// Step validates one operation that issued at issue and completed at done,
// returning the first violated invariant or nil.
func (m *Monitor) Step(issue, done sim.Time) error {
	if issue < m.last {
		return fmt.Errorf("check: simulated time ran backwards: op issued at %v after an op issued at %v", issue, m.last)
	}
	if done < issue {
		return fmt.Errorf("check: op completed at %v before it issued at %v", done, issue)
	}
	m.last = issue
	return m.resources()
}

// resources validates occupancy bounds and counter monotonicity.
func (m *Monitor) resources() error {
	for i, c := range m.caches {
		if n, cap := c.CountValid(), c.Sets()*c.Ways(); n > cap {
			return fmt.Errorf("check: cache %s holds %d valid lines, capacity %d", c.Name(), n, cap)
		}
		cur, prev := c.Stats(), m.prevCache[i]
		if cur.Hits < prev.Hits || cur.Misses < prev.Misses || cur.Fills < prev.Fills ||
			cur.Evictions < prev.Evictions || cur.Writebacks < prev.Writebacks ||
			cur.Invalidations < prev.Invalidations {
			return fmt.Errorf("check: cache %s counters ran backwards: %+v -> %+v", c.Name(), prev, cur)
		}
		m.prevCache[i] = cur
	}
	for i, d := range m.devs {
		cur, prev := d.Stats(), m.prevDev[i]
		if cur.D2H < prev.D2H || cur.D2D < prev.D2D || cur.H2D < prev.H2D ||
			cur.HMCHits < prev.HMCHits || cur.DMCHits < prev.DMCHits ||
			cur.BiasFlips < prev.BiasFlips || cur.HMCWritebacks < prev.HMCWritebacks ||
			cur.DevMemReads < prev.DevMemReads || cur.DevWrites < prev.DevWrites {
			return fmt.Errorf("check: device counters ran backwards: %+v -> %+v", prev, cur)
		}
		m.prevDev[i] = cur
	}
	r, w, b := m.h.Home().Stats()
	if r < m.prevHome[0] || w < m.prevHome[1] || b < m.prevHome[2] {
		return fmt.Errorf("check: home-agent counters ran backwards: (%d,%d,%d) -> (%d,%d,%d)",
			m.prevHome[0], m.prevHome[1], m.prevHome[2], r, w, b)
	}
	m.prevHome[0], m.prevHome[1], m.prevHome[2] = r, w, b
	return nil
}
