package check

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

func newPlatform(t testing.TB) *host.Host {
	t.Helper()
	h := host.MustNew(timing.Default(), host.Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 4})
	if _, err := h.Attach(device.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	return h
}

func line(b byte) []byte {
	d := make([]byte, phys.LineSize)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestCleanSystemPasses(t *testing.T) {
	h := newPlatform(t)
	if err := Coherence(h, h.Dev); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsDoubleOwnership(t *testing.T) {
	h := newPlatform(t)
	// Manufacture an illegal state directly: LLC Modified while HMC holds
	// Exclusive for the same host line.
	h.Dev.D2H(cxl.CORead, 0x1000, nil, 0) // HMC Exclusive, tracked
	h.LLC().Fill(0x1000, cache.Modified, nil)
	if err := Coherence(h, h.Dev); err == nil {
		t.Fatal("double ownership not detected")
	}
}

func TestDetectsUntrackedHMCLine(t *testing.T) {
	h := newPlatform(t)
	h.Dev.D2H(cxl.CSRead, 0x2000, nil, 0)
	// Sever the directory entry behind the agent's back.
	h.Home().SnoopDevice(0x2000)
	if err := Coherence(h, h.Dev); err == nil {
		t.Fatal("untracked HMC line not detected")
	}
}

func TestDeviceBiasExemption(t *testing.T) {
	h := newPlatform(t)
	devAddr := mem.RegionDevice.Base + 0x1000
	region := phys.Range{Base: mem.RegionDevice.Base, Size: 1 << 20}
	h.Dev.EnterDeviceBias(region, 0)
	// Software-managed mode: a stale LLC copy next to a modified DMC line
	// is the programmer's problem, not an invariant violation (§IV-B).
	h.Dev.D2D(cxl.COWrite, devAddr, line(1), 0)
	h.LLC().Fill(devAddr, cache.Shared, nil)
	if err := Coherence(h, h.Dev); err != nil {
		t.Fatalf("device-bias region should be exempt: %v", err)
	}
	// Back in host-bias, the same shape is a violation.
	h.Dev.ExitDeviceBias(region)
	if err := Coherence(h, h.Dev); err == nil {
		t.Fatal("host-bias violation not detected")
	}
}

func TestDataConsistency(t *testing.T) {
	h := newPlatform(t)
	expect := map[phys.Addr][]byte{}
	for i := 0; i < 8; i++ {
		addr := phys.Addr(0x4000 + i*64)
		h.Store().WriteLine(addr, line(byte(0x30+i)))
		expect[addr] = line(byte(0x30 + i))
	}
	if err := DataConsistency(h.Dev, expect); err != nil {
		t.Fatal(err)
	}
	// A device CO-write changes a line; the expectation must follow it.
	h.Dev.D2H(cxl.COWrite, 0x4000, line(0x99), 0)
	expect[0x4000] = line(0x99)
	if err := DataConsistency(h.Dev, expect); err != nil {
		t.Fatal(err)
	}
}

// TestRandomStimulusInvariants fuzzes the platform with a soup of D2H, D2D
// and H2D operations over a small line pool and checks the global
// invariants plus full data consistency after every step. This is the
// mechanized version of the paper's cross-validation methodology.
func TestRandomStimulusInvariants(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h := newPlatform(t)
			core := h.Core(0)
			emu := h.NewEmuCore()
			_ = emu

			hostLines := make([]phys.Addr, 16)
			for i := range hostLines {
				hostLines[i] = phys.Addr(0x8000 + i*64)
			}
			devLines := make([]phys.Addr, 16)
			for i := range devLines {
				devLines[i] = mem.RegionDevice.Base + phys.Addr(0x8000+i*64)
			}
			// Shadow model: the latest bytes written per line.
			shadow := map[phys.Addr][]byte{}
			now := sim.Time(0)
			reqs := []cxl.D2HReq{cxl.NCP, cxl.NCRead, cxl.NCWrite, cxl.CORead, cxl.COWrite, cxl.CSRead}
			d2dReqs := []cxl.D2HReq{cxl.NCRead, cxl.NCWrite, cxl.CORead, cxl.COWrite, cxl.CSRead}

			for op := 0; op < 400; op++ {
				now += sim.Microsecond
				switch rng.Intn(4) {
				case 0: // D2H
					req := reqs[rng.Intn(len(reqs))]
					addr := hostLines[rng.Intn(len(hostLines))]
					var data []byte
					if req.IsWrite() {
						data = line(byte(rng.Intn(256)))
						shadow[addr] = data
					}
					res := h.Dev.D2H(req, addr, data, now)
					if req.IsRead() && shadow[addr] != nil && res.Data[0] != shadow[addr][0] {
						t.Fatalf("op %d: D2H %v read %#x, want %#x", op, req, res.Data[0], shadow[addr][0])
					}
				case 1: // D2D
					req := d2dReqs[rng.Intn(len(d2dReqs))]
					addr := devLines[rng.Intn(len(devLines))]
					var data []byte
					if req.IsWrite() {
						data = line(byte(rng.Intn(256)))
						shadow[addr] = data
					}
					res := h.Dev.D2D(req, addr, data, now)
					if req.IsRead() && shadow[addr] != nil && res.Data[0] != shadow[addr][0] {
						t.Fatalf("op %d: D2D %v read %#x, want %#x", op, req, res.Data[0], shadow[addr][0])
					}
				case 2: // host access to host memory
					addr := hostLines[rng.Intn(len(hostLines))]
					if rng.Intn(2) == 0 {
						data := line(byte(rng.Intn(256)))
						shadow[addr] = data
						core.Access(hostWriteOp(rng), addr, data, now)
					} else {
						res := core.Access(cxl.Ld, addr, nil, now)
						if shadow[addr] != nil && res.Data[0] != shadow[addr][0] {
							t.Fatalf("op %d: host ld read %#x, want %#x", op, res.Data[0], shadow[addr][0])
						}
					}
				case 3: // host access to device memory
					addr := devLines[rng.Intn(len(devLines))]
					if rng.Intn(2) == 0 {
						data := line(byte(rng.Intn(256)))
						shadow[addr] = data
						core.Access(hostWriteOp(rng), addr, data, now)
					} else {
						res := core.Access(cxl.Ld, addr, nil, now)
						if shadow[addr] != nil && res.Data[0] != shadow[addr][0] {
							t.Fatalf("op %d: host devmem ld read %#x, want %#x", op, res.Data[0], shadow[addr][0])
						}
					}
				}
				if err := Coherence(h, h.Dev); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
			}
			// Final sweep: the device must observe every line's latest bytes.
			hostExpect := map[phys.Addr][]byte{}
			for _, a := range hostLines {
				if shadow[a] != nil {
					hostExpect[a] = shadow[a]
				}
			}
			if err := DataConsistency(h.Dev, hostExpect); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func hostWriteOp(rng *rand.Rand) cxl.HostOp {
	if rng.Intn(2) == 0 {
		return cxl.St
	}
	return cxl.NtSt
}
