// Package check provides global coherence-invariant validation across the
// host LLC, the device HMC/DMC and the home agent's device directory. The
// paper's methodology "cross-validates the presence and absence of the
// cache-lines in HMC, DMC, and LLC" (§V); this package mechanizes that
// cross-validation so randomized stimulus tests can assert system-wide
// safety after every operation.
package check

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/phys"
)

// exclusive reports whether a state grants write permission.
func exclusive(s cache.State) bool {
	return s == cache.Modified || s == cache.Exclusive || s == cache.Owned
}

// Coherence validates the single-writer / tracked-inclusion invariants of
// the platform:
//
//  1. Host-memory lines: LLC and HMC never both hold write permission, and
//     an LLC copy alongside any HMC copy is only legal when both are
//     Shared (Table III's reachable states).
//  2. HMC inclusion: every valid HMC line is tracked by the home agent's
//     directory (the snoop filter may over-approximate but never
//     under-approximate).
//  3. Device-memory lines in host-bias mode: the DMC and the host LLC
//     never both hold write permission. Device-bias regions are exempt —
//     there, software owns coherence by design (§IV-B).
//
// It returns the first violation found, or nil.
func Coherence(h *host.Host, d *device.Device) error {
	if err := hmcInvariants(h, d); err != nil {
		return err
	}
	return dmcInvariants(h, d)
}

func hmcInvariants(h *host.Host, d *device.Device) error {
	if d.HMC() == nil {
		return nil
	}
	var err error
	d.HMC().VisitValid(func(l *cache.Line) {
		if err != nil {
			return
		}
		// Inclusion in the directory.
		if h.Home().DeviceHolds(l.Tag) == cache.Invalid {
			err = fmt.Errorf("check: HMC holds %v in %v but the home directory does not track it", l.Tag, l.State)
			return
		}
		llc := h.LLC().Peek(l.Tag)
		if !llc.Valid() {
			return
		}
		if exclusive(l.State) || exclusive(llc.State) {
			err = fmt.Errorf("check: host line %v double-held: HMC=%v LLC=%v", l.Tag, l.State, llc.State)
		}
	})
	return err
}

func dmcInvariants(h *host.Host, d *device.Device) error {
	if d.DMC() == nil {
		return nil
	}
	var err error
	d.DMC().VisitValid(func(l *cache.Line) {
		if err != nil {
			return
		}
		if d.BiasOf(l.Tag) == device.DeviceBias {
			return // software-managed coherence: exempt by design
		}
		llc := h.LLC().Peek(l.Tag)
		if !llc.Valid() {
			return
		}
		if exclusive(l.State) && (exclusive(llc.State) || llc.State == cache.Shared) {
			err = fmt.Errorf("check: device line %v double-held: DMC=%v LLC=%v", l.Tag, l.State, llc.State)
		}
	})
	return err
}

// DataConsistency verifies that a set of addresses reads back the expected
// bytes through the coherent D2H path — the strongest observable statement
// of correctness: whatever the caches did, the device sees the latest data.
func DataConsistency(d *device.Device, expect map[phys.Addr][]byte) error {
	for addr, want := range expect {
		res := d.D2H(cxl.NCRead, addr, nil, 0)
		if res.Data == nil {
			return fmt.Errorf("check: no data for %v", addr)
		}
		for i := range want {
			if res.Data[i] != want[i] {
				return fmt.Errorf("check: %v byte %d = %#x, want %#x", addr, i, res.Data[i], want[i])
			}
		}
	}
	return nil
}
