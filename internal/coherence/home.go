// Package coherence implements the host-side home agent of the model: the
// component that receives D2H CXL.cache requests from the device's DCOH,
// consults and updates host LLC state, tracks which lines the device cache
// (HMC) holds, and produces the cache-coherence outcomes of the paper's
// Table III.
//
// The home agent is shared by the true-CXL path and the UPI-emulated path;
// only the per-request host-side cost tables differ (timing.CXLParams vs
// timing.UPIParams).
package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

// HomeAgent owns one socket's LLC, memory and coherence directory.
type HomeAgent struct {
	p        *timing.Params
	llc      *cache.Cache
	store    *mem.Store
	channels *mem.Channels
	// dir tracks lines currently held by the device HMC (the host-side
	// snoop filter over CXL.cache). Key is the line address.
	dir map[phys.Addr]cache.State
	// stats
	d2hReads, d2hWrites, backInvalidations uint64

	// arena backs the line buffers handed to requesters. Returned data
	// stays valid until the next ResetArena (bump allocation).
	arena phys.LineArena
}

// NewHomeAgent builds a home agent over the given LLC, backing store and
// memory channels.
func NewHomeAgent(p *timing.Params, llc *cache.Cache, store *mem.Store, channels *mem.Channels) *HomeAgent {
	return &HomeAgent{
		p:        p,
		llc:      llc,
		store:    store,
		channels: channels,
		dir:      make(map[phys.Addr]cache.State),
	}
}

// LLC exposes the agent's last-level cache (for experiment state priming and
// cross-validation, mirroring the paper's CLDEMOTE/CLFLUSH methodology).
func (h *HomeAgent) LLC() *cache.Cache { return h.llc }

// Store exposes the backing memory.
func (h *HomeAgent) Store() *mem.Store { return h.store }

// Channels exposes the memory controllers.
func (h *HomeAgent) Channels() *mem.Channels { return h.channels }

// DeviceHolds reports the directory's view of the HMC state for a line
// (Invalid if untracked).
func (h *HomeAgent) DeviceHolds(addr phys.Addr) cache.State {
	if len(h.dir) == 0 {
		return cache.Invalid
	}
	return h.dir[phys.LineAddr(addr)]
}

// D2HResult describes the host-side outcome of a D2H request.
type D2HResult struct {
	// Done is when the host-side processing completes: for reads, when data
	// is ready to inject on the response path; for writes, when the request
	// is globally observed (posted).
	Done sim.Time
	// Data is the 64-byte line for reads (nil for timing-only stores or
	// writes).
	Data []byte
	// LLCHit reports whether the line was present in LLC on arrival.
	LLCHit bool
	// HMCState is the state the device should install in its HMC afterward
	// (Invalid for requests that do not allocate).
	HMCState cache.State
}

// D2H processes one D2H request arriving at the home agent at time
// `arrive`. data must be the 64-byte payload for writes (nil allowed in
// timing-only mode). The returned result implements Table III's LLC-side
// state transitions; the device applies the HMC-side transitions.
func (h *HomeAgent) D2H(req cxl.D2HReq, addr phys.Addr, data []byte, arrive sim.Time) D2HResult {
	addr = phys.LineAddr(addr)
	line := h.llc.Peek(addr)
	hit := line.Valid()
	base := arrive + h.p.CXL.HomeBase

	switch req {
	case cxl.NCRead:
		// RdCurr: return current data, change no state anywhere.
		h.d2hReads++
		if hit {
			return D2HResult{
				Done:   base + h.p.CXL.HostLLCRead + h.p.CXL.NCReadExtraHit,
				Data:   h.arena.Clone(line.Data),
				LLCHit: true,
			}
		}
		return D2HResult{
			Done:   base + h.p.CXL.HostDRAMRead + h.p.CXL.NCReadExtraMiss,
			Data:   h.readMem(addr),
			LLCHit: false,
		}

	case cxl.CSRead:
		// RdShared: like RdCurr but the line is allocated into HMC in
		// Shared; an LLC copy, if any, downgrades to Shared.
		h.d2hReads++
		h.dir[addr] = cache.Shared
		if hit {
			if line.State == cache.Exclusive || line.State == cache.Modified {
				// Losing write permission: a Modified line must reach memory
				// now, because a Shared victim is dropped silently on
				// eviction and the stale memory copy would become visible.
				if line.State == cache.Modified && line.Data != nil {
					h.store.WriteLine(addr, line.Data)
					h.channels.PostWrite(addr, base)
				}
				line.State = cache.Shared
			}
			return D2HResult{
				Done:     base + h.p.CXL.HostLLCRead + h.p.CXL.CSReadExtraHit,
				Data:     h.arena.Clone(line.Data),
				LLCHit:   true,
				HMCState: cache.Shared,
			}
		}
		return D2HResult{
			Done:     base + h.p.CXL.HostDRAMRead + h.p.CXL.CSReadExtraMiss,
			Data:     h.readMem(addr),
			LLCHit:   false,
			HMCState: cache.Shared,
		}

	case cxl.CORead:
		// RdOwn: invalidate every host copy, hand the device an exclusive
		// copy (Table III: LLC → Invalid, HMC → Exclusive; E or M follows
		// the original LLC state).
		h.d2hReads++
		st := cache.Exclusive
		var payload []byte
		if hit {
			if line.State == cache.Modified {
				st = cache.Modified
			}
			_, d, _ := h.llc.Invalidate(addr)
			payload = h.arena.Clone(d)
			if payload == nil {
				payload = h.readMem(addr)
			}
			h.dir[addr] = st
			return D2HResult{
				Done:     base + h.p.CXL.HostLLCRead + h.p.CXL.CSReadExtraHit,
				Data:     payload,
				LLCHit:   true,
				HMCState: st,
			}
		}
		h.dir[addr] = st
		return D2HResult{
			Done:     base + h.p.CXL.HostDRAMRead + h.p.CXL.CSReadExtraMiss,
			Data:     h.readMem(addr),
			LLCHit:   false,
			HMCState: st,
		}

	case cxl.COWrite:
		// Ownership grant for a full-line device write: invalidate host
		// copies; the line will live in HMC as Modified. No data moves to
		// the host now.
		h.d2hWrites++
		h.llc.Invalidate(addr)
		h.dir[addr] = cache.Modified
		cost := h.p.CXL.COWriteHostMiss
		if hit {
			cost = h.p.CXL.COWriteHostHit
		}
		return D2HResult{Done: base + cost, LLCHit: hit, HMCState: cache.Modified}

	case cxl.NCWrite:
		// WrInv: invalidate host copies and write memory directly
		// (Table III: HMC and LLC both Invalid).
		h.d2hWrites++
		h.llc.Invalidate(addr)
		delete(h.dir, addr)
		if data != nil {
			h.store.WriteLine(addr, data)
		}
		cost := h.p.CXL.NCWriteHostMiss
		if hit {
			cost = h.p.CXL.NCWriteHostHit
		}
		// The write is posted into the owning controller's write queue.
		admitted := h.channels.PostWrite(addr, base+cost)
		return D2HResult{Done: admitted, LLCHit: hit}

	case cxl.NCP:
		// ItoMWr push: deposit the line directly into host LLC as Modified
		// (Table III: LLC Modified, HMC Invalid). The evicted victim, if
		// dirty, is written back to memory.
		h.d2hWrites++
		delete(h.dir, addr)
		if v, evicted := h.llc.Fill(addr, cache.Modified, data); evicted && v.Dirty() {
			if v.Data != nil {
				h.store.WriteLine(v.Addr, v.Data)
			}
			h.channels.PostWrite(v.Addr, base)
		}
		return D2HResult{Done: base + h.p.CXL.NCPHostCost, LLCHit: hit}

	default:
		panic(fmt.Sprintf("coherence: unknown D2H request %v", req))
	}
}

// WritebackFromDevice accepts a dirty HMC victim line: the device evicted a
// Modified/Exclusive line it owned; host memory is updated and the
// directory entry dropped. Returns the posted completion time.
func (h *HomeAgent) WritebackFromDevice(addr phys.Addr, data []byte, arrive sim.Time) sim.Time {
	addr = phys.LineAddr(addr)
	delete(h.dir, addr)
	if data != nil {
		h.store.WriteLine(addr, data)
	}
	return h.channels.PostWrite(addr, arrive+h.p.CXL.HomeBase)
}

// DowngradeToShared records that the device downgraded its copy of addr to
// Shared (a CS-read hit on a previously exclusive HMC line), writing the
// modified data back to host memory. The directory keeps tracking the
// now-shared device copy. Returns the posted completion time.
func (h *HomeAgent) DowngradeToShared(addr phys.Addr, data []byte, arrive sim.Time) sim.Time {
	addr = phys.LineAddr(addr)
	h.dir[addr] = cache.Shared
	if data != nil {
		h.store.WriteLine(addr, data)
	}
	return h.channels.PostWrite(addr, arrive+h.p.CXL.HomeBase)
}

// SnoopDevice is the host-side bookkeeping when the host CPU accesses a
// line the directory says the device may hold: the HMC entry is recalled
// (back-invalidated). It returns true if the device held the line, along
// with the state it held. The caller (host core model) adds the snoop
// latency; the device model drops its HMC copy through the DevicePort.
func (h *HomeAgent) SnoopDevice(addr phys.Addr) (cache.State, bool) {
	if len(h.dir) == 0 { // no device-held lines: skip the map hash
		return cache.Invalid, false
	}
	addr = phys.LineAddr(addr)
	st, ok := h.dir[addr]
	if ok {
		delete(h.dir, addr)
		h.backInvalidations++
	}
	return st, ok
}

// Stats reports the agent's request counters.
func (h *HomeAgent) Stats() (d2hReads, d2hWrites, backInvals uint64) {
	return h.d2hReads, h.d2hWrites, h.backInvalidations
}

func (h *HomeAgent) readMem(addr phys.Addr) []byte {
	buf := h.arena.Line()
	h.store.ReadLine(addr, buf)
	return buf
}

// ResetArena rewinds the line-buffer arena; the host calls it from
// ResetTiming, where no buffer from the previous run is referenced.
func (h *HomeAgent) ResetArena() { h.arena.Reset() }
