package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

func newAgent(t *testing.T) *HomeAgent {
	t.Helper()
	p := timing.Default()
	llc := cache.MustNew("llc", 64<<10, 4)
	store := mem.NewStore("host")
	chs := mem.NewChannels("mc", 8, p.DRAM.WriteQueueEntries, p.DRAM.WriteDrainPerLine)
	return NewHomeAgent(p, llc, store, chs)
}

func line(b byte) []byte {
	d := make([]byte, phys.LineSize)
	for i := range d {
		d[i] = b
	}
	return d
}

const addr = phys.Addr(0x1000)

func TestNCReadNoStateChange(t *testing.T) {
	h := newAgent(t)
	h.LLC().Fill(addr, cache.Modified, line(0xAA))
	res := h.D2H(cxl.NCRead, addr, nil, 0)
	if !res.LLCHit || res.Data[0] != 0xAA {
		t.Fatalf("res = %+v", res)
	}
	if got := h.LLC().Peek(addr).State; got != cache.Modified {
		t.Fatalf("LLC state after NC-rd = %v, want M (no change)", got)
	}
	if res.HMCState != cache.Invalid {
		t.Fatal("NC-rd must not allocate HMC")
	}
}

func TestNCReadMissReadsMemory(t *testing.T) {
	h := newAgent(t)
	h.Store().WriteLine(addr, line(0x42))
	res := h.D2H(cxl.NCRead, addr, nil, 0)
	if res.LLCHit || res.Data[0] != 0x42 {
		t.Fatalf("res = %+v", res)
	}
	// Miss path is slower than hit path.
	h2 := newAgent(t)
	h2.LLC().Fill(addr, cache.Exclusive, line(1))
	hitRes := h2.D2H(cxl.NCRead, addr, nil, 0)
	if hitRes.Done >= res.Done {
		t.Fatalf("LLC hit (%v) should be faster than miss (%v)", hitRes.Done, res.Done)
	}
}

func TestCSReadSharesLine(t *testing.T) {
	h := newAgent(t)
	h.LLC().Fill(addr, cache.Exclusive, line(0x55))
	res := h.D2H(cxl.CSRead, addr, nil, 0)
	if res.HMCState != cache.Shared {
		t.Fatalf("HMC state = %v, want S", res.HMCState)
	}
	if got := h.LLC().Peek(addr).State; got != cache.Shared {
		t.Fatalf("LLC state = %v, want S (Table III I/S)", got)
	}
	if h.DeviceHolds(addr) != cache.Shared {
		t.Fatal("directory must track the shared device copy")
	}
}

func TestCSReadMissDoesNotTouchLLC(t *testing.T) {
	h := newAgent(t)
	h.Store().WriteLine(addr, line(9))
	res := h.D2H(cxl.CSRead, addr, nil, 0)
	if res.LLCHit {
		t.Fatal("should miss")
	}
	if h.LLC().Peek(addr) != nil {
		t.Fatal("CS-rd miss must not allocate into LLC")
	}
	if res.Data[0] != 9 {
		t.Fatal("data from memory")
	}
}

func TestCOReadInvalidatesLLCAndFollowsState(t *testing.T) {
	// Table III: LLC hit → HMC gets E or M following the original LLC
	// state; LLC becomes Invalid.
	for _, tc := range []struct {
		llcState cache.State
		want     cache.State
	}{
		{cache.Exclusive, cache.Exclusive},
		{cache.Modified, cache.Modified},
		{cache.Shared, cache.Exclusive},
	} {
		h := newAgent(t)
		h.LLC().Fill(addr, tc.llcState, line(0x77))
		res := h.D2H(cxl.CORead, addr, nil, 0)
		if res.HMCState != tc.want {
			t.Errorf("LLC %v: HMC state = %v, want %v", tc.llcState, res.HMCState, tc.want)
		}
		if h.LLC().Peek(addr) != nil {
			t.Errorf("LLC %v: line must be invalidated by RdOwn", tc.llcState)
		}
		if res.Data[0] != 0x77 {
			t.Errorf("LLC %v: data = %#x", tc.llcState, res.Data[0])
		}
	}
}

func TestCOReadMissGrantsExclusive(t *testing.T) {
	h := newAgent(t)
	h.Store().WriteLine(addr, line(3))
	res := h.D2H(cxl.CORead, addr, nil, 0)
	if res.HMCState != cache.Exclusive {
		t.Fatalf("HMC state = %v, want E", res.HMCState)
	}
	if h.DeviceHolds(addr) != cache.Exclusive {
		t.Fatal("directory must track exclusive device copy")
	}
}

func TestCOWriteInvalidatesHostAndTracksModified(t *testing.T) {
	h := newAgent(t)
	h.LLC().Fill(addr, cache.Shared, line(1))
	res := h.D2H(cxl.COWrite, addr, nil, 0)
	if h.LLC().Peek(addr) != nil {
		t.Fatal("LLC copy must be invalidated")
	}
	if h.DeviceHolds(addr) != cache.Modified {
		t.Fatal("directory must record M in device")
	}
	if res.HMCState != cache.Modified {
		t.Fatalf("HMC state = %v", res.HMCState)
	}
}

func TestCOWriteHitFasterThanMiss(t *testing.T) {
	h := newAgent(t)
	h.LLC().Fill(addr, cache.Shared, line(1))
	hit := h.D2H(cxl.COWrite, addr, nil, 0)
	miss := h.D2H(cxl.COWrite, addr+0x40, nil, 0)
	if hit.Done >= miss.Done {
		t.Fatalf("CO-wr hit %v should beat miss %v", hit.Done, miss.Done)
	}
}

func TestNCWriteInvalidatesEverythingAndWritesMemory(t *testing.T) {
	h := newAgent(t)
	h.LLC().Fill(addr, cache.Modified, line(1))
	h.D2H(cxl.CSRead, addr, nil, 0) // device takes a shared copy
	res := h.D2H(cxl.NCWrite, addr, line(0xBB), sim.Microsecond)
	if h.LLC().Peek(addr) != nil {
		t.Fatal("LLC must be invalid after WrInv")
	}
	if h.DeviceHolds(addr) != cache.Invalid {
		t.Fatal("directory entry must be dropped")
	}
	buf := make([]byte, phys.LineSize)
	h.Store().ReadLine(addr, buf)
	if buf[0] != 0xBB {
		t.Fatal("memory must hold the written data")
	}
	if res.Done < sim.Microsecond {
		t.Fatal("completion precedes arrival")
	}
}

func TestNCPDepositsModifiedLineInLLC(t *testing.T) {
	h := newAgent(t)
	res := h.D2H(cxl.NCP, addr, line(0xCD), 0)
	l := h.LLC().Peek(addr)
	if l == nil || l.State != cache.Modified {
		t.Fatalf("LLC line after NC-P = %+v, want Modified", l)
	}
	if l.Data[0] != 0xCD {
		t.Fatal("LLC data wrong")
	}
	if res.HMCState != cache.Invalid {
		t.Fatal("HMC must not retain the line")
	}
}

func TestNCPEvictionWritesBackVictim(t *testing.T) {
	p := timing.Default()
	llc := cache.MustNew("llc", 64, 1) // single line
	store := mem.NewStore("host")
	chs := mem.NewChannels("mc", 1, p.DRAM.WriteQueueEntries, p.DRAM.WriteDrainPerLine)
	h := NewHomeAgent(p, llc, store, chs)
	h.D2H(cxl.NCP, 0x0, line(0x11), 0)
	h.D2H(cxl.NCP, 0x40, line(0x22), 0) // evicts the first
	buf := make([]byte, phys.LineSize)
	store.ReadLine(0x0, buf)
	if buf[0] != 0x11 {
		t.Fatal("evicted NC-P victim must be written back to memory")
	}
}

func TestWritebackFromDevice(t *testing.T) {
	h := newAgent(t)
	h.D2H(cxl.CORead, addr, nil, 0)
	done := h.WritebackFromDevice(addr, line(0x99), 100)
	if h.DeviceHolds(addr) != cache.Invalid {
		t.Fatal("directory entry must clear on writeback")
	}
	buf := make([]byte, phys.LineSize)
	h.Store().ReadLine(addr, buf)
	if buf[0] != 0x99 {
		t.Fatal("writeback data lost")
	}
	if done < 100 {
		t.Fatal("completion precedes arrival")
	}
}

func TestSnoopDevice(t *testing.T) {
	h := newAgent(t)
	h.D2H(cxl.CORead, addr, nil, 0)
	st, ok := h.SnoopDevice(addr)
	if !ok || st != cache.Exclusive {
		t.Fatalf("snoop = %v,%v", st, ok)
	}
	if _, ok := h.SnoopDevice(addr); ok {
		t.Fatal("second snoop should find nothing")
	}
	_, _, backInvals := h.Stats()
	if backInvals != 1 {
		t.Fatalf("backInvals = %d", backInvals)
	}
}

func TestLatencyOrderingHitVsMiss(t *testing.T) {
	// For every read type, LLC-hit completes earlier than LLC-miss, as in
	// Fig. 3's latency bars.
	for _, req := range []cxl.D2HReq{cxl.NCRead, cxl.CSRead, cxl.CORead} {
		h1 := newAgent(t)
		h1.LLC().Fill(addr, cache.Exclusive, line(1))
		hit := h1.D2H(req, addr, nil, 0)
		h2 := newAgent(t)
		miss := h2.D2H(req, addr, nil, 0)
		if hit.Done >= miss.Done {
			t.Errorf("%v: hit %v >= miss %v", req, hit.Done, miss.Done)
		}
	}
}

func TestUnknownRequestPanics(t *testing.T) {
	h := newAgent(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.D2H(cxl.D2HReq(99), addr, nil, 0)
}

func TestStatsCounters(t *testing.T) {
	h := newAgent(t)
	h.D2H(cxl.NCRead, addr, nil, 0)
	h.D2H(cxl.CSRead, addr, nil, 0)
	h.D2H(cxl.NCWrite, addr, nil, 0)
	r, w, _ := h.Stats()
	if r != 2 || w != 1 {
		t.Fatalf("stats = %d reads, %d writes", r, w)
	}
}

// TestCSReadHitWritesBackModifiedData is the regression test for a bug the
// fuzzing harness's data oracle was designed to catch: a CS-rd hit on a
// Modified LLC line downgrades it to Shared, and a Shared victim is later
// dropped silently on eviction — so the modified data must reach memory at
// the downgrade, or a post-eviction NC-rd observes stale bytes.
func TestCSReadHitWritesBackModifiedData(t *testing.T) {
	h := newAgent(t)
	h.Store().WriteLine(addr, line(0x11)) // stale memory
	h.LLC().Fill(addr, cache.Modified, line(0xEE))

	res := h.D2H(cxl.CSRead, addr, nil, 0)
	if res.Data[0] != 0xEE {
		t.Fatalf("CS-rd returned %#x, want 0xEE", res.Data[0])
	}
	if got := h.LLC().Peek(addr).State; got != cache.Shared {
		t.Fatalf("LLC state after CS-rd hit = %v, want S", got)
	}

	// A Shared line evicts silently (clean victim). Model that drop, then
	// read memory through the coherent path: the bytes must be current.
	h.LLC().Invalidate(addr)
	got := h.D2H(cxl.NCRead, addr, nil, res.Done)
	if got.Data[0] != 0xEE {
		t.Fatalf("memory after M->S downgrade and eviction = %#x, want 0xEE (dirty data lost)", got.Data[0])
	}
}
