package host

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

func fixture(t testing.TB) *Host {
	t.Helper()
	h := MustNew(timing.Default(), Config{LLCBytes: 1 << 20, LLCWays: 16, Cores: 4})
	if _, err := h.Attach(device.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	return h
}

func line(b byte) []byte {
	d := make([]byte, phys.LineSize)
	for i := range d {
		d[i] = b
	}
	return d
}

var devAddr = mem.RegionDevice.Base + 0x4000

func TestDefaultConfigGeometry(t *testing.T) {
	// Table II: 60 MB LLC. 60 MB / 64 B / 15 ways = 65536 sets.
	h := MustNew(timing.Default(), DefaultConfig())
	if h.LLC().Sets() != 65536 || h.LLC().Ways() != 15 {
		t.Fatalf("LLC geometry: %d sets × %d ways", h.LLC().Sets(), h.LLC().Ways())
	}
	if h.NumCores() != 32 {
		t.Fatalf("cores = %d", h.NumCores())
	}
}

func TestSNCHalvesChannels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SNC = true
	h := MustNew(timing.Default(), cfg)
	if h.Channels().N() != 4 {
		t.Fatalf("SNC channels = %d, want 4", h.Channels().N())
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	p := timing.Default()
	p.Host.CoreGHz = 0
	if _, err := New(p, DefaultConfig()); err == nil {
		t.Fatal("invalid params accepted")
	}
	p2 := timing.Default()
	p2.Host.MemChannels = 1
	cfg := DefaultConfig()
	cfg.SNC = true
	if _, err := New(p2, cfg); err == nil {
		t.Fatal("SNC with 1 channel should fail")
	}
}

func TestLocalLoadStoreRoundTrip(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	st := c.Access(cxl.St, 0x1000, line(0x21), 0)
	ld := c.Access(cxl.Ld, 0x1000, nil, st.Done)
	if ld.Data[0] != 0x21 {
		t.Fatalf("load read %#x", ld.Data[0])
	}
	if !ld.LLCHit {
		t.Fatal("store should have installed the line")
	}
}

func TestLocalLoadMissSlowerThanHit(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	miss := c.Access(cxl.Ld, 0x2000, nil, 0)
	h.ResetTiming()
	hit := c.Access(cxl.Ld, 0x2000, nil, 0)
	if !hit.LLCHit || miss.LLCHit {
		t.Fatal("hit/miss classification wrong")
	}
	if hit.Done >= miss.Done {
		t.Fatalf("hit %v should beat miss %v", hit.Done, miss.Done)
	}
}

func TestNtStBypassesCache(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	c.Access(cxl.Ld, 0x3000, nil, 0) // line cached
	c.Access(cxl.NtSt, 0x3000, line(0x99), 0)
	if h.LLC().Peek(0x3000) != nil {
		t.Fatal("nt-st must invalidate the cached copy")
	}
	buf := make([]byte, phys.LineSize)
	h.Store().ReadLine(0x3000, buf)
	if buf[0] != 0x99 {
		t.Fatal("nt-st data missing from memory")
	}
}

func TestH2DLoadCachesDeviceLine(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	h.Dev.WriteDevMemDirect(devAddr, line(0x61))
	first := c.Access(cxl.Ld, devAddr, nil, 0)
	if first.Data[0] != 0x61 || first.LLCHit {
		t.Fatalf("first = %+v", first)
	}
	h.ResetTiming()
	second := c.Access(cxl.Ld, devAddr, nil, 0)
	if !second.LLCHit {
		t.Fatal("second load should hit LLC (CXL.mem is cacheable)")
	}
	if second.Done >= first.Done {
		t.Fatalf("LLC hit %v should beat CXL access %v", second.Done, first.Done)
	}
}

func TestH2DNtStPostedCompletion(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	res := c.Access(cxl.NtSt, devAddr, line(0x71), 0)
	if res.DeviceDone <= res.Done {
		t.Fatalf("device completion %v should follow host completion %v", res.DeviceDone, res.Done)
	}
	buf := make([]byte, phys.LineSize)
	h.Dev.ReadDevMemDirect(devAddr, buf)
	if buf[0] != 0x71 {
		t.Fatal("nt-st data missing from device memory")
	}
}

func TestH2DStWriteThrough(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	c.Access(cxl.St, devAddr, line(0x81), 0)
	buf := make([]byte, phys.LineSize)
	h.Dev.ReadDevMemDirect(devAddr, buf)
	if buf[0] != 0x81 {
		t.Fatal("H2D store data missing from device memory")
	}
	l := h.LLC().Peek(devAddr)
	if l == nil || l.State != cache.Modified {
		t.Fatal("H2D store should cache the line Modified")
	}
}

func TestNCPPushThenH2DLoadIsFast(t *testing.T) {
	// Insight 4: NC-P pushed lines give H2D loads LLC-hit latency.
	h := fixture(t)
	c := h.Core(0)
	h.Dev.WriteDevMemDirect(devAddr, line(0x55))
	slow := c.Access(cxl.Ld, devAddr, nil, 0)
	h.ResetTiming()
	h.LLC().Invalidate(devAddr)
	// Device pushes the line into host LLC.
	h.Dev.D2H(cxl.NCP, 0x9000, line(0x55), 0) // host-memory push works
	// For a device-memory address the push path is the host-side fill:
	h.LLC().Fill(devAddr, cache.Modified, line(0x55))
	h.ResetTiming()
	fast := c.Access(cxl.Ld, devAddr, nil, 0)
	if !fast.LLCHit {
		t.Fatal("pushed line should hit LLC")
	}
	reduction := 100 * float64(slow.Done-fast.Done) / float64(slow.Done)
	if reduction < 75 || reduction > 95 {
		t.Fatalf("NC-P load latency reduction = %.0f%%, paper says 82–87%%", reduction)
	}
}

func TestSnoopRecallsDeviceLine(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	h.Store().WriteLine(0x5000, line(0x10))
	// Device takes exclusive ownership and modifies the line in HMC.
	h.Dev.D2H(cxl.COWrite, 0x5000, line(0x20), 0)
	// Host load must observe the device's data.
	res := c.Access(cxl.Ld, 0x5000, nil, sim.Microsecond)
	if res.Data[0] != 0x20 {
		t.Fatalf("host read stale data %#x", res.Data[0])
	}
	if h.Dev.HMC().Peek(0x5000) != nil {
		t.Fatal("snoop must recall the HMC copy")
	}
}

func TestCLFlushWritesBackDirty(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	c.Access(cxl.St, 0x6000, line(0x31), 0)
	h.LLC().Peek(0x6000).State = cache.Modified
	done := c.CLFlush(0x6000, 0)
	if h.LLC().Peek(0x6000) != nil {
		t.Fatal("line survived CLFlush")
	}
	buf := make([]byte, phys.LineSize)
	h.Store().ReadLine(0x6000, buf)
	if buf[0] != 0x31 {
		t.Fatal("dirty data lost")
	}
	if done <= 0 {
		t.Fatal("CLFlush must take time")
	}
}

func TestCLDemoteInstallsInLLC(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	c.CLDemote(0x7000, cache.Exclusive, line(0x41), 0)
	l := h.LLC().Peek(0x7000)
	if l == nil || l.State != cache.Exclusive || l.Data[0] != 0x41 {
		t.Fatalf("CLDemote result: %+v", l)
	}
}

func TestEmulatedD2HLatencyOrdering(t *testing.T) {
	h := fixture(t)
	e := h.NewEmuCore()
	// LLC hit is faster than miss for every op.
	for _, op := range []cxl.HostOp{cxl.Ld, cxl.NtLd, cxl.St, cxl.NtSt} {
		h.LLC().Fill(0x8000, cache.Exclusive, nil)
		e.ResetTiming()
		hit := e.D2H(op, 0x8000, 0)
		h.LLC().Invalidate(0x8000)
		e.ResetTiming()
		h.ResetTiming()
		miss := e.D2H(op, 0x8000, 0)
		if hit >= miss {
			t.Errorf("%v: hit %v >= miss %v", op, hit, miss)
		}
	}
}

func TestEmulatedD2HReadsSlowerThanLocal(t *testing.T) {
	h := fixture(t)
	e := h.NewEmuCore()
	remote := e.D2H(cxl.Ld, 0x8100, 0)
	local := h.Core(0).Access(cxl.Ld, 0x8100, nil, 0)
	if remote <= local.Done {
		t.Fatalf("remote %v should exceed local %v", remote, local.Done)
	}
}

func TestEmulatedD2DHitIsL1Fast(t *testing.T) {
	h := fixture(t)
	e := h.NewEmuCore()
	hit := e.D2D(cxl.Ld, true, 0)
	miss := e.D2D(cxl.Ld, false, 0)
	if hit >= miss {
		t.Fatalf("L1-equivalent hit %v should beat DRAM miss %v", hit, miss)
	}
	// §V-B: the emulated DMC hit (host L1) is faster than the FPGA's DMC
	// because the host clock is 5.5× faster.
	realDMC := h.Dev.D2D(cxl.CSRead, devAddr, nil, 0)
	h.Dev.ResetTiming()
	realDMC = h.Dev.D2D(cxl.CSRead, devAddr, nil, 0) // now a DMC hit
	if !realDMC.DMCHit {
		t.Fatal("expected DMC hit")
	}
	if hit >= realDMC.Done {
		t.Fatalf("emulated DMC hit %v should beat FPGA DMC hit %v", hit, realDMC.Done)
	}
}

func TestDSACopyMovesData(t *testing.T) {
	h := fixture(t)
	dsa := h.NewDSA()
	src := make([]byte, phys.PageSize)
	for i := range src {
		src[i] = byte(i)
	}
	h.Store().Write(0x20000, src)
	submitted, done := dsa.Copy(0x20000, devAddr, phys.PageSize, 0, true)
	if submitted >= done {
		t.Fatal("submit should precede completion")
	}
	out := make([]byte, phys.PageSize)
	h.Dev.ReadDevMemDirect(devAddr, out)
	for i := range out {
		if out[i] != src[i] {
			t.Fatalf("DSA copy mismatch at %d", i)
		}
	}
}

func TestDSAFasterThanLdStForLargeTransfers(t *testing.T) {
	// Fig. 6: beyond ~1 KB, DSA beats CPU ld/st to CXL memory.
	h := fixture(t)
	c := h.Core(0)
	const size = 16 << 10
	var ldLast sim.Time
	for off := 0; off < size; off += phys.LineSize {
		r := c.Access(cxl.Ld, devAddr+phys.Addr(off), nil, 0)
		if r.Done > ldLast {
			ldLast = r.Done
		}
	}
	dsa := h.NewDSA()
	_, dsaDone := dsa.Copy(devAddr, 0x30000, size, 0, false)
	if dsaDone >= ldLast {
		t.Fatalf("DSA (%v) should beat ld loop (%v) at %d bytes", dsaDone, ldLast, size)
	}
}

func TestFenceCXL(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	var last sim.Time
	for i := 0; i < 8; i++ {
		r := c.Access(cxl.NtSt, devAddr+phys.Addr(i*64), line(1), 0)
		last = r.Done
	}
	fence := c.FenceCXL(last)
	if fence <= last {
		t.Fatal("fence must wait for drain + link")
	}
}

func TestAccessUnmappedPanics(t *testing.T) {
	h := fixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Core(0).Access(cxl.Ld, mem.RegionMMIO.End()+0x10000, nil, 0)
}

func TestAccessMMIOPanics(t *testing.T) {
	h := fixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: MMIO goes through the pcie package")
		}
	}()
	h.Core(0).Access(cxl.Ld, mem.RegionMMIO.Base, nil, 0)
}

func TestHostOpHelpers(t *testing.T) {
	if cxl.Ld.EquivalentD2H() != cxl.CSRead || cxl.NtLd.EquivalentD2H() != cxl.NCRead ||
		cxl.St.EquivalentD2H() != cxl.COWrite || cxl.NtSt.EquivalentD2H() != cxl.NCWrite {
		t.Fatal("paper's op pairing broken (§V-A)")
	}
}

func TestRemoteSocketAccess(t *testing.T) {
	h := fixture(t)
	c := h.Core(0)
	remoteAddr := mem.RegionHost1.Base + 0x1000
	line0 := line(0x66)
	c.Access(cxl.St, remoteAddr, line0, 0)
	h.ResetTiming()
	h.LLC().Invalidate(remoteAddr)
	remote := c.Access(cxl.Ld, remoteAddr, nil, 0)
	if remote.Data[0] != 0x66 {
		t.Fatal("remote data lost")
	}
	h.ResetTiming()
	h.LLC().Invalidate(0x9000)
	local := c.Access(cxl.Ld, 0x9000, nil, 0)
	if remote.Done <= local.Done {
		t.Fatalf("remote ld %v should exceed local %v (UPI hop)", remote.Done, local.Done)
	}
	// Cached remote lines serve at LLC speed.
	h.ResetTiming()
	hit := c.Access(cxl.Ld, remoteAddr, nil, 0)
	if !hit.LLCHit || hit.Done >= remote.Done {
		t.Fatal("remote line should cache locally")
	}
}
