package host

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cxl"
	"repro/internal/interconnect"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Core models one CPU core's memory interface: issue serialization, credit
// pools for outstanding misses, and the access paths to local memory,
// remote-socket memory (over UPI) and CXL device memory.
type Core struct {
	h  *Host
	id int

	issue      *sim.Resource
	loadCred   *sim.Credits // local/remote demand loads (line-fill buffers)
	ntLoadCred *sim.Credits
	wcCred     *sim.Credits // non-temporal store WC buffers
	cxlLoad    *sim.Credits // outstanding demand loads to CXL memory
	cxlStore   *sim.Credits // outstanding RFO stores to CXL memory
	ntEgress   *sim.Resource

	// Sched is the run-queue resource used by sim.Proc to model software
	// contending for this core's cycles.
	Sched *sim.Resource
}

func newCore(h *Host, id int) *Core {
	p := h.p
	return &Core{
		h:          h,
		id:         id,
		issue:      sim.NewResource(fmt.Sprintf("core%d.issue", id)),
		loadCred:   sim.NewCredits(fmt.Sprintf("core%d.lfb", id), p.Host.LoadCredits),
		ntLoadCred: sim.NewCredits(fmt.Sprintf("core%d.ntlfb", id), p.Host.NTLoadCredits),
		wcCred:     sim.NewCredits(fmt.Sprintf("core%d.wc", id), p.Host.WCBuffers),
		cxlLoad:    sim.NewCredits(fmt.Sprintf("core%d.cxl-ld", id), p.CXL.H2DLoadCredits),
		cxlStore:   sim.NewCredits(fmt.Sprintf("core%d.cxl-st", id), p.CXL.H2DStoreCredits),
		ntEgress:   sim.NewResource(fmt.Sprintf("core%d.ntegress", id)),
		Sched:      sim.NewResource(fmt.Sprintf("core%d.sched", id)),
	}
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

func (c *Core) resetTiming() {
	c.issue.Reset()
	c.loadCred.Reset()
	c.ntLoadCred.Reset()
	c.wcCred.Reset()
	c.cxlLoad.Reset()
	c.cxlStore.Reset()
	c.ntEgress.Reset()
}

// AccessResult describes one host memory operation.
type AccessResult struct {
	// Done is the core-visible completion: data return for loads,
	// store-buffer/WC retirement for stores.
	Done sim.Time
	// DeviceDone, for posted writes to device memory, is when the line
	// actually lands in the device (>= Done).
	DeviceDone sim.Time
	// Data is the 64-byte line for loads of device or local memory when
	// functional data is in play.
	Data []byte
	// LLCHit / DMCHit report where the line was found.
	LLCHit bool
	DMCHit bool
}

// Access issues one 64-byte host memory operation at addr. Device-memory
// addresses take the CXL.mem H2D path; host addresses take the local
// hierarchy. data supplies the payload for stores.
func (c *Core) Access(op cxl.HostOp, addr phys.Addr, data []byte, now sim.Time) AccessResult {
	return c.access(op, addr, data, now, true)
}

// AccessTiming is Access for callers that discard the returned payload:
// identical timing and cache/memory state transitions, but no line
// buffer is materialized for loads. The serving hot paths issue
// millions of timing-only line ops per run, so skipping the payload is
// a measurable share of their allocation footprint.
func (c *Core) AccessTiming(op cxl.HostOp, addr phys.Addr, now sim.Time) sim.Time {
	return c.access(op, addr, nil, now, false).Done
}

func (c *Core) access(op cxl.HostOp, addr phys.Addr, data []byte, now sim.Time, wantData bool) AccessResult {
	kind, ok := c.h.amap.Resolve(addr)
	if !ok {
		panic(fmt.Sprintf("host: access to unmapped address %v", addr))
	}
	switch kind {
	case mem.KindDevice:
		return c.accessCXL(op, addr, data, now)
	case mem.KindHost0:
		return c.accessLocal(op, addr, data, now, false, wantData)
	case mem.KindHost1:
		// A socket-0 core reaching socket 1's memory: the same functional
		// path with the UPI round trip and remote service costs added.
		return c.accessLocal(op, addr, data, now, true, wantData)
	default:
		panic(fmt.Sprintf("host: Access cannot target %v; use the pcie package for MMIO", kind))
	}
}

// accessLocal is the host-DRAM path: L1/L2 modeled as latency, LLC and
// memory modeled with real state. Functional stores write through to the
// backing store so that device D2H reads always observe the latest data.
// remote adds the UPI round trip and remote-home service costs (a socket-0
// core reaching socket-1 memory).
func (c *Core) accessLocal(op cxl.HostOp, addr phys.Addr, data []byte, now sim.Time, remote, wantData bool) AccessResult {
	p := c.h.p
	addr = phys.LineAddr(addr)
	start := c.issue.Claim(now, p.Host.IssueGap)
	t := start + p.Host.LocalLookup
	var remoteExtra sim.Time
	if remote {
		remoteExtra = 2*p.UPI.OneWay + p.UPI.RemoteDRAMRead - p.DRAM.DDR5Read
		if remoteExtra < 0 {
			remoteExtra = 0
		}
	}

	// If the device holds the line (HMC), recall it first.
	c.snoopDeviceIfNeeded(addr)

	line := c.h.llc.Peek(addr)
	hit := line.Valid()
	switch op {
	case cxl.Ld, cxl.NtLd:
		if hit {
			done := t + p.Host.LLCHit
			if op == cxl.NtLd {
				done += p.UPI.NTLoadExtraHit // NT path overhead is socket-local too
			}
			res := AccessResult{Done: done, LLCHit: true}
			if wantData {
				res.Data = c.h.arena.Clone(line.Data)
			}
			return res
		}
		cred := c.loadCred
		if op == cxl.NtLd {
			cred = c.ntLoadCred
		}
		s := cred.Acquire(t)
		done := s + p.DRAM.DDR5Read + remoteExtra
		cred.Complete(done)
		res := AccessResult{Done: done}
		if wantData || op == cxl.Ld {
			buf := c.h.arena.Line()
			c.h.stor.ReadLine(addr, buf)
			if op == cxl.Ld {
				c.fillLLC(addr, cache.Exclusive, buf)
			}
			if wantData {
				res.Data = buf
			}
		}
		return res

	case cxl.St:
		if data != nil {
			c.h.stor.WriteLine(addr, data) // functional write-through
		}
		if hit {
			line.State = cache.Modified
			if data != nil {
				lineSetData(line, data)
			}
			return AccessResult{Done: t + p.Host.LLCHit, LLCHit: true}
		}
		// RFO: fetch then modify.
		s := c.loadCred.Acquire(t)
		done := s + p.DRAM.DDR5Read + remoteExtra
		c.loadCred.Complete(done)
		c.fillLLC(addr, cache.Modified, data)
		return AccessResult{Done: done}

	case cxl.NtSt:
		// Streaming store: invalidate any cached copy, post to memory.
		c.h.llc.Invalidate(addr)
		if data != nil {
			c.h.stor.WriteLine(addr, data)
		}
		s := c.wcCred.Acquire(t)
		admitted := c.h.chs.PostWrite(addr, s+p.Host.StoreIssueGap+remoteExtra/2)
		c.wcCred.Complete(admitted)
		return AccessResult{Done: admitted, LLCHit: hit}

	default:
		panic(fmt.Sprintf("host: unknown op %v", op))
	}
}

// accessCXL is the H2D path to device memory over CXL.mem (§V-C).
func (c *Core) accessCXL(op cxl.HostOp, addr phys.Addr, data []byte, now sim.Time) AccessResult {
	p := c.h.p
	dev := c.h.Dev
	if dev == nil {
		panic("host: no CXL device attached")
	}
	addr = phys.LineAddr(addr)
	start := c.issue.Claim(now, p.Host.IssueGap)
	t := start + p.Host.LocalLookup

	// Host caches device-memory lines in its hierarchy (CXL.mem is
	// cacheable): an LLC hit short-circuits the link — the NC-P fast path
	// of Insight 4.
	line := c.h.llc.Peek(addr)
	if line.Valid() && op != cxl.NtSt && op != cxl.NtLd {
		// LLC-hit accesses to device-region lines still recycle the CXL
		// demand-miss tracking entries, bounding their throughput.
		s := c.cxlLoad.Acquire(t)
		done := s + p.Host.LLCHitRemoteDevice
		if op == cxl.St {
			if line.State == cache.Shared {
				// S→M upgrade: ownership must be granted by the device so
				// its DMC copy is invalidated (CXL.mem back-invalidate).
				done += 2*p.CXL.OneWay + p.CXL.MemProc + dev.UpgradeHostOwnership(addr)
			}
			line.State = cache.Modified
			if data != nil {
				lineSetData(line, data)
				dev.WriteDevMemDirect(addr, data) // functional write-through
			}
		}
		c.cxlLoad.Complete(done)
		return AccessResult{Done: done, Data: c.h.arena.Clone(line.Data), LLCHit: true}
	}

	switch op {
	case cxl.Ld, cxl.NtLd, cxl.St:
		cred := c.cxlLoad
		if op == cxl.St {
			cred = c.cxlStore
		}
		s := cred.Acquire(t)
		arrive := c.h.CXLLink.Transfer(interconnect.Down, s, cxl.HeaderBytes) + p.CXL.MemProc
		hres := dev.H2D(op, addr, nil, arrive)
		done := c.h.CXLLink.Transfer(interconnect.Up, hres.Done, cxl.DataBytes)
		cred.Complete(done)
		st := hres.HostState
		if st == cache.Invalid {
			st = cache.Exclusive
		}
		if op == cxl.St {
			st = cache.Modified
			if data != nil {
				copy(hres.Data, data)
				dev.WriteDevMemDirect(addr, data)
			}
		}
		if op != cxl.NtLd {
			c.fillLLC(addr, st, hres.Data)
		}
		return AccessResult{Done: done, Data: hres.Data, DMCHit: hres.DMCHit}

	case cxl.NtSt:
		// Posted: the core retires the store once it leaves the WC buffer;
		// the device completes it later.
		c.h.llc.Invalidate(addr)
		s := c.wcCred.Acquire(t)
		egress := c.ntEgress.Claim(s, p.Host.NTStoreEgressGap)
		hostDone := egress + p.Host.NTStoreEgressGap
		arrive := c.h.CXLLink.Transfer(interconnect.Down, egress, cxl.DataBytes) + p.CXL.MemProc
		hres := dev.H2D(op, addr, data, arrive)
		c.wcCred.Complete(hostDone)
		return AccessResult{Done: hostDone, DeviceDone: hres.Done, DMCHit: hres.DMCHit}

	default:
		panic(fmt.Sprintf("host: unknown op %v", op))
	}
}

// FenceCXL models a store fence draining this core's posted CXL writes: it
// returns when the last posted write is globally visible at device memory
// and acknowledged back (used to time nt-st block transfers, Fig. 6).
func (c *Core) FenceCXL(now sim.Time) sim.Time {
	p := c.h.p
	drain := c.ntEgress.FreeAt()
	if drain < now {
		drain = now
	}
	return drain + 2*(p.CXL.OneWay+p.CXL.MemProc) + p.Device.DevMemCtrl + p.DRAM.DDR4Write
}

// snoopDeviceIfNeeded recalls a line from the device HMC when the home
// directory says the device owns it.
func (c *Core) snoopDeviceIfNeeded(addr phys.Addr) {
	st, held := c.h.home.SnoopDevice(addr)
	if !held || c.h.Dev == nil {
		return
	}
	if rst, data, ok := c.h.Dev.RecallHMC(addr); ok {
		if (rst == cache.Modified || st == cache.Modified) && data != nil {
			c.h.stor.WriteLine(addr, data)
		}
	}
}

// fillLLC installs a line in LLC, writing back a dirty victim.
func (c *Core) fillLLC(addr phys.Addr, st cache.State, data []byte) {
	v, evicted := c.h.llc.Fill(addr, st, data)
	if evicted && v.Dirty() {
		c.writebackVictim(v)
	}
}

func (c *Core) writebackVictim(v cache.Victim) {
	if v.Data == nil {
		return
	}
	if c.h.amap.IsDevice(v.Addr) {
		if c.h.Dev != nil {
			c.h.Dev.WriteDevMemDirect(v.Addr, v.Data)
		}
		return
	}
	c.h.stor.WriteLine(v.Addr, v.Data)
}

// CLFlush flushes the line at addr from the host hierarchy (writing dirty
// data back), returning the completion time — the paper's state-priming
// primitive.
func (c *Core) CLFlush(addr phys.Addr, now sim.Time) sim.Time {
	addr = phys.LineAddr(addr)
	if st, data, ok := c.h.llc.Invalidate(addr); ok && st == cache.Modified && data != nil {
		if c.h.amap.IsDevice(addr) {
			if c.h.Dev != nil {
				c.h.Dev.WriteDevMemDirect(addr, data)
			}
		} else {
			c.h.stor.WriteLine(addr, data)
		}
	}
	return now + c.h.p.Host.CLFlush
}

// CLDemote pushes the line at addr out of the core's private levels into
// LLC (the CLDEMOTE priming of §V's methodology). Since private levels are
// modeled as latency only, this installs the line in LLC with the given
// state and data.
func (c *Core) CLDemote(addr phys.Addr, st cache.State, data []byte, now sim.Time) sim.Time {
	c.fillLLC(phys.LineAddr(addr), st, data)
	return now + c.h.p.Host.CLDemote
}


func lineSetData(l *cache.Line, data []byte) {
	if len(data) != phys.LineSize {
		panic("host: bad line data size")
	}
	if l.Data == nil {
		l.Data = make([]byte, phys.LineSize)
	}
	copy(l.Data, data)
}
