package host

import (
	"fmt"

	"repro/internal/cxl"
	"repro/internal/phys"
	"repro/internal/sim"
)

// EmuCore models the remote-socket CPU core that stands in for a CXL
// Type-2 device in the paper's emulation methodology (footnote 1): since a
// CXL device is exposed as a NUMA node, a remote core accessing a local
// node's memory emulates D2H accesses, and its own L1/local DRAM emulate
// DMC/device-memory for D2D.
type EmuCore struct {
	h         *Host
	issue     *sim.Resource
	readCred  *sim.Credits
	ntRead    *sim.Credits
	storeCred *sim.Credits
}

// NewEmuCore returns a socket-1 core wired to socket 0 over UPI.
func (h *Host) NewEmuCore() *EmuCore {
	return &EmuCore{
		h:         h,
		issue:     sim.NewResource("emu.issue"),
		readCred:  sim.NewCredits("emu.rd", h.p.UPI.ReadCredits),
		ntRead:    sim.NewCredits("emu.ntrd", h.p.Host.NTLoadCredits),
		storeCred: sim.NewCredits("emu.st", h.p.UPI.StoreCredits),
	}
}

// ResetTiming returns the emulated core's resources to idle.
func (e *EmuCore) ResetTiming() {
	e.issue.Reset()
	e.readCred.Reset()
	e.ntRead.Reset()
	e.storeCred.Reset()
}

// D2H performs one emulated D2H access: the remote core issues op against
// socket 0's memory over UPI. llcHit primes whether the target line is in
// socket 0's LLC (the paper's LLC-1/LLC-0 cases). Timing only — the
// emulation experiments never carry data.
func (e *EmuCore) D2H(op cxl.HostOp, addr phys.Addr, now sim.Time) sim.Time {
	p := e.h.p
	start := e.issue.Claim(now, p.Host.IssueGap)
	t := start + p.Host.LocalLookup
	llcHit := e.h.llc.Peek(addr).Valid()
	rt := 2 * p.UPI.OneWay

	switch op {
	case cxl.Ld, cxl.NtLd:
		cred := e.readCred
		extra := sim.Time(0)
		if op == cxl.NtLd {
			cred = e.ntRead
			if llcHit {
				extra = p.UPI.NTLoadExtraHit
			} else {
				extra = p.UPI.NTLoadExtraMiss
			}
		}
		s := cred.Acquire(t)
		var svc sim.Time
		if llcHit {
			svc = p.UPI.RemoteLLCRead
		} else {
			svc = p.UPI.RemoteDRAMRead
		}
		done := s + rt + svc + extra
		cred.Complete(done)
		return done

	case cxl.St:
		// RFO over UPI: ownership grant from the remote home.
		s := e.storeCred.Acquire(t)
		var svc sim.Time
		if llcHit {
			svc = p.UPI.StoreGrantHit
		} else {
			svc = p.UPI.StoreGrantMiss
		}
		done := s + rt + svc
		e.storeCred.Complete(done)
		return done

	case cxl.NtSt:
		// Posted one-way write: completion at WC-buffer flush + remote
		// write-queue admission — which stalls once the queues fill (§V-A).
		var svc sim.Time
		if llcHit {
			svc = p.UPI.NTStoreFlushHit
		} else {
			svc = p.UPI.NTStoreFlushMiss
		}
		admitted := e.h.chs.PostWrite(addr, t+p.UPI.OneWay+svc)
		return admitted

	default:
		panic(fmt.Sprintf("host: unknown op %v", op))
	}
}

// D2D performs one emulated D2D access: the remote core against its own
// cache/memory. hit selects the DMC-1 analogue (an L1 hit, as §V-B assumes:
// "a CPU core hits its L1 equivalent to DMC since the CXL Type-2 device has
// a single level of cache") versus local DRAM for DMC-0.
func (e *EmuCore) D2D(op cxl.HostOp, hit bool, now sim.Time) sim.Time {
	p := e.h.p
	start := e.issue.Claim(now, p.Host.IssueGap)
	if hit {
		return start + p.Host.L1Hit
	}
	switch op {
	case cxl.Ld, cxl.NtLd, cxl.St:
		s := e.readCred.Acquire(start + p.Host.LocalLookup)
		done := s + p.DRAM.DDR5Read
		e.readCred.Complete(done)
		return done
	case cxl.NtSt:
		return start + p.Host.LocalLookup + p.Host.StoreIssueGap + p.DRAM.DDR5Write/4
	default:
		panic(fmt.Sprintf("host: unknown op %v", op))
	}
}
