// Package host models the dual-socket Xeon server of Table II: the cache
// hierarchy and home agent of socket 0, CPU cores issuing
// ld/nt-ld/st/nt-st, the UPI-emulated CXL paths (a remote-socket core
// standing in for the device, paper footnote 1), CLFLUSH/CLDEMOTE state
// priming, and the DSA copy engine.
package host

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/device"
	"repro/internal/interconnect"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/timing"
)

// Config shapes the host model.
type Config struct {
	// LLCBytes/LLCWays shape socket 0's LLC (60 MB, 15-way in Table II).
	LLCBytes, LLCWays int
	// Cores is the number of CPU cores modeled per socket.
	Cores int
	// SNC halves the memory channels visible to the benchmark, matching the
	// paper's sub-NUMA-clustering methodology in §VII.
	SNC bool
}

// DefaultConfig returns the Table II host.
func DefaultConfig() Config {
	return Config{LLCBytes: 60 << 20, LLCWays: 15, Cores: 32}
}

// Host is the modeled server: home agent, LLC, memory, links and cores.
type Host struct {
	p    *timing.Params
	cfg  Config
	home *coherence.HomeAgent
	llc  *cache.Cache
	stor *mem.Store
	chs  *mem.Channels
	amap *mem.Map

	// UPI connects the two sockets; CXLLink connects socket 0 to the device.
	UPI     *interconnect.Link
	CXLLink *interconnect.Link

	// Dev is the attached CXL device (nil until Attach).
	Dev *device.Device

	cores []*Core

	// arena backs the line buffers the access paths hand to callers.
	// Returned data stays valid until the next ResetTiming (bump
	// allocation, no reuse in between).
	arena phys.LineArena
}

// New builds a host (without a device; call Attach).
func New(p *timing.Params, cfg Config) (*Host, error) {
	if msg := p.Validate(); msg != "" {
		return nil, fmt.Errorf("host: %s", msg)
	}
	llc, err := cache.New("llc", cfg.LLCBytes, cfg.LLCWays)
	if err != nil {
		return nil, err
	}
	channels := p.Host.MemChannels
	if cfg.SNC {
		channels /= 2
	}
	if channels <= 0 {
		return nil, fmt.Errorf("host: no memory channels after SNC")
	}
	stor := mem.NewStore("hostmem")
	chs := mem.NewChannels("mc", channels, p.DRAM.WriteQueueEntries, p.DRAM.WriteDrainPerLine)
	h := &Host{
		p:       p,
		cfg:     cfg,
		home:    coherence.NewHomeAgent(p, llc, stor, chs),
		llc:     llc,
		stor:    stor,
		chs:     chs,
		amap:    mem.NewMap(),
		UPI:     interconnect.NewLink("upi", p.UPI.OneWay, p.UPI.BytesPerSec),
		CXLLink: interconnect.NewLink("cxl", p.CXL.OneWay, p.CXL.BytesPerSec),
	}
	// Cores are constructed on first use (Core): each one carries seven
	// named resources/credit pools, and most rigs exercise one or two of
	// the 32 modeled cores, so eager construction was a measurable slice of
	// per-job rig setup in the parallel experiment runner.
	h.cores = make([]*Core, cfg.Cores)
	return h, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(p *timing.Params, cfg Config) *Host {
	h, err := New(p, cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Attach connects a CXL device built over this host's home agent and CXL
// link.
func (h *Host) Attach(cfg device.Config) (*device.Device, error) {
	d, err := device.New(h.p, cfg, h.home, h.CXLLink)
	if err != nil {
		return nil, err
	}
	h.Dev = d
	return d, nil
}

// Home exposes the socket-0 home agent.
func (h *Host) Home() *coherence.HomeAgent { return h.home }

// LLC exposes socket 0's last-level cache.
func (h *Host) LLC() *cache.Cache { return h.llc }

// Store exposes host memory.
func (h *Host) Store() *mem.Store { return h.stor }

// Channels exposes the memory controllers.
func (h *Host) Channels() *mem.Channels { return h.chs }

// AddrMap exposes the system address map.
func (h *Host) AddrMap() *mem.Map { return h.amap }

// Core returns core i, constructing it on first use.
func (h *Host) Core(i int) *Core {
	if h.cores[i] == nil {
		h.cores[i] = newCore(h, i)
	}
	return h.cores[i]
}

// NumCores reports the modeled core count.
func (h *Host) NumCores() int { return len(h.cores) }

// Params exposes the timing model.
func (h *Host) Params() *timing.Params { return h.p }

// ResetTiming returns every timing resource (cores, links, controllers,
// device resources) to idle without touching cache or memory contents — the
// between-repetitions reset of the microbenchmark methodology.
func (h *Host) ResetTiming() {
	h.chs.Reset()
	h.UPI.Reset()
	h.CXLLink.Reset()
	for _, c := range h.cores {
		if c != nil { // never-touched cores are already idle
			c.resetTiming()
		}
	}
	if h.Dev != nil {
		h.Dev.ResetTiming()
	}
	// Line buffers handed out before the reset are out of contract now;
	// rewind the arenas so long-lived hosts don't accumulate slabs.
	h.arena.Reset()
	h.home.ResetArena()
}
