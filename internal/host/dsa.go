package host

import (
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

// DSA models the Data Streaming Accelerator: a host-side copy engine that
// moves data between two host-visible regions — and since CXL.mem exposes
// device memory as host memory, between host DRAM and the CXL device
// (CXL-DSA in Fig. 6). The host CPU pays only the descriptor setup; the
// engine streams independently.
type DSA struct {
	h      *Host
	engine *sim.Resource
}

// NewDSA returns the host's DSA engine.
func (h *Host) NewDSA() *DSA {
	return &DSA{h: h, engine: sim.NewResource("dsa")}
}

// Copy enqueues a copy of size bytes from src to dst at now. It returns the
// host-visible submit completion (descriptor posted) and the transfer
// completion. When functional is true the bytes actually move between the
// backing stores.
func (d *DSA) Copy(src, dst phys.Addr, size int, now sim.Time, functional bool) (submitted, done sim.Time) {
	p := d.h.p
	submitted = now + p.Host.DSASetup
	occ := p.Host.DSAStartup + timing.Streaming(size, p.Host.DSABytesPerSec)
	start := d.engine.Claim(submitted, occ)
	done = start + occ
	if functional {
		buf := make([]byte, size)
		d.read(src, buf)
		d.write(dst, buf)
	}
	return submitted, done
}

func (d *DSA) read(addr phys.Addr, buf []byte) {
	if d.h.amap.IsDevice(addr) {
		d.h.Dev.ReadDevMemDirect(addr, buf)
		return
	}
	d.h.stor.Read(addr, buf)
}

func (d *DSA) write(addr phys.Addr, buf []byte) {
	if d.h.amap.IsDevice(addr) {
		d.h.Dev.WriteDevMemDirect(addr, buf)
		return
	}
	d.h.stor.Write(addr, buf)
}

// ResetTiming returns the engine to idle.
func (d *DSA) ResetTiming() { d.engine.Reset() }
