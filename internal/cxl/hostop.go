package cxl

import "fmt"

// HostOp is a host-CPU memory operation flavor, as used in the paper's H2D
// and emulated-D2H microbenchmarks: demand load (ld), non-temporal load
// (nt-ld), store (st), and non-temporal store (nt-st).
type HostOp uint8

// Host operations.
const (
	Ld HostOp = iota
	NtLd
	St
	NtSt
)

// String names the op as the paper does.
func (o HostOp) String() string {
	switch o {
	case Ld:
		return "ld"
	case NtLd:
		return "nt-ld"
	case St:
		return "st"
	case NtSt:
		return "nt-st"
	default:
		return fmt.Sprintf("HostOp(%d)", uint8(o))
	}
}

// IsWrite reports whether the op stores data.
func (o HostOp) IsWrite() bool { return o == St || o == NtSt }

// IsTemporal reports whether the op uses the regular caching path.
func (o HostOp) IsTemporal() bool { return o == Ld || o == St }

// EquivalentD2H returns the D2H request type the paper pairs with the host
// op when comparing true and emulated D2H accesses (§V-A): nt-ld↔NC-rd,
// ld↔CS-rd, nt-st↔NC-wr, st↔CO-wr.
func (o HostOp) EquivalentD2H() D2HReq {
	switch o {
	case NtLd:
		return NCRead
	case Ld:
		return CSRead
	case NtSt:
		return NCWrite
	case St:
		return COWrite
	default:
		panic(fmt.Sprintf("cxl: unknown host op %d", o))
	}
}
