// Package cxl defines the CXL protocol vocabulary of the model: the three
// protocols (CXL.io, CXL.cache, CXL.mem), the D2H request types a device
// accelerator may attach as cache hints (§IV-A), the CXL.cache/mem opcodes
// each maps to, and device-type capability descriptions (Table I).
package cxl

import "fmt"

// Protocol is one of the three CXL sub-protocols.
type Protocol uint8

// The three CXL protocols (§II-B).
const (
	IO Protocol = 1 << iota
	Cache
	Mem
)

// String names a protocol set.
func (p Protocol) String() string {
	s := ""
	if p&IO != 0 {
		s += "io+"
	}
	if p&Cache != 0 {
		s += "cache+"
	}
	if p&Mem != 0 {
		s += "mem+"
	}
	if s == "" {
		return "none"
	}
	return s[:len(s)-1]
}

// DeviceType enumerates the CXL device types of Table I.
type DeviceType uint8

// Device types.
const (
	// Type1: io+cache — coherent D2H, no host-visible device memory (SNICs).
	Type1 DeviceType = iota + 1
	// Type2: io+cache+mem — coherent D2H, D2D and H2D (accelerators with
	// local memory); the paper's subject.
	Type2
	// Type3: io+mem — H2D/D2D only (memory expanders).
	Type3
)

// Protocols returns the protocol set the device type requires (Table I).
func (t DeviceType) Protocols() Protocol {
	switch t {
	case Type1:
		return IO | Cache
	case Type2:
		return IO | Cache | Mem
	case Type3:
		return IO | Mem
	default:
		return 0
	}
}

// HasDeviceCache reports whether the type implements CXL.cache (a device
// cache kept coherent by hardware).
func (t DeviceType) HasDeviceCache() bool { return t.Protocols()&Cache != 0 }

// HasDeviceMemory reports whether the type exposes device memory to the
// host through CXL.mem.
func (t DeviceType) HasDeviceMemory() bool { return t.Protocols()&Mem != 0 }

// String names the type.
func (t DeviceType) String() string {
	switch t {
	case Type1:
		return "CXL-Type1"
	case Type2:
		return "CXL-Type2"
	case Type3:
		return "CXL-Type3"
	default:
		return fmt.Sprintf("DeviceType(%d)", uint8(t))
	}
}

// D2HReq is the cache hint a device accelerator attaches to a D2H (or D2D)
// request through the CAFU's AXI user signals (§IV-A). The hint selects the
// desired DCOH cache state and therefore the CXL.cache opcode used.
type D2HReq uint8

// D2H request types (Table III).
const (
	// NCP is the write-only non-cacheable push: update HMC, write the line
	// into host LLC, invalidate HMC — unique to CXL Type-2 (§IV-A).
	NCP D2HReq = iota
	// NCRead is a non-cacheable read (RdCurr): no state change, no HMC fill.
	NCRead
	// NCWrite is a non-cacheable write (WrInv): invalidate HMC+LLC copies
	// and write host memory directly.
	NCWrite
	// CORead is a cacheable-owned read (RdOwn): exclusive copy into HMC,
	// host copies invalidated.
	CORead
	// COWrite is a cacheable-owned write: ownership grant, then write into
	// HMC as Modified.
	COWrite
	// CSRead is a cacheable-shared read (RdShared): like NCRead but the line
	// is allocated into HMC in Shared.
	CSRead
)

// String names the request type as the paper does.
func (r D2HReq) String() string {
	switch r {
	case NCP:
		return "NC-P"
	case NCRead:
		return "NC-rd"
	case NCWrite:
		return "NC-wr"
	case CORead:
		return "CO-rd"
	case COWrite:
		return "CO-wr"
	case CSRead:
		return "CS-rd"
	default:
		return fmt.Sprintf("D2HReq(%d)", uint8(r))
	}
}

// IsWrite reports whether the request modifies the line.
func (r D2HReq) IsWrite() bool { return r == NCP || r == NCWrite || r == COWrite }

// IsRead reports whether the request returns data to the accelerator.
func (r D2HReq) IsRead() bool { return r == NCRead || r == CORead || r == CSRead }

// Opcode is a CXL.cache/CXL.mem wire opcode (CXL 3.0 spec naming; the
// subset the model exercises).
type Opcode uint8

// Opcodes.
const (
	// CXL.cache D2H requests.
	OpRdCurr   Opcode = iota // current data, no state change
	OpRdShared               // shared copy
	OpRdOwn                  // exclusive copy
	OpItoMWr                 // invalid-to-modified write push (used by NC-P)
	OpWrInv                  // write-invalidate to memory
	OpCLFlush                // flush request
	// CXL.mem M2S requests.
	OpMemRd
	OpMemWr
	OpMemInv // back-invalidate for bias management
	// Responses.
	OpGO   // global-observation (coherence grant)
	OpData // data return
	OpCmp  // completion
)

// String names the opcode.
func (o Opcode) String() string {
	names := [...]string{
		"RdCurr", "RdShared", "RdOwn", "ItoMWr", "WrInv", "CLFlush",
		"MemRd", "MemWr", "MemInv", "GO", "Data", "Cmp",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// OpcodeFor maps a D2H request hint to the CXL.cache opcode the DCOH
// issues toward the host (Fig. 2).
func OpcodeFor(r D2HReq) Opcode {
	switch r {
	case NCP:
		return OpItoMWr
	case NCRead:
		return OpRdCurr
	case NCWrite:
		return OpWrInv
	case CORead, COWrite:
		return OpRdOwn
	case CSRead:
		return OpRdShared
	default:
		panic(fmt.Sprintf("cxl: unknown D2H request %d", r))
	}
}

// Flit sizes used by the link-occupancy model: CXL flits are 64 B slots; a
// request/control message occupies a header's worth of a slot, a data
// message carries a 64 B line plus header.
const (
	// HeaderBytes approximates the protocol overhead of one request or
	// response message on the wire.
	HeaderBytes = 16
	// DataBytes is one cache line on the wire including its slot header.
	DataBytes = 64 + HeaderBytes
)

// WireBytes returns the payload the request and its response occupy on the
// request and response directions respectively.
func WireBytes(r D2HReq) (req, resp int) {
	if r.IsWrite() {
		return DataBytes, HeaderBytes // data out, GO/Cmp back
	}
	return HeaderBytes, DataBytes // request out, data back
}
