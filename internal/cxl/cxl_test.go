package cxl

import "testing"

func TestDeviceTypeProtocols(t *testing.T) {
	// Table I.
	if Type1.Protocols() != IO|Cache {
		t.Errorf("Type1 protocols = %v", Type1.Protocols())
	}
	if Type2.Protocols() != IO|Cache|Mem {
		t.Errorf("Type2 protocols = %v", Type2.Protocols())
	}
	if Type3.Protocols() != IO|Mem {
		t.Errorf("Type3 protocols = %v", Type3.Protocols())
	}
}

func TestDeviceTypeCapabilities(t *testing.T) {
	if !Type1.HasDeviceCache() || Type1.HasDeviceMemory() {
		t.Error("Type1: cache yes, memory no")
	}
	if !Type2.HasDeviceCache() || !Type2.HasDeviceMemory() {
		t.Error("Type2: cache and memory")
	}
	if Type3.HasDeviceCache() || !Type3.HasDeviceMemory() {
		t.Error("Type3: memory only")
	}
}

func TestProtocolString(t *testing.T) {
	if got := (IO | Cache | Mem).String(); got != "io+cache+mem" {
		t.Errorf("String = %q", got)
	}
	if got := Protocol(0).String(); got != "none" {
		t.Errorf("String = %q", got)
	}
}

func TestDeviceTypeString(t *testing.T) {
	for dt, want := range map[DeviceType]string{
		Type1: "CXL-Type1", Type2: "CXL-Type2", Type3: "CXL-Type3",
	} {
		if dt.String() != want {
			t.Errorf("%v.String() = %q", uint8(dt), dt.String())
		}
	}
}

func TestD2HReqNames(t *testing.T) {
	// The paper's Table III row names.
	for r, want := range map[D2HReq]string{
		NCP: "NC-P", NCRead: "NC-rd", NCWrite: "NC-wr",
		CORead: "CO-rd", COWrite: "CO-wr", CSRead: "CS-rd",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestD2HReqClassification(t *testing.T) {
	writes := []D2HReq{NCP, NCWrite, COWrite}
	reads := []D2HReq{NCRead, CORead, CSRead}
	for _, r := range writes {
		if !r.IsWrite() || r.IsRead() {
			t.Errorf("%v should be write-only", r)
		}
	}
	for _, r := range reads {
		if !r.IsRead() || r.IsWrite() {
			t.Errorf("%v should be read-only", r)
		}
	}
}

func TestOpcodeMapping(t *testing.T) {
	// Fig. 2: RdCurr / RdShared / RdOwn map to NC-rd / CS-rd / CO-*.
	cases := map[D2HReq]Opcode{
		NCRead:  OpRdCurr,
		CSRead:  OpRdShared,
		CORead:  OpRdOwn,
		COWrite: OpRdOwn,
		NCP:     OpItoMWr,
		NCWrite: OpWrInv,
	}
	for r, want := range cases {
		if got := OpcodeFor(r); got != want {
			t.Errorf("OpcodeFor(%v) = %v, want %v", r, got, want)
		}
	}
}

func TestOpcodeForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OpcodeFor(D2HReq(99))
}

func TestOpcodeString(t *testing.T) {
	if OpRdCurr.String() != "RdCurr" || OpGO.String() != "GO" {
		t.Fatal("Opcode names wrong")
	}
	if Opcode(200).String() == "" {
		t.Fatal("unknown opcode should format")
	}
}

func TestWireBytes(t *testing.T) {
	req, resp := WireBytes(NCRead)
	if req != HeaderBytes || resp != DataBytes {
		t.Fatalf("read wire bytes = %d,%d", req, resp)
	}
	req, resp = WireBytes(COWrite)
	if req != DataBytes || resp != HeaderBytes {
		t.Fatalf("write wire bytes = %d,%d", req, resp)
	}
}

func TestAllOpcodeNames(t *testing.T) {
	want := map[Opcode]string{
		OpRdCurr: "RdCurr", OpRdShared: "RdShared", OpRdOwn: "RdOwn",
		OpItoMWr: "ItoMWr", OpWrInv: "WrInv", OpCLFlush: "CLFlush",
		OpMemRd: "MemRd", OpMemWr: "MemWr", OpMemInv: "MemInv",
		OpGO: "GO", OpData: "Data", OpCmp: "Cmp",
	}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), name)
		}
	}
}

func TestHostOpStringsAndTemporality(t *testing.T) {
	for op, want := range map[HostOp]string{Ld: "ld", NtLd: "nt-ld", St: "st", NtSt: "nt-st"} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
	if HostOp(9).String() == "" {
		t.Error("unknown host op should format")
	}
	if !Ld.IsTemporal() || !St.IsTemporal() || NtLd.IsTemporal() || NtSt.IsTemporal() {
		t.Error("IsTemporal wrong")
	}
	if Ld.IsWrite() || NtLd.IsWrite() || !St.IsWrite() || !NtSt.IsWrite() {
		t.Error("IsWrite wrong")
	}
}

func TestEquivalentD2HPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HostOp(99).EquivalentD2H()
}

func TestDeviceTypeUnknowns(t *testing.T) {
	if DeviceType(9).Protocols() != 0 {
		t.Error("unknown type should have no protocols")
	}
	if DeviceType(9).String() == "" {
		t.Error("unknown type should format")
	}
}
