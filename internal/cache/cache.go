// Package cache implements the set-associative coherence caches of the
// model: the host L1/L2/LLC levels, the device's host-memory cache (HMC,
// 4-way 128 KB) and device-memory cache (DMC, direct-mapped 32 KB).
//
// A Cache tracks per-line MESI(+Owned) state and optionally the line's 64
// bytes of data, with true LRU replacement within a set. Coherence *policy*
// (who may invalidate whom, Table III of the paper) lives in the coherence
// and device packages; this package provides the mechanics.
package cache

import (
	"fmt"

	"repro/internal/phys"
)

// State is a cache-line coherence state. The model uses MESI for host
// caches and HMC; DMC additionally uses Owned to reproduce the §V-C H2D
// experiments (lines "in owned" vs "in shared" vs "modified").
type State uint8

// Coherence states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	Owned
)

// String returns the one-letter conventional name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Line is one cache line's bookkeeping. Data is nil in timing-only mode.
type Line struct {
	Tag   phys.Addr // line-aligned address
	State State
	Data  []byte // nil or LineSize bytes
	// lru is the set-local recency counter (higher = more recent).
	lru uint64
}

// Valid reports whether the line holds a translation (state != I).
func (l *Line) Valid() bool { return l != nil && l.State != Invalid }

// Stats counts cache events for reporting.
type Stats struct {
	Hits, Misses, Fills, Evictions, Writebacks, Invalidations uint64
}

// Victim describes a line evicted by Fill: its address, state and data at
// eviction time. Callers write back Modified/Owned victims.
type Victim struct {
	Addr  phys.Addr
	State State
	Data  []byte
}

// Dirty reports whether the victim must be written back.
func (v Victim) Dirty() bool { return v.State == Modified || v.State == Owned }

// chunkShift sizes the lazy set-header blocks: 1<<chunkShift sets per
// chunk. 64 sets keeps the eager outer index 64× smaller than one header
// per set while a chunk header block is only a couple of KB.
const (
	chunkShift = 6
	chunkSets  = 1 << chunkShift
)

// Cache is a set-associative cache with true-LRU replacement.
//
// Line storage is three-level lazy: an eager outer index of 64-set chunks
// (small — one nil slice header per 64 sets), a chunk's per-set header
// block allocated on the first Fill inside it, and each set's lines
// allocated on the set's own first Fill. The paper's caches are large (a
// 60 MB LLC is ~1M Line records) but each experiment rig touches a tiny
// fraction of the sets, and every job of the parallel runner builds its
// own rig — eagerly zeroing the full line array dominated both the
// allocation volume and the construction time of the characterization
// benchmarks, and even one eager slice header per set made cache
// construction the single largest allocation source in BenchmarkInfer.
// Per-set (not per-chunk) line allocation matters for scattered working
// sets: a rig touching thousands of isolated sets must not materialize 64
// sets of lines per touched set. Behavior is identical because missing
// storage and Invalid lines are indistinguishable through the API. Set
// slices never move once allocated, so *Line pointers returned by
// Lookup/Peek/Fill stay valid across later fills.
type Cache struct {
	name    string
	ways    int
	sets    int
	setMask phys.Addr
	chunks   [][][]Line // [chunk][set-in-chunk]lines; inner levels nil until first Fill
	free     []Line     // slab remainder feeding per-set line storage
	slabSets int        // sets per slab; grows geometrically toward chunkSets
	tick     uint64
	stats    Stats
}

// New creates a cache of the given total size in bytes and associativity.
// Size must be a multiple of ways*LineSize and the set count must be a power
// of two (true of every cache in the paper's Table II and §IV).
func New(name string, sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache %s: size %d, ways %d", name, sizeBytes, ways)
	}
	linesTotal := sizeBytes / phys.LineSize
	if linesTotal*phys.LineSize != sizeBytes || linesTotal%ways != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible into %d-way line sets", name, sizeBytes, ways)
	}
	sets := linesTotal / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", name, sets)
	}
	return &Cache{
		name:    name,
		ways:    ways,
		sets:    sets,
		setMask: phys.Addr(sets - 1),
		chunks:  make([][][]Line, (sets+chunkSets-1)>>chunkShift),
	}, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(name string, sizeBytes, ways int) *Cache {
	c, err := New(name, sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// SizeBytes returns the capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * phys.LineSize }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// set returns addr's set for lookup paths: nil when the set has never
// been filled, which reads as all-Invalid.
func (c *Cache) set(addr phys.Addr) []Line {
	idx := int((phys.LineAddr(addr) / phys.LineSize) & c.setMask)
	ch := c.chunks[idx>>chunkShift]
	if ch == nil {
		return nil
	}
	return ch[idx&(chunkSets-1)]
}

// setAlloc returns addr's set for the fill path, allocating its chunk
// header block and line storage on first use.
func (c *Cache) setAlloc(addr phys.Addr) []Line {
	idx := int((phys.LineAddr(addr) / phys.LineSize) & c.setMask)
	ci := idx >> chunkShift
	ch := c.chunks[ci]
	if ch == nil {
		n := chunkSets
		if c.sets < chunkSets {
			n = c.sets
		}
		ch = make([][]Line, n)
		c.chunks[ci] = ch
	}
	si := idx & (chunkSets - 1)
	s := ch[si]
	if s == nil {
		// Carve set storage out of a growing slab: streaming fills touch
		// sets in bulk, and one allocation per set was a dominant slice
		// of the figure benchmarks' allocation profile. Slabs start
		// small and grow geometrically so short-lived rigs that touch a
		// handful of sets don't pay for (and zero) a full chunk's worth.
		if len(c.free) < c.ways {
			if c.slabSets < chunkSets {
				if c.slabSets == 0 {
					c.slabSets = 4
				} else {
					c.slabSets *= 4
				}
			}
			n := c.slabSets
			if c.sets < n {
				n = c.sets
			}
			c.free = make([]Line, n*c.ways)
		}
		s = c.free[:c.ways:c.ways]
		c.free = c.free[c.ways:]
		ch[si] = s
	}
	return s
}

// Lookup finds the line holding addr, updating recency and hit/miss
// statistics. It returns nil on miss.
func (c *Cache) Lookup(addr phys.Addr) *Line {
	tag := phys.LineAddr(addr)
	s := c.set(addr)
	for i := range s {
		if s[i].State != Invalid && s[i].Tag == tag {
			c.tick++
			s[i].lru = c.tick
			c.stats.Hits++
			return &s[i]
		}
	}
	c.stats.Misses++
	return nil
}

// Peek finds the line holding addr without touching recency or statistics —
// for cross-validation in tests and state dumps (the paper's methodology
// cross-validates presence/absence of lines in HMC, DMC and LLC, §V).
func (c *Cache) Peek(addr phys.Addr) *Line {
	tag := phys.LineAddr(addr)
	s := c.set(addr)
	for i := range s {
		if s[i].State != Invalid && s[i].Tag == tag {
			return &s[i]
		}
	}
	return nil
}

// MissRun reports how many consecutive cache lines, starting at addr's line
// and stepping one line at a time, are absent from the cache — i.e. would
// Peek nil — up to max. Like Peek it touches neither recency nor statistics;
// block transfers use it to batch runs of miss-path lines.
func (c *Cache) MissRun(addr phys.Addr, max int) int {
	tag := phys.LineAddr(addr)
	for i := 0; i < max; i++ {
		idx := int((tag / phys.LineSize) & c.setMask)
		if ch := c.chunks[idx>>chunkShift]; ch != nil {
			for j, s := 0, ch[idx&(chunkSets-1)]; j < len(s); j++ {
				if s[j].State != Invalid && s[j].Tag == tag {
					return i
				}
			}
		}
		tag += phys.LineSize
	}
	return max
}

// Fill inserts addr with the given state (and optional data, which is
// copied), evicting the LRU victim if the set is full. It returns the victim
// when one was displaced. Filling a line that is already present updates its
// state and data in place.
func (c *Cache) Fill(addr phys.Addr, st State, data []byte) (Victim, bool) {
	if st == Invalid {
		panic("cache: Fill with Invalid state")
	}
	tag := phys.LineAddr(addr)
	s := c.setAlloc(addr)
	c.tick++
	// Already present: update in place.
	for i := range s {
		if s[i].State != Invalid && s[i].Tag == tag {
			s[i].State = st
			s[i].lru = c.tick
			setData(&s[i], data)
			return Victim{}, false
		}
	}
	c.stats.Fills++
	// Free way?
	for i := range s {
		if s[i].State == Invalid {
			s[i] = Line{Tag: tag, State: st, lru: c.tick}
			setData(&s[i], data)
			return Victim{}, false
		}
	}
	// Evict LRU.
	victim := 0
	for i := 1; i < len(s); i++ {
		if s[i].lru < s[victim].lru {
			victim = i
		}
	}
	v := Victim{Addr: s[victim].Tag, State: s[victim].State, Data: s[victim].Data}
	c.stats.Evictions++
	if v.Dirty() {
		c.stats.Writebacks++
	}
	s[victim] = Line{Tag: tag, State: st, lru: c.tick}
	setData(&s[victim], data)
	return v, true
}

func setData(l *Line, data []byte) {
	if data == nil {
		return
	}
	if len(data) != phys.LineSize {
		panic(fmt.Sprintf("cache: fill data %d bytes, want %d", len(data), phys.LineSize))
	}
	if l.Data == nil {
		l.Data = make([]byte, phys.LineSize)
	}
	copy(l.Data, data)
}

// Invalidate drops addr from the cache, returning its pre-invalidation state
// and data (nil data in timing-only mode). The returned bool reports whether
// the line was present.
func (c *Cache) Invalidate(addr phys.Addr) (State, []byte, bool) {
	tag := phys.LineAddr(addr)
	s := c.set(addr)
	for i := range s {
		if s[i].State != Invalid && s[i].Tag == tag {
			st, data := s[i].State, s[i].Data
			s[i] = Line{}
			c.stats.Invalidations++
			return st, data, true
		}
	}
	return Invalid, nil, false
}

// SetState changes the state of a resident line; it reports whether the line
// was present.
func (c *Cache) SetState(addr phys.Addr, st State) bool {
	l := c.Peek(addr)
	if l == nil {
		return false
	}
	if st == Invalid {
		_, _, ok := c.Invalidate(addr)
		return ok
	}
	l.State = st
	return true
}

// VisitValid calls fn for every valid line. fn must not mutate the cache.
// Only chunks that have ever been filled are visited, so a sparse working
// set scans in time proportional to the lines touched, not the cache
// capacity.
func (c *Cache) VisitValid(fn func(l *Line)) {
	for _, ch := range c.chunks {
		for _, s := range ch {
			for i := range s {
				if s[i].State != Invalid {
					fn(&s[i])
				}
			}
		}
	}
}

// FlushAll invalidates every line, calling writeback for each dirty victim
// (Modified or Owned) before dropping it. writeback may be nil.
func (c *Cache) FlushAll(writeback func(v Victim)) {
	for _, ch := range c.chunks {
		for _, s := range ch {
			for i := range s {
				l := &s[i]
				if l.State == Invalid {
					continue
				}
				if writeback != nil && (l.State == Modified || l.State == Owned) {
					c.stats.Writebacks++
					writeback(Victim{Addr: l.Tag, State: l.State, Data: l.Data})
				}
				c.stats.Invalidations++
				*l = Line{}
			}
		}
	}
}

// FlushRange invalidates all lines inside r (used when host software
// prepares a region for device-bias mode, §IV-B), writing back dirty lines
// through writeback (may be nil).
func (c *Cache) FlushRange(r phys.Range, writeback func(v Victim)) int {
	flushed := 0
	for _, ch := range c.chunks {
		for _, s := range ch {
			for i := range s {
				l := &s[i]
				if l.State == Invalid || !r.Contains(l.Tag) {
					continue
				}
				if writeback != nil && (l.State == Modified || l.State == Owned) {
					c.stats.Writebacks++
					writeback(Victim{Addr: l.Tag, State: l.State, Data: l.Data})
				}
				c.stats.Invalidations++
				*l = Line{}
				flushed++
			}
		}
	}
	return flushed
}

// CountValid returns the number of valid lines (for occupancy checks).
func (c *Cache) CountValid() int {
	n := 0
	for _, ch := range c.chunks {
		for _, s := range ch {
			for i := range s {
				if s[i].State != Invalid {
					n++
				}
			}
		}
	}
	return n
}
