package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/phys"
)

func TestGeometry(t *testing.T) {
	// The paper's HMC: 4-way 128 KB; DMC: direct-mapped 32 KB (§IV).
	hmc := MustNew("hmc", 128<<10, 4)
	if hmc.Sets() != 512 || hmc.Ways() != 4 || hmc.SizeBytes() != 128<<10 {
		t.Fatalf("hmc geometry: sets=%d ways=%d", hmc.Sets(), hmc.Ways())
	}
	dmc := MustNew("dmc", 32<<10, 1)
	if dmc.Sets() != 512 || dmc.Ways() != 1 {
		t.Fatalf("dmc geometry: sets=%d ways=%d", dmc.Sets(), dmc.Ways())
	}
}

func TestNewRejectsBadShapes(t *testing.T) {
	cases := []struct {
		size, ways int
	}{
		{0, 1},
		{-64, 1},
		{64, 0},
		{100, 1},     // not line-divisible
		{3 * 64, 1},  // 3 sets: not a power of two
		{64 * 4, 3},  // lines not divisible by ways
		{64 * 24, 4}, // 6 sets: not a power of two
	}
	for _, c := range cases {
		if _, err := New("bad", c.size, c.ways); err == nil {
			t.Errorf("New(%d, %d) accepted", c.size, c.ways)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("bad", 100, 3)
}

func TestLookupFillBasics(t *testing.T) {
	c := MustNew("c", 4*64, 2) // 2 sets × 2 ways
	if c.Lookup(0x1000) != nil {
		t.Fatal("lookup on empty cache should miss")
	}
	c.Fill(0x1000, Shared, nil)
	l := c.Lookup(0x1007) // same line, different offset
	if l == nil || l.State != Shared || l.Tag != 0x1000 {
		t.Fatalf("lookup after fill: %+v", l)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFillInPlaceUpdate(t *testing.T) {
	c := MustNew("c", 4*64, 2)
	c.Fill(0x40, Shared, nil)
	v, evicted := c.Fill(0x40, Modified, nil)
	if evicted {
		t.Fatalf("in-place update evicted %+v", v)
	}
	if got := c.Peek(0x40).State; got != Modified {
		t.Fatalf("state = %v", got)
	}
	if c.Stats().Fills != 1 {
		t.Fatalf("in-place update should not count as a new fill: %+v", c.Stats())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construction: 1 set × 2 ways; three distinct lines mapping to
	// the same set must evict the least recently used.
	c := MustNew("c", 2*64, 2)
	a, b, d := phys.Addr(0x000), phys.Addr(0x040), phys.Addr(0x080)
	// With 1 set, every line maps to set 0.
	c.Fill(a, Exclusive, nil)
	c.Fill(b, Exclusive, nil)
	c.Lookup(a) // a becomes MRU
	v, evicted := c.Fill(d, Exclusive, nil)
	if !evicted || v.Addr != b {
		t.Fatalf("victim = %+v (evicted=%v), want b evicted", v, evicted)
	}
	if c.Peek(a) == nil || c.Peek(d) == nil || c.Peek(b) != nil {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestEvictionReportsDirtyVictim(t *testing.T) {
	c := MustNew("c", 64, 1) // 1 line
	data := make([]byte, phys.LineSize)
	data[0] = 0xEE
	c.Fill(0x0, Modified, data)
	v, evicted := c.Fill(0x40, Shared, nil)
	if !evicted || !v.Dirty() || v.State != Modified || v.Data[0] != 0xEE {
		t.Fatalf("victim = %+v", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestOwnedVictimIsDirty(t *testing.T) {
	if (Victim{State: Owned}).Dirty() != true {
		t.Fatal("Owned victims must be dirty")
	}
	if (Victim{State: Exclusive}).Dirty() {
		t.Fatal("Exclusive victims are clean")
	}
	if (Victim{State: Shared}).Dirty() {
		t.Fatal("Shared victims are clean")
	}
}

func TestDataCopySemantics(t *testing.T) {
	c := MustNew("c", 64, 1)
	data := make([]byte, phys.LineSize)
	data[5] = 7
	c.Fill(0x0, Modified, data)
	data[5] = 9 // caller mutation must not leak into the cache
	if got := c.Peek(0x0).Data[5]; got != 7 {
		t.Fatalf("cache data aliased caller buffer: %d", got)
	}
}

func TestFillBadDataPanics(t *testing.T) {
	c := MustNew("c", 64, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short data")
		}
	}()
	c.Fill(0, Shared, []byte{1, 2, 3})
}

func TestFillInvalidStatePanics(t *testing.T) {
	c := MustNew("c", 64, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Fill(0, Invalid, nil)
}

func TestInvalidate(t *testing.T) {
	c := MustNew("c", 4*64, 2)
	data := make([]byte, phys.LineSize)
	data[0] = 0x11
	c.Fill(0x80, Modified, data)
	st, d, ok := c.Invalidate(0x80)
	if !ok || st != Modified || d[0] != 0x11 {
		t.Fatalf("invalidate = %v %v %v", st, d, ok)
	}
	if c.Peek(0x80) != nil {
		t.Fatal("line still present")
	}
	if _, _, ok := c.Invalidate(0x80); ok {
		t.Fatal("double invalidate reported present")
	}
}

func TestSetState(t *testing.T) {
	c := MustNew("c", 4*64, 2)
	c.Fill(0x40, Exclusive, nil)
	if !c.SetState(0x40, Shared) {
		t.Fatal("SetState on resident line failed")
	}
	if got := c.Peek(0x40).State; got != Shared {
		t.Fatalf("state = %v", got)
	}
	// SetState to Invalid performs an invalidation.
	if !c.SetState(0x40, Invalid) {
		t.Fatal("SetState(Invalid) failed")
	}
	if c.Peek(0x40) != nil {
		t.Fatal("line survived SetState(Invalid)")
	}
	if c.SetState(0xDEAD00, Modified) {
		t.Fatal("SetState on absent line returned true")
	}
}

func TestPeekDoesNotPerturb(t *testing.T) {
	c := MustNew("c", 2*64, 2)
	c.Fill(0x000, Shared, nil)
	c.Fill(0x040, Shared, nil)
	before := c.Stats()
	c.Peek(0x000)
	c.Peek(0xFFF000)
	if c.Stats() != before {
		t.Fatal("Peek changed statistics")
	}
	// Peek must not refresh LRU: 0x000 stays LRU and gets evicted.
	c.Peek(0x000)
	v, evicted := c.Fill(0x080, Shared, nil)
	if !evicted || v.Addr != 0x000 {
		t.Fatalf("victim = %+v, Peek must not refresh recency", v)
	}
}

func TestFlushAll(t *testing.T) {
	c := MustNew("c", 8*64, 2)
	c.Fill(0x000, Modified, nil)
	c.Fill(0x040, Shared, nil)
	c.Fill(0x080, Owned, nil)
	var wb []phys.Addr
	c.FlushAll(func(v Victim) { wb = append(wb, v.Addr) })
	if c.CountValid() != 0 {
		t.Fatalf("valid lines after flush: %d", c.CountValid())
	}
	if len(wb) != 2 { // Modified + Owned
		t.Fatalf("writebacks = %v", wb)
	}
}

func TestFlushRange(t *testing.T) {
	c := MustNew("c", 16*64, 2) // 8 sets: 0x000/0x200 share a set, 0x100 does not
	c.Fill(0x000, Modified, nil)
	c.Fill(0x100, Modified, nil)
	c.Fill(0x200, Shared, nil)
	r := phys.Range{Base: 0x100, Size: 0x100} // covers 0x100 and 0x1c0
	var wb int
	n := c.FlushRange(r, func(Victim) { wb++ })
	if n != 1 || wb != 1 {
		t.Fatalf("flushed %d lines, %d writebacks", n, wb)
	}
	if c.Peek(0x000) == nil || c.Peek(0x100) != nil || c.Peek(0x200) == nil {
		t.Fatal("wrong lines flushed")
	}
}

func TestVisitValid(t *testing.T) {
	c := MustNew("c", 8*64, 2)
	c.Fill(0x000, Shared, nil)
	c.Fill(0x040, Modified, nil)
	var n int
	c.VisitValid(func(l *Line) { n++ })
	if n != 2 {
		t.Fatalf("visited %d", n)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", Owned: "O",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state should still format")
	}
}

// Property: the cache never holds more valid lines than its capacity, never
// holds two lines with the same tag, and a just-filled line is always
// resident.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew("p", 16*64, 4) // 4 sets × 4 ways
		for op := 0; op < 500; op++ {
			addr := phys.Addr(rng.Intn(64)) * 64
			switch rng.Intn(4) {
			case 0, 1:
				c.Fill(addr, State(1+rng.Intn(4)), nil)
				if c.Peek(addr) == nil {
					return false
				}
			case 2:
				c.Lookup(addr)
			case 3:
				c.Invalidate(addr)
			}
			if c.CountValid() > 16 {
				return false
			}
		}
		// No duplicate tags.
		seen := map[phys.Addr]bool{}
		dup := false
		c.VisitValid(func(l *Line) {
			if seen[l.Tag] {
				dup = true
			}
			seen[l.Tag] = true
		})
		return !dup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with W ways and a working set of exactly W lines in one set,
// repeated round-robin access never misses after the warm-up pass (true LRU
// guarantees this; FIFO or random replacement would not).
func TestTrueLRUNoThrashProperty(t *testing.T) {
	c := MustNew("lru", 4*64, 4) // 1 set × 4 ways
	addrs := []phys.Addr{0x000, 0x040, 0x080, 0x0c0}
	for _, a := range addrs {
		c.Fill(a, Shared, nil)
	}
	c.ResetStats()
	for round := 0; round < 8; round++ {
		for _, a := range addrs {
			if c.Lookup(a) == nil {
				t.Fatalf("round %d: unexpected miss on %v", round, a)
			}
		}
	}
	if c.Stats().Misses != 0 {
		t.Fatalf("misses = %d", c.Stats().Misses)
	}
}

func TestPhysHelpers(t *testing.T) {
	if phys.LineAddr(0x1234) != 0x1200 {
		t.Fatalf("LineAddr = %v", phys.LineAddr(0x1234))
	}
	if phys.PageAddr(0x12345) != 0x12000 {
		t.Fatalf("PageAddr = %v", phys.PageAddr(0x12345))
	}
	if phys.LineOffset(0x1234) != 0x34 {
		t.Fatalf("LineOffset = %v", phys.LineOffset(0x1234))
	}
	r := phys.Range{Base: 0x1000, Size: 0x1000}
	if !r.Contains(0x1000) || !r.Contains(0x1fff) || r.Contains(0x2000) || r.Contains(0xfff) {
		t.Fatal("Range.Contains wrong")
	}
	if r.End() != 0x2000 {
		t.Fatalf("End = %v", r.End())
	}
	o := phys.Range{Base: 0x1800, Size: 0x1000}
	if !r.Overlaps(o) || !o.Overlaps(r) {
		t.Fatal("Overlaps wrong")
	}
	if r.Overlaps(phys.Range{Base: 0x2000, Size: 0x100}) {
		t.Fatal("adjacent ranges must not overlap")
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := MustNew("bench", 1<<20, 16)
	for i := 0; i < 1024; i++ {
		c.Fill(phys.Addr(i*64), Exclusive, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(phys.Addr((i % 1024) * 64))
	}
}

func BenchmarkFillEvict(b *testing.B) {
	c := MustNew("bench", 1<<16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(phys.Addr(i*64), Modified, nil)
	}
}

// TestLazySetAllocation pins the deferred line-storage contract: a fresh
// cache answers every read-path query (Lookup, Peek, Invalidate, the
// whole-cache iterators) without ever materializing a set, and a Fill
// materializes exactly the one set it touches. Sparse rigs rely on this —
// eagerly zeroing a 60 MB LLC per parallel job dominated experiment setup.
func TestLazySetAllocation(t *testing.T) {
	c := MustNew("lazy", 1<<20, 4) // 4096 sets
	if got := testing.AllocsPerRun(10, func() {
		if c.Lookup(0x1000) != nil || c.Peek(0x2000) != nil {
			t.Fatal("phantom line in empty cache")
		}
		if _, _, ok := c.Invalidate(0x3000); ok {
			t.Fatal("invalidate hit in empty cache")
		}
		if c.CountValid() != 0 {
			t.Fatal("valid lines in empty cache")
		}
		c.VisitValid(func(*Line) { t.Fatal("visit in empty cache") })
		c.FlushAll(nil)
	}); got != 0 {
		t.Fatalf("read paths allocated %.1f times on an empty cache", got)
	}

	// Fills land in two distinct sets; reads then see exactly those lines.
	c.Fill(0x0040, Exclusive, nil)
	c.Fill(0x1040, Modified, nil)
	if c.CountValid() != 2 {
		t.Fatalf("CountValid = %d, want 2", c.CountValid())
	}
	if l := c.Lookup(0x0040); l == nil || l.State != Exclusive {
		t.Fatalf("lookup after lazy fill: %+v", l)
	}
	if n := c.FlushRange(phys.Range{Base: 0x1000, Size: 0x100}, nil); n != 1 {
		t.Fatalf("FlushRange flushed %d, want 1", n)
	}
	if c.CountValid() != 1 {
		t.Fatalf("CountValid after flush = %d, want 1", c.CountValid())
	}
}
