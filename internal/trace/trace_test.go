package trace

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

func ev(start, done sim.Time, k Kind, op, where string) Event {
	return Event{Start: start, Done: done, Kind: k, Op: op, Where: where, Addr: 0x1000}
}

func TestBufferRetainsInOrder(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 3; i++ {
		b.Record(ev(sim.Time(i), sim.Time(i+10), D2H, "CS-rd", "LLC"))
	}
	got := b.Events()
	if len(got) != 3 || got[0].Start != 0 || got[2].Start != 2 {
		t.Fatalf("events = %+v", got)
	}
	if b.Total() != 3 {
		t.Fatalf("Total = %d", b.Total())
	}
}

func TestBufferRingEviction(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 7; i++ {
		b.Record(ev(sim.Time(i), sim.Time(i+1), D2D, "NC-wr", "mem"))
	}
	got := b.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d", len(got))
	}
	// Oldest retained is event 4; order chronological.
	if got[0].Start != 4 || got[1].Start != 5 || got[2].Start != 6 {
		t.Fatalf("ring order wrong: %v %v %v", got[0].Start, got[1].Start, got[2].Start)
	}
	if b.Total() != 7 {
		t.Fatalf("Total = %d", b.Total())
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(2)
	b.Record(ev(0, 1, H2D, "ld", "mem"))
	b.Reset()
	if b.Total() != 0 || len(b.Events()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestLatency(t *testing.T) {
	e := ev(100, 350, D2H, "NC-rd", "mem")
	if e.Latency() != 250 {
		t.Fatalf("Latency = %v", e.Latency())
	}
}

func TestWriteCSV(t *testing.T) {
	b := NewBuffer(4)
	b.Record(ev(1000, 2000, D2H, "CS-rd", "LLC"))
	b.Record(ev(3000, 7000, H2D, "nt-st", "mem"))
	var sb strings.Builder
	if err := b.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "start_ns,done_ns,kind,op,addr,where,latency_ns\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "D2H,CS-rd,0x1000,LLC,1.000") {
		t.Fatalf("row missing: %q", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("row count wrong: %q", out)
	}
}

func TestSummarize(t *testing.T) {
	b := NewBuffer(16)
	b.Record(ev(0, 100, D2H, "CS-rd", "LLC"))
	b.Record(ev(0, 300, D2H, "CS-rd", "LLC"))
	b.Record(ev(0, 50, D2D, "NC-wr", "mem"))
	sums := b.Summarize()
	if len(sums) != 2 {
		t.Fatalf("groups = %d", len(sums))
	}
	var cs *Summary
	for i := range sums {
		if sums[i].Op == "CS-rd" {
			cs = &sums[i]
		}
	}
	if cs == nil || cs.Count != 2 || cs.MeanNs != 0.2 {
		t.Fatalf("CS-rd summary = %+v", cs)
	}
	table := FormatSummary(sums)
	if !strings.Contains(table, "CS-rd") || !strings.Contains(table, "mean(ns)") {
		t.Fatalf("table = %q", table)
	}
}

func TestKindString(t *testing.T) {
	if D2H.String() != "D2H" || D2D.String() != "D2D" || H2D.String() != "H2D" {
		t.Fatal("Kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should format")
	}
}

func TestNop(t *testing.T) {
	var n Nop
	n.Record(Event{}) // must not panic
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuffer(0)
}

// TestLockedTracerConcurrent: the Locked wrapper makes a Buffer safe for
// concurrent Record/read — the single-goroutine contract delegated to a
// mutex. Run under -race this is the regression test for the wrapper.
func TestLockedTracerConcurrent(t *testing.T) {
	b := NewBuffer(64)
	lt := Locked(b)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lt.Record(Event{Kind: D2H, Op: "CS-rd", Where: "mem"})
				if i%50 == 0 {
					lt.With(func(tr Tracer) {
						if _, ok := tr.(*Buffer); !ok {
							t.Errorf("With handed %T, want *Buffer", tr)
						}
						_ = tr.(*Buffer).Events()
						_ = tr.(*Buffer).Summarize()
					})
				}
			}
		}(g)
	}
	wg.Wait()
	lt.With(func(tr Tracer) {
		if got := tr.(*Buffer).Total(); got != 800 {
			t.Fatalf("Total = %d, want 800", got)
		}
	})
}
