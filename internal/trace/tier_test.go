package trace

import (
	"strings"
	"testing"

	"repro/internal/phys"
)

func TestSummarizeTiers(t *testing.T) {
	devBase := phys.Addr(1 << 40)
	isDev := func(a phys.Addr) bool { return a >= devBase }
	events := []Event{
		{Kind: D2D, Addr: devBase, Op: "NC-rd"},
		{Kind: D2D, Addr: devBase + 64, Op: "NC-rd"},
		{Kind: H2D, Addr: devBase, Op: "ld"},
		{Kind: D2H, Addr: 0x1000, Op: "CS-rd"},
	}
	rows := SummarizeTiers(events, isDev)
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	// Fixed order: D2H before D2D before H2D.
	if rows[0].Kind != D2H || rows[0].Device || rows[0].Count != 1 {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[1].Kind != D2D || !rows[1].Device || rows[1].Count != 2 || rows[1].Bytes != 128 {
		t.Fatalf("row1 = %+v", rows[1])
	}
	if rows[2].Kind != H2D || !rows[2].Device {
		t.Fatalf("row2 = %+v", rows[2])
	}
	if got := rows[1].Label(); got != "D2D:dev-mem" {
		t.Fatalf("label = %q", got)
	}

	var sb strings.Builder
	WriteTierSummary(&sb, rows)
	out := sb.String()
	for _, want := range []string{"datapath", "D2H:host-mem", "D2D:dev-mem", "128"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeTiersEmpty(t *testing.T) {
	if rows := SummarizeTiers(nil, func(phys.Addr) bool { return false }); len(rows) != 0 {
		t.Fatalf("rows = %+v", rows)
	}
}
