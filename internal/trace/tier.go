package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/phys"
)

// TierTraffic aggregates traced lines by access kind and target region —
// the trace-side view of where a workload's bytes actually moved. Kind
// distinguishes the datapath (D2D near-memory, H2D over CXL.mem, D2H into
// host memory); Device reports whether the line lives in the device
// window.
type TierTraffic struct {
	Kind   Kind
	Device bool
	// Count is traced accesses; Bytes is Count × the line size (every
	// traced event is one line transfer).
	Count uint64
	Bytes uint64
}

// Label names the (kind, region) pair as a tier-ish datapath.
func (t TierTraffic) Label() string {
	region := "host-mem"
	if t.Device {
		region = "dev-mem"
	}
	return fmt.Sprintf("%s:%s", t.Kind, region)
}

// SummarizeTiers aggregates events per (kind, device-region) pair in a
// fixed presentation order (D2H, D2D, H2D; host before device). isDevice
// classifies target addresses, typically mem.RegionDevice.Contains.
func SummarizeTiers(events []Event, isDevice func(phys.Addr) bool) []TierTraffic {
	agg := map[[2]int]*TierTraffic{}
	for _, e := range events {
		dev := isDevice(e.Addr)
		k := [2]int{int(e.Kind), 0}
		if dev {
			k[1] = 1
		}
		t := agg[k]
		if t == nil {
			t = &TierTraffic{Kind: e.Kind, Device: dev}
			agg[k] = t
		}
		t.Count++
		t.Bytes += phys.LineSize
	}
	out := make([]TierTraffic, 0, len(agg))
	for _, t := range agg {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return !out[i].Device && out[j].Device
	})
	return out
}

// WriteTierSummary renders the aggregation as an aligned table.
func WriteTierSummary(w io.Writer, rows []TierTraffic) {
	fmt.Fprintf(w, "%-14s %10s %12s\n", "datapath", "lines", "bytes")
	for _, t := range rows {
		fmt.Fprintf(w, "%-14s %10d %12d\n", t.Label(), t.Count, t.Bytes)
	}
}
