// Package trace records transaction-level events from the simulated
// platform: every D2H/D2D/H2D request with its hint, address, hit
// locations and latency. Traces support protocol debugging (the Fig. 2
// message flows become visible), workload characterization, and CSV export
// for external plotting.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/phys"
	"repro/internal/sim"
)

// Kind classifies a traced access.
type Kind uint8

// Access kinds.
const (
	D2H Kind = iota
	D2D
	H2D
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case D2H:
		return "D2H"
	case D2D:
		return "D2D"
	case H2D:
		return "H2D"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one traced access.
type Event struct {
	// Start and Done bound the access in simulated time.
	Start, Done sim.Time
	// Kind and Op describe the access (Op is the hint/op name, e.g.
	// "CS-rd" or "nt-st").
	Kind Kind
	Op   string
	// Addr is the line address.
	Addr phys.Addr
	// Where records the serving location ("HMC", "DMC", "LLC", "mem").
	Where string
}

// Latency returns the event's duration.
func (e Event) Latency() sim.Time { return e.Done - e.Start }

// Tracer receives events. Implementations must be cheap: the device emits
// one event per request.
type Tracer interface {
	Record(Event)
}

// Buffer is a bounded in-memory tracer: it keeps the most recent Cap
// events (a ring), counting everything it sees.
//
// Buffer is NOT safe for concurrent use: Record, Events, Summarize,
// WriteCSV and Reset must all run on the same goroutine (or under
// external synchronization). That contract matches its use inside a
// single simulation — the engines are single-threaded per System — but
// is silently violated the moment a buffer is shared across goroutines,
// e.g. when a server exposes per-request traces. Wrap it with Locked for
// any cross-goroutine use.
type Buffer struct {
	cap    int
	events []Event
	next   int
	total  uint64
	warm   bool
}

// NewBuffer returns a ring buffer holding up to capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Buffer{cap: capacity, events: make([]Event, 0, capacity)}
}

// Record implements Tracer.
func (b *Buffer) Record(e Event) {
	b.total++
	if len(b.events) < b.cap {
		b.events = append(b.events, e)
		return
	}
	b.warm = true
	b.events[b.next] = e
	b.next = (b.next + 1) % b.cap
}

// Total reports how many events were recorded overall (including evicted
// ones).
func (b *Buffer) Total() uint64 { return b.total }

// Events returns the retained events in chronological order.
func (b *Buffer) Events() []Event {
	if !b.warm {
		out := make([]Event, len(b.events))
		copy(out, b.events)
		return out
	}
	out := make([]Event, 0, b.cap)
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Reset discards all retained events and counters.
func (b *Buffer) Reset() {
	b.events = b.events[:0]
	b.next, b.total, b.warm = 0, 0, false
}

// WriteCSV renders the retained events as CSV with a header row.
func (b *Buffer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "start_ns,done_ns,kind,op,addr,where,latency_ns"); err != nil {
		return err
	}
	for _, e := range b.Events() {
		if _, err := fmt.Fprintf(w, "%.3f,%.3f,%s,%s,%#x,%s,%.3f\n",
			e.Start.Nanoseconds(), e.Done.Nanoseconds(), e.Kind, e.Op,
			uint64(e.Addr), e.Where, e.Latency().Nanoseconds()); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates the retained events per (kind, op, where) triple.
type Summary struct {
	Kind  Kind
	Op    string
	Where string
	Count int
	// MeanNs is the mean latency in nanoseconds.
	MeanNs float64
}

// Summarize groups the retained events.
func (b *Buffer) Summarize() []Summary {
	type key struct {
		k     Kind
		op, w string
	}
	agg := map[key]*Summary{}
	var order []key
	for _, e := range b.Events() {
		k := key{e.Kind, e.Op, e.Where}
		s, ok := agg[k]
		if !ok {
			s = &Summary{Kind: e.Kind, Op: e.Op, Where: e.Where}
			agg[k] = s
			order = append(order, k)
		}
		s.Count++
		s.MeanNs += e.Latency().Nanoseconds()
	}
	out := make([]Summary, 0, len(order))
	for _, k := range order {
		s := agg[k]
		s.MeanNs /= float64(s.Count)
		out = append(out, *s)
	}
	return out
}

// FormatSummary renders summaries as an aligned table.
func FormatSummary(sums []Summary) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %-8s %-6s %8s %12s\n", "kind", "op", "where", "count", "mean(ns)")
	for _, s := range sums {
		fmt.Fprintf(&sb, "%-5s %-8s %-6s %8d %12.2f\n", s.Kind, s.Op, s.Where, s.Count, s.MeanNs)
	}
	return sb.String()
}

// Nop is a Tracer that drops everything (the default when tracing is off).
type Nop struct{}

// Record implements Tracer.
func (Nop) Record(Event) {}

// LockedTracer serializes all access to a wrapped Tracer with a mutex —
// the adapter for sharing a Buffer (or any single-goroutine Tracer)
// across goroutines, e.g. a service exposing per-request traces while
// the simulation still records into them.
type LockedTracer struct {
	mu sync.Mutex
	t  Tracer
}

// Locked wraps t so Record and With are safe to call concurrently.
func Locked(t Tracer) *LockedTracer { return &LockedTracer{t: t} }

// Record implements Tracer under the lock.
func (l *LockedTracer) Record(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.t.Record(e)
}

// With runs fn with exclusive access to the wrapped tracer — the safe
// window for reads like Buffer.Events, Summarize or WriteCSV. fn must
// not retain the tracer (or interior pointers such as Events' backing
// array of a future Record) past its return.
func (l *LockedTracer) With(fn func(Tracer)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fn(l.t)
}
