package stress

// Shrink reduces a failing program to a (1-)minimal reproducer with ddmin
// delta debugging: it partitions the op list into chunks, tries removing
// each chunk (and each chunk's complement), keeps any subset that still
// fails, and refines the granularity until no single chunk can be removed.
// The returned program preserves the original config, seed and fault, so it
// replays deterministically. Shrink returns the input unchanged if the
// program does not actually fail.
func Shrink(p *Program) *Program {
	fails := func(ops []Op) bool {
		q := &Program{Config: p.Config, Seed: p.Seed, Fault: p.Fault, Ops: ops}
		return Execute(q) != nil
	}
	if !fails(p.Ops) {
		return p
	}
	ops := ddmin(p.Ops, fails)
	return &Program{Config: p.Config, Seed: p.Seed, Fault: p.Fault, Ops: ops}
}

// ddmin is the classic Zeller/Hildebrandt minimizing delta debugger over op
// sequences.
func ddmin(ops []Op, fails func([]Op) bool) []Op {
	n := 2
	for len(ops) >= 2 {
		chunks := split(ops, n)
		reduced := false
		// Try each chunk alone.
		for _, c := range chunks {
			if fails(c) {
				ops, n, reduced = c, 2, true
				break
			}
		}
		if reduced {
			continue
		}
		// Try each complement.
		if n > 2 {
			for i := range chunks {
				comp := complement(chunks, i)
				if fails(comp) {
					ops, n, reduced = comp, max(n-1, 2), true
					break
				}
			}
		}
		if reduced {
			continue
		}
		// Refine granularity.
		if n >= len(ops) {
			break
		}
		n = min(2*n, len(ops))
	}
	return ops
}

// split partitions ops into n nearly equal contiguous chunks.
func split(ops []Op, n int) [][]Op {
	chunks := make([][]Op, 0, n)
	size := len(ops) / n
	rem := len(ops) % n
	start := 0
	for i := 0; i < n; i++ {
		end := start + size
		if i < rem {
			end++
		}
		if end > start {
			chunks = append(chunks, ops[start:end])
		}
		start = end
	}
	return chunks
}

// complement concatenates every chunk except chunk i.
func complement(chunks [][]Op, i int) []Op {
	var out []Op
	for j, c := range chunks {
		if j != i {
			out = append(out, c...)
		}
	}
	return out
}
