package stress

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/device"
)

// replayMagic is the first line of a replay file.
const replayMagic = "cxlfuzz v1"

// WriteReplay renders the program in the textual replay format:
//
//	cxlfuzz v1
//	config t2-hostbias
//	seed 42
//	fault none
//	op d2h CS-rd 0 12 0 host host 0x5a
//	...
//
// The format round-trips through ReadReplay and is stable, so reproducers
// can be checked in.
func WriteReplay(w io.Writer, p *Program) error {
	if _, err := fmt.Fprintf(w, "%s\nconfig %s\nseed %d\nfault %s\n",
		replayMagic, p.Config, p.Seed, p.Fault); err != nil {
		return err
	}
	for _, o := range p.Ops {
		if _, err := fmt.Fprintf(w, "op %s\n", o); err != nil {
			return err
		}
	}
	return nil
}

// ReadReplay parses a replay file.
func ReadReplay(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}
	s, ok := next()
	if !ok || s != replayMagic {
		return nil, fmt.Errorf("stress: replay line %d: want header %q", line, replayMagic)
	}
	p := &Program{}
	for {
		s, ok = next()
		if !ok {
			break
		}
		fields := strings.Fields(s)
		switch fields[0] {
		case "config":
			if len(fields) != 2 {
				return nil, fmt.Errorf("stress: replay line %d: bad config line", line)
			}
			p.Config = fields[1]
		case "seed":
			if len(fields) != 2 {
				return nil, fmt.Errorf("stress: replay line %d: bad seed line", line)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("stress: replay line %d: %v", line, err)
			}
			p.Seed = v
		case "fault":
			if len(fields) != 2 {
				return nil, fmt.Errorf("stress: replay line %d: bad fault line", line)
			}
			k, err := device.ParseFault(fields[1])
			if err != nil {
				return nil, fmt.Errorf("stress: replay line %d: %v", line, err)
			}
			p.Fault = k
		case "op":
			o, err := parseOp(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("stress: replay line %d: %v", line, err)
			}
			p.Ops = append(p.Ops, o)
		default:
			return nil, fmt.Errorf("stress: replay line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Config == "" {
		return nil, fmt.Errorf("stress: replay file has no config line")
	}
	return p, nil
}

// ReplayString renders the program as a replay-file string.
func ReplayString(p *Program) string {
	var sb strings.Builder
	if err := WriteReplay(&sb, p); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return sb.String()
}
