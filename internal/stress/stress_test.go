package stress

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/device"
)

// TestFuzzSmoke is the acceptance gate: across the Type-2 host-bias,
// Type-2 device-bias and Type-3 topologies it executes well over 5,000
// randomly generated ops with every invariant asserted after each one, and
// requires zero violations.
func TestFuzzSmoke(t *testing.T) {
	opsPerRun := 700
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		opsPerRun, seeds = 400, seeds[:2]
	}
	total := 0
	for _, name := range []string{"t2-hostbias", "t2-devbias", "t3"} {
		cfg, err := ConfigByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range seeds {
			p := Generate(cfg, seed, opsPerRun)
			if f := Execute(p); f != nil {
				t.Errorf("%s seed %d: %v", name, seed, f)
			}
			total += opsPerRun
		}
	}
	if !testing.Short() && total < 5000 {
		t.Fatalf("smoke executed only %d ops, want >= 5000", total)
	}
	t.Logf("executed %d ops with zero violations", total)
}

// TestFuzzSmokeAllConfigs gives the remaining topologies (multi-slice
// Type-2, Type-1 SNIC) a lighter pass.
func TestFuzzSmokeAllConfigs(t *testing.T) {
	for _, cfg := range Configs() {
		p := Generate(cfg, 7, 300)
		if f := Execute(p); f != nil {
			t.Errorf("%s: %v", cfg.Name, f)
		}
	}
}

// TestFuzzSoak is the long-mode soak entry: hours of random programs across
// every topology. Gated behind an environment variable so tier-1 test runs
// stay fast; run with:
//
//	CXLFUZZ_SOAK=1 go test ./internal/stress -run TestFuzzSoak -timeout 0
func TestFuzzSoak(t *testing.T) {
	if os.Getenv("CXLFUZZ_SOAK") == "" {
		t.Skip("set CXLFUZZ_SOAK=1 to run the soak")
	}
	for _, cfg := range Configs() {
		for seed := int64(0); seed < 200; seed++ {
			p := Generate(cfg, seed, 5000)
			if f := Execute(p); f != nil {
				t.Fatalf("%s seed %d: %v", cfg.Name, seed, f)
			}
		}
	}
}

// TestDeterministicReplay requires that executing the same (config, seed)
// twice observes the identical program and identical outcome, and that a
// program survives a replay-file round trip bit-for-bit.
func TestDeterministicReplay(t *testing.T) {
	cfg, _ := ConfigByName("t2-hostbias")
	a := Generate(cfg, 99, 200)
	b := Generate(cfg, 99, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (config, seed) generated different programs")
	}
	if f := Execute(a); f != nil {
		t.Fatalf("unexpected failure: %v", f)
	}

	var buf bytes.Buffer
	if err := WriteReplay(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReplay(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatal("replay round trip changed the program")
	}
}

// findFailingProgram scans seeds until the planted fault trips, so the test
// does not depend on one magic seed surviving generator changes.
func findFailingProgram(t *testing.T, cfgName string, fault device.FaultKind) *Program {
	t.Helper()
	cfg, err := ConfigByName(cfgName)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 50; seed++ {
		p := Generate(cfg, seed, 300)
		p.Fault = fault
		if Execute(p) != nil {
			return p
		}
	}
	t.Fatalf("fault %v never fired in 50 seeds", fault)
	return nil
}

// TestInjectedBugCaughtAndShrunk is the second acceptance gate: each
// deliberately planted coherence bug must be caught by the invariant suite
// and shrink to a reproducer of at most 20 ops that still fails and
// round-trips through the replay format.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	for _, fault := range []device.FaultKind{device.FaultDropDirectory, device.FaultStaleNCWrite} {
		t.Run(fault.String(), func(t *testing.T) {
			p := findFailingProgram(t, "t2-hostbias", fault)
			min := Shrink(p)
			if len(min.Ops) > 20 {
				t.Fatalf("shrunk reproducer has %d ops, want <= 20", len(min.Ops))
			}
			f := Execute(min)
			if f == nil {
				t.Fatal("shrunk program no longer fails")
			}
			t.Logf("%v: %d ops -> %d ops: %v", fault, len(p.Ops), len(min.Ops), f)

			// The reproducer must replay to the same failure through the
			// text format.
			back, err := ReadReplay(strings.NewReader(ReplayString(min)))
			if err != nil {
				t.Fatal(err)
			}
			f2 := Execute(back)
			if f2 == nil {
				t.Fatal("replayed reproducer no longer fails")
			}
			if f.Index != f2.Index || f.Err.Error() != f2.Err.Error() {
				t.Fatalf("replay diverged: %v vs %v", f, f2)
			}
		})
	}
}

// TestEmitArtifacts checks the failure artifacts: the generated Go test
// compiles-by-inspection (header, embedded replay) and the trace log
// contains the reproducer's transactions.
func TestEmitArtifacts(t *testing.T) {
	p := findFailingProgram(t, "t2-hostbias", device.FaultDropDirectory)
	min := Shrink(p)

	var src bytes.Buffer
	if err := WriteReproTest(&src, min, "TestRepro"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package stress", "func TestRepro(t *testing.T)", replayMagic} {
		if !strings.Contains(src.String(), want) {
			t.Errorf("emitted test missing %q", want)
		}
	}

	buf, f := CaptureTrace(min, 4096)
	if f == nil {
		t.Fatal("traced replay no longer fails")
	}
	if buf.Total() == 0 {
		t.Fatal("trace log is empty")
	}
	var csv bytes.Buffer
	if err := buf.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "start_ns,") {
		t.Fatal("trace CSV missing header")
	}
}

// TestShrinkIsNoOpOnPassingProgram guards the shrinker contract: a clean
// program comes back unchanged.
func TestShrinkIsNoOpOnPassingProgram(t *testing.T) {
	cfg, _ := ConfigByName("t3")
	p := Generate(cfg, 5, 50)
	if got := Shrink(p); !reflect.DeepEqual(got, p) {
		t.Fatal("Shrink modified a passing program")
	}
}

// TestConfigValidation exercises the topology guard rails.
func TestConfigValidation(t *testing.T) {
	if _, err := ConfigByName("pcie"); err == nil {
		t.Fatal("pcie personality must not be fuzzable: no coherent surface")
	}
	cfg, _ := ConfigByName("t3")
	if cfg.Weights.D2H != 0 || cfg.Weights.D2D != 0 {
		t.Fatal("Type-3 config kept CXL.cache op classes")
	}
	cfg, _ = ConfigByName("t1-snic")
	if cfg.Weights.HostDev != 0 || cfg.DevLines != 0 {
		t.Fatal("Type-1 config kept device-memory op classes")
	}
	bad := Config{Name: "x", Type: 2, Slices: 9, HostLines: 16, Cores: 1,
		Weights: Weights{Host: 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("slice count 9 accepted")
	}
}
