// Package stress is the randomized coherence-fuzzing harness: it generates
// weighted random programs over the platform's full operation vocabulary
// (host ld/nt-ld/st/nt-st, CLFLUSH/CLDEMOTE, device NC-P/NC/CO/CS reads and
// writes on both the D2H and D2D paths, bias-table flips, DSA copies, and
// Fig. 7-style zswap/ksm offload steps), executes them against configurable
// topologies, and asserts the full invariant suite after every operation:
// check.Coherence state cross-validation, the data-value oracle, monotonic
// simulated time, and resource-utilization sanity.
//
// Runs are identified by (config, seed) and are deterministically
// replayable. On failure the harness shrinks the program to a minimal
// reproducer with delta debugging and can emit it as a standalone Go test
// plus a trace-package event log.
package stress

import (
	"fmt"

	"repro/internal/cxl"
)

// Weights biases the generator toward operation classes. A zero weight
// removes the class from the vocabulary; classes a topology cannot express
// (e.g. D2D on Type-3) are force-zeroed by Validate.
type Weights struct {
	Host      int // host core ld/nt-ld/st/nt-st on host memory
	HostDev   int // host core ld/nt-ld/st/nt-st on device memory (CXL.mem H2D)
	D2H       int // device D2H with a random hint on host memory
	D2D       int // device D2D with a random hint on device memory
	CLFlush   int // host CLFLUSH of a host or device line
	CLDemote  int // host CLDEMOTE of a host line into LLC
	Bias      int // device-bias enter/exit of a device line (§IV-B)
	DSA       int // DSA copy between two host-visible lines
	ZswapStep int // Fig. 7 zswap offload step: D2H pulls, D2D zpool write, NC-P result
	KsmStep   int // Fig. 7 ksm offload step: D2H pulls, compare, NC-P verdict
}

func (w Weights) total() int {
	return w.Host + w.HostDev + w.D2H + w.D2D + w.CLFlush + w.CLDemote +
		w.Bias + w.DSA + w.ZswapStep + w.KsmStep
}

// Config describes one fuzzing topology: the device personality, slice
// count, cache geometry (deliberately tiny so evictions and conflicts are
// frequent), the address pool sizes, and the op-class weights.
type Config struct {
	// Name identifies the topology in replay files and CLI flags.
	Name string
	// Type is the device personality under test.
	Type cxl.DeviceType
	// Slices is the DCOH slice count (1–4; >1 only for Type-2).
	Slices int
	// HostLines / DevLines size the host- and device-memory line pools the
	// generator draws addresses from.
	HostLines, DevLines int
	// DeviceBiasStart puts the first half of the device-line pool in
	// device-bias mode before the program runs (§IV-B).
	DeviceBiasStart bool
	// Cache geometry: small on purpose, to force evictions.
	LLCBytes, LLCWays int
	HMCBytes, HMCWays int
	DMCBytes, DMCWays int
	// Cores is the host core count the generator spreads ops across.
	Cores int
	// Weights is the op-class mix.
	Weights Weights
}

// Validate normalizes the config: it zeroes weights for op classes the
// personality cannot express and reports structural errors.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("stress: config needs a name")
	}
	if c.Slices < 1 || c.Slices > 4 {
		return fmt.Errorf("stress: %s: slice count %d out of range [1,4]", c.Name, c.Slices)
	}
	if c.Slices > 1 && c.Type != cxl.Type2 {
		return fmt.Errorf("stress: %s: multi-slice requires Type-2", c.Name)
	}
	if c.Cores < 1 {
		return fmt.Errorf("stress: %s: need at least one core", c.Name)
	}
	if c.HostLines < c.Slices {
		return fmt.Errorf("stress: %s: host line pool smaller than slice count", c.Name)
	}
	if !c.Type.HasDeviceCache() {
		c.Weights.D2H, c.Weights.D2D = 0, 0
		c.Weights.ZswapStep, c.Weights.KsmStep = 0, 0
	}
	if !c.Type.HasDeviceMemory() {
		c.Weights.HostDev, c.Weights.D2D, c.Weights.Bias = 0, 0, 0
		c.Weights.ZswapStep = 0
		c.DevLines = 0
		c.DeviceBiasStart = false
	}
	if c.Type != cxl.Type2 {
		// D2D cache hints and bias management are Type-2 capabilities.
		c.Weights.D2D, c.Weights.Bias = 0, 0
	}
	if c.Slices > 1 {
		// The DSA engine and the host writeback path resolve device memory
		// through slice 0 only; see run.go for the slice-ownership rules.
		c.Weights.DSA = 0
	}
	if c.DevLines == 0 {
		c.Weights.HostDev, c.Weights.D2D, c.Weights.Bias, c.Weights.ZswapStep = 0, 0, 0, 0
	}
	if c.Weights.total() == 0 {
		return fmt.Errorf("stress: %s: empty op vocabulary", c.Name)
	}
	return nil
}

// defaultGeometry fills in the small-cache geometry shared by the named
// configs.
func defaultGeometry(c Config) Config {
	if c.LLCBytes == 0 {
		c.LLCBytes, c.LLCWays = 8<<10, 4
	}
	if c.HMCBytes == 0 {
		c.HMCBytes, c.HMCWays = 2<<10, 2
	}
	if c.DMCBytes == 0 {
		c.DMCBytes, c.DMCWays = 1<<10, 1
	}
	if c.Cores == 0 {
		c.Cores = 3
	}
	if c.HostLines == 0 {
		c.HostLines = 96
	}
	if c.DevLines == 0 && c.Type.HasDeviceMemory() {
		c.DevLines = 48
	}
	return c
}

// Configs returns the named fuzzing topologies: the three Type-2 shapes
// (host-bias, device-bias, multi-slice), the Type-3 memory expander, and
// the Type-1 SNIC. A plain PCIe personality exposes no coherent surface to
// fuzz — DMA through the pcie package never touches LLC/HMC/DMC state — so
// it has no entry here.
func Configs() []Config {
	t2 := Weights{Host: 20, HostDev: 12, D2H: 25, D2D: 18, CLFlush: 6,
		CLDemote: 5, Bias: 4, DSA: 4, ZswapStep: 3, KsmStep: 3}
	cfgs := []Config{
		{Name: "t2-hostbias", Type: cxl.Type2, Slices: 1, Weights: t2},
		{Name: "t2-devbias", Type: cxl.Type2, Slices: 1, DeviceBiasStart: true,
			Weights: func() Weights { w := t2; w.Bias = 12; return w }()},
		{Name: "t2-slices", Type: cxl.Type2, Slices: 4, Weights: t2},
		{Name: "t3", Type: cxl.Type3, Slices: 1,
			Weights: Weights{Host: 25, HostDev: 25, CLFlush: 8, CLDemote: 6, DSA: 6}},
		{Name: "t1-snic", Type: cxl.Type1, Slices: 1,
			Weights: Weights{Host: 25, D2H: 30, CLFlush: 8, CLDemote: 6, DSA: 5, KsmStep: 4}},
	}
	for i := range cfgs {
		cfgs[i] = defaultGeometry(cfgs[i])
		if err := cfgs[i].Validate(); err != nil {
			panic(err)
		}
	}
	return cfgs
}

// ConfigByName resolves one of the named topologies.
func ConfigByName(name string) (Config, error) {
	for _, c := range Configs() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("stress: unknown config %q", name)
}
