package stress

import (
	"fmt"
	"strconv"

	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/phys"
)

// OpKind classifies one fuzzed operation.
type OpKind uint8

// Operation kinds. The sub-operation (host op flavor or D2H hint) rides in
// Op.Host / Op.Req.
const (
	// OpHost is a host core ld/nt-ld/st/nt-st; Dev selects the target
	// region (host DRAM vs the CXL.mem device window).
	OpHost OpKind = iota
	// OpD2H is a device read/write of host memory with a cache hint.
	OpD2H
	// OpD2D is a device read/write of device memory with a cache hint.
	OpD2D
	// OpCLFlush flushes one line out of the host hierarchy.
	OpCLFlush
	// OpCLDemote demotes one host line into LLC.
	OpCLDemote
	// OpBiasEnter flips one device line into device-bias mode.
	OpBiasEnter
	// OpBiasExit returns one device line to host-bias mode.
	OpBiasExit
	// OpDSACopy copies one line between two host-visible addresses with the
	// DSA engine (caches flushed around the copy, as software must).
	OpDSACopy
	// OpZswapStep is one Fig. 7 zswap offload step: the device pulls two
	// host lines with NC-rd, "compresses" them, NC-writes the result into a
	// device-memory zpool line and NC-Ps a completion record into host LLC.
	OpZswapStep
	// OpKsmStep is one Fig. 7 ksm offload step: the device pulls two host
	// lines with NC-rd, compares them, and NC-Ps the verdict into host LLC.
	OpKsmStep
)

var opKindNames = map[OpKind]string{
	OpHost: "host", OpD2H: "d2h", OpD2D: "d2d", OpCLFlush: "clflush",
	OpCLDemote: "cldemote", OpBiasEnter: "bias-enter", OpBiasExit: "bias-exit",
	OpDSACopy: "dsa", OpZswapStep: "zswap-step", OpKsmStep: "ksm-step",
}

// String names the kind.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

func parseOpKind(s string) (OpKind, error) {
	for k, n := range opKindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("stress: unknown op kind %q", s)
}

// Op is one operation of a fuzzed program. Lines are pool indices, resolved
// to physical addresses by the runner; Data seeds the 64-byte payload.
type Op struct {
	Kind OpKind
	// Host is the core op flavor for OpHost.
	Host cxl.HostOp
	// Req is the cache hint for OpD2H / OpD2D.
	Req cxl.D2HReq
	// Core is the issuing host core for host-side ops.
	Core int
	// Line is the primary line-pool index (host pool or device pool,
	// depending on the kind). Line2 is the secondary index where a kind
	// needs one (DSA destination, offload-step source pair / zpool slot).
	Line, Line2 int
	// Dev marks host-side ops (OpHost, OpCLFlush, OpDSACopy endpoints)
	// that target the device-memory window instead of host DRAM.
	Dev bool
	// Dev2 marks the DSA destination region.
	Dev2 bool
	// Data seeds the payload pattern for writes.
	Data byte
}

// String renders the op in the replay-file format: space-separated
// "kind sub core line line2 region region2 data".
func (o Op) String() string {
	sub := "-"
	switch o.Kind {
	case OpHost:
		sub = o.Host.String()
	case OpD2H, OpD2D:
		sub = o.Req.String()
	}
	return fmt.Sprintf("%s %s %d %d %d %s %s %#02x",
		o.Kind, sub, o.Core, o.Line, o.Line2, regionName(o.Dev), regionName(o.Dev2), o.Data)
}

func regionName(dev bool) string {
	if dev {
		return "dev"
	}
	return "host"
}

func parseRegion(s string) (bool, error) {
	switch s {
	case "dev":
		return true, nil
	case "host":
		return false, nil
	}
	return false, fmt.Errorf("stress: unknown region %q", s)
}

// parseOp is the inverse of Op.String.
func parseOp(fields []string) (Op, error) {
	if len(fields) != 8 {
		return Op{}, fmt.Errorf("stress: op line needs 8 fields, got %d", len(fields))
	}
	var o Op
	var err error
	if o.Kind, err = parseOpKind(fields[0]); err != nil {
		return Op{}, err
	}
	switch o.Kind {
	case OpHost:
		if o.Host, err = parseHostOp(fields[1]); err != nil {
			return Op{}, err
		}
	case OpD2H, OpD2D:
		if o.Req, err = parseD2HReq(fields[1]); err != nil {
			return Op{}, err
		}
	default:
		if fields[1] != "-" {
			return Op{}, fmt.Errorf("stress: op %s takes no sub-op, got %q", o.Kind, fields[1])
		}
	}
	if o.Core, err = strconv.Atoi(fields[2]); err != nil {
		return Op{}, fmt.Errorf("stress: bad core %q", fields[2])
	}
	if o.Line, err = strconv.Atoi(fields[3]); err != nil {
		return Op{}, fmt.Errorf("stress: bad line %q", fields[3])
	}
	if o.Line2, err = strconv.Atoi(fields[4]); err != nil {
		return Op{}, fmt.Errorf("stress: bad line2 %q", fields[4])
	}
	if o.Dev, err = parseRegion(fields[5]); err != nil {
		return Op{}, err
	}
	if o.Dev2, err = parseRegion(fields[6]); err != nil {
		return Op{}, err
	}
	data, err := strconv.ParseUint(fields[7], 0, 8)
	if err != nil {
		return Op{}, fmt.Errorf("stress: bad data byte %q", fields[7])
	}
	o.Data = byte(data)
	return o, nil
}

func parseHostOp(s string) (cxl.HostOp, error) {
	for _, op := range []cxl.HostOp{cxl.Ld, cxl.NtLd, cxl.St, cxl.NtSt} {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("stress: unknown host op %q", s)
}

func parseD2HReq(s string) (cxl.D2HReq, error) {
	for _, r := range []cxl.D2HReq{cxl.NCP, cxl.NCRead, cxl.NCWrite, cxl.CORead, cxl.COWrite, cxl.CSRead} {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("stress: unknown D2H hint %q", s)
}

// Program is one replayable fuzzing run: a named config, the generator
// seed, an optional planted fault, and the operation list.
type Program struct {
	Config string
	Seed   int64
	Fault  device.FaultKind
	Ops    []Op
}

// payload expands an op's data seed into a full deterministic 64-byte line.
func payload(data byte, line int) []byte {
	buf := make([]byte, phys.LineSize)
	for i := range buf {
		buf[i] = data ^ byte(i*7) ^ byte(line*31)
	}
	return buf
}

// hostLineAddr maps a host-pool index to its physical line address.
func hostLineAddr(i int) phys.Addr {
	return mem.RegionHost0.Base + phys.Addr(i*phys.LineSize)
}

// devLineAddr maps a device-pool index to its physical line address.
func devLineAddr(i int) phys.Addr {
	return mem.RegionDevice.Base + phys.Addr(i*phys.LineSize)
}

// addrOf resolves a pool index against a region selector.
func addrOf(i int, dev bool) phys.Addr {
	if dev {
		return devLineAddr(i)
	}
	return hostLineAddr(i)
}
