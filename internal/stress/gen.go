package stress

import (
	"math/rand"

	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/rng"
)

// Generate builds an n-op weighted random program for a topology. The same
// (config, seed, n) always yields the same program; replaying it yields the
// same simulation, byte for byte.
func Generate(cfg Config, seed int64, n int) *Program {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := rng.New(seed)
	p := &Program{Config: cfg.Name, Seed: seed, Fault: device.FaultNone, Ops: make([]Op, 0, n)}
	for i := 0; i < n; i++ {
		p.Ops = append(p.Ops, genOp(cfg, r))
	}
	return p
}

var hostOps = []cxl.HostOp{cxl.Ld, cxl.NtLd, cxl.St, cxl.NtSt}
var d2hReqs = []cxl.D2HReq{cxl.NCP, cxl.NCRead, cxl.NCWrite, cxl.CORead, cxl.COWrite, cxl.CSRead}
var d2dReqs = []cxl.D2HReq{cxl.NCRead, cxl.NCWrite, cxl.CORead, cxl.COWrite, cxl.CSRead}

func genOp(cfg Config, r *rand.Rand) Op {
	w := cfg.Weights
	pick := r.Intn(w.total())
	o := Op{Core: r.Intn(cfg.Cores), Data: byte(r.Intn(256))}
	take := func(weight int) bool {
		if pick < weight {
			return true
		}
		pick -= weight
		return false
	}
	switch {
	case take(w.Host):
		o.Kind, o.Host = OpHost, hostOps[r.Intn(len(hostOps))]
		o.Line = hostIdxAligned(cfg, r)
	case take(w.HostDev):
		o.Kind, o.Host, o.Dev = OpHost, hostOps[r.Intn(len(hostOps))], true
		o.Line = devIdxAligned(cfg, r)
	case take(w.D2H):
		o.Kind, o.Req = OpD2H, d2hReqs[r.Intn(len(d2hReqs))]
		o.Line = r.Intn(cfg.HostLines)
	case take(w.D2D):
		o.Kind, o.Req = OpD2D, d2dReqs[r.Intn(len(d2dReqs))]
		o.Line, o.Dev = r.Intn(cfg.DevLines), true
	case take(w.CLFlush):
		o.Kind = OpCLFlush
		if cfg.DevLines > 0 && r.Intn(3) == 0 {
			o.Line, o.Dev = devIdxAligned(cfg, r), true
		} else {
			o.Line = hostIdxAligned(cfg, r)
		}
	case take(w.CLDemote):
		o.Kind, o.Line = OpCLDemote, r.Intn(cfg.HostLines)
	case take(w.Bias):
		o.Kind, o.Dev = OpBiasEnter, true
		if r.Intn(2) == 0 {
			o.Kind = OpBiasExit
		}
		o.Line = r.Intn(cfg.DevLines)
	case take(w.DSA):
		o.Kind = OpDSACopy
		o.Dev = cfg.DevLines > 0 && r.Intn(2) == 0
		o.Dev2 = cfg.DevLines > 0 && r.Intn(2) == 0
		o.Line = idxFor(cfg, r, o.Dev)
		o.Line2 = idxFor(cfg, r, o.Dev2)
	case take(w.ZswapStep):
		o.Kind = OpZswapStep
		o.Line = r.Intn(cfg.HostLines)
		o.Line2 = r.Intn(cfg.DevLines)
	default:
		o.Kind = OpKsmStep
		o.Line = r.Intn(cfg.HostLines)
		o.Line2 = r.Intn(cfg.HostLines)
	}
	return o
}

// hostIdxAligned picks a host-pool index a host core may touch: any line in
// single-slice configs, slice-0-owned lines under multi-slice interleaving.
func hostIdxAligned(cfg Config, r *rand.Rand) int {
	if cfg.Slices > 1 {
		return r.Intn(cfg.HostLines/cfg.Slices) * cfg.Slices
	}
	return r.Intn(cfg.HostLines)
}

// devIdxAligned is hostIdxAligned for the device pool.
func devIdxAligned(cfg Config, r *rand.Rand) int {
	if cfg.Slices > 1 {
		return r.Intn(cfg.DevLines/cfg.Slices) * cfg.Slices
	}
	return r.Intn(cfg.DevLines)
}

func idxFor(cfg Config, r *rand.Rand, dev bool) int {
	if dev {
		return devIdxAligned(cfg, r)
	}
	return hostIdxAligned(cfg, r)
}
