package stress

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/cxl"
	"repro/internal/device"
	"repro/internal/host"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/trace"
)

// Failure reports the first invariant violation of a run.
type Failure struct {
	// Index is the op index that violated an invariant (-1 for setup or the
	// final data-consistency sweep).
	Index int
	// Op is the violating operation (zero for Index == -1).
	Op Op
	// Err is the violated invariant.
	Err error
}

// Error renders the failure.
func (f *Failure) Error() string {
	if f.Index < 0 {
		return fmt.Sprintf("stress: final sweep: %v", f.Err)
	}
	return fmt.Sprintf("stress: op %d (%s): %v", f.Index, f.Op, f.Err)
}

// runner executes one program against a freshly built platform.
//
// Slice-ownership rules (multi-slice configs): lines are statically
// interleaved across slices (device.SliceArray.For), and every device-side
// access is routed through the owning slice. The host core model, however,
// resolves device state through h.Dev — slice 0 — for HMC recalls, LLC
// writebacks of device lines and DSA traffic, so host-issued ops are
// restricted to slice-0-owned lines (the generator enforces this; apply
// normalizes replayed indices the same way).
type runner struct {
	cfg    Config
	h      *host.Host
	arr    *device.SliceArray
	dsa    *host.DSA
	oracle *check.Oracle
	mon    *check.Monitor
	now    sim.Time
}

func newRunner(cfg Config, fault device.FaultKind) (*runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := timing.Default()
	h, err := host.New(p, host.Config{LLCBytes: cfg.LLCBytes, LLCWays: cfg.LLCWays, Cores: cfg.Cores})
	if err != nil {
		return nil, err
	}
	devCfg := device.Config{
		Type:     cfg.Type,
		HMCBytes: cfg.HMCBytes, HMCWays: cfg.HMCWays,
		DMCBytes: cfg.DMCBytes, DMCWays: cfg.DMCWays,
		DevMemChannels: 2,
	}
	arr, err := device.NewSliceArray(p, devCfg, h.Home(), h.CXLLink, cfg.Slices)
	if err != nil {
		return nil, err
	}
	h.Dev = arr.Slice(0)
	r := &runner{cfg: cfg, h: h, arr: arr, dsa: h.NewDSA(), oracle: check.NewOracle()}
	for i := 0; i < arr.N(); i++ {
		arr.Slice(i).InjectFault(fault)
	}
	if cfg.DeviceBiasStart {
		for i := 0; i < cfg.DevLines/2; i++ {
			addr := devLineAddr(i)
			r.arr.For(addr).EnterDeviceBias(phys.Range{Base: addr, Size: phys.LineSize}, 0)
		}
	}
	slices := make([]*device.Device, arr.N())
	for i := range slices {
		slices[i] = arr.Slice(i)
	}
	r.mon = check.NewMonitor(h, slices...)
	return r, nil
}

// Execute runs the program, asserting every invariant after each op, and a
// data-consistency sweep of every written line at the end. It returns the
// first failure, or nil for a clean run.
func Execute(p *Program) *Failure {
	return execute(p, nil)
}

// ExecuteTrace is Execute with a transaction tracer attached to every DCOH
// slice, so a failing run leaves a protocol-level event log.
func ExecuteTrace(p *Program, tr trace.Tracer) *Failure {
	return execute(p, tr)
}

func execute(p *Program, tr trace.Tracer) *Failure {
	cfg, err := ConfigByName(p.Config)
	if err != nil {
		return &Failure{Index: -1, Err: err}
	}
	r, err := newRunner(cfg, p.Fault)
	if err != nil {
		return &Failure{Index: -1, Err: err}
	}
	if tr != nil {
		for i := 0; i < r.arr.N(); i++ {
			r.arr.Slice(i).SetTracer(tr)
		}
	}
	for i, op := range p.Ops {
		issue := r.now
		done, err := r.apply(op)
		if err == nil {
			err = r.mon.Step(issue, done)
		}
		if err == nil {
			err = r.coherence()
		}
		if err != nil {
			return &Failure{Index: i, Op: op, Err: err}
		}
		if done > r.now {
			r.now = done
		}
	}
	if err := r.sweep(); err != nil {
		return &Failure{Index: -1, Err: err}
	}
	return nil
}

// coherence cross-validates cache states across the host and every slice.
func (r *runner) coherence() error {
	for i := 0; i < r.arr.N(); i++ {
		if err := check.Coherence(r.h, r.arr.Slice(i)); err != nil {
			if r.arr.N() > 1 {
				return fmt.Errorf("slice %d: %w", i, err)
			}
			return err
		}
	}
	return nil
}

// normalize clamps an op's indices into the config's pools so hand-edited
// replay files and shrunk programs stay in range, and realigns host-issued
// ops to slice-0-owned lines in multi-slice configs.
func (r *runner) normalize(o Op) Op {
	c := &r.cfg
	o.Core = mod(o.Core, c.Cores)
	switch o.Kind {
	case OpHost, OpCLFlush, OpDSACopy:
		if o.Dev && c.DevLines == 0 {
			o.Dev = false
		}
		if o.Dev2 && c.DevLines == 0 {
			o.Dev2 = false
		}
		o.Line = r.hostIssuedIdx(o.Line, o.Dev)
		o.Line2 = r.hostIssuedIdx(o.Line2, o.Dev2)
	case OpCLDemote, OpD2H, OpKsmStep:
		o.Dev, o.Dev2 = false, false
		o.Line = mod(o.Line, c.HostLines)
		o.Line2 = mod(o.Line2, c.HostLines)
	case OpD2D, OpBiasEnter, OpBiasExit:
		o.Dev, o.Dev2 = true, true
		o.Line = mod(o.Line, max(c.DevLines, 1))
		o.Line2 = mod(o.Line2, max(c.DevLines, 1))
	case OpZswapStep:
		o.Line = mod(o.Line, c.HostLines)
		o.Line2 = mod(o.Line2, max(c.DevLines, 1))
	}
	return o
}

// hostIssuedIdx clamps a pool index for a host-issued access: in-range, and
// slice-0-owned under multi-slice interleaving.
func (r *runner) hostIssuedIdx(i int, dev bool) int {
	pool := r.cfg.HostLines
	if dev {
		pool = max(r.cfg.DevLines, 1)
	}
	i = mod(i, pool)
	if r.cfg.Slices > 1 {
		i -= i % r.cfg.Slices
	}
	return i
}

func mod(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// applicable reports whether the op kind is expressible on this topology;
// inapplicable ops (e.g. D2D in a Type-3 replay file) are skipped rather
// than failed, so shrinking across configs stays safe.
func (r *runner) applicable(o Op) bool {
	c := &r.cfg
	switch o.Kind {
	case OpD2H:
		return c.Type.HasDeviceCache()
	case OpD2D, OpBiasEnter, OpBiasExit, OpZswapStep:
		return c.Type == cxl.Type2 && c.DevLines > 0
	case OpKsmStep:
		return c.Type.HasDeviceCache()
	case OpDSACopy:
		return c.Slices == 1
	case OpHost, OpCLFlush:
		return !o.Dev || c.DevLines > 0
	}
	return true
}

// apply executes one op, updating and consulting the data oracle, and
// returns the op's completion time.
func (r *runner) apply(o Op) (sim.Time, error) {
	o = r.normalize(o)
	if !r.applicable(o) {
		return r.now, nil
	}
	switch o.Kind {
	case OpHost:
		return r.applyHost(o)
	case OpD2H:
		return r.applyD2H(o)
	case OpD2D:
		return r.applyD2D(o)
	case OpCLFlush:
		addr := addrOf(o.Line, o.Dev)
		return r.h.Core(o.Core).CLFlush(addr, r.now), nil
	case OpCLDemote:
		return r.applyCLDemote(o)
	case OpBiasEnter:
		addr := devLineAddr(o.Line)
		return r.arr.For(addr).EnterDeviceBias(phys.Range{Base: addr, Size: phys.LineSize}, r.now), nil
	case OpBiasExit:
		addr := devLineAddr(o.Line)
		r.arr.For(addr).ExitDeviceBias(phys.Range{Base: addr, Size: phys.LineSize})
		return r.now, nil
	case OpDSACopy:
		return r.applyDSA(o)
	case OpZswapStep:
		return r.applyZswapStep(o)
	case OpKsmStep:
		return r.applyKsmStep(o)
	}
	return r.now, fmt.Errorf("stress: unknown op kind %v", o.Kind)
}

func (r *runner) applyHost(o Op) (sim.Time, error) {
	addr := addrOf(o.Line, o.Dev)
	var data []byte
	if o.Host.IsWrite() {
		data = payload(o.Data, o.Line)
	}
	res := r.h.Core(o.Core).Access(o.Host, addr, data, r.now)
	done := res.Done
	if res.DeviceDone > done {
		done = res.DeviceDone
	}
	if o.Host.IsWrite() {
		r.oracle.Write(addr, data)
		return done, nil
	}
	return done, r.oracle.Verify(addr, res.Data)
}

func (r *runner) applyD2H(o Op) (sim.Time, error) {
	addr := hostLineAddr(o.Line)
	var data []byte
	if o.Req.IsWrite() {
		data = payload(o.Data, o.Line)
	}
	res := r.arr.For(addr).D2H(o.Req, addr, data, r.now)
	if o.Req.IsWrite() {
		r.oracle.Write(addr, data)
		return res.Done, nil
	}
	return res.Done, r.oracle.Verify(addr, res.Data)
}

func (r *runner) applyD2D(o Op) (sim.Time, error) {
	addr := devLineAddr(o.Line)
	var data []byte
	if o.Req.IsWrite() {
		data = payload(o.Data, o.Line)
	}
	res := r.arr.For(addr).D2D(o.Req, addr, data, r.now)
	if o.Req.IsWrite() {
		r.oracle.Write(addr, data)
		return res.Done, nil
	}
	return res.Done, r.oracle.Verify(addr, res.Data)
}

// applyCLDemote installs the line in LLC as Modified with the architectural
// bytes. Software doing this must first ensure the device cache cannot hold
// a conflicting copy, so the helper performs the directory-guided recall the
// core model would on a demand access.
func (r *runner) applyCLDemote(o Op) (sim.Time, error) {
	addr := hostLineAddr(o.Line)
	r.recallHMC(addr)
	return r.h.Core(o.Core).CLDemote(addr, cache.Modified, r.oracle.Expect(addr), r.now), nil
}

// recallHMC back-invalidates the owning slice's HMC copy of a host line,
// landing Modified data in host memory — the snoop the home agent issues on
// a conflicting host access.
func (r *runner) recallHMC(addr phys.Addr) {
	if _, held := r.h.Home().SnoopDevice(addr); !held {
		return
	}
	if st, data, ok := r.arr.For(addr).RecallHMC(addr); ok && st == cache.Modified && data != nil {
		r.h.Store().WriteLine(addr, data)
	}
}

// applyDSA flushes both endpoints out of every cache (the software protocol
// a DSA user must follow — the engine moves bytes between backing stores,
// bypassing coherence) and then performs the copy.
func (r *runner) applyDSA(o Op) (sim.Time, error) {
	src := addrOf(o.Line, o.Dev)
	dst := addrOf(o.Line2, o.Dev2)
	r.flushLine(src, o.Core)
	r.flushLine(dst, o.Core)
	_, done := r.dsa.Copy(src, dst, phys.LineSize, r.now, true)
	r.oracle.Copy(src, dst)
	return done, nil
}

// flushLine forces the line's architectural bytes into its backing store
// and drops every cached copy.
func (r *runner) flushLine(addr phys.Addr, core int) {
	r.h.Core(core).CLFlush(addr, r.now)
	if r.h.AddrMap().IsDevice(addr) {
		d := r.arr.For(addr)
		if dmc := d.DMC(); dmc != nil {
			if l := dmc.Peek(addr); l != nil {
				if l.State == cache.Modified && l.Data != nil {
					d.WriteDevMemDirect(addr, l.Data)
				}
				d.SetDMCState(addr, cache.Invalid, nil)
			}
		}
		return
	}
	r.recallHMC(addr)
}

// applyZswapStep performs one Fig. 7 zswap store: pull two host pages (one
// line each here) with NC-rd, "compress" them, NC-write the compressed
// buffer into a device-memory zpool slot with D2D, and NC-P a completion
// record into host LLC for the waiting kernel thread.
func (r *runner) applyZswapStep(o Op) (sim.Time, error) {
	src1 := hostLineAddr(o.Line)
	src2 := hostLineAddr(mod(o.Line+1, r.cfg.HostLines))
	r1 := r.arr.For(src1).D2H(cxl.NCRead, src1, nil, r.now)
	if err := r.oracle.Verify(src1, r1.Data); err != nil {
		return r1.Done, err
	}
	r2 := r.arr.For(src2).D2H(cxl.NCRead, src2, nil, r1.Done)
	if err := r.oracle.Verify(src2, r2.Data); err != nil {
		return r2.Done, err
	}
	comp := make([]byte, phys.LineSize)
	for i := range comp {
		comp[i] = r1.Data[i] ^ r2.Data[i]
	}
	zpool := devLineAddr(o.Line2)
	r3 := r.arr.For(zpool).D2D(cxl.NCWrite, zpool, comp, r2.Done)
	r.oracle.Write(zpool, comp)
	rec := payload(o.Data, o.Line2)
	recAddr := hostLineAddr(mod(o.Line+2, r.cfg.HostLines))
	r4 := r.arr.For(recAddr).D2H(cxl.NCP, recAddr, rec, r3.Done)
	r.oracle.Write(recAddr, rec)
	return r4.Done, nil
}

// applyKsmStep performs one Fig. 7 ksm comparison: pull two candidate host
// lines with NC-rd, compare, and NC-P the verdict into host LLC.
func (r *runner) applyKsmStep(o Op) (sim.Time, error) {
	a := hostLineAddr(o.Line)
	b := hostLineAddr(o.Line2)
	ra := r.arr.For(a).D2H(cxl.NCRead, a, nil, r.now)
	if err := r.oracle.Verify(a, ra.Data); err != nil {
		return ra.Done, err
	}
	rb := r.arr.For(b).D2H(cxl.NCRead, b, nil, ra.Done)
	if err := r.oracle.Verify(b, rb.Data); err != nil {
		return rb.Done, err
	}
	verdict := byte(0)
	if bytes.Equal(ra.Data, rb.Data) {
		verdict = 1
	}
	rec := make([]byte, phys.LineSize)
	for i := range rec {
		rec[i] = verdict
	}
	recAddr := hostLineAddr(mod(o.Line+1, r.cfg.HostLines))
	rc := r.arr.For(recAddr).D2H(cxl.NCP, recAddr, rec, rb.Done)
	r.oracle.Write(recAddr, rec)
	return rc.Done, nil
}

// sweep re-reads every oracle-known line through a coherent path at the end
// of the run — whatever the caches did, the latest architectural bytes must
// be observable.
func (r *runner) sweep() error {
	lines := r.oracle.Lines()
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, addr := range lines {
		var got []byte
		switch {
		case !r.h.AddrMap().IsDevice(addr):
			if r.cfg.Type.HasDeviceCache() {
				got = r.arr.For(addr).D2H(cxl.NCRead, addr, nil, r.now).Data
			} else {
				got = r.h.Core(0).Access(cxl.Ld, addr, nil, r.now).Data
			}
		case r.cfg.Type == cxl.Type2:
			got = r.arr.For(addr).D2D(cxl.NCRead, addr, nil, r.now).Data
		default:
			got = r.h.Core(0).Access(cxl.Ld, addr, nil, r.now).Data
		}
		if err := r.oracle.Verify(addr, got); err != nil {
			return fmt.Errorf("sweep of %v: %w", addr, err)
		}
	}
	return nil
}
