// Package dist distributes cxlsimd's job execution across worker
// processes. The shared-nothing runner makes this natural: every job is
// self-contained, derives its seed from (root seed, job ID), and results
// merge in submission order — so a job set executed on N remote workers
// renders byte-identical output to a serial in-process run, by
// construction rather than by luck.
//
// The wire contract is "jobs by description, results by value": a Spec
// names a job set (a section, the report, one measurement) that any
// process holding the same binary re-derives identically; workers run an
// index subset of that list and return the typed row values gob-encoded.
// Closures never cross the wire.
//
// Topology: one coordinator (the cxlsimd front end) and N workers. Workers
// register with the coordinator and re-register on a heartbeat interval;
// the coordinator shards job indices into chunks, keeps a bounded
// per-worker in-flight window, reassigns chunks when a worker dies
// mid-run, and falls back to local execution when the fleet is gone — a
// degraded coordinator is exactly the single-process daemon.
//
// Mixed-version fleets are refused at registration and again on every run
// request: the compatibility token combines the canonical cache-key schema
// and the wire format, so a worker that would compute differently-keyed
// (or differently-shaped) results never joins.
package dist

import (
	"encoding/base64"
	"encoding/gob"
	"fmt"
	"runtime/debug"
	"time"

	cxl2sim "repro"
	"repro/internal/experiments"
	"repro/internal/runner"
)

// WireVersion is the dist wire-format version. Bump on any change to the
// request/response encoding.
const WireVersion = 1

// ProtocolVersion is the compatibility token exchanged at registration and
// sent with every run request. It folds in the canonical cache-key schema:
// two processes that would key results differently must never cooperate.
func ProtocolVersion() string {
	return fmt.Sprintf("%s/wire%d", experiments.CacheKeyVersion, WireVersion)
}

// BuildInfo describes the running binary for GET /v1/version: enough for
// an operator to tell a mixed-version fleet apart at a glance.
type BuildInfo struct {
	GoVersion       string `json:"go_version"`
	Revision        string `json:"revision,omitempty"`
	Modified        bool   `json:"modified,omitempty"`
	CacheKeyVersion string `json:"cache_key_version"`
	DistProtocol    string `json:"dist_protocol"`
	Mode            string `json:"mode"`
}

// Build returns the binary's BuildInfo with the given serving mode.
func Build(mode string) BuildInfo {
	info := BuildInfo{
		CacheKeyVersion: experiments.CacheKeyVersion,
		DistProtocol:    ProtocolVersion(),
		Mode:            mode,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.modified":
				info.Modified = s.Value == "true"
			}
		}
	}
	return info
}

// Spec describes a job set by reference. BuildJobs is a pure function of
// the Spec: every process holding the same binary derives the identical
// job list (same IDs, same order), which is what makes remote execution
// byte-identical to local execution.
type Spec struct {
	// Kind selects the enumeration: "section", "report" or "measure".
	Kind string `json:"kind"`
	// Section names the experiment section (Kind == "section").
	Section string `json:"section,omitempty"`
	// Reps is the repetition count (sections and the report).
	Reps int `json:"reps,omitempty"`
	// Full includes the Fig. 8 co-simulations (Kind == "report").
	Full bool `json:"full,omitempty"`
	// TraceB64 is a base64 workload trace replayed by the infer section.
	TraceB64 string `json:"trace,omitempty"`
	// Measure carries one §V measurement (Kind == "measure").
	Measure *MeasureParams `json:"measure,omitempty"`
}

// MeasureParams is the wire form of one microbenchmark measurement — the
// already-validated fields of the service's /v1/measure request.
type MeasureParams struct {
	MeasureKind string `json:"measure_kind"` // d2h / d2d / h2d
	Op          string `json:"op"`
	Place       string `json:"place"`
	Reps        int    `json:"reps"`
	Burst       int    `json:"burst"`
	DeviceType  int    `json:"device_type,omitempty"`
	LLCBytes    int    `json:"llc_bytes,omitempty"`
	LLCWays     int    `json:"llc_ways,omitempty"`
	Cores       int    `json:"cores,omitempty"`
	SNC         bool   `json:"snc,omitempty"`
}

// BuildJobs re-derives the job list a Spec describes.
func (sp Spec) BuildJobs() ([]runner.Job, error) {
	switch sp.Kind {
	case "section":
		if sp.TraceB64 != "" {
			if sp.Section != "infer" {
				return nil, fmt.Errorf("dist: section %q does not support trace replay", sp.Section)
			}
			raw, err := base64.StdEncoding.DecodeString(sp.TraceB64)
			if err != nil {
				return nil, fmt.Errorf("dist: trace: %w", err)
			}
			t, err := cxl2sim.DecodeWorkloadTrace(raw)
			if err != nil {
				return nil, fmt.Errorf("dist: trace: %w", err)
			}
			if err := t.Validate(); err != nil {
				return nil, fmt.Errorf("dist: trace: %w", err)
			}
			return cxl2sim.InferSectionTrace(sp.Reps, t).Jobs, nil
		}
		secs := cxl2sim.ExperimentSections(sp.Reps)
		sec, ok := cxl2sim.ExperimentSectionByName(secs, sp.Section)
		if !ok {
			return nil, fmt.Errorf("dist: unknown section %q", sp.Section)
		}
		return sec.Jobs, nil
	case "report":
		return cxl2sim.ReportJobs(cxl2sim.ReportOptions{Reps: sp.Reps, Full: sp.Full}), nil
	case "measure":
		m := sp.Measure
		if m == nil {
			return nil, fmt.Errorf("dist: measure spec without parameters")
		}
		place, ok := cxl2sim.PlacementNames[m.Place]
		if !ok {
			return nil, fmt.Errorf("dist: unknown place %q", m.Place)
		}
		cfg := cxl2sim.Config{
			DeviceType: cxl2sim.DeviceType(m.DeviceType),
			LLCBytes:   m.LLCBytes, LLCWays: m.LLCWays, Cores: m.Cores, SNC: m.SNC,
		}
		spec := cxl2sim.MeasureSpec{Reps: m.Reps, Burst: m.Burst, Place: place}
		id := fmt.Sprintf("measure/%s/%s", m.MeasureKind, m.Op)
		switch m.MeasureKind {
		case "d2h", "d2d":
			op, ok := cxl2sim.D2HOpNames[m.Op]
			if !ok {
				return nil, fmt.Errorf("dist: unknown %s op %q", m.MeasureKind, m.Op)
			}
			if m.MeasureKind == "d2h" {
				return []runner.Job{cxl2sim.MeasureD2HJob(id, cfg, op, spec)}, nil
			}
			return []runner.Job{cxl2sim.MeasureD2DJob(id, cfg, op, spec)}, nil
		case "h2d":
			op, ok := cxl2sim.HostOpNames[m.Op]
			if !ok {
				return nil, fmt.Errorf("dist: unknown h2d op %q", m.Op)
			}
			return []runner.Job{cxl2sim.MeasureH2DJob(id, cfg, op, spec)}, nil
		default:
			return nil, fmt.Errorf("dist: unknown measure kind %q", m.MeasureKind)
		}
	default:
		return nil, fmt.Errorf("dist: unknown spec kind %q", sp.Kind)
	}
}

// ---- wire types ------------------------------------------------------

// registration is the register/heartbeat body (JSON).
type registration struct {
	Addr    string `json:"addr"`    // dialable host:port of the worker
	Version string `json:"version"` // ProtocolVersion()
}

// runRequest asks a worker to execute an index subset of a Spec's job
// list (JSON; the trace rides base64 inside the Spec).
type runRequest struct {
	Version string `json:"version"`
	Spec    Spec   `json:"spec"`
	Indices []int  `json:"indices"`
	Seed    int64  `json:"seed"`
}

// wireResult is one job outcome in transit. Value carries the job's typed
// rows through gob (concrete types registered below); errors travel as
// strings plus the runner's classification flags.
type wireResult struct {
	ID        string
	Index     int
	Value     any
	Err       string
	Panicked  bool
	Cancelled bool
	Wall      time.Duration
	Events    uint64
}

// runResponse is the gob-encoded worker reply.
type runResponse struct {
	Results []wireResult
}

// toWire converts runner results for transport.
func toWire(results []runner.Result) []wireResult {
	out := make([]wireResult, len(results))
	for i, r := range results {
		w := wireResult{
			ID: r.ID, Index: r.Index, Value: r.Value,
			Panicked: r.Panicked, Cancelled: r.Cancelled,
			Wall: r.Wall, Events: r.Events,
		}
		if r.Err != nil {
			w.Err = r.Err.Error()
		}
		out[i] = w
	}
	return out
}

// fromWire reconstructs runner results, re-mapping each onto its original
// submission index (the worker ran a subset; Index says which slot of the
// full job list the result fills).
func fromWire(in []wireResult) []runner.Result {
	out := make([]runner.Result, len(in))
	for i, w := range in {
		r := runner.Result{
			ID: w.ID, Index: w.Index, Value: w.Value,
			Panicked: w.Panicked, Cancelled: w.Cancelled,
			Wall: w.Wall, Events: w.Events,
		}
		if w.Err != "" {
			r.Err = fmt.Errorf("%s", w.Err)
		}
		out[i] = r
	}
	return out
}

// The gob registry of every concrete Value type a job can return. Both
// sides are the same binary, so registration is symmetric by construction;
// a new section must add its row type here before it can be distributed
// (TestEverySectionDistributes pins this).
func init() {
	gob.Register([]experiments.Table3Row{})
	gob.Register([]experiments.Fig3Row{})
	gob.Register([]experiments.Fig4Row{})
	gob.Register([]experiments.Fig5Row{})
	gob.Register([]experiments.Fig6Row{})
	gob.Register([]experiments.Table4Row{})
	gob.Register([]experiments.WriteQueueRow{})
	gob.Register([]experiments.InferRow{})
	gob.Register([]experiments.WorkloadRow{})
	gob.Register([]experiments.ClusterRow{})
	gob.Register([]experiments.Fig8Row{})
	gob.Register(cxl2sim.Measurement{})
}
