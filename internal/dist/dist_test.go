package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	cxl2sim "repro"
	"repro/internal/dist"
	"repro/internal/runner"
)

// startWorker serves a dist worker over httptest and returns its dialable
// addr plus the server handle (Close kills it abruptly — the "worker
// died" primitive the reassignment tests use).
func startWorker(t *testing.T, wrap func(http.Handler) http.Handler) (string, *httptest.Server) {
	t.Helper()
	w := dist.NewWorker(dist.WorkerConfig{Workers: 1, MaxConcurrent: 4})
	h := http.Handler(w.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://"), srv
}

// newCoordinator builds a coordinator with its control plane served over
// httptest, registers the given worker addrs, and returns both.
func newCoordinator(t *testing.T, addrs ...string) (*dist.Coordinator, *httptest.Server) {
	t.Helper()
	c := dist.NewCoordinator(dist.CoordinatorConfig{Workers: 1, StaleAfter: time.Hour})
	mux := http.NewServeMux()
	c.Routes(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	for _, a := range addrs {
		register(t, srv.URL, a, dist.ProtocolVersion(), http.StatusOK)
	}
	return c, srv
}

func register(t *testing.T, coord, addr, version string, wantStatus int) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"addr": addr, "version": version})
	resp, err := http.Post(coord+"/dist/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("register %s as %s: status %d, want %d", addr, version, resp.StatusCode, wantStatus)
	}
}

// renderSection runs Render for the named section over results.
func renderSection(t *testing.T, name string, reps int, results []runner.Result) []byte {
	t.Helper()
	secs := cxl2sim.ExperimentSections(reps)
	sec, ok := cxl2sim.ExperimentSectionByName(secs, name)
	if !ok {
		t.Fatalf("unknown section %q", name)
	}
	var buf bytes.Buffer
	if err := sec.Render(&buf, results); err != nil {
		t.Fatalf("render %s: %v", name, err)
	}
	return buf.Bytes()
}

// TestDistributedSectionByteIdentity: a section sharded across two
// workers renders byte-for-byte what a serial in-process run renders —
// the invariant every cache key in the serving layer leans on.
func TestDistributedSectionByteIdentity(t *testing.T) {
	const reps = 6
	a, _ := startWorker(t, nil)
	b, _ := startWorker(t, nil)
	c, _ := newCoordinator(t, a, b)

	spec := dist.Spec{Kind: "section", Section: "fig3", Reps: reps}
	jobs, err := spec.BuildJobs()
	if err != nil {
		t.Fatal(err)
	}
	serial := renderSection(t, "fig3", reps, runner.Run(jobs, runner.Options{Workers: 1}))
	distd := renderSection(t, "fig3", reps, c.Run(context.Background(), spec, jobs, runner.Options{}))
	if !bytes.Equal(serial, distd) {
		t.Fatalf("distributed render differs from serial:\nserial:\n%s\ndistributed:\n%s", serial, distd)
	}
	m := c.Snapshot()
	if m.RemoteJobs != uint64(len(jobs)) {
		t.Fatalf("expected all %d jobs to run remotely, got %d (metrics %+v)", len(jobs), m.RemoteJobs, m)
	}
	if m.LocalFallbacks != 0 {
		t.Fatalf("unexpected local fallback with a healthy fleet: %+v", m)
	}
}

// TestWorkerLossReassignsMidSection: one of two workers dies after its
// first chunk; the coordinator must mark it dead, requeue its work onto
// the survivor, and still render bytes identical to a serial run.
func TestWorkerLossReassignsMidSection(t *testing.T) {
	const reps = 5
	healthy, _ := startWorker(t, nil)
	var served atomic.Int32
	flaky, _ := startWorker(t, func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/dist/v1/run" && served.Add(1) > 1 {
				panic(http.ErrAbortHandler) // drop the connection: worker is gone
			}
			next.ServeHTTP(rw, r)
		})
	})
	c, _ := newCoordinator(t, healthy, flaky)

	spec := dist.Spec{Kind: "section", Section: "fig4", Reps: reps}
	jobs, err := spec.BuildJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 4 {
		t.Fatalf("need enough jobs to spread over two workers, got %d", len(jobs))
	}
	serial := renderSection(t, "fig4", reps, runner.Run(jobs, runner.Options{Workers: 1}))
	distd := renderSection(t, "fig4", reps, c.Run(context.Background(), spec, jobs, runner.Options{}))
	if !bytes.Equal(serial, distd) {
		t.Fatal("render after mid-section worker loss differs from serial")
	}
	m := c.Snapshot()
	if m.ChunksReassigned == 0 {
		t.Fatalf("worker died mid-section but nothing was reassigned: %+v", m)
	}
	if m.WorkersDead == 0 {
		t.Fatalf("dead worker still counted live: %+v", m)
	}
}

// TestLocalFallbackWithNoWorkers: an empty fleet degrades to in-process
// execution with identical output — the coordinator alone IS the daemon.
func TestLocalFallbackWithNoWorkers(t *testing.T) {
	const reps = 6
	c, _ := newCoordinator(t)
	spec := dist.Spec{Kind: "section", Section: "fig3", Reps: reps}
	jobs, err := spec.BuildJobs()
	if err != nil {
		t.Fatal(err)
	}
	serial := renderSection(t, "fig3", reps, runner.Run(jobs, runner.Options{Workers: 1}))
	local := renderSection(t, "fig3", reps, c.Run(context.Background(), spec, jobs, runner.Options{}))
	if !bytes.Equal(serial, local) {
		t.Fatal("local-fallback render differs from serial")
	}
	if m := c.Snapshot(); m.LocalFallbacks == 0 {
		t.Fatalf("fallback not counted: %+v", m)
	}
}

// TestVersionMismatchRefused: a worker speaking a different protocol is
// refused at registration, and a coordinator speaking a different
// protocol is refused at the run endpoint — both with 409.
func TestVersionMismatchRefused(t *testing.T) {
	addr, _ := startWorker(t, nil)
	_, coord := newCoordinator(t)
	register(t, coord.URL, addr, "v0/wire0", http.StatusConflict)
	register(t, coord.URL, addr, dist.ProtocolVersion(), http.StatusOK)

	body, _ := json.Marshal(map[string]any{
		"version": "v0/wire0",
		"spec":    map[string]any{"kind": "section", "section": "fig3", "reps": 2},
		"indices": []int{0},
	})
	resp, err := http.Post("http://"+addr+"/dist/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("worker accepted a mismatched run request: status %d", resp.StatusCode)
	}
}

// TestWorkerVersionEndpoint: GET /v1/version reports the compatibility
// tokens an operator needs to diagnose a mixed fleet.
func TestWorkerVersionEndpoint(t *testing.T) {
	addr, _ := startWorker(t, nil)
	resp, err := http.Get("http://" + addr + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info dist.BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.DistProtocol != dist.ProtocolVersion() || info.Mode != "worker" {
		t.Fatalf("version endpoint: %+v", info)
	}
}

// TestEverySectionDistributes pins the gob registry: every experiment
// section must ship its row values through the wire and render
// byte-identically. A new section whose row type is missing from the
// registry fails here, not in production.
func TestEverySectionDistributes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	const reps = 2
	addr, _ := startWorker(t, nil)
	for _, sec := range cxl2sim.ExperimentSections(reps) {
		sec := sec
		t.Run(sec.Name, func(t *testing.T) {
			c, _ := newCoordinator(t, addr)
			spec := dist.Spec{Kind: "section", Section: sec.Name, Reps: reps}
			jobs, err := spec.BuildJobs()
			if err != nil {
				t.Fatal(err)
			}
			serial := renderSection(t, sec.Name, reps, runner.Run(jobs, runner.Options{Workers: 1}))
			distd := renderSection(t, sec.Name, reps, c.Run(context.Background(), spec, jobs, runner.Options{}))
			if !bytes.Equal(serial, distd) {
				t.Fatal("distributed render differs from serial")
			}
		})
	}
}

// TestDistributedReportByteIdentity: the flagship contract — the full
// report rendered from distributed results matches the serial render.
func TestDistributedReportByteIdentity(t *testing.T) {
	const reps = 3
	a, _ := startWorker(t, nil)
	b, _ := startWorker(t, nil)
	c, _ := newCoordinator(t, a, b)

	spec := dist.Spec{Kind: "report", Reps: reps}
	jobs, err := spec.BuildJobs()
	if err != nil {
		t.Fatal(err)
	}
	opts := cxl2sim.ReportOptions{Reps: reps}
	var serial bytes.Buffer
	if err := cxl2sim.RenderReport(&serial, opts, runner.Run(jobs, runner.Options{Workers: 1})); err != nil {
		t.Fatal(err)
	}
	var distd bytes.Buffer
	if err := cxl2sim.RenderReport(&distd, opts, c.Run(context.Background(), spec, jobs, runner.Options{})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), distd.Bytes()) {
		t.Fatal("distributed report differs from serial render")
	}
}

// TestMeasureSpecBuildsCanonicalJob: the measure spec derives the same
// job ID the service uses, so distributed measures share seed derivation
// with local ones.
func TestMeasureSpecBuildsCanonicalJob(t *testing.T) {
	spec := dist.Spec{Kind: "measure", Measure: &dist.MeasureParams{
		MeasureKind: "d2h", Op: "NC-rd", Place: "cold", Reps: 50, Burst: 4,
	}}
	jobs, err := spec.BuildJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "measure/d2h/NC-rd" {
		t.Fatalf("jobs = %+v", jobs)
	}
	for _, bad := range []dist.Spec{
		{Kind: "measure"},
		{Kind: "measure", Measure: &dist.MeasureParams{MeasureKind: "d2h", Op: "nope", Place: "cold"}},
		{Kind: "measure", Measure: &dist.MeasureParams{MeasureKind: "d2h", Op: "NC-rd", Place: "nope"}},
		{Kind: "section", Section: "nope"},
		{Kind: "nope"},
	} {
		if _, err := bad.BuildJobs(); err == nil {
			t.Fatalf("spec %+v built jobs without error", bad)
		}
	}
	if fmt.Sprint(jobs[0].ID) == "" {
		t.Fatal("unreachable")
	}
}
