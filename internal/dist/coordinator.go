package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/runner"
)

// CoordinatorConfig shapes a Coordinator.
type CoordinatorConfig struct {
	// ChunkSize is how many job indices ride one run request (default 1;
	// jobs here are seconds-scale simulations, so fine-grained dispatch
	// buys balance and cheap reassignment for negligible overhead).
	ChunkSize int
	// Window bounds in-flight run requests per worker (default 2): one
	// executing, one queued on the worker's semaphore, so a finishing
	// worker never idles waiting on a scheduler round trip.
	Window int
	// StaleAfter is how long after its last registration a worker is
	// presumed dead (default 3 heartbeat intervals = 6s).
	StaleAfter time.Duration
	// Workers sizes the local runner pool used when no remote workers are
	// live (0 = GOMAXPROCS).
	Workers int
	// Log receives operational messages; nil discards them.
	Log *log.Logger
}

// workerState tracks one registered worker.
type workerState struct {
	addr     string
	lastSeen time.Time
	dead     bool // failed a run or refused the protocol; re-registration resurrects
}

// Metrics is a point-in-time snapshot of the coordinator's counters.
type Metrics struct {
	WorkersLive      int    `json:"workers_live"`
	WorkersDead      int    `json:"workers_dead"`
	ChunksDispatched uint64 `json:"chunks_dispatched"`
	ChunksReassigned uint64 `json:"chunks_reassigned"`
	RemoteJobs       uint64 `json:"remote_jobs"`
	LocalFallbacks   uint64 `json:"local_fallbacks"`
}

// Coordinator shards job sets across registered workers. Distribution is
// invisible in the output: per-job seeds derive from (root seed, job ID)
// and results merge by submission index, so any placement of jobs onto
// workers — including total fleet loss and local fallback — renders the
// same bytes as runner.Run in one process.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client

	mu      sync.Mutex
	workers map[string]*workerState
	stats   Metrics
}

// NewCoordinator builds a Coordinator with no workers registered yet.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 2
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 6 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = log.New(io.Discard, "", 0)
	}
	return &Coordinator{
		cfg:     cfg,
		client:  &http.Client{}, // per-request deadlines come from the run context
		workers: make(map[string]*workerState),
	}
}

// Routes mounts the coordinator's control endpoints on mux.
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /dist/v1/register", c.handleRegister)
	mux.HandleFunc("GET /dist/v1/workers", c.handleWorkers)
}

// handleRegister upserts a worker. Registration doubles as heartbeat and
// resurrection: a worker marked dead after a failed run rejoins the pool
// the moment it registers again. Mismatched protocol versions are refused
// with 409 so a mixed-version fleet can never form.
func (c *Coordinator) handleRegister(rw http.ResponseWriter, r *http.Request) {
	var reg registration
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&reg); err != nil {
		http.Error(rw, "bad registration: "+err.Error(), http.StatusBadRequest)
		return
	}
	if reg.Addr == "" {
		http.Error(rw, "registration without addr", http.StatusBadRequest)
		return
	}
	if reg.Version != ProtocolVersion() {
		http.Error(rw, fmt.Sprintf("version mismatch: coordinator %s, worker %s",
			ProtocolVersion(), reg.Version), http.StatusConflict)
		return
	}
	c.mu.Lock()
	ws, ok := c.workers[reg.Addr]
	if !ok {
		ws = &workerState{addr: reg.Addr}
		c.workers[reg.Addr] = ws
		c.cfg.Log.Printf("coordinator: worker %s joined", reg.Addr)
	} else if ws.dead {
		c.cfg.Log.Printf("coordinator: worker %s rejoined", reg.Addr)
	}
	ws.lastSeen = time.Now()
	ws.dead = false
	c.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(map[string]string{"status": "ok", "version": ProtocolVersion()})
}

// handleWorkers lists the fleet for operators and smoke tests.
func (c *Coordinator) handleWorkers(rw http.ResponseWriter, r *http.Request) {
	type row struct {
		Addr     string `json:"addr"`
		Live     bool   `json:"live"`
		LastSeen string `json:"last_seen"`
	}
	now := time.Now()
	c.mu.Lock()
	rows := make([]row, 0, len(c.workers))
	for _, ws := range c.workers {
		rows = append(rows, row{
			Addr:     ws.addr,
			Live:     !ws.dead && now.Sub(ws.lastSeen) <= c.cfg.StaleAfter,
			LastSeen: ws.lastSeen.UTC().Format(time.RFC3339Nano),
		})
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Addr < rows[j].Addr })
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(map[string]any{"workers": rows})
}

// liveWorkers snapshots the addresses usable right now.
func (c *Coordinator) liveWorkers() []string {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var live []string
	for _, ws := range c.workers {
		if !ws.dead && now.Sub(ws.lastSeen) <= c.cfg.StaleAfter {
			live = append(live, ws.addr)
		}
	}
	sort.Strings(live)
	return live
}

// markDead takes a worker out of rotation until it registers again.
func (c *Coordinator) markDead(addr string, reason error) {
	c.mu.Lock()
	if ws, ok := c.workers[addr]; ok && !ws.dead {
		ws.dead = true
		c.cfg.Log.Printf("coordinator: worker %s marked dead: %v", addr, reason)
	}
	c.mu.Unlock()
}

// Snapshot returns the counters with current fleet occupancy filled in.
func (c *Coordinator) Snapshot() Metrics {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.stats
	for _, ws := range c.workers {
		if !ws.dead && now.Sub(ws.lastSeen) <= c.cfg.StaleAfter {
			m.WorkersLive++
		} else {
			m.WorkersDead++
		}
	}
	return m
}

func (c *Coordinator) count(f func(*Metrics)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// chunk is one dispatch unit: a contiguous slice of job indices.
type chunk struct{ indices []int }

// Run executes the Spec's job list across the live fleet and returns one
// result per job, in submission order — the same contract as runner.Run.
// jobs must be spec.BuildJobs() output (the caller usually already has it
// for rendering); opts supplies RootSeed and Context.
//
// Scheduling: indices are chunked onto a shared queue; each live worker
// gets Window lanes pulling from it. A lane that fails marks its worker
// dead, requeues the chunk, and exits — surviving lanes absorb the work.
// When a round ends with chunks still pending (every lane exited), the
// fleet is re-snapshotted: new or resurrected workers join the next round,
// and an empty fleet drains the queue locally. The invariant that makes
// this safe: a chunk is either completed exactly once into its result
// slots, or back on the queue.
func (c *Coordinator) Run(ctx context.Context, spec Spec, jobs []runner.Job, opts runner.Options) []runner.Result {
	if len(jobs) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]runner.Result, len(jobs))
	var resMu sync.Mutex

	var chunks []chunk
	for lo := 0; lo < len(jobs); lo += c.cfg.ChunkSize {
		hi := min(lo+c.cfg.ChunkSize, len(jobs))
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		chunks = append(chunks, chunk{indices: idx})
	}
	// Buffered to total capacity so a failing lane can always requeue
	// without blocking — that non-blocking requeue is what upholds the
	// completed-or-queued invariant.
	pending := make(chan chunk, len(chunks))
	for _, ch := range chunks {
		pending <- ch
	}
	remaining := len(chunks)
	var remMu sync.Mutex
	done := make(chan struct{})
	finish := func(n int) {
		remMu.Lock()
		remaining -= n
		if remaining == 0 {
			close(done)
		}
		remMu.Unlock()
	}

	runLocal := func(ch chunk) {
		sub := make([]runner.Job, len(ch.indices))
		for i, idx := range ch.indices {
			sub[i] = jobs[idx]
		}
		rs := runner.Run(sub, runner.Options{Workers: c.cfg.Workers, RootSeed: opts.RootSeed, Context: ctx})
		resMu.Lock()
		for i, r := range rs {
			r.Index = ch.indices[i]
			results[ch.indices[i]] = r
		}
		resMu.Unlock()
		finish(1)
	}

	for {
		remMu.Lock()
		left := remaining
		remMu.Unlock()
		if left == 0 {
			return results
		}
		live := c.liveWorkers()
		if len(live) == 0 || ctx.Err() != nil {
			// Degraded (or cancelled) mode: drain the queue in-process.
			// Under cancellation runner.Run marks the jobs Cancelled, so
			// the caller still gets a full, classifiable result set.
			c.count(func(m *Metrics) { m.LocalFallbacks++ })
			c.cfg.Log.Printf("coordinator: no live workers; running %d chunk(s) locally", left)
			for i := 0; i < left; i++ {
				runLocal(<-pending)
			}
			continue
		}

		var wg sync.WaitGroup
		for _, addr := range live {
			quit := make(chan struct{}) // closed on this worker's first failure
			var quitOnce sync.Once
			for lane := 0; lane < c.cfg.Window; lane++ {
				wg.Add(1)
				go func(addr string) {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						case <-ctx.Done():
							return
						case <-quit:
							return
						case ch := <-pending:
							c.count(func(m *Metrics) { m.ChunksDispatched++ })
							rs, err := c.runRemote(ctx, addr, spec, ch.indices, opts.RootSeed)
							if err != nil {
								c.markDead(addr, err)
								quitOnce.Do(func() { close(quit) })
								pending <- ch
								c.count(func(m *Metrics) { m.ChunksReassigned++ })
								return
							}
							resMu.Lock()
							for _, r := range rs {
								results[r.Index] = r
							}
							resMu.Unlock()
							c.count(func(m *Metrics) { m.RemoteJobs += uint64(len(rs)) })
							finish(1)
						}
					}
				}(addr)
			}
		}
		wg.Wait()
		// Round over: either done, or failures left chunks on the queue
		// and the loop re-snapshots the fleet for reassignment.
	}
}

// runRemote ships one chunk to one worker and decodes its results. Any
// transport or protocol failure is returned for the lane to handle; the
// response is validated index-by-index so a confused worker can never
// scribble outside its assignment.
func (c *Coordinator) runRemote(ctx context.Context, addr string, spec Spec, indices []int, seed int64) ([]runner.Result, error) {
	body, err := json.Marshal(runRequest{
		Version: ProtocolVersion(), Spec: spec, Indices: indices, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+"/dist/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("worker %s: status %d: %s", addr, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var wire runResponse
	if err := gob.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, fmt.Errorf("worker %s: decode: %w", addr, err)
	}
	if len(wire.Results) != len(indices) {
		return nil, fmt.Errorf("worker %s: %d results for %d indices", addr, len(wire.Results), len(indices))
	}
	want := make(map[int]bool, len(indices))
	for _, idx := range indices {
		want[idx] = true
	}
	rs := fromWire(wire.Results)
	for _, r := range rs {
		if !want[r.Index] {
			return nil, fmt.Errorf("worker %s: unassigned result index %d", addr, r.Index)
		}
		delete(want, r.Index)
	}
	return rs, nil
}
