package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/runner"
)

// WorkerConfig shapes a Worker.
type WorkerConfig struct {
	// Addr is the listen address (host:port).
	Addr string
	// Advertise is the address the coordinator should dial back; defaults
	// to Addr (useful when Addr binds a wildcard host).
	Advertise string
	// Coordinator is the coordinator base URL ("http://host:port"). Empty
	// disables registration — the worker only serves direct run requests.
	Coordinator string
	// Workers sizes the runner pool per run request (0 = GOMAXPROCS).
	Workers int
	// MaxConcurrent bounds simultaneous run requests (default 2); excess
	// requests queue on the semaphore rather than oversubscribing the host.
	MaxConcurrent int
	// HeartbeatEvery is the re-registration interval (default 2s). The
	// heartbeat doubles as liveness: a coordinator treats a worker whose
	// last registration is stale as dead.
	HeartbeatEvery time.Duration
	// Log receives operational messages; nil discards them.
	Log *log.Logger
}

// Worker executes job subsets on behalf of a coordinator. It is a thin
// wrapper around runner.Run: re-derive the job list from the Spec, run the
// requested indices, ship the typed results back.
type Worker struct {
	cfg  WorkerConfig
	mux  *http.ServeMux
	http *http.Server
	sem  chan struct{}

	jobsRun  atomic.Uint64
	runsDone atomic.Uint64
	rejected atomic.Uint64
}

// NewWorker builds a Worker; call Run to serve.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 2 * time.Second
	}
	if cfg.Advertise == "" {
		cfg.Advertise = cfg.Addr
	}
	if cfg.Log == nil {
		cfg.Log = log.New(io.Discard, "", 0)
	}
	w := &Worker{
		cfg: cfg,
		mux: http.NewServeMux(),
		sem: make(chan struct{}, cfg.MaxConcurrent),
	}
	w.mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	w.mux.HandleFunc("GET /v1/version", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(Build("worker"))
	})
	w.mux.HandleFunc("POST /dist/v1/run", w.handleRun)
	w.http = &http.Server{Addr: cfg.Addr, Handler: w.mux}
	return w
}

// Handler exposes the worker's routes (for tests and embedding).
func (w *Worker) Handler() http.Handler { return w.mux }

// handleRun executes one index subset. The version gate repeats here (not
// just at registration) so a worker can never be tricked into computing
// under a different key schema by a stale or foreign coordinator.
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		http.Error(rw, "bad run request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Version != ProtocolVersion() {
		http.Error(rw, fmt.Sprintf("version mismatch: worker %s, coordinator %s",
			ProtocolVersion(), req.Version), http.StatusConflict)
		return
	}
	jobs, err := req.Spec.BuildJobs()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	for _, idx := range req.Indices {
		if idx < 0 || idx >= len(jobs) {
			http.Error(rw, fmt.Sprintf("index %d out of range (%d jobs)", idx, len(jobs)),
				http.StatusBadRequest)
			return
		}
	}

	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-r.Context().Done():
		w.rejected.Add(1)
		return
	}

	sub := make([]runner.Job, len(req.Indices))
	for i, idx := range req.Indices {
		sub[i] = jobs[idx]
	}
	results := runner.Run(sub, runner.Options{
		Workers:  w.cfg.Workers,
		RootSeed: req.Seed,
		Context:  r.Context(),
	})
	// Re-map each result onto its slot in the full job list; the
	// coordinator merges by this index, which is what keeps the final
	// render in submission order regardless of which worker ran what.
	for i := range results {
		results[i].Index = req.Indices[i]
	}
	w.jobsRun.Add(uint64(len(results)))
	w.runsDone.Add(1)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(runResponse{Results: toWire(results)}); err != nil {
		http.Error(rw, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/x-gob")
	_, _ = rw.Write(buf.Bytes())
}

// Run serves until ctx is cancelled, then drains in-flight run requests
// gracefully. While serving it heartbeats the coordinator (when
// configured); the loop stops for good if the coordinator refuses the
// worker's protocol version.
func (w *Worker) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", w.cfg.Addr)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	if w.cfg.Advertise == "" || w.cfg.Advertise == w.cfg.Addr {
		w.cfg.Advertise = ln.Addr().String()
	}
	w.cfg.Log.Printf("worker: serving on %s (advertising %s)", ln.Addr(), w.cfg.Advertise)

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	if w.cfg.Coordinator != "" {
		go w.heartbeat(hbCtx)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- w.http.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stopHB()
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.http.Shutdown(shCtx); err != nil {
		return fmt.Errorf("worker: drain: %w", err)
	}
	w.cfg.Log.Printf("worker: drained cleanly (%d runs, %d jobs)",
		w.runsDone.Load(), w.jobsRun.Load())
	return nil
}

// heartbeat re-registers with the coordinator on an interval. Registration
// IS the heartbeat: the coordinator upserts (addr, lastSeen) on every post
// and resurrects a worker it had given up on.
func (w *Worker) heartbeat(ctx context.Context) {
	tick := time.NewTicker(w.cfg.HeartbeatEvery)
	defer tick.Stop()
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		status, err := w.registerOnce(ctx, client)
		switch {
		case err != nil:
			w.cfg.Log.Printf("worker: register with %s: %v", w.cfg.Coordinator, err)
		case status == http.StatusConflict:
			// A version-mismatched fleet must not keep knocking; the
			// operator has to roll the binary.
			w.cfg.Log.Printf("worker: coordinator refused protocol %s; stopping heartbeat",
				ProtocolVersion())
			return
		case status != http.StatusOK:
			w.cfg.Log.Printf("worker: register: unexpected status %d", status)
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

func (w *Worker) registerOnce(ctx context.Context, client *http.Client) (int, error) {
	body, _ := json.Marshal(registration{Addr: w.cfg.Advertise, Version: ProtocolVersion()})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.Coordinator+"/dist/v1/register", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, nil
}
