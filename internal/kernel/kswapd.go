package kernel

import (
	"repro/internal/sim"
)

// Kswapd is the background reclaim daemon: woken when free memory falls
// below the low watermark, it swaps out LRU pages until free memory exceeds
// the high watermark (§VI-A's asynchronous background path), then sleeps.
//
// It runs as a sim.Proc pinned to a core, so its control-plane work (and,
// with the cpu-* backend, compression work) steals cycles from whatever
// shares that core — the interference the paper measures.
type Kswapd struct {
	eng  *sim.Engine
	mm   *MM
	proc *sim.Proc

	running bool
	// BatchPause is an optional pause between reclaim batches, modeling
	// cond_resched yields.
	BatchPause sim.Time
	// BatchSize is how many pages are reclaimed per scheduling quantum:
	// the daemon holds the CPU for up to this many CPU-bound reclaims
	// before a cond_resched point. An offload backend that makes the
	// daemon sleep (§VI-A step 3) yields the CPU after every page.
	BatchSize int

	wakeups uint64
	stopped bool
	// stepFn is the step method bound once, so each reclaim batch
	// reschedules without a per-event method-value allocation.
	stepFn func(*sim.Proc)
}

// NewKswapd builds the daemon on core (a sim.Resource run queue) and wires
// the MM's wake hook to it.
func NewKswapd(eng *sim.Engine, mm *MM, core *sim.Resource) *Kswapd {
	k := &Kswapd{
		eng:        eng,
		mm:         mm,
		proc:       sim.NewProc(eng, "kswapd", core),
		BatchPause: 2 * sim.Microsecond,
		BatchSize:  4,
	}
	k.stepFn = k.step
	mm.KswapdWake = k.Wake
	return k
}

// Proc exposes the daemon's process (for inspecting its local clock).
func (k *Kswapd) Proc() *sim.Proc { return k.proc }

// Wakeups reports how many times the daemon was woken.
func (k *Kswapd) Wakeups() uint64 { return k.wakeups }

// Stop prevents further reclaim activity (end of experiment).
func (k *Kswapd) Stop() { k.stopped = true }

// Wake starts a reclaim cycle if one is not already running.
func (k *Kswapd) Wake() {
	if k.running || k.stopped {
		return
	}
	k.running = true
	k.wakeups++
	k.proc.AdvanceTo(k.eng.Now())
	k.proc.Schedule(k.stepFn)
}

// step reclaims up to BatchSize pages within one scheduling quantum. A
// CPU-bound backend (cpu-zswap) fills the whole quantum, stalling
// co-runners on the shared core — the §VII interference. An offload
// backend makes the daemon sleep while the device works, which is a yield:
// the quantum ends immediately and co-runners interleave per page.
func (k *Kswapd) step(p *sim.Proc) {
	if k.stopped {
		k.running = false
		return
	}
	for i := 0; i < k.BatchSize; i++ {
		if k.mm.AboveHigh() {
			k.running = false
			return
		}
		ok, slept := k.mm.ReclaimOne(p)
		if !ok {
			k.running = false
			return
		}
		k.mm.stats.BackgroundReclaims++
		if slept {
			break // yielded to the device: preemption point
		}
	}
	p.Sleep(k.BatchPause)
	p.Schedule(k.stepFn)
}
