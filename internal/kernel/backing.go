package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// BackingSwap models the backing swap device (an NVMe-class SSD): the final
// destination of pages zswap writes back, and the slow path for faults that
// miss the compressed pool.
type BackingSwap struct {
	readLat, writeLat sim.Time
	queue             *sim.Resource
	pages             map[SwapSlot][]byte
	reads, writes     uint64
}

// NewBackingSwap returns a device with the given per-page access latencies.
func NewBackingSwap(readLat, writeLat sim.Time) *BackingSwap {
	return &BackingSwap{
		readLat:  readLat,
		writeLat: writeLat,
		queue:    sim.NewResource("swapdev"),
		pages:    make(map[SwapSlot][]byte),
	}
}

// Write stores a page under slot; returns the completion time.
func (b *BackingSwap) Write(slot SwapSlot, page []byte, now sim.Time) sim.Time {
	cp := make([]byte, len(page))
	copy(cp, page)
	b.pages[slot] = cp
	b.writes++
	start := b.queue.Claim(now, b.writeLat)
	return start + b.writeLat
}

// Read fetches the page under slot; it returns an error for unknown slots.
func (b *BackingSwap) Read(slot SwapSlot, now sim.Time) ([]byte, sim.Time, error) {
	page, ok := b.pages[slot]
	if !ok {
		return nil, now, fmt.Errorf("kernel: swap slot %d not found", slot)
	}
	start := b.queue.Claim(now, b.readLat)
	cp := make([]byte, len(page))
	copy(cp, page)
	return cp, start + b.readLat, nil
}

// Drop releases slot.
func (b *BackingSwap) Drop(slot SwapSlot) { delete(b.pages, slot) }

// Stored reports how many pages the device holds.
func (b *BackingSwap) Stored() int { return len(b.pages) }

// Stats reports read/write counters.
func (b *BackingSwap) Stats() (reads, writes uint64) { return b.reads, b.writes }

// StorePage implements SwapOps for a bare no-zswap configuration: pages go
// straight to the backing device uncompressed.
func (b *BackingSwap) StorePage(slot SwapSlot, page []byte, now sim.Time) (done, hostCPU sim.Time) {
	done = b.Write(slot, page, now)
	return done, 0
}

// LoadPage implements SwapOps.
func (b *BackingSwap) LoadPage(slot SwapSlot, now sim.Time) (page []byte, done, hostCPU sim.Time) {
	p, d, err := b.Read(slot, now)
	if err != nil {
		panic(err)
	}
	return p, d, 0
}

// DropPage implements SwapOps.
func (b *BackingSwap) DropPage(slot SwapSlot) { b.Drop(slot) }
