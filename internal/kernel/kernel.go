// Package kernel models the Linux memory-management machinery that zswap
// and ksm plug into (§VI): physical frames with reverse mappings, per-VM
// address spaces with copy-on-write page tables, an inactive-LRU list,
// watermark-driven reclaim with both the synchronous direct path and the
// asynchronous background path (kswapd), page faults with swap-in, and a
// backing swap device.
//
// Pages carry real bytes (stored in the host memory Store), so swapped-out
// data round-trips through the simulated compression backends and is
// verified on fault.
package kernel

import (
	"container/list"
	"fmt"

	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

// SwapSlot identifies a swapped-out page in zswap or the backing device.
type SwapSlot uint64

// Frame is one physical page frame.
type Frame struct {
	Addr phys.Addr
	// rmap is the reverse mapping: every PTE pointing at this frame. Shared
	// (ksm-merged or forked) frames have several.
	rmap []*PTE
	// lruElem is the frame's position in the MM's active or inactive list.
	lruElem *list.Element
	// active reports which list the frame is on.
	active bool
	// referenced is the second-chance bit: set on touch, cleared by aging.
	referenced bool
	// KsmStable marks frames owned by ksm's stable tree.
	KsmStable bool
}

// RefCount reports how many PTEs map the frame.
func (f *Frame) RefCount() int { return len(f.rmap) }

// PTE is one page-table entry of an address space.
type PTE struct {
	AS  *AddressSpace
	VPN uint64
	// Frame is nil while the page is swapped out.
	Frame *Frame
	// Slot is the swap location when Frame is nil.
	Slot SwapSlot
	// Writable is cleared by CoW sharing (fork/ksm-merge).
	Writable bool
	// readahead marks a page restored speculatively; the first real access
	// clears it and counts as a readahead hit.
	readahead bool
}

// Present reports whether the page is resident.
func (p *PTE) Present() bool { return p.Frame != nil }

// SwapOps is the interface the reclaim and fault paths use to store and
// load swapped pages. zswap implements it (with per-backend offload); a
// bare BackingSwap also satisfies it for no-zswap configurations.
type SwapOps interface {
	// StorePage places page (a PageSize buffer) under slot, starting at
	// now. It returns when the store completes and how much host-CPU time
	// it consumed (the caller charges that to the executing process).
	StorePage(slot SwapSlot, page []byte, now sim.Time) (done, hostCPU sim.Time)
	// LoadPage retrieves the page stored under slot.
	LoadPage(slot SwapSlot, now sim.Time) (page []byte, done, hostCPU sim.Time)
	// DropPage releases the slot without loading it (page freed while
	// swapped).
	DropPage(slot SwapSlot)
}

// MM is the machine-wide memory manager: a fixed pool of frames carved out
// of host DRAM, watermarks, the inactive LRU and the reclaim paths.
type MM struct {
	P     *timing.Params
	Store *mem.Store

	base       phys.Addr
	totalPages int
	freeList   []phys.Addr
	// The kernel's two-list LRU: new and aged pages sit on the inactive
	// list (front = reclaim victim); pages touched twice promote to the
	// active list and must age back down before reclaim.
	inactive *list.List // of *Frame
	active   *list.List // of *Frame

	// Watermarks in free-page counts (§VI-A: page_low wakes kswapd,
	// page_high stops it).
	LowWM, HighWM int

	swap     SwapOps
	nextSlot SwapSlot

	// KswapdWake is invoked (if set) when free pages drop below LowWM.
	KswapdWake func()

	// ReadaheadPages enables swap-cluster readahead: a major fault also
	// brings in up to this many adjacent swapped pages of the same address
	// space (the kernel's page_cluster mechanism). Zero disables it.
	// Prefetch loads run off the fault's critical path.
	ReadaheadPages int

	stats MMStats
}

// MMStats counts reclaim events.
type MMStats struct {
	Allocs, Frees          uint64
	SwapOuts, SwapIns      uint64
	DirectReclaims         uint64
	BackgroundReclaims     uint64
	CoWBreaks, MajorFaults uint64
	FailedAllocs           uint64
	// Two-list LRU census.
	Activations, Deactivations uint64
	SecondChances              uint64
	// ReadaheadLoads counts pages brought in speculatively; ReadaheadHits
	// counts faults avoided because readahead already restored the page.
	ReadaheadLoads, ReadaheadHits uint64
}

// NewMM carves totalPages of frame storage out of host memory starting at
// base.
func NewMM(p *timing.Params, store *mem.Store, base phys.Addr, totalPages int) *MM {
	mm := &MM{
		P:          p,
		Store:      store,
		base:       base,
		totalPages: totalPages,
		inactive:   list.New(),
		active:     list.New(),
		LowWM:      totalPages / 8,
		HighWM:     totalPages / 4,
	}
	mm.freeList = make([]phys.Addr, 0, totalPages)
	for i := totalPages - 1; i >= 0; i-- {
		mm.freeList = append(mm.freeList, base+phys.Addr(i)*phys.PageSize)
	}
	return mm
}

// SetSwap installs the swap implementation (zswap or bare backing swap).
func (m *MM) SetSwap(s SwapOps) { m.swap = s }

// FreePages reports the current free-frame count.
func (m *MM) FreePages() int { return len(m.freeList) }

// ActivePages and InactivePages report the two-list LRU census.
func (m *MM) ActivePages() int { return m.active.Len() }

// InactivePages reports the inactive-list length.
func (m *MM) InactivePages() int { return m.inactive.Len() }

// TotalPages reports the pool size.
func (m *MM) TotalPages() int { return m.totalPages }

// Stats returns a copy of the counters.
func (m *MM) Stats() MMStats { return m.stats }

// BelowLow reports whether free memory is under the kswapd wake watermark.
func (m *MM) BelowLow() bool { return len(m.freeList) < m.LowWM }

// AboveHigh reports whether free memory satisfies the kswapd stop
// watermark.
func (m *MM) AboveHigh() bool { return len(m.freeList) >= m.HighWM }

// allocFrame takes a free frame, running synchronous direct reclaim when
// the pool is empty (§VI-A: "kswapd takes the synchronous direct path when
// the memory allocator fails"). The reclaim work is charged to proc.
func (m *MM) allocFrame(proc *sim.Proc) (*Frame, error) {
	if len(m.freeList) == 0 {
		m.stats.DirectReclaims++
		if ok, _ := m.reclaimOne(proc); !ok {
			m.stats.FailedAllocs++
			return nil, fmt.Errorf("kernel: out of memory and nothing reclaimable")
		}
	}
	addr := m.freeList[len(m.freeList)-1]
	m.freeList = m.freeList[:len(m.freeList)-1]
	m.stats.Allocs++
	f := &Frame{Addr: addr}
	f.lruElem = m.inactive.PushBack(f)
	if m.BelowLow() && m.KswapdWake != nil {
		m.KswapdWake()
	}
	return f, nil
}

func (m *MM) freeFrame(f *Frame) {
	if f.lruElem != nil {
		if f.active {
			m.active.Remove(f.lruElem)
		} else {
			m.inactive.Remove(f.lruElem)
		}
		f.lruElem = nil
		f.active = false
	}
	m.freeList = append(m.freeList, f.Addr)
	m.stats.Frees++
}

// touch records a reference: the first touch sets the referenced bit; a
// second touch while still referenced promotes the frame to the active
// list (the kernel's mark_page_accessed two-step).
func (m *MM) touch(f *Frame) {
	if f.lruElem == nil {
		return
	}
	if f.active {
		f.referenced = true
		m.active.MoveToBack(f.lruElem)
		return
	}
	if f.referenced {
		m.inactive.Remove(f.lruElem)
		f.lruElem = m.active.PushBack(f)
		f.active = true
		f.referenced = false
		m.stats.Activations++
		return
	}
	f.referenced = true
	m.inactive.MoveToBack(f.lruElem)
}

// agingBatch is how many active pages one shrink pass demotes.
const agingBatch = 8

// shrinkActive demotes the oldest active pages to the inactive list,
// clearing their referenced bits (the kernel's shrink_active_list).
func (m *MM) shrinkActive() {
	for i := 0; i < agingBatch; i++ {
		e := m.active.Front()
		if e == nil {
			return
		}
		f := e.Value.(*Frame)
		m.active.Remove(e)
		f.lruElem = m.inactive.PushBack(f)
		f.active = false
		f.referenced = false
		m.stats.Deactivations++
	}
}

// ReclaimOne swaps out the least-recently-used reclaimable page, charging
// the work (control plane + compression) to proc. It returns ok=false when
// nothing can be reclaimed, and slept=true when the executing process
// yielded the CPU waiting for an offload device (the §VI-A step-3 yield) —
// a natural preemption point for the background daemon.
func (m *MM) ReclaimOne(proc *sim.Proc) (ok, slept bool) {
	return m.reclaimOne(proc)
}

func (m *MM) reclaimOne(proc *sim.Proc) (ok, slept bool) {
	// Keep the inactive list fed: when it drops below the active list's
	// size, age some active pages down (the kernel's inactive_is_low
	// balancing).
	if m.inactive.Len() < m.active.Len() {
		m.shrinkActive()
	}
	// Walk the inactive list with second chances: referenced pages rotate
	// to the tail with the bit cleared instead of being reclaimed.
	scanned := 0
	for e := m.inactive.Front(); e != nil && scanned < m.inactive.Len()+1; scanned++ {
		f := e.Value.(*Frame)
		next := e.Next()
		switch {
		case f.KsmStable || len(f.rmap) == 0:
			// Not a swap candidate.
		case f.referenced:
			f.referenced = false
			m.inactive.MoveToBack(e)
			m.stats.SecondChances++
		default:
			return true, m.swapOut(f, proc)
		}
		e = next
	}
	// Everything had a second chance or was exempt: take the first real
	// candidate regardless.
	for e := m.inactive.Front(); e != nil; e = e.Next() {
		f := e.Value.(*Frame)
		if f.KsmStable || len(f.rmap) == 0 {
			continue
		}
		return true, m.swapOut(f, proc)
	}
	// Last resort: reclaim from the active list.
	for e := m.active.Front(); e != nil; e = e.Next() {
		f := e.Value.(*Frame)
		if f.KsmStable || len(f.rmap) == 0 {
			continue
		}
		return true, m.swapOut(f, proc)
	}
	return false, false
}

// swapOut unmaps a frame from every PTE, stores its contents through the
// swap layer and frees the frame. It reports whether the process slept
// waiting on an offload device.
func (m *MM) swapOut(f *Frame, proc *sim.Proc) (slept bool) {
	if m.swap == nil {
		panic("kernel: reclaim without a swap implementation")
	}
	m.nextSlot++
	slot := m.nextSlot
	page := make([]byte, phys.PageSize)
	m.Store.Read(f.Addr, page)

	// Control plane: LRU/radix/PTE bookkeeping on the executing CPU.
	proc.Compute(m.P.SW.KswapdControlPlane)
	done, hostCPU := m.swap.StorePage(slot, page, proc.Now())
	proc.Compute(hostCPU)
	computeEnd := proc.Now()
	proc.AdvanceTo(done)
	slept = proc.Now() > computeEnd

	for _, pte := range f.rmap {
		pte.Frame = nil
		pte.Slot = slot
	}
	f.rmap = nil
	m.freeFrame(f)
	m.stats.SwapOuts++
	return slept
}

// AddressSpace is one process's (or VM's) page table.
type AddressSpace struct {
	mm   *MM
	id   int
	ptes map[uint64]*PTE
}

// NewAddressSpace returns an empty address space.
func (m *MM) NewAddressSpace(id int) *AddressSpace {
	return &AddressSpace{mm: m, id: id, ptes: make(map[uint64]*PTE)}
}

// ID returns the address-space identifier.
func (a *AddressSpace) ID() int { return a.id }

// MM returns the owning memory manager.
func (a *AddressSpace) MM() *MM { return a.mm }

// PTE returns the entry for vpn, or nil if unmapped.
func (a *AddressSpace) PTE(vpn uint64) *PTE { return a.ptes[vpn] }

// Mapped reports how many pages the space maps.
func (a *AddressSpace) Mapped() int { return len(a.ptes) }

// VPNs visits every mapped vpn.
func (a *AddressSpace) VPNs(fn func(vpn uint64, pte *PTE)) {
	for vpn, pte := range a.ptes {
		fn(vpn, pte)
	}
}

// Map installs data (PageSize bytes; nil for a zero page) at vpn,
// allocating a frame. Allocation may trigger synchronous direct reclaim
// charged to proc.
func (a *AddressSpace) Map(vpn uint64, data []byte, proc *sim.Proc) error {
	if _, exists := a.ptes[vpn]; exists {
		return fmt.Errorf("kernel: vpn %#x already mapped in as%d", vpn, a.id)
	}
	f, err := a.mm.allocFrame(proc)
	if err != nil {
		return err
	}
	pte := &PTE{AS: a, VPN: vpn, Frame: f, Writable: true}
	f.rmap = append(f.rmap, pte)
	a.ptes[vpn] = pte
	if data != nil {
		a.mm.Store.Write(f.Addr, data)
	} else {
		a.mm.Store.Write(f.Addr, make([]byte, phys.PageSize))
	}
	return nil
}

// Unmap releases vpn, freeing the frame when the last mapping drops.
func (a *AddressSpace) Unmap(vpn uint64) {
	pte, ok := a.ptes[vpn]
	if !ok {
		return
	}
	delete(a.ptes, vpn)
	if pte.Frame != nil {
		pte.Frame.dropMapping(pte)
		if pte.Frame.RefCount() == 0 && !pte.Frame.KsmStable {
			a.mm.freeFrame(pte.Frame)
		}
	} else if a.mm.swap != nil {
		// Last reference to a swapped page: drop the slot if nobody else
		// shares it.
		shared := false
		for _, other := range a.ptes {
			if other.Frame == nil && other.Slot == pte.Slot {
				shared = true
				break
			}
		}
		if !shared {
			a.mm.swap.DropPage(pte.Slot)
		}
	}
}

func (f *Frame) dropMapping(pte *PTE) {
	for i, p := range f.rmap {
		if p == pte {
			f.rmap = append(f.rmap[:i], f.rmap[i+1:]...)
			return
		}
	}
}

// Read returns the PageSize bytes at vpn, faulting the page in if swapped.
// The fault work (control plane + decompression) is charged to proc.
func (a *AddressSpace) Read(vpn uint64, proc *sim.Proc) ([]byte, error) {
	pte, ok := a.ptes[vpn]
	if !ok {
		return nil, fmt.Errorf("kernel: read of unmapped vpn %#x", vpn)
	}
	if err := a.faultIn(pte, proc); err != nil {
		return nil, err
	}
	a.mm.touch(pte.Frame)
	page := make([]byte, phys.PageSize)
	a.mm.Store.Read(pte.Frame.Addr, page)
	return page, nil
}

// Write stores data at vpn, faulting in and breaking CoW as needed.
func (a *AddressSpace) Write(vpn uint64, data []byte, proc *sim.Proc) error {
	pte, ok := a.ptes[vpn]
	if !ok {
		return fmt.Errorf("kernel: write to unmapped vpn %#x", vpn)
	}
	if err := a.faultIn(pte, proc); err != nil {
		return err
	}
	if !pte.Writable {
		if err := a.breakCoW(pte, proc); err != nil {
			return err
		}
	}
	a.mm.touch(pte.Frame)
	a.mm.Store.Write(pte.Frame.Addr, data)
	return nil
}

// faultIn brings a swapped page back: a major fault through the swap layer.
func (a *AddressSpace) faultIn(pte *PTE, proc *sim.Proc) error {
	if pte.Present() {
		return nil
	}
	if pte.readahead {
		// Readahead already restored this page off the critical path; the
		// fault becomes a cheap swap-cache hit.
		pte.readahead = false
		a.mm.stats.ReadaheadHits++
	}
	m := a.mm
	m.stats.MajorFaults++
	proc.Compute(m.P.SW.PageFaultBase)
	page, done, hostCPU := m.swap.LoadPage(pte.Slot, proc.Now())
	proc.Compute(hostCPU)
	proc.AdvanceTo(done)
	f, err := m.allocFrame(proc)
	if err != nil {
		return err
	}
	m.Store.Write(f.Addr, page)
	slot := pte.Slot
	// Re-point every PTE sharing the slot (shared swapped pages).
	for _, other := range a.ptes {
		if !other.Present() && other.Slot == slot {
			other.Frame = f
			f.rmap = append(f.rmap, other)
		}
	}
	if !pte.Present() { // pte may belong to another AS sharing the slot
		pte.Frame = f
		f.rmap = append(f.rmap, pte)
	}
	m.swap.DropPage(slot)
	m.stats.SwapIns++

	// Swap-cluster readahead: speculatively restore adjacent swapped pages
	// off the critical path (their load latency is not charged to proc).
	if m.ReadaheadPages > 0 && len(m.freeList) > m.LowWM {
		a.readahead(pte.VPN, proc)
	}
	return nil
}

// readahead restores up to MM.ReadaheadPages swapped neighbors of vpn.
func (a *AddressSpace) readahead(vpn uint64, proc *sim.Proc) {
	m := a.mm
	for i := 1; i <= m.ReadaheadPages; i++ {
		if len(m.freeList) <= m.LowWM {
			return // never prefetch into memory pressure
		}
		next, ok := a.ptes[vpn+uint64(i)]
		if !ok || next.Present() {
			continue
		}
		page, _, _ := m.swap.LoadPage(next.Slot, proc.Now())
		f, err := m.allocFrame(proc)
		if err != nil {
			return
		}
		m.Store.Write(f.Addr, page)
		slot := next.Slot
		next.Frame = f
		next.readahead = true
		f.rmap = append(f.rmap, next)
		m.swap.DropPage(slot)
		m.stats.ReadaheadLoads++
	}
}

// breakCoW gives pte a private writable copy of its shared frame.
func (a *AddressSpace) breakCoW(pte *PTE, proc *sim.Proc) error {
	m := a.mm
	m.stats.CoWBreaks++
	old := pte.Frame
	proc.Compute(m.P.SW.PageFaultBase)
	f, err := m.allocFrame(proc)
	if err != nil {
		return err
	}
	page := make([]byte, phys.PageSize)
	m.Store.Read(old.Addr, page)
	m.Store.Write(f.Addr, page)
	old.dropMapping(pte)
	if old.RefCount() == 0 && !old.KsmStable {
		m.freeFrame(old)
	}
	pte.Frame = f
	pte.Writable = true
	f.rmap = append(f.rmap, pte)
	return nil
}

// SharePTEs repoints victim's PTE at keeper's frame read-only — ksm's merge
// primitive. The victim frame is freed when its last mapping leaves.
func (m *MM) SharePTEs(keeper *Frame, victimPTE *PTE) {
	old := victimPTE.Frame
	old.dropMapping(victimPTE)
	victimPTE.Frame = keeper
	victimPTE.Writable = false
	keeper.rmap = append(keeper.rmap, victimPTE)
	if old.RefCount() == 0 {
		m.freeFrame(old)
	}
}

// MarkReadOnly clears the writable bit on every mapping of a frame (the
// stable-tree insertion step of ksm).
func (m *MM) MarkReadOnly(f *Frame) {
	for _, pte := range f.rmap {
		pte.Writable = false
	}
}
