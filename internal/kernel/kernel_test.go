package kernel

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

// testSwap is an instant in-memory SwapOps recording calls.
type testSwap struct {
	pages          map[SwapSlot][]byte
	stores, loads  int
	storeLat       sim.Time
	hostCPUPerPage sim.Time
}

func newTestSwap() *testSwap { return &testSwap{pages: map[SwapSlot][]byte{}} }

func (s *testSwap) StorePage(slot SwapSlot, page []byte, now sim.Time) (sim.Time, sim.Time) {
	cp := make([]byte, len(page))
	copy(cp, page)
	s.pages[slot] = cp
	s.stores++
	return now + s.storeLat, s.hostCPUPerPage
}

func (s *testSwap) LoadPage(slot SwapSlot, now sim.Time) ([]byte, sim.Time, sim.Time) {
	p, ok := s.pages[slot]
	if !ok {
		panic("load of unknown slot")
	}
	s.loads++
	return p, now, 0
}

func (s *testSwap) DropPage(slot SwapSlot) { delete(s.pages, slot) }

func fixture(totalPages int) (*MM, *sim.Engine, *sim.Proc, *testSwap) {
	p := timing.Default()
	eng := sim.NewEngine()
	store := mem.NewStore("host")
	mm := NewMM(p, store, 0x100000, totalPages)
	sw := newTestSwap()
	mm.SetSwap(sw)
	proc := sim.NewProc(eng, "test", nil)
	return mm, eng, proc, sw
}

func page(b byte) []byte {
	d := make([]byte, phys.PageSize)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestMapReadRoundTrip(t *testing.T) {
	mm, _, proc, _ := fixture(16)
	as := mm.NewAddressSpace(1)
	if err := as.Map(1, page(0x42), proc); err != nil {
		t.Fatal(err)
	}
	got, err := as.Read(1, proc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(0x42)) {
		t.Fatal("read mismatch")
	}
	if mm.FreePages() != 15 {
		t.Fatalf("free = %d", mm.FreePages())
	}
}

func TestMapDuplicateFails(t *testing.T) {
	mm, _, proc, _ := fixture(16)
	as := mm.NewAddressSpace(1)
	as.Map(1, nil, proc)
	if err := as.Map(1, nil, proc); err == nil {
		t.Fatal("duplicate map accepted")
	}
}

func TestZeroPageDefault(t *testing.T) {
	mm, _, proc, _ := fixture(16)
	as := mm.NewAddressSpace(1)
	as.Map(7, nil, proc)
	got, _ := as.Read(7, proc)
	for _, b := range got {
		if b != 0 {
			t.Fatal("unmapped data should be zero")
		}
	}
	_ = mm
}

func TestUnmapFreesFrame(t *testing.T) {
	mm, _, proc, _ := fixture(16)
	as := mm.NewAddressSpace(1)
	as.Map(1, nil, proc)
	as.Unmap(1)
	if mm.FreePages() != 16 {
		t.Fatalf("free = %d after unmap", mm.FreePages())
	}
	if as.Mapped() != 0 {
		t.Fatal("PTE survived unmap")
	}
}

func TestDirectReclaimOnExhaustion(t *testing.T) {
	mm, _, proc, sw := fixture(4)
	as := mm.NewAddressSpace(1)
	for v := uint64(0); v < 4; v++ {
		if err := as.Map(v, page(byte(v)), proc); err != nil {
			t.Fatal(err)
		}
	}
	// Fifth map must direct-reclaim the LRU page (vpn 0).
	if err := as.Map(4, page(4), proc); err != nil {
		t.Fatal(err)
	}
	if sw.stores != 1 {
		t.Fatalf("stores = %d", sw.stores)
	}
	if as.PTE(0).Present() {
		t.Fatal("vpn 0 should be swapped out")
	}
	if mm.Stats().DirectReclaims != 1 || mm.Stats().SwapOuts != 1 {
		t.Fatalf("stats = %+v", mm.Stats())
	}
}

func TestMajorFaultRestoresData(t *testing.T) {
	mm, _, proc, sw := fixture(4)
	as := mm.NewAddressSpace(1)
	for v := uint64(0); v < 5; v++ { // forces vpn 0 out
		as.Map(v, page(byte(0x10+v)), proc)
	}
	before := proc.Now()
	got, err := as.Read(0, proc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(0x10)) {
		t.Fatal("swap round-trip corrupted data")
	}
	if sw.loads != 1 {
		t.Fatalf("loads = %d", sw.loads)
	}
	if mm.Stats().MajorFaults != 1 || mm.Stats().SwapIns != 1 {
		t.Fatalf("stats = %+v", mm.Stats())
	}
	if proc.Now() <= before {
		t.Fatal("fault must cost time")
	}
	// The slot is dropped after swap-in.
	if len(sw.pages) != 1 { // only the page evicted to make room remains
		t.Fatalf("slots outstanding = %d", len(sw.pages))
	}
}

func TestLRUOrderRespectsTouch(t *testing.T) {
	mm, _, proc, _ := fixture(4)
	as := mm.NewAddressSpace(1)
	for v := uint64(0); v < 4; v++ {
		as.Map(v, page(byte(v)), proc)
	}
	as.Read(0, proc) // vpn 0 becomes MRU
	as.Map(4, page(4), proc)
	if !as.PTE(0).Present() {
		t.Fatal("recently touched page was reclaimed")
	}
	if as.PTE(1).Present() {
		t.Fatal("vpn 1 should have been the LRU victim")
	}
}

func TestCoWShareAndBreak(t *testing.T) {
	mm, _, proc, _ := fixture(16)
	a := mm.NewAddressSpace(1)
	b := mm.NewAddressSpace(2)
	a.Map(1, page(0x77), proc)
	b.Map(9, page(0x77), proc)
	// Merge b's page into a's frame (what ksm does).
	keeper := a.PTE(1).Frame
	mm.MarkReadOnly(keeper)
	mm.SharePTEs(keeper, b.PTE(9))
	if keeper.RefCount() != 2 {
		t.Fatalf("refs = %d", keeper.RefCount())
	}
	if mm.FreePages() != 15 {
		t.Fatalf("free = %d; duplicate frame not reclaimed", mm.FreePages())
	}
	// Reads see the same content.
	ga, _ := a.Read(1, proc)
	gb, _ := b.Read(9, proc)
	if !bytes.Equal(ga, gb) {
		t.Fatal("shared pages differ")
	}
	// Write from b breaks CoW: a keeps old data.
	if err := b.Write(9, page(0x88), proc); err != nil {
		t.Fatal(err)
	}
	ga, _ = a.Read(1, proc)
	gb, _ = b.Read(9, proc)
	if ga[0] != 0x77 || gb[0] != 0x88 {
		t.Fatalf("CoW break wrong: a=%#x b=%#x", ga[0], gb[0])
	}
	if keeper.RefCount() != 1 {
		t.Fatalf("keeper refs = %d after break", keeper.RefCount())
	}
	if mm.Stats().CoWBreaks != 1 {
		t.Fatal("CoW break not counted")
	}
}

func TestSwapOutSharedPageRestoresAllMappings(t *testing.T) {
	mm, _, proc, _ := fixture(3)
	a := mm.NewAddressSpace(1)
	a.Map(1, page(0x31), proc)
	a.Map(2, page(0x31), proc)
	keeper := a.PTE(1).Frame
	mm.MarkReadOnly(keeper)
	mm.SharePTEs(keeper, a.PTE(2))
	// Force the shared frame out.
	a.Map(3, page(3), proc)
	a.Map(4, page(4), proc)
	if a.PTE(1).Present() || a.PTE(2).Present() {
		// At least one of the fills should have evicted the shared frame;
		// fault it back via vpn 1.
		got, err := a.Read(1, proc)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 0x31 {
			t.Fatal("shared swap data lost")
		}
		if !a.PTE(2).Present() {
			t.Fatal("co-sharing PTE must be restored by the same fault")
		}
	}
}

func TestReadUnmappedErrors(t *testing.T) {
	mm, _, proc, _ := fixture(4)
	as := mm.NewAddressSpace(1)
	if _, err := as.Read(99, proc); err == nil {
		t.Fatal("expected error")
	}
	if err := as.Write(99, page(0), proc); err == nil {
		t.Fatal("expected error")
	}
	_ = mm
}

func TestOOMWhenNothingReclaimable(t *testing.T) {
	mm, _, proc, _ := fixture(1)
	as := mm.NewAddressSpace(1)
	as.Map(1, nil, proc)
	f := as.PTE(1).Frame
	f.KsmStable = true // not reclaimable
	if err := as.Map(2, nil, proc); err == nil {
		t.Fatal("expected OOM")
	}
	if mm.Stats().FailedAllocs != 1 {
		t.Fatal("failed alloc not counted")
	}
}

func TestHostCPUChargedToProc(t *testing.T) {
	mm, eng, _, sw := fixture(2)
	sw.hostCPUPerPage = 5 * sim.Microsecond
	core := sim.NewResource("core")
	proc := sim.NewProc(eng, "app", core)
	as := mm.NewAddressSpace(1)
	as.Map(1, nil, proc)
	as.Map(2, nil, proc)
	before := core.Busy()
	as.Map(3, nil, proc) // direct reclaim: compression on this core
	if core.Busy()-before < 5*sim.Microsecond {
		t.Fatalf("reclaim host CPU not charged to core: %v", core.Busy()-before)
	}
}

func TestKswapdBackgroundReclaim(t *testing.T) {
	p := timing.Default()
	eng := sim.NewEngine()
	store := mem.NewStore("host")
	mm := NewMM(p, store, 0x100000, 32)
	mm.LowWM, mm.HighWM = 8, 16
	sw := newTestSwap()
	mm.SetSwap(sw)
	core := sim.NewResource("kswapd-core")
	k := NewKswapd(eng, mm, core)
	proc := sim.NewProc(eng, "app", nil)
	as := mm.NewAddressSpace(1)
	// Allocate until free pages dip below low watermark (32-25=7 < 8).
	for v := uint64(0); v < 25; v++ {
		if err := as.Map(v, page(byte(v)), proc); err != nil {
			t.Fatal(err)
		}
	}
	if k.Wakeups() == 0 {
		t.Fatal("kswapd never woke")
	}
	eng.Run()
	if !mm.AboveHigh() {
		t.Fatalf("kswapd stopped below high watermark: free=%d", mm.FreePages())
	}
	if mm.Stats().BackgroundReclaims == 0 {
		t.Fatal("no background reclaims recorded")
	}
	// Stop keeps it quiet afterwards.
	k.Stop()
	k.Wake()
	eng.Run()
}

func TestKswapdDoesNotDoubleWake(t *testing.T) {
	p := timing.Default()
	eng := sim.NewEngine()
	mm := NewMM(p, mem.NewStore("h"), 0, 16)
	mm.SetSwap(newTestSwap())
	k := NewKswapd(eng, mm, nil)
	k.Wake()
	k.Wake() // second wake while running is a no-op
	if k.Wakeups() != 1 {
		t.Fatalf("wakeups = %d", k.Wakeups())
	}
}

func TestBackingSwapRoundTrip(t *testing.T) {
	b := NewBackingSwap(20*sim.Microsecond, 25*sim.Microsecond)
	done := b.Write(1, page(0xAD), 0)
	if done != 25*sim.Microsecond {
		t.Fatalf("write done = %v", done)
	}
	got, rdone, err := b.Read(1, done)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page(0xAD)) {
		t.Fatal("data mismatch")
	}
	if rdone != done+20*sim.Microsecond {
		t.Fatalf("read done = %v", rdone)
	}
	if _, _, err := b.Read(99, 0); err == nil {
		t.Fatal("unknown slot must error")
	}
	b.Drop(1)
	if b.Stored() != 0 {
		t.Fatal("drop failed")
	}
}

func TestBackingSwapAsSwapOps(t *testing.T) {
	b := NewBackingSwap(sim.Microsecond, sim.Microsecond)
	var _ SwapOps = b
	done, cpu := b.StorePage(5, page(1), 0)
	if done <= 0 || cpu != 0 {
		t.Fatalf("StorePage = %v, %v", done, cpu)
	}
	got, _, _ := b.LoadPage(5, done)
	if got[0] != 1 {
		t.Fatal("LoadPage data wrong")
	}
}

// Property: after any sequence of map/unmap/read/write operations, the
// frame accounting is consistent: free + in-use == total, and every
// present PTE's frame maps back to it.
func TestFrameAccountingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		mm, _, proc, _ := fixture(8)
		as := mm.NewAddressSpace(1)
		mapped := map[uint64]bool{}
		for op := 0; op < 200; op++ {
			vpn := uint64(rng.Intn(12))
			switch rng.Intn(4) {
			case 0:
				if !mapped[vpn] {
					if err := as.Map(vpn, page(byte(vpn)), proc); err == nil {
						mapped[vpn] = true
					}
				}
			case 1:
				if mapped[vpn] {
					as.Unmap(vpn)
					delete(mapped, vpn)
				}
			case 2:
				if mapped[vpn] {
					as.Read(vpn, proc)
				}
			case 3:
				if mapped[vpn] {
					as.Write(vpn, page(byte(op)), proc)
				}
			}
		}
		inUse := 0
		as.VPNs(func(vpn uint64, pte *PTE) {
			if pte.Present() {
				inUse++
				found := false
				for _, r := range pteFrames(pte) {
					if r == pte {
						found = true
					}
				}
				if !found {
					t.Fatal("rmap does not contain the PTE")
				}
			}
		})
		if mm.FreePages()+inUse != mm.TotalPages() {
			t.Fatalf("accounting: free=%d inUse=%d total=%d",
				mm.FreePages(), inUse, mm.TotalPages())
		}
	}
}

func pteFrames(p *PTE) []*PTE { return p.Frame.rmap }

// ---------- two-list LRU (active/inactive with second chance) ----------

func TestTwoTouchPromotion(t *testing.T) {
	mm, _, proc, _ := fixture(8)
	as := mm.NewAddressSpace(1)
	as.Map(1, page(1), proc)
	if mm.ActivePages() != 0 {
		t.Fatal("fresh page should start inactive")
	}
	as.Read(1, proc) // first touch: referenced
	if mm.ActivePages() != 0 {
		t.Fatal("one touch must not activate")
	}
	as.Read(1, proc) // second touch: promote
	if mm.ActivePages() != 1 || mm.InactivePages() != 0 {
		t.Fatalf("active=%d inactive=%d after double touch", mm.ActivePages(), mm.InactivePages())
	}
	if mm.Stats().Activations != 1 {
		t.Fatal("activation not counted")
	}
}

func TestSecondChanceRotation(t *testing.T) {
	mm, _, proc, _ := fixture(3)
	as := mm.NewAddressSpace(1)
	as.Map(0, page(0), proc)
	as.Map(1, page(1), proc)
	as.Map(2, page(2), proc)
	// Touch every page once, in order: all referenced, list order 0,1,2.
	as.Read(0, proc)
	as.Read(1, proc)
	as.Read(2, proc)
	// Reclaim: every page gets a second chance (bits cleared, rotated);
	// the fallback pass then takes the oldest.
	as.Map(3, page(3), proc)
	if mm.Stats().SecondChances == 0 {
		t.Fatal("second chances not counted")
	}
	if as.PTE(0).Present() {
		t.Fatal("oldest page should be the fallback victim")
	}
	if !as.PTE(1).Present() || !as.PTE(2).Present() {
		t.Fatal("younger pages should survive")
	}
	// A subsequent reclaim now finds cleared bits and evicts directly.
	before := mm.Stats().SecondChances
	as.Map(4, page(4), proc)
	if mm.Stats().SecondChances != before {
		t.Fatal("cleared pages should not get further chances")
	}
}

func TestActiveProtectedFromReclaim(t *testing.T) {
	mm, _, proc, _ := fixture(4)
	as := mm.NewAddressSpace(1)
	for v := uint64(0); v < 4; v++ {
		as.Map(v, page(byte(v)), proc)
	}
	// Promote vpn 0 to active.
	as.Read(0, proc)
	as.Read(0, proc)
	// Reclaim pressure: inactive pages 1..3 go first.
	as.Map(4, page(4), proc)
	as.Map(5, page(5), proc)
	if !as.PTE(0).Present() {
		t.Fatal("active page reclaimed while inactive candidates existed")
	}
}

func TestAgingDemotesActivePages(t *testing.T) {
	mm, _, proc, _ := fixture(16)
	as := mm.NewAddressSpace(1)
	for v := uint64(0); v < 12; v++ {
		as.Map(v, page(byte(v)), proc)
		as.Read(v, proc)
		as.Read(v, proc) // all active
	}
	if mm.ActivePages() != 12 {
		t.Fatalf("active = %d", mm.ActivePages())
	}
	// Reclaim must age pages down rather than failing.
	for v := uint64(12); v < 20; v++ {
		if err := as.Map(v, page(byte(v)), proc); err != nil {
			t.Fatalf("map %d: %v", v, err)
		}
	}
	if mm.Stats().Deactivations == 0 {
		t.Fatal("no aging happened under pressure")
	}
	if mm.Stats().SwapOuts == 0 {
		t.Fatal("no reclaim happened")
	}
}

func TestReclaimFallsBackToActiveList(t *testing.T) {
	// All pages active: reclaim must still find victims (last resort).
	mm, _, proc, _ := fixture(2)
	as := mm.NewAddressSpace(1)
	as.Map(0, page(0), proc)
	as.Map(1, page(1), proc)
	as.Read(0, proc)
	as.Read(0, proc)
	as.Read(1, proc)
	as.Read(1, proc)
	if err := as.Map(2, page(2), proc); err != nil {
		t.Fatalf("alloc with all-active pool failed: %v", err)
	}
}

func TestSwapReadahead(t *testing.T) {
	mm, _, proc, _ := fixture(32)
	mm.ReadaheadPages = 4
	as := mm.NewAddressSpace(1)
	// Map 16 pages, then force them all out with churn.
	for v := uint64(0); v < 16; v++ {
		as.Map(v, page(byte(v)), proc)
	}
	other := mm.NewAddressSpace(2)
	for v := uint64(0); v < 30; v++ {
		other.Map(v, page(0xEE), proc)
		if v >= 16 {
			other.Unmap(v - 16)
		}
	}
	// Some of as's pages are swapped now; sequential access should cluster.
	swapped := 0
	for v := uint64(0); v < 16; v++ {
		if !as.PTE(v).Present() {
			swapped++
		}
	}
	if swapped < 8 {
		t.Skipf("only %d pages swapped; churn too weak", swapped)
	}
	before := mm.Stats()
	for v := uint64(0); v < 16; v++ {
		got, err := as.Read(v, proc)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(v) {
			t.Fatalf("page %d corrupted through readahead", v)
		}
	}
	st := mm.Stats()
	if st.ReadaheadLoads == 0 {
		t.Fatal("no readahead happened")
	}
	if st.ReadaheadHits == 0 {
		t.Fatal("no faults were absorbed by readahead")
	}
	// Majors + readahead hits should cover the swapped set; majors must be
	// well below the swapped count (that is the point of clustering).
	majors := st.MajorFaults - before.MajorFaults
	if int(majors) >= swapped {
		t.Fatalf("majors = %d of %d swapped; readahead ineffective", majors, swapped)
	}
}

func TestReadaheadRespectsPressure(t *testing.T) {
	mm, _, proc, _ := fixture(4)
	mm.ReadaheadPages = 8
	as := mm.NewAddressSpace(1)
	for v := uint64(0); v < 8; v++ {
		as.Map(v, page(byte(v)), proc)
	}
	// Memory is fully pressured (free <= LowWM): faults must not prefetch.
	for v := uint64(0); v < 8; v++ {
		as.Read(v, proc)
	}
	if mm.Stats().ReadaheadLoads != 0 {
		t.Fatal("readahead must not run under memory pressure")
	}
}
