// Package rng is the single place randomness enters the repository. Every
// stochastic component — YCSB key choice, Poisson arrivals, synthetic page
// entropy, the coherence fuzzer's program generator — constructs its
// *rand.Rand here, either directly from a seed (New) or as an independent
// named stream derived from one master seed (Derive). Centralizing
// construction keeps every test, experiment and fuzz run reproducible from
// a single integer and makes ad-hoc `rand.New(rand.NewSource(...))` calls
// easy to audit for (there should be none outside this package).
package rng

import (
	"math/rand"

	"repro/internal/xxhash"
)

// New returns a deterministic generator seeded with seed. It is the
// drop-in, auditable replacement for rand.New(rand.NewSource(seed)).
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Derive returns an independent stream for the component named by path
// (e.g. "fig8.antagonist", "stress.gen"), derived from a master seed.
// Distinct paths yield statistically independent streams; the same
// (master, path) pair always yields the same stream. Use Derive when one
// user-visible seed must fan out to several components without the streams
// aliasing each other.
func Derive(master int64, path string) *rand.Rand {
	return New(DeriveSeed(master, path))
}

// DeriveSeed is the seed Derive would construct its stream from: a pure
// function of (master, path) and nothing else. The parallel experiment
// runner uses it to give every job a seed that depends only on the root
// seed and the job's identity — never on worker count, goroutine
// scheduling or completion order — so a suite run is reproducible from one
// integer regardless of how it was parallelized.
func DeriveSeed(master int64, path string) int64 {
	return int64(xxhash.Sum64([]byte(path), uint64(master)))
}
