package rng

import "testing"

func TestNewDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDeriveStreamsIndependent(t *testing.T) {
	a, b := Derive(42, "alpha"), Derive(42, "beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("streams alias: %d identical draws", same)
	}
}

// TestDeriveSeedMatchesDerive pins that DeriveSeed is exactly the seed
// behind Derive, and that it separates both masters and paths — the
// property the parallel runner's per-job seeding rests on.
func TestDeriveSeedMatchesDerive(t *testing.T) {
	want := Derive(42, "alpha")
	got := New(DeriveSeed(42, "alpha"))
	for i := 0; i < 64; i++ {
		if want.Uint64() != got.Uint64() {
			t.Fatal("DeriveSeed does not reproduce Derive's stream")
		}
	}
	if DeriveSeed(42, "alpha") == DeriveSeed(42, "beta") {
		t.Fatal("distinct paths collided")
	}
	if DeriveSeed(42, "alpha") == DeriveSeed(43, "alpha") {
		t.Fatal("distinct masters collided")
	}
}

func TestDeriveReproducible(t *testing.T) {
	a, b := Derive(42, "alpha"), Derive(42, "alpha")
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (master, path) diverged")
		}
	}
	c, d := Derive(42, "alpha"), Derive(43, "alpha")
	diff := false
	for i := 0; i < 8; i++ {
		if c.Uint64() != d.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different masters produced the same stream")
	}
}
