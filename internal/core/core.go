package core
