package ksm

import (
	"bytes"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/xxhash"
)

// fakeBackend computes instantly with tiny fixed costs.
type fakeBackend struct {
	checksums int
	compares  int
}

func (f *fakeBackend) Name() string    { return "fake" }
func (f *fakeBackend) Offloaded() bool { return false }

func (f *fakeBackend) Checksum(page []byte, src phys.Addr, now sim.Time) ChecksumResult {
	f.checksums++
	return ChecksumResult{
		Sum:     xxhash.PageChecksum(page),
		Done:    now + sim.Microsecond,
		HostCPU: sim.Microsecond,
	}
}

func (f *fakeBackend) Compare(a, b []byte, aAddr, bAddr phys.Addr, now sim.Time) CompareResult {
	f.compares++
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	diff := n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			diff = i
			break
		}
	}
	return CompareResult{FirstDiff: diff, Done: now + sim.Microsecond/2, HostCPU: sim.Microsecond / 2}
}

type fix struct {
	mm      *kernel.MM
	scanner *Scanner
	proc    *sim.Proc
	eng     *sim.Engine
	backend *fakeBackend
}

func newFix(t *testing.T, totalPages int) *fix {
	t.Helper()
	p := timing.Default()
	eng := sim.NewEngine()
	mm := kernel.NewMM(p, mem.NewStore("host"), 0, totalPages)
	mm.SetSwap(kernel.NewBackingSwap(sim.Microsecond, sim.Microsecond))
	fb := &fakeBackend{}
	return &fix{
		mm:      mm,
		scanner: NewScanner(mm, fb),
		proc:    sim.NewProc(eng, "ksmd", nil),
		eng:     eng,
		backend: fb,
	}
}

func page(b byte) []byte {
	d := make([]byte, phys.PageSize)
	for i := range d {
		d[i] = b
	}
	return d
}

// vmWith maps n pages of the given contents into a fresh address space.
func (f *fix) vmWith(t *testing.T, id int, pages ...[]byte) *kernel.AddressSpace {
	t.Helper()
	as := f.mm.NewAddressSpace(id)
	for i, pg := range pages {
		if err := as.Map(uint64(i), pg, f.proc); err != nil {
			t.Fatal(err)
		}
	}
	f.scanner.RegisterRange(as, 0, len(pages))
	return as
}

// scanUntilStable runs full scans until no new merges happen. ksm needs at
// least two passes: one to record checksums, later ones to merge.
func (f *fix) scanUntilStable() int {
	total := 0
	for i := 0; i < 6; i++ {
		m := f.scanner.FullScan(f.proc)
		total += m
		if i > 0 && m == 0 {
			break
		}
	}
	return total
}

func TestMergeIdenticalPagesAcrossVMs(t *testing.T) {
	f := newFix(t, 64)
	// Two VMs with the same "OS code" page (the §VI-B motivation).
	a := f.vmWith(t, 1, page(0xAA), page(0x01))
	b := f.vmWith(t, 2, page(0xAA), page(0x02))
	merged := f.scanUntilStable()
	if merged != 1 {
		t.Fatalf("merged = %d, want 1", merged)
	}
	if a.PTE(0).Frame != b.PTE(0).Frame {
		t.Fatal("identical pages not sharing a frame")
	}
	if a.PTE(0).Writable || b.PTE(0).Writable {
		t.Fatal("merged pages must be CoW-protected")
	}
	if !a.PTE(0).Frame.KsmStable {
		t.Fatal("merged frame must be stable-tree owned")
	}
	// Distinct pages untouched.
	if a.PTE(1).Frame == b.PTE(1).Frame {
		t.Fatal("different pages merged")
	}
	// One frame was freed.
	if f.mm.FreePages() != 64-3 {
		t.Fatalf("free pages = %d, want 61", f.mm.FreePages())
	}
}

func TestMergePreservesContent(t *testing.T) {
	f := newFix(t, 64)
	content := page(0x5E)
	a := f.vmWith(t, 1, content)
	b := f.vmWith(t, 2, content)
	f.scanUntilStable()
	ga, _ := a.Read(0, f.proc)
	gb, _ := b.Read(0, f.proc)
	if !bytes.Equal(ga, content) || !bytes.Equal(gb, content) {
		t.Fatal("merge corrupted content")
	}
}

func TestManyVMsMergeIntoOneStableFrame(t *testing.T) {
	f := newFix(t, 128)
	spaces := make([]*kernel.AddressSpace, 8)
	for i := range spaces {
		spaces[i] = f.vmWith(t, i+1, page(0x42))
	}
	f.scanUntilStable()
	frame := spaces[0].PTE(0).Frame
	for i, as := range spaces {
		if as.PTE(0).Frame != frame {
			t.Fatalf("VM %d not sharing", i)
		}
	}
	st := f.scanner.Stats()
	if st.PagesShared != 1 {
		t.Fatalf("PagesShared = %d, want 1", st.PagesShared)
	}
	if st.PagesSharing != 8 {
		t.Fatalf("PagesSharing = %d, want 8", st.PagesSharing)
	}
	// 7 frames reclaimed.
	if f.mm.FreePages() != 128-1 {
		t.Fatalf("free = %d, want 127", f.mm.FreePages())
	}
}

func TestChangingPageIsSkipped(t *testing.T) {
	f := newFix(t, 64)
	a := f.vmWith(t, 1, page(0x10))
	b := f.vmWith(t, 2, page(0x10))
	// First scan records checksums.
	f.scanner.FullScan(f.proc)
	// Mutate a's page between scans: checksum changes, merge deferred.
	a.Write(0, page(0x11), f.proc)
	m := f.scanner.FullScan(f.proc)
	if m != 0 {
		t.Fatal("changing page should not merge")
	}
	if f.scanner.Stats().ChecksumSkips == 0 {
		t.Fatal("checksum skip not counted")
	}
	_ = b
}

func TestCoWBreakAfterMerge(t *testing.T) {
	f := newFix(t, 64)
	a := f.vmWith(t, 1, page(0x33))
	b := f.vmWith(t, 2, page(0x33))
	f.scanUntilStable()
	if a.PTE(0).Frame != b.PTE(0).Frame {
		t.Fatal("not merged")
	}
	// b writes: CoW break; a unaffected.
	if err := b.Write(0, page(0x44), f.proc); err != nil {
		t.Fatal(err)
	}
	ga, _ := a.Read(0, f.proc)
	gb, _ := b.Read(0, f.proc)
	if ga[0] != 0x33 || gb[0] != 0x44 {
		t.Fatalf("CoW break corrupted: a=%#x b=%#x", ga[0], gb[0])
	}
	if a.PTE(0).Frame == b.PTE(0).Frame {
		t.Fatal("still sharing after write")
	}
}

func TestThirdPageMergesIntoStableTree(t *testing.T) {
	f := newFix(t, 64)
	f.vmWith(t, 1, page(0x77))
	f.vmWith(t, 2, page(0x77))
	f.scanUntilStable()
	before := f.scanner.Stats()
	// A third VM arrives with the same content: merges via the stable tree
	// (PagesMerged), not a new unstable promotion.
	c := f.vmWith(t, 3, page(0x77))
	f.scanUntilStable()
	after := f.scanner.Stats()
	if after.PagesMerged != before.PagesMerged+1 {
		t.Fatalf("stable merges: %d → %d", before.PagesMerged, after.PagesMerged)
	}
	if after.NewStable != before.NewStable {
		t.Fatal("should not create a second stable node")
	}
	if !c.PTE(0).Frame.KsmStable {
		t.Fatal("third VM not on the stable frame")
	}
}

func TestMultipleDistinctContentsFormSeparateNodes(t *testing.T) {
	f := newFix(t, 128)
	contents := []byte{0x01, 0x02, 0x03, 0x04}
	for i := 0; i < 8; i++ {
		f.vmWith(t, i+1, page(contents[i%4]))
	}
	f.scanUntilStable()
	st := f.scanner.Stats()
	if st.PagesShared != 4 {
		t.Fatalf("PagesShared = %d, want 4 stable nodes", st.PagesShared)
	}
	if st.PagesSharing != 8 {
		t.Fatalf("PagesSharing = %d, want 8", st.PagesSharing)
	}
}

func TestSwappedPagesAreSkipped(t *testing.T) {
	f := newFix(t, 4)
	a := f.vmWith(t, 1, page(0x21), page(0x22), page(0x23), page(0x24))
	// Exhaust memory so an extra map swaps a page out.
	as2 := f.mm.NewAddressSpace(2)
	if err := as2.Map(0, page(0x99), f.proc); err != nil {
		t.Fatal(err)
	}
	// Scanning must not fault pages back in or crash.
	before := f.mm.Stats().SwapIns
	f.scanner.FullScan(f.proc)
	if f.mm.Stats().SwapIns != before {
		t.Fatal("ksm must not fault swapped pages in")
	}
	_ = a
}

func TestStatsAndStringer(t *testing.T) {
	f := newFix(t, 64)
	f.vmWith(t, 1, page(1))
	f.vmWith(t, 2, page(1))
	f.scanUntilStable()
	st := f.scanner.Stats()
	if st.FullScans == 0 || st.PagesScanned == 0 || st.Compares == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HostCPU <= 0 {
		t.Fatal("host CPU not accounted")
	}
	if s := f.scanner.String(); s == "" {
		t.Fatal("empty String()")
	}
	if f.scanner.Registered() != 2 {
		t.Fatalf("registered = %d", f.scanner.Registered())
	}
}

func TestScanOneEmptyScannerIsSafe(t *testing.T) {
	f := newFix(t, 8)
	if f.scanner.ScanOne(f.proc) {
		t.Fatal("empty scanner merged something")
	}
	if f.scanner.FullScan(f.proc) != 0 {
		t.Fatal("empty full scan merged something")
	}
}

func TestDaemonScansPeriodically(t *testing.T) {
	f := newFix(t, 64)
	f.vmWith(t, 1, page(0x61))
	f.vmWith(t, 2, page(0x61))
	core := sim.NewResource("core")
	d := NewDaemon(f.eng, f.scanner, core)
	d.PagesPerBatch = 2
	d.SleepBetween = sim.Millisecond
	d.Start()
	f.eng.RunUntil(20 * sim.Millisecond)
	d.Stop()
	f.eng.Run()
	if d.Batches() < 3 {
		t.Fatalf("batches = %d", d.Batches())
	}
	st := f.scanner.Stats()
	if st.NewStable != 1 {
		t.Fatalf("daemon did not merge: %+v", st)
	}
	// Daemon consumed core time.
	if core.Busy() <= 0 {
		t.Fatal("ksmd consumed no CPU")
	}
}

func TestMergedFrameNotReclaimed(t *testing.T) {
	// ksm-stable frames must not be chosen by reclaim (they'd lose shared
	// data tracking).
	f := newFix(t, 4)
	a := f.vmWith(t, 1, page(0x71))
	b := f.vmWith(t, 2, page(0x71))
	f.scanUntilStable()
	stable := a.PTE(0).Frame
	// Force heavy reclaim.
	as3 := f.mm.NewAddressSpace(3)
	for v := uint64(0); v < 3; v++ {
		if err := as3.Map(v, page(byte(v)), f.proc); err != nil {
			break
		}
	}
	if a.PTE(0).Frame != stable && b.PTE(0).Frame != stable {
		t.Skip("stable frame was swapped, acceptable in overload")
	}
	if !stable.KsmStable {
		t.Fatal("stable flag lost")
	}
}

func TestUnregisterSpace(t *testing.T) {
	f := newFix(t, 64)
	a := f.vmWith(t, 1, page(0x55), page(0x56))
	b := f.vmWith(t, 2, page(0x55))
	if f.scanner.Registered() != 3 {
		t.Fatalf("registered = %d", f.scanner.Registered())
	}
	f.scanUntilStable()
	removed := f.scanner.UnregisterSpace(a)
	if removed != 2 || f.scanner.Registered() != 1 {
		t.Fatalf("removed %d, left %d", removed, f.scanner.Registered())
	}
	// Scanning continues safely on the remaining VM.
	for i := 0; i < 10; i++ {
		f.scanner.ScanOne(f.proc)
	}
	// Existing merges still unwind via CoW.
	if err := b.Write(0, page(0x66), f.proc); err != nil {
		t.Fatal(err)
	}
	ga, _ := a.Read(0, f.proc)
	if ga[0] != 0x55 {
		t.Fatal("CoW unwind corrupted the unregistered VM")
	}
	// Unregistering an unknown space is a no-op.
	other := f.mm.NewAddressSpace(99)
	if f.scanner.UnregisterSpace(other) != 0 {
		t.Fatal("phantom removal")
	}
}
