// Package ksm implements kernel samepage merging (§VI-B): a scanner that
// walks madvise(MERGEABLE)-registered pages of multiple address spaces
// (VMs), computes a 32-bit xxhash checksum per page as a change hint,
// classifies pages through the unstable and stable content-ordered trees
// using byte-by-byte comparison, and merges identical pages into a single
// CoW-protected frame.
//
// The two CPU- and memory-intensive data-plane functions — checksum and
// page comparison — run through a pluggable Backend (host CPU, PCIe device
// or CXL Type-2 device), exactly the offload split of the paper.
package ksm

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/phys"
	"repro/internal/sim"
)

// Backend performs ksm's offloadable data-plane functions.
type Backend interface {
	Name() string
	// Offloaded reports whether the data plane runs on a device (the
	// scanner then sleeps per page, yielding its core — a preemption
	// point), or on the host CPU (the scanner fills its whole quantum).
	Offloaded() bool
	// Checksum computes the page's 32-bit change hint. src is the page's
	// physical address (the device backends pull it over the interconnect).
	Checksum(page []byte, src phys.Addr, now sim.Time) ChecksumResult
	// Compare reports the index of the first differing byte between two
	// pages (len(a) when equal).
	Compare(a, b []byte, aAddr, bAddr phys.Addr, now sim.Time) CompareResult
}

// ChecksumResult is a backend checksum outcome.
type ChecksumResult struct {
	Sum           uint32
	Done          sim.Time
	HostCPU       sim.Time
	PollutedLines int
}

// CompareResult is a backend comparison outcome.
type CompareResult struct {
	FirstDiff     int
	Done          sim.Time
	HostCPU       sim.Time
	PollutedLines int
}

// item is one registered candidate page.
type item struct {
	as  *kernel.AddressSpace
	vpn uint64
}

// treeNode is a node of the unstable or stable tree, ordered by page
// content.
type treeNode struct {
	left, right *treeNode
	// frame anchors stable nodes; it is the merged CoW frame.
	frame *kernel.Frame
	// it anchors unstable nodes; the content is re-read at compare time
	// (that is what makes the tree "unstable").
	it item
}

// Stats counts scanner events, mirroring /sys/kernel/mm/ksm.
type Stats struct {
	FullScans     uint64
	PagesScanned  uint64
	ChecksumSkips uint64 // page still changing: checksum differs from last scan
	PagesMerged   uint64 // merged into an existing stable node
	NewStable     uint64 // unstable-match promotions to the stable tree
	PagesShared   uint64 // current stable frames
	PagesSharing  uint64 // current PTEs pointing at stable frames
	Compares      uint64
	HostCPU       sim.Time
	Polluted      uint64
}

// Scanner is the ksm daemon state.
type Scanner struct {
	mm      *kernel.MM
	backend Backend

	items    []item
	cursor   int
	checksum map[item]uint32

	stable   *treeNode
	unstable *treeNode

	stats Stats
}

// NewScanner builds a scanner over mm with the given data-plane backend.
func NewScanner(mm *kernel.MM, backend Backend) *Scanner {
	if backend == nil {
		panic("ksm: backend required")
	}
	return &Scanner{mm: mm, backend: backend, checksum: make(map[item]uint32)}
}

// Backend returns the active backend.
func (s *Scanner) Backend() Backend { return s.backend }

// RegisterRange marks count pages starting at startVPN in as as mergeable
// (the madvise(MADV_MERGEABLE) registration).
func (s *Scanner) RegisterRange(as *kernel.AddressSpace, startVPN uint64, count int) {
	for i := 0; i < count; i++ {
		s.items = append(s.items, item{as: as, vpn: startVPN + uint64(i)})
	}
	sort.Slice(s.items, func(i, j int) bool {
		a, b := s.items[i], s.items[j]
		if a.as.ID() != b.as.ID() {
			return a.as.ID() < b.as.ID()
		}
		return a.vpn < b.vpn
	})
}

// Registered reports how many pages are registered.
func (s *Scanner) Registered() int { return len(s.items) }

// UnregisterSpace removes every candidate page belonging to as (the
// madvise(MADV_UNMERGEABLE) / VM-teardown path). Existing merges stay in
// place — they unwind through CoW as the pages are written or unmapped.
func (s *Scanner) UnregisterSpace(as *kernel.AddressSpace) int {
	kept := s.items[:0]
	removed := 0
	for _, it := range s.items {
		if it.as == as {
			delete(s.checksum, it)
			removed++
			continue
		}
		kept = append(kept, it)
	}
	s.items = kept
	if s.cursor > len(s.items) {
		s.cursor = 0
	}
	// Unstable-tree nodes referencing the space become stale; they are
	// re-validated lazily on the next compare (readPage returns nil) and
	// the whole tree resets at the end of every full scan anyway.
	return removed
}

// Stats returns a copy of the counters with the current sharing census.
func (s *Scanner) Stats() Stats {
	st := s.stats
	st.PagesShared, st.PagesSharing = s.census(s.stable)
	return st
}

func (s *Scanner) census(n *treeNode) (shared, sharing uint64) {
	if n == nil {
		return 0, 0
	}
	ls, lg := s.census(n.left)
	rs, rg := s.census(n.right)
	return ls + rs + 1, lg + rg + uint64(n.frame.RefCount())
}

// readPage fetches the current content of a resident candidate page; it
// returns nil for swapped or unmapped pages (ksm skips those).
func (s *Scanner) readPage(it item) ([]byte, *kernel.PTE) {
	pte := it.as.PTE(it.vpn)
	if pte == nil || !pte.Present() {
		return nil, nil
	}
	page := make([]byte, phys.PageSize)
	s.mm.Store.Read(pte.Frame.Addr, page)
	return page, pte
}

func frameContent(mm *kernel.MM, f *kernel.Frame) []byte {
	page := make([]byte, phys.PageSize)
	mm.Store.Read(f.Addr, page)
	return page
}

// scanCtx accumulates one page scan's timing: the data-plane operations of
// a single scan are charged to the executing process in one piece (host-CPU
// work up front, then one sleep until the chained device operations
// complete), so the process's core claims stay aligned with engine time.
type scanCtx struct {
	cpu sim.Time // host-CPU work accumulated
	now sim.Time // virtual clock chaining the backend operations
}

// ScanOne advances the scan cursor by one page, performing the full §VI-B
// workflow on it. The data-plane work runs through the backend; host-CPU
// time is charged to proc. It reports whether the page was merged.
func (s *Scanner) ScanOne(proc *sim.Proc) (merged bool) {
	if len(s.items) == 0 {
		return false
	}
	if s.cursor >= len(s.items) {
		s.endFullScan()
	}
	it := s.items[s.cursor]
	s.cursor++
	s.stats.PagesScanned++

	page, pte := s.readPage(it)
	if page == nil {
		return false
	}
	// Already merged into the stable tree? Nothing to do.
	if pte.Frame.KsmStable {
		return false
	}

	// Control plane (tree walk bookkeeping, rmap, cursor management).
	proc.Compute(s.mm.P.SW.KsmControlPlane)
	ctx := &scanCtx{now: proc.Now()}
	merged = s.scanPage(ctx, it, pte, page)
	proc.Compute(ctx.cpu)
	proc.AdvanceTo(ctx.now)
	return merged
}

// scanPage runs the checksum/classify/merge workflow under ctx's clocks.
func (s *Scanner) scanPage(ctx *scanCtx, it item, pte *kernel.PTE, page []byte) bool {
	// ① checksum hint: skip pages whose content is still changing.
	cres := s.backend.Checksum(page, pte.Frame.Addr, ctx.now)
	s.charge(ctx, cres.HostCPU, cres.Done, cres.PollutedLines)
	last, seen := s.checksum[it]
	s.checksum[it] = cres.Sum
	if !seen || last != cres.Sum {
		s.stats.ChecksumSkips++
		return false
	}

	// ② stable tree search.
	if node := s.searchStable(page, ctx); node != nil {
		s.mergeIntoStable(node, pte)
		s.stats.PagesMerged++
		return true
	}

	// ③ unstable tree search.
	if node, parent, left := s.searchUnstable(page, ctx); node != nil {
		if s.promote(node, parent, left, pte, page, ctx) {
			s.stats.NewStable++
			return true
		}
		return false
	}
	return false
}

func (s *Scanner) charge(ctx *scanCtx, hostCPU, done sim.Time, polluted int) {
	ctx.cpu += hostCPU
	if done > ctx.now {
		ctx.now = done
	}
	s.stats.HostCPU += hostCPU
	s.stats.Polluted += uint64(polluted)
}

// compare runs the backend comparison and returns bytes.Compare semantics.
func (s *Scanner) compare(a, b []byte, aAddr, bAddr phys.Addr, ctx *scanCtx) int {
	res := s.backend.Compare(a, b, aAddr, bAddr, ctx.now)
	s.charge(ctx, res.HostCPU, res.Done, res.PollutedLines)
	s.stats.Compares++
	if res.FirstDiff >= len(a) && res.FirstDiff >= len(b) {
		return 0
	}
	i := res.FirstDiff
	if i >= len(a) {
		return -1
	}
	if i >= len(b) {
		return 1
	}
	return int(a[i]) - int(b[i])
}

// searchStable walks the stable tree for a content match.
func (s *Scanner) searchStable(page []byte, ctx *scanCtx) *treeNode {
	n := s.stable
	for n != nil {
		c := s.compare(page, frameContent(s.mm, n.frame), 0, n.frame.Addr, ctx)
		switch {
		case c == 0:
			return n
		case c < 0:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil
}

// searchUnstable walks the unstable tree; a miss inserts the candidate.
// It returns the matching node (nil after insertion) plus its parent link
// for removal.
func (s *Scanner) searchUnstable(page []byte, ctx *scanCtx) (match, parent *treeNode, left bool) {
	if s.unstable == nil {
		s.unstable = &treeNode{it: s.items[s.cursor-1]}
		return nil, nil, false
	}
	n := s.unstable
	for {
		nodePage, nodePTE := s.readPage(n.it)
		if nodePage == nil {
			// The tree-resident candidate vanished (swapped/unmapped);
			// treat as smaller to keep walking deterministically.
			nodePage = make([]byte, phys.PageSize)
		}
		var nodeAddr phys.Addr
		if nodePTE != nil {
			nodeAddr = nodePTE.Frame.Addr
		}
		c := s.compare(page, nodePage, 0, nodeAddr, ctx)
		if c == 0 && nodePTE != nil {
			return n, parent, left
		}
		parent = n
		if c < 0 {
			if n.left == nil {
				n.left = &treeNode{it: s.items[s.cursor-1]}
				return nil, nil, false
			}
			left = true
			n = n.left
		} else {
			if n.right == nil {
				n.right = &treeNode{it: s.items[s.cursor-1]}
				return nil, nil, false
			}
			left = false
			n = n.right
		}
	}
}

// mergeIntoStable points pte at the stable node's frame (CoW).
func (s *Scanner) mergeIntoStable(node *treeNode, pte *kernel.PTE) {
	s.mm.SharePTEs(node.frame, pte)
}

// promote merges two unstable candidates into a new stable node.
func (s *Scanner) promote(node, parent *treeNode, leftChild bool, pte *kernel.PTE, page []byte, ctx *scanCtx) bool {
	_, nodePTE := s.readPage(node.it)
	if nodePTE == nil || nodePTE == pte {
		return false
	}
	keeper := nodePTE.Frame
	keeper.KsmStable = true
	s.mm.MarkReadOnly(keeper)
	s.mm.SharePTEs(keeper, pte)
	s.insertStable(&treeNode{frame: keeper}, ctx, page)
	// Remove the promoted node from the unstable tree by replacing it with
	// a child-merge (simple BST deletion).
	s.removeUnstable(node, parent, leftChild)
	return true
}

func (s *Scanner) insertStable(n *treeNode, ctx *scanCtx, page []byte) {
	if s.stable == nil {
		s.stable = n
		return
	}
	cur := s.stable
	for {
		c := s.compare(page, frameContent(s.mm, cur.frame), 0, cur.frame.Addr, ctx)
		if c < 0 {
			if cur.left == nil {
				cur.left = n
				return
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = n
				return
			}
			cur = cur.right
		}
	}
}

func (s *Scanner) removeUnstable(node, parent *treeNode, leftChild bool) {
	var repl *treeNode
	switch {
	case node.left == nil:
		repl = node.right
	case node.right == nil:
		repl = node.left
	default:
		// Splice the in-order successor.
		succParent, succ := node, node.right
		for succ.left != nil {
			succParent, succ = succ, succ.left
		}
		if succParent != node {
			succParent.left = succ.right
			succ.right = node.right
		}
		succ.left = node.left
		repl = succ
	}
	switch {
	case parent == nil:
		s.unstable = repl
	case leftChild:
		parent.left = repl
	default:
		parent.right = repl
	}
}

// endFullScan wraps the cursor and resets the unstable tree, as the kernel
// does at the end of every full scan.
func (s *Scanner) endFullScan() {
	s.cursor = 0
	s.unstable = nil
	s.stats.FullScans++
}

// FullScan runs one complete pass over all registered pages.
func (s *Scanner) FullScan(proc *sim.Proc) (merged int) {
	if len(s.items) == 0 {
		return 0
	}
	if s.cursor != 0 {
		s.endFullScan()
	}
	for i := 0; i < len(s.items); i++ {
		if s.ScanOne(proc) {
			merged++
		}
	}
	return merged
}

// String summarizes the scanner for diagnostics.
func (s *Scanner) String() string {
	st := s.Stats()
	return fmt.Sprintf("ksm[%s]: scanned=%d merged=%d stable=%d sharing=%d",
		s.backend.Name(), st.PagesScanned, st.PagesMerged+st.NewStable, st.PagesShared, st.PagesSharing)
}
