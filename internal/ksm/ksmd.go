package ksm

import (
	"math/rand"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Daemon is ksmd: the periodic incremental scanner thread. Every wake it
// scans PagesPerBatch candidate pages (pages_to_scan) and sleeps
// SleepBetween (sleep_millisecs), exactly the kernel's pacing knobs.
type Daemon struct {
	Scanner *Scanner
	proc    *sim.Proc
	eng     *sim.Engine

	// PagesPerBatch is the kernel's pages_to_scan.
	PagesPerBatch int
	// SleepBetween is the kernel's sleep_millisecs.
	SleepBetween sim.Time
	// FloatCores, when set, makes the daemon migrate round-robin across
	// these cores at batch boundaries — ksmd is not pinned, so over a run
	// it disturbs every application core (§VII).
	FloatCores []*sim.Resource

	// sleepSrc, when set via SetSleepSource, replaces the fixed
	// SleepBetween with drawn inter-batch gaps.
	sleepSrc workload.ArrivalSource
	sleepRng *rand.Rand

	running bool
	stopped bool
	batches uint64
	coreIdx int
	// inBatch is the page count of the batch in progress, carried across
	// per-page scheduling slices of an offloaded backend.
	inBatch int
	// stepFn is the step method bound once, so the scan loop reschedules
	// without a per-event closure or method-value allocation.
	stepFn func(*sim.Proc)
}

// NewDaemon builds ksmd over scanner, pinned to core.
func NewDaemon(eng *sim.Engine, scanner *Scanner, core *sim.Resource) *Daemon {
	d := &Daemon{
		Scanner:       scanner,
		eng:           eng,
		proc:          sim.NewProc(eng, "ksmd", core),
		PagesPerBatch: 100,
		SleepBetween:  20 * sim.Millisecond,
	}
	d.stepFn = d.step
	return d
}

// SetSleepSource replaces the fixed SleepBetween pacing with inter-batch
// gaps drawn from src (e.g. a workload.Temporal curve modelling a tuned
// ksmd that backs off under load). The draws consume a dedicated seeded
// stream, so the daemon's pacing replays deterministically.
func (d *Daemon) SetSleepSource(src workload.ArrivalSource, seed int64) {
	d.sleepSrc = src
	d.sleepRng = rng.New(seed)
}

// Proc exposes the daemon's process.
func (d *Daemon) Proc() *sim.Proc { return d.proc }

// Batches reports how many scan batches have run.
func (d *Daemon) Batches() uint64 { return d.batches }

// Start begins the scan loop.
func (d *Daemon) Start() {
	if d.running {
		return
	}
	d.running = true
	d.stopped = false
	d.inBatch = 0
	d.proc.AdvanceTo(d.eng.Now())
	d.proc.Schedule(d.stepFn)
}

// Stop halts the loop after the current batch.
func (d *Daemon) Stop() { d.stopped = true }

// step scans pages until the quantum ends, resuming the batch recorded in
// d.inBatch. A host-CPU backend fills the whole PagesPerBatch quantum in
// one scheduling slice (co-runners on the core wait — the §VII
// interference); an offloaded backend makes the scanner sleep per page, so
// each page is its own event and co-runners interleave in simulated-time
// order.
func (d *Daemon) step(p *sim.Proc) {
	if d.stopped {
		d.running = false
		return
	}
	offloaded := d.Scanner.Backend().Offloaded()
	inBatch := d.inBatch
	for {
		d.Scanner.ScanOne(p)
		inBatch++
		if inBatch >= d.PagesPerBatch {
			d.batches++
			sleep := d.SleepBetween
			if d.sleepSrc != nil {
				sleep = d.sleepSrc.GapAt(d.sleepRng, d.eng.Now())
			}
			p.Sleep(sleep)
			inBatch = 0
			if len(d.FloatCores) > 0 {
				d.coreIdx = (d.coreIdx + 1) % len(d.FloatCores)
				p.SetCore(d.FloatCores[d.coreIdx])
			}
			break
		}
		if offloaded {
			break // the device wait was a yield: new event per page
		}
	}
	d.inBatch = inBatch
	p.Schedule(d.stepFn)
}
