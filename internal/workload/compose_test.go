package workload_test

import (
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// diurnal is a 24-"hour" base curve (hours compressed to seconds so test
// times stay small): overnight trough, morning ramp, midday peak, evening
// shoulder.
func diurnal() workload.RateCurve {
	return workload.MustNewRateCurve(24*sim.Second,
		workload.RatePoint{At: 0, RatePerSec: 200},
		workload.RatePoint{At: 6 * sim.Second, RatePerSec: 500},
		workload.RatePoint{At: 12 * sim.Second, RatePerSec: 1000},
		workload.RatePoint{At: 18 * sim.Second, RatePerSec: 700})
}

// weekly is a dimensionless 7-day multiplier envelope over the diurnal
// base: weekdays run hot, the weekend drops off.
func weekly() workload.RateCurve {
	return workload.MustNewRateCurve(7*24*sim.Second,
		workload.RatePoint{At: 0, RatePerSec: 1.0},
		workload.RatePoint{At: 4 * 24 * sim.Second, RatePerSec: 1.2},
		workload.RatePoint{At: 5 * 24 * sim.Second, RatePerSec: 0.6},
		workload.RatePoint{At: 6 * 24 * sim.Second, RatePerSec: 0.4})
}

// TestComposeExactAtAnchors: the composed curve's rate equals the product
// of the inputs bit for bit at every anchor of either input — base
// anchors in every base repetition, envelope anchors, and coincident
// ones — because anchors are where the piecewise-linear approximation of
// the piecewise-quadratic product is pinned.
func TestComposeExactAtAnchors(t *testing.T) {
	base, env := diurnal(), weekly()
	c, err := base.Compose(env)
	if err != nil {
		t.Fatal(err)
	}
	if c.Period != env.Period {
		t.Fatalf("composed period %v, want envelope period %v", c.Period, env.Period)
	}
	reps := env.Period / base.Period
	for k := sim.Time(0); k < reps; k++ {
		for _, p := range base.Points {
			at := k*base.Period + p.At
			want := base.RateAt(at) * env.RateAt(at)
			if got := c.RateAt(at); got != want {
				t.Errorf("base anchor rep %d at %v: RateAt = %v, want exactly %v", k, at, got, want)
			}
		}
	}
	for _, p := range env.Points {
		want := base.RateAt(p.At) * env.RateAt(p.At)
		if got := c.RateAt(p.At); got != want {
			t.Errorf("envelope anchor at %v: RateAt = %v, want exactly %v", p.At, got, want)
		}
	}
}

// TestComposeSeamExact extends the RateAt(Period) pin to composed curves:
// the composed period seam must agree exactly with the curve's origin,
// and every interior base-period seam must agree with the product there.
func TestComposeSeamExact(t *testing.T) {
	base, env := diurnal(), weekly()
	c := base.MustCompose(env)
	if got, first := c.RateAt(c.Period), c.RateAt(0); got != first {
		t.Errorf("RateAt(Period) = %v, RateAt(0) = %v, want exact agreement", got, first)
	}
	for k := sim.Time(1); k < env.Period/base.Period; k++ {
		at := k * base.Period
		want := base.RateAt(at) * env.RateAt(at)
		if got := c.RateAt(at); got != want {
			t.Errorf("base seam at %v: RateAt = %v, want exactly %v", at, got, want)
		}
	}
}

// TestComposeBetweenAnchorsBounded: inside a segment the composed curve
// is a secant of the true quadratic product, so it must stay within the
// segment's product range (sanity against gross interpolation bugs).
func TestComposeBetweenAnchorsBounded(t *testing.T) {
	base, env := diurnal(), weekly()
	c := base.MustCompose(env)
	for at := sim.Time(0); at < c.Period; at += 100 * sim.Millisecond {
		got := c.RateAt(at)
		truth := base.RateAt(at) * env.RateAt(at)
		// Secant error on a quadratic is at most a quarter of the
		// segment's rate swing; a generous relative bound suffices here.
		if diff := got - truth; diff < -0.25*truth-1 || diff > 0.25*truth+1 {
			t.Fatalf("at %v: composed %v vs product %v diverge beyond secant bound", at, got, truth)
		}
	}
}

// TestComposeFeedsTemporal: a composed curve drives Temporal like any
// other, with the package's determinism contract intact.
func TestComposeFeedsTemporal(t *testing.T) {
	c := diurnal().MustCompose(weekly())
	gaps := func() []sim.Time {
		src := workload.NewTemporal(c)
		r := rng.New(11)
		now := sim.Time(0)
		var out []sim.Time
		for i := 0; i < 500; i++ {
			g := src.GapAt(r, now)
			if g <= 0 {
				t.Fatalf("draw %d: non-positive gap %v", i, g)
			}
			now += g
			out = append(out, g)
		}
		return out
	}
	a, b := gaps(), gaps()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestComposeErrors rejects aperiodic inputs and misaligned periods.
func TestComposeErrors(t *testing.T) {
	periodic := diurnal()
	flat := workload.FlatRate(100)
	cases := []struct {
		name      string
		base, env workload.RateCurve
		wantSub   string
	}{
		{"aperiodic base", flat, weekly(), "periodic base"},
		{"aperiodic envelope", periodic, flat, "periodic envelope"},
		{"misaligned period", periodic, workload.MustNewRateCurve(36*sim.Second,
			workload.RatePoint{At: 0, RatePerSec: 1}), "integer multiple"},
	}
	for _, tc := range cases {
		_, err := tc.base.Compose(tc.env)
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestComposeCoincidentAnchors: when a base anchor replica lands exactly
// on an envelope anchor the union keeps one point, and validation still
// passes (strictly increasing At).
func TestComposeCoincidentAnchors(t *testing.T) {
	base := workload.MustNewRateCurve(2*sim.Second,
		workload.RatePoint{At: 0, RatePerSec: 10},
		workload.RatePoint{At: sim.Second, RatePerSec: 20})
	env := workload.MustNewRateCurve(4*sim.Second,
		workload.RatePoint{At: 0, RatePerSec: 1},
		workload.RatePoint{At: 2 * sim.Second, RatePerSec: 2})
	c, err := base.Compose(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].At <= c.Points[i-1].At {
			t.Fatalf("anchor %d not strictly increasing: %+v", i, c.Points)
		}
	}
	// 4 base anchor replicas, 2 envelope anchors, 2 coincide (0 and 2s).
	if len(c.Points) != 4 {
		t.Fatalf("got %d anchors, want 4 (coincident ones merged): %+v", len(c.Points), c.Points)
	}
	if got := c.RateAt(2 * sim.Second); got != 10*2 {
		t.Errorf("coincident anchor rate = %v, want 20", got)
	}
}
