package workload_test

import (
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/ycsb"
)

// The expectations below are the exact sequences the pre-extraction
// generators in internal/ycsb and internal/kvs produced for these seeds.
// They pin the internal/workload refactor: a diff here means the shared
// generators changed behaviour, which silently recalibrates every golden
// file downstream (fig8, kvtier, the infer section).

func ops(g *ycsb.Generator, n int) []ycsb.Op {
	out := make([]ycsb.Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestYCSBSequencesPinned(t *testing.T) {
	const records, seed = 10000, 7
	cases := []struct {
		name string
		w    ycsb.Workload
		dist ycsb.Distribution
		want []ycsb.Op
	}{
		{"A/uniform", ycsb.A, ycsb.Uniform, []ycsb.Op{
			{Kind: ycsb.Read, Key: 1224}, {Kind: ycsb.Update, Key: 7379},
			{Kind: ycsb.Read, Key: 7713}, {Kind: ycsb.Update, Key: 4482},
			{Kind: ycsb.Update, Key: 6988}, {Kind: ycsb.Update, Key: 8182},
			{Kind: ycsb.Update, Key: 3952}, {Kind: ycsb.Update, Key: 8097},
		}},
		{"B/zipfian", ycsb.B, ycsb.Zipfian, []ycsb.Op{
			{Kind: ycsb.Read, Key: 4}, {Kind: ycsb.Read, Key: 4273},
			{Kind: ycsb.Read, Key: 1}, {Kind: ycsb.Read, Key: 15},
			{Kind: ycsb.Update, Key: 371}, {Kind: ycsb.Read, Key: 24},
			{Kind: ycsb.Read, Key: 2326}, {Kind: ycsb.Read, Key: 2},
		}},
		{"C/zipfian", ycsb.C, ycsb.Zipfian, []ycsb.Op{
			{Kind: ycsb.Read, Key: 4586}, {Kind: ycsb.Read, Key: 4},
			{Kind: ycsb.Read, Key: 5}, {Kind: ycsb.Read, Key: 4273},
			{Kind: ycsb.Read, Key: 533}, {Kind: ycsb.Read, Key: 1},
			{Kind: ycsb.Read, Key: 16}, {Kind: ycsb.Read, Key: 15},
		}},
		{"D/latest", ycsb.D, ycsb.Latest, []ycsb.Op{
			{Kind: ycsb.Read, Key: 9595}, {Kind: ycsb.Read, Key: 9244},
			{Kind: ycsb.Read, Key: 9705}, {Kind: ycsb.Read, Key: 9490},
			{Kind: ycsb.Insert, Key: 10000}, {Kind: ycsb.Read, Key: 8743},
			{Kind: ycsb.Read, Key: 9643}, {Kind: ycsb.Read, Key: 9684},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ops(ycsb.MustNewGenerator(tc.w, tc.dist, records, seed), len(tc.want))
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("sequence changed for seed %d:\n got  %v\n want %v", seed, got, tc.want)
			}
			// Identical across runs: a second generator with the same seed
			// must replay the exact stream.
			again := ops(ycsb.MustNewGenerator(tc.w, tc.dist, records, seed), len(tc.want))
			if !reflect.DeepEqual(got, again) {
				t.Fatalf("same seed diverged across runs:\n run1 %v\n run2 %v", got, again)
			}
		})
	}
}

func TestPoissonGapsPinned(t *testing.T) {
	// The exact gaps the kvs.LoadGen arrival loop drew before the
	// extraction, for rng.New(9) at 60k ops/s.
	want := []sim.Time{157111, 4008192, 9483739, 13166516, 1445083, 27559394, 8962607, 10484771}
	p := workload.Poisson{RatePerSec: 60_000}
	r := rng.New(9)
	got := make([]sim.Time, len(want))
	for i := range got {
		got[i] = p.Gap(r)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("arrival gaps changed for seed 9:\n got  %v\n want %v", got, want)
	}
	r2 := rng.New(9)
	for i, w := range got {
		if g := p.Gap(r2); g != w {
			t.Fatalf("gap %d diverged across runs: %v vs %v", i, g, w)
		}
	}
}

func TestPoissonGapFloor(t *testing.T) {
	// An absurd rate forces sub-nanosecond draws; the floor keeps arrivals
	// strictly advancing in simulated time.
	p := workload.Poisson{RatePerSec: 1e18}
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if g := p.Gap(r); g < sim.Nanosecond {
			t.Fatalf("gap %d below floor: %v", i, g)
		}
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	const n = 1000
	z := workload.NewZipf(n, 0.99)
	if z.N() != n {
		t.Fatalf("N() = %d, want %d", z.N(), n)
	}
	r := rng.New(3)
	low := 0
	for i := 0; i < 10000; i++ {
		k := z.Next(r)
		if k > n {
			t.Fatalf("rank %d out of range for n=%d", k, n)
		}
		if k < n/10 {
			low++
		}
	}
	// theta=0.99 concentrates most mass in the first decile (~69% here).
	if low < 6000 {
		t.Fatalf("zipf not skewed: only %d/10000 draws in first decile", low)
	}
}

func TestLatestSkewAndBounds(t *testing.T) {
	const records = 10000
	r := rng.New(5)
	recent := 0
	for i := 0; i < 10000; i++ {
		k := workload.Latest(r, records)
		if k >= records {
			t.Fatalf("key %d out of range", k)
		}
		if k >= records-records/10 {
			recent++
		}
	}
	// Exponential decay with mean records/20 keeps ~86% of draws within
	// the newest decile.
	if recent < 8000 {
		t.Fatalf("latest not skewed: only %d/10000 draws in newest decile", recent)
	}
}
