package workload

import (
	"fmt"
	"math/rand"
)

// Client cohorts: production request streams are mixtures of populations
// with very different shapes — interactive chat (short prompts, long
// decodes), RAG pipelines (huge prompts, short answers), batch scoring —
// and distinct key skew. A Mix assigns each request to a cohort by weight;
// the per-cohort shape and skew parameters then drive the workload's
// generators (internal/infer builds one zipf pair per cohort).

// Cohort describes one client population's traffic shape.
type Cohort struct {
	// Name labels the cohort in reports and traces.
	Name string
	// Weight is the cohort's relative share of requests (any positive
	// scale; weights are normalized across the Mix).
	Weight float64
	// KeyTheta is the zipfian skew of the cohort's key choice, in (0, 1);
	// 0 means "use the workload's default skew".
	KeyTheta float64
	// PromptMin/PromptMax and DecodeMin/DecodeMax bound the cohort's
	// prompt and generation lengths in tokens (serving workloads).
	PromptMin, PromptMax int
	DecodeMin, DecodeMax int
}

func (c Cohort) validate() error {
	if c.Weight <= 0 {
		return fmt.Errorf("workload: cohort %q weight must be positive", c.Name)
	}
	if c.KeyTheta < 0 || c.KeyTheta >= 1 {
		return fmt.Errorf("workload: cohort %q KeyTheta must be in [0, 1)", c.Name)
	}
	if c.PromptMin < 0 || c.PromptMax < c.PromptMin || c.DecodeMin < 0 || c.DecodeMax < c.DecodeMin {
		return fmt.Errorf("workload: cohort %q token bounds are inverted", c.Name)
	}
	return nil
}

// Mix is a weighted cohort mixture. Pick consumes exactly one Float64 per
// draw, so cohort assignment replays deterministically alongside the other
// generators.
type Mix struct {
	cohorts []Cohort
	cum     []float64 // normalized cumulative weights
}

// NewMix validates the cohorts and precomputes the cumulative weights.
// A Mix holds at most 256 cohorts so a cohort index always fits the trace
// format's one-byte field.
func NewMix(cohorts ...Cohort) (*Mix, error) {
	if len(cohorts) == 0 {
		return nil, fmt.Errorf("workload: mix needs at least one cohort")
	}
	if len(cohorts) > 256 {
		return nil, fmt.Errorf("workload: at most 256 cohorts (got %d)", len(cohorts))
	}
	total := 0.0
	for _, c := range cohorts {
		if err := c.validate(); err != nil {
			return nil, err
		}
		total += c.Weight
	}
	m := &Mix{cohorts: append([]Cohort(nil), cohorts...), cum: make([]float64, len(cohorts))}
	acc := 0.0
	for i, c := range cohorts {
		acc += c.Weight / total
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1 // close the rounding gap so Pick never falls off
	return m, nil
}

// MustNewMix is NewMix for static configurations.
func MustNewMix(cohorts ...Cohort) *Mix {
	m, err := NewMix(cohorts...)
	if err != nil {
		panic(err)
	}
	return m
}

// Len reports the cohort count.
func (m *Mix) Len() int { return len(m.cohorts) }

// Cohort returns the i-th cohort.
func (m *Mix) Cohort(i int) Cohort { return m.cohorts[i] }

// Pick draws a cohort index proportional to weight, consuming exactly one
// Float64.
func (m *Mix) Pick(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return i
		}
	}
	return len(m.cum) - 1
}
