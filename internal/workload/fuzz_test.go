package workload_test

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Fuzz targets for the trace decoder. The contract under arbitrary input:
// never panic, never allocate beyond what the input length justifies (the
// decoder checks every length field before allocating), and for any input
// it accepts, re-encoding reproduces exactly the bytes given — the
// canonical-encoding property the result cache's trace hashing rests on.

func FuzzDecodeTrace(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CXWT"))
	f.Add(sampleTrace().Encode())
	f.Add((&workload.Trace{Workload: "ycsb-A", Seed: -1}).Encode())
	// Header claiming far more records than the body holds: the exact
	// length check must reject it without allocating the claimed count.
	huge := (&workload.Trace{Workload: "x"}).Encode()
	huge[len(huge)-1] = 0xff
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := workload.DecodeTrace(data)
		if err != nil {
			return
		}
		// Accepted: the record count is bounded by the input length...
		if want := len(tr.Requests) * 26; want > len(data) {
			t.Fatalf("decoded %d records out of %d input bytes", len(tr.Requests), len(data))
		}
		// ...and the canonical re-encoding is byte-identical.
		if out := tr.Encode(); !bytes.Equal(out, data) {
			t.Fatalf("encode(decode(b)) != b:\n in  %x\n out %x", data, out)
		}
	})
}

func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("infer", int64(42), uint64(7), int64(1_000_000), uint32(24), uint32(8), uint8(0), uint8(1))
	f.Add("", int64(0), uint64(0), int64(0), uint32(0), uint32(0), uint8(255), uint8(255))
	f.Add("ycsb-D", int64(-9e18), ^uint64(0), int64(1<<62), ^uint32(0), uint32(1), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, label string, seed int64, key uint64, at int64,
		prompt, decode uint32, cohort, kind uint8) {
		if len(label) > 1024 {
			label = label[:1024]
		}
		src := &workload.Trace{Workload: label, Seed: seed, Requests: []workload.Request{
			{At: sim.Time(at), Key: key, Kind: kind, Cohort: cohort, Prompt: prompt, Decode: decode},
			{At: sim.Time(at), Key: ^key, Kind: kind + 1, Cohort: cohort, Prompt: decode, Decode: prompt},
		}}
		enc := src.Encode()
		got, err := workload.DecodeTrace(enc)
		if err != nil {
			t.Fatalf("decode of a generated trace: %v", err)
		}
		if got.Workload != src.Workload || got.Seed != src.Seed || len(got.Requests) != 2 {
			t.Fatalf("header mangled: %+v", got)
		}
		for i := range src.Requests {
			if got.Requests[i] != src.Requests[i] {
				t.Fatalf("record %d = %+v, want %+v", i, got.Requests[i], src.Requests[i])
			}
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatal("re-encode diverged")
		}
	})
}
