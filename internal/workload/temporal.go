package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// This file holds the temporal arrival models: real serving traffic is not
// a stationary Poisson stream but multi-period (diurnal load curves),
// bursty (thundering herds, retry storms) and cohort-structured. The
// models here layer those effects over the same exponential-gap machinery
// as Poisson, preserving the package's determinism contract: for a fixed
// seed and call order, every source produces an identical gap sequence on
// every run.

// ArrivalSource draws successive inter-arrival gaps for an open-loop
// request stream. now is the current simulated time, so rate-modulated
// sources can evaluate their rate curve; stationary sources ignore it.
// Callers own the *rand.Rand, and sources may keep modulation state, so
// one source serves exactly one stream.
type ArrivalSource interface {
	GapAt(rng *rand.Rand, now sim.Time) sim.Time
}

// GapAt makes Poisson an ArrivalSource: the stationary process ignores
// now and draws exactly the gap Gap would.
func (p Poisson) GapAt(rng *rand.Rand, _ sim.Time) sim.Time { return p.Gap(rng) }

// gapAtRate converts one ExpFloat64 draw into an inter-arrival gap at
// ratePerSec, floored at one nanosecond (so arrivals strictly advance) and
// saturated at Forever (so tiny rates cannot overflow sim.Time into the
// past). Poisson.Gap routes through here, which pins the conversion: for
// rates where no overflow occurs the result is bit-identical to the
// historical expression.
func gapAtRate(rng *rand.Rand, ratePerSec float64) sim.Time {
	g := rng.ExpFloat64() / ratePerSec * float64(sim.Second)
	if math.IsNaN(g) || g >= float64(math.MaxInt64) {
		return sim.Forever
	}
	gap := sim.Time(g)
	if gap < sim.Nanosecond {
		gap = sim.Nanosecond
	}
	return gap
}

// RatePoint anchors a rate curve: the arrival rate is RatePerSec at offset
// At into the period.
type RatePoint struct {
	At         sim.Time
	RatePerSec float64
}

// RateCurve is a piecewise-linear arrival-rate curve. With Period > 0 the
// curve wraps (a diurnal multi-period profile: t is reduced mod Period);
// with Period == 0 the curve holds its last rate forever. Points must be
// sorted by At with non-negative rates; before the first point the first
// rate holds.
type RateCurve struct {
	Points []RatePoint
	Period sim.Time
}

// NewRateCurve validates and builds a curve.
func NewRateCurve(period sim.Time, points ...RatePoint) (RateCurve, error) {
	if len(points) == 0 {
		return RateCurve{}, fmt.Errorf("workload: rate curve needs at least one point")
	}
	for i, p := range points {
		if p.At < 0 || p.RatePerSec < 0 {
			return RateCurve{}, fmt.Errorf("workload: rate point %d is negative (%v, %v/s)", i, p.At, p.RatePerSec)
		}
		if i > 0 && p.At <= points[i-1].At {
			return RateCurve{}, fmt.Errorf("workload: rate points must be strictly increasing in At (point %d)", i)
		}
	}
	if period < 0 || (period > 0 && points[len(points)-1].At >= period) {
		return RateCurve{}, fmt.Errorf("workload: rate points must fall inside the period %v", period)
	}
	return RateCurve{Points: points, Period: period}, nil
}

// MustNewRateCurve is NewRateCurve for static configurations.
func MustNewRateCurve(period sim.Time, points ...RatePoint) RateCurve {
	c, err := NewRateCurve(period, points...)
	if err != nil {
		panic(err)
	}
	return c
}

// FlatRate is the one-point curve holding ratePerSec forever.
func FlatRate(ratePerSec float64) RateCurve {
	return MustNewRateCurve(0, RatePoint{At: 0, RatePerSec: ratePerSec})
}

// RateAt evaluates the curve at t by linear interpolation. Periodic curves
// interpolate across the wrap (last point back to the first).
func (c RateCurve) RateAt(t sim.Time) float64 {
	pts := c.Points
	if len(pts) == 0 {
		return 0
	}
	if c.Period > 0 {
		t %= c.Period
		if t < 0 {
			t += c.Period
		}
	}
	if t <= pts[0].At {
		if c.Period == 0 || len(pts) == 1 {
			return pts[0].RatePerSec
		}
		// Wrap segment: last point → first point across the period seam.
		last := pts[len(pts)-1]
		span := (c.Period - last.At) + pts[0].At
		return lerpRate(last.RatePerSec, pts[0].RatePerSec, t+(c.Period-last.At), span)
	}
	for i := 1; i < len(pts); i++ {
		if t <= pts[i].At {
			return lerpRate(pts[i-1].RatePerSec, pts[i].RatePerSec, t-pts[i-1].At, pts[i].At-pts[i-1].At)
		}
	}
	last := pts[len(pts)-1]
	if c.Period == 0 {
		return last.RatePerSec
	}
	span := (c.Period - last.At) + pts[0].At
	return lerpRate(last.RatePerSec, pts[0].RatePerSec, t-last.At, span)
}

// Compose layers a slow periodic envelope over the curve: the result's
// rate at t is c.RateAt(t) * envelope.RateAt(t), so a dimensionless
// weekly multiplier curve over a diurnal base yields the weekly-over-
// diurnal product profile. Both curves must be periodic and
// envelope.Period must be an integer multiple of c.Period; the result's
// period is envelope.Period. The product of two piecewise-linear curves
// is piecewise-quadratic, so the result anchors the product at the union
// of both curves' anchor offsets (base anchors replicated once per base
// period) and interpolates linearly between them: RateAt is exact at
// every anchor of either input — including both curves' wrap seams —
// and a secant approximation inside segments.
func (c RateCurve) Compose(envelope RateCurve) (RateCurve, error) {
	if c.Period <= 0 || len(c.Points) == 0 {
		return RateCurve{}, fmt.Errorf("workload: Compose needs a periodic base curve (period %v)", c.Period)
	}
	if envelope.Period <= 0 || len(envelope.Points) == 0 {
		return RateCurve{}, fmt.Errorf("workload: Compose needs a periodic envelope (period %v)", envelope.Period)
	}
	if envelope.Period%c.Period != 0 {
		return RateCurve{}, fmt.Errorf("workload: envelope period %v is not an integer multiple of the base period %v",
			envelope.Period, c.Period)
	}
	reps := envelope.Period / c.Period
	anchors := make([]sim.Time, 0, int(reps)*len(c.Points)+len(envelope.Points))
	for k := sim.Time(0); k < reps; k++ {
		for _, p := range c.Points {
			anchors = append(anchors, k*c.Period+p.At)
		}
	}
	for _, p := range envelope.Points {
		anchors = append(anchors, p.At)
	}
	sort.Slice(anchors, func(i, j int) bool { return anchors[i] < anchors[j] })
	points := make([]RatePoint, 0, len(anchors))
	for _, at := range anchors {
		if n := len(points); n > 0 && points[n-1].At == at {
			continue // base and envelope anchor coincide
		}
		points = append(points, RatePoint{At: at, RatePerSec: c.RateAt(at) * envelope.RateAt(at)})
	}
	return NewRateCurve(envelope.Period, points...)
}

// MustCompose is Compose for static configurations.
func (c RateCurve) MustCompose(envelope RateCurve) RateCurve {
	out, err := c.Compose(envelope)
	if err != nil {
		panic(err)
	}
	return out
}

// MaxRate reports the curve's peak rate (the thinning envelope).
func (c RateCurve) MaxRate() float64 {
	m := 0.0
	for _, p := range c.Points {
		if p.RatePerSec > m {
			m = p.RatePerSec
		}
	}
	return m
}

func lerpRate(a, b float64, off, span sim.Time) float64 {
	if off >= span {
		// Segment endpoints must evaluate to their anchor rate exactly:
		// a + (b-a)*1.0 can miss b by an ulp, which would make a periodic
		// curve's rate at the wrap seam (t == Period, reduced to the first
		// point) disagree with RateAt(Points[0].At).
		return b
	}
	return a + (b-a)*float64(off)/float64(span)
}

// BurstSpec layers random burst/cooldown modulation over a rate curve:
// bursts start with exponentially distributed gaps of mean MeanGap, last
// an exponential MeanLen, multiply the instantaneous rate by Factor, and
// are followed by a fixed Cooldown during which the rate is multiplied by
// CoolFactor (the post-herd lull; 1 disables the cooldown effect).
type BurstSpec struct {
	MeanGap    sim.Time
	MeanLen    sim.Time
	Factor     float64
	Cooldown   sim.Time
	CoolFactor float64
}

func (b BurstSpec) validate() error {
	if b.MeanGap <= 0 || b.MeanLen <= 0 {
		return fmt.Errorf("workload: burst MeanGap and MeanLen must be positive")
	}
	if b.Factor < 1 {
		return fmt.Errorf("workload: burst Factor must be >= 1 (got %v)", b.Factor)
	}
	if b.Cooldown < 0 || b.CoolFactor < 0 || b.CoolFactor > 1 {
		return fmt.Errorf("workload: burst Cooldown must be >= 0 and CoolFactor in [0,1]")
	}
	return nil
}

// Temporal is a non-homogeneous Poisson arrival source: a piecewise rate
// curve (diurnal profile) with optional burst/cooldown modulation. Gaps
// are drawn by Lewis-Shedler thinning against the peak modulated rate, so
// the realized arrival intensity tracks the curve exactly (including
// through zero-rate valleys) rather than freezing the rate at the draw
// instant. Each accepted arrival consumes a deterministic, state-dependent
// number of rng draws — fixed for a fixed seed and call order, per the
// package contract.
type Temporal struct {
	curve    RateCurve
	burst    BurstSpec
	hasBurst bool

	// Burst state machine, advanced lazily as queried times pass it.
	primed     bool
	burstStart sim.Time
	burstEnd   sim.Time
	coolEnd    sim.Time
	nextBurst  sim.Time
}

// NewTemporal builds an arrival source following curve.
func NewTemporal(curve RateCurve) *Temporal {
	if len(curve.Points) == 0 {
		panic("workload: Temporal needs a non-empty rate curve")
	}
	return &Temporal{curve: curve}
}

// WithBursts adds burst/cooldown modulation and returns the source.
func (t *Temporal) WithBursts(b BurstSpec) *Temporal {
	if err := b.validate(); err != nil {
		panic(err)
	}
	t.burst = b
	t.hasBurst = true
	return t
}

// maxFactor is the burst state machine's peak multiplier, for the
// thinning envelope.
func (t *Temporal) maxFactor() float64 {
	if !t.hasBurst {
		return 1
	}
	return t.burst.Factor
}

// factorAt advances the burst state machine to now and reports the
// current rate multiplier. The machine is driven by rng draws made in
// strictly increasing simulated-time order, so the modulation replays
// exactly for a fixed seed.
func (t *Temporal) factorAt(rng *rand.Rand, now sim.Time) float64 {
	if !t.hasBurst {
		return 1
	}
	if !t.primed {
		t.nextBurst = expTime(rng, t.burst.MeanGap)
		t.primed = true
	}
	for now >= t.nextBurst {
		t.burstStart = t.nextBurst
		t.burstEnd = satAdd(t.burstStart, expTime(rng, t.burst.MeanLen))
		t.coolEnd = satAdd(t.burstEnd, t.burst.Cooldown)
		t.nextBurst = satAdd(t.coolEnd, expTime(rng, t.burst.MeanGap))
	}
	switch {
	case now >= t.burstStart && now < t.burstEnd:
		return t.burst.Factor
	case now >= t.burstEnd && now < t.coolEnd:
		return t.burst.CoolFactor
	}
	return 1
}

// GapAt draws the gap from now to the next arrival by thinning: candidate
// gaps at the peak modulated rate, accepted with probability
// rate(candidate)/peak. Returns Forever when the curve is all-zero or the
// next arrival lies beyond any horizon the engine will reach.
func (t *Temporal) GapAt(rng *rand.Rand, now sim.Time) sim.Time {
	peak := t.curve.MaxRate() * t.maxFactor()
	if peak <= 0 {
		return sim.Forever
	}
	at := now
	// The candidate count is geometric with mean peak/rate; the cap turns
	// a pathological all-rejection stretch (e.g. a curve that is zero
	// almost everywhere) into "no further arrivals" instead of a spin.
	for i := 0; i < 1<<20; i++ {
		gap := gapAtRate(rng, peak)
		if gap == sim.Forever {
			return sim.Forever
		}
		at = satAdd(at, gap)
		rate := t.curve.RateAt(at) * t.factorAt(rng, at)
		if rate >= peak || rng.Float64()*peak < rate {
			if at <= now {
				return sim.Nanosecond
			}
			return at - now
		}
	}
	return sim.Forever
}

// expTime draws an exponential duration with the given mean, floored at
// one nanosecond.
func expTime(rng *rand.Rand, mean sim.Time) sim.Time {
	g := rng.ExpFloat64() * float64(mean)
	if math.IsNaN(g) || g >= float64(math.MaxInt64) {
		return sim.Forever
	}
	d := sim.Time(g)
	if d < sim.Nanosecond {
		d = sim.Nanosecond
	}
	return d
}

// satAdd adds two non-negative times, saturating at Forever.
func satAdd(a, b sim.Time) sim.Time {
	if a > sim.Forever-b {
		return sim.Forever
	}
	return a + b
}
