package workload_test

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Edge-case audit: the degenerate parameterizations that used to be silent
// footguns — Zipf at n=1 and extreme theta, Poisson at vanishing rates,
// Latest at tiny record counts — now either behave exactly or panic
// loudly. These tests pin which is which.

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	f()
}

func TestZipfSingleItem(t *testing.T) {
	// n=1: every draw must be rank 0 — the old code could return 1 (== n)
	// on top-of-interval draws, which callers then had to modulo away.
	z := workload.NewZipf(1, 0.99)
	r := rng.New(1)
	for i := 0; i < 10_000; i++ {
		if k := z.Next(r); k != 0 {
			t.Fatalf("draw %d: rank %d for n=1", i, k)
		}
	}
}

func TestZipfExtremeTheta(t *testing.T) {
	r := rng.New(2)
	// Near the ends of (0, 1) the constants stay finite and draws stay in
	// range; the clamp catches the Gray approximation landing on n.
	for _, theta := range []float64{0.001, 0.5, 0.999} {
		z := workload.NewZipf(100, theta)
		for i := 0; i < 10_000; i++ {
			if k := z.Next(r); k >= 100 {
				t.Fatalf("theta=%v draw %d: rank %d out of [0, 100)", theta, i, k)
			}
		}
	}
}

func TestZipfInvalidParamsPanic(t *testing.T) {
	mustPanic(t, "n=0", func() { workload.NewZipf(0, 0.99) })
	mustPanic(t, "theta=0", func() { workload.NewZipf(10, 0) })
	mustPanic(t, "theta=1", func() { workload.NewZipf(10, 1) })
	mustPanic(t, "theta=-1", func() { workload.NewZipf(10, -1) })
	mustPanic(t, "theta=1.5", func() { workload.NewZipf(10, 1.5) })
}

func TestPoissonVanishingRate(t *testing.T) {
	// A rate so small the exponential draw overflows sim.Time must
	// saturate at Forever — never a zero, negative, or wrapped gap.
	p := workload.Poisson{RatePerSec: 1e-300}
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		g := p.Gap(r)
		if g != sim.Forever {
			t.Fatalf("draw %d: gap %v at rate 1e-300, want Forever", i, g)
		}
	}
}

func TestPoissonSmallRateGapsPositive(t *testing.T) {
	// At one arrival per simulated hour the gaps are enormous but must
	// remain positive and below Forever most of the time.
	p := workload.Poisson{RatePerSec: 1.0 / 3600}
	r := rng.New(4)
	saturated := 0
	for i := 0; i < 1000; i++ {
		g := p.Gap(r)
		if g <= 0 {
			t.Fatalf("draw %d: non-positive gap %v", i, g)
		}
		if g == sim.Forever {
			saturated++
		}
	}
	if saturated > 0 {
		// Mean gap is 3600 s ≈ 3.6e15 ps; Forever needs a 2562-sigma draw.
		t.Fatalf("%d/1000 gaps saturated at a perfectly finite rate", saturated)
	}
}

func TestPoissonInvalidRatePanics(t *testing.T) {
	r := rng.New(5)
	mustPanic(t, "rate=0", func() { workload.Poisson{}.Gap(r) })
	mustPanic(t, "rate<0", func() { workload.Poisson{RatePerSec: -1}.Gap(r) })
}

func TestLatestOneRecord(t *testing.T) {
	// records=1: the only item is always "the latest". The old code's
	// records-1-back underflow is the bug this pins against.
	r := rng.New(6)
	for i := 0; i < 10_000; i++ {
		if k := workload.Latest(r, 1); k != 0 {
			t.Fatalf("draw %d: key %d for records=1", i, k)
		}
	}
}

func TestLatestZeroRecordsPanics(t *testing.T) {
	r := rng.New(7)
	mustPanic(t, "records=0", func() { workload.Latest(r, 0) })
}

func TestTemporalZeroRateCurve(t *testing.T) {
	// An all-zero curve has no arrivals: GapAt reports Forever instead of
	// spinning in the thinning loop. The envelope must stay zero for every
	// all-zero shape — flat, multi-point periodic, and burst-modulated
	// (Factor scales a zero peak to zero).
	sources := map[string]*workload.Temporal{
		"flat": workload.NewTemporal(workload.FlatRate(0)),
		"periodic": workload.NewTemporal(workload.MustNewRateCurve(2*sim.Second,
			workload.RatePoint{At: 0, RatePerSec: 0},
			workload.RatePoint{At: sim.Second, RatePerSec: 0})),
		"burst": workload.NewTemporal(workload.FlatRate(0)).WithBursts(workload.BurstSpec{
			MeanGap: sim.Second, MeanLen: sim.Second, Factor: 8, CoolFactor: 1}),
	}
	for name, src := range sources {
		r := rng.New(8)
		if g := src.GapAt(r, 0); g != sim.Forever {
			t.Errorf("%s: zero-rate gap = %v, want Forever", name, g)
		}
	}
}

func TestRateCurveSeamExact(t *testing.T) {
	// Segment endpoints must evaluate to their anchor rates exactly: with
	// rates chosen so a+(b-a) misses b by an ulp, the periodic seam
	// (t == Period reduces to the first point) and every interior anchor
	// must still return the anchor's RatePerSec bit for bit.
	c := workload.MustNewRateCurve(2*sim.Second,
		workload.RatePoint{At: 0, RatePerSec: 0.3},
		workload.RatePoint{At: sim.Second, RatePerSec: 0.1})
	if got := c.RateAt(0); got != 0.3 {
		t.Errorf("RateAt(Points[0].At) = %v, want exactly 0.3", got)
	}
	if got, first := c.RateAt(2*sim.Second), c.RateAt(0); got != first {
		t.Errorf("RateAt(Period) = %v, RateAt(Points[0].At) = %v, want exact agreement", got, first)
	}
	if got := c.RateAt(sim.Second); got != 0.1 {
		t.Errorf("RateAt(interior anchor) = %v, want exactly 0.1", got)
	}
}

func TestTemporalGapNeverDecreasesTime(t *testing.T) {
	src := workload.NewTemporal(statsCurve())
	r := rng.New(9)
	now := sim.Time(0)
	for i := 0; i < 10_000; i++ {
		g := src.GapAt(r, now)
		if g < sim.Nanosecond {
			t.Fatalf("draw %d: gap %v below the 1 ns floor", i, g)
		}
		now += g
	}
}

func TestRateCurveValidation(t *testing.T) {
	if _, err := workload.NewRateCurve(0); err == nil {
		t.Error("empty curve accepted")
	}
	if _, err := workload.NewRateCurve(0,
		workload.RatePoint{At: 0, RatePerSec: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := workload.NewRateCurve(0,
		workload.RatePoint{At: sim.Second, RatePerSec: 1},
		workload.RatePoint{At: sim.Second, RatePerSec: 2}); err == nil {
		t.Error("non-increasing anchors accepted")
	}
	if _, err := workload.NewRateCurve(sim.Second,
		workload.RatePoint{At: 2 * sim.Second, RatePerSec: 1}); err == nil {
		t.Error("anchor beyond the period accepted")
	}
}

func TestRateCurveInterpolation(t *testing.T) {
	c := statsCurve() // (0, 100) → (1s, 900), period 2s
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{0, 100},
		{500 * sim.Millisecond, 500},
		{1 * sim.Second, 900},
		{1500 * sim.Millisecond, 500}, // wrap segment back toward 100
		{2 * sim.Second, 100},         // exactly one period later
		{2500 * sim.Millisecond, 500}, // second period repeats
	}
	for _, tc := range cases {
		if got := c.RateAt(tc.at); got != tc.want {
			t.Errorf("RateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := workload.NewMix(); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := workload.NewMix(workload.Cohort{Name: "x", Weight: 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := workload.NewMix(workload.Cohort{Name: "x", Weight: 1, KeyTheta: 1}); err == nil {
		t.Error("KeyTheta=1 accepted")
	}
	if _, err := workload.NewMix(workload.Cohort{Name: "x", Weight: 1,
		PromptMin: 10, PromptMax: 5}); err == nil {
		t.Error("inverted prompt bounds accepted")
	}
	many := make([]workload.Cohort, 257)
	for i := range many {
		many[i] = workload.Cohort{Name: "c", Weight: 1, PromptMax: 1, DecodeMax: 1}
	}
	if _, err := workload.NewMix(many...); err == nil {
		t.Error("257 cohorts accepted (cohort index must fit one trace byte)")
	}
}

func TestMixSingleCohort(t *testing.T) {
	mix := workload.MustNewMix(workload.Cohort{Name: "only", Weight: 3, PromptMax: 1, DecodeMax: 1})
	r := rng.New(10)
	for i := 0; i < 1000; i++ {
		if got := mix.Pick(r); got != 0 {
			t.Fatalf("pick %d = %d for a single cohort", i, got)
		}
	}
}
