package workload_test

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Statistical property tests: under a fixed seed every generator's
// empirical distribution must match its analytic form. The draw counts are
// large enough that the tolerances sit several standard errors out, so a
// failure means the generator (not the luck) changed; the seeds are fixed,
// so a failure is also reproducible.

// binomTol returns a 4-sigma tolerance for an empirical probability
// estimated from n draws.
func binomTol(p float64, n int) float64 {
	return 4 * math.Sqrt(p*(1-p)/float64(n))
}

func TestPoissonEmpiricalMeanAndCDF(t *testing.T) {
	const rate = 1000.0
	const n = 100_000
	mean := float64(sim.Second) / rate
	p := workload.Poisson{RatePerSec: rate}
	r := rng.New(21)
	var sum float64
	gaps := make([]float64, n)
	for i := range gaps {
		g := float64(p.Gap(r))
		gaps[i] = g
		sum += g
	}
	if got := sum / n; math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("mean gap %v, want %v within 2%%", got, mean)
	}
	// The empirical CDF must match 1-exp(-x/mean) at several abscissae.
	for _, mult := range []float64{0.25, 0.5, 1, 2} {
		x := mult * mean
		count := 0
		for _, g := range gaps {
			if g <= x {
				count++
			}
		}
		got := float64(count) / n
		want := 1 - math.Exp(-mult)
		if math.Abs(got-want) > binomTol(want, n) {
			t.Errorf("CDF(%v*mean) = %v, want %v ± %v", mult, got, want, binomTol(want, n))
		}
	}
}

func TestZipfHeadProbabilitiesExact(t *testing.T) {
	const n = 1000
	const theta = 0.99
	const draws = 200_000
	// The Gray construction gives P(0) = 1/zeta(n,theta) and
	// P(1) = 0.5^theta/zeta(n,theta) exactly.
	zetan := 0.0
	for i := 1; i <= n; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}
	p0 := 1 / zetan
	p1 := math.Pow(0.5, theta) / zetan
	z := workload.NewZipf(n, theta)
	r := rng.New(23)
	var c0, c1 int
	for i := 0; i < draws; i++ {
		switch z.Next(r) {
		case 0:
			c0++
		case 1:
			c1++
		}
	}
	if got := float64(c0) / draws; math.Abs(got-p0) > binomTol(p0, draws) {
		t.Errorf("P(rank 0) = %v, want %v ± %v", got, p0, binomTol(p0, draws))
	}
	if got := float64(c1) / draws; math.Abs(got-p1) > binomTol(p1, draws) {
		t.Errorf("P(rank 1) = %v, want %v ± %v", got, p1, binomTol(p1, draws))
	}
}

func TestLatestEmpiricalMean(t *testing.T) {
	const records = 100_000
	const draws = 100_000
	// Latest draws back-distance Exp(records/20); truncation at records is
	// negligible at this size.
	want := float64(records) / 20
	r := rng.New(25)
	var sum float64
	for i := 0; i < draws; i++ {
		k := workload.Latest(r, records)
		sum += float64(records - 1 - k)
	}
	if got := sum / draws; math.Abs(got-want)/want > 0.03 {
		t.Fatalf("mean back-distance %v, want %v within 3%%", got, want)
	}
}

// statsCurve is the two-anchor diurnal profile the temporal stats tests
// share: 100/s at phase 0 rising linearly to 900/s at half period, then
// back down across the wrap — average 500/s.
func statsCurve() workload.RateCurve {
	return workload.MustNewRateCurve(2*sim.Second,
		workload.RatePoint{At: 0, RatePerSec: 100},
		workload.RatePoint{At: 1 * sim.Second, RatePerSec: 900},
	)
}

func TestTemporalRealizedRateTracksCurve(t *testing.T) {
	const periods = 100
	src := workload.NewTemporal(statsCurve())
	r := rng.New(27)
	horizon := sim.Time(periods) * 2 * sim.Second
	// Quarter-period windows, folded across periods. Expected arrivals per
	// window = the rate integral: averages 300/700/700/300 over 0.5 s.
	counts := [4]int{}
	want := [4]float64{150 * periods, 350 * periods, 350 * periods, 150 * periods}
	now := sim.Time(0)
	for {
		g := src.GapAt(r, now)
		now += g
		if now >= horizon {
			break
		}
		phase := now % (2 * sim.Second)
		counts[int(phase/(500*sim.Millisecond))]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-want[i])/want[i] > 0.05 {
			t.Errorf("window %d: %d arrivals, want %.0f within 5%%", i, c, want[i])
		}
	}
}

func TestTemporalBurstRaisesLongRunRate(t *testing.T) {
	// Flat 1000/s with symmetric burst on/off (no cooldown): half the time
	// at x1, half at x4, so the long-run rate is 2500/s.
	src := workload.NewTemporal(workload.FlatRate(1000)).WithBursts(workload.BurstSpec{
		MeanGap: 100 * sim.Millisecond,
		MeanLen: 100 * sim.Millisecond,
		Factor:  4,
	})
	r := rng.New(29)
	horizon := 100 * sim.Second
	now := sim.Time(0)
	count := 0
	for {
		now += src.GapAt(r, now)
		if now >= horizon {
			break
		}
		count++
	}
	want := 2500.0 * 100
	if math.Abs(float64(count)-want)/want > 0.10 {
		t.Fatalf("%d arrivals in %v, want %.0f within 10%%", count, horizon, want)
	}
}

func TestMixEmpiricalShares(t *testing.T) {
	const draws = 100_000
	mix := workload.MustNewMix(
		workload.Cohort{Name: "a", Weight: 1, PromptMin: 1, PromptMax: 2, DecodeMin: 1, DecodeMax: 2},
		workload.Cohort{Name: "b", Weight: 2, PromptMin: 1, PromptMax: 2, DecodeMin: 1, DecodeMax: 2},
		workload.Cohort{Name: "c", Weight: 7, PromptMin: 1, PromptMax: 2, DecodeMin: 1, DecodeMax: 2},
	)
	r := rng.New(31)
	counts := make([]int, mix.Len())
	for i := 0; i < draws; i++ {
		counts[mix.Pick(r)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-want[i]) > binomTol(want[i], draws) {
			t.Errorf("cohort %d share %v, want %v ± %v", i, got, want[i], binomTol(want[i], draws))
		}
	}
}

// Pinned sequences: the temporal models and the mixture join the package's
// determinism contract — these exact draws for these exact seeds, on every
// architecture. A diff is a recalibration event, not a refactor.

func TestTemporalGapsPinned(t *testing.T) {
	want := []sim.Time{3583643348, 19877577538, 1242411267, 970975781,
		1781591538, 1674352587, 7600623680, 870972306}
	src := workload.NewTemporal(statsCurve())
	r := rng.New(11)
	now := sim.Time(0)
	for i, w := range want {
		g := src.GapAt(r, now)
		if g != w {
			t.Fatalf("gap %d = %d, want %d", i, int64(g), int64(w))
		}
		now += g
	}
}

func TestTemporalBurstGapsPinned(t *testing.T) {
	want := []sim.Time{17898244462, 5195378750, 4783581931, 312234685,
		5928494174, 3973271912, 85732453, 15576096556}
	src := workload.NewTemporal(statsCurve()).WithBursts(workload.BurstSpec{
		MeanGap: 300 * sim.Millisecond, MeanLen: 50 * sim.Millisecond,
		Factor: 5, Cooldown: 80 * sim.Millisecond, CoolFactor: 0.5,
	})
	r := rng.New(11)
	now := sim.Time(0)
	for i, w := range want {
		g := src.GapAt(r, now)
		if g != w {
			t.Fatalf("gap %d = %d, want %d", i, int64(g), int64(w))
		}
		now += g
	}
}

func TestMixPicksPinned(t *testing.T) {
	want := []int{1, 2, 0, 2, 2, 2, 1, 1, 2, 2, 2, 1, 2, 2, 2, 2}
	mix := workload.MustNewMix(
		workload.Cohort{Name: "a", Weight: 1, PromptMin: 1, PromptMax: 2, DecodeMin: 1, DecodeMax: 2},
		workload.Cohort{Name: "b", Weight: 2, PromptMin: 1, PromptMax: 2, DecodeMin: 1, DecodeMax: 2},
		workload.Cohort{Name: "c", Weight: 7, PromptMin: 1, PromptMax: 2, DecodeMin: 1, DecodeMax: 2},
	)
	r := rng.New(13)
	for i, w := range want {
		if got := mix.Pick(r); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}
