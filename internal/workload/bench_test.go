package workload_test

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchTrace builds a representative 4096-record trace: diurnal+burst
// arrivals with cohort-shaped request sizes, the stream the replay path
// decodes in production.
func benchTrace() *workload.Trace {
	const n = 4096
	src := workload.NewTemporal(workload.MustNewRateCurve(4*sim.Second,
		workload.RatePoint{At: 0, RatePerSec: 200},
		workload.RatePoint{At: 2 * sim.Second, RatePerSec: 1600},
	)).WithBursts(workload.BurstSpec{
		MeanGap: 800 * sim.Millisecond, MeanLen: 60 * sim.Millisecond, Factor: 4,
	})
	r := rng.New(1)
	t := &workload.Trace{Workload: "bench", Seed: 1, Requests: make([]workload.Request, n)}
	now := sim.Time(0)
	for i := range t.Requests {
		now += src.GapAt(r, now)
		t.Requests[i] = workload.Request{At: now, Key: uint64(i), Prompt: 64, Decode: 16}
	}
	return t
}

// BenchmarkTraceReplay measures the replay hot path: decoding a canonical
// trace back into records. One encode up front, one full decode per
// iteration.
func BenchmarkTraceReplay(b *testing.B) {
	enc := benchTrace().Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := workload.DecodeTrace(enc)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Requests) != 4096 {
			b.Fatal("short decode")
		}
	}
}

// BenchmarkTraceEncode measures the record side: canonical encoding of the
// same trace.
func BenchmarkTraceEncode(b *testing.B) {
	t := benchTrace()
	enc := t.Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(t.Encode()) != len(enc) {
			b.Fatal("size changed")
		}
	}
}
