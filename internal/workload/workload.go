// Package workload holds the request-stream primitives shared by the
// simulated serving workloads: the YCSB/Gray zipfian key chooser and the
// open-loop Poisson arrival process. internal/ycsb (key choice) and
// internal/kvs (arrival scheduling) both delegated here when the two
// copies were unified, and internal/infer draws its request arrivals and
// prompt-length skew from the same primitives — so every workload's
// randomness flows through internal/rng streams and one implementation.
//
// Determinism contract: for a fixed seed, each generator consumes its
// *rand.Rand in a fixed call order and produces an identical sequence on
// every run, architecture and GOMAXPROCS notwithstanding. The regression
// test in this package pins the exact sequences the pre-extraction
// implementations produced; changing them is a recalibration event.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Zipf is the YCSB/Gray zipfian generator over [0, n): heavily skewed
// toward small ranks with the classic theta=0.99 YCSB default. It is
// stateless between draws — callers own the *rand.Rand — so one Zipf can
// serve several independent streams.
type Zipf struct {
	n               uint64
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
}

// NewZipf precomputes the generator constants for n items at the given
// theta (YCSB uses 0.99). n must be positive and theta in (0, 1): theta=1
// makes alpha infinite and theta=0 is just uniform — both outside the
// Gray/YCSB derivation the constants come from.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: Zipf needs at least one item")
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: Zipf theta must be in (0, 1), got %v", theta))
	}
	z := &Zipf{n: n, theta: theta}
	z.zeta2theta = zetaStatic(2, theta)
	z.alpha = 1 / (1 - theta)
	z.zetan = zetaStatic(n, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	// Cap the sum for very large n: the tail contributes negligibly and the
	// generators here use n <= a few million.
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank in [0, n), consuming exactly one Float64 from
// rng. The Gray approximation can land exactly on n for draws at the very
// top of the unit interval (and for n=1 every draw takes the uz < 1
// branch); the clamp keeps the contract strict so callers need no modulo.
func (z *Zipf) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// N reports the item count the constants were computed for.
func (z *Zipf) N() uint64 { return z.n }

// Poisson is an open-loop Poisson arrival process: exponentially
// distributed gaps at RatePerSec aggregate arrivals per simulated second,
// floored at one nanosecond so a pathological draw cannot schedule two
// arrivals at the same instant, and saturated at Forever so a vanishing
// rate cannot overflow sim.Time into a gap in the past.
type Poisson struct {
	// RatePerSec is the aggregate arrival rate; it must be positive.
	RatePerSec float64
}

// Gap draws the next inter-arrival gap, consuming exactly one ExpFloat64
// from rng.
func (p Poisson) Gap(rng *rand.Rand) sim.Time {
	if p.RatePerSec <= 0 {
		panic(fmt.Sprintf("workload: Poisson rate must be positive, got %v", p.RatePerSec))
	}
	return gapAtRate(rng, p.RatePerSec)
}

// Latest skews toward the most recently inserted of records items with
// exponential decay (YCSB's "latest" chooser), consuming exactly one
// ExpFloat64 from rng. records must be positive (with records=0 there is
// no "latest" item; the old code underflowed into a huge bogus key).
func Latest(rng *rand.Rand, records uint64) uint64 {
	if records == 0 {
		panic("workload: Latest needs at least one record")
	}
	back := uint64(rng.ExpFloat64() * float64(records) / 20)
	if back >= records {
		back = records - 1
	}
	return records - 1 - back
}
