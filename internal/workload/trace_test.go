package workload_test

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func sampleTrace() *workload.Trace {
	return &workload.Trace{
		Workload: "infer",
		Seed:     42,
		Requests: []workload.Request{
			{At: 0, Key: 7, Kind: 1, Cohort: 0, Prompt: 24, Decode: 8},
			{At: 1_000_000, Key: 9, Kind: 0, Cohort: 2, Prompt: 64, Decode: 24},
			{At: 1_000_000, Key: 0, Kind: 2, Cohort: 255, Prompt: 1, Decode: 1},
			{At: sim.Forever, Key: ^uint64(0), Kind: 255, Cohort: 1, Prompt: ^uint32(0), Decode: 3},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	src := sampleTrace()
	enc := src.Encode()
	got, err := workload.DecodeTrace(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("decode(encode(t)) != t:\n got  %+v\n want %+v", got, src)
	}
	// The encoding is canonical: re-encoding reproduces the exact bytes.
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("encode(decode(b)) != b")
	}
}

func TestTraceEmptyRoundTrip(t *testing.T) {
	src := &workload.Trace{Workload: "", Seed: 0}
	got, err := workload.DecodeTrace(src.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Workload != "" || got.Seed != 0 || len(got.Requests) != 0 {
		t.Fatalf("empty trace round-trip: %+v", got)
	}
}

func TestTraceHashIdentity(t *testing.T) {
	a, b := sampleTrace(), sampleTrace()
	if a.Hash() != b.Hash() {
		t.Fatal("identical traces hash differently")
	}
	b.Requests[1].Key++
	if a.Hash() == b.Hash() {
		t.Fatal("different streams share a hash")
	}
	c := sampleTrace()
	c.Seed++
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds share a hash")
	}
}

func TestTraceValidateOrdering(t *testing.T) {
	good := sampleTrace()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := sampleTrace()
	bad.Requests[2].At = 1 // before record 1
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-order arrivals accepted")
	}
}

func TestDecodeTraceRejectsMalformed(t *testing.T) {
	enc := sampleTrace().Encode()
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:10] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"future version", func(b []byte) []byte { b[4] = 99; return b }},
		{"reserved flags", func(b []byte) []byte { b[6] = 1; return b }},
		{"label overruns input", func(b []byte) []byte { b[16] = 0xff; b[17] = 0x3; return b }},
		{"label exceeds bound", func(b []byte) []byte { b[16] = 0xff; b[17] = 0xff; return b }},
		{"count too large", func(b []byte) []byte { b[len(b)-4*26-4] = 0xff; return b }},
		{"truncated record", func(b []byte) []byte { return b[:len(b)-1] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), enc...)
		if _, err := workload.DecodeTrace(tc.mut(buf)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestTraceEncodePanicsOnHugeLabel(t *testing.T) {
	tr := &workload.Trace{Workload: string(make([]byte, 2000))}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized label encoded")
		}
	}()
	tr.Encode()
}

func TestTraceReaderStreams(t *testing.T) {
	src := sampleTrace()
	r, err := workload.NewTraceReader(bytes.NewReader(src.Encode()))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if r.Workload() != src.Workload || r.Seed() != src.Seed {
		t.Fatalf("header = (%q, %d), want (%q, %d)", r.Workload(), r.Seed(), src.Workload, src.Seed)
	}
	if r.Remaining() != len(src.Requests) {
		t.Fatalf("remaining = %d, want %d", r.Remaining(), len(src.Requests))
	}
	for i := range src.Requests {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != src.Requests[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, src.Requests[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

func TestTraceReaderShortStream(t *testing.T) {
	enc := sampleTrace().Encode()
	r, err := workload.NewTraceReader(bytes.NewReader(enc[:len(enc)-5]))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	var last error
	for {
		_, err := r.Next()
		if err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, io.ErrUnexpectedEOF) {
		t.Fatalf("short stream: %v, want io.ErrUnexpectedEOF", last)
	}
}
