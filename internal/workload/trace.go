package workload

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/xxhash"
)

// Versioned binary trace format: a recorded request stream that replays
// bit-for-bit. Any synthetic stream (or a captured one) can be frozen to a
// Trace and re-run across policies, worker counts and binary versions; the
// golden replay tests diff the replayed report bytes against live
// generation, which is the repo's hardest determinism contract.
//
// Format v1 (all integers little-endian, no padding — the encoding is
// canonical, so decode(encode(t)) == t and encode(decode(b)) == b for
// every accepted b):
//
//	magic   [4]byte  "CXWT"
//	version uint16   (1)
//	flags   uint16   (0; reserved, non-zero rejected)
//	seed    int64    generator seed the stream came from (0 = captured)
//	wlen    uint16   workload-label length (<= 1024)
//	label   [wlen]byte
//	count   uint32   record count; must equal exactly (len-header)/26
//	records [count]record
//
//	record (26 bytes): at int64, key uint64, prompt uint32, decode uint32,
//	cohort uint8, kind uint8
//
// The record is the superset of what the workloads need: serving streams
// use at/prompt/decode/cohort, KV streams use at/kind/key.

// TraceVersion is the current trace-format version.
const TraceVersion = 1

// maxTraceLabel bounds the workload-label field.
const maxTraceLabel = 1024

const (
	traceMagic      = "CXWT"
	traceHeaderLen  = 4 + 2 + 2 + 8 + 2 + 4 // + label
	traceRecordLen  = 26
	maxTraceRecords = (1 << 31) / traceRecordLen // count is also bounded by input length
)

// Request is one replayable request record.
type Request struct {
	// At is the absolute arrival time.
	At sim.Time
	// Key and Kind carry a KV operation (ycsb.OpKind values).
	Key  uint64
	Kind uint8
	// Cohort is the client-cohort index the request was drawn from.
	Cohort uint8
	// Prompt and Decode are the serving token counts.
	Prompt, Decode uint32
}

// Trace is a recorded request stream.
type Trace struct {
	// Workload labels the stream ("infer", "ycsb-A", ...).
	Workload string
	// Seed is the generator seed the stream was recorded from.
	Seed int64
	// Requests are the records in arrival order.
	Requests []Request
}

// Encode renders the trace in format v1.
func (t *Trace) Encode() []byte {
	if len(t.Workload) > maxTraceLabel {
		panic(fmt.Sprintf("workload: trace label %d bytes exceeds %d", len(t.Workload), maxTraceLabel))
	}
	if len(t.Requests) > maxTraceRecords {
		panic(fmt.Sprintf("workload: trace of %d records exceeds the format bound", len(t.Requests)))
	}
	b := make([]byte, 0, traceHeaderLen+len(t.Workload)+len(t.Requests)*traceRecordLen)
	b = append(b, traceMagic...)
	b = appendU16(b, TraceVersion)
	b = appendU16(b, 0) // flags
	b = appendU64(b, uint64(t.Seed))
	b = appendU16(b, uint16(len(t.Workload)))
	b = append(b, t.Workload...)
	b = appendU32(b, uint32(len(t.Requests)))
	for i := range t.Requests {
		b = appendRecord(b, &t.Requests[i])
	}
	return b
}

// Hash is the 64-bit content hash of the canonical encoding — the trace's
// identity in result-cache keys: two traces share a hash input iff they
// encode to the same bytes, which (the encoding being canonical) means
// they are the same stream.
func (t *Trace) Hash() uint64 { return xxhash.Sum64(t.Encode(), 0) }

// Validate checks the stream invariants replay relies on: arrivals in
// non-decreasing order at non-negative times.
func (t *Trace) Validate() error {
	prev := sim.Time(0)
	for i, r := range t.Requests {
		if r.At < prev {
			return fmt.Errorf("workload: trace record %d arrives at %v, before %v", i, r.At, prev)
		}
		prev = r.At
	}
	return nil
}

// DecodeTrace parses an encoded trace, validating the version, flags and
// every length field before allocating: the record allocation is bounded
// by the input length, so arbitrary (fuzzed) inputs cannot force
// pathological allocation, and any accepted input re-encodes to exactly
// the bytes given.
func DecodeTrace(data []byte) (*Trace, error) {
	if len(data) < traceHeaderLen {
		return nil, fmt.Errorf("workload: trace truncated: %d bytes, want >= %d", len(data), traceHeaderLen)
	}
	if string(data[:4]) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", data[:4])
	}
	if v := readU16(data[4:]); v != TraceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d (have %d)", v, TraceVersion)
	}
	if f := readU16(data[6:]); f != 0 {
		return nil, fmt.Errorf("workload: reserved trace flags %#x set", f)
	}
	seed := int64(readU64(data[8:]))
	wlen := int(readU16(data[16:]))
	if wlen > maxTraceLabel {
		return nil, fmt.Errorf("workload: trace label %d bytes exceeds %d", wlen, maxTraceLabel)
	}
	if len(data) < traceHeaderLen+wlen {
		return nil, fmt.Errorf("workload: trace truncated inside label")
	}
	label := string(data[18 : 18+wlen])
	body := data[18+wlen:]
	count := int64(readU32(body))
	body = body[4:]
	if int64(len(body)) != count*traceRecordLen {
		return nil, fmt.Errorf("workload: trace body %d bytes, want %d records x %d",
			len(body), count, traceRecordLen)
	}
	t := &Trace{Workload: label, Seed: seed, Requests: make([]Request, count)}
	for i := range t.Requests {
		decodeRecord(body[i*traceRecordLen:], &t.Requests[i])
	}
	return t, nil
}

// TraceReader streams records out of an encoded trace without holding
// them all in memory — the replay path for traces far larger than RAM.
type TraceReader struct {
	r         *bufio.Reader
	workload  string
	seed      int64
	remaining uint32
	rec       [traceRecordLen]byte
}

// NewTraceReader reads and validates the header, leaving the reader
// positioned at the first record.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var hdr [18]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if string(hdr[:4]) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", hdr[:4])
	}
	if v := readU16(hdr[4:]); v != TraceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d (have %d)", v, TraceVersion)
	}
	if f := readU16(hdr[6:]); f != 0 {
		return nil, fmt.Errorf("workload: reserved trace flags %#x set", f)
	}
	wlen := int(readU16(hdr[16:]))
	if wlen > maxTraceLabel {
		return nil, fmt.Errorf("workload: trace label %d bytes exceeds %d", wlen, maxTraceLabel)
	}
	label := make([]byte, wlen)
	if _, err := io.ReadFull(br, label); err != nil {
		return nil, fmt.Errorf("workload: trace label: %w", err)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("workload: trace count: %w", err)
	}
	return &TraceReader{
		r:         br,
		workload:  string(label),
		seed:      int64(readU64(hdr[8:])),
		remaining: readU32(cnt[:]),
	}, nil
}

// Workload reports the stream label.
func (t *TraceReader) Workload() string { return t.workload }

// Seed reports the recorded generator seed.
func (t *TraceReader) Seed() int64 { return t.seed }

// Remaining reports how many records are left.
func (t *TraceReader) Remaining() int { return int(t.remaining) }

// Next returns the next record, or io.EOF after the declared count. A
// stream shorter than its count returns io.ErrUnexpectedEOF.
func (t *TraceReader) Next() (Request, error) {
	if t.remaining == 0 {
		return Request{}, io.EOF
	}
	if _, err := io.ReadFull(t.r, t.rec[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Request{}, fmt.Errorf("workload: trace record: %w", err)
	}
	t.remaining--
	var req Request
	decodeRecord(t.rec[:], &req)
	return req, nil
}

// ---- little-endian primitives ----------------------------------------

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func appendRecord(b []byte, r *Request) []byte {
	b = appendU64(b, uint64(r.At))
	b = appendU64(b, r.Key)
	b = appendU32(b, r.Prompt)
	b = appendU32(b, r.Decode)
	return append(b, r.Cohort, r.Kind)
}

func decodeRecord(b []byte, r *Request) {
	r.At = sim.Time(readU64(b))
	r.Key = readU64(b[8:])
	r.Prompt = readU32(b[16:])
	r.Decode = readU32(b[20:])
	r.Cohort = b[24]
	r.Kind = b[25]
}
