// Package xxhash implements the xxHash non-cryptographic hash family
// (XXH32 and XXH64) from the published algorithm specification.
//
// The paper's ksm offload computes a 32-bit xxhash over each scanned page as
// a change hint (§VI-B, citing Collet's xxHash); this package provides that
// exact function for both the software (host-CPU) path and the simulated
// device IP, so the two paths are verifiably equivalent.
package xxhash

import "math/bits"

// XXH32 primes, from the reference specification.
const (
	prime32x1 uint32 = 2654435761
	prime32x2 uint32 = 2246822519
	prime32x3 uint32 = 3266489917
	prime32x4 uint32 = 668265263
	prime32x5 uint32 = 374761393
)

// XXH64 primes, from the reference specification.
const (
	prime64x1 uint64 = 11400714785074694791
	prime64x2 uint64 = 14029467366897019727
	prime64x3 uint64 = 1609587929392839161
	prime64x4 uint64 = 9650029242287828579
	prime64x5 uint64 = 2870177450012600261
)

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func u64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func round32(acc, lane uint32) uint32 {
	return bits.RotateLeft32(acc+lane*prime32x2, 13) * prime32x1
}

// Sum32 computes the 32-bit xxHash of data with the given seed.
func Sum32(data []byte, seed uint32) uint32 {
	n := len(data)
	var h uint32
	p := data
	if n >= 16 {
		v1 := seed + prime32x1 + prime32x2
		v2 := seed + prime32x2
		v3 := seed
		v4 := seed - prime32x1
		for len(p) >= 16 {
			v1 = round32(v1, u32(p[0:4]))
			v2 = round32(v2, u32(p[4:8]))
			v3 = round32(v3, u32(p[8:12]))
			v4 = round32(v4, u32(p[12:16]))
			p = p[16:]
		}
		h = bits.RotateLeft32(v1, 1) + bits.RotateLeft32(v2, 7) +
			bits.RotateLeft32(v3, 12) + bits.RotateLeft32(v4, 18)
	} else {
		h = seed + prime32x5
	}
	h += uint32(n)
	for len(p) >= 4 {
		h = bits.RotateLeft32(h+u32(p)*prime32x3, 17) * prime32x4
		p = p[4:]
	}
	for _, b := range p {
		h = bits.RotateLeft32(h+uint32(b)*prime32x5, 11) * prime32x1
	}
	h ^= h >> 15
	h *= prime32x2
	h ^= h >> 13
	h *= prime32x3
	h ^= h >> 16
	return h
}

func round64(acc, lane uint64) uint64 {
	return bits.RotateLeft64(acc+lane*prime64x2, 31) * prime64x1
}

func mergeRound64(acc, val uint64) uint64 {
	acc ^= round64(0, val)
	return acc*prime64x1 + prime64x4
}

// Sum64 computes the 64-bit xxHash of data with the given seed.
func Sum64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64
	p := data
	if n >= 32 {
		v1 := seed + prime64x1 + prime64x2
		v2 := seed + prime64x2
		v3 := seed
		v4 := seed - prime64x1
		for len(p) >= 32 {
			v1 = round64(v1, u64(p[0:8]))
			v2 = round64(v2, u64(p[8:16]))
			v3 = round64(v3, u64(p[16:24]))
			v4 = round64(v4, u64(p[24:32]))
			p = p[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound64(h, v1)
		h = mergeRound64(h, v2)
		h = mergeRound64(h, v3)
		h = mergeRound64(h, v4)
	} else {
		h = seed + prime64x5
	}
	h += uint64(n)
	for len(p) >= 8 {
		h ^= round64(0, u64(p))
		h = bits.RotateLeft64(h, 27)*prime64x1 + prime64x4
		p = p[8:]
	}
	if len(p) >= 4 {
		h ^= uint64(u32(p)) * prime64x1
		h = bits.RotateLeft64(h, 23)*prime64x2 + prime64x3
		p = p[4:]
	}
	for _, b := range p {
		h ^= uint64(b) * prime64x5
		h = bits.RotateLeft64(h, 11) * prime64x1
	}
	h ^= h >> 33
	h *= prime64x2
	h ^= h >> 29
	h *= prime64x3
	h ^= h >> 32
	return h
}

// PageChecksum computes the 32-bit change hint ksm stores per scanned page.
// It matches the kernel's calc_checksum: xxhash of the full page with seed 0,
// truncated to 32 bits via Sum32 directly.
func PageChecksum(page []byte) uint32 { return Sum32(page, 0) }
