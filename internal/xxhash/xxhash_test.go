package xxhash

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Published reference vectors for XXH32 (from the xxHash specification and
// widely mirrored test suites).
func TestSum32Vectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint32
		want uint32
	}{
		{"", 0, 0x02CC5D05},
		{"", 0x9E3779B1, 0x36B78AE7},
		{"a", 0, 0x550D7456},
		{"abc", 0, 0x32D153FF},
		{"abcd", 0, 0xA3643705},
		{"Nobody inspects the spammish repetition", 0, 0xE2293B2F},
	}
	for _, c := range cases {
		if got := Sum32([]byte(c.in), c.seed); got != c.want {
			t.Errorf("Sum32(%q, %#x) = %#08x, want %#08x", c.in, c.seed, got, c.want)
		}
	}
}

// Published reference vectors for XXH64.
func TestSum64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0xEF46DB3751D8E999},
		{"a", 0, 0xD24EC4F1A98C6E5B},
		{"abc", 0, 0x44BC2CF5AD770999},
		{"xxhash", 0, 0x32DD38952C4BC720},
		{"xxhash", 20141025, 0xB559B98D844E0635},
	}
	for _, c := range cases {
		if got := Sum64([]byte(c.in), c.seed); got != c.want {
			t.Errorf("Sum64(%q, %d) = %#016x, want %#016x", c.in, c.seed, got, c.want)
		}
	}
}

func TestSum32LongInput(t *testing.T) {
	// Exercise the 16-byte stripe loop plus every tail length.
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(i * 7)
	}
	seen := map[uint32]int{}
	for n := 0; n <= 64; n++ {
		h := Sum32(base[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}

func TestSum64LongInput(t *testing.T) {
	base := make([]byte, 128)
	for i := range base {
		base[i] = byte(i*13 + 1)
	}
	seen := map[uint64]int{}
	for n := 0; n <= 128; n++ {
		h := Sum64(base[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}

func TestSumDeterministicProperty(t *testing.T) {
	f := func(data []byte, seed32 uint32, seed64 uint64) bool {
		cp := bytes.Clone(data)
		return Sum32(data, seed32) == Sum32(cp, seed32) &&
			Sum64(data, seed64) == Sum64(cp, seed64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeedChangesHashProperty(t *testing.T) {
	f := func(data []byte, s1, s2 uint32) bool {
		if s1 == s2 {
			return true
		}
		// Different seeds virtually always produce different hashes; allow the
		// astronomically unlikely equality only when it holds for a second,
		// extended input too (then it would be a real bug).
		if Sum32(data, s1) != Sum32(data, s2) {
			return true
		}
		ext := append(bytes.Clone(data), 0xA5)
		return Sum32(ext, s1) != Sum32(ext, s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBitFlipChangesChecksumProperty(t *testing.T) {
	// ksm relies on the checksum changing when a page changes.
	f := func(seed int64) bool {
		page := make([]byte, 4096)
		for i := range page {
			page[i] = byte(int64(i) * seed)
		}
		orig := PageChecksum(page)
		page[(seed%4096+4096)%4096] ^= 0x01
		return PageChecksum(page) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPageChecksumMatchesSum32(t *testing.T) {
	page := bytes.Repeat([]byte{0xCD}, 4096)
	if PageChecksum(page) != Sum32(page, 0) {
		t.Fatal("PageChecksum must be Sum32 with seed 0")
	}
}

func BenchmarkSum32Page(b *testing.B) {
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Sum32(page, 0)
	}
}

func BenchmarkSum64Page(b *testing.B) {
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Sum64(page, 0)
	}
}
