package xxhash

import "testing"

// FuzzSumConsistency checks structural hash properties on arbitrary input:
// determinism, and incremental-length inputs never colliding with their
// own prefixes (a weak but useful avalanche sanity check).
func FuzzSumConsistency(f *testing.F) {
	f.Add([]byte("seed"), uint32(0))
	f.Add([]byte{}, uint32(42))
	f.Fuzz(func(t *testing.T, data []byte, seed uint32) {
		h1 := Sum32(data, seed)
		h2 := Sum32(append([]byte(nil), data...), seed)
		if h1 != h2 {
			t.Fatal("Sum32 not deterministic")
		}
		if len(data) > 0 {
			if Sum32(data[:len(data)-1], seed) == h1 && Sum32(append(data, 0x9E), seed) == h1 {
				t.Fatal("prefix and extension both collide — broken mixing")
			}
		}
		if Sum64(data, uint64(seed)) != Sum64(data, uint64(seed)) {
			t.Fatal("Sum64 not deterministic")
		}
	})
}
