// Package pcie models the plain-PCIe host-device transfer mechanisms the
// paper compares CXL against (§V-D, Fig. 6): MMIO ld/st over PCIe, engine
// DMA with descriptor setup and completion signalling, RDMA on a
// BlueField-3-class SNIC, and DOCA-DMA. Each mechanism reports both its
// end-to-end latency and the host-CPU time it consumes — the latter is what
// makes the pcie-* kernel-feature backends interfere with co-running
// applications (§VII).
package pcie

import (
	"fmt"

	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Mechanism enumerates the §V-D transfer mechanisms.
type Mechanism uint8

// Transfer mechanisms.
const (
	MMIO Mechanism = iota
	DMA
	RDMA
	DOCADMA
)

// String names the mechanism as the paper does.
func (m Mechanism) String() string {
	switch m {
	case MMIO:
		return "PCIe-MMIO"
	case DMA:
		return "PCIe-DMA"
	case RDMA:
		return "PCIe-RDMA"
	case DOCADMA:
		return "PCIe-DOCA-DMA"
	default:
		return fmt.Sprintf("Mechanism(%d)", uint8(m))
	}
}

// Transfer describes one host-device transfer's outcome.
type Transfer struct {
	// Submit is when the initiating CPU is free again (descriptor posted /
	// last MMIO op retired).
	Submit sim.Time
	// Done is when the data is fully at its destination and the initiator
	// knows it (including completion signalling).
	Done sim.Time
	// HostCPU is the host-CPU busy time consumed by the transfer — the
	// interference currency of §VII.
	HostCPU sim.Time
}

// Dir is the transfer direction.
type Dir uint8

// Transfer directions.
const (
	H2D Dir = iota // host-initiated write toward the device (or read from it)
	D2H            // device-initiated access to host memory
)

// Endpoint models one PCIe device's transfer engines. Engines are
// serialized per device (one DMA engine, one NIC pipeline), so concurrent
// transfers queue.
type Endpoint struct {
	p    *timing.Params
	dma  *sim.Resource
	nic  *sim.Resource
	doca *sim.Resource
	mmio *sim.Resource
}

// NewEndpoint returns a PCIe device endpoint.
func NewEndpoint(p *timing.Params) *Endpoint {
	return &Endpoint{
		p:    p,
		dma:  sim.NewResource("pcie.dma"),
		nic:  sim.NewResource("pcie.nic"),
		doca: sim.NewResource("pcie.doca"),
		mmio: sim.NewResource("pcie.mmio"),
	}
}

// MMIORead performs a host uncacheable read of size bytes from device MMIO
// space. Each 64-byte word is a full serialized PCIe round trip (§II-A),
// and the CPU spins for the duration — which is why a 256 B read exceeds
// 4 µs.
func (e *Endpoint) MMIORead(size int, now sim.Time) Transfer {
	words := lines(size)
	t := now
	for i := 0; i < words; i++ {
		start := e.mmio.Claim(t, e.p.PCIe.MMIOReadRT)
		t = start + e.p.PCIe.MMIOReadRT
	}
	return Transfer{Submit: t, Done: t, HostCPU: t - now}
}

// MMIOWrite performs a host write-combining store stream of size bytes to
// device MMIO space. Writes are posted but PCIe's strict ordering allows
// only one in flight, so each 64-byte transfer costs a one-way trip.
func (e *Endpoint) MMIOWrite(size int, now sim.Time) Transfer {
	words := lines(size)
	t := now
	for i := 0; i < words; i++ {
		start := e.mmio.Claim(t, e.p.PCIe.MMIOWriteOneWay)
		t = start + e.p.PCIe.MMIOWriteOneWay
	}
	return Transfer{Submit: t, Done: t, HostCPU: t - now}
}

// DMATransfer performs an engine DMA of size bytes. The host pays the
// descriptor setup; the engine streams; completion costs either an
// interrupt (host CPU) or nothing extra if the caller polls elsewhere.
func (e *Endpoint) DMATransfer(size int, now sim.Time, interrupt bool) Transfer {
	submit := now + e.p.PCIe.DMASetup
	// The engine is pipelined: a transfer occupies the engine for its wire
	// time while the fixed engine latency overlaps with other transfers.
	occ := timing.Streaming(size, e.p.PCIe.DMABytesPerSec)
	start := e.dma.Claim(submit, occ)
	done := start + occ + e.p.PCIe.DMAEngine + e.p.PCIe.DMACompletion
	cpu := e.p.PCIe.DMASetup + e.p.PCIe.DMACompletion
	if interrupt {
		done += e.p.PCIe.InterruptCost
		cpu += e.p.PCIe.InterruptCost
	}
	return Transfer{Submit: submit, Done: done, HostCPU: cpu}
}

// RDMATransfer performs an RDMA read/write of size bytes through the SNIC.
// dir selects who initiates: D2H transfers are driven by the SNIC's Arm
// cores and pay their software overhead instead of host verb-post time.
func (e *Endpoint) RDMATransfer(size int, now sim.Time, dir Dir) Transfer {
	var submit sim.Time
	var cpu sim.Time
	if dir == H2D {
		submit = now + e.p.PCIe.RDMAPost
		cpu = e.p.PCIe.RDMAPost
	} else {
		submit = now + e.p.PCIe.RDMAArmOverhead
	}
	occ := timing.Streaming(size, e.p.PCIe.RDMABytesPerSec)
	start := e.nic.Claim(submit, occ)
	return Transfer{Submit: submit, Done: start + occ + e.p.PCIe.RDMANIC, HostCPU: cpu}
}

// RDMAFollowOn performs an RDMA transfer chained by software that already
// runs on the SNIC (no WQE post, no Arm wake-up): NIC pipeline + streaming
// only. The on-device offload loops use it for their second and later legs.
func (e *Endpoint) RDMAFollowOn(size int, now sim.Time) Transfer {
	occ := timing.Streaming(size, e.p.PCIe.RDMABytesPerSec)
	start := e.nic.Claim(now, occ)
	return Transfer{Submit: now, Done: start + occ + e.p.PCIe.RDMANIC}
}

// DOCATransfer performs a DOCA-DMA of size bytes — measurably slower than
// raw RDMA on the same card (§V-D).
func (e *Endpoint) DOCATransfer(size int, now sim.Time, dir Dir) Transfer {
	submit := now + e.p.PCIe.DOCASetup
	var cpu sim.Time
	if dir == H2D {
		cpu = e.p.PCIe.DOCASetup
	}
	occ := timing.Streaming(size, e.p.PCIe.DOCABytesPerSec)
	start := e.doca.Claim(submit, occ)
	return Transfer{Submit: submit, Done: start + occ + e.p.PCIe.DOCAEngine, HostCPU: cpu}
}

// Interrupt returns the host-CPU cost of taking one device interrupt (the
// pcie-* offload completion path, §VII).
func (e *Endpoint) Interrupt() sim.Time { return e.p.PCIe.InterruptCost }

// ResetTiming returns all engines to idle.
func (e *Endpoint) ResetTiming() {
	e.dma.Reset()
	e.nic.Reset()
	e.doca.Reset()
	e.mmio.Reset()
}

func lines(size int) int {
	n := size / phys.LineSize
	if size%phys.LineSize != 0 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}
