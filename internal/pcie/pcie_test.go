package pcie

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/timing"
)

func newEP() *Endpoint { return NewEndpoint(timing.Default()) }

func TestMMIORead256BExceeds4us(t *testing.T) {
	// §I / §II-A: a 256 B MMIO read takes longer than 4 µs.
	e := newEP()
	tr := e.MMIORead(256, 0)
	if tr.Done <= 4*sim.Microsecond {
		t.Fatalf("256B MMIO read = %v, paper says > 4us", tr.Done)
	}
	bw := 256 / tr.Done.Seconds()
	if bw >= 0.3e9 {
		t.Fatalf("256B MMIO read bandwidth = %.2f GB/s, paper says < 0.3", bw/1e9)
	}
}

func TestMMIOReadSerializesPerWord(t *testing.T) {
	e := newEP()
	one := e.MMIORead(64, 0)
	four := e.MMIORead(256, one.Done)
	if got := four.Done - one.Done; got != 4*one.Done {
		t.Fatalf("4-word read = %v, want 4 × %v", got, one.Done)
	}
}

func TestMMIOWriteOrderingLimit(t *testing.T) {
	e := newEP()
	one := e.MMIOWrite(64, 0)
	// One-way latency per posted word.
	if one.Done != timing.Default().PCIe.MMIOWriteOneWay {
		t.Fatalf("single write = %v", one.Done)
	}
	eight := NewEndpoint(timing.Default()).MMIOWrite(512, 0)
	if eight.Done != 8*one.Done {
		t.Fatalf("8-word write = %v, want 8 × %v", eight.Done, one.Done)
	}
}

func TestMMIOConsumesHostCPUFully(t *testing.T) {
	e := newEP()
	tr := e.MMIORead(1024, 0)
	if tr.HostCPU != tr.Done {
		t.Fatal("MMIO spins the CPU for the whole transfer")
	}
}

func TestDMASmallTransferDominatedBySetup(t *testing.T) {
	e := newEP()
	small := e.DMATransfer(64, 0, false)
	e2 := newEP()
	big := e2.DMATransfer(64<<10, 0, false)
	// Setup+engine dominates at 64 B: latency is within 2× of the 64 KB
	// fixed part... more precisely, the fixed costs exceed the streaming
	// time at 64 B.
	p := timing.Default()
	fixed := p.PCIe.DMASetup + p.PCIe.DMAEngine + p.PCIe.DMACompletion
	if small.Done < fixed {
		t.Fatalf("small DMA %v below fixed cost %v", small.Done, fixed)
	}
	if small.Done > fixed+sim.Microsecond {
		t.Fatalf("small DMA %v far above fixed cost", small.Done)
	}
	// Large transfers approach the streaming bandwidth.
	bw := float64(64<<10) / (big.Done - big.Submit).Seconds()
	if bw < 20e9 || bw > 30e9 {
		t.Fatalf("64KB DMA bandwidth = %.1f GB/s, want ~28 saturating <30 (Fig. 6)", bw/1e9)
	}
}

func TestDMAInterruptAddsHostCPU(t *testing.T) {
	e := newEP()
	polled := e.DMATransfer(4096, 0, false)
	e2 := newEP()
	intr := e2.DMATransfer(4096, 0, true)
	if intr.HostCPU <= polled.HostCPU {
		t.Fatal("interrupt completion must cost host CPU")
	}
	if intr.Done <= polled.Done {
		t.Fatal("interrupt completion must add latency")
	}
}

func TestDMAHostCPUFarBelowMMIO(t *testing.T) {
	// The whole point of DMA: the CPU posts a descriptor and is free.
	mm := newEP().MMIOWrite(4096, 0)
	dm := newEP().DMATransfer(4096, 0, false)
	if dm.HostCPU*4 > mm.HostCPU {
		t.Fatalf("DMA host CPU %v should be far below MMIO %v", dm.HostCPU, mm.HostCPU)
	}
}

func TestRDMADirections(t *testing.T) {
	h2d := newEP().RDMATransfer(4096, 0, H2D)
	d2h := newEP().RDMATransfer(4096, 0, D2H)
	if h2d.HostCPU == 0 {
		t.Fatal("host-initiated RDMA posts a verb on the host CPU")
	}
	if d2h.HostCPU != 0 {
		t.Fatal("device-initiated RDMA must not consume host CPU")
	}
	// Device-initiated transfers pay the Arm software overhead.
	if d2h.Done <= h2d.Done {
		t.Fatal("Arm-driven D2H RDMA should be slower than host-posted H2D")
	}
}

func TestRDMABandwidthSaturation(t *testing.T) {
	// Fig. 6: RDMA reaches ~40 GB/s end to end at large transfers on the
	// ×32 card.
	e := newEP()
	tr := e.RDMATransfer(256<<10, 0, H2D)
	bw := float64(256<<10) / tr.Done.Seconds()
	if bw < 36e9 || bw > 44e9 {
		t.Fatalf("RDMA end-to-end bandwidth = %.1f GB/s", bw/1e9)
	}
}

func TestDOCASlowerThanRDMA(t *testing.T) {
	// §V-D: PCIe-RDMA is more performant than PCIe-DOCA-DMA on the same
	// card.
	for _, size := range []int{64, 256, 4096, 64 << 10} {
		rdma := newEP().RDMATransfer(size, 0, H2D)
		doca := newEP().DOCATransfer(size, 0, H2D)
		if doca.Done <= rdma.Done {
			t.Errorf("size %d: DOCA %v should be slower than RDMA %v", size, doca.Done, rdma.Done)
		}
	}
}

func TestEnginesSerialize(t *testing.T) {
	e := newEP()
	a := e.DMATransfer(64<<10, 0, false)
	b := e.DMATransfer(64<<10, 0, false)
	if b.Done < a.Done {
		t.Fatal("concurrent DMAs must queue on the engine")
	}
	e.ResetTiming()
	c := e.DMATransfer(64<<10, 0, false)
	if c.Done != a.Done {
		t.Fatal("ResetTiming should restore idle engine behavior")
	}
}

func TestMechanismString(t *testing.T) {
	for m, want := range map[Mechanism]string{
		MMIO: "PCIe-MMIO", DMA: "PCIe-DMA", RDMA: "PCIe-RDMA", DOCADMA: "PCIe-DOCA-DMA",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestZeroSizeTransferStillCostsAWord(t *testing.T) {
	e := newEP()
	tr := e.MMIORead(0, 0)
	if tr.Done == 0 {
		t.Fatal("zero-size MMIO read should still cost one word")
	}
}
