package infer

import (
	"repro/internal/mem"
	"repro/internal/phys"
)

// block is one paged-KV block: a fixed-size run of lines in exactly one
// tier. Migration rewrites tier+addr in place, so sequences never notice
// their blocks moving.
type block struct {
	tier    Tier
	addr    phys.Addr
	lastUse uint64 // scheduler step of the last touch, for LRU
}

// pool is a fixed-capacity block allocator over a contiguous physical
// range. The free list is LIFO and every operation is deterministic, so
// block addresses replay exactly for a fixed request schedule.
type pool struct {
	tier       Tier
	base       phys.Addr
	blockBytes int
	total      int
	free       []int32
}

func newPool(tier Tier, base phys.Addr, blockBytes, total int) pool {
	p := pool{tier: tier, base: base, blockBytes: blockBytes, total: total}
	p.free = make([]int32, total)
	// Descending push order so the first allocations come from the low
	// end of the range.
	for i := range p.free {
		p.free[i] = int32(total - 1 - i)
	}
	return p
}

// span is the pool's physical range (used to pin bias for the whole far
// pool in one PTU walk).
func (p *pool) span() phys.Range {
	return phys.Range{Base: p.base, Size: uint64(p.total * p.blockBytes)}
}

func (p *pool) allocAddr() (phys.Addr, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	slot := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return p.base + phys.Addr(int(slot)*p.blockBytes), true
}

func (p *pool) releaseAddr(a phys.Addr) {
	p.free = append(p.free, int32(int(a-p.base)/p.blockBytes))
}

func (p *pool) freeBlocks() int { return len(p.free) }

// KVCache is the paged KV cache: a near (host DRAM) pool plus an optional
// far pool in the configured tier, and the registry of live blocks the
// placement policies scan.
type KVCache struct {
	blockBytes int
	near, far  pool
	live       []*block
}

// Pool bases: clear of everything else the simulation maps (the host pool
// sits 4 GiB into socket-0 DRAM; the far pool 1 GiB into the device
// window, whether that window is CXL.mem, D2D-local, or behind PCIe).
const nearPoolBase = phys.Addr(4 << 30)

var farPoolBase = mem.RegionDevice.Base + phys.Addr(1<<30)

func newKVCache(cfg Config) *KVCache {
	bb := cfg.BlockTokens * cfg.BytesPerToken
	c := &KVCache{blockBytes: bb}
	c.near = newPool(TierDRAM, nearPoolBase, bb, cfg.DRAMBlocks)
	farBlocks := cfg.FarBlocks
	if cfg.Far == TierDRAM {
		farBlocks = 0 // all-DRAM serving: no far tier
	}
	c.far = newPool(cfg.Far, farPoolBase, bb, farBlocks)
	return c
}

// canFit reports whether n more blocks fit across both pools — the
// admission-control check that keeps decode from deadlocking.
func (c *KVCache) canFit(n int) bool {
	return c.near.freeBlocks()+c.far.freeBlocks() >= n
}

// alloc takes a block from the preferred class, falling back to the other
// pool when it is full.
func (c *KVCache) alloc(class Class) (*block, bool) {
	first, second := &c.near, &c.far
	if class == Far {
		first, second = &c.far, &c.near
	}
	p := first
	a, ok := p.allocAddr()
	if !ok {
		p = second
		if a, ok = p.allocAddr(); !ok {
			return nil, false
		}
	}
	b := &block{tier: p.tier, addr: a}
	c.live = append(c.live, b)
	return b, true
}

// release returns a finished sequence's block to its pool.
func (c *KVCache) release(b *block) {
	c.releasePool(b.tier).releaseAddr(b.addr)
	for i, lb := range c.live {
		if lb == b {
			// Swap-delete: deterministic given the deterministic call
			// order, and the policies sort by recency anyway.
			c.live[i] = c.live[len(c.live)-1]
			c.live = c.live[:len(c.live)-1]
			return
		}
	}
}

func (c *KVCache) releasePool(t Tier) *pool {
	if t == TierDRAM {
		return &c.near
	}
	return &c.far
}

// nearFree reports free blocks in the DRAM pool (watermark input for the
// spill policies).
func (c *KVCache) nearFree() int { return c.near.freeBlocks() }

// coldestNear returns the least-recently-used live DRAM block, or nil.
func (c *KVCache) coldestNear() *block {
	var cold *block
	for _, b := range c.live {
		if b.tier != TierDRAM {
			continue
		}
		// Ties break toward the lower address, keeping victim selection
		// independent of registry order.
		if cold == nil || b.lastUse < cold.lastUse ||
			(b.lastUse == cold.lastUse && b.addr < cold.addr) {
			cold = b
		}
	}
	return cold
}
