package infer

import (
	"reflect"
	"testing"
)

// run executes a small serving sim with the given far tier and policy.
func run(t *testing.T, far Tier, pol Policy, mut func(*Config)) Metrics {
	t.Helper()
	cfg := Config{Seed: 7, Far: far, Policy: pol}
	if mut != nil {
		mut(&cfg)
	}
	return Run(cfg)
}

func TestRunDeterministic(t *testing.T) {
	for _, far := range Tiers() {
		pol := Policy(StaticSplit{NearBlocks: 2})
		if far == TierDRAM {
			pol = AllDRAM{}
		}
		a := run(t, far, pol, nil)
		b := run(t, far, pol, nil)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("far=%v: two runs with the same seed diverged:\n a=%+v\n b=%+v", far, a, b)
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := Run(Config{Seed: 7})
	b := Run(Config{Seed: 8})
	if a.TTFT.Mean() == b.TTFT.Mean() && a.Elapsed == b.Elapsed {
		t.Fatalf("different seeds produced identical schedules (TTFT %v, elapsed %v)", a.TTFT.Mean(), a.Elapsed)
	}
}

// TestTierOrdering pins the paper-shaped latency ordering the experiment
// section reports: host DRAM beats Type-2 device-bias, which beats the
// same memory under host bias (bias checks), which beats a Type-3
// expander (CXL.mem round trips), which beats PCIe DMA (setup-dominated).
func TestTierOrdering(t *testing.T) {
	tpot := map[Tier]float64{}
	for _, far := range Tiers() {
		pol := Policy(StaticSplit{NearBlocks: 0}) // everything in the far tier
		if far == TierDRAM {
			pol = AllDRAM{}
		}
		m := run(t, far, pol, nil)
		if m.Requests != 48 || m.TPOT.N() == 0 {
			t.Fatalf("far=%v: incomplete run: %+v", far, m)
		}
		tpot[far] = m.TPOT.Mean()
	}
	order := []Tier{TierDRAM, TierT2Dev, TierT2Host, TierT3, TierPCIe}
	for i := 1; i < len(order); i++ {
		lo, hi := order[i-1], order[i]
		if !(tpot[lo] < tpot[hi]) {
			t.Errorf("TPOT ordering violated: %v (%.3fus) !< %v (%.3fus)", lo, tpot[lo], hi, tpot[hi])
		}
	}
}

func TestTierByteAccounting(t *testing.T) {
	m := run(t, TierT3, StaticSplit{NearBlocks: 0}, nil)
	if m.ReadBytes[TierT3] == 0 || m.WriteBytes[TierT3] == 0 {
		t.Fatalf("no far-tier traffic recorded: %+v", m)
	}
	if m.ReadBytes[TierDRAM] != 0 || m.WriteBytes[TierDRAM] != 0 {
		t.Fatalf("split-0 policy leaked KV traffic into DRAM: %+v", m)
	}
	// Every generated token appends BytesPerToken to its tail block.
	wantDecodeWrites := uint64((m.GenTokens - m.Requests) * 32) // decode tokens only
	if m.WriteBytes[TierT3] < wantDecodeWrites {
		t.Fatalf("write bytes %d below decode-token floor %d", m.WriteBytes[TierT3], wantDecodeWrites)
	}
}

func TestLRUSpillMigrates(t *testing.T) {
	m := run(t, TierT2Dev, LRUSpill{LowWater: 8, HighWater: 12}, func(c *Config) {
		c.DRAMBlocks = 16 // force pressure: one batch exhausts DRAM
	})
	if m.Migrations == 0 {
		t.Fatalf("no migrations under DRAM pressure: %+v", m)
	}
	if m.MigratedBytes != uint64(m.Migrations)*16*32 {
		t.Fatalf("migrated bytes %d inconsistent with %d migrations", m.MigratedBytes, m.Migrations)
	}
	if m.ReadBytes[TierT2Dev] == 0 {
		t.Fatalf("spilled blocks never read from the far tier: %+v", m)
	}
	// Spilling must cost TPOT relative to an unpressured all-DRAM run.
	base := run(t, TierT2Dev, AllDRAM{}, nil)
	if !(m.TPOT.Mean() > base.TPOT.Mean()) {
		t.Errorf("spill TPOT %.3fus not above all-DRAM %.3fus", m.TPOT.Mean(), base.TPOT.Mean())
	}
}

func TestPinnedDecodePlacement(t *testing.T) {
	m := run(t, TierT2Dev, PinnedDecode{}, nil)
	if m.WriteBytes[TierDRAM] == 0 {
		t.Fatalf("prefill KV missing from DRAM: %+v", m)
	}
	if m.WriteBytes[TierT2Dev] == 0 || m.ReadBytes[TierT2Dev] == 0 {
		t.Fatalf("decode KV missing from device memory: %+v", m)
	}
	// Only the small decode tail lives in device memory, so pinned-decode
	// must stay far cheaper than pushing the whole KV off-host.
	allDev := run(t, TierT2Dev, StaticSplit{NearBlocks: 0}, nil)
	if !(m.TPOT.Mean() < allDev.TPOT.Mean()) {
		t.Errorf("pinned-decode TPOT %.3fus not below all-device %.3fus",
			m.TPOT.Mean(), allDev.TPOT.Mean())
	}
}

func TestTightPoolsStillDrain(t *testing.T) {
	// Admission control must serialize requests rather than deadlock when
	// the pools barely fit one worst-case sequence.
	m := run(t, TierT2Dev, AllDRAM{}, func(c *Config) {
		c.DRAMBlocks = 6
		c.FarBlocks = 2
		c.Requests = 12
	})
	if m.Requests != 12 || m.TPOT.N() == 0 {
		t.Fatalf("tight pools did not drain: %+v", m)
	}
}

func TestTraceCaptureD2D(t *testing.T) {
	m := run(t, TierT2Dev, StaticSplit{NearBlocks: 0}, func(c *Config) {
		c.TraceCap = 4096
		c.Requests = 4
	})
	if m.Trace == nil || m.Trace.Total() == 0 {
		t.Fatalf("device trace empty despite D2D KV traffic")
	}
}

func TestBlockPoolReuse(t *testing.T) {
	c := newKVCache(Config{BlockTokens: 16, BytesPerToken: 32, DRAMBlocks: 2, FarBlocks: 2, Far: TierT3}.withDefaults())
	a, _ := c.alloc(Near)
	b, _ := c.alloc(Near)
	if _, ok := c.alloc(Near); !ok {
		t.Fatal("near-full alloc should fall back to the far pool")
	}
	c.release(a)
	d, _ := c.alloc(Near)
	if d.addr != a.addr || d.tier != TierDRAM {
		t.Fatalf("freed slot not reused: got %v want %v", d.addr, a.addr)
	}
	_ = b
}
