package infer

import (
	"fmt"

	"repro/internal/sim"
)

// Phase distinguishes where a new block comes from: the prompt's prefill
// burst or the token-at-a-time decode tail.
type Phase uint8

// Serving phases.
const (
	Prefill Phase = iota
	Decode
)

// Class is the policy's placement verdict: the near (host DRAM) pool or
// the configured far tier.
type Class uint8

// Placement classes.
const (
	Near Class = iota
	Far
)

// Policy decides where new KV blocks land and when existing ones move.
// Policies must be deterministic: the same sequence of Place/Rebalance
// calls must produce the same placements.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Place picks the pool for the seqBlock-th block of a sequence.
	Place(ph Phase, seqBlock int) Class
	// Rebalance runs after every scheduler step and may migrate blocks
	// (via Sim.migrate). Most policies do nothing.
	Rebalance(s *Sim, now sim.Time)
}

// AllDRAM keeps every block in host DRAM — the serving baseline (and the
// fallback when no far tier is configured).
type AllDRAM struct{}

// Name implements Policy.
func (AllDRAM) Name() string { return "all-dram" }

// Place implements Policy.
func (AllDRAM) Place(Phase, int) Class { return Near }

// Rebalance implements Policy.
func (AllDRAM) Rebalance(*Sim, sim.Time) {}

// StaticSplit keeps the first NearBlocks blocks of every sequence in DRAM
// and spills the rest to the far tier — the "head of the KV stays hot"
// placement.
type StaticSplit struct {
	// NearBlocks is how many leading blocks per sequence stay in DRAM.
	NearBlocks int
}

// Name implements Policy.
func (p StaticSplit) Name() string { return fmt.Sprintf("split-%d", p.NearBlocks) }

// Place implements Policy.
func (p StaticSplit) Place(_ Phase, seqBlock int) Class {
	if seqBlock < p.NearBlocks {
		return Near
	}
	return Far
}

// Rebalance implements Policy.
func (StaticSplit) Rebalance(*Sim, sim.Time) {}

// LRUSpill places everything in DRAM and, when the DRAM pool drains below
// LowWater free blocks, migrates the least-recently-used blocks to the
// far tier via DSA until HighWater free blocks are available — the
// tiered-KV eviction loop.
type LRUSpill struct {
	// LowWater triggers spilling; HighWater is the refill target.
	LowWater, HighWater int
}

// Name implements Policy.
func (LRUSpill) Name() string { return "lru-spill" }

// Place implements Policy.
func (LRUSpill) Place(Phase, int) Class { return Near }

// Rebalance implements Policy.
func (p LRUSpill) Rebalance(s *Sim, now sim.Time) {
	if s.cache.nearFree() >= p.LowWater {
		return
	}
	for s.cache.nearFree() < p.HighWater {
		cold := s.cache.coldestNear()
		if cold == nil || !s.migrate(cold, now) {
			return // nothing left to move or far pool full
		}
	}
}

// PinnedDecode places prefill KV in DRAM and decode KV in the far tier.
// With the far tier in Type-2 device-bias memory this is the paper's
// cooperative placement: the decode working set lives where the
// near-memory engine reads it without host round trips.
type PinnedDecode struct{}

// Name implements Policy.
func (PinnedDecode) Name() string { return "pinned-decode" }

// Place implements Policy.
func (PinnedDecode) Place(ph Phase, _ int) Class {
	if ph == Decode {
		return Far
	}
	return Near
}

// Rebalance implements Policy.
func (PinnedDecode) Rebalance(*Sim, sim.Time) {}
