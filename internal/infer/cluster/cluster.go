// Package cluster scales the single-instance serving model of
// internal/infer to a multi-host CXL cluster: N serving replicas — each a
// full host with its own cores, LLC and local DRAM block pool — draw
// overflow KV-cache blocks from shared Type-3 expanders behind a CXL
// switch (a fabric.Star topology). A pluggable router spreads the open
// request stream across replicas (round-robin, least-loaded,
// session-affinity), each replica runs its own continuous-batching loop
// with reservation-based admission, and every shared-block access rides
// the fabric — so switch-port arbitration and expander bandwidth show up
// directly in TTFT/TPOT when the shared pool is oversubscribed.
//
// The whole simulation is sequential and seeded (internal/rng derived
// streams), replaying byte-identical metrics for a fixed Config: the
// `cluster` experiment section leans on that to render identically in
// serial and parallel suite runs.
package cluster

import (
	"fmt"

	"repro/internal/cxl"
	"repro/internal/fabric"
	"repro/internal/infer"
	"repro/internal/phys"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/workload"
)

// localPoolBase places each replica's local KV pool in host DRAM, clear
// of the regions the figures use (same base as infer's near pool).
const localPoolBase = phys.Addr(4 << 30)

// Config parameterizes one cluster serving simulation.
type Config struct {
	// Seed drives every random stream (arrivals, shapes, sessions)
	// through derived internal/rng streams.
	Seed int64
	// Replicas is the number of serving hosts; Expanders the number of
	// shared Type-3 pools behind the switch.
	Replicas, Expanders int
	// Requests is the total request count; RatePerSec the Poisson
	// arrival rate of the open stream.
	Requests   int
	RatePerSec float64
	// PromptMin/Max and DecodeMin/Max bound request shapes (tokens),
	// zipf-skewed toward the minimum like the single-instance model.
	PromptMin, PromptMax int
	DecodeMin, DecodeMax int
	// Sessions is how many distinct client sessions the stream draws
	// from (zipf-skewed: a few sessions dominate), the signal the
	// affinity router exploits.
	Sessions int
	// MaxBatch bounds each replica's continuous batch.
	MaxBatch int
	// BlockTokens and BytesPerToken shape the paged KV cache.
	BlockTokens, BytesPerToken int
	// LocalBlocks sizes each replica's local DRAM pool; SharedBlocks
	// sizes each expander's shared pool. Replicas spill to the shared
	// pool when local runs out, so LocalBlocks < working set puts
	// traffic on the fabric.
	LocalBlocks, SharedBlocks int
	// Router spreads requests across replicas. Routers are stateful and
	// single-use: construct a fresh one per Run. Nil means round-robin.
	Router Router
	// PortCredits sizes the switch's per-egress-port credit pool. The
	// cluster default is 2 — a modest store-and-forward buffer, so a few
	// replicas hammering one expander link queue visibly at the port
	// instead of vanishing into deep buffering.
	PortCredits int
	// Model is the per-token compute profile (shared with infer).
	Model infer.ModelProfile
}

// withDefaults fills zero fields with a small 2-replica setup whose
// working set spills to the shared pool.
func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Expanders == 0 {
		c.Expanders = 1
	}
	if c.Requests == 0 {
		c.Requests = 64
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 25_000
	}
	if c.PromptMin == 0 {
		c.PromptMin = 24
	}
	if c.PromptMax == 0 {
		c.PromptMax = 64
	}
	if c.DecodeMin == 0 {
		c.DecodeMin = 8
	}
	if c.DecodeMax == 0 {
		c.DecodeMax = 24
	}
	if c.Sessions == 0 {
		c.Sessions = 12
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4
	}
	if c.BlockTokens == 0 {
		c.BlockTokens = 16
	}
	if c.BytesPerToken == 0 {
		c.BytesPerToken = 32
	}
	if c.LocalBlocks == 0 {
		c.LocalBlocks = 16
	}
	if c.SharedBlocks == 0 {
		c.SharedBlocks = 256
	}
	if c.PortCredits == 0 {
		c.PortCredits = 2
	}
	if c.Router == nil {
		c.Router = NewRoundRobin()
	}
	if c.Model == (infer.ModelProfile{}) {
		c.Model = infer.DefaultModel()
	}
	return c
}

// Topology returns the fabric topology the configuration compiles to: a
// Star of Replicas hosts and Expanders Type-3 pools behind one switch.
func (c Config) Topology() fabric.Topology {
	c = c.withDefaults()
	return fabric.Star(c.Replicas, c.Expanders,
		fabric.NodeSpec{LLCBytes: 1 << 20, LLCWays: 16, Cores: 4},
		fabric.NodeSpec{PortCredits: c.PortCredits},
		fabric.LinkSpec{})
}

// ReplicaMetrics is one replica's serving outcome.
type ReplicaMetrics struct {
	Requests   int
	TTFT, TPOT stats.Sample
	GenTokens  int
	// LocalBytes and SharedBytes count KV payload served from the
	// replica's own DRAM pool vs the shared expanders.
	LocalBytes, SharedBytes uint64
}

// Metrics is the outcome of one cluster simulation.
type Metrics struct {
	Router   string
	Replicas []ReplicaMetrics
	// TTFT and TPOT aggregate every request (microseconds).
	TTFT, TPOT stats.Sample
	GenTokens  int
	Elapsed    sim.Time
	Goodput    float64
	// Links and Ports are the fabric's per-link traffic and switch
	// arbitration stats.
	Links []fabric.LinkStat
	Ports []fabric.PortStat
	// TopoKey is the compiled topology's canonical key — the piece the
	// experiment cache key folds in.
	TopoKey string
	// Accesses counts simulated KV block accesses (the event measure for
	// runner accounting).
	Accesses uint64
}

// SwitchWaited sums arbitration wait across all switch egress ports.
func (m *Metrics) SwitchWaited() sim.Time {
	var w sim.Time
	for _, p := range m.Ports {
		w += p.Waited
	}
	return w
}

// PeakQueue returns the deepest egress-port queue seen anywhere.
func (m *Metrics) PeakQueue() int {
	q := 0
	for _, p := range m.Ports {
		if p.PeakQueue > q {
			q = p.PeakQueue
		}
	}
	return q
}

// creq is one in-flight request.
type creq struct {
	id             int
	arrival        sim.Time
	session        uint32
	prompt, decode int
	blocks         []cblock
	tokensInLast   int
	generated      int
	prefilled      bool
	firstTok       sim.Time
	lastTok        sim.Time
	// resLocal/resShared are the request's outstanding block
	// reservations against its replica's local pool and the shared pool.
	resLocal, resShared int
}

// cblock is one allocated KV block: a local DRAM address or a shared
// slot on an expander.
type cblock struct {
	shared bool
	exp    int       // expander index when shared
	addr   phys.Addr // local address when !shared
}

// replica is one serving host: router queue, continuous batch, local
// block pool.
type replica struct {
	idx       int
	hostID    string
	localFree []phys.Addr
	resLocal  int
	queue     []*creq
	batch     []*creq
	active    bool
	nextAt    sim.Time
	m         ReplicaMetrics
}

// sharedSlot is one free shared block.
type sharedSlot struct{ exp int }

// Cluster is one compiled cluster simulation.
type Cluster struct {
	cfg        Config
	p          *timing.Params
	f          *fabric.Fabric
	reps       []*replica
	sharedFree []sharedSlot
	resShared  int
	blockBytes int
	m          Metrics
}

// New compiles the cluster: fabric, replicas, pools.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	p := timing.Default()
	c := &Cluster{
		cfg:        cfg,
		p:          p,
		f:          fabric.MustBuild(cfg.Topology(), p),
		blockBytes: cfg.BlockTokens * cfg.BytesPerToken,
	}
	for i, id := range c.f.Hosts() {
		r := &replica{idx: i, hostID: id}
		for b := cfg.LocalBlocks - 1; b >= 0; b-- {
			r.localFree = append(r.localFree,
				localPoolBase+phys.Addr(b*c.blockBytes))
		}
		c.reps = append(c.reps, r)
	}
	// Stripe the shared free list round-robin across expanders so
	// allocation spreads load before any expander saturates.
	for b := 0; b < cfg.SharedBlocks; b++ {
		for x := 0; x < cfg.Expanders; x++ {
			c.sharedFree = append(c.sharedFree, sharedSlot{exp: x})
		}
	}
	c.m.Router = cfg.Router.Name()
	c.m.TopoKey = cfg.Topology().CanonicalKey(p)
	return c
}

// Run executes the cluster simulation to completion. Deterministic in
// Config.
func Run(cfg Config) Metrics {
	c := New(cfg)
	c.serve(c.genRequests())
	return c.m
}

// NumReplicas and Load expose routing signals: Load is a replica's
// queued plus batched request count.
func (c *Cluster) NumReplicas() int { return len(c.reps) }
func (c *Cluster) Load(i int) int   { return len(c.reps[i].queue) + len(c.reps[i].batch) }

// genRequests draws the seeded open request stream.
func (c *Cluster) genRequests() []*creq {
	cfg := c.cfg
	arrRng := rng.Derive(cfg.Seed, "cluster/arrivals")
	shapeRng := rng.Derive(cfg.Seed, "cluster/shape")
	sessRng := rng.Derive(cfg.Seed, "cluster/session")
	pZipf := workload.NewZipf(uint64(cfg.PromptMax-cfg.PromptMin+1), 0.99)
	dZipf := workload.NewZipf(uint64(cfg.DecodeMax-cfg.DecodeMin+1), 0.99)
	sZipf := workload.NewZipf(uint64(cfg.Sessions), 0.99)
	arrivals := workload.Poisson{RatePerSec: cfg.RatePerSec}
	capacity := cfg.LocalBlocks + cfg.SharedBlocks*cfg.Expanders
	reqs := make([]*creq, cfg.Requests)
	now := sim.Time(0)
	for i := range reqs {
		now += arrivals.GapAt(arrRng, now)
		r := &creq{
			id:      i,
			arrival: now,
			session: uint32(sZipf.Next(sessRng) % uint64(cfg.Sessions)),
			prompt:  cfg.PromptMin + int(pZipf.Next(shapeRng)%uint64(pZipf.N())),
			decode:  cfg.DecodeMin + int(dZipf.Next(shapeRng)%uint64(dZipf.N())),
		}
		if w := c.blocksFor(r.prompt + r.decode); w > capacity {
			panic(fmt.Sprintf("cluster: request needs %d KV blocks, pools hold %d", w, capacity))
		}
		reqs[i] = r
	}
	return reqs
}

// serve is the cluster event loop: always advance the earliest pending
// action — an arrival (routed to a replica) or the earliest-scheduled
// replica step — with deterministic tie-breaks (arrivals first, then the
// lowest replica index).
func (c *Cluster) serve(reqs []*creq) {
	next := 0
	finished := 0
	for finished < len(reqs) {
		var rep *replica
		for _, r := range c.reps {
			if r.active && (rep == nil || r.nextAt < rep.nextAt) {
				rep = r
			}
		}
		if next < len(reqs) && (rep == nil || reqs[next].arrival <= rep.nextAt) {
			q := reqs[next]
			next++
			tgt := c.cfg.Router.Route(routeView(q), c)
			if tgt < 0 || tgt >= len(c.reps) {
				panic(fmt.Sprintf("cluster: router %s routed to replica %d of %d",
					c.cfg.Router.Name(), tgt, len(c.reps)))
			}
			r := c.reps[tgt]
			r.queue = append(r.queue, q)
			if !r.active {
				r.active = true
				r.nextAt = q.arrival
			}
			continue
		}
		if rep == nil {
			// No scheduled step and no arrivals left, but requests remain:
			// every replica is starved on capacity with nothing in flight
			// to free it — the configuration cannot serve the stream.
			panic("cluster: starved — shared pool too small for any admission")
		}
		finished += c.step(rep)
	}
	c.finalize(reqs)
}

// step runs one continuous-batching step on rep: admit from its queue
// under reservation-based admission, prefill/decode the batch, retire.
// Returns how many requests finished.
func (c *Cluster) step(rep *replica) int {
	cfg := c.cfg
	now := rep.nextAt
	for len(rep.queue) > 0 && len(rep.batch) < cfg.MaxBatch {
		q := rep.queue[0]
		w := c.blocksFor(q.prompt + q.decode)
		// Worst-case reservation, split local-first: the request's blocks
		// are guaranteed before it enters the batch, so replicas drawing
		// from the shared pool can never deadlock each other mid-decode.
		l := min(len(rep.localFree)-rep.resLocal, w)
		if l < 0 {
			l = 0
		}
		s := w - l
		if len(c.sharedFree)-c.resShared < s {
			break
		}
		rep.resLocal += l
		c.resShared += s
		q.resLocal, q.resShared = l, s
		rep.batch = append(rep.batch, q)
		rep.queue = rep.queue[1:]
	}
	if len(rep.batch) == 0 {
		// Starved (queue non-empty) or idle: re-armed by the next routed
		// arrival or by a shared-pool release elsewhere.
		rep.active = false
		return 0
	}
	stepEnd := now
	for _, q := range rep.batch {
		var done sim.Time
		if !q.prefilled {
			done = c.prefill(rep, q, now)
		} else {
			done = c.decodeOne(rep, q, now)
		}
		if done > stepEnd {
			stepEnd = done
		}
	}
	finished := 0
	keep := rep.batch[:0]
	for _, q := range rep.batch {
		if q.prefilled && q.generated >= q.decode {
			c.retire(rep, q, stepEnd)
			finished++
			continue
		}
		keep = append(keep, q)
	}
	rep.batch = keep
	rep.nextAt = stepEnd
	if finished > 0 {
		// Freed blocks may unblock capacity-starved replicas.
		for _, r := range c.reps {
			if !r.active && len(r.queue) > 0 {
				r.active = true
				r.nextAt = stepEnd
			}
		}
	}
	return finished
}

// prefill processes the whole prompt: compute, allocate the prompt's
// blocks, stream the KV out, emit the first token.
func (c *Cluster) prefill(rep *replica, q *creq, now sim.Time) sim.Time {
	cfg := c.cfg
	t := now + sim.Time(q.prompt)*cfg.Model.PrefillPerToken
	remaining := q.prompt * cfg.BytesPerToken
	for remaining > 0 {
		n := min(remaining, c.blockBytes)
		b := c.alloc(rep, q)
		q.blocks = append(q.blocks, b)
		t = c.access(rep, b, n, t, true)
		remaining -= n
	}
	q.tokensInLast = q.prompt % cfg.BlockTokens
	if q.tokensInLast == 0 && q.prompt > 0 {
		q.tokensInLast = cfg.BlockTokens
	}
	q.prefilled = true
	q.generated = 1
	rep.m.GenTokens++
	c.m.GenTokens++
	q.firstTok = t
	q.lastTok = t
	ttft := float64(t-q.arrival) / float64(sim.Microsecond)
	rep.m.TTFT.Add(ttft)
	c.m.TTFT.Add(ttft)
	return t
}

// decodeOne generates one token: attention reads every resident block
// (local through the replica's memory system, shared over the fabric),
// compute runs, the token's KV appends to the tail block.
func (c *Cluster) decodeOne(rep *replica, q *creq, now sim.Time) sim.Time {
	cfg := c.cfg
	// Attention reads every resident block independently, so the reads
	// issue concurrently at step start — bounded by the resources they
	// contend for (the replica's core and memory locally, switch ports
	// and expander channels on the fabric) — and compute waits for the
	// slowest one. This memory-level parallelism is what makes shared-
	// pool oversubscription visible as switch queueing.
	t := now
	for _, b := range q.blocks {
		if done := c.access(rep, b, c.blockBytes, now, false); done > t {
			t = done
		}
	}
	t += cfg.Model.DecodePerToken
	if q.tokensInLast == cfg.BlockTokens {
		b := c.alloc(rep, q)
		q.blocks = append(q.blocks, b)
		q.tokensInLast = 0
	}
	t = c.access(rep, q.blocks[len(q.blocks)-1], cfg.BytesPerToken, t, true)
	q.tokensInLast++
	q.generated++
	rep.m.GenTokens++
	c.m.GenTokens++
	q.lastTok = t
	return t
}

// retire frees a finished request's blocks and folds in its TPOT.
func (c *Cluster) retire(rep *replica, q *creq, now sim.Time) {
	for _, b := range q.blocks {
		if b.shared {
			c.sharedFree = append(c.sharedFree, sharedSlot{exp: b.exp})
		} else {
			rep.localFree = append(rep.localFree, b.addr)
		}
	}
	q.blocks = nil
	rep.m.Requests++
	if q.generated > 1 {
		perTok := float64(q.lastTok-q.firstTok) / float64(q.generated-1) /
			float64(sim.Microsecond)
		rep.m.TPOT.Add(perTok)
		c.m.TPOT.Add(perTok)
	}
	if q.lastTok > c.m.Elapsed {
		c.m.Elapsed = q.lastTok
	}
	_ = now
}

// alloc takes one block for q, honoring its admission reservation:
// local while the local reservation lasts, shared after.
func (c *Cluster) alloc(rep *replica, q *creq) cblock {
	if q.resLocal > 0 {
		q.resLocal--
		rep.resLocal--
		a := rep.localFree[len(rep.localFree)-1]
		rep.localFree = rep.localFree[:len(rep.localFree)-1]
		return cblock{addr: a}
	}
	if q.resShared <= 0 {
		panic("cluster: allocation beyond admission reservation")
	}
	q.resShared--
	c.resShared--
	s := c.sharedFree[0]
	c.sharedFree = c.sharedFree[1:]
	return cblock{shared: true, exp: s.exp}
}

// access moves n KV bytes of block b for replica rep: local blocks
// stream through the replica host's memory system with non-temporal
// line ops; shared blocks ride the fabric to their expander.
func (c *Cluster) access(rep *replica, b cblock, n int, now sim.Time, write bool) sim.Time {
	c.m.Accesses++
	if b.shared {
		rep.m.SharedBytes += uint64(n)
		x := c.f.Expanders()[b.exp]
		if write {
			return c.f.WriteShared(rep.hostID, x, n, now)
		}
		return c.f.ReadShared(rep.hostID, x, n, now)
	}
	rep.m.LocalBytes += uint64(n)
	core := c.f.Host(rep.hostID).Core(0)
	op := cxl.NtLd
	if write {
		op = cxl.NtSt
	}
	done := now
	for off := 0; off < n; off += phys.LineSize {
		r := core.Access(op, b.addr+phys.Addr(off), nil, now)
		if r.Done > done {
			done = r.Done
		}
	}
	return done
}

// finalize computes aggregate metrics and snapshots the fabric stats.
func (c *Cluster) finalize(reqs []*creq) {
	start := reqs[0].arrival
	if c.m.Elapsed > start {
		c.m.Goodput = float64(c.m.GenTokens) /
			(float64(c.m.Elapsed-start) / float64(sim.Second))
	}
	for _, r := range c.reps {
		c.m.Replicas = append(c.m.Replicas, r.m)
	}
	c.m.Links = c.f.LinkStats()
	c.m.Ports = c.f.PortStats()
}

// blocksFor returns how many KV blocks tokens occupy.
func (c *Cluster) blocksFor(tokens int) int {
	return (tokens + c.cfg.BlockTokens - 1) / c.cfg.BlockTokens
}
